#include "snn/layer_state.hpp"

#include <algorithm>

namespace sia::snn {

namespace {

/// Broadcast one per-channel coefficient stream into a per-neuron CHW
/// bank: channel c's value fills its whole [plane] slice. Padding lanes
/// past `channels * plane` stay zero (AlignedVec::assign zeroed them),
/// so a padding lane always aggregates to zero current.
void broadcast_per_channel(const std::vector<std::int16_t>& per_channel,
                           std::int64_t plane,
                           simd::AlignedVec<std::int16_t>& bank) {
    for (std::size_t c = 0; c < per_channel.size(); ++c) {
        std::int16_t* slice = bank.data() + static_cast<std::int64_t>(c) * plane;
        std::fill(slice, slice + plane, per_channel[c]);
    }
}

}  // namespace

void LayerState::init(const SnnLayer& layer) {
    neurons = layer.neurons();
    channels = layer.out_channels;
    plane = layer.out_h * layer.out_w;
    padded = (neurons + simd::kBlock - 1) / simd::kBlock * simd::kBlock;
    interleaved = channels > 1 && plane > 1;

    const auto n = static_cast<std::size_t>(neurons);
    const auto np = static_cast<std::size_t>(padded);
    psum.assign(np);
    psum_hwc.assign(interleaved ? n : 0);

    if (!layer.spiking) {
        // Readout layers only aggregate psums into the wide logits; the
        // membrane bank stays allocated (all-zero, exposed through the
        // engine's membrane() accessor) but no broadcast coefficient
        // banks exist — the readout loop is O(classes), never
        // vectorized, and reads the per-channel values directly.
        membrane.assign(np);
        gain.assign(0);
        bias.assign(0);
        skip_psum.assign(0);
        skip_psum_hwc.assign(0);
        skip_gain.assign(0);
        skip_bias.assign(0);
        return;
    }

    membrane.assign(np);
    // When the plane is a whole number of 64-neuron words the fused
    // kernels take the channel-uniform path (two broadcast scalars per
    // word straight from the per-channel arrays) and never touch the
    // broadcast banks — skip materializing them.
    const bool banks = plane % simd::kBlock != 0;
    gain.assign(banks ? np : 0);
    bias.assign(banks ? np : 0);
    if (banks) {
        broadcast_per_channel(layer.main.gain, plane, gain);
        broadcast_per_channel(layer.main.bias, plane, bias);
    }

    const bool conv_skip = layer.has_skip() && !layer.skip_is_identity;
    skip_psum.assign(conv_skip ? np : 0);
    skip_psum_hwc.assign(conv_skip && interleaved ? n : 0);
    skip_gain.assign(conv_skip && banks ? np : 0);
    skip_bias.assign(conv_skip && banks ? np : 0);
    if (conv_skip && banks) {
        broadcast_per_channel(layer.skip.gain, plane, skip_gain);
        broadcast_per_channel(layer.skip.bias, plane, skip_bias);
    }
}

void LayerState::reset_membrane(std::int16_t initial) {
    if (membrane.empty()) return;
    std::fill(membrane.data(), membrane.data() + neurons, initial);
    // Padding lanes stay zero: they never fire into the result (tail
    // bits are masked) and keeping them fixed makes reruns identical.
    std::fill(membrane.data() + neurons, membrane.data() + padded, std::int16_t{0});
}

}  // namespace sia::snn
