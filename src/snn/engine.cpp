#include "snn/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "snn/compute.hpp"

namespace sia::snn {


std::int64_t RunResult::predicted_class(std::int64_t t) const {
    const auto& logits = logits_per_step.at(static_cast<std::size_t>(t));
    std::size_t best = 0;
    for (std::size_t j = 1; j < logits.size(); ++j) {
        if (logits[j] > logits[best]) best = j;
    }
    return static_cast<std::int64_t>(best);
}

FunctionalEngine::FunctionalEngine(const SnnModel& model, EngineConfig config)
    : model_(model), config_(config) {
    model_.validate();
    const std::size_t n = model_.layers.size();
    main_wt_.resize(n);
    skip_wt_.resize(n);
    membranes_.resize(n);
    psum_.resize(n);
    spikes_.resize(n);
    spike_counts_.assign(n, 0);
    dispatch_.assign(n, LayerDispatchStats{});

    for (std::size_t i = 0; i < n; ++i) {
        const SnnLayer& layer = model_.layers[i];
        if (layer.op == LayerOp::kConv) {
            main_wt_[i] = compute::transpose_conv(layer.main);
            if (layer.has_skip() && !layer.skip_is_identity) {
                skip_wt_[i] = compute::transpose_conv(layer.skip);
            }
        } else {
            main_wt_[i] = compute::transpose_linear(layer.main);
        }
        membranes_[i].assign(static_cast<std::size_t>(layer.neurons()), 0);
        psum_[i].assign(static_cast<std::size_t>(layer.neurons()), 0);
        spikes_[i] = SpikeMap(layer.out_channels, layer.out_h, layer.out_w);
    }
    readout_.assign(static_cast<std::size_t>(model_.classes), 0);
    reset();
}

void FunctionalEngine::reset() {
    for (std::size_t i = 0; i < model_.layers.size(); ++i) {
        const SnnLayer& layer = model_.layers[i];
        std::fill(membranes_[i].begin(), membranes_[i].end(),
                  layer.spiking ? layer.initial_potential : std::int16_t{0});
        spikes_[i].clear();
        spike_counts_[i] = 0;
        dispatch_[i] = LayerDispatchStats{};
    }
    std::fill(readout_.begin(), readout_.end(), std::int64_t{0});
}

bool FunctionalEngine::use_scatter(const SpikeMap& in) const noexcept {
    switch (config_.dispatch) {
        case DispatchMode::kDense: return false;
        case DispatchMode::kScatter: return true;
        case DispatchMode::kAdaptive: break;
    }
    const std::int64_t sites = in.size();
    return sites > 0 &&
           static_cast<double>(in.count()) <
               config_.scatter_density_threshold * static_cast<double>(sites);
}

const SpikeMap& FunctionalEngine::source_spikes(int src, const SpikeMap& input) const {
    return src == -1 ? input : spikes_.at(static_cast<std::size_t>(src));
}

void FunctionalEngine::step(const SpikeMap& input) {
    if (input.channels() != model_.input_channels || input.height() != model_.input_h ||
        input.width() != model_.input_w) {
        throw std::invalid_argument("FunctionalEngine::step: input geometry mismatch");
    }
    current_input_ = &input;
    for (std::size_t i = 0; i < model_.layers.size(); ++i) {
        const SnnLayer& layer = model_.layers[i];
        const SpikeMap& in = source_spikes(layer.input, input);
        if (layer.op == LayerOp::kConv) {
            run_conv_layer(i, in);
        } else {
            run_linear_layer(i, in);
        }
        integrate_and_fire(i);
        // integrate_and_fire needs the skip source; it reads it lazily via
        // the spikes_ array, which is valid because skip_src < i.
    }
}

bool FunctionalEngine::dispatch_conv(const Branch& b, const std::vector<std::int8_t>& wt,
                                     const SpikeMap& in, std::int64_t out_h,
                                     std::int64_t out_w,
                                     std::vector<std::int32_t>& psum) {
    const bool scatter = use_scatter(in);
    if (scatter) {
        compute::conv_psum_scatter(b, wt, in, out_h, out_w, psum);
    } else {
        compute::conv_psum(b, wt, in, out_h, out_w, psum);
    }
    return scatter;
}

void FunctionalEngine::run_conv_layer(std::size_t index, const SpikeMap& input) {
    const SnnLayer& layer = model_.layers[index];
    LayerDispatchStats& d = dispatch_[index];
    const bool scatter = dispatch_conv(layer.main, main_wt_[index], input, layer.out_h,
                                       layer.out_w, psum_[index]);
    ++(scatter ? d.scatter_steps : d.dense_steps);
    d.input_spikes += input.count();
    d.input_sites += input.size();
}

void FunctionalEngine::run_linear_layer(std::size_t index, const SpikeMap& input) {
    const SnnLayer& layer = model_.layers[index];
    LayerDispatchStats& d = dispatch_[index];
    const bool scatter = use_scatter(input);
    if (scatter) {
        compute::linear_psum_scatter(layer.main, main_wt_[index], input, psum_[index]);
    } else {
        compute::linear_psum(layer.main, main_wt_[index], input, psum_[index]);
    }
    ++(scatter ? d.scatter_steps : d.dense_steps);
    d.input_spikes += input.count();
    d.input_sites += input.size();
}

void FunctionalEngine::integrate_and_fire(std::size_t index) {
    const SnnLayer& layer = model_.layers[index];
    auto& psum = psum_[index];

    if (!layer.spiking) {
        // Readout layer: accumulate aggregated current into wide logits.
        for (std::int64_t f = 0; f < layer.out_channels; ++f) {
            const std::int16_t m =
                compute::aggregate(psum[static_cast<std::size_t>(f)],
                          layer.main.gain[static_cast<std::size_t>(f)],
                          layer.main.bias[static_cast<std::size_t>(f)],
                          layer.main.gain_shift);
            readout_[static_cast<std::size_t>(f)] += m;
        }
        return;
    }

    auto& mem = membranes_[index];
    SpikeMap& out = spikes_[index];
    out.clear();

    // Skip-path precomputation (psum for downsample branch).
    const bool has_skip = layer.has_skip();
    const SpikeMap* skip_spikes = nullptr;
    std::vector<std::int32_t> skip_psum;
    if (has_skip) {
        // skip_src may be -1 (network input) when the stem runs on the
        // processor-side front end and the first block skips from it.
        skip_spikes = layer.skip_src == -1
                          ? current_input_
                          : &spikes_.at(static_cast<std::size_t>(layer.skip_src));
        if (!layer.skip_is_identity) {
            skip_psum.assign(static_cast<std::size_t>(layer.neurons()), 0);
            // Same density-adaptive choice as the main branch (counters
            // track the main branch only; the downsample rides along).
            (void)dispatch_conv(layer.skip, skip_wt_[index], *skip_spikes, layer.out_h,
                                layer.out_w, skip_psum);
        }
    }

    const std::int64_t oc = layer.out_channels;
    const std::int64_t oh = layer.out_h;
    const std::int64_t ow = layer.out_w;
    std::int64_t fired = 0;
    for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t x = 0; x < ow; ++x) {
            for (std::int64_t o = 0; o < oc; ++o) {
                const std::size_t hwc = static_cast<std::size_t>((y * ow + x) * oc + o);
                const std::size_t chw = static_cast<std::size_t>((o * oh + y) * ow + x);
                std::int16_t m = compute::aggregate(psum[hwc], layer.main.gain[static_cast<std::size_t>(o)],
                                           layer.main.bias[static_cast<std::size_t>(o)],
                                           layer.main.gain_shift);
                if (has_skip) {
                    if (layer.skip_is_identity) {
                        if (skip_spikes->get(o, y, x)) {
                            m = util::sat_add16(m, layer.identity_skip.charge);
                        }
                    } else {
                        const std::int16_t ms = compute::aggregate(
                            skip_psum[hwc], layer.skip.gain[static_cast<std::size_t>(o)],
                            layer.skip.bias[static_cast<std::size_t>(o)],
                            layer.skip.gain_shift);
                        m = util::sat_add16(m, ms);
                    }
                }
                bool spike = false;
                mem[chw] = compute::update_neuron(mem[chw], m, layer, spike);
                if (spike) {
                    out.set(o, y, x, true);
                    ++fired;
                }
            }
        }
    }
    spike_counts_[index] += fired;
}

RunResult FunctionalEngine::run(const SpikeTrain& input) {
    reset();
    RunResult res;
    res.timesteps = static_cast<std::int64_t>(input.size());
    res.logits_per_step.reserve(input.size());
    for (const SpikeMap& frame : input) {
        step(frame);
        res.logits_per_step.push_back(readout_);
    }
    res.spike_counts = spike_counts_;
    res.layer_dispatch = dispatch_;
    res.neuron_counts.reserve(model_.layers.size());
    for (const SnnLayer& layer : model_.layers) res.neuron_counts.push_back(layer.neurons());
    return res;
}

RunResult run_snn(const SnnModel& model, const SpikeTrain& input, EngineConfig config) {
    FunctionalEngine engine(model, config);
    return engine.run(input);
}

}  // namespace sia::snn
