#include "snn/engine.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "snn/compute.hpp"

namespace sia::snn {

std::size_t argmax_first(std::span<const std::int64_t> logits) noexcept {
    std::size_t best = 0;
    for (std::size_t j = 1; j < logits.size(); ++j) {
        // Strict > : an equal later logit never displaces the earlier
        // one, so ties resolve to the first (lowest) index.
        if (logits[j] > logits[best]) best = j;
    }
    return best;
}

std::int64_t RunResult::predicted_class(std::int64_t t) const {
    return static_cast<std::int64_t>(
        argmax_first(logits_per_step.at(static_cast<std::size_t>(t))));
}

FunctionalEngine::FunctionalEngine(const SnnModel& model, EngineConfig config)
    : model_(model), config_(config) {
    model_.validate();
    const std::size_t n = model_.layers.size();
    main_wt_.resize(n);
    skip_wt_.resize(n);
    state_.resize(n);
    spikes_.resize(n);
    spike_counts_.assign(n, 0);
    dispatch_.assign(n, LayerDispatchStats{});

    for (std::size_t i = 0; i < n; ++i) {
        const SnnLayer& layer = model_.layers[i];
        if (layer.op == LayerOp::kConv) {
            main_wt_[i] = compute::transpose_conv(layer.main);
            if (layer.has_skip() && !layer.skip_is_identity) {
                skip_wt_[i] = compute::transpose_conv(layer.skip);
            }
        } else {
            main_wt_[i] = compute::transpose_linear(layer.main);
        }
        state_[i].init(layer);
        spikes_[i] = SpikeMap(layer.out_channels, layer.out_h, layer.out_w);
    }
    readout_.assign(static_cast<std::size_t>(model_.classes), 0);
    reset();
}

void FunctionalEngine::reset() {
    reset_membranes();
    reset_readout();
    reset_stats();
}

void FunctionalEngine::reset_membranes() {
    for (std::size_t i = 0; i < model_.layers.size(); ++i) {
        const SnnLayer& layer = model_.layers[i];
        state_[i].reset_membrane(layer.spiking ? layer.initial_potential
                                               : std::int16_t{0});
        spikes_[i].clear();
    }
}

void FunctionalEngine::reset_readout() {
    std::fill(readout_.begin(), readout_.end(), std::int64_t{0});
}

void FunctionalEngine::reset_stats() {
    std::fill(spike_counts_.begin(), spike_counts_.end(), std::int64_t{0});
    std::fill(dispatch_.begin(), dispatch_.end(), LayerDispatchStats{});
}

void FunctionalEngine::save_session(SessionState& session) const {
    session.membranes.resize(model_.layers.size());
    for (std::size_t i = 0; i < model_.layers.size(); ++i) {
        if (!model_.layers[i].spiking) {
            session.membranes[i].clear();
            continue;
        }
        const LayerState& st = state_[i];
        session.membranes[i].assign(st.membrane.data(),
                                    st.membrane.data() + st.neurons);
    }
    session.readout = readout_;
    session.initialized = true;
}

void FunctionalEngine::restore_session(const SessionState& session) {
    if (!session.initialized) {
        reset();
        return;
    }
    if (session.membranes.size() != model_.layers.size() ||
        session.readout.size() != readout_.size()) {
        throw std::invalid_argument(
            "FunctionalEngine::restore_session: state/model geometry mismatch");
    }
    for (std::size_t i = 0; i < model_.layers.size(); ++i) {
        if (!model_.layers[i].spiking) continue;
        LayerState& st = state_[i];
        const auto& mem = session.membranes[i];
        if (mem.size() != static_cast<std::size_t>(st.neurons)) {
            throw std::invalid_argument(
                "FunctionalEngine::restore_session: membrane size mismatch");
        }
        std::copy(mem.begin(), mem.end(), st.membrane.data());
        // Spike maps never carry across a step boundary; clear so the
        // restored engine starts the window from a clean slate.
        spikes_[i].clear();
    }
    std::copy(session.readout.begin(), session.readout.end(), readout_.begin());
    reset_stats();
}

bool FunctionalEngine::use_scatter(const SpikeMap& in) const noexcept {
    switch (config_.dispatch) {
        case DispatchMode::kDense: return false;
        case DispatchMode::kScatter: return true;
        case DispatchMode::kAdaptive: break;
    }
    const std::int64_t sites = in.size();
    return sites > 0 &&
           static_cast<double>(in.count()) <
               config_.scatter_density_threshold * static_cast<double>(sites);
}

const SpikeMap& FunctionalEngine::source_spikes(int src, const SpikeMap& input) const {
    return src == -1 ? input : spikes_.at(static_cast<std::size_t>(src));
}

void FunctionalEngine::step(const SpikeMap& input) {
    if (input.channels() != model_.input_channels || input.height() != model_.input_h ||
        input.width() != model_.input_w) {
        throw std::invalid_argument("FunctionalEngine::step: input geometry mismatch");
    }
    current_input_ = &input;
    for (std::size_t i = 0; i < model_.layers.size(); ++i) {
        const SnnLayer& layer = model_.layers[i];
        const SpikeMap& in = source_spikes(layer.input, input);
        if (layer.op == LayerOp::kConv) {
            run_conv_layer(i, in);
        } else {
            run_linear_layer(i, in);
        }
        integrate_and_fire(i);
        // integrate_and_fire needs the skip source; it reads it lazily via
        // the spikes_ array, which is valid because skip_src < i.
    }
}

bool FunctionalEngine::dispatch_conv(const Branch& b, const std::vector<std::int8_t>& wt,
                                     const SpikeMap& in, std::int64_t out_h,
                                     std::int64_t out_w,
                                     std::span<std::int32_t> psum) {
    const bool scatter = use_scatter(in);
    if (scatter) {
        compute::conv_psum_scatter(b, wt, in, out_h, out_w, psum);
    } else {
        compute::conv_psum(b, wt, in, out_h, out_w, psum);
    }
    return scatter;
}

void FunctionalEngine::run_conv_layer(std::size_t index, const SpikeMap& input) {
    const SnnLayer& layer = model_.layers[index];
    LayerDispatchStats& d = dispatch_[index];
    const bool scatter = dispatch_conv(layer.main, main_wt_[index], input, layer.out_h,
                                       layer.out_w, state_[index].accum());
    ++(scatter ? d.scatter_steps : d.dense_steps);
    d.input_spikes += input.count();
    d.input_sites += input.size();
}

void FunctionalEngine::run_linear_layer(std::size_t index, const SpikeMap& input) {
    const SnnLayer& layer = model_.layers[index];
    LayerDispatchStats& d = dispatch_[index];
    const bool scatter = use_scatter(input);
    if (scatter) {
        compute::linear_psum_scatter(layer.main, main_wt_[index], input,
                                     state_[index].accum());
    } else {
        compute::linear_psum(layer.main, main_wt_[index], input, state_[index].accum());
    }
    ++(scatter ? d.scatter_steps : d.dense_steps);
    d.input_spikes += input.count();
    d.input_sites += input.size();
}

void FunctionalEngine::integrate_and_fire(std::size_t index) {
    const SnnLayer& layer = model_.layers[index];
    LayerState& st = state_[index];

    if (!layer.spiking) {
        // Readout layer: accumulate aggregated current into wide logits
        // (O(classes); never worth vectorizing).
        const std::int32_t* psum = st.accum_data();
        for (std::int64_t f = 0; f < layer.out_channels; ++f) {
            const std::int16_t m =
                compute::aggregate(psum[f], layer.main.gain[static_cast<std::size_t>(f)],
                                   layer.main.bias[static_cast<std::size_t>(f)],
                                   layer.main.gain_shift);
            readout_[static_cast<std::size_t>(f)] += m;
        }
        return;
    }

    // Resolve the residual source and accumulate the downsample psum.
    // skip_src may be -1 (network input) when the stem runs on the
    // processor-side front end and the first block skips from it.
    const SpikeMap* skip_spikes = nullptr;
    if (layer.has_skip()) {
        skip_spikes = layer.skip_src == -1
                          ? current_input_
                          : &spikes_.at(static_cast<std::size_t>(layer.skip_src));
        if (!layer.skip_is_identity) {
            // Same density-adaptive choice as the main branch (counters
            // track the main branch only; the downsample rides along).
            (void)dispatch_conv(layer.skip, skip_wt_[index], *skip_spikes, layer.out_h,
                                layer.out_w, st.skip_accum());
        }
    }

    if (config_.fire == FirePath::kScalar) {
        fire_scalar(index, skip_spikes);
        ++dispatch_[index].scalar_fire_steps;
    } else {
        fire_vector(index, skip_spikes);
        ++dispatch_[index].vector_fire_steps;
    }
    spike_counts_[index] += spikes_[index].count();
}

void FunctionalEngine::fire_vector(std::size_t index, const SpikeMap* skip_spikes) {
    const SnnLayer& layer = model_.layers[index];
    LayerState& st = state_[index];
    const bool conv_skip = layer.has_skip() && !layer.skip_is_identity;

    // Reorder the HWC accumulation banks into the CHW fire banks; when
    // the orders coincide the kernels already accumulated in place.
    if (st.interleaved) {
        compute::transpose_hwc_to_chw(st.psum_hwc.data(), st.psum.data(), st.channels,
                                      st.plane);
        if (conv_skip) {
            compute::transpose_hwc_to_chw(st.skip_psum_hwc.data(), st.skip_psum.data(),
                                          st.channels, st.plane);
        }
    }

    compute::FireArgs args;
    args.psum = st.psum.data();
    args.gain = st.gain.data();
    args.bias = st.bias.data();
    args.channel_gain = layer.main.gain.data();
    args.channel_bias = layer.main.bias.data();
    args.plane = st.plane;
    args.gain_shift = layer.main.gain_shift;
    if (conv_skip) {
        args.skip_psum = st.skip_psum.data();
        args.skip_gain = st.skip_gain.data();
        args.skip_bias = st.skip_bias.data();
        args.skip_channel_gain = layer.skip.gain.data();
        args.skip_channel_bias = layer.skip.bias.data();
        args.skip_gain_shift = layer.skip.gain_shift;
    } else if (layer.has_skip()) {
        // Identity skip: same CHW geometry as the output, so the packed
        // source words align bit-for-bit with the fire blocks.
        args.skip_words = skip_spikes->raw().data();
        args.identity_charge = layer.identity_skip.charge;
    }
    args.membrane = st.membrane.data();
    args.threshold = layer.threshold;
    args.reset = layer.reset;
    args.leak_shift = layer.leak_shift;
    args.neurons = st.neurons;

    // No clear(): the kernels overwrite every packed word of the map.
    SpikeMap& out = spikes_[index];
    if (layer.neuron == NeuronKind::kLif) {
        compute::aggregate_fire_lif(args, out);
    } else {
        compute::aggregate_fire_dense(args, out);
    }
}

void FunctionalEngine::fire_scalar(std::size_t index, const SpikeMap* skip_spikes) {
    const SnnLayer& layer = model_.layers[index];
    LayerState& st = state_[index];
    // The accumulation bank is HWC when interleaved; when the orders
    // coincide (oc == 1 or 1x1 spatial) the two index formulas agree,
    // so hwc-indexing it is correct in every case.
    const std::int32_t* psum = st.accum_data();
    const std::int32_t* skip_psum =
        layer.has_skip() && !layer.skip_is_identity ? st.skip_accum_data() : nullptr;
    std::int16_t* mem = st.membrane.data();
    SpikeMap& out = spikes_[index];
    out.clear();

    const std::int64_t oc = layer.out_channels;
    const std::int64_t oh = layer.out_h;
    const std::int64_t ow = layer.out_w;
    for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t x = 0; x < ow; ++x) {
            for (std::int64_t o = 0; o < oc; ++o) {
                const std::size_t hwc = static_cast<std::size_t>((y * ow + x) * oc + o);
                const std::size_t chw = static_cast<std::size_t>((o * oh + y) * ow + x);
                std::int16_t m = compute::aggregate(
                    psum[hwc], layer.main.gain[static_cast<std::size_t>(o)],
                    layer.main.bias[static_cast<std::size_t>(o)], layer.main.gain_shift);
                if (skip_psum != nullptr) {
                    const std::int16_t ms = compute::aggregate(
                        skip_psum[hwc], layer.skip.gain[static_cast<std::size_t>(o)],
                        layer.skip.bias[static_cast<std::size_t>(o)],
                        layer.skip.gain_shift);
                    m = util::sat_add16(m, ms);
                } else if (skip_spikes != nullptr) {
                    if (skip_spikes->get(o, y, x)) {
                        m = util::sat_add16(m, layer.identity_skip.charge);
                    }
                }
                bool spike = false;
                mem[chw] = compute::update_neuron(mem[chw], m, layer, spike);
                if (spike) out.set(o, y, x, true);
            }
        }
    }
}

RunResult FunctionalEngine::run(const SpikeTrain& input) {
    reset();
    return run_window_impl(input, nullptr);
}

RunResult FunctionalEngine::run(const SpikeTrain& input, const ExitCriterion& exit) {
    reset();
    return run_window_impl(input, &exit);
}

RunResult FunctionalEngine::run_window(const SpikeTrain& input) {
    return run_window_impl(input, nullptr);
}

RunResult FunctionalEngine::run_window(const SpikeTrain& input,
                                       const ExitCriterion& exit) {
    return run_window_impl(input, &exit);
}

RunResult FunctionalEngine::run_window_impl(const SpikeTrain& input,
                                            const ExitCriterion* exit) {
    RunResult res;
    res.steps_offered = static_cast<std::int64_t>(input.size());
    if (config_.record_readout_history) res.logits_per_step.reserve(input.size());
    // The evaluator's baseline is the readout carried in at window
    // entry, so session windows exit on their own delta (zeros after a
    // reset(), which makes the stateless case the absolute readout).
    std::optional<ExitEvaluator> eval;
    if (exit != nullptr && exit->enabled()) eval.emplace(*exit, readout_);
    if (exit != nullptr && !exit->enabled()) exit->validate();
    std::int64_t steps = 0;
    for (const SpikeMap& frame : input) {
        step(frame);
        ++steps;
        if (config_.record_readout_history) res.logits_per_step.push_back(readout_);
        if (eval) {
            const ExitReason reason = eval->observe(readout_, steps);
            if (reason != ExitReason::kNone) {
                res.exit_reason = reason;
                break;  // the item drops out of the hot loop
            }
        }
    }
    res.timesteps = steps;
    res.readout = readout_;
    res.spike_counts = spike_counts_;
    res.layer_dispatch = dispatch_;
    res.neuron_counts.reserve(model_.layers.size());
    for (const SnnLayer& layer : model_.layers) res.neuron_counts.push_back(layer.neurons());
    return res;
}

RunResult FunctionalEngine::run_window(const SpikeTrain& input, SessionState& session) {
    restore_session(session);  // zeroes per-run counters: stats are per-window
    RunResult res = run_window_impl(input, nullptr);
    save_session(session);
    session.steps += res.timesteps;
    ++session.windows;
    return res;
}

RunResult FunctionalEngine::run_window(const SpikeTrain& input, SessionState& session,
                                       const ExitCriterion& exit) {
    restore_session(session);
    RunResult res = run_window_impl(input, &exit);
    // Saving at the exit step keeps the session exactly consistent:
    // the state is what a stream offering only res.timesteps frames
    // would have produced.
    save_session(session);
    session.steps += res.timesteps;
    ++session.windows;
    return res;
}

RunResult run_snn(const SnnModel& model, const SpikeTrain& input, EngineConfig config) {
    FunctionalEngine engine(model, config);
    return engine.run(input);
}

}  // namespace sia::snn
