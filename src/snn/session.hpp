// Persistent inference state for streaming (chunked) execution.
//
// A continuous spike stream — the paper's §IV DVS use case — is served
// as a sequence of event windows against one logical session instead of
// one giant train. Everything that carries across a window boundary
// lives here: per-layer membrane potentials and the accumulated readout.
// Output spikes do NOT carry — layer i at timestep t only consumes
// layer i-1's spikes from the same timestep, so window boundaries cut
// cleanly between steps.
//
// The representation is engine-agnostic: snn::FunctionalEngine and
// sim::Sia save/resume the exact same state, which is what makes the
// chunking contract hold across backends — N windows of T/N steps are
// bit-identical to one T-step run, and a session may even migrate
// between engines mid-stream (e.g. a hot reload swapping the serving
// backend) without perturbing a single bit of the readout.
#pragma once

#include <cstdint>
#include <vector>

namespace sia::snn {

/// State of one streaming session between windows.
struct SessionState {
    /// Per-layer membrane potentials in CHW order: layer.neurons()
    /// entries for spiking layers, empty for readout layers (their
    /// carried state is `readout`).
    std::vector<std::vector<std::int16_t>> membranes;
    /// Accumulated readout logits across every completed window.
    std::vector<std::int64_t> readout;
    /// Timesteps integrated over all completed windows.
    std::int64_t steps = 0;
    /// Windows completed.
    std::uint64_t windows = 0;
    /// False until the first window runs; an uninitialized session
    /// resumes from the model's initial potentials and a zero readout.
    bool initialized = false;
};

}  // namespace sia::snn
