// Structure-of-arrays per-layer runtime state of the functional engine.
//
// One LayerState owns every mutable bank the fire stage touches, laid
// out flat, 64-byte aligned and padded to whole 64-neuron blocks so the
// fused aggregate+fire kernels (snn::compute::aggregate_fire_*) can
// stream them 64 lanes per iteration and write the fire mask directly
// into the packed SpikeMap words:
//
//   psum      int32  CHW   aggregated synaptic current (kernel input)
//   membrane  int16  CHW   potentials (read-modify-write in the pass)
//   gain/bias int16  CHW   per-output-channel aggregation coefficients
//                          broadcast per neuron, so the channel-major
//                          lookup is a contiguous stream with no
//                          per-lane channel indexing (and channel
//                          boundaries inside a 64-block need no care)
//
// The psum accumulation kernels (conv_psum*/linear_psum*) produce HWC
// order — their inner loop accumulates a contiguous [OC] weight row per
// input tap — while the fire stage wants CHW, the SpikeMap bit order.
// When the two orders differ (channels > 1 and a spatial plane > 1) the
// layer carries a separate HWC accumulation bank and the engine runs a
// cache-blocked transpose (compute::transpose_hwc_to_chw) between the
// stages; when they coincide (linear layers, 1x1 spatial) the kernels
// accumulate straight into the CHW bank. Padding lanes hold zero psum
// and zero gain/bias, so they aggregate to zero current; the kernels
// additionally mask the final word's tail bits so a padding lane can
// never emit a spike.
#pragma once

#include <cstdint>
#include <span>

#include "snn/model.hpp"
#include "snn/simd.hpp"

namespace sia::snn {

struct LayerState {
    std::int64_t neurons = 0;  ///< OC * OH * OW
    std::int64_t padded = 0;   ///< neurons rounded up to a 64 multiple
    std::int64_t channels = 0;
    std::int64_t plane = 0;    ///< OH * OW
    /// True when the accumulation order (HWC) differs from the fire
    /// order (CHW): the psum kernels then target `psum_hwc` and the
    /// engine transposes into `psum` before firing.
    bool interleaved = false;

    simd::AlignedVec<std::int32_t> psum;      ///< CHW fire bank (padded)
    simd::AlignedVec<std::int32_t> psum_hwc;  ///< HWC accumulation bank (interleaved only)
    simd::AlignedVec<std::int16_t> membrane;  ///< CHW potentials (padded; spiking only)
    simd::AlignedVec<std::int16_t> gain;      ///< main-branch G_q broadcast per neuron
    simd::AlignedVec<std::int16_t> bias;      ///< main-branch H_q broadcast per neuron

    // Residual downsample branch (conv skip): same treatment as main.
    simd::AlignedVec<std::int32_t> skip_psum;
    simd::AlignedVec<std::int32_t> skip_psum_hwc;
    simd::AlignedVec<std::int16_t> skip_gain;
    simd::AlignedVec<std::int16_t> skip_bias;

    /// Size and zero every bank for `layer`; broadcasts the per-channel
    /// gain/bias coefficients into per-neuron streams.
    void init(const SnnLayer& layer);

    /// Reset mutable state between runs: membranes to `initial` (real
    /// lanes; padding lanes stay zero), psum banks untouched (they are
    /// overwritten every step).
    void reset_membrane(std::int16_t initial);

    /// The main-branch accumulation target the psum kernels write
    /// (exactly `neurons` elements; HWC when interleaved, CHW else).
    [[nodiscard]] std::span<std::int32_t> accum() noexcept {
        return {interleaved ? psum_hwc.data() : psum.data(),
                static_cast<std::size_t>(neurons)};
    }
    [[nodiscard]] std::span<std::int32_t> skip_accum() noexcept {
        return {interleaved ? skip_psum_hwc.data() : skip_psum.data(),
                static_cast<std::size_t>(neurons)};
    }
    /// Read-only view of the accumulation bank (the scalar fire path
    /// indexes it in HWC order, matching what the kernels produced).
    [[nodiscard]] const std::int32_t* accum_data() const noexcept {
        return interleaved ? psum_hwc.data() : psum.data();
    }
    [[nodiscard]] const std::int32_t* skip_accum_data() const noexcept {
        return interleaved ? skip_psum_hwc.data() : skip_psum.data();
    }
};

}  // namespace sia::snn
