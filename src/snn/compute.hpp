// Shared integer compute primitives for SnnModel execution.
//
// Both the functional engine (snn::FunctionalEngine) and the
// cycle-accurate hardware simulator (sim::Sia) perform their numerics
// through these functions — one implementation, two schedulers — which
// is what makes the bit-exact software/hardware co-verification a
// structural property rather than a testing aspiration.
#pragma once

#include <cstdint>
#include <vector>

#include "snn/model.hpp"
#include "snn/spike.hpp"
#include "util/fixed_point.hpp"

namespace sia::snn::compute {

/// Transpose conv weights [OC][IC][k][k] -> [IC*k*k][OC] (gather layout).
[[nodiscard]] std::vector<std::int8_t> transpose_conv(const Branch& b);

/// Transpose linear weights [F][D] -> [D][F].
[[nodiscard]] std::vector<std::int8_t> transpose_linear(const Branch& b);

/// Gather-form convolution partial sums: scans every output pixel x
/// input tap and accumulates where the input bit is set, so cost is
/// O(out_h * out_w * IC * k * k) scan plus O(spikes * k * k * OC) adds
/// regardless of sparsity. `psum` is HWC ([out_h][out_w][OC], int32)
/// and is cleared first. Accumulation is exact int32
/// (order-independent); 16-bit saturation is applied at aggregation
/// handoff, matching the PE-to-aggregation-core interface.
void conv_psum(const Branch& b, const std::vector<std::int8_t>& wt, const SpikeMap& in,
               std::int64_t out_h, std::int64_t out_w, std::vector<std::int32_t>& psum);

/// As conv_psum but restricted to input channels [ic_begin, ic_end) and
/// accumulating into `psum` without clearing — the weight-memory-chunked
/// schedule of the hardware.
void conv_psum_chunk(const Branch& b, const std::vector<std::int8_t>& wt,
                     const SpikeMap& in, std::int64_t out_h, std::int64_t out_w,
                     std::int64_t ic_begin, std::int64_t ic_end,
                     std::vector<std::int32_t>& psum);

/// Scatter-form (truly event-driven) convolution partial sums: iterates
/// the input's spike events via the packed-word iterator and scatters
/// each spike's [k][k][OC] weight rows into the output windows it
/// touches — O(spikes * k * k * OC) with no dense scan, so cost scales
/// with activity. Bit-identical to conv_psum: both perform the same
/// multiset of exact int32 additions, which are order-independent.
void conv_psum_scatter(const Branch& b, const std::vector<std::int8_t>& wt,
                       const SpikeMap& in, std::int64_t out_h, std::int64_t out_w,
                       std::vector<std::int32_t>& psum);

/// Gather-form fully-connected partial sums ([F], cleared first): scans
/// every input feature's bit and accumulates the set ones.
void linear_psum(const Branch& b, const std::vector<std::int8_t>& wt, const SpikeMap& in,
                 std::vector<std::int32_t>& psum);

/// Scatter-form fully-connected partial sums: word-skips the packed
/// input to visit only spike events, accumulating each spike's [F]
/// weight row. Bit-identical to linear_psum (same adds, same ascending
/// feature order).
void linear_psum_scatter(const Branch& b, const std::vector<std::int8_t>& wt,
                         const SpikeMap& in, std::vector<std::int32_t>& psum);

/// Aggregation-core arithmetic (batch-norm unit of Eq. 2): 16-bit
/// saturating psum, fixed-point gain multiply, bias add.
[[nodiscard]] inline std::int16_t aggregate(std::int32_t psum, std::int16_t gain,
                                            std::int16_t bias, int shift) noexcept {
    const std::int16_t p16 = util::saturate16(psum);
    const std::int16_t scaled = util::fxp_mul_shift(p16, gain, shift);
    return util::sat_add16(scaled, bias);
}

/// Activation-unit update: leak (LIF mode), integrate, threshold
/// compare, reset. Returns the new potential; sets `spike`.
[[nodiscard]] inline std::int16_t update_neuron(std::int16_t membrane, std::int16_t current,
                                                const SnnLayer& layer,
                                                bool& spike) noexcept {
    std::int16_t u = membrane;
    if (layer.neuron == NeuronKind::kLif) {
        u = util::sat_sub16(u, static_cast<std::int16_t>(u >> layer.leak_shift));
    }
    u = util::sat_add16(u, current);
    spike = u >= layer.threshold;
    if (spike) {
        u = layer.reset == ResetMode::kSubtract ? util::sat_sub16(u, layer.threshold)
                                                : std::int16_t{0};
    }
    return u;
}

}  // namespace sia::snn::compute
