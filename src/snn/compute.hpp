// Shared integer compute primitives for SnnModel execution.
//
// Both the functional engine (snn::FunctionalEngine) and the
// cycle-accurate hardware simulator (sim::Sia) perform their numerics
// through these functions — one implementation, two schedulers — which
// is what makes the bit-exact software/hardware co-verification a
// structural property rather than a testing aspiration.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "snn/model.hpp"
#include "snn/spike.hpp"
#include "util/fixed_point.hpp"

namespace sia::snn::compute {

/// Transpose conv weights [OC][IC][k][k] -> [IC*k*k][OC] (gather layout).
[[nodiscard]] std::vector<std::int8_t> transpose_conv(const Branch& b);

/// Transpose linear weights [F][D] -> [D][F].
[[nodiscard]] std::vector<std::int8_t> transpose_linear(const Branch& b);

/// Gather-form convolution partial sums: scans every output pixel x
/// input tap and accumulates where the input bit is set, so cost is
/// O(out_h * out_w * IC * k * k) scan plus O(spikes * k * k * OC) adds
/// regardless of sparsity. `psum` is HWC ([out_h][out_w][OC], int32)
/// and is cleared first. Accumulation is exact int32
/// (order-independent); 16-bit saturation is applied at aggregation
/// handoff, matching the PE-to-aggregation-core interface.
void conv_psum(const Branch& b, const std::vector<std::int8_t>& wt, const SpikeMap& in,
               std::int64_t out_h, std::int64_t out_w, std::span<std::int32_t> psum);

/// As conv_psum but restricted to input channels [ic_begin, ic_end) and
/// accumulating into `psum` without clearing — the weight-memory-chunked
/// schedule of the hardware.
void conv_psum_chunk(const Branch& b, const std::vector<std::int8_t>& wt,
                     const SpikeMap& in, std::int64_t out_h, std::int64_t out_w,
                     std::int64_t ic_begin, std::int64_t ic_end,
                     std::span<std::int32_t> psum);

/// As conv_psum_chunk but additionally restricted to output channels
/// [oc_begin, oc_end) — the channel-parallel shard schedule, where each
/// accelerator owns a contiguous slice of a layer's output channels.
/// `psum` keeps the full-OC HWC stride; only the slice's entries are
/// touched, and each touched entry receives exactly the additions the
/// unsliced kernel performs (int32, order-independent), so disjoint
/// slices compose bit-identically to one full pass.
void conv_psum_chunk_oc(const Branch& b, const std::vector<std::int8_t>& wt,
                        const SpikeMap& in, std::int64_t out_h, std::int64_t out_w,
                        std::int64_t ic_begin, std::int64_t ic_end,
                        std::int64_t oc_begin, std::int64_t oc_end,
                        std::span<std::int32_t> psum);

/// Scatter-form (truly event-driven) convolution partial sums: iterates
/// the input's spike events via the packed-word iterator and scatters
/// each spike's [k][k][OC] weight rows into the output windows it
/// touches — O(spikes * k * k * OC) with no dense scan, so cost scales
/// with activity. Bit-identical to conv_psum: both perform the same
/// multiset of exact int32 additions, which are order-independent.
void conv_psum_scatter(const Branch& b, const std::vector<std::int8_t>& wt,
                       const SpikeMap& in, std::int64_t out_h, std::int64_t out_w,
                       std::span<std::int32_t> psum);

/// Gather-form fully-connected partial sums ([F], cleared first): scans
/// every input feature's bit and accumulates the set ones.
void linear_psum(const Branch& b, const std::vector<std::int8_t>& wt, const SpikeMap& in,
                 std::span<std::int32_t> psum);

/// As linear_psum but restricted to output features [f_begin, f_end) —
/// the channel-parallel shard schedule for FC layers. `psum` keeps the
/// full-F layout; only the slice's entries are cleared and accumulated,
/// bit-identically to the matching entries of one full pass.
void linear_psum_range(const Branch& b, const std::vector<std::int8_t>& wt,
                       const SpikeMap& in, std::int64_t f_begin, std::int64_t f_end,
                       std::span<std::int32_t> psum);

/// Scatter-form fully-connected partial sums: word-skips the packed
/// input to visit only spike events, accumulating each spike's [F]
/// weight row. Bit-identical to linear_psum (same adds, same ascending
/// feature order).
void linear_psum_scatter(const Branch& b, const std::vector<std::int8_t>& wt,
                         const SpikeMap& in, std::span<std::int32_t> psum);

/// Cache-blocked [plane][channels] -> [channels][plane] int32 transpose:
/// reorders an HWC psum accumulation bank into the CHW order the fused
/// fire kernels (and the packed SpikeMap bit layout) use. `chw` may be
/// padded past channels * plane; only the first channels * plane
/// elements are written.
void transpose_hwc_to_chw(const std::int32_t* hwc, std::int32_t* chw,
                          std::int64_t channels, std::int64_t plane);

/// Inputs of the fused aggregate+fire kernels. All banks are flat CHW,
/// 64-byte aligned, padded to a 64-neuron multiple with zero psum and
/// zero gain/bias in the padding lanes (snn::LayerState's layout);
/// gain/bias are the per-output-channel coefficients broadcast per
/// neuron, so the kernels read contiguous streams only.
struct FireArgs {
    const std::int32_t* psum = nullptr;  ///< main-branch aggregated current
    /// Per-neuron broadcast coefficient banks (any layer geometry).
    const std::int16_t* gain = nullptr;
    const std::int16_t* bias = nullptr;
    /// Channel-uniform fast path: when `plane` is a whole number of
    /// 64-neuron words, every word lies inside one channel, so the
    /// kernels hoist the coefficients to two broadcast scalars per word
    /// from these per-channel arrays instead of streaming the banks
    /// (saves a third of the pass's memory traffic on conv shapes).
    /// Set both `plane` (% 64 == 0) and these pointers to take it; the
    /// banks are then ignored and may be null.
    const std::int16_t* channel_gain = nullptr;
    const std::int16_t* channel_bias = nullptr;
    std::int64_t plane = 0;  ///< OH * OW (used by the uniform path only)
    int gain_shift = util::kBnGainShift;

    /// Residual downsample branch (fused two-psum aggregate); ignored
    /// unless the layer has a non-identity skip. Same bank/uniform
    /// split as the main branch.
    const std::int32_t* skip_psum = nullptr;
    const std::int16_t* skip_gain = nullptr;
    const std::int16_t* skip_bias = nullptr;
    const std::int16_t* skip_channel_gain = nullptr;
    const std::int16_t* skip_channel_bias = nullptr;
    int skip_gain_shift = util::kBnGainShift;

    /// Identity-skip source spikes as packed words (same CHW geometry
    /// as the output map); null unless the layer has an identity skip.
    const std::uint64_t* skip_words = nullptr;
    std::int16_t identity_charge = 0;

    std::int16_t* membrane = nullptr;  ///< read-modify-write potentials
    std::int16_t threshold = 0;
    ResetMode reset = ResetMode::kSubtract;
    int leak_shift = 0;  ///< LIF kernel only
    std::int64_t neurons = 0;
};

/// Fused fire stage for IF neurons: one dense sweep over the SoA banks
/// that aggregates (main + optional skip), thresholds, resets
/// (subtract/zero) and emits spikes — 64 neurons per iteration as
/// 8-lane int32 groups with no per-neuron branches, the fire mask
/// assembled from lane compares and written word-wise into `out`
/// (every word overwritten, tail bits masked). Bit-identical to the
/// scalar aggregate()/update_neuron() loop: each lane performs the
/// same util/fixed_point lane ops in the same order.
void aggregate_fire_dense(const FireArgs& a, SpikeMap& out);

/// As aggregate_fire_dense with the LIF leak (U -= U >> leak_shift,
/// saturating) fused in front of the integration.
void aggregate_fire_lif(const FireArgs& a, SpikeMap& out);

/// Aggregation-core arithmetic (batch-norm unit of Eq. 2): 16-bit
/// saturating psum, fixed-point gain multiply, bias add. Written in the
/// int32 lane ops of util/fixed_point.hpp — the exact per-lane recipe
/// the vectorized fire kernels execute 8 lanes at a time, so the scalar
/// and SIMD fire paths share one arithmetic definition.
[[nodiscard]] inline std::int16_t aggregate(std::int32_t psum, std::int16_t gain,
                                            std::int16_t bias, int shift) noexcept {
    const std::int32_t p16 = util::clamp16_lane(psum);
    const std::int32_t scaled = util::fxp_mul_shift_lane(p16, gain, shift);
    return static_cast<std::int16_t>(util::clamp16_lane(scaled + bias));
}

/// Activation-unit update: leak (LIF mode), integrate, threshold
/// compare, reset. Returns the new potential; sets `spike`. Same
/// int32-lane spelling as `aggregate` (see there).
[[nodiscard]] inline std::int16_t update_neuron(std::int16_t membrane, std::int16_t current,
                                                const SnnLayer& layer,
                                                bool& spike) noexcept {
    std::int32_t u = membrane;
    if (layer.neuron == NeuronKind::kLif) {
        u = util::clamp16_lane(u - (u >> layer.leak_shift));
    }
    u = util::clamp16_lane(u + current);
    spike = u >= layer.threshold;
    if (spike) {
        u = layer.reset == ResetMode::kSubtract ? util::clamp16_lane(u - layer.threshold)
                                                : 0;
    }
    return static_cast<std::int16_t>(u);
}

}  // namespace sia::snn::compute
