#include "snn/exit.hpp"

#include <stdexcept>

namespace sia::snn {

void ExitCriterion::validate() const {
    if (margin < 0) {
        throw std::invalid_argument("ExitCriterion: margin must be >= 0");
    }
    if (stable_checks < 0) {
        throw std::invalid_argument("ExitCriterion: stable_checks must be >= 0");
    }
    if (min_steps < 1) {
        throw std::invalid_argument("ExitCriterion: min_steps must be >= 1");
    }
    if (hysteresis < 1) {
        throw std::invalid_argument("ExitCriterion: hysteresis must be >= 1");
    }
    if (check_interval < 1) {
        throw std::invalid_argument("ExitCriterion: check_interval must be >= 1");
    }
}

ExitEvaluator::ExitEvaluator(const ExitCriterion& criterion,
                             std::span<const std::int64_t> baseline)
    : criterion_(criterion), baseline_(baseline.begin(), baseline.end()) {
    criterion_.validate();
}

ExitReason ExitEvaluator::observe(std::span<const std::int64_t> readout,
                                  std::int64_t steps_done) {
    if (!criterion_.enabled() || !criterion_.evaluates_at(steps_done)) {
        return ExitReason::kNone;
    }
    const std::size_t classes = readout.size();
    if (classes < 2) return ExitReason::kNone;  // nothing to separate

    // Top-1/top-2 of the window-delta readout, first-index-wins (the
    // argmax_first convention both engines' predictions are defined by).
    std::size_t top = 0;
    std::int64_t best = readout[0] - (0 < baseline_.size() ? baseline_[0] : 0);
    std::int64_t second = 0;
    bool have_second = false;
    for (std::size_t j = 1; j < classes; ++j) {
        const std::int64_t d =
            readout[j] - (j < baseline_.size() ? baseline_[j] : 0);
        if (d > best) {
            second = best;
            have_second = true;
            best = d;
            top = j;
        } else if (!have_second || d > second) {
            second = d;
            have_second = true;
        }
    }

    if (best == second) {
        // Exact top-2 tie (covers the all-zero / all-equal delta): the
        // prediction is undecided, so no rule may fire and both streaks
        // restart from scratch.
        margin_streak_ = 0;
        stable_streak_ = 0;
        last_top_ = -1;
        return ExitReason::kNone;
    }

    if (criterion_.margin > 0 && best - second >= criterion_.margin) {
        ++margin_streak_;
    } else {
        margin_streak_ = 0;
    }
    stable_streak_ =
        static_cast<std::int64_t>(top) == last_top_ ? stable_streak_ + 1 : 1;
    last_top_ = static_cast<std::int64_t>(top);

    if (criterion_.margin > 0 && margin_streak_ >= criterion_.hysteresis) {
        return ExitReason::kMargin;
    }
    if (criterion_.stable_checks > 0 && stable_streak_ >= criterion_.stable_checks) {
        return ExitReason::kStable;
    }
    return ExitReason::kNone;
}

}  // namespace sia::snn
