// Input spike encoding — the "frame data conversion" the paper runs on
// the ZYNQ processor (§IV) before streaming spikes into the PL.
//
// Thermometer (a.k.a. evenly-spread rate) coding: a pixel v in [0, 1]
// emits round(v * T) spikes, spread evenly across the T timesteps
// (Bresenham spacing) so that truncated prefixes are maximally
// informative — the property that lets one T=30 simulation evaluate
// every accuracy-vs-timestep point of Figs. 7 and 9.
#pragma once

#include <cstdint>

#include "snn/spike.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace sia::snn {

/// Encode one image [1, C, H, W] (or [C, H, W]-shaped rank-4 with N=1),
/// values clamped to [0, 1], into T spike maps.
[[nodiscard]] SpikeTrain encode_thermometer(const tensor::Tensor& image,
                                            std::int64_t timesteps);

/// Poisson (Bernoulli rate) coding: pixel v in [0, 1] fires
/// independently with probability v at each timestep. The stochastic
/// baseline thermometer coding improves on; reproducible via the caller's
/// seeded Rng (core::BatchRunner feeds a per-item stream so batched
/// encoding is thread-count invariant).
[[nodiscard]] SpikeTrain encode_poisson(const tensor::Tensor& image,
                                        std::int64_t timesteps, util::Rng& rng);

/// Adapt pre-rasterised spike frames [T, C, H, W] (e.g. DVS events from
/// data::events_to_frames) into a SpikeTrain; nonzero = spike.
[[nodiscard]] SpikeTrain frames_to_train(const tensor::Tensor& frames);

/// Mean value represented by a train (diagnostic: decode error of the
/// encoder is bounded by 1/(2T)).
[[nodiscard]] double decode_mean_rate(const SpikeTrain& train);

}  // namespace sia::snn
