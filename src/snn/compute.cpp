#include "snn/compute.hpp"

#include <algorithm>

#include "snn/simd.hpp"

namespace sia::snn::compute {

std::vector<std::int8_t> transpose_conv(const Branch& b) {
    const std::int64_t oc = b.out_channels;
    const std::int64_t patch = b.in_channels * b.kernel * b.kernel;
    std::vector<std::int8_t> wt(static_cast<std::size_t>(patch * oc), 0);
    for (std::int64_t o = 0; o < oc; ++o) {
        for (std::int64_t p = 0; p < patch; ++p) {
            wt[static_cast<std::size_t>(p * oc + o)] =
                b.weights[static_cast<std::size_t>(o * patch + p)];
        }
    }
    return wt;
}

std::vector<std::int8_t> transpose_linear(const Branch& b) {
    std::vector<std::int8_t> wt(static_cast<std::size_t>(b.in_features * b.out_features),
                                0);
    for (std::int64_t f = 0; f < b.out_features; ++f) {
        for (std::int64_t d = 0; d < b.in_features; ++d) {
            wt[static_cast<std::size_t>(d * b.out_features + f)] =
                b.weights[static_cast<std::size_t>(f * b.in_features + d)];
        }
    }
    return wt;
}

void conv_psum_chunk(const Branch& b, const std::vector<std::int8_t>& wt,
                     const SpikeMap& in, std::int64_t out_h, std::int64_t out_w,
                     std::int64_t ic_begin, std::int64_t ic_end,
                     std::span<std::int32_t> psum) {
    conv_psum_chunk_oc(b, wt, in, out_h, out_w, ic_begin, ic_end, 0, b.out_channels,
                       psum);
}

void conv_psum_chunk_oc(const Branch& b, const std::vector<std::int8_t>& wt,
                        const SpikeMap& in, std::int64_t out_h, std::int64_t out_w,
                        std::int64_t ic_begin, std::int64_t ic_end,
                        std::int64_t oc_begin, std::int64_t oc_end,
                        std::span<std::int32_t> psum) {
    const std::int64_t oc = b.out_channels;
    const std::int64_t in_h = in.height();
    const std::int64_t in_w = in.width();
    for (std::int64_t y = 0; y < out_h; ++y) {
        for (std::int64_t x = 0; x < out_w; ++x) {
            std::int32_t* prow = psum.data() + (y * out_w + x) * oc;
            for (std::int64_t ic = ic_begin; ic < ic_end; ++ic) {
                for (std::int64_t ky = 0; ky < b.kernel; ++ky) {
                    const std::int64_t iy = y * b.stride + ky - b.padding;
                    if (iy < 0 || iy >= in_h) continue;
                    for (std::int64_t kx = 0; kx < b.kernel; ++kx) {
                        const std::int64_t ix = x * b.stride + kx - b.padding;
                        if (ix < 0 || ix >= in_w) continue;
                        if (!in.get(ic, iy, ix)) continue;
                        const std::int8_t* wrow =
                            wt.data() + ((ic * b.kernel + ky) * b.kernel + kx) * oc;
                        for (std::int64_t o = oc_begin; o < oc_end; ++o) {
                            prow[o] += wrow[o];
                        }
                    }
                }
            }
        }
    }
}

void conv_psum(const Branch& b, const std::vector<std::int8_t>& wt, const SpikeMap& in,
               std::int64_t out_h, std::int64_t out_w, std::span<std::int32_t> psum) {
    std::fill(psum.begin(), psum.end(), 0);
    conv_psum_chunk(b, wt, in, out_h, out_w, 0, b.in_channels, psum);
}

void conv_psum_scatter(const Branch& b, const std::vector<std::int8_t>& wt,
                       const SpikeMap& in, std::int64_t out_h, std::int64_t out_w,
                       std::span<std::int32_t> psum) {
    std::fill(psum.begin(), psum.end(), 0);
    const std::int64_t oc = b.out_channels;
    const std::int64_t in_w = in.width();
    const std::int64_t plane = in.height() * in_w;
    in.for_each_spike([&](std::int64_t flat) {
        const std::int64_t ic = flat / plane;
        const std::int64_t rem = flat - ic * plane;
        const std::int64_t iy = rem / in_w;
        const std::int64_t ix = rem - iy * in_w;
        const std::int8_t* wplane = wt.data() + ic * b.kernel * b.kernel * oc;
        for (std::int64_t ky = 0; ky < b.kernel; ++ky) {
            // Output rows hit by this spike: y * stride + ky - padding == iy.
            const std::int64_t ty = iy + b.padding - ky;
            if (ty < 0) break;  // ty only decreases with ky
            if (ty % b.stride != 0) continue;
            const std::int64_t y = ty / b.stride;
            if (y >= out_h) continue;
            const std::int8_t* wrow_y = wplane + ky * b.kernel * oc;
            std::int32_t* prow_y = psum.data() + y * out_w * oc;
            for (std::int64_t kx = 0; kx < b.kernel; ++kx) {
                const std::int64_t tx = ix + b.padding - kx;
                if (tx < 0) break;
                if (tx % b.stride != 0) continue;
                const std::int64_t x = tx / b.stride;
                if (x >= out_w) continue;
                const std::int8_t* wrow = wrow_y + kx * oc;
                std::int32_t* prow = prow_y + x * oc;
                for (std::int64_t o = 0; o < oc; ++o) prow[o] += wrow[o];
            }
        }
    });
}

void linear_psum(const Branch& b, const std::vector<std::int8_t>& wt, const SpikeMap& in,
                 std::span<std::int32_t> psum) {
    linear_psum_range(b, wt, in, 0, b.out_features, psum);
}

void linear_psum_range(const Branch& b, const std::vector<std::int8_t>& wt,
                       const SpikeMap& in, std::int64_t f_begin, std::int64_t f_end,
                       std::span<std::int32_t> psum) {
    std::fill(psum.begin() + f_begin, psum.begin() + f_end, 0);
    for (std::int64_t d = 0; d < b.in_features; ++d) {
        if (!in.get_flat(d)) continue;
        const std::int8_t* wrow = wt.data() + d * b.out_features;
        for (std::int64_t f = f_begin; f < f_end; ++f) {
            psum[static_cast<std::size_t>(f)] += wrow[f];
        }
    }
}

void linear_psum_scatter(const Branch& b, const std::vector<std::int8_t>& wt,
                         const SpikeMap& in, std::span<std::int32_t> psum) {
    std::fill(psum.begin(), psum.end(), 0);
    const std::int64_t features = b.out_features;
    std::int32_t* p = psum.data();
    in.for_each_spike([&](std::int64_t d) {
        const std::int8_t* wrow = wt.data() + d * features;
        for (std::int64_t f = 0; f < features; ++f) p[f] += wrow[f];
    });
}

namespace {

/// Scalar tile transpose (the remainder path, and the whole path when
/// no shuffle support is compiled in): 16x16 int32 tiles keep both
/// faces in L1 while the writes stay sequential runs.
void transpose_tile_scalar(const std::int32_t* hwc, std::int32_t* chw,
                           std::int64_t channels, std::int64_t plane,
                           std::int64_t p0, std::int64_t p_end, std::int64_t c0,
                           std::int64_t c_end) {
    constexpr std::int64_t kTile = 16;
    for (std::int64_t pt = p0; pt < p_end; pt += kTile) {
        const std::int64_t p1 = std::min(pt + kTile, p_end);
        for (std::int64_t ct = c0; ct < c_end; ct += kTile) {
            const std::int64_t c1 = std::min(ct + kTile, c_end);
            for (std::int64_t c = ct; c < c1; ++c) {
                std::int32_t* crow = chw + c * plane;
                for (std::int64_t p = pt; p < p1; ++p) {
                    crow[p] = hwc[p * channels + c];
                }
            }
        }
    }
}

}  // namespace

void transpose_hwc_to_chw(const std::int32_t* hwc, std::int32_t* chw,
                          std::int64_t channels, std::int64_t plane) {
#if defined(SIA_SIMD_SHUFFLE)
    // Bulk: 8x8 register-resident tiles through the shuffle network;
    // the ragged right/bottom edges fall back to the scalar tiles.
    // Channel-outer order keeps the 8 destination rows fixed while the
    // writes stream along the plane — plane is typically a power-of-two
    // number of KiB, so the plane-outer order would land every tile's 8
    // writes in one L1 set and thrash it.
    const std::int64_t c8 = channels & ~std::int64_t{7};
    const std::int64_t p8 = plane & ~std::int64_t{7};
    for (std::int64_t c0 = 0; c0 < c8; c0 += 8) {
        for (std::int64_t p0 = 0; p0 < p8; p0 += 8) {
            simd::i32x8 rows[8];
            simd::i32x8 cols[8];
            for (int k = 0; k < 8; ++k) {
                rows[k] = simd::load(hwc + (p0 + k) * channels + c0);
            }
            simd::transpose8x8(rows, cols);
            for (int j = 0; j < 8; ++j) {
                simd::store(chw + (c0 + j) * plane + p0, cols[j]);
            }
        }
    }
    if (c8 < channels) transpose_tile_scalar(hwc, chw, channels, plane, 0, p8, c8, channels);
    if (p8 < plane) transpose_tile_scalar(hwc, chw, channels, plane, p8, plane, 0, channels);
#else
    transpose_tile_scalar(hwc, chw, channels, plane, 0, plane, 0, channels);
#endif
}

// ------------------------------------------------------------------------
// Fused aggregate+fire kernels. One pass over the SoA banks per layer
// per timestep: aggregate (main + optional skip), LIF decay, integrate,
// threshold, reset and spike emission — 8-lane int32 groups, 64 neurons
// (one packed spike word) per outer iteration, no per-neuron branches.
// Every lane op is the int32 recipe of util/fixed_point's *_lane
// helpers, i.e. exactly what aggregate()/update_neuron() compute — the
// bit-identity of the scalar and vector fire paths is by construction,
// and asserted across the equivalence matrix in
// tests/test_engine_dispatch.cpp.
// ------------------------------------------------------------------------

namespace {

enum class SkipKind { kNone, kIdentity, kConv };

/// m = sat16(fxp_mul_shift(sat16(psum), gain) + bias), 8 lanes; the
/// coefficient vectors come pre-loaded (streamed bank lanes or a
/// hoisted per-channel broadcast — same arithmetic either way).
inline simd::i32x8 aggregate8(const std::int32_t* psum, simd::i32x8 gain,
                              simd::i32x8 bias, int shift) noexcept {
    using simd::i32x8;
    const i32x8 p = simd::clamp16(simd::load(psum));
    const i32x8 prod = p * gain;
    i32x8 scaled;
    if (shift > 0) {
        const i32x8 rounding = simd::broadcast(std::int32_t{1} << (shift - 1));
        scaled = simd::clamp16((prod + rounding) >> shift);
    } else {
        scaled = simd::clamp16(prod);
    }
    return simd::clamp16(scaled + bias);
}

template <bool kLif, bool kSubtract, SkipKind kSkipKind, bool kUniform>
void fused_fire(const FireArgs& a, SpikeMap& out) {
    using simd::i32x8;
    const i32x8 thr = simd::broadcast(a.threshold);
    const i32x8 charge = simd::broadcast(a.identity_charge);
    alignas(32) static constexpr std::int32_t kLaneBit[simd::kLanes] = {1,  2,  4,  8,
                                                                       16, 32, 64, 128};
    const i32x8 lane_bit = simd::load(kLaneBit);
    const i32x8 one = simd::broadcast(1);
    // Channel-uniform path: whole words share one channel, so the
    // coefficient lookups hoist to per-word broadcasts, refreshed only
    // at channel boundaries (tracked incrementally — no division in
    // the word loop).
    [[maybe_unused]] const std::int64_t words_per_channel =
        kUniform ? a.plane / simd::kBlock : 0;
    [[maybe_unused]] std::int64_t channel = 0;
    [[maybe_unused]] std::int64_t channel_words_left = 0;
    i32x8 gain_u{};
    i32x8 bias_u{};
    [[maybe_unused]] i32x8 skip_gain_u{};
    [[maybe_unused]] i32x8 skip_bias_u{};

    const std::int64_t words = (a.neurons + simd::kBlock - 1) / simd::kBlock;
    for (std::int64_t w = 0; w < words; ++w) {
        const std::int64_t base = w * simd::kBlock;
        [[maybe_unused]] std::uint64_t skip_word = 0;
        if constexpr (kSkipKind == SkipKind::kIdentity) skip_word = a.skip_words[w];
        if constexpr (kUniform) {
            if (channel_words_left == 0) {
                gain_u = simd::broadcast(a.channel_gain[channel]);
                bias_u = simd::broadcast(a.channel_bias[channel]);
                if constexpr (kSkipKind == SkipKind::kConv) {
                    skip_gain_u = simd::broadcast(a.skip_channel_gain[channel]);
                    skip_bias_u = simd::broadcast(a.skip_channel_bias[channel]);
                }
                ++channel;
                channel_words_left = words_per_channel;
            }
            --channel_words_left;
        }
        std::uint64_t fired = 0;
        for (int g = 0; g < simd::kBlock / simd::kLanes; ++g) {
            const std::int64_t i = base + g * simd::kLanes;
            const i32x8 gain = kUniform ? gain_u : simd::load_i16(a.gain + i);
            const i32x8 bias = kUniform ? bias_u : simd::load_i16(a.bias + i);
            i32x8 m = aggregate8(a.psum + i, gain, bias, a.gain_shift);
            if constexpr (kSkipKind == SkipKind::kConv) {
                const i32x8 sg = kUniform ? skip_gain_u : simd::load_i16(a.skip_gain + i);
                const i32x8 sb = kUniform ? skip_bias_u : simd::load_i16(a.skip_bias + i);
                const i32x8 ms = aggregate8(a.skip_psum + i, sg, sb, a.skip_gain_shift);
                m = simd::clamp16(m + ms);
            } else if constexpr (kSkipKind == SkipKind::kIdentity) {
                const i32x8 byte = simd::broadcast(
                    static_cast<std::int32_t>((skip_word >> (g * simd::kLanes)) & 0xFFU));
                const i32x8 has = (byte & lane_bit) >= one;  // all-ones/zero lanes
                m = simd::clamp16(m + (has & charge));
            }
            i32x8 u = simd::load_i16(a.membrane + i);
            if constexpr (kLif) u = simd::clamp16(u - (u >> a.leak_shift));
            u = simd::clamp16(u + m);
            const i32x8 fire = u >= thr;
            i32x8 reset;
            if constexpr (kSubtract) {
                reset = simd::clamp16(u - thr);
            } else {
                reset = simd::broadcast(0);
            }
            u = simd::select(fire, reset, u);
            simd::store_i16(a.membrane + i, u);
            fired |= simd::movemask(fire) << (g * simd::kLanes);
        }
        // Padding lanes aggregate zero current, but a non-positive
        // threshold could still fire them: mask the tail word so the
        // map's trailing-bits-zero invariant holds unconditionally.
        if (w == words - 1) {
            const std::uint64_t tail = static_cast<std::uint64_t>(a.neurons) & 63U;
            if (tail != 0) fired &= ~std::uint64_t{0} >> (64U - tail);
        }
        out.set_word(w, fired);
    }
}

template <bool kLif, bool kSubtract, SkipKind kSkipKind>
void fire_dispatch_uniform(const FireArgs& a, SpikeMap& out) {
    const bool uniform = a.plane > 0 && a.plane % simd::kBlock == 0 &&
                         a.channel_gain != nullptr && a.channel_bias != nullptr;
    if (uniform) {
        fused_fire<kLif, kSubtract, kSkipKind, true>(a, out);
    } else {
        fused_fire<kLif, kSubtract, kSkipKind, false>(a, out);
    }
}

template <bool kLif>
void fire_dispatch(const FireArgs& a, SpikeMap& out) {
    const SkipKind skip = a.skip_words != nullptr  ? SkipKind::kIdentity
                          : a.skip_psum != nullptr ? SkipKind::kConv
                                                   : SkipKind::kNone;
    const bool subtract = a.reset == ResetMode::kSubtract;
    switch (skip) {
        case SkipKind::kNone:
            subtract ? fire_dispatch_uniform<kLif, true, SkipKind::kNone>(a, out)
                     : fire_dispatch_uniform<kLif, false, SkipKind::kNone>(a, out);
            break;
        case SkipKind::kIdentity:
            subtract ? fire_dispatch_uniform<kLif, true, SkipKind::kIdentity>(a, out)
                     : fire_dispatch_uniform<kLif, false, SkipKind::kIdentity>(a, out);
            break;
        case SkipKind::kConv:
            subtract ? fire_dispatch_uniform<kLif, true, SkipKind::kConv>(a, out)
                     : fire_dispatch_uniform<kLif, false, SkipKind::kConv>(a, out);
            break;
    }
}

}  // namespace

void aggregate_fire_dense(const FireArgs& a, SpikeMap& out) {
    fire_dispatch<false>(a, out);
}

void aggregate_fire_lif(const FireArgs& a, SpikeMap& out) {
    fire_dispatch<true>(a, out);
}

}  // namespace sia::snn::compute
