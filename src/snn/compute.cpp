#include "snn/compute.hpp"

#include <algorithm>

namespace sia::snn::compute {

std::vector<std::int8_t> transpose_conv(const Branch& b) {
    const std::int64_t oc = b.out_channels;
    const std::int64_t patch = b.in_channels * b.kernel * b.kernel;
    std::vector<std::int8_t> wt(static_cast<std::size_t>(patch * oc), 0);
    for (std::int64_t o = 0; o < oc; ++o) {
        for (std::int64_t p = 0; p < patch; ++p) {
            wt[static_cast<std::size_t>(p * oc + o)] =
                b.weights[static_cast<std::size_t>(o * patch + p)];
        }
    }
    return wt;
}

std::vector<std::int8_t> transpose_linear(const Branch& b) {
    std::vector<std::int8_t> wt(static_cast<std::size_t>(b.in_features * b.out_features),
                                0);
    for (std::int64_t f = 0; f < b.out_features; ++f) {
        for (std::int64_t d = 0; d < b.in_features; ++d) {
            wt[static_cast<std::size_t>(d * b.out_features + f)] =
                b.weights[static_cast<std::size_t>(f * b.in_features + d)];
        }
    }
    return wt;
}

void conv_psum_chunk(const Branch& b, const std::vector<std::int8_t>& wt,
                     const SpikeMap& in, std::int64_t out_h, std::int64_t out_w,
                     std::int64_t ic_begin, std::int64_t ic_end,
                     std::vector<std::int32_t>& psum) {
    const std::int64_t oc = b.out_channels;
    const std::int64_t in_h = in.height();
    const std::int64_t in_w = in.width();
    for (std::int64_t y = 0; y < out_h; ++y) {
        for (std::int64_t x = 0; x < out_w; ++x) {
            std::int32_t* prow = psum.data() + (y * out_w + x) * oc;
            for (std::int64_t ic = ic_begin; ic < ic_end; ++ic) {
                for (std::int64_t ky = 0; ky < b.kernel; ++ky) {
                    const std::int64_t iy = y * b.stride + ky - b.padding;
                    if (iy < 0 || iy >= in_h) continue;
                    for (std::int64_t kx = 0; kx < b.kernel; ++kx) {
                        const std::int64_t ix = x * b.stride + kx - b.padding;
                        if (ix < 0 || ix >= in_w) continue;
                        if (!in.get(ic, iy, ix)) continue;
                        const std::int8_t* wrow =
                            wt.data() + ((ic * b.kernel + ky) * b.kernel + kx) * oc;
                        for (std::int64_t o = 0; o < oc; ++o) prow[o] += wrow[o];
                    }
                }
            }
        }
    }
}

void conv_psum(const Branch& b, const std::vector<std::int8_t>& wt, const SpikeMap& in,
               std::int64_t out_h, std::int64_t out_w, std::vector<std::int32_t>& psum) {
    std::fill(psum.begin(), psum.end(), 0);
    conv_psum_chunk(b, wt, in, out_h, out_w, 0, b.in_channels, psum);
}

void conv_psum_scatter(const Branch& b, const std::vector<std::int8_t>& wt,
                       const SpikeMap& in, std::int64_t out_h, std::int64_t out_w,
                       std::vector<std::int32_t>& psum) {
    std::fill(psum.begin(), psum.end(), 0);
    const std::int64_t oc = b.out_channels;
    const std::int64_t in_w = in.width();
    const std::int64_t plane = in.height() * in_w;
    in.for_each_spike([&](std::int64_t flat) {
        const std::int64_t ic = flat / plane;
        const std::int64_t rem = flat - ic * plane;
        const std::int64_t iy = rem / in_w;
        const std::int64_t ix = rem - iy * in_w;
        const std::int8_t* wplane = wt.data() + ic * b.kernel * b.kernel * oc;
        for (std::int64_t ky = 0; ky < b.kernel; ++ky) {
            // Output rows hit by this spike: y * stride + ky - padding == iy.
            const std::int64_t ty = iy + b.padding - ky;
            if (ty < 0) break;  // ty only decreases with ky
            if (ty % b.stride != 0) continue;
            const std::int64_t y = ty / b.stride;
            if (y >= out_h) continue;
            const std::int8_t* wrow_y = wplane + ky * b.kernel * oc;
            std::int32_t* prow_y = psum.data() + y * out_w * oc;
            for (std::int64_t kx = 0; kx < b.kernel; ++kx) {
                const std::int64_t tx = ix + b.padding - kx;
                if (tx < 0) break;
                if (tx % b.stride != 0) continue;
                const std::int64_t x = tx / b.stride;
                if (x >= out_w) continue;
                const std::int8_t* wrow = wrow_y + kx * oc;
                std::int32_t* prow = prow_y + x * oc;
                for (std::int64_t o = 0; o < oc; ++o) prow[o] += wrow[o];
            }
        }
    });
}

void linear_psum(const Branch& b, const std::vector<std::int8_t>& wt, const SpikeMap& in,
                 std::vector<std::int32_t>& psum) {
    std::fill(psum.begin(), psum.end(), 0);
    for (std::int64_t d = 0; d < b.in_features; ++d) {
        if (!in.get_flat(d)) continue;
        const std::int8_t* wrow = wt.data() + d * b.out_features;
        for (std::int64_t f = 0; f < b.out_features; ++f) {
            psum[static_cast<std::size_t>(f)] += wrow[f];
        }
    }
}

void linear_psum_scatter(const Branch& b, const std::vector<std::int8_t>& wt,
                         const SpikeMap& in, std::vector<std::int32_t>& psum) {
    std::fill(psum.begin(), psum.end(), 0);
    const std::int64_t features = b.out_features;
    std::int32_t* p = psum.data();
    in.for_each_spike([&](std::int64_t d) {
        const std::int8_t* wrow = wt.data() + d * features;
        for (std::int64_t f = 0; f < features; ++f) p[f] += wrow[f];
    });
}

}  // namespace sia::snn::compute
