#include "snn/model.hpp"

#include <stdexcept>
#include <string>

namespace sia::snn {

namespace {

void require(bool cond, const std::string& what) {
    if (!cond) throw std::invalid_argument("SnnModel::validate: " + what);
}

void validate_conv_branch(const Branch& b, const std::string& label) {
    require(b.in_channels > 0 && b.out_channels > 0, label + ": bad channels");
    require(b.kernel > 0 && b.stride > 0 && b.padding >= 0, label + ": bad geometry");
    require(static_cast<std::int64_t>(b.weights.size()) ==
                b.out_channels * b.in_channels * b.kernel * b.kernel,
            label + ": weight size mismatch");
    require(static_cast<std::int64_t>(b.gain.size()) == b.out_channels,
            label + ": gain size mismatch");
    require(static_cast<std::int64_t>(b.bias.size()) == b.out_channels,
            label + ": bias size mismatch");
    require(b.gain_shift >= 0 && b.gain_shift <= 15, label + ": bad gain shift");
}

void validate_linear_branch(const Branch& b, const std::string& label) {
    require(b.in_features > 0 && b.out_features > 0, label + ": bad features");
    require(static_cast<std::int64_t>(b.weights.size()) == b.out_features * b.in_features,
            label + ": weight size mismatch");
    require(static_cast<std::int64_t>(b.gain.size()) == b.out_features,
            label + ": gain size mismatch");
    require(static_cast<std::int64_t>(b.bias.size()) == b.out_features,
            label + ": bias size mismatch");
    // Same bound as conv branches; the fire-stage lane arithmetic
    // (util::fxp_mul_shift_lane) relies on it to keep the rounded
    // product inside int32.
    require(b.gain_shift >= 0 && b.gain_shift <= 15, label + ": bad gain shift");
}

}  // namespace

void SnnModel::validate() const {
    require(input_channels > 0 && input_h > 0 && input_w > 0, "bad input geometry");
    require(!layers.empty(), "no layers");
    for (std::size_t i = 0; i < layers.size(); ++i) {
        const SnnLayer& layer = layers[i];
        const std::string label = layer.label.empty() ? ("layer" + std::to_string(i))
                                                      : layer.label;
        require(layer.input >= -1 && layer.input < static_cast<int>(i),
                label + ": input must reference an earlier layer");
        require(layer.spiking || layer.op == LayerOp::kLinear,
                label + ": readout (non-spiking) layers must be linear");
        if (layer.op == LayerOp::kConv) {
            validate_conv_branch(layer.main, label + ".main");
            const std::int64_t in_c =
                layer.input == -1 ? input_channels
                                  : layers[static_cast<std::size_t>(layer.input)].out_channels;
            require(layer.main.in_channels == in_c, label + ": input channel mismatch");
            require(layer.out_channels == layer.main.out_channels,
                    label + ": out_channels mismatch");
        } else {
            validate_linear_branch(layer.main, label + ".main");
            require(layer.out_channels == layer.main.out_features,
                    label + ": out_features mismatch");
            const std::int64_t src_neurons =
                layer.input == -1
                    ? input_channels * input_h * input_w
                    : layers[static_cast<std::size_t>(layer.input)].neurons();
            require(layer.main.in_features == src_neurons,
                    label + ": in_features does not match source layer size");
        }
        if (layer.has_skip()) {
            require(layer.op == LayerOp::kConv, label + ": skip only on conv layers");
            require(layer.skip_src >= -1 && layer.skip_src < static_cast<int>(i),
                    label + ": skip must reference an earlier layer");
            if (!layer.skip_is_identity) {
                validate_conv_branch(layer.skip, label + ".skip");
                require(layer.skip.out_channels == layer.out_channels,
                        label + ": skip out_channels mismatch");
            } else {
                // Identity skips inject the source map verbatim, and
                // the fused fire kernels alias its packed words, so
                // the full CHW geometry must match — not just the
                // channel count.
                const bool from_input = layer.skip_src == -1;
                const SnnLayer* src =
                    from_input ? nullptr
                               : &layers[static_cast<std::size_t>(layer.skip_src)];
                const std::int64_t src_c = from_input ? input_channels : src->out_channels;
                const std::int64_t src_h = from_input ? input_h : src->out_h;
                const std::int64_t src_w = from_input ? input_w : src->out_w;
                require(src_c == layer.out_channels,
                        label + ": identity skip channel mismatch");
                require(src_h == layer.out_h && src_w == layer.out_w,
                        label + ": identity skip spatial mismatch");
            }
        }
        require(layer.threshold > 0, label + ": non-positive threshold");
        require(layer.leak_shift >= 0 && layer.leak_shift <= 15,
                label + ": bad leak shift");
        require(layer.out_h > 0 && layer.out_w > 0, label + ": bad output geometry");
    }
}

std::uint64_t SnnModel::ops_per_timestep() const noexcept {
    std::uint64_t ops = 0;
    for (const SnnLayer& layer : layers) {
        if (layer.op == LayerOp::kConv) {
            const auto& b = layer.main;
            ops += static_cast<std::uint64_t>(layer.out_h * layer.out_w * b.out_channels *
                                              b.in_channels * b.kernel * b.kernel) *
                   2ULL;
            if (layer.has_skip() && !layer.skip_is_identity) {
                const auto& s = layer.skip;
                ops += static_cast<std::uint64_t>(layer.out_h * layer.out_w *
                                                  s.out_channels * s.in_channels) *
                       2ULL;
            }
        } else {
            ops += static_cast<std::uint64_t>(layer.main.in_features *
                                              layer.main.out_features) *
                   2ULL;
        }
    }
    return ops;
}

}  // namespace sia::snn
