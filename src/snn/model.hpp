// The quantized spiking network model — the artefact produced by
// core::AnnToSnnConverter and executed by BOTH the functional engine
// (snn::FunctionalEngine, the semantic reference) and the cycle-accurate
// hardware simulator (sim::Sia). The two must agree bit-exactly; that
// cross-check is the repo's "hardware-software co-optimisation" contract.
//
// All arithmetic is integer / fixed-point, matching the paper's §III:
// INT8 weights, 16-bit partial sums, 16-bit membrane potentials,
// thresholds and batch-norm coefficients (G, H of Eq. 2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/fixed_point.hpp"

namespace sia::snn {

enum class NeuronKind : std::uint8_t {
    kIf,   ///< integrate-and-fire (paper's conversion target; mode bit 0)
    kLif,  ///< leaky integrate-and-fire (mode bit 1): U -= U >> leak_shift per step
};

enum class ResetMode : std::uint8_t {
    kSubtract,  ///< reset-by-subtraction (paper default, better accuracy)
    kZero,      ///< hard reset to zero (ablation)
};

enum class LayerOp : std::uint8_t { kConv, kLinear };

/// One synaptic branch: quantized weights plus the per-output-channel
/// aggregation coefficients that map its 16-bit partial sum into the
/// membrane domain: m = ((psum * gain) >> gain_shift) + bias.
struct Branch {
    std::vector<std::int8_t> weights;  ///< conv: [OC][IC][k][k]; linear: [F][D]
    float weight_scale = 1.0F;         ///< q_w (kept for documentation / round-trip)
    /// Bytes actually streamed to the accelerator. 0 = weights.size().
    /// The converter sets this for pool-unrolled FC layers, whose
    /// physical weights (pre-unroll) are pool_area x smaller than the
    /// expanded matrix the engines index.
    std::int64_t stream_weight_bytes = 0;

    std::vector<std::int16_t> gain;    ///< G_q per output channel
    std::vector<std::int16_t> bias;    ///< H_q per output channel (membrane units/step)
    int gain_shift = util::kBnGainShift;

    // Conv geometry (ignored for linear branches).
    std::int64_t in_channels = 0;
    std::int64_t out_channels = 0;
    std::int64_t kernel = 3;
    std::int64_t stride = 1;
    std::int64_t padding = 1;

    // Linear geometry.
    std::int64_t in_features = 0;
    std::int64_t out_features = 0;

    [[nodiscard]] std::int8_t w_conv(std::int64_t oc, std::int64_t ic, std::int64_t ky,
                                     std::int64_t kx) const noexcept {
        return weights[static_cast<std::size_t>(((oc * in_channels + ic) * kernel + ky) *
                                                kernel + kx)];
    }
    [[nodiscard]] std::int8_t w_lin(std::int64_t f, std::int64_t d) const noexcept {
        return weights[static_cast<std::size_t>(f * in_features + d)];
    }
};

/// Identity residual connection: each source spike injects a fixed
/// membrane-domain charge (the source layer's threshold re-expressed in
/// this layer's membrane units).
struct IdentitySkip {
    std::int16_t charge = 0;  ///< membrane units added per skip spike
};

struct SnnLayer {
    LayerOp op = LayerOp::kConv;
    std::string label;

    /// Index of the layer supplying input spikes; -1 = network input.
    int input = -1;

    Branch main;

    // Residual routing (conv layers of ResNet blocks).
    int skip_src = -2;               ///< -2 = none, -1 = network input, else layer index
    bool skip_is_identity = false;
    IdentitySkip identity_skip;
    Branch skip;                     ///< 1x1 conv + BN downsample when not identity

    // Neuron / activation configuration.
    bool spiking = true;             ///< false = readout (accumulate, never fire)
    NeuronKind neuron = NeuronKind::kIf;
    ResetMode reset = ResetMode::kSubtract;
    std::int16_t threshold = std::int16_t{1} << util::kThetaFracBits;
    std::int16_t initial_potential = std::int16_t{1} << (util::kThetaFracBits - 1);
    int leak_shift = 4;              ///< LIF leak: U -= U >> leak_shift

    float step_size = 1.0F;          ///< s_l, real units (for documentation/GOPS calc)

    // Output geometry.
    std::int64_t out_channels = 0;
    std::int64_t out_h = 1;
    std::int64_t out_w = 1;
    // Input geometry (spatial; conv only).
    std::int64_t in_h = 1;
    std::int64_t in_w = 1;

    [[nodiscard]] std::int64_t neurons() const noexcept {
        return out_channels * out_h * out_w;
    }

    [[nodiscard]] bool has_skip() const noexcept { return skip_src != -2; }
};

struct SnnModel {
    std::vector<SnnLayer> layers;
    std::int64_t input_channels = 0;
    std::int64_t input_h = 0;
    std::int64_t input_w = 0;
    std::int64_t classes = 10;
    std::string name;

    /// Validate internal consistency (shapes, indices, coefficient
    /// vector sizes). Throws std::invalid_argument on violation.
    void validate() const;

    /// Synaptic operations (accumulate ops) of one full-activity forward
    /// pass — the denominator convention of the paper's GOPS numbers
    /// (2 ops per MAC-equivalent: select + add).
    [[nodiscard]] std::uint64_t ops_per_timestep() const noexcept;
};

}  // namespace sia::snn
