// Portable fixed-width SIMD helpers for the fused fire-stage kernels.
//
// The fused aggregate+fire pass (snn::compute::aggregate_fire_*) walks
// flat CHW neuron banks 64 neurons at a time — one packed SpikeMap word
// per iteration — as eight groups of eight int32 lanes. On GCC/Clang
// the lane type compiles to the native vector extensions (SSE2/AVX2
// depending on -march), everywhere else to a plain struct whose
// elementwise loops the optimizer can still auto-vectorize; both
// spellings execute the identical lane arithmetic, so results never
// depend on which one was compiled in.
//
// Also home to AlignedVec, the 64-byte-aligned flat buffer behind
// snn::LayerState's SoA banks (cache-line and vector-register aligned,
// zero-initialized, sized in whole 64-lane blocks by the caller).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>

#if defined(__SSE2__)
#include <immintrin.h>
#endif

namespace sia::snn::simd {

/// int32 lanes per vector group; the fused kernels consume 8 groups
/// (= one 64-bit spike word) per iteration.
inline constexpr int kLanes = 8;
/// Neurons per fused-kernel iteration: one packed SpikeMap word.
inline constexpr std::int64_t kBlock = 64;

// Define SIA_FORCE_SCALAR_SIMD to compile the plain-struct fallback on
// any compiler (used to cross-check that both spellings agree).
#if (defined(__GNUC__) || defined(__clang__)) && !defined(SIA_FORCE_SCALAR_SIMD)
#define SIA_SIMD_NATIVE 1
// 32-byte vectors without -mavx make GCC warn that the value-passing
// ABI differs from AVX builds (-Wpsabi). Every function here is inline
// and only ever crosses boundaries inside this build, where the ABI is
// uniform — the warning does not apply, so silence it for the TU
// (a pop would just resurface it at the inlined call sites).
#pragma GCC diagnostic ignored "-Wpsabi"
using i32x8 = std::int32_t __attribute__((vector_size(32)));
using i16x8 = std::int16_t __attribute__((vector_size(16)));

[[nodiscard]] inline i32x8 broadcast(std::int32_t v) noexcept {
    return i32x8{v, v, v, v, v, v, v, v};
}
[[nodiscard]] inline i32x8 load(const std::int32_t* p) noexcept {
    i32x8 v;
    std::memcpy(&v, p, sizeof v);
    return v;
}
/// Load 8 int16 values widened to int32 lanes.
[[nodiscard]] inline i32x8 load_i16(const std::int16_t* p) noexcept {
    i16x8 s;
    std::memcpy(&s, p, sizeof s);
    return __builtin_convertvector(s, i32x8);
}
/// Store int32 lanes narrowed to int16 (values must already be in
/// int16 range — the kernels clamp before storing).
inline void store_i16(std::int16_t* p, i32x8 v) noexcept {
    const i16x8 s = __builtin_convertvector(v, i16x8);
    std::memcpy(p, &s, sizeof s);
}
/// Lane-select: mask lanes are all-ones/all-zero (comparison results).
[[nodiscard]] inline i32x8 select(i32x8 mask, i32x8 a, i32x8 b) noexcept {
    return (mask & a) | (~mask & b);
}
/// Sign bit of each lane packed into the low 8 bits (lane 0 = bit 0);
/// mask lanes are all-ones/all-zero. This is the spike-emission
/// primitive, so it takes the hardware movemask when the ISA has one —
/// the generic extract loop costs about as much as the rest of the
/// fused kernel put together.
[[nodiscard]] inline std::uint64_t movemask(i32x8 mask) noexcept {
#if defined(__AVX2__)
    __m256i v;
    std::memcpy(&v, &mask, sizeof v);
    return static_cast<std::uint32_t>(_mm256_movemask_ps(_mm256_castsi256_ps(v)));
#elif defined(__SSE2__)
    __m128i halves[2];
    std::memcpy(halves, &mask, sizeof halves);
    const auto lo = static_cast<std::uint32_t>(
        _mm_movemask_ps(_mm_castsi128_ps(halves[0])));
    const auto hi = static_cast<std::uint32_t>(
        _mm_movemask_ps(_mm_castsi128_ps(halves[1])));
    return lo | (hi << 4);
#else
    std::uint64_t bits = 0;
    for (int l = 0; l < kLanes; ++l) {
        bits |= static_cast<std::uint64_t>(mask[l] & 1) << l;
    }
    return bits;
#endif
}

#else  // portable fallback: identical lane semantics, scalar spelling

struct i32x8 {
    std::int32_t l[8];

    friend i32x8 operator+(i32x8 a, i32x8 b) noexcept {
        for (int i = 0; i < 8; ++i) a.l[i] += b.l[i];
        return a;
    }
    friend i32x8 operator-(i32x8 a, i32x8 b) noexcept {
        for (int i = 0; i < 8; ++i) a.l[i] -= b.l[i];
        return a;
    }
    friend i32x8 operator*(i32x8 a, i32x8 b) noexcept {
        for (int i = 0; i < 8; ++i) a.l[i] *= b.l[i];
        return a;
    }
    friend i32x8 operator>>(i32x8 a, int s) noexcept {
        for (int i = 0; i < 8; ++i) a.l[i] >>= s;
        return a;
    }
    friend i32x8 operator&(i32x8 a, i32x8 b) noexcept {
        for (int i = 0; i < 8; ++i) a.l[i] &= b.l[i];
        return a;
    }
    friend i32x8 operator|(i32x8 a, i32x8 b) noexcept {
        for (int i = 0; i < 8; ++i) a.l[i] |= b.l[i];
        return a;
    }
    friend i32x8 operator~(i32x8 a) noexcept {
        for (int i = 0; i < 8; ++i) a.l[i] = ~a.l[i];
        return a;
    }
    /// Comparisons yield all-ones/all-zero lanes, as the native
    /// vector-extension comparisons do.
    friend i32x8 operator<(i32x8 a, i32x8 b) noexcept {
        for (int i = 0; i < 8; ++i) a.l[i] = a.l[i] < b.l[i] ? -1 : 0;
        return a;
    }
    friend i32x8 operator>=(i32x8 a, i32x8 b) noexcept {
        for (int i = 0; i < 8; ++i) a.l[i] = a.l[i] >= b.l[i] ? -1 : 0;
        return a;
    }
    std::int32_t operator[](int i) const noexcept { return l[i]; }
};

[[nodiscard]] inline i32x8 broadcast(std::int32_t v) noexcept {
    return i32x8{{v, v, v, v, v, v, v, v}};
}
[[nodiscard]] inline i32x8 load(const std::int32_t* p) noexcept {
    i32x8 v;
    std::memcpy(v.l, p, sizeof v.l);
    return v;
}
[[nodiscard]] inline i32x8 load_i16(const std::int16_t* p) noexcept {
    i32x8 v;
    for (int i = 0; i < 8; ++i) v.l[i] = p[i];
    return v;
}
inline void store_i16(std::int16_t* p, i32x8 v) noexcept {
    for (int i = 0; i < 8; ++i) p[i] = static_cast<std::int16_t>(v.l[i]);
}
[[nodiscard]] inline i32x8 select(i32x8 mask, i32x8 a, i32x8 b) noexcept {
    return (mask & a) | (~mask & b);
}
[[nodiscard]] inline std::uint64_t movemask(i32x8 mask) noexcept {
    std::uint64_t bits = 0;
    for (int l = 0; l < kLanes; ++l) {
        bits |= static_cast<std::uint64_t>(mask[l] & 1) << l;
    }
    return bits;
}

#endif

#if defined(SIA_SIMD_NATIVE) && \
    (defined(__clang__) || (defined(__GNUC__) && __GNUC__ >= 12))
#define SIA_SIMD_SHUFFLE 1
/// Transpose an 8x8 int32 tile held in 8 vectors: out[j] = column j of
/// rows r[0..7]. Three stages of two-vector shuffles (24 total), the
/// standard butterfly network — this is what makes the HWC->CHW psum
/// reorder run at register speed instead of one scalar move per
/// element.
inline void transpose8x8(const i32x8 r[8], i32x8 out[8]) noexcept {
    i32x8 x[8];
    for (int k = 0; k < 4; ++k) {
        x[2 * k] = __builtin_shufflevector(r[2 * k], r[2 * k + 1], 0, 8, 2, 10, 4, 12,
                                           6, 14);
        x[2 * k + 1] = __builtin_shufflevector(r[2 * k], r[2 * k + 1], 1, 9, 3, 11, 5,
                                               13, 7, 15);
    }
    i32x8 y[8];
    for (int k = 0; k < 2; ++k) {
        const int b = 4 * k;
        y[b + 0] = __builtin_shufflevector(x[b + 0], x[b + 2], 0, 1, 8, 9, 4, 5, 12, 13);
        y[b + 1] = __builtin_shufflevector(x[b + 0], x[b + 2], 2, 3, 10, 11, 6, 7, 14, 15);
        y[b + 2] = __builtin_shufflevector(x[b + 1], x[b + 3], 0, 1, 8, 9, 4, 5, 12, 13);
        y[b + 3] = __builtin_shufflevector(x[b + 1], x[b + 3], 2, 3, 10, 11, 6, 7, 14, 15);
    }
    out[0] = __builtin_shufflevector(y[0], y[4], 0, 1, 2, 3, 8, 9, 10, 11);
    out[4] = __builtin_shufflevector(y[0], y[4], 4, 5, 6, 7, 12, 13, 14, 15);
    out[2] = __builtin_shufflevector(y[1], y[5], 0, 1, 2, 3, 8, 9, 10, 11);
    out[6] = __builtin_shufflevector(y[1], y[5], 4, 5, 6, 7, 12, 13, 14, 15);
    out[1] = __builtin_shufflevector(y[2], y[6], 0, 1, 2, 3, 8, 9, 10, 11);
    out[5] = __builtin_shufflevector(y[2], y[6], 4, 5, 6, 7, 12, 13, 14, 15);
    out[3] = __builtin_shufflevector(y[3], y[7], 0, 1, 2, 3, 8, 9, 10, 11);
    out[7] = __builtin_shufflevector(y[3], y[7], 4, 5, 6, 7, 12, 13, 14, 15);
}
#endif

inline void store(std::int32_t* p, i32x8 v) noexcept { std::memcpy(p, &v, sizeof v); }

#if defined(SIA_SIMD_NATIVE)
// The vector-conditional spelling is what GCC/Clang pattern-match to
// single min/max instructions; the generic select() spelling compiles
// to a 4-op cmp/and/andn/or chain, which triples the cost of every
// saturation clamp in the fused kernels.
[[nodiscard]] inline i32x8 min(i32x8 a, i32x8 b) noexcept { return a < b ? a : b; }
[[nodiscard]] inline i32x8 max(i32x8 a, i32x8 b) noexcept { return a > b ? a : b; }
#else
[[nodiscard]] inline i32x8 min(i32x8 a, i32x8 b) noexcept {
    return select(a < b, a, b);
}
[[nodiscard]] inline i32x8 max(i32x8 a, i32x8 b) noexcept {
    return select(b < a, a, b);
}
#endif
/// Lane form of util::saturate16: clamp int32 lanes into int16 range.
[[nodiscard]] inline i32x8 clamp16(i32x8 v) noexcept {
    return max(min(v, broadcast(32767)), broadcast(-32768));
}

/// Flat 64-byte-aligned zero-initialized buffer for trivially-copyable
/// lane types — the storage behind snn::LayerState's SoA banks. Unlike
/// std::vector it guarantees cache-line/vector alignment, and assign()
/// re-zeroes in place without reallocation churn.
template <typename T>
class AlignedVec {
    static_assert(std::is_trivially_copyable_v<T>);

public:
    static constexpr std::size_t kAlign = 64;

    AlignedVec() = default;
    explicit AlignedVec(std::size_t n) { assign(n); }

    /// Resize to exactly `n` elements, all zero.
    void assign(std::size_t n) {
        if (n != size_) {
            ptr_.reset(n > 0 ? static_cast<T*>(::operator new(
                                   n * sizeof(T), std::align_val_t{kAlign}))
                             : nullptr);
            size_ = n;
        }
        if (size_ > 0) std::memset(ptr_.get(), 0, size_ * sizeof(T));
    }

    [[nodiscard]] T* data() noexcept { return ptr_.get(); }
    [[nodiscard]] const T* data() const noexcept { return ptr_.get(); }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] T& operator[](std::size_t i) noexcept { return ptr_.get()[i]; }
    [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
        return ptr_.get()[i];
    }

private:
    struct Deleter {
        void operator()(T* p) const noexcept {
            ::operator delete(p, std::align_val_t{kAlign});
        }
    };
    std::unique_ptr<T, Deleter> ptr_;
    std::size_t size_ = 0;
};

}  // namespace sia::snn::simd
