// Binary serialization of converted SnnModels.
//
// The deployment artefact of the pipeline is the integer SnnModel; this
// module gives it a stable on-disk format (magic + version + little-
// endian fields) so converted models can be trained once and deployed
// to the simulator (or, in the paper's setting, shipped to the PYNQ
// host) without rerunning the pipeline. Round-trips are bit-exact and
// validated on load.
#pragma once

#include <iosfwd>
#include <string>

#include "snn/model.hpp"
#include "snn/spike.hpp"

namespace sia::snn {

/// Current format version. Readers reject newer versions.
inline constexpr std::uint32_t kSnnFormatVersion = 1;

/// Spike-train container format version (independent of the model's).
inline constexpr std::uint32_t kSpikeTrainFormatVersion = 1;

/// Serialize to a stream; throws std::runtime_error on I/O failure.
void save_model(const SnnModel& model, std::ostream& out);

/// Deserialize from a stream; throws std::runtime_error on bad magic,
/// unsupported version, truncation, or validation failure.
[[nodiscard]] SnnModel load_model(std::istream& in);

/// File convenience wrappers.
void save_model_file(const SnnModel& model, const std::string& path);
[[nodiscard]] SnnModel load_model_file(const std::string& path);

/// Serialize an encoded spike train: geometry once, then each step's
/// packed 64-bit words verbatim (the SpikeMap raw() representation).
/// Round-trips are bit-exact.
void save_train(const SpikeTrain& train, std::ostream& out);

/// Deserialize a spike train; throws on bad magic, unsupported
/// version, truncation, or geometry/word-count inconsistency.
[[nodiscard]] SpikeTrain load_train(std::istream& in);

}  // namespace sia::snn
