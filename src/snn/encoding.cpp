#include "snn/encoding.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sia::snn {

SpikeTrain encode_thermometer(const tensor::Tensor& image, std::int64_t timesteps) {
    if (image.rank() != 4 || image.dim(0) != 1) {
        throw std::invalid_argument("encode_thermometer: expected [1, C, H, W] image");
    }
    if (timesteps <= 0) throw std::invalid_argument("encode_thermometer: timesteps <= 0");
    const std::int64_t c = image.dim(1);
    const std::int64_t h = image.dim(2);
    const std::int64_t w = image.dim(3);

    SpikeTrain train(static_cast<std::size_t>(timesteps), SpikeMap(c, h, w));
    const std::int64_t pixels = c * h * w;
    for (std::int64_t i = 0; i < pixels; ++i) {
        const float v = std::clamp(image.flat(i), 0.0F, 1.0F);
        const auto n = static_cast<std::int64_t>(
            std::lround(static_cast<double>(v) * static_cast<double>(timesteps)));
        // Bresenham-even spread: spike at step t iff the cumulative count
        // floor((t+1)*n/T) advances past floor(t*n/T).
        std::int64_t prev = 0;
        for (std::int64_t t = 0; t < timesteps; ++t) {
            const std::int64_t cur = (t + 1) * n / timesteps;
            if (cur > prev) train[static_cast<std::size_t>(t)].set_flat(i, true);
            prev = cur;
        }
    }
    return train;
}

SpikeTrain frames_to_train(const tensor::Tensor& frames) {
    if (frames.rank() != 4) {
        throw std::invalid_argument("frames_to_train: expected [T, C, H, W]");
    }
    const std::int64_t t_steps = frames.dim(0);
    const std::int64_t c = frames.dim(1);
    const std::int64_t h = frames.dim(2);
    const std::int64_t w = frames.dim(3);
    SpikeTrain train(static_cast<std::size_t>(t_steps), SpikeMap(c, h, w));
    const std::int64_t plane = c * h * w;
    for (std::int64_t t = 0; t < t_steps; ++t) {
        for (std::int64_t i = 0; i < plane; ++i) {
            if (frames.flat(t * plane + i) != 0.0F) {
                train[static_cast<std::size_t>(t)].set_flat(i, true);
            }
        }
    }
    return train;
}

double decode_mean_rate(const SpikeTrain& train) {
    if (train.empty()) return 0.0;
    std::int64_t total = 0;
    for (const SpikeMap& m : train) total += m.count();
    return static_cast<double>(total) /
           (static_cast<double>(train.size()) * static_cast<double>(train.front().size()));
}

}  // namespace sia::snn
