#include "snn/encoding.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace sia::snn {

namespace {

/// Shared image-encoder skeleton: validate [1, C, H, W] / timesteps,
/// allocate the train, and call emit(train, pixel, clamped_value) for
/// every pixel. Keeps the shape and clamp policy in one place.
template <typename EmitPixel>
SpikeTrain encode_image(const tensor::Tensor& image, std::int64_t timesteps,
                        const char* name, const EmitPixel& emit) {
    if (image.rank() != 4 || image.dim(0) != 1) {
        throw std::invalid_argument(std::string(name) + ": expected [1, C, H, W] image");
    }
    if (timesteps <= 0) {
        throw std::invalid_argument(std::string(name) + ": timesteps <= 0");
    }
    SpikeTrain train(static_cast<std::size_t>(timesteps),
                     SpikeMap(image.dim(1), image.dim(2), image.dim(3)));
    const std::int64_t pixels = image.dim(1) * image.dim(2) * image.dim(3);
    for (std::int64_t i = 0; i < pixels; ++i) {
        emit(train, i, std::clamp(image.flat(i), 0.0F, 1.0F));
    }
    return train;
}

}  // namespace

SpikeTrain encode_thermometer(const tensor::Tensor& image, std::int64_t timesteps) {
    return encode_image(
        image, timesteps, "encode_thermometer",
        [timesteps](SpikeTrain& train, std::int64_t i, float v) {
            const auto n = static_cast<std::int64_t>(
                std::lround(static_cast<double>(v) * static_cast<double>(timesteps)));
            // Bresenham-even spread: spike at step t iff the cumulative count
            // floor((t+1)*n/T) advances past floor(t*n/T).
            std::int64_t prev = 0;
            for (std::int64_t t = 0; t < timesteps; ++t) {
                const std::int64_t cur = (t + 1) * n / timesteps;
                if (cur > prev) train[static_cast<std::size_t>(t)].set_flat(i, true);
                prev = cur;
            }
        });
}

SpikeTrain encode_poisson(const tensor::Tensor& image, std::int64_t timesteps,
                          util::Rng& rng) {
    // Pixel-major draw order so the spike pattern depends only on the Rng
    // state, not on how the train is later consumed.
    return encode_image(
        image, timesteps, "encode_poisson",
        [timesteps, &rng](SpikeTrain& train, std::int64_t i, float v) {
            for (std::int64_t t = 0; t < timesteps; ++t) {
                if (rng.bernoulli(static_cast<double>(v))) {
                    train[static_cast<std::size_t>(t)].set_flat(i, true);
                }
            }
        });
}

SpikeTrain frames_to_train(const tensor::Tensor& frames) {
    if (frames.rank() != 4) {
        throw std::invalid_argument("frames_to_train: expected [T, C, H, W]");
    }
    const std::int64_t t_steps = frames.dim(0);
    const std::int64_t c = frames.dim(1);
    const std::int64_t h = frames.dim(2);
    const std::int64_t w = frames.dim(3);
    SpikeTrain train(static_cast<std::size_t>(t_steps), SpikeMap(c, h, w));
    const std::int64_t plane = c * h * w;
    for (std::int64_t t = 0; t < t_steps; ++t) {
        for (std::int64_t i = 0; i < plane; ++i) {
            if (frames.flat(t * plane + i) != 0.0F) {
                train[static_cast<std::size_t>(t)].set_flat(i, true);
            }
        }
    }
    return train;
}

double decode_mean_rate(const SpikeTrain& train) {
    if (train.empty()) return 0.0;
    std::int64_t total = 0;
    for (const SpikeMap& m : train) total += m.count();
    return static_cast<double>(total) /
           (static_cast<double>(train.size()) * static_cast<double>(train.front().size()));
}

}  // namespace sia::snn
