// Temporal early exit: per-item confidence-based termination of the
// timestep loop (the anytime-inference counterpart of the paper's
// Fig. 7/9 accuracy-vs-timestep curves — most inputs are decided long
// before step T, so easy items should stop paying for the hard ones).
//
// The criterion is a pure function of the accumulated readout sequence:
// both engines evaluate it after eligible timesteps and stop
// integrating once it fires. Because the readout at step t is
// bit-identical across backends, thread counts, batch compositions and
// shard counts (the engines' shared-numerics contract), the exit step
// is too — early exit never trades determinism for latency.
//
// For streaming sessions the criterion is evaluated on the *window
// delta*: readout accumulated this window, i.e. the absolute readout
// minus the carried baseline at window entry. A window that exits early
// leaves the session exactly as if the stream had offered only the
// integrated steps — membranes and readout stay consistent, and the
// next window resumes from the exit point.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sia::snn {

/// Why a run stopped before (or exactly at) its offered timesteps.
enum class ExitReason : std::uint8_t {
    kNone = 0,   ///< ran the full offered train without the criterion firing
    kMargin,     ///< top-1/top-2 logit margin held for `hysteresis` checks
    kStable,     ///< argmax unchanged for `stable_checks` consecutive checks
};

[[nodiscard]] constexpr const char* to_string(ExitReason reason) noexcept {
    switch (reason) {
        case ExitReason::kNone: return "none";
        case ExitReason::kMargin: return "margin";
        case ExitReason::kStable: return "stable";
    }
    return "?";
}

/// Per-item early-exit policy. Disabled by default (margin == 0 &&
/// stable_checks == 0): a disabled criterion never fires and the run is
/// bit-identical to a full-T run by construction.
///
/// Evaluation points: after timestep s where s >= min_steps and
/// (s - min_steps) % check_interval == 0. Either rule (or both) may be
/// armed; margin is checked first. Exits never fire on degenerate
/// readouts — single-class models, an all-zero delta, or an exact
/// top-1/top-2 tie reset the consecutive counters instead (a tie means
/// the prediction is not yet decided, whatever the magnitudes say).
struct ExitCriterion {
    /// Logit-margin rule: exit once (top1 - top2) of the window-delta
    /// readout is >= margin for `hysteresis` consecutive evaluations.
    /// 0 disables the rule.
    std::int64_t margin = 0;
    /// Stability rule: exit once the delta argmax (first-index-wins,
    /// ties excluded) is unchanged for this many consecutive
    /// evaluations. 0 disables the rule.
    std::int64_t stable_checks = 0;
    /// Never evaluate before this many integrated steps (>= 1).
    std::int64_t min_steps = 1;
    /// Consecutive margin-satisfying evaluations required (>= 1).
    std::int64_t hysteresis = 1;
    /// Evaluate every this-many steps after min_steps (>= 1). On the
    /// cycle-accurate engine every evaluation is a PS-side readout
    /// check that re-streams weights for the next chunk, so raising
    /// this amortizes the check cost.
    std::int64_t check_interval = 1;

    /// True when at least one rule is armed.
    [[nodiscard]] bool enabled() const noexcept {
        return margin > 0 || stable_checks > 0;
    }

    /// True when the criterion is evaluated after `steps_done` steps.
    [[nodiscard]] bool evaluates_at(std::int64_t steps_done) const noexcept {
        return steps_done >= min_steps &&
               (steps_done - min_steps) % check_interval == 0;
    }

    /// The first evaluation point strictly after `steps_done` (the
    /// chunk boundary of the layer-major engines' segmented schedule).
    [[nodiscard]] std::int64_t next_eval_step(std::int64_t steps_done) const noexcept {
        if (steps_done < min_steps) return min_steps;
        const std::int64_t since = steps_done - min_steps;
        return min_steps + (since / check_interval + 1) * check_interval;
    }

    /// Throws std::invalid_argument on out-of-range fields (negative
    /// thresholds, zero floors/intervals).
    void validate() const;
};

/// Streak-tracking evaluator of one item's criterion over its readout
/// sequence. Construct with the readout carried in at window entry (the
/// session baseline; zeros for stateless runs) and feed the absolute
/// accumulated readout after each eligible step, in order. A pure
/// function of (criterion, baseline, readout sequence) — no engine
/// state — which is what makes offline calibration over a recorded
/// logits_per_step history exactly equivalent to the live decision.
class ExitEvaluator {
public:
    ExitEvaluator(const ExitCriterion& criterion,
                  std::span<const std::int64_t> baseline);

    /// Observe the absolute accumulated readout after `steps_done`
    /// integrated steps. Returns the exit decision: kNone to keep
    /// integrating, otherwise the rule that fired. Steps that are not
    /// evaluation points return kNone without touching the streaks.
    [[nodiscard]] ExitReason observe(std::span<const std::int64_t> readout,
                                     std::int64_t steps_done);

    [[nodiscard]] const ExitCriterion& criterion() const noexcept {
        return criterion_;
    }

private:
    ExitCriterion criterion_;
    std::vector<std::int64_t> baseline_;  ///< readout at window entry
    std::int64_t margin_streak_ = 0;      ///< consecutive margin hits
    std::int64_t stable_streak_ = 0;      ///< consecutive same-argmax evals
    std::int64_t last_top_ = -1;          ///< argmax at the previous eval
};

}  // namespace sia::snn
