// Functional (bit-accurate, cycle-agnostic) execution engine for
// SnnModel. This is the semantic reference implementation: the
// cycle-accurate hardware simulator (sim::Sia) must reproduce its spikes
// and readout bit-exactly (asserted by core::Deployer and the
// integration tests).
//
// Per timestep, layers execute in index order (synchronous feed-forward
// ripple, the standard schedule for ANN-converted SNNs and exactly the
// layer-sequential flow of the paper's Fig. 5).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "snn/exit.hpp"
#include "snn/layer_state.hpp"
#include "snn/model.hpp"
#include "snn/session.hpp"
#include "snn/spike.hpp"

namespace sia::snn {

/// First-index-wins argmax over accumulated logits: ties resolve to the
/// lowest class index, explicitly — the deterministic comparator both
/// engines' predictions are defined by (and the convention the paper's
/// readout comparator tree implements).
[[nodiscard]] std::size_t argmax_first(std::span<const std::int64_t> logits) noexcept;

/// Which psum kernel form FunctionalEngine uses per layer per timestep.
enum class DispatchMode : std::uint8_t {
    /// Per layer per timestep: scatter when the input map's density
    /// (O(1) spike count / sites) is below the configured threshold,
    /// dense gather otherwise.
    kAdaptive,
    kDense,    ///< always the gather kernels (the pre-dispatch behaviour)
    kScatter,  ///< always the scatter kernels
};

/// Which fire-stage implementation FunctionalEngine runs. Like the psum
/// dispatch, both paths are bit-identical (spikes, membranes, logits) —
/// the choice only trades throughput.
enum class FirePath : std::uint8_t {
    /// Fused SoA kernels (compute::aggregate_fire_*): 64 neurons per
    /// iteration, spike words emitted directly. The default.
    kVector,
    /// The per-neuron reference loop (aggregate()/update_neuron()
    /// per site). Kept as the baseline the bench and the equivalence
    /// matrix compare against.
    kScalar,
};

/// Execution knobs of FunctionalEngine. Both paths of either knob are
/// bit-identical, so this only trades throughput, never results.
struct EngineConfig {
    DispatchMode dispatch = DispatchMode::kAdaptive;
    /// kAdaptive: input densities strictly below this run the scatter
    /// kernels. Default calibrated with bench/engine_hotpath: scatter
    /// wins decisively at paper-realistic 5-15% rates (2-5x on VGG conv
    /// shapes) and stays ahead through ~25%; the dense scan is only
    /// competitive once maps approach half-full, so that is where the
    /// adaptive path falls back to it.
    double scatter_density_threshold = 0.5;
    /// Fire-stage implementation (vectorized fused kernels vs scalar
    /// reference loop).
    FirePath fire = FirePath::kVector;
    /// Record RunResult::logits_per_step (the per-step readout history,
    /// [T][classes] per run). On by default for the accuracy benches
    /// and the co-verification tests; the serving hot path never reads
    /// it — serving benches and examples turn it off and read
    /// RunResult::readout (always filled) instead.
    bool record_readout_history = true;
};

/// Per-layer dispatch counters accumulated across step() calls.
struct LayerDispatchStats {
    std::int64_t dense_steps = 0;    ///< timesteps run through the gather kernel
    std::int64_t scatter_steps = 0;  ///< timesteps run through the scatter kernel
    std::int64_t vector_fire_steps = 0;  ///< timesteps fired through the fused kernels
    std::int64_t scalar_fire_steps = 0;  ///< timesteps fired through the scalar loop
    std::int64_t input_spikes = 0;   ///< main-branch input spikes summed over steps
    std::int64_t input_sites = 0;    ///< main-branch input sites summed over steps

    /// Mean main-branch input density over the counted timesteps.
    [[nodiscard]] double mean_input_density() const noexcept {
        return input_sites > 0
                   ? static_cast<double>(input_spikes) / static_cast<double>(input_sites)
                   : 0.0;
    }
};

/// Aggregate results of a run.
struct RunResult {
    /// Accumulated readout (logits) after each timestep: [T][classes].
    /// Empty when EngineConfig::record_readout_history is off — use
    /// `readout` (always filled) for the final logits.
    std::vector<std::vector<std::int64_t>> logits_per_step;
    /// Final accumulated readout after the last integrated timestep.
    std::vector<std::int64_t> readout;
    /// Total output spikes per layer over the whole run.
    std::vector<std::int64_t> spike_counts;
    /// Neurons per layer (denominator for spike rates).
    std::vector<std::int64_t> neuron_counts;
    /// Per-layer kernel-dispatch and input-density counters.
    std::vector<LayerDispatchStats> layer_dispatch;
    /// Timesteps actually integrated (== steps_offered unless an
    /// ExitCriterion fired first).
    std::int64_t timesteps = 0;
    /// Timesteps the input train offered.
    std::int64_t steps_offered = 0;
    /// Why the run stopped (kNone = ran the full offered train).
    ExitReason exit_reason = ExitReason::kNone;

    /// Average spikes per neuron per timestep for layer `i` (Fig. 6/8).
    [[nodiscard]] double spike_rate(std::size_t i) const {
        const auto denom = static_cast<double>(neuron_counts.at(i)) *
                           static_cast<double>(timesteps);
        return denom > 0 ? static_cast<double>(spike_counts.at(i)) / denom : 0.0;
    }

    /// Prediction after timestep `t` (argmax of accumulated logits).
    /// Requires the recorded history; use predicted() when it is off.
    [[nodiscard]] std::int64_t predicted_class(std::int64_t t) const;
    /// Prediction from the final accumulated readout.
    [[nodiscard]] std::int64_t predicted() const {
        return static_cast<std::int64_t>(argmax_first(readout));
    }
};

class FunctionalEngine {
public:
    /// Keeps a reference to `model` (must outlive the engine); validates
    /// it and precomputes the shared transposed weight layouts (used by
    /// gather and scatter kernels alike).
    explicit FunctionalEngine(const SnnModel& model, EngineConfig config = {});

    /// Full reset: membranes to their initial potential, readout
    /// cleared, per-run counters zeroed. Equivalent to reset_membranes()
    /// + reset_readout() + reset_stats().
    void reset();
    /// Reset only the neuron state: membranes back to the initial
    /// potential, last-step spike maps cleared. Leaves the accumulated
    /// readout and counters alone.
    void reset_membranes();
    /// Clear only the accumulated readout logits.
    void reset_readout();
    /// Zero the per-run spike/dispatch counters (windowed runs report
    /// per-window statistics while membranes and readout carry).
    void reset_stats();

    /// Advance one timestep with the given input spikes.
    void step(const SpikeMap& input);

    /// reset() + step() over the train; collects statistics.
    [[nodiscard]] RunResult run(const SpikeTrain& input);
    /// Early-exit form: evaluate `exit` after each eligible timestep
    /// and stop integrating once it fires (the item "drops out of the
    /// hot loop" — no psum/fire kernel touches it past the exit step).
    /// A disabled criterion is bit-identical to run(input); steps that
    /// do run are bit-identical to the full-T run's prefix. Throws
    /// std::invalid_argument on an out-of-range criterion.
    [[nodiscard]] RunResult run(const SpikeTrain& input, const ExitCriterion& exit);

    /// Run one window of a stream WITHOUT resetting membranes or
    /// readout: statistics are per-window, logits_per_step continues
    /// the accumulation carried in by earlier windows. Splitting a
    /// train into consecutive run_window calls after a reset() is
    /// bit-identical to one run() over the whole train.
    [[nodiscard]] RunResult run_window(const SpikeTrain& input);
    /// Early-exit window: `exit` is evaluated on the readout delta
    /// accumulated THIS window (absolute readout minus the carried
    /// baseline at window entry), so a mid-stream window exits on its
    /// own evidence rather than the history's.
    [[nodiscard]] RunResult run_window(const SpikeTrain& input,
                                       const ExitCriterion& exit);

    /// Stateful-session form: restore `session` (a fresh reset when it
    /// is uninitialized), run the window, save the state back and
    /// advance the session's step/window counters. Sessions are
    /// engine-agnostic (sim::Sia resumes the same representation).
    [[nodiscard]] RunResult run_window(const SpikeTrain& input, SessionState& session);
    /// Session window with early exit: the saved state reflects the
    /// exit point exactly — as if the stream had offered only the
    /// integrated steps — so the carried SessionState is never
    /// corrupted and the next window resumes bit-identically.
    [[nodiscard]] RunResult run_window(const SpikeTrain& input, SessionState& session,
                                       const ExitCriterion& exit);

    /// Copy the carried state (membranes + readout) out of the engine.
    void save_session(SessionState& session) const;
    /// Load carried state into the engine and zero the per-run
    /// counters. An uninitialized session restores as a full reset().
    /// Throws std::invalid_argument when the state's geometry does not
    /// match the model.
    void restore_session(const SessionState& session);

    /// Output spikes of layer `i` at the most recent timestep.
    [[nodiscard]] const SpikeMap& layer_spikes(std::size_t i) const {
        return spikes_.at(i);
    }
    /// Membrane potentials of layer `i` (CHW order).
    [[nodiscard]] std::span<const std::int16_t> membrane(std::size_t i) const {
        const LayerState& st = state_.at(i);
        return {st.membrane.data(), static_cast<std::size_t>(st.neurons)};
    }
    /// Accumulated readout logits.
    [[nodiscard]] const std::vector<std::int64_t>& readout() const noexcept {
        return readout_;
    }
    /// Output spike count of layer `i` accumulated since reset().
    [[nodiscard]] std::int64_t spike_count(std::size_t i) const {
        return spike_counts_.at(i);
    }
    /// Dispatch counters of layer `i` accumulated since reset().
    [[nodiscard]] const LayerDispatchStats& dispatch_stats(std::size_t i) const {
        return dispatch_.at(i);
    }

    [[nodiscard]] const SnnModel& model() const noexcept { return model_; }
    [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }

private:
    /// Shared window loop: null `exit` (or a disabled criterion) runs
    /// the whole train.
    [[nodiscard]] RunResult run_window_impl(const SpikeTrain& input,
                                            const ExitCriterion* exit);
    void run_conv_layer(std::size_t index, const SpikeMap& input);
    void run_linear_layer(std::size_t index, const SpikeMap& input);
    void integrate_and_fire(std::size_t index);
    /// Fire-stage implementations over the layer's SoA banks; both
    /// update membranes + spikes_[index] identically (spike emission
    /// included), differing only in throughput. `skip_spikes` is the
    /// resolved residual source (null when the layer has no skip).
    void fire_vector(std::size_t index, const SpikeMap* skip_spikes);
    void fire_scalar(std::size_t index, const SpikeMap* skip_spikes);
    [[nodiscard]] const SpikeMap& source_spikes(int src, const SpikeMap& input) const;
    /// Density-adaptive path choice for one kernel invocation.
    [[nodiscard]] bool use_scatter(const SpikeMap& in) const noexcept;
    /// Run one conv psum through the dispatched kernel form; returns
    /// true when the scatter path was taken.
    bool dispatch_conv(const Branch& b, const std::vector<std::int8_t>& wt,
                       const SpikeMap& in, std::int64_t out_h, std::int64_t out_w,
                       std::span<std::int32_t> psum);

    const SnnModel& model_;
    EngineConfig config_;
    /// Transposed weights per layer branch: [IC*k*k][OC] contiguous in OC
    /// for cache-friendly gather accumulation.
    std::vector<std::vector<std::int8_t>> main_wt_;
    std::vector<std::vector<std::int8_t>> skip_wt_;

    std::vector<LayerState> state_;                      // SoA banks per layer
    std::vector<SpikeMap> spikes_;                       // per layer, this step
    std::vector<std::int64_t> readout_;                  // accumulated logits
    std::vector<std::int64_t> spike_counts_;             // per layer since reset
    std::vector<LayerDispatchStats> dispatch_;           // per layer since reset
    const SpikeMap* current_input_ = nullptr;            // valid during step()
};

/// Convenience: run a model over an encoded input and return results.
[[nodiscard]] RunResult run_snn(const SnnModel& model, const SpikeTrain& input,
                                EngineConfig config = {});

}  // namespace sia::snn
