#include "snn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace sia::snn {

namespace {

constexpr char kMagic[8] = {'S', 'I', 'A', 'S', 'N', 'N', '0', '\n'};

// ---- primitive writers/readers (little-endian on all supported targets) ----

template <typename T>
void write_pod(std::ostream& out, const T& v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(T));
    if (!out) throw std::runtime_error("save_model: write failed");
}

template <typename T>
T read_pod(std::istream& in) {
    T v{};
    in.read(reinterpret_cast<char*>(&v), sizeof(T));
    if (!in) throw std::runtime_error("load_model: truncated stream");
    return v;
}

void write_string(std::ostream& out, const std::string& s) {
    write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
    if (!out) throw std::runtime_error("save_model: write failed");
}

std::string read_string(std::istream& in) {
    const auto n = read_pod<std::uint32_t>(in);
    if (n > (1U << 20)) throw std::runtime_error("load_model: absurd string length");
    std::string s(n, '\0');
    in.read(s.data(), n);
    if (!in) throw std::runtime_error("load_model: truncated string");
    return s;
}

template <typename T>
void write_vec(std::ostream& out, const std::vector<T>& v) {
    write_pod<std::uint64_t>(out, static_cast<std::uint64_t>(v.size()));
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(T)));
    if (!out) throw std::runtime_error("save_model: write failed");
}

template <typename T>
std::vector<T> read_vec(std::istream& in) {
    const auto n = read_pod<std::uint64_t>(in);
    if (n > (1ULL << 31)) throw std::runtime_error("load_model: absurd vector length");
    std::vector<T> v(static_cast<std::size_t>(n));
    in.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
    if (!in) throw std::runtime_error("load_model: truncated vector");
    return v;
}

void write_branch(std::ostream& out, const Branch& b) {
    write_vec(out, b.weights);
    write_pod(out, b.weight_scale);
    write_pod(out, b.stream_weight_bytes);
    write_vec(out, b.gain);
    write_vec(out, b.bias);
    write_pod<std::int32_t>(out, b.gain_shift);
    write_pod(out, b.in_channels);
    write_pod(out, b.out_channels);
    write_pod(out, b.kernel);
    write_pod(out, b.stride);
    write_pod(out, b.padding);
    write_pod(out, b.in_features);
    write_pod(out, b.out_features);
}

Branch read_branch(std::istream& in) {
    Branch b;
    b.weights = read_vec<std::int8_t>(in);
    b.weight_scale = read_pod<float>(in);
    b.stream_weight_bytes = read_pod<std::int64_t>(in);
    b.gain = read_vec<std::int16_t>(in);
    b.bias = read_vec<std::int16_t>(in);
    b.gain_shift = read_pod<std::int32_t>(in);
    b.in_channels = read_pod<std::int64_t>(in);
    b.out_channels = read_pod<std::int64_t>(in);
    b.kernel = read_pod<std::int64_t>(in);
    b.stride = read_pod<std::int64_t>(in);
    b.padding = read_pod<std::int64_t>(in);
    b.in_features = read_pod<std::int64_t>(in);
    b.out_features = read_pod<std::int64_t>(in);
    return b;
}

}  // namespace

void save_model(const SnnModel& model, std::ostream& out) {
    model.validate();
    out.write(kMagic, sizeof(kMagic));
    write_pod<std::uint32_t>(out, kSnnFormatVersion);
    write_string(out, model.name);
    write_pod(out, model.input_channels);
    write_pod(out, model.input_h);
    write_pod(out, model.input_w);
    write_pod(out, model.classes);
    write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(model.layers.size()));
    for (const SnnLayer& layer : model.layers) {
        write_pod<std::uint8_t>(out, static_cast<std::uint8_t>(layer.op));
        write_string(out, layer.label);
        write_pod<std::int32_t>(out, layer.input);
        write_branch(out, layer.main);
        write_pod<std::int32_t>(out, layer.skip_src);
        write_pod<std::uint8_t>(out, layer.skip_is_identity ? 1 : 0);
        write_pod(out, layer.identity_skip.charge);
        if (layer.has_skip() && !layer.skip_is_identity) write_branch(out, layer.skip);
        write_pod<std::uint8_t>(out, layer.spiking ? 1 : 0);
        write_pod<std::uint8_t>(out, static_cast<std::uint8_t>(layer.neuron));
        write_pod<std::uint8_t>(out, static_cast<std::uint8_t>(layer.reset));
        write_pod(out, layer.threshold);
        write_pod(out, layer.initial_potential);
        write_pod<std::int32_t>(out, layer.leak_shift);
        write_pod(out, layer.step_size);
        write_pod(out, layer.out_channels);
        write_pod(out, layer.out_h);
        write_pod(out, layer.out_w);
        write_pod(out, layer.in_h);
        write_pod(out, layer.in_w);
    }
    out.flush();
    if (!out) throw std::runtime_error("save_model: flush failed");
}

SnnModel load_model(std::istream& in) {
    char magic[sizeof(kMagic)] = {};
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        throw std::runtime_error("load_model: bad magic (not a SIA SNN file)");
    }
    const auto version = read_pod<std::uint32_t>(in);
    if (version > kSnnFormatVersion) {
        throw std::runtime_error("load_model: unsupported format version " +
                                 std::to_string(version));
    }
    SnnModel model;
    model.name = read_string(in);
    model.input_channels = read_pod<std::int64_t>(in);
    model.input_h = read_pod<std::int64_t>(in);
    model.input_w = read_pod<std::int64_t>(in);
    model.classes = read_pod<std::int64_t>(in);
    const auto layer_count = read_pod<std::uint32_t>(in);
    if (layer_count > 4096) throw std::runtime_error("load_model: absurd layer count");
    model.layers.reserve(layer_count);
    for (std::uint32_t i = 0; i < layer_count; ++i) {
        SnnLayer layer;
        layer.op = static_cast<LayerOp>(read_pod<std::uint8_t>(in));
        layer.label = read_string(in);
        layer.input = read_pod<std::int32_t>(in);
        layer.main = read_branch(in);
        layer.skip_src = read_pod<std::int32_t>(in);
        layer.skip_is_identity = read_pod<std::uint8_t>(in) != 0;
        layer.identity_skip.charge = read_pod<std::int16_t>(in);
        if (layer.has_skip() && !layer.skip_is_identity) layer.skip = read_branch(in);
        layer.spiking = read_pod<std::uint8_t>(in) != 0;
        layer.neuron = static_cast<NeuronKind>(read_pod<std::uint8_t>(in));
        layer.reset = static_cast<ResetMode>(read_pod<std::uint8_t>(in));
        layer.threshold = read_pod<std::int16_t>(in);
        layer.initial_potential = read_pod<std::int16_t>(in);
        layer.leak_shift = read_pod<std::int32_t>(in);
        layer.step_size = read_pod<float>(in);
        layer.out_channels = read_pod<std::int64_t>(in);
        layer.out_h = read_pod<std::int64_t>(in);
        layer.out_w = read_pod<std::int64_t>(in);
        layer.in_h = read_pod<std::int64_t>(in);
        layer.in_w = read_pod<std::int64_t>(in);
        model.layers.push_back(std::move(layer));
    }
    model.validate();
    return model;
}

namespace {
constexpr char kTrainMagic[8] = {'S', 'I', 'A', 'S', 'P', 'K', '0', '\n'};
}  // namespace

void save_train(const SpikeTrain& train, std::ostream& out) {
    out.write(kTrainMagic, sizeof(kTrainMagic));
    write_pod<std::uint32_t>(out, kSpikeTrainFormatVersion);
    write_pod<std::uint64_t>(out, static_cast<std::uint64_t>(train.size()));
    const std::int64_t c = train.empty() ? 0 : train.front().channels();
    const std::int64_t h = train.empty() ? 0 : train.front().height();
    const std::int64_t w = train.empty() ? 0 : train.front().width();
    write_pod(out, c);
    write_pod(out, h);
    write_pod(out, w);
    for (const SpikeMap& m : train) {
        if (m.channels() != c || m.height() != h || m.width() != w) {
            throw std::runtime_error("save_train: mixed geometries in train");
        }
        write_vec(out, m.raw());
    }
    out.flush();
    if (!out) throw std::runtime_error("save_train: flush failed");
}

SpikeTrain load_train(std::istream& in) {
    char magic[sizeof(kTrainMagic)] = {};
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kTrainMagic, sizeof(kTrainMagic)) != 0) {
        throw std::runtime_error("load_train: bad magic (not a SIA spike train)");
    }
    const auto version = read_pod<std::uint32_t>(in);
    if (version > kSpikeTrainFormatVersion) {
        throw std::runtime_error("load_train: unsupported format version " +
                                 std::to_string(version));
    }
    const auto timesteps = read_pod<std::uint64_t>(in);
    if (timesteps > (1ULL << 24)) throw std::runtime_error("load_train: absurd timesteps");
    const auto c = read_pod<std::int64_t>(in);
    const auto h = read_pod<std::int64_t>(in);
    const auto w = read_pod<std::int64_t>(in);
    // Per-dimension bound first so the product below cannot overflow.
    constexpr std::int64_t kDimMax = 1LL << 20;
    if (c < 0 || h < 0 || w < 0 || c > kDimMax || h > kDimMax || w > kDimMax ||
        c * h * w > (1LL << 31)) {
        throw std::runtime_error("load_train: absurd geometry");
    }
    SpikeTrain train(static_cast<std::size_t>(timesteps), SpikeMap(c, h, w));
    for (SpikeMap& m : train) {
        // set_words validates the word count against the geometry and
        // recomputes the maintained spike count.
        m.set_words(read_vec<std::uint64_t>(in));
    }
    return train;
}

void save_model_file(const SnnModel& model, const std::string& path) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("save_model_file: cannot open " + path);
    save_model(model, out);
}

SnnModel load_model_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("load_model_file: cannot open " + path);
    return load_model(in);
}

}  // namespace sia::snn
