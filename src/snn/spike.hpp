// Binary spike maps: the signals exchanged between SNN layers.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace sia::snn {

/// Dense binary spike map over a CHW volume for one timestep.
///
/// Storage is bit-packed into 64-bit words (flat CHW index `i` lives at
/// bit `i % 64` of word `i / 64`; bits past `size()` in the last word
/// are always zero), with a maintained set-bit count so `count()` is
/// O(1) — it is read per layer per timestep by both engines' dispatch
/// and cycle accounting. `for_each_spike` iterates set bits in
/// ascending flat order by skipping zero words and peeling bits with
/// count-trailing-zeros; that is the traversal the scatter-form kernels
/// in snn::compute are built on.
class SpikeMap {
public:
    static constexpr std::int64_t kWordBits = 64;

    SpikeMap() = default;
    SpikeMap(std::int64_t channels, std::int64_t height, std::int64_t width)
        : c_(channels), h_(height), w_(width),
          words_(static_cast<std::size_t>((channels * height * width + kWordBits - 1) /
                                          kWordBits),
                 0) {}

    [[nodiscard]] std::int64_t channels() const noexcept { return c_; }
    [[nodiscard]] std::int64_t height() const noexcept { return h_; }
    [[nodiscard]] std::int64_t width() const noexcept { return w_; }
    [[nodiscard]] std::int64_t size() const noexcept { return c_ * h_ * w_; }

    [[nodiscard]] bool get(std::int64_t c, std::int64_t y, std::int64_t x) const noexcept {
        return get_flat((c * h_ + y) * w_ + x);
    }
    void set(std::int64_t c, std::int64_t y, std::int64_t x, bool v) noexcept {
        set_flat((c * h_ + y) * w_ + x, v);
    }

    [[nodiscard]] bool get_flat(std::int64_t i) const noexcept {
        return (words_[static_cast<std::size_t>(i >> 6)] >>
                (static_cast<std::uint64_t>(i) & 63U)) &
               1U;
    }
    void set_flat(std::int64_t i, bool v) noexcept {
        std::uint64_t& word = words_[static_cast<std::size_t>(i >> 6)];
        const std::uint64_t mask = std::uint64_t{1} << (static_cast<std::uint64_t>(i) & 63U);
        if (((word & mask) != 0) == v) return;
        word ^= mask;
        count_ += v ? 1 : -1;
    }

    void clear() noexcept {
        std::fill(words_.begin(), words_.end(), 0);
        count_ = 0;
    }

    /// Number of set bits (spike count this timestep). O(1).
    [[nodiscard]] std::int64_t count() const noexcept { return count_; }

    /// Set bits in flat range [begin, end): masked popcount over the
    /// packed words, O(words in range). Used for per-channel counts
    /// (`count_range(c * plane, (c + 1) * plane)`).
    [[nodiscard]] std::int64_t count_range(std::int64_t begin,
                                           std::int64_t end) const noexcept {
        if (begin >= end) return 0;
        const std::int64_t first = begin >> 6;
        const std::int64_t last = (end - 1) >> 6;
        const std::uint64_t head =
            ~std::uint64_t{0} << (static_cast<std::uint64_t>(begin) & 63U);
        const std::uint64_t tail =
            ~std::uint64_t{0} >> (63U - (static_cast<std::uint64_t>(end - 1) & 63U));
        if (first == last) {
            return std::popcount(words_[static_cast<std::size_t>(first)] & head & tail);
        }
        std::int64_t n = std::popcount(words_[static_cast<std::size_t>(first)] & head);
        for (std::int64_t w = first + 1; w < last; ++w) {
            n += std::popcount(words_[static_cast<std::size_t>(w)]);
        }
        return n + std::popcount(words_[static_cast<std::size_t>(last)] & tail);
    }

    /// Visit every set bit in ascending flat-CHW order: word-skip over
    /// zero words, ctz + clear-lowest-bit within a word.
    template <typename Visit>
    void for_each_spike(Visit&& visit) const {
        const auto nwords = static_cast<std::int64_t>(words_.size());
        for (std::int64_t w = 0; w < nwords; ++w) {
            std::uint64_t bits = words_[static_cast<std::size_t>(w)];
            while (bits != 0) {
                visit(w * kWordBits + std::countr_zero(bits));
                bits &= bits - 1;
            }
        }
    }

    /// Overwrite packed word `w` wholesale, maintaining the set-bit
    /// count — the fused fire kernels' spike-emission path (one word
    /// per 64-neuron block, no per-bit calls). For the final word the
    /// caller must have masked bits past size() (the kernels do; the
    /// class invariant that trailing bits are zero is preserved, not
    /// re-enforced here).
    void set_word(std::int64_t w, std::uint64_t bits) noexcept {
        std::uint64_t& slot = words_[static_cast<std::size_t>(w)];
        count_ += std::popcount(bits) - std::popcount(slot);
        slot = bits;
    }

    /// Packed 64-bit words (the wire/serialization representation).
    /// Bits past size() are guaranteed zero, so equality of raw() is
    /// equality of the maps.
    [[nodiscard]] const std::vector<std::uint64_t>& raw() const noexcept { return words_; }

    /// Replace the packed words wholesale (deserialization). Must match
    /// the geometry's word count; trailing bits past size() are cleared
    /// and the maintained count is recomputed.
    void set_words(std::vector<std::uint64_t> words) {
        if (words.size() != words_.size()) {
            throw std::invalid_argument("SpikeMap::set_words: word count mismatch");
        }
        words_ = std::move(words);
        const std::int64_t tail_bits = size() & 63;
        if (tail_bits != 0 && !words_.empty()) {
            words_.back() &= ~std::uint64_t{0} >>
                             (64U - static_cast<std::uint64_t>(tail_bits));
        }
        count_ = 0;
        for (const std::uint64_t w : words_) count_ += std::popcount(w);
    }

    [[nodiscard]] bool operator==(const SpikeMap& other) const noexcept {
        return c_ == other.c_ && h_ == other.h_ && w_ == other.w_ &&
               words_ == other.words_;
    }

private:
    std::int64_t c_ = 0;
    std::int64_t h_ = 0;
    std::int64_t w_ = 0;
    std::vector<std::uint64_t> words_;
    std::int64_t count_ = 0;
};

/// A spike train: one SpikeMap per timestep (all same geometry).
using SpikeTrain = std::vector<SpikeMap>;

}  // namespace sia::snn
