// Binary spike maps: the signals exchanged between SNN layers.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sia::snn {

/// Dense binary spike map over a CHW volume for one timestep.
/// Stored as bytes for fast iteration; values are strictly 0/1.
class SpikeMap {
public:
    SpikeMap() = default;
    SpikeMap(std::int64_t channels, std::int64_t height, std::int64_t width)
        : c_(channels), h_(height), w_(width),
          bits_(static_cast<std::size_t>(channels * height * width), 0) {}

    [[nodiscard]] std::int64_t channels() const noexcept { return c_; }
    [[nodiscard]] std::int64_t height() const noexcept { return h_; }
    [[nodiscard]] std::int64_t width() const noexcept { return w_; }
    [[nodiscard]] std::int64_t size() const noexcept { return c_ * h_ * w_; }

    [[nodiscard]] bool get(std::int64_t c, std::int64_t y, std::int64_t x) const noexcept {
        return bits_[static_cast<std::size_t>((c * h_ + y) * w_ + x)] != 0;
    }
    void set(std::int64_t c, std::int64_t y, std::int64_t x, bool v) noexcept {
        bits_[static_cast<std::size_t>((c * h_ + y) * w_ + x)] = v ? 1 : 0;
    }

    [[nodiscard]] bool get_flat(std::int64_t i) const noexcept {
        return bits_[static_cast<std::size_t>(i)] != 0;
    }
    void set_flat(std::int64_t i, bool v) noexcept {
        bits_[static_cast<std::size_t>(i)] = v ? 1 : 0;
    }

    void clear() noexcept { std::fill(bits_.begin(), bits_.end(), 0); }

    /// Number of set bits (spike count this timestep).
    [[nodiscard]] std::int64_t count() const noexcept {
        std::int64_t n = 0;
        for (const auto b : bits_) n += b;
        return n;
    }

    [[nodiscard]] const std::vector<std::uint8_t>& raw() const noexcept { return bits_; }
    [[nodiscard]] std::vector<std::uint8_t>& raw() noexcept { return bits_; }

private:
    std::int64_t c_ = 0;
    std::int64_t h_ = 0;
    std::int64_t w_ = 0;
    std::vector<std::uint8_t> bits_;
};

/// A spike train: one SpikeMap per timestep (all same geometry).
using SpikeTrain = std::vector<SpikeMap>;

}  // namespace sia::snn
