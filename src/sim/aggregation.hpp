// Aggregation core (§III-B): batch-norm unit + activation unit.
//
// The batch-norm unit maps a 16-bit partial sum into the membrane domain
// with the fixed-point affine y*G + H (Eq. 2); the activation unit adds
// the previous membrane potential, compares against the layer threshold,
// and applies reset-by-subtraction (or reset-to-zero). A mode bit selects
// IF (0) or LIF (1) dynamics, exactly as described in the paper.
//
// Numerically this is the same arithmetic as snn::FunctionalEngine —
// both call the util/fixed_point helpers — which is what makes the
// bit-exact co-verification possible.
#pragma once

#include <cstdint>

#include "snn/model.hpp"
#include "util/fixed_point.hpp"

namespace sia::sim {

/// Result of one activation-unit evaluation.
struct NeuronUpdate {
    std::int16_t new_potential = 0;
    bool spike = false;
};

class AggregationCore {
public:
    /// Batch-norm unit: ((psum * gain) >> shift) + bias with 16-bit
    /// saturation at each stage. Uses one DSP multiplier lane.
    [[nodiscard]] static std::int16_t batch_norm(std::int32_t psum, std::int16_t gain,
                                                 std::int16_t bias, int shift) noexcept {
        const std::int16_t p16 = util::saturate16(psum);
        const std::int16_t scaled = util::fxp_mul_shift(p16, gain, shift);
        return util::sat_add16(scaled, bias);
    }

    /// Activation unit. `mode_lif` is the hardware mode bit (0 = IF,
    /// 1 = LIF). Leak is applied before integration in LIF mode.
    [[nodiscard]] static NeuronUpdate activate(std::int16_t membrane, std::int16_t current,
                                               std::int16_t threshold, bool mode_lif,
                                               int leak_shift,
                                               snn::ResetMode reset) noexcept {
        std::int16_t u = membrane;
        if (mode_lif) {
            u = util::sat_sub16(u, static_cast<std::int16_t>(u >> leak_shift));
        }
        u = util::sat_add16(u, current);
        NeuronUpdate out;
        if (u >= threshold) {
            out.spike = true;
            u = (reset == snn::ResetMode::kSubtract) ? util::sat_sub16(u, threshold)
                                                     : std::int16_t{0};
        }
        out.new_potential = u;
        return out;
    }

    /// Cycle cost to retire `neurons` results through the pipelined
    /// BN-multiply + compare datapath (`lanes` results per cycle after
    /// the pipeline fills).
    [[nodiscard]] static std::int64_t retire_cycles(std::int64_t neurons,
                                                    std::int64_t lanes,
                                                    std::int64_t pipeline_depth) noexcept {
        if (neurons <= 0) return 0;
        return (neurons + lanes - 1) / lanes + pipeline_depth;
    }
};

}  // namespace sia::sim
