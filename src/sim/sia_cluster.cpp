#include "sim/sia_cluster.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#include "sim/axi.hpp"
#include "snn/exit.hpp"

namespace sia::sim {

namespace {

void init_result(SiaRunResult& res, std::int64_t timesteps, std::int64_t classes,
                 std::size_t layer_count) {
    res.timesteps = timesteps;
    res.steps_offered = timesteps;
    res.exit_reason = snn::ExitReason::kNone;
    res.logits_per_step.assign(
        static_cast<std::size_t>(timesteps),
        std::vector<std::int64_t>(static_cast<std::size_t>(classes), 0));
    res.readout.clear();
    res.layer_stats.assign(layer_count, LayerCycleStats{});
    res.spike_counts.assign(layer_count, 0);
    res.neuron_counts.clear();
}

std::int64_t ceil_div(std::int64_t a, std::int64_t b) noexcept {
    return b > 0 ? (a + b - 1) / b : 0;
}

}  // namespace

SiaCluster::SiaCluster(const SiaConfig& config, const snn::SnnModel& model,
                       ShardPlan plan, SiaClusterOptions options)
    : config_(config), model_(model), plan_(std::move(plan)), options_(options),
      pool_(options_.threads != 0
                ? options_.threads
                : static_cast<std::size_t>(
                      std::max<std::int64_t>(1, plan_.effective_shards()))) {
    const std::int64_t n = plan_.effective_shards();
    if (n < 1) throw std::invalid_argument("SiaCluster: plan drives no shards");
    if (plan_.program.layers.size() != model_.layers.size()) {
        throw std::invalid_argument("SiaCluster: plan/model layer count mismatch");
    }
    if (plan_.partition == ShardPartition::kPipeline) {
        if (plan_.stages.front().first != 0 ||
            plan_.stages.back().last != model_.layers.size()) {
            throw std::invalid_argument(
                "SiaCluster: pipeline stages do not cover the model");
        }
        for (std::size_t s = 1; s < plan_.stages.size(); ++s) {
            if (plan_.stages[s].first != plan_.stages[s - 1].last) {
                throw std::invalid_argument(
                    "SiaCluster: pipeline stages are not contiguous");
            }
        }
    } else {
        for (const auto& shard_slices : plan_.slices) {
            if (shard_slices.size() != model_.layers.size()) {
                throw std::invalid_argument(
                    "SiaCluster: channel slices do not cover the model");
            }
        }
    }
    shards_.reserve(static_cast<std::size_t>(n));
    for (std::int64_t s = 0; s < n; ++s) {
        shards_.push_back(std::make_unique<Sia>(config_, model_, plan_.program));
    }
}

void SiaCluster::prepare_session(snn::SessionState& session) const {
    // Sia's admission validation (geometry checks / fresh-session init)…
    shards_.front()->prepare_session(session);
    // …plus the cluster's addition: channel-parallel shards save their
    // slices into a shared bank concurrently, so presize it here —
    // vector::resize inside a shard task would race.
    if (!session.initialized && plan_.partition == ShardPartition::kChannel) {
        for (std::size_t i = 0; i < model_.layers.size(); ++i) {
            const snn::SnnLayer& layer = model_.layers[i];
            if (layer.spiking) {
                session.membranes[i].assign(
                    static_cast<std::size_t>(layer.neurons()),
                    layer.initial_potential);
            }
        }
    }
}

void SiaCluster::finalize_session(snn::SessionState& session,
                                  std::int64_t timesteps) const {
    session.initialized = true;
    session.steps += timesteps;
    ++session.windows;
}

SiaRunResult SiaCluster::run(const snn::SpikeTrain& input) {
    const std::vector<const snn::SpikeTrain*> inputs{&input};
    auto results = run_batch(inputs, {nullptr});
    return std::move(results.front());
}

SiaRunResult SiaCluster::run(const snn::SpikeTrain& input,
                             snn::SessionState& session) {
    const std::vector<const snn::SpikeTrain*> inputs{&input};
    const std::vector<snn::SessionState*> sessions{&session};
    auto results = run_batch(inputs, sessions);
    return std::move(results.front());
}

std::vector<SiaRunResult> SiaCluster::run_batch(
    const std::vector<snn::SpikeTrain>& inputs) {
    std::vector<const snn::SpikeTrain*> ptrs;
    ptrs.reserve(inputs.size());
    for (const auto& in : inputs) ptrs.push_back(&in);
    return run_batch(ptrs, std::vector<snn::SessionState*>(inputs.size(), nullptr));
}

std::vector<SiaRunResult> SiaCluster::run_batch(
    const std::vector<const snn::SpikeTrain*>& inputs,
    const std::vector<snn::SessionState*>& sessions) {
    return run_batch(inputs, sessions,
                     std::vector<const snn::ExitCriterion*>(inputs.size(), nullptr));
}

std::vector<SiaRunResult> SiaCluster::run_batch(
    const std::vector<const snn::SpikeTrain*>& inputs,
    const std::vector<snn::SessionState*>& sessions,
    const std::vector<const snn::ExitCriterion*>& exits) {
    const std::size_t n = inputs.size();
    if (sessions.size() != n) {
        throw std::invalid_argument(
            "SiaCluster::run_batch: inputs/sessions size mismatch");
    }
    if (exits.size() != n) {
        throw std::invalid_argument(
            "SiaCluster::run_batch: inputs/exits size mismatch");
    }
    stats_ = ShardStats{};
    stats_.partition = plan_.partition;
    stats_.shards = plan_.effective_shards();
    stats_.batch = n;
    stats_.double_buffered = options_.double_buffer;

    std::vector<SiaRunResult> results(n);
    if (n == 0) return results;
    for (const auto* in : inputs) {
        if (in == nullptr || in->empty()) {
            throw std::invalid_argument("SiaCluster::run_batch: empty input train");
        }
    }
    for (snn::SessionState* session : sessions) {
        if (session != nullptr) prepare_session(*session);
    }
    bool any_exit = false;
    for (const snn::ExitCriterion* exit : exits) {
        if (exit == nullptr) continue;
        exit->validate();
        any_exit = any_exit || exit->enabled();
    }

    if (any_exit) {
        run_batch_segmented(inputs, sessions, exits, results);
    } else {
        if (plan_.partition == ShardPartition::kPipeline) {
            run_batch_pipeline(inputs, sessions, results);
        } else {
            run_batch_channel(inputs, sessions, results);
        }
        for (std::size_t i = 0; i < n; ++i) {
            if (!results[i].logits_per_step.empty()) {
                results[i].readout = results[i].logits_per_step.back();
            }
            if (sessions[i] != nullptr) {
                finalize_session(*sessions[i], results[i].timesteps);
            }
        }
    }

    for (const SiaRunResult& r : results) {
        stats_.steps_executed += r.timesteps;
        stats_.steps_offered += r.steps_offered;
        if (r.exit_reason != snn::ExitReason::kNone && r.timesteps < r.steps_offered) {
            ++stats_.retired_early;
        }
    }
    return results;
}

void SiaCluster::run_batch_segmented(
    const std::vector<const snn::SpikeTrain*>& inputs,
    const std::vector<snn::SessionState*>& sessions,
    const std::vector<const snn::ExitCriterion*>& exits,
    std::vector<SiaRunResult>& results) {
    const std::size_t n = inputs.size();

    // Per-item scratch session: every chunk round resumes the item's
    // membranes/readout from its scratch and saves them back, so segment
    // passes compose exactly like PR 7's window chunking. User sessions
    // are written back only when the item finishes.
    struct ItemState {
        snn::SessionState scratch;
        std::optional<snn::ExitEvaluator> eval;
        std::int64_t steps_done = 0;
        std::int64_t steps_total = 0;
        bool done = false;
    };
    std::vector<ItemState> items(n);
    for (std::size_t i = 0; i < n; ++i) {
        ItemState& it = items[i];
        it.steps_total = static_cast<std::int64_t>(inputs[i]->size());
        if (sessions[i] != nullptr) it.scratch = *sessions[i];
        prepare_session(it.scratch);
        if (exits[i] != nullptr && exits[i]->enabled()) {
            it.eval.emplace(*exits[i], it.scratch.readout);
        }
        init_result(results[i], 0, model_.classes, model_.layers.size());
        results[i].steps_offered = it.steps_total;
    }

    // Chunk rounds: every still-active item runs to its own next
    // evaluation step, the whole sub-batch crosses the cluster (pipeline
    // wavefront or channel passes), then criteria are checked and
    // retired items drop out of all subsequent rounds on every shard.
    ShardStats total = stats_;
    std::vector<std::size_t> round_items;
    std::vector<snn::SpikeTrain> segments;
    while (true) {
        round_items.clear();
        for (std::size_t i = 0; i < n; ++i) {
            if (!items[i].done) round_items.push_back(i);
        }
        if (round_items.empty()) break;

        segments.assign(round_items.size(), {});
        std::vector<const snn::SpikeTrain*> sub_inputs(round_items.size());
        std::vector<snn::SessionState*> sub_sessions(round_items.size());
        std::vector<SiaRunResult> sub_results(round_items.size());
        for (std::size_t j = 0; j < round_items.size(); ++j) {
            ItemState& it = items[round_items[j]];
            const snn::ExitCriterion* exit = exits[round_items[j]];
            const std::int64_t seg_end =
                it.eval ? std::min(it.steps_total,
                                   exit->next_eval_step(it.steps_done))
                        : it.steps_total;
            const snn::SpikeTrain& train = *inputs[round_items[j]];
            segments[j].assign(train.begin() + it.steps_done,
                               train.begin() + seg_end);
            sub_inputs[j] = &segments[j];
            sub_sessions[j] = &it.scratch;
        }

        // The mode functions accumulate into stats_; run each round on a
        // zeroed accumulator and fold into the running total (rounds are
        // separated by a PS-side criterion check, so makespans add).
        stats_ = ShardStats{};
        if (plan_.partition == ShardPartition::kPipeline) {
            run_batch_pipeline(sub_inputs, sub_sessions, sub_results);
        } else {
            run_batch_channel(sub_inputs, sub_sessions, sub_results);
        }
        total.compute_cycles += stats_.compute_cycles;
        total.transfer_bytes += stats_.transfer_bytes;
        total.transfer_cycles += stats_.transfer_cycles;
        total.transfer_stall_cycles += stats_.transfer_stall_cycles;
        total.fill_cycles += stats_.fill_cycles;
        total.drain_cycles += stats_.drain_cycles;
        total.makespan_cycles += stats_.makespan_cycles;
        total.item_cycles += stats_.item_cycles;

        for (std::size_t j = 0; j < round_items.size(); ++j) {
            const std::size_t i = round_items[j];
            ItemState& it = items[i];
            it.steps_done += sub_results[j].timesteps;
            it.scratch.initialized = true;
            results[i].append_chunk(std::move(sub_results[j]));
            snn::ExitReason reason = snn::ExitReason::kNone;
            if (it.eval) {
                reason = it.eval->observe(it.scratch.readout, it.steps_done);
            }
            if (reason == snn::ExitReason::kNone && it.steps_done < it.steps_total) {
                continue;
            }
            results[i].exit_reason = reason;
            results[i].readout = it.scratch.readout;
            if (sessions[i] != nullptr) {
                snn::SessionState& user = *sessions[i];
                user.membranes = std::move(it.scratch.membranes);
                user.readout = it.scratch.readout;
                user.initialized = true;
                user.steps += it.steps_done;
                ++user.windows;
            }
            it.done = true;
        }
    }
    stats_ = total;
}

void SiaCluster::run_batch_pipeline(
    const std::vector<const snn::SpikeTrain*>& inputs,
    const std::vector<snn::SessionState*>& sessions,
    std::vector<SiaRunResult>& results) {
    const std::size_t n = inputs.size();
    const std::size_t stage_count = plan_.stages.size();
    const std::size_t layer_count = model_.layers.size();

    // Per-item state shared by every stage: the full-model `outs`
    // vector (stage s-1 leaves the boundary output at its full-model
    // index, where stage s reads it) and the full-model result.
    std::vector<std::vector<snn::SpikeTrain>> outs(n);
    for (std::size_t i = 0; i < n; ++i) {
        init_result(results[i], static_cast<std::int64_t>(inputs[i]->size()),
                    model_.classes, layer_count);
        outs[i].resize(layer_count);
    }

    // Barrier wavefront: in wave k, stage s runs item k - s. The pool
    // barrier between waves gives stage s item i's data a happens-before
    // edge from stage s-1's wave; every task touches only its own
    // shard's simulator and its own item's outs/result/session, so
    // results are bit-identical at any thread count.
    std::vector<std::pair<std::size_t, std::size_t>> tasks;  // (stage, item)
    for (std::size_t wave = 0; wave + 1 <= n + stage_count - 1; ++wave) {
        tasks.clear();
        const std::size_t s_lo = wave >= n ? wave - n + 1 : 0;
        const std::size_t s_hi = std::min(stage_count - 1, wave);
        for (std::size_t s = s_lo; s <= s_hi; ++s) tasks.emplace_back(s, wave - s);
        pool_.parallel_for(tasks.size(), [&](std::size_t t, std::size_t) {
            const auto [s, i] = tasks[t];
            const ShardStage& stage = plan_.stages[s];
            shards_[s]->run_stage(stage.first, stage.last, *inputs[i], outs[i],
                                  results[i], sessions[i]);
        });
    }

    // Timeline reconstruction from the per-item (as-if-sequential)
    // stats: stage busy cycles B[s][i], boundary transfers on a
    // per-boundary DMA link. Double-buffered transfers start as soon as
    // the producing stage finishes the item and overlap the downstream
    // shard's work on earlier items; only the exposed remainder stalls.
    // Without double-buffering the producing shard drives its own
    // transfer and stays busy for it.
    std::vector<std::vector<std::int64_t>> finish(
        stage_count, std::vector<std::int64_t>(n, 0));
    std::vector<std::int64_t> tx_free(stage_count, 0);  // boundary s feeds s+1
    for (std::size_t i = 0; i < n; ++i) {
        const auto steps = static_cast<std::int64_t>(inputs[i]->size());
        for (std::size_t s = 0; s < stage_count; ++s) {
            const ShardStage& stage = plan_.stages[s];
            std::int64_t busy = 0;
            for (std::size_t l = stage.first; l < stage.last; ++l) {
                busy += results[i].layer_stats[l].total();
            }
            stats_.compute_cycles += busy;

            std::int64_t arrive = 0;
            std::int64_t upstream = 0;
            if (s > 0) {
                const std::int64_t bytes = plan_.stages[s - 1].boundary_bytes;
                const std::int64_t tx =
                    steps * AxiDma::cycles_for(bytes, config_);
                stats_.transfer_cycles += tx;
                stats_.transfer_bytes += steps * bytes;
                upstream = finish[s - 1][i];
                if (options_.double_buffer) {
                    const std::int64_t dma_start =
                        std::max(upstream, tx_free[s - 1]);
                    tx_free[s - 1] = dma_start + tx;
                    arrive = dma_start + tx;
                } else {
                    finish[s - 1][i] += tx;
                    arrive = finish[s - 1][i];
                }
            }
            const std::int64_t prev = i > 0 ? finish[s][i - 1] : 0;
            if (s > 0) {
                stats_.transfer_stall_cycles +=
                    std::max<std::int64_t>(0, arrive - std::max(prev, upstream));
            }
            finish[s][i] = std::max(prev, arrive) + busy;
        }
        stats_.item_cycles += results[i].total_cycles();
    }
    const std::size_t last = stage_count - 1;
    std::int64_t last_busy = 0;
    for (std::size_t l = plan_.stages[last].first; l < plan_.stages[last].last; ++l) {
        last_busy += results[0].layer_stats[l].total();
    }
    stats_.makespan_cycles = finish[last][n - 1];
    stats_.fill_cycles = finish[last][0] - last_busy;
    stats_.drain_cycles = stats_.makespan_cycles - finish[0][n - 1];
}

void SiaCluster::run_batch_channel(
    const std::vector<const snn::SpikeTrain*>& inputs,
    const std::vector<snn::SessionState*>& sessions,
    std::vector<SiaRunResult>& results) {
    const std::size_t n = inputs.size();
    const std::size_t layer_count = model_.layers.size();
    const std::size_t shard_count = plan_.slices.size();

    // Shards that own at least one nonzero slice drive their controller
    // FSM through a full inference pass; fully-idle surplus shards are
    // never opened (kInit -> kDone is not a legal transition).
    std::vector<bool> active(shard_count, false);
    std::size_t active_count = 0;
    for (std::size_t k = 0; k < shard_count; ++k) {
        for (std::size_t l = 0; l < layer_count && !active[k]; ++l) {
            active[k] = plan_.slices[k][l].c1 > plan_.slices[k][l].c0;
        }
        if (active[k]) ++active_count;
    }

    for (std::size_t i = 0; i < n; ++i) {
        const auto steps = static_cast<std::int64_t>(inputs[i]->size());
        init_result(results[i], steps, model_.classes, layer_count);

        std::vector<SiaRunResult> shard_res(shard_count);
        for (auto& r : shard_res) init_result(r, steps, model_.classes, layer_count);
        std::vector<snn::SpikeTrain> gathered(layer_count);
        std::vector<std::vector<snn::SpikeTrain>> shard_out(
            shard_count, std::vector<snn::SpikeTrain>(layer_count));

        for (std::size_t k = 0; k < shard_count; ++k) {
            if (active[k]) shards_[k]->begin_inference();
        }

        for (std::size_t l = 0; l < layer_count; ++l) {
            const snn::SnnLayer& layer = model_.layers[l];
            const snn::SpikeTrain& in =
                layer.input == -1 ? *inputs[i]
                                  : gathered[static_cast<std::size_t>(layer.input)];
            const snn::SpikeTrain* skip = nullptr;
            if (layer.has_skip()) {
                skip = layer.skip_src == -1
                           ? inputs[i]
                           : &gathered[static_cast<std::size_t>(layer.skip_src)];
            }

            // Every shard computes its slice against the full gathered
            // input; slices touch disjoint state (shard-local simulator,
            // disjoint session/logit ranges), so any thread count is
            // bit-identical.
            pool_.parallel_for(shard_count, [&](std::size_t k, std::size_t) {
                const ShardSlice& slice = plan_.slices[k][l];
                shards_[k]->run_layer_slice(l, slice.plan, in, skip,
                                            shard_out[k][l],
                                            shard_res[k].layer_stats[l],
                                            shard_res[k].logits_per_step,
                                            sessions[i], slice.c0, slice.c1);
            });

            // All-gather: the slices are disjoint contiguous bit ranges
            // of the same geometry, so the gathered map is the word-wise
            // OR of the shard outputs.
            snn::SpikeTrain& out = gathered[l];
            out = std::move(shard_out[0][l]);
            for (std::size_t k = 1; k < shard_count; ++k) {
                for (std::size_t t = 0; t < out.size(); ++t) {
                    const auto& src = shard_out[k][l][t].raw();
                    for (std::size_t w = 0; w < src.size(); ++w) {
                        if (src[w] != 0) {
                            out[t].set_word(static_cast<std::int64_t>(w),
                                            out[t].raw()[w] | src[w]);
                        }
                    }
                }
            }
            std::int64_t spikes = 0;
            for (const auto& m : out) spikes += m.count();
            results[i].spike_counts[l] = spikes;
        }

        for (std::size_t k = 0; k < shard_count; ++k) {
            if (active[k]) shards_[k]->end_inference();
        }

        // Combine per-shard views into the per-item result: logits and
        // readout slices are disjoint (sum picks each entry up once);
        // layer_stats hold the summed per-shard work (the cluster
        // timeline lives in the ShardStats below).
        for (std::size_t l = 0; l < layer_count; ++l) {
            LayerCycleStats& combined = results[i].layer_stats[l];
            combined.label = model_.layers[l].label;
            for (std::size_t k = 0; k < shard_count; ++k) {
                const LayerCycleStats& s = shard_res[k].layer_stats[l];
                combined.compute += s.compute;
                combined.aggregate += s.aggregate;
                combined.dma += s.dma;
                combined.mmio += s.mmio;
                combined.overhead += s.overhead;
                combined.input_spike_events += s.input_spike_events;
                combined.output_spikes += s.output_spikes;
                combined.event_additions += s.event_additions;
                combined.dense_ops += s.dense_ops;
            }
            results[i].neuron_counts.push_back(model_.layers[l].neurons());
        }
        for (std::size_t t = 0; t < results[i].logits_per_step.size(); ++t) {
            auto& row = results[i].logits_per_step[t];
            for (std::size_t k = 0; k < shard_count; ++k) {
                const auto& src = shard_res[k].logits_per_step[t];
                for (std::size_t j = 0; j < row.size(); ++j) row[j] += src[j];
            }
        }

        // Cluster timeline: per layer the critical path is the slowest
        // shard; between layers the all-gather is double-buffered
        // behind the producing layer's compute (per-timestep transfers
        // start as each step's output is packed; the last step's gather
        // is never hidable).
        for (std::size_t l = 0; l < layer_count; ++l) {
            std::int64_t critical = 0;
            for (std::size_t k = 0; k < shard_count; ++k) {
                const std::int64_t total = shard_res[k].layer_stats[l].total();
                stats_.compute_cycles += total;
                critical = std::max(critical, total);
            }
            stats_.makespan_cycles += critical;
            if (l + 1 < layer_count && active_count > 1) {
                const std::int64_t full_bytes =
                    plan_.program.layers[l].spike_out_bytes;
                const std::int64_t g = AxiDma::cycles_for(full_bytes, config_);
                const std::int64_t total_tx = steps * g;
                const std::int64_t exposed =
                    options_.double_buffer
                        ? g + std::max<std::int64_t>(
                                  0, (total_tx - g) -
                                         (critical - ceil_div(critical, steps)))
                        : total_tx;
                stats_.transfer_cycles += total_tx;
                stats_.transfer_bytes +=
                    steps * full_bytes *
                    static_cast<std::int64_t>(active_count - 1);
                stats_.transfer_stall_cycles += exposed;
                stats_.makespan_cycles += exposed;
            }
        }
    }
    // No exact single-Sia baseline inside a sliced run (per-shard stats
    // overlap); the bench derives speedups from the 1-shard row.
    stats_.item_cycles = 0;
}

}  // namespace sia::sim
