// Cluster executor: one compiled model partitioned across N resident
// sim::Sia instances (sim/shard.hpp's ShardPlan), driven wave-style off
// util::ThreadPool.
//
// kPipeline: shard s owns stage s's contiguous layers. Items flow
// through the stages as a wavefront — in wave k, stage s runs item
// k - s — with a pool barrier between waves, so stage s-1's write of
// the shared per-item `outs` vector happens-before stage s's read. Each
// task touches only its own shard's simulator state and its own item's
// result, which is what makes per-item results bit-identical to
// single-Sia run() at any thread count. Boundary spike trains are
// modeled as AxiDma transfers on a per-boundary link; with
// double-buffering a transfer overlaps the downstream shard's work on
// the previous item, and only the exposed remainder stalls
// (ShardStats::transfer_stall_cycles). Pipeline fill/drain ramps are
// reported explicitly.
//
// kChannel: every shard runs every layer on its contiguous
// output-channel slice against the full gathered input, then the packed
// SpikeMap words are all-gathered (word-wise OR — slices are disjoint
// bit ranges) before the next layer. The per-timestep gather is
// double-buffered behind the producing layer's compute; the last
// timestep's gather is never hidable.
//
// Both modes: logits, spikes, and session state bit-identical to
// single-Sia execution (the same multiset of exact int32 additions).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "sim/config.hpp"
#include "sim/shard.hpp"
#include "sim/sia.hpp"
#include "snn/exit.hpp"
#include "snn/model.hpp"
#include "snn/session.hpp"
#include "snn/spike.hpp"
#include "util/thread_pool.hpp"

namespace sia::sim {

struct SiaClusterOptions {
    /// Worker threads driving the shards; 0 = one per effective shard.
    std::size_t threads = 0;
    /// Double-buffer inter-shard transfers (overlap with compute). When
    /// false every transfer serializes after the producing compute —
    /// the ablation baseline for the BENCH_SHARD curve.
    bool double_buffer = true;
};

class SiaCluster {
public:
    /// `model` must outlive the cluster; `plan` is taken by value (the
    /// resident Sia instances reference plan().program).
    SiaCluster(const SiaConfig& config, const snn::SnnModel& model, ShardPlan plan,
               SiaClusterOptions options = {});

    /// Single-item convenience forms (one-item run_batch).
    [[nodiscard]] SiaRunResult run(const snn::SpikeTrain& input);
    [[nodiscard]] SiaRunResult run(const snn::SpikeTrain& input,
                                   snn::SessionState& session);

    /// Run a batch across the cluster. Per-item results are
    /// bit-identical to single-Sia runs: for kPipeline including every
    /// cycle stat; for kChannel the logits/spikes/sessions are
    /// bit-identical while layer_stats hold the per-shard work summed
    /// (the cluster timeline lives in last_stats()). Sessions follow
    /// Sia::run_batch's contract (nullptr = stateless; two windows of
    /// one session must not share a batch).
    [[nodiscard]] std::vector<SiaRunResult> run_batch(
        const std::vector<snn::SpikeTrain>& inputs);
    [[nodiscard]] std::vector<SiaRunResult> run_batch(
        const std::vector<const snn::SpikeTrain*>& inputs,
        const std::vector<snn::SessionState*>& sessions);
    /// Early-exit form: per-item criteria (nullptr / disabled = full
    /// train). Retirement propagates across every shard: items run in
    /// segment rounds ending at their own next evaluation step, and a
    /// retired item drops out of all subsequent rounds' pipeline waves /
    /// channel passes. Per-item logits/spikes/sessions stay bit-identical
    /// to single-Sia `run(input, exit)` at any shard and thread count;
    /// with no criterion armed this is exactly the legacy schedule.
    [[nodiscard]] std::vector<SiaRunResult> run_batch(
        const std::vector<const snn::SpikeTrain*>& inputs,
        const std::vector<snn::SessionState*>& sessions,
        const std::vector<const snn::ExitCriterion*>& exits);

    /// Cluster accounting of the most recent run_batch call.
    [[nodiscard]] const ShardStats& last_stats() const noexcept { return stats_; }

    [[nodiscard]] const ShardPlan& plan() const noexcept { return plan_; }
    [[nodiscard]] const SiaConfig& config() const noexcept { return config_; }
    [[nodiscard]] std::int64_t shard_count() const noexcept {
        return static_cast<std::int64_t>(shards_.size());
    }

private:
    void run_batch_pipeline(const std::vector<const snn::SpikeTrain*>& inputs,
                            const std::vector<snn::SessionState*>& sessions,
                            std::vector<SiaRunResult>& results);
    void run_batch_channel(const std::vector<const snn::SpikeTrain*>& inputs,
                           const std::vector<snn::SessionState*>& sessions,
                           std::vector<SiaRunResult>& results);
    /// Early-exit chunk rounds over the still-active sub-batch.
    void run_batch_segmented(const std::vector<const snn::SpikeTrain*>& inputs,
                             const std::vector<snn::SessionState*>& sessions,
                             const std::vector<const snn::ExitCriterion*>& exits,
                             std::vector<SiaRunResult>& results);
    /// Validate/size a session before the window (presizes the shared
    /// membrane banks so sliced shards never resize concurrently).
    void prepare_session(snn::SessionState& session) const;
    void finalize_session(snn::SessionState& session,
                          std::int64_t timesteps) const;

    SiaConfig config_;
    const snn::SnnModel& model_;
    ShardPlan plan_;  // by value: shards_ reference plan_.program
    SiaClusterOptions options_;
    std::vector<std::unique_ptr<Sia>> shards_;
    util::ThreadPool pool_;
    ShardStats stats_;
};

}  // namespace sia::sim
