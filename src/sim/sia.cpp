#include "sim/sia.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#include "sim/aggregation.hpp"
#include "snn/compute.hpp"
#include "snn/engine.hpp"

namespace sia::sim {

namespace {

/// Per-timestep, per-channel spike counts of a train (drives the
/// event-driven cycle accounting). Masked popcount over the packed
/// words, O(words) per channel instead of a per-site scan.
std::vector<std::vector<std::int64_t>> channel_spike_counts(const snn::SpikeTrain& train) {
    std::vector<std::vector<std::int64_t>> counts(train.size());
    for (std::size_t t = 0; t < train.size(); ++t) {
        const snn::SpikeMap& m = train[t];
        counts[t].assign(static_cast<std::size_t>(m.channels()), 0);
        const std::int64_t plane = m.height() * m.width();
        for (std::int64_t c = 0; c < m.channels(); ++c) {
            counts[t][static_cast<std::size_t>(c)] =
                m.count_range(c * plane, (c + 1) * plane);
        }
    }
    return counts;
}

std::int64_t bits_to_bytes(std::int64_t bits) noexcept { return (bits + 7) / 8; }

}  // namespace

std::int64_t SiaRunResult::total_cycles() const noexcept {
    std::int64_t c = 0;
    for (const auto& s : layer_stats) c += s.total();
    return c;
}

std::int64_t SiaRunResult::predicted_class(std::int64_t t) const {
    // One comparator convention across engines: first-index-wins.
    return static_cast<std::int64_t>(
        snn::argmax_first(logits_per_step.at(static_cast<std::size_t>(t))));
}

std::int64_t SiaRunResult::predicted() const {
    return static_cast<std::int64_t>(snn::argmax_first(readout));
}

void SiaRunResult::append_chunk(SiaRunResult&& chunk) {
    for (auto& row : chunk.logits_per_step) {
        logits_per_step.push_back(std::move(row));
    }
    if (spike_counts.size() != chunk.spike_counts.size()) {
        spike_counts.assign(chunk.spike_counts.size(), 0);
    }
    for (std::size_t i = 0; i < spike_counts.size(); ++i) {
        spike_counts[i] += chunk.spike_counts[i];
    }
    if (layer_stats.size() != chunk.layer_stats.size()) {
        layer_stats.assign(chunk.layer_stats.size(), LayerCycleStats{});
    }
    for (std::size_t i = 0; i < layer_stats.size(); ++i) {
        layer_stats[i] += chunk.layer_stats[i];
    }
    if (neuron_counts.empty()) neuron_counts = std::move(chunk.neuron_counts);
    timesteps += chunk.timesteps;
}

double SiaRunResult::effective_gops(const SiaConfig& config) const noexcept {
    std::uint64_t dense = 0;
    std::int64_t pl_cycles = 0;
    for (const auto& s : layer_stats) {
        dense += s.dense_ops;
        pl_cycles += s.compute + s.aggregate + s.dma;
    }
    if (pl_cycles == 0) return 0.0;
    const double seconds = static_cast<double>(pl_cycles) / (config.clock_mhz * 1e6);
    return static_cast<double>(dense) / seconds / 1e9;
}

double SiaRunResult::pe_utilization(const SiaConfig& config) const noexcept {
    std::int64_t adds = 0;
    std::int64_t compute_cycles = 0;
    for (const auto& s : layer_stats) {
        adds += s.event_additions;
        compute_cycles += s.compute;
    }
    const double slots = static_cast<double>(compute_cycles) *
                         static_cast<double>(config.pe_count()) * 3.0;
    return slots > 0 ? static_cast<double>(adds) / slots : 0.0;
}

Sia::Sia(const SiaConfig& config, const snn::SnnModel& model,
         const CompiledProgram& program)
    : config_(config), model_(model), program_(program),
      main_wt_cache_(model.layers.size()), skip_wt_cache_(model.layers.size()),
      memory_(config), dma_(config), mmio_(config) {
    model_.validate();
    if (program_.layers.size() != model_.layers.size()) {
        throw std::invalid_argument("Sia: program/model layer count mismatch");
    }
}

const std::vector<std::int8_t>& Sia::main_wt(std::size_t index) {
    auto& slot = main_wt_cache_[index];
    if (slot.empty()) {
        const snn::SnnLayer& layer = model_.layers[index];
        slot = layer.op == snn::LayerOp::kConv
                   ? snn::compute::transpose_conv(layer.main)
                   : snn::compute::transpose_linear(layer.main);
    }
    return slot;
}

const std::vector<std::int8_t>& Sia::skip_wt(std::size_t index) {
    auto& slot = skip_wt_cache_[index];
    if (slot.empty()) {
        slot = snn::compute::transpose_conv(model_.layers[index].skip);
    }
    return slot;
}

namespace {

void init_result(SiaRunResult& res, std::int64_t timesteps, std::int64_t classes,
                 std::size_t layer_count) {
    res.timesteps = timesteps;
    res.steps_offered = timesteps;
    res.exit_reason = snn::ExitReason::kNone;
    res.logits_per_step.assign(
        static_cast<std::size_t>(timesteps),
        std::vector<std::int64_t>(static_cast<std::size_t>(classes), 0));
    res.readout.clear();
    res.layer_stats.assign(layer_count, LayerCycleStats{});
    res.spike_counts.assign(layer_count, 0);
    res.neuron_counts.clear();
}

/// Stamp the final readout of a full (non-segmented) run.
void finish_result(SiaRunResult& res) {
    if (!res.logits_per_step.empty()) res.readout = res.logits_per_step.back();
}

}  // namespace

SiaRunResult Sia::run(const snn::SpikeTrain& input) {
    if (input.empty()) throw std::invalid_argument("Sia::run: empty input train");

    // Single-inference mode owns the whole U1/U2 pair (also recovers a
    // clean partitioning if a previous run_batch threw mid-flight).
    memory_.membrane.partition(1);

    SiaRunResult res;
    init_result(res, static_cast<std::int64_t>(input.size()), model_.classes,
                model_.layers.size());

    std::vector<snn::SpikeTrain> outs(model_.layers.size());

    controller_.reset();
    controller_.transition(CtrlState::kInit);
    for (std::size_t li = 0; li < model_.layers.size(); ++li) {
        run_layer(li, input, outs, res, nullptr);
    }
    controller_.transition(CtrlState::kDone);
    finish_result(res);
    return res;
}

SiaRunResult Sia::run(const snn::SpikeTrain& input, const snn::ExitCriterion& exit) {
    const std::vector<const snn::SpikeTrain*> inputs{&input};
    const std::vector<snn::SessionState*> sessions{nullptr};
    const std::vector<const snn::ExitCriterion*> exits{&exit};
    auto results = run_batch(inputs, sessions, exits);
    return std::move(results.front());
}

SiaRunResult Sia::run(const snn::SpikeTrain& input, snn::SessionState& session,
                      const snn::ExitCriterion& exit) {
    const std::vector<const snn::SpikeTrain*> inputs{&input};
    const std::vector<snn::SessionState*> sessions{&session};
    const std::vector<const snn::ExitCriterion*> exits{&exit};
    auto results = run_batch(inputs, sessions, exits);
    return std::move(results.front());
}

void Sia::prepare_session(snn::SessionState& session) const {
    if (!session.initialized) {
        session.membranes.assign(model_.layers.size(), {});
        session.readout.assign(static_cast<std::size_t>(model_.classes), 0);
        return;
    }
    if (session.membranes.size() != model_.layers.size() ||
        session.readout.size() != static_cast<std::size_t>(model_.classes)) {
        throw std::invalid_argument("Sia: session state/model geometry mismatch");
    }
    for (std::size_t i = 0; i < model_.layers.size(); ++i) {
        const snn::SnnLayer& layer = model_.layers[i];
        const std::size_t want =
            layer.spiking ? static_cast<std::size_t>(layer.neurons()) : 0;
        if (session.membranes[i].size() != want) {
            throw std::invalid_argument("Sia: session membrane size mismatch");
        }
    }
}

SiaRunResult Sia::run(const snn::SpikeTrain& input, snn::SessionState& session) {
    if (input.empty()) throw std::invalid_argument("Sia::run: empty input train");
    prepare_session(session);
    memory_.membrane.partition(1);

    SiaRunResult res;
    init_result(res, static_cast<std::int64_t>(input.size()), model_.classes,
                model_.layers.size());
    std::vector<snn::SpikeTrain> outs(model_.layers.size());

    controller_.reset();
    controller_.transition(CtrlState::kInit);
    for (std::size_t li = 0; li < model_.layers.size(); ++li) {
        run_layer(li, input, outs, res, &session);
    }
    controller_.transition(CtrlState::kDone);
    finish_result(res);
    session.initialized = true;
    session.steps += res.timesteps;
    ++session.windows;
    return res;
}

std::vector<SiaRunResult> Sia::run_batch(const std::vector<snn::SpikeTrain>& inputs) {
    std::vector<const snn::SpikeTrain*> ptrs;
    ptrs.reserve(inputs.size());
    for (const auto& in : inputs) ptrs.push_back(&in);
    return run_batch(ptrs);
}

std::vector<SiaRunResult> Sia::run_batch(
    const std::vector<const snn::SpikeTrain*>& inputs) {
    return run_batch(inputs, std::vector<snn::SessionState*>(inputs.size(), nullptr));
}

std::vector<SiaRunResult> Sia::run_batch(
    const std::vector<const snn::SpikeTrain*>& inputs,
    const std::vector<snn::SessionState*>& sessions) {
    return run_batch(inputs, sessions,
                     std::vector<const snn::ExitCriterion*>(inputs.size(), nullptr));
}

std::vector<SiaRunResult> Sia::run_batch(
    const std::vector<const snn::SpikeTrain*>& inputs,
    const std::vector<snn::SessionState*>& sessions,
    const std::vector<const snn::ExitCriterion*>& exits) {
    const std::size_t n = inputs.size();
    if (sessions.size() != n) {
        throw std::invalid_argument("Sia::run_batch: inputs/sessions size mismatch");
    }
    if (exits.size() != n) {
        throw std::invalid_argument("Sia::run_batch: inputs/exits size mismatch");
    }
    batch_stats_ = SiaBatchStats{};
    batch_stats_.batch = n;
    batch_stats_.banks = std::max<std::int64_t>(1, config_.membrane_banks);

    std::vector<SiaRunResult> results(n);
    if (n == 0) return results;
    for (const auto* in : inputs) {
        if (in == nullptr || in->empty()) {
            throw std::invalid_argument("Sia::run_batch: empty input train");
        }
    }
    for (snn::SessionState* session : sessions) {
        if (session != nullptr) prepare_session(*session);
    }
    bool any_exit = false;
    for (const snn::ExitCriterion* exit : exits) {
        if (exit == nullptr) continue;
        exit->validate();
        any_exit = any_exit || exit->enabled();
    }

    // RAII: restores single-inference partitioning at scope exit, so a
    // mid-wave throw can never leave a stale multi-context partitioning
    // behind for a subsequent run() — retired items included.
    const PartitionGuard partition_guard(memory_.membrane, batch_stats_.banks);
    batch_stats_.membrane_slice_bytes = memory_.membrane.bank_capacity();
    batch_stats_.membrane_resident = true;
    for (const LayerPlan& plan : program_.layers) {
        if (plan.membrane_bytes > batch_stats_.membrane_slice_bytes) {
            batch_stats_.membrane_resident = false;
            break;
        }
    }
    controller_.reset();

    std::int64_t saved_cycles = 0;
    if (any_exit) {
        run_batch_ragged(inputs, sessions, exits, results, saved_cycles);
    } else {
        run_batch_full(inputs, sessions, results, saved_cycles);
    }

    batch_stats_.retired_at.reserve(n);
    for (const SiaRunResult& r : results) {
        batch_stats_.sequential_cycles += r.total_cycles();
        batch_stats_.steps_executed += r.timesteps;
        batch_stats_.steps_offered += r.steps_offered;
        batch_stats_.retired_at.push_back(r.timesteps);
        if (r.exit_reason != snn::ExitReason::kNone && r.timesteps < r.steps_offered) {
            ++batch_stats_.retired_early;
        }
    }
    batch_stats_.resident_cycles = batch_stats_.sequential_cycles - saved_cycles;
    return results;
}

void Sia::run_batch_full(const std::vector<const snn::SpikeTrain*>& inputs,
                         const std::vector<snn::SessionState*>& sessions,
                         std::vector<SiaRunResult>& results,
                         std::int64_t& saved_cycles) {
    const std::size_t n = inputs.size();
    const auto wave_width = static_cast<std::size_t>(batch_stats_.banks);
    for (std::size_t start = 0; start < n; start += wave_width) {
        const std::size_t count = std::min(n - start, wave_width);
        ++batch_stats_.waves;
        ++batch_stats_.chunk_passes;
        run_wave(inputs.data() + start, sessions.data() + start,
                 results.data() + start, count);
        for (std::size_t s = 0; s < count; ++s) {
            finish_result(results[start + s]);
            snn::SessionState* session = sessions[start + s];
            if (session == nullptr) continue;
            session->initialized = true;
            session->steps += results[start + s].timesteps;
            ++session->windows;
        }
        // Residency savings of this wave: conv kernels streamed once for
        // all `count` members, and the PS invoked each layer once.
        for (std::size_t li = 0; li < model_.layers.size(); ++li) {
            const LayerPlan& plan = program_.layers[li];
            const auto extra = static_cast<std::int64_t>(count - 1);
            if (!plan.mmio) {
                batch_stats_.weight_bytes_streamed += plan.weight_stream_bytes;
                batch_stats_.weight_bytes_sequential +=
                    static_cast<std::int64_t>(count) * plan.weight_stream_bytes;
                saved_cycles += extra * AxiDma::cycles_for(plan.weight_stream_bytes,
                                                           config_);
            }
            saved_cycles += extra * config_.ps_layer_overhead_cycles;
        }
    }
}

void Sia::run_batch_ragged(const std::vector<const snn::SpikeTrain*>& inputs,
                           const std::vector<snn::SessionState*>& sessions,
                           const std::vector<const snn::ExitCriterion*>& exits,
                           std::vector<SiaRunResult>& results,
                           std::int64_t& saved_cycles) {
    const std::size_t n = inputs.size();
    const auto wave_width = static_cast<std::size_t>(batch_stats_.banks);
    constexpr std::size_t kFree = static_cast<std::size_t>(-1);

    // Per-item carried state. The scratch session is what makes slot
    // reuse safe: every segment pass resumes the item's membranes from
    // its scratch and saves them back, so whatever another item left in
    // the bank between this item's segments is never observed. User
    // sessions are copied in at admission and written back only when
    // the item finishes (a mid-batch throw leaves them untouched).
    struct ItemState {
        snn::SessionState scratch;
        std::optional<snn::ExitEvaluator> eval;
        std::int64_t steps_done = 0;
        std::int64_t steps_total = 0;
    };
    std::vector<ItemState> items(n);
    for (std::size_t i = 0; i < n; ++i) {
        ItemState& it = items[i];
        it.steps_total = static_cast<std::int64_t>(inputs[i]->size());
        if (sessions[i] != nullptr) it.scratch = *sessions[i];
        prepare_session(it.scratch);  // presizes fresh scratch state
        if (exits[i] != nullptr && exits[i]->enabled()) {
            // Baseline = the readout carried in at window entry, so
            // session windows exit on their own delta (zeros when
            // stateless — the absolute readout).
            it.eval.emplace(*exits[i], it.scratch.readout);
        }
        init_result(results[i], 0, model_.classes, model_.layers.size());
        results[i].steps_offered = it.steps_total;
    }

    // Ragged wave loop: slots are membrane-bank contexts. Free slots
    // back-fill from the pending queue in admission order (lowest free
    // slot first) at segment boundaries only — both orders are fixed by
    // the batch, never by timing, so the schedule is deterministic.
    std::vector<std::size_t> slot(wave_width, kFree);
    std::size_t next_pending = 0;
    std::size_t finished = 0;
    bool admitted_first_cohort = false;

    std::vector<std::size_t> active;              // occupied slot ids, ascending
    std::vector<snn::SpikeTrain> segments(wave_width);
    std::vector<SiaRunResult> chunk(wave_width);
    std::vector<std::vector<snn::SpikeTrain>> outs(wave_width);

    while (finished < n) {
        for (std::size_t s = 0; s < wave_width && next_pending < n; ++s) {
            if (slot[s] == kFree) {
                slot[s] = next_pending++;
                if (admitted_first_cohort) ++batch_stats_.backfills;
            }
        }
        admitted_first_cohort = true;

        // Segment boundaries: each item runs to its own next evaluation
        // point (or to the end of its train) — a pure function of the
        // item's criterion, independent of its co-batched neighbours.
        active.clear();
        for (std::size_t s = 0; s < wave_width; ++s) {
            if (slot[s] == kFree) continue;
            const std::size_t i = slot[s];
            ItemState& it = items[i];
            const snn::ExitCriterion* exit = exits[i];
            const std::int64_t seg_end =
                it.eval ? std::min(it.steps_total, exit->next_eval_step(it.steps_done))
                        : it.steps_total;
            snn::SpikeTrain& seg = segments[s];
            seg.clear();
            seg.reserve(static_cast<std::size_t>(seg_end - it.steps_done));
            for (std::int64_t t = it.steps_done; t < seg_end; ++t) {
                const snn::SpikeMap& frame = (*inputs[i])[static_cast<std::size_t>(t)];
                if (frame.channels() != model_.input_channels ||
                    frame.height() != model_.input_h ||
                    frame.width() != model_.input_w) {
                    throw std::invalid_argument(
                        "Sia::run_batch: input frame geometry mismatch");
                }
                seg.push_back(frame);
            }
            init_result(chunk[s], seg_end - it.steps_done, model_.classes,
                        model_.layers.size());
            outs[s].assign(model_.layers.size(), {});
            active.push_back(s);
        }

        // One layer-major pass over the active set — the same resident
        // schedule as a full wave, just over segments.
        ++batch_stats_.chunk_passes;
        controller_.transition(CtrlState::kInit);
        for (std::size_t li = 0; li < model_.layers.size(); ++li) {
            for (const std::size_t s : active) {
                memory_.membrane.set_active(static_cast<std::int64_t>(s));
                run_layer(li, segments[s], outs[s], chunk[s],
                          &items[slot[s]].scratch);
            }
        }
        controller_.transition(CtrlState::kDone);

        // Residency savings of this pass: weights streamed once for all
        // active members, the PS invoked once per layer. A pass with a
        // narrowed wave shares across fewer members — that shrinkage is
        // exactly what back-filling recovers.
        const auto count = static_cast<std::int64_t>(active.size());
        for (std::size_t li = 0; li < model_.layers.size(); ++li) {
            const LayerPlan& plan = program_.layers[li];
            const std::int64_t extra = count - 1;
            if (!plan.mmio) {
                batch_stats_.weight_bytes_streamed += plan.weight_stream_bytes;
                batch_stats_.weight_bytes_sequential +=
                    count * plan.weight_stream_bytes;
                saved_cycles += extra * AxiDma::cycles_for(plan.weight_stream_bytes,
                                                           config_);
            }
            saved_cycles += extra * config_.ps_layer_overhead_cycles;
        }

        // Evaluate at the segment boundary; retire exited and completed
        // items, releasing their membrane-bank context for back-fill.
        for (const std::size_t s : active) {
            const std::size_t i = slot[s];
            ItemState& it = items[i];
            it.steps_done += chunk[s].timesteps;
            it.scratch.initialized = true;
            results[i].append_chunk(std::move(chunk[s]));
            snn::ExitReason reason = snn::ExitReason::kNone;
            if (it.eval) {
                reason = it.eval->observe(it.scratch.readout, it.steps_done);
            }
            if (reason == snn::ExitReason::kNone && it.steps_done < it.steps_total) {
                continue;  // more segments to run
            }
            results[i].exit_reason = reason;
            results[i].readout = it.scratch.readout;
            if (sessions[i] != nullptr) {
                snn::SessionState& user = *sessions[i];
                user.membranes = std::move(it.scratch.membranes);
                user.readout = it.scratch.readout;
                user.initialized = true;
                user.steps += it.steps_done;
                ++user.windows;
            }
            slot[s] = kFree;
            ++finished;
        }
    }
    // In the ragged schedule a "wave" is one layer-major segment pass —
    // the granularity at which weights are re-streamed.
    batch_stats_.waves = batch_stats_.chunk_passes;
}

void Sia::run_wave(const snn::SpikeTrain* const* inputs,
                   snn::SessionState* const* sessions, SiaRunResult* results,
                   std::size_t count) {
    // Fresh FSM pass per wave; kDone -> kInit covers waves after the first.
    controller_.transition(CtrlState::kInit);

    std::vector<std::vector<snn::SpikeTrain>> outs(count);
    for (std::size_t s = 0; s < count; ++s) {
        init_result(results[s], static_cast<std::int64_t>(inputs[s]->size()),
                    model_.classes, model_.layers.size());
        outs[s].resize(model_.layers.size());
    }

    // Layer-major over the wave: kernels for layer `li` are resident
    // while every wave member's timestep loop runs over its own membrane
    // context, then the next layer is configured.
    for (std::size_t li = 0; li < model_.layers.size(); ++li) {
        for (std::size_t s = 0; s < count; ++s) {
            memory_.membrane.set_active(static_cast<std::int64_t>(s));
            run_layer(li, *inputs[s], outs[s], results[s], sessions[s]);
        }
    }
    controller_.transition(CtrlState::kDone);
}

void Sia::run_layer(std::size_t index, const snn::SpikeTrain& input,
                    std::vector<snn::SpikeTrain>& outs, SiaRunResult& res,
                    snn::SessionState* session) {
    const snn::SnnLayer& layer = model_.layers[index];
    const auto timesteps = static_cast<std::int64_t>(input.size());
    LayerCycleStats& stats = res.layer_stats[index];
    stats.label = layer.label;
    stats.overhead += config_.ps_layer_overhead_cycles;
    controller_.transition(CtrlState::kLoadConfig);

    const snn::SpikeTrain& in_train =
        layer.input == -1 ? input : outs[static_cast<std::size_t>(layer.input)];
    const snn::SpikeTrain* skip_train = nullptr;
    if (layer.has_skip()) {
        skip_train = layer.skip_src == -1
                         ? &input
                         : &outs[static_cast<std::size_t>(layer.skip_src)];
    }

    snn::SpikeTrain& out_train = outs[index];
    out_train.assign(static_cast<std::size_t>(timesteps),
                     snn::SpikeMap(layer.out_channels, layer.out_h, layer.out_w));

    const LayerPlan& plan = program_.layers[index];
    if (layer.op == snn::LayerOp::kConv) {
        run_conv_layer(index, plan, in_train, skip_train, out_train, stats,
                       res.logits_per_step, session, 0, layer.out_channels);
    } else {
        run_linear_layer(index, plan, in_train, out_train, stats, res.logits_per_step,
                         session, 0, layer.main.out_features);
    }

    res.neuron_counts.push_back(layer.neurons());
    std::int64_t spikes = 0;
    for (const auto& m : out_train) spikes += m.count();
    res.spike_counts[index] = spikes;
}

void Sia::begin_inference() {
    memory_.membrane.partition(1);
    controller_.reset();
    controller_.transition(CtrlState::kInit);
}

void Sia::end_inference() { controller_.transition(CtrlState::kDone); }

void Sia::run_stage(std::size_t first, std::size_t last, const snn::SpikeTrain& input,
                    std::vector<snn::SpikeTrain>& outs, SiaRunResult& res,
                    snn::SessionState* session) {
    begin_inference();
    for (std::size_t li = first; li < last; ++li) {
        run_layer(li, input, outs, res, session);
    }
    end_inference();
}

void Sia::run_layer_slice(std::size_t index, const LayerPlan& plan,
                          const snn::SpikeTrain& in_train,
                          const snn::SpikeTrain* skip_train, snn::SpikeTrain& out_train,
                          LayerCycleStats& stats,
                          std::vector<std::vector<std::int64_t>>& readout,
                          snn::SessionState* session, std::int64_t c0, std::int64_t c1) {
    const snn::SnnLayer& layer = model_.layers[index];
    out_train.assign(in_train.size(),
                     snn::SpikeMap(layer.out_channels, layer.out_h, layer.out_w));
    if (c0 >= c1) return;  // zero-width slice: this shard idles the layer

    stats.label = layer.label;
    stats.overhead += config_.ps_layer_overhead_cycles;
    controller_.transition(CtrlState::kLoadConfig);
    if (layer.op == snn::LayerOp::kConv) {
        run_conv_layer(index, plan, in_train, skip_train, out_train, stats, readout,
                       session, c0, c1);
    } else {
        run_linear_layer(index, plan, in_train, out_train, stats, readout, session,
                         c0, c1);
    }
}

void Sia::run_conv_layer(std::size_t index, const LayerPlan& plan,
                         const snn::SpikeTrain& in_train,
                         const snn::SpikeTrain* skip_train, snn::SpikeTrain& out_train,
                         LayerCycleStats& stats,
                         std::vector<std::vector<std::int64_t>>& readout,
                         snn::SessionState* session, std::int64_t c0, std::int64_t c1) {
    const snn::SnnLayer& layer = model_.layers[index];
    const snn::Branch& b = layer.main;
    const auto timesteps = static_cast<std::int64_t>(in_train.size());
    const std::int64_t neurons = layer.neurons();
    const std::int64_t oc = layer.out_channels;
    const std::int64_t oh = layer.out_h;
    const std::int64_t ow = layer.out_w;
    const std::int64_t lanes = config_.pe_count();
    // Output-channel slice this instance owns (the full layer for
    // unsharded runs). CHW flat indices make a channel slice the
    // contiguous bit range [c0 * plane, c1 * plane).
    const std::int64_t span = c1 - c0;
    const std::int64_t plane = oh * ow;
    const std::int64_t slice_neurons = span * plane;

    const std::vector<std::int8_t>& wt = main_wt(index);
    const bool has_down_skip = layer.has_skip() && !layer.skip_is_identity;
    static const std::vector<std::int8_t> kNoWeights;
    const std::vector<std::int8_t>& skip_weights =
        has_down_skip ? skip_wt(index) : kNoWeights;

    const auto counts = channel_spike_counts(in_train);
    const auto skip_counts =
        has_down_skip ? channel_spike_counts(*skip_train)
                      : std::vector<std::vector<std::int64_t>>{};

    // Membrane storage: the first spatial slice lives in the ping-pong
    // bank model; further slices (spatial tiling) are host-mirrored --
    // numerically identical, with the re-streaming traffic accounted in
    // the DMA term above.
    const std::int64_t fit_neurons =
        std::min<std::int64_t>(slice_neurons, memory_.membrane.bank_capacity() / 2);
    const std::int64_t spill_neurons = slice_neurons - fit_neurons;
    // Resume the carried potentials of a streaming session; a fresh
    // session (or stateless run) starts from the initial potential. A
    // sliced run addresses only its contiguous CHW range of the shared
    // session bank.
    const std::int16_t* resume =
        session != nullptr && session->initialized
            ? session->membranes[index].data() + c0 * plane
            : nullptr;
    std::vector<std::int16_t> spill_mem(static_cast<std::size_t>(spill_neurons));
    for (std::int64_t i = 0; i < spill_neurons; ++i) {
        spill_mem[static_cast<std::size_t>(i)] =
            resume != nullptr ? resume[fit_neurons + i] : layer.initial_potential;
    }
    for (std::int64_t i = 0; i < fit_neurons; ++i) {
        memory_.membrane.write16(2 * i,
                                 resume != nullptr ? resume[i]
                                                   : layer.initial_potential);
    }
    memory_.membrane.toggle();  // make the initial potentials readable

    std::vector<std::int32_t> psum(static_cast<std::size_t>(neurons), 0);
    std::vector<std::int32_t> skip_psum;
    if (has_down_skip) skip_psum.assign(static_cast<std::size_t>(neurons), 0);

    const std::int64_t wc = SiaConfig::window_cycles(b.kernel);
    const std::int64_t wc_skip = SiaConfig::window_cycles(1);
    // Layer-major schedule: every (tile, chunk) kernel set is streamed
    // exactly once per inference; partial sums across chunks stage in
    // the 128 kB residual memory while the timestep loop runs.
    stats.dma += dma_.transfer(plan.weight_stream_bytes);

    const std::uint64_t dense_per_step =
        static_cast<std::uint64_t>(span * oh * ow * b.in_channels * b.kernel *
                                   b.kernel) *
        2ULL;
    const std::uint64_t skip_dense_per_step =
        has_down_skip ? static_cast<std::uint64_t>(span * oh * ow *
                                                   layer.skip.in_channels) *
                            2ULL
                      : 0ULL;

    for (std::int64_t t = 0; t < timesteps; ++t) {
        controller_.transition(CtrlState::kReadInput);
        stats.dma += dma_.transfer(plan.spike_in_bytes * plan.oc_tiles *
                                   plan.spatial_tiles);
        const snn::SpikeMap& in = in_train[static_cast<std::size_t>(t)];
        std::fill(psum.begin(), psum.end(), 0);

        for (std::int64_t pass = 0; pass < plan.ic_passes; ++pass) {
            const std::int64_t ic0 = pass * plan.ic_chunk;
            const std::int64_t ic1 = std::min(b.in_channels, ic0 + plan.ic_chunk);
            std::int64_t chunk_spikes = 0;
            for (std::int64_t ic = ic0; ic < ic1; ++ic) {
                chunk_spikes += counts[static_cast<std::size_t>(t)]
                                      [static_cast<std::size_t>(ic)];
            }
            for (std::int64_t tile = 0; tile < plan.oc_tiles; ++tile) {
                controller_.transition(CtrlState::kPeCompute);
                const std::int64_t tile_lanes = std::min(lanes, span - tile * lanes);
                stats.compute += chunk_spikes * wc;
                stats.input_spike_events += chunk_spikes;
                stats.event_additions +=
                    chunk_spikes * b.kernel * b.kernel * tile_lanes;
            }
            snn::compute::conv_psum_chunk_oc(b, wt, in, oh, ow, ic0, ic1, c0, c1, psum);
        }
        stats.dense_ops += dense_per_step;

        // Residual path.
        if (layer.has_skip()) {
            const snn::SpikeMap& skip_in = (*skip_train)[static_cast<std::size_t>(t)];
            stats.dma += dma_.transfer(plan.residual_in_bytes);
            if (has_down_skip) {
                std::fill(skip_psum.begin(), skip_psum.end(), 0);
                std::int64_t skip_spikes = 0;
                for (const auto n : skip_counts[static_cast<std::size_t>(t)]) {
                    skip_spikes += n;
                }
                for (std::int64_t tile = 0; tile < plan.oc_tiles; ++tile) {
                    controller_.transition(CtrlState::kPeCompute);
                    stats.compute += skip_spikes * wc_skip;
                    stats.input_spike_events += skip_spikes;
                    stats.event_additions +=
                        skip_spikes * std::min(lanes, span - tile * lanes);
                }
                snn::compute::conv_psum_chunk_oc(layer.skip, skip_weights, skip_in, oh,
                                                 ow, 0, layer.skip.in_channels, c0, c1,
                                                 skip_psum);
                stats.dense_ops += skip_dense_per_step;
            }
        }

        controller_.transition(CtrlState::kAggregate);
        stats.aggregate += AggregationCore::retire_cycles(
            slice_neurons, config_.aggregation_lanes,
            plan.oc_tiles * config_.aggregation_pipeline_depth);

        snn::SpikeMap& out = out_train[static_cast<std::size_t>(t)];
        const snn::SpikeMap* skip_spike_map =
            layer.has_skip() ? &(*skip_train)[static_cast<std::size_t>(t)] : nullptr;
        for (std::int64_t y = 0; y < oh; ++y) {
            for (std::int64_t x = 0; x < ow; ++x) {
                for (std::int64_t o = c0; o < c1; ++o) {
                    const auto hwc = static_cast<std::size_t>((y * ow + x) * oc + o);
                    // Membrane banks hold only this instance's slice:
                    // slice-relative CHW addressing.
                    const std::int64_t chw = ((o - c0) * oh + y) * ow + x;
                    std::int16_t m = snn::compute::aggregate(
                        psum[hwc], b.gain[static_cast<std::size_t>(o)],
                        b.bias[static_cast<std::size_t>(o)], b.gain_shift);
                    if (layer.has_skip()) {
                        if (layer.skip_is_identity) {
                            if (skip_spike_map->get(o, y, x)) {
                                m = util::sat_add16(m, layer.identity_skip.charge);
                            }
                        } else {
                            const std::int16_t ms = snn::compute::aggregate(
                                skip_psum[hwc],
                                layer.skip.gain[static_cast<std::size_t>(o)],
                                layer.skip.bias[static_cast<std::size_t>(o)],
                                layer.skip.gain_shift);
                            m = util::sat_add16(m, ms);
                        }
                    }
                    const bool in_bank = chw < fit_neurons;
                    const std::int16_t u_prev =
                        in_bank ? memory_.membrane.read16(2 * chw)
                                : spill_mem[static_cast<std::size_t>(chw - fit_neurons)];
                    bool spike = false;
                    const std::int16_t u_new =
                        snn::compute::update_neuron(u_prev, m, layer, spike);
                    if (in_bank) {
                        memory_.membrane.write16(2 * chw, u_new);
                    } else {
                        spill_mem[static_cast<std::size_t>(chw - fit_neurons)] = u_new;
                    }
                    if (spike) out.set(o, y, x, true);
                }
            }
        }
        (void)readout;  // conv layers are always spiking (validated upstream)

        controller_.transition(CtrlState::kWriteOutput);
        // Bit-pack the slice's output spikes through the output BRAM
        // (capacity checked); the slice is the contiguous flat range
        // [c0 * plane, c1 * plane).
        const std::int64_t out_bytes = bits_to_bytes(slice_neurons);
        for (std::int64_t byte = 0; byte < out_bytes; ++byte) {
            std::uint8_t packed = 0;
            for (std::int64_t bit = 0; bit < 8; ++bit) {
                const std::int64_t idx = byte * 8 + bit;
                if (idx < slice_neurons && out.get_flat(c0 * plane + idx)) {
                    packed = static_cast<std::uint8_t>(packed | (1U << bit));
                }
            }
            memory_.output_spikes.write8(byte, packed);
        }
        stats.dma += dma_.transfer(plan.spike_out_bytes);
        if (plan.membrane_spill) {
            // Legacy DDR-spill schedule (scheduling ablation only).
            stats.dma += dma_.transfer(plan.membrane_spill_bytes);
        }
        memory_.membrane.toggle();
    }

    if (session != nullptr) {
        // Save the end-of-window potentials: after the final toggle the
        // last written values are on the readable bank. Sliced runs
        // write only their disjoint range of the (presized) shared bank.
        auto& mem = session->membranes[index];
        if (mem.size() != static_cast<std::size_t>(neurons)) {
            mem.resize(static_cast<std::size_t>(neurons));
        }
        const std::int64_t base = c0 * plane;
        for (std::int64_t i = 0; i < fit_neurons; ++i) {
            mem[static_cast<std::size_t>(base + i)] = memory_.membrane.read16(2 * i);
        }
        std::copy(spill_mem.begin(), spill_mem.end(), mem.begin() + base + fit_neurons);
    }
}

void Sia::run_linear_layer(std::size_t index, const LayerPlan& plan,
                           const snn::SpikeTrain& in_train, snn::SpikeTrain& out_train,
                           LayerCycleStats& stats,
                           std::vector<std::vector<std::int64_t>>& readout,
                           snn::SessionState* session, std::int64_t c0,
                           std::int64_t c1) {
    const snn::SnnLayer& layer = model_.layers[index];
    const snn::Branch& b = layer.main;
    const auto timesteps = static_cast<std::int64_t>(in_train.size());
    const std::int64_t lanes = config_.pe_count();
    const std::int64_t features = b.out_features;
    // Output-feature slice this instance owns (the full layer for
    // unsharded runs). Vectors keep the full-F layout; only [c0, c1) is
    // touched, so disjoint slices compose bit-identically.
    const std::int64_t span = c1 - c0;

    const std::vector<std::int8_t>& wt = main_wt(index);
    std::vector<std::int32_t> psum(static_cast<std::size_t>(features), 0);
    std::vector<std::int16_t> mem(static_cast<std::size_t>(features),
                                  layer.initial_potential);
    std::vector<std::int64_t> acc(static_cast<std::size_t>(features), 0);
    if (session != nullptr && session->initialized) {
        if (layer.spiking) {
            // Resume the carried potentials of the streaming session
            // (only this instance's slice of the shared bank).
            std::copy(session->membranes[index].begin() + c0,
                      session->membranes[index].begin() + c1, mem.begin() + c0);
        } else {
            // Readout carries across windows: logits keep accumulating.
            const auto hi = std::min<std::int64_t>(
                c1, static_cast<std::int64_t>(session->readout.size()));
            for (std::int64_t f = c0; f < hi; ++f) {
                acc[static_cast<std::size_t>(f)] =
                    session->readout[static_cast<std::size_t>(f)];
            }
        }
    }

    const std::int64_t oc_tiles = (span + lanes - 1) / lanes;
    const std::int64_t wc = SiaConfig::window_cycles(1);
    const std::uint64_t dense_per_step =
        static_cast<std::uint64_t>(b.in_features * span) * 2ULL;

    for (std::int64_t t = 0; t < timesteps; ++t) {
        controller_.transition(CtrlState::kReadInput);
        const snn::SpikeMap& in = in_train[static_cast<std::size_t>(t)];
        const std::int64_t in_spikes = in.count();

        if (plan.mmio) {
            // PS-mediated word path: weights re-streamed per timestep plus
            // spike vector in and result readback (Table I FC calibration).
            stats.mmio += mmio_.transfer(plan.weight_stream_bytes);
            stats.mmio += mmio_.transfer(bits_to_bytes(b.in_features));
            stats.mmio += mmio_.transfer(span * 4);
        } else {
            stats.dma += dma_.transfer(plan.weight_stream_bytes +
                                       bits_to_bytes(b.in_features));
        }

        for (std::int64_t tile = 0; tile < oc_tiles; ++tile) {
            controller_.transition(CtrlState::kPeCompute);
            const std::int64_t tile_lanes = std::min(lanes, span - tile * lanes);
            stats.compute += in_spikes * wc;
            stats.input_spike_events += in_spikes;
            stats.event_additions += in_spikes * tile_lanes;
        }
        snn::compute::linear_psum_range(b, wt, in, c0, c1, psum);
        stats.dense_ops += dense_per_step;

        controller_.transition(CtrlState::kAggregate);
        stats.aggregate += AggregationCore::retire_cycles(
            span, config_.aggregation_lanes,
            oc_tiles * config_.aggregation_pipeline_depth);

        snn::SpikeMap& out = out_train[static_cast<std::size_t>(t)];
        for (std::int64_t f = c0; f < c1; ++f) {
            const std::int16_t m = snn::compute::aggregate(
                psum[static_cast<std::size_t>(f)], b.gain[static_cast<std::size_t>(f)],
                b.bias[static_cast<std::size_t>(f)], b.gain_shift);
            if (layer.spiking) {
                bool spike = false;
                mem[static_cast<std::size_t>(f)] = snn::compute::update_neuron(
                    mem[static_cast<std::size_t>(f)], m, layer, spike);
                if (spike) out.set_flat(f, true);
            } else {
                acc[static_cast<std::size_t>(f)] += m;
            }
        }
        if (!layer.spiking) {
            auto& row = readout[static_cast<std::size_t>(t)];
            const auto hi =
                std::min<std::int64_t>(c1, static_cast<std::int64_t>(row.size()));
            for (std::int64_t f = c0; f < hi; ++f) {
                row[static_cast<std::size_t>(f)] = acc[static_cast<std::size_t>(f)];
            }
        }
        controller_.transition(CtrlState::kWriteOutput);
    }

    if (session != nullptr) {
        if (layer.spiking) {
            // Write only this instance's slice of the (presized) shared
            // session bank — sliced shards save disjoint ranges.
            auto& smem = session->membranes[index];
            if (smem.size() != mem.size()) smem.resize(mem.size());
            std::copy(mem.begin() + c0, mem.begin() + c1, smem.begin() + c0);
        } else {
            // Readout layers carry no membranes; the bank is already
            // empty for shared sliced sessions (clear() would race).
            if (!session->membranes[index].empty()) session->membranes[index].clear();
            const auto hi = std::min<std::int64_t>(
                c1, static_cast<std::int64_t>(session->readout.size()));
            for (std::int64_t f = c0; f < hi; ++f) {
                session->readout[static_cast<std::size_t>(f)] =
                    acc[static_cast<std::size_t>(f)];
            }
        }
    }
}

}  // namespace sia::sim
