// PS <-> PL transport models (Fig. 4): DMA-style streaming for bulk
// conv-layer traffic and PS-mediated AXI4-lite single-word transactions
// (the FC-layer path whose per-word cost dominates Table I's FC rows).
#pragma once

#include <cstdint>

#include "sim/config.hpp"

namespace sia::sim {

/// Cycle-cost model for bulk streaming transfers (spikes, kernels).
class AxiDma {
public:
    explicit AxiDma(const SiaConfig& config) : config_(config) {}

    /// Cycle cost of moving `bytes` without performing the transfer (for
    /// what-if accounting, e.g. the residency savings Sia::run_batch
    /// reports). transfer() charges exactly this.
    [[nodiscard]] static std::int64_t cycles_for(std::int64_t bytes,
                                                 const SiaConfig& config) noexcept {
        if (bytes <= 0) return 0;
        const auto cycles = static_cast<std::int64_t>(
            static_cast<double>(bytes) / config.dma_bytes_per_cycle + 0.999999);
        // A nonzero transfer costs at least one cycle even when
        // dma_bytes_per_cycle exceeds the byte count so far that the
        // rounding term truncates away.
        return cycles > 0 ? cycles : 1;
    }

    /// Cycles to move `bytes` PL<->DDR; accumulates volume counters.
    std::int64_t transfer(std::int64_t bytes) noexcept {
        bytes_moved_ += bytes;
        const std::int64_t cycles = cycles_for(bytes, config_);
        cycles_ += cycles;
        return cycles;
    }

    [[nodiscard]] std::int64_t bytes_moved() const noexcept { return bytes_moved_; }
    [[nodiscard]] std::int64_t cycles() const noexcept { return cycles_; }
    void reset() noexcept {
        bytes_moved_ = 0;
        cycles_ = 0;
    }

private:
    SiaConfig config_;
    std::int64_t bytes_moved_ = 0;
    std::int64_t cycles_ = 0;
};

/// Cycle-cost model for PS-driven AXI4-lite word accesses.
class AxiLiteMmio {
public:
    explicit AxiLiteMmio(const SiaConfig& config) : config_(config) {}

    /// Cycles to move `bytes` one 32-bit word at a time.
    std::int64_t transfer(std::int64_t bytes) noexcept {
        const std::int64_t words = (bytes + 3) / 4;
        words_ += words;
        const std::int64_t cycles = words * config_.mmio_cycles_per_word;
        cycles_ += cycles;
        return cycles;
    }

    [[nodiscard]] std::int64_t words() const noexcept { return words_; }
    [[nodiscard]] std::int64_t cycles() const noexcept { return cycles_; }
    void reset() noexcept {
        words_ = 0;
        cycles_ = 0;
    }

private:
    SiaConfig config_;
    std::int64_t words_ = 0;
    std::int64_t cycles_ = 0;
};

}  // namespace sia::sim
