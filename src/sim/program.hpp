// Compiled hardware program: the per-layer execution plan produced by
// core::SiaCompiler and executed by sim::Sia. This is the software half
// of the "configuration" arrow in Fig. 2 — layer geometry, tiling over
// the 64-PE array and the 8 kB weight memory, transfer routes, and
// residual-memory allocation.
#pragma once

#include <cstdint>
#include <vector>

namespace sia::sim {

struct LayerPlan {
    int layer = 0;  ///< index into the SnnModel

    /// Output-channel tiles: ceil(OC / 64); each tile is one pass of the
    /// input spike stream through the PE array.
    std::int64_t oc_tiles = 1;
    /// Input channels whose kernels fit the weight memory at once.
    std::int64_t ic_chunk = 0;
    std::int64_t ic_passes = 1;

    /// Per-timestep transfer volumes (bytes).
    std::int64_t weight_stream_bytes = 0;   ///< kernels loaded per timestep
    std::int64_t spike_in_bytes = 0;        ///< input spikes (bit-packed)
    std::int64_t spike_out_bytes = 0;       ///< output spikes (bit-packed)
    std::int64_t residual_in_bytes = 0;     ///< skip partial sums from PS

    /// Membrane storage: 2 bytes per neuron in the ping-pong banks.
    std::int64_t membrane_bytes = 0;
    /// Spatial tiles: layers whose membranes exceed one ping-pong bank
    /// are processed in spatial slices that each fit (the input spike
    /// stream is re-read per slice, which is far cheaper than spilling
    /// 16-bit potentials to DDR every timestep).
    std::int64_t spatial_tiles = 1;
    /// Legacy DDR-spill schedule (kept for the scheduling ablation).
    bool membrane_spill = false;
    std::int64_t membrane_spill_bytes = 0;  ///< per-timestep spill traffic

    /// FC layers ride the PS-mediated AXI4-lite word path.
    bool mmio = false;
};

struct CompiledProgram {
    std::vector<LayerPlan> layers;
    /// Peak weight-memory residency across layers (bytes).
    std::int64_t peak_weight_bytes = 0;
    /// Peak membrane residency across layers (bytes, one bank).
    std::int64_t peak_membrane_bytes = 0;
    /// True when every layer fits its memories without DDR spill.
    bool fits_on_chip = true;

    /// Kernel bytes one full inference streams over the bulk DMA path
    /// (conv layers; per-inference loads, not per-timestep). This is the
    /// traffic a batched resident run pays once per wave instead of once
    /// per inference — the BRAM-residency amortization Sia::run_batch
    /// reports. MMIO-path (FC) weights re-stream per timestep and are
    /// excluded: residency does not amortize them.
    [[nodiscard]] std::int64_t dma_weight_stream_bytes() const noexcept {
        std::int64_t total = 0;
        for (const LayerPlan& p : layers) {
            if (!p.mmio) total += p.weight_stream_bytes;
        }
        return total;
    }
};

}  // namespace sia::sim
