// Multi-accelerator sharding: the partition plan produced by
// core::SiaCompiler::compile_sharded and the cluster-level cycle
// accounting reported by sim::SiaCluster.
//
// Two partition strategies over N Sia instances:
//
//   * kPipeline — the layer sequence is cut into P contiguous stages,
//     balanced by estimated cycle cost; items flow through the stages
//     wave-style, with each stage's boundary spike train DMA'd to the
//     next shard (double-buffered so transfers hide behind compute).
//   * kChannel — every layer's output channels (conv) / features (FC)
//     are split into P contiguous slices; all shards run every layer on
//     their slice, then all-gather the packed SpikeMap words before the
//     next layer.
//
// Both are bit-identical to single-Sia execution: the numerics are the
// same multiset of exact int32 additions (order-independent), routed
// through the same snn::compute kernels.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "sim/program.hpp"

namespace sia::sim {

enum class ShardPartition : std::uint8_t {
    kPipeline,  ///< contiguous layer stages, one per shard
    kChannel,   ///< per-layer output-channel slices, all-gather between layers
};

[[nodiscard]] constexpr const char* to_string(ShardPartition p) noexcept {
    return p == ShardPartition::kPipeline ? "pipeline" : "channel";
}

/// One pipeline stage: the contiguous layer range a shard owns.
struct ShardStage {
    std::size_t first = 0;  ///< first layer index (inclusive)
    std::size_t last = 0;   ///< past-the-end layer index
    /// Static cycle estimate the planner balanced on (est_density model).
    std::int64_t est_cycles = 0;
    /// Per-timestep bytes of the boundary spike train forwarded to the
    /// next stage (0 for the final stage).
    std::int64_t boundary_bytes = 0;
};

/// One channel-parallel slice: the output-channel/feature range
/// [c0, c1) a shard owns for one layer, plus the sliced LayerPlan the
/// shard executes (sliced tiling, transfer volumes, and membrane
/// residency; geometry-input fields stay full-model).
struct ShardSlice {
    std::int64_t c0 = 0;
    std::int64_t c1 = 0;
    LayerPlan plan;
};

/// The complete partitioning of one compiled model across N shards.
struct ShardPlan {
    ShardPartition partition = ShardPartition::kPipeline;
    /// Shards requested; the planner may drive fewer (effective_shards).
    std::int64_t shards = 1;
    /// The full-model program (every shard's Sia instance references
    /// it; sliced plans in `slices` override per-layer execution).
    CompiledProgram program;
    /// kPipeline: one entry per stage, in layer order.
    std::vector<ShardStage> stages;
    /// kChannel: slices[shard][layer].
    std::vector<std::vector<ShardSlice>> slices;

    /// Shards the plan actually uses: a pipeline cannot have more
    /// stages than (legal-cut-bounded) layers; a channel partition
    /// keeps zero-width slices for surplus shards.
    [[nodiscard]] std::int64_t effective_shards() const noexcept {
        return partition == ShardPartition::kPipeline
                   ? static_cast<std::int64_t>(stages.size())
                   : static_cast<std::int64_t>(slices.size());
    }
};

/// Cluster-level accounting of one SiaCluster::run_batch call. Per-item
/// SiaRunResults keep as-if-sequential stats (that is what makes them
/// bit-identical to run()); the cluster timeline — overlap, transfer
/// exposure, pipeline ramp — lives here.
struct ShardStats {
    ShardPartition partition = ShardPartition::kPipeline;
    std::int64_t shards = 1;  ///< effective shards driven
    std::size_t batch = 0;
    bool double_buffered = true;

    /// Busy cycles summed over every shard (work executed, not wall).
    std::int64_t compute_cycles = 0;
    /// Inter-shard wire traffic (boundary forwards / all-gathers).
    std::int64_t transfer_bytes = 0;
    /// Total boundary DMA cycles (AxiDma model), hidden or not.
    std::int64_t transfer_cycles = 0;
    /// Portion of the makespan spent waiting on transfers (the part
    /// double-buffering failed to hide).
    std::int64_t transfer_stall_cycles = 0;
    /// Pipeline ramp: cycles before the last stage starts its first
    /// item, and after the first stage finishes its last one.
    std::int64_t fill_cycles = 0;
    std::int64_t drain_cycles = 0;
    /// Modeled end-to-end cluster cycles for the whole batch.
    std::int64_t makespan_cycles = 0;
    /// Single-Sia-equivalent serial cycles of the same batch (the sum
    /// of per-item totals). Exact for kPipeline, where per-item stats
    /// are bit-identical to run(); 0 for kChannel, where per-shard
    /// stats overlap and the baseline must be measured separately.
    std::int64_t item_cycles = 0;

    /// Items an armed ExitCriterion retired before their full train —
    /// retirement drops the item out of every subsequent chunk round on
    /// every shard of the cluster.
    std::int64_t retired_early = 0;
    /// Timesteps actually integrated vs offered across the batch.
    std::int64_t steps_executed = 0;
    std::int64_t steps_offered = 0;

    /// Serial-to-cluster cycle ratio (0 when no exact baseline).
    [[nodiscard]] double speedup() const noexcept {
        return makespan_cycles > 0 && item_cycles > 0
                   ? static_cast<double>(item_cycles) /
                         static_cast<double>(makespan_cycles)
                   : 0.0;
    }

    [[nodiscard]] double items_per_second(const SiaConfig& config) const noexcept {
        if (makespan_cycles <= 0) return 0.0;
        const double seconds =
            static_cast<double>(makespan_cycles) / (config.clock_mhz * 1e6);
        return static_cast<double>(batch) / seconds;
    }
};

}  // namespace sia::sim
