#include "sim/pe.hpp"

#include <algorithm>

namespace sia::sim {

std::int64_t Pe::accumulate_segment(std::span<const std::uint8_t> spikes,
                                    std::span<const std::int8_t> weights) noexcept {
    const std::size_t n = std::min(spikes.size(), weights.size());
    bool any = false;
    for (std::size_t i = 0; i < n; ++i) {
        if (spikes[i] != 0) {
            any = true;
            break;
        }
    }
    if (!any) return 0;  // event-driven skip: no clock spent on silent rows

    // Fixed schedule: the three mux outputs pass through the single 8-bit
    // adder one per cycle; a muxed-out (no-spike) tap contributes zero.
    for (std::size_t i = 0; i < n; ++i) {
        if (spikes[i] != 0) {
            partial_ += weights[i];
            ++additions_;
        }
    }
    busy_cycles_ += 3;
    return 3;
}

void PeArray::scatter_tap(std::span<const std::int8_t> weights_per_lane,
                          std::span<std::int32_t> partials) const noexcept {
    const std::size_t n = std::min(weights_per_lane.size(), partials.size());
    for (std::size_t i = 0; i < n; ++i) partials[i] += weights_per_lane[i];
}

}  // namespace sia::sim
