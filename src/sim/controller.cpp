#include "sim/controller.hpp"

#include <algorithm>

namespace sia::sim {

const char* to_string(CtrlState s) noexcept {
    switch (s) {
        case CtrlState::kIdle: return "Idle";
        case CtrlState::kInit: return "Init";
        case CtrlState::kLoadConfig: return "LoadConfig";
        case CtrlState::kReadInput: return "ReadInput";
        case CtrlState::kPeCompute: return "PeCompute";
        case CtrlState::kAggregate: return "Aggregate";
        case CtrlState::kWriteOutput: return "WriteOutput";
        case CtrlState::kDone: return "Done";
    }
    return "?";
}

bool Controller::legal(CtrlState from, CtrlState to) noexcept {
    switch (from) {
        case CtrlState::kIdle:
            return to == CtrlState::kInit;
        case CtrlState::kInit:
            return to == CtrlState::kLoadConfig;
        case CtrlState::kLoadConfig:
            return to == CtrlState::kReadInput;
        case CtrlState::kReadInput:
            return to == CtrlState::kPeCompute;
        case CtrlState::kPeCompute:
            // Multi-tile layers iterate compute; otherwise aggregate.
            return to == CtrlState::kPeCompute || to == CtrlState::kAggregate;
        case CtrlState::kAggregate:
            return to == CtrlState::kWriteOutput;
        case CtrlState::kWriteOutput:
            // Next layer (load config), next timestep (read input), or done.
            return to == CtrlState::kLoadConfig || to == CtrlState::kReadInput ||
                   to == CtrlState::kDone;
        case CtrlState::kDone:
            // Idle, or re-init for the next wave of a batched resident run.
            return to == CtrlState::kIdle || to == CtrlState::kInit;
    }
    return false;
}

void Controller::transition(CtrlState next) {
    if (!legal(state_, next)) {
        throw std::logic_error(std::string("Controller: illegal transition ") +
                               to_string(state_) + " -> " + to_string(next));
    }
    state_ = next;
    history_.push_back(next);
}

std::int64_t Controller::entries(CtrlState s) const noexcept {
    return std::count(history_.begin(), history_.end(), s);
}

}  // namespace sia::sim
