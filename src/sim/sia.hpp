// Top-level cycle-accurate SIA simulator (Fig. 2 / Fig. 4 / Fig. 5).
//
// Executes a compiled SnnModel layer-major, exactly as the paper's
// implementation flow describes: a layer's spikes and kernels are
// streamed into the block RAMs, the PE array performs event-driven
// spiking convolution for every timestep (membrane potentials ping-pong
// between the U1/U2 banks), results pass through the aggregation core,
// and output spikes are written back — then the next layer runs.
//
// Numerics go through snn::compute (shared with the functional engine),
// so the simulated spikes/logits are bit-identical to the reference by
// construction; what this class adds is the cycle, transfer and
// occupancy accounting of the hardware.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/axi.hpp"
#include "sim/config.hpp"
#include "sim/controller.hpp"
#include "sim/memory.hpp"
#include "sim/program.hpp"
#include "snn/exit.hpp"
#include "snn/model.hpp"
#include "snn/session.hpp"
#include "snn/spike.hpp"

namespace sia::sim {

/// Cycle breakdown for one layer, totalled over a whole inference.
struct LayerCycleStats {
    std::string label;
    std::int64_t compute = 0;    ///< PE-array event-driven accumulation
    std::int64_t aggregate = 0;  ///< BN + activation pipeline retirement
    std::int64_t dma = 0;        ///< bulk spike/weight/residual streaming
    std::int64_t mmio = 0;       ///< PS-mediated AXI4-lite word transfers
    std::int64_t overhead = 0;   ///< per-layer PS invocation overhead

    std::int64_t input_spike_events = 0;  ///< spikes processed (x tiles x passes)
    std::int64_t output_spikes = 0;
    std::int64_t event_additions = 0;     ///< actual weight accumulations
    std::uint64_t dense_ops = 0;          ///< dense CNN-equivalent ops (2/MAC)

    [[nodiscard]] std::int64_t total() const noexcept {
        return compute + aggregate + dma + mmio + overhead;
    }

    /// Accumulate another pass over the same layer (the chunked
    /// early-exit schedule totals per-chunk stats into one run).
    LayerCycleStats& operator+=(const LayerCycleStats& o) noexcept {
        if (label.empty()) label = o.label;
        compute += o.compute;
        aggregate += o.aggregate;
        dma += o.dma;
        mmio += o.mmio;
        overhead += o.overhead;
        input_spike_events += o.input_spike_events;
        output_spikes += o.output_spikes;
        event_additions += o.event_additions;
        dense_ops += o.dense_ops;
        return *this;
    }
};

struct SiaRunResult {
    std::vector<std::vector<std::int64_t>> logits_per_step;  ///< [T][classes]
    /// Final accumulated readout after the last integrated timestep.
    std::vector<std::int64_t> readout;
    std::vector<std::int64_t> spike_counts;                  ///< per layer
    std::vector<std::int64_t> neuron_counts;
    std::vector<LayerCycleStats> layer_stats;
    /// Timesteps actually integrated (== steps_offered unless an
    /// ExitCriterion retired the item first).
    std::int64_t timesteps = 0;
    /// Timesteps the input train offered.
    std::int64_t steps_offered = 0;
    /// Why the run stopped (kNone = ran the full offered train).
    snn::ExitReason exit_reason = snn::ExitReason::kNone;

    [[nodiscard]] std::int64_t total_cycles() const noexcept;
    [[nodiscard]] std::int64_t predicted_class(std::int64_t t) const;
    /// Prediction from the final accumulated readout.
    [[nodiscard]] std::int64_t predicted() const;
    /// Accumulate a later chunk of the same item's run (the segmented
    /// early-exit schedule): appends logit rows, adds per-layer stats
    /// and spike counts, advances timesteps.
    void append_chunk(SiaRunResult&& chunk);
    [[nodiscard]] double total_ms(const SiaConfig& config) const noexcept {
        return config.cycles_to_ms(total_cycles());
    }
    /// Dense CNN-equivalent throughput over PL busy time — the GOPS
    /// convention of the paper's Table IV.
    [[nodiscard]] double effective_gops(const SiaConfig& config) const noexcept;
    /// Fraction of PE-array add slots actually used while computing.
    [[nodiscard]] double pe_utilization(const SiaConfig& config) const noexcept;
};

/// Aggregate accounting of one Sia::run_batch call: what the resident
/// schedule shares across each wave versus what N independent sequential
/// runs would pay. Per-item SiaRunResults keep as-if-sequential stats
/// (that is what makes them bit-identical to run()); the amortization
/// lives here.
struct SiaBatchStats {
    std::size_t batch = 0;
    std::int64_t waves = 0;
    std::int64_t banks = 0;  ///< membrane contexts available per wave

    /// Per-context phase-bank slice of the wave partitioning (bytes).
    std::int64_t membrane_slice_bytes = 0;
    /// True when every layer's potentials fit the per-context slice, i.e.
    /// the wave's inferences are genuinely membrane-resident. When false,
    /// overflow potentials are host-mirrored (numerically identical and —
    /// like all membrane traffic — uncharged beyond the plan-based
    /// accounting), so the reported cycle amortization assumes membrane
    /// capacity the partitioned banks do not actually have.
    bool membrane_resident = true;

    /// Conv-kernel DMA traffic of the resident schedule (streamed once
    /// per wave) vs. N independent runs (streamed once per inference).
    std::int64_t weight_bytes_streamed = 0;
    std::int64_t weight_bytes_sequential = 0;

    /// Modeled accelerator cycles: resident = sequential minus the
    /// per-wave-shared weight streaming and PS layer-invocation overhead.
    std::int64_t resident_cycles = 0;
    std::int64_t sequential_cycles = 0;

    /// Sequential-to-resident cycle ratio (>= 1 when batching helps).
    [[nodiscard]] double amortization() const noexcept {
        return resident_cycles > 0
                   ? static_cast<double>(sequential_cycles) /
                         static_cast<double>(resident_cycles)
                   : 1.0;
    }

    // ---- Ragged-retirement accounting (early-exit batches only) ------
    /// Items whose ExitCriterion fired before their offered timesteps.
    std::int64_t retired_early = 0;
    /// Pending items promoted into a freed wave slot mid-batch (fills
    /// after each cohort's initial admission).
    std::int64_t backfills = 0;
    /// Layer-major segment passes executed. The legacy full-T schedule
    /// runs one pass per wave (chunk_passes == waves); the ragged
    /// schedule re-streams weights once per pass, which is the honest
    /// hardware cost of PS-side criterion checks (amortized by
    /// ExitCriterion::check_interval).
    std::int64_t chunk_passes = 0;
    /// Timesteps actually integrated vs offered, summed over the batch.
    std::int64_t steps_executed = 0;
    std::int64_t steps_offered = 0;
    /// Per-item timesteps integrated, in batch order (retired-at-step
    /// accounting; equals the offered length for items that never exit).
    std::vector<std::int64_t> retired_at;
};

class Sia {
public:
    /// `model` and `program` must outlive the Sia instance.
    Sia(const SiaConfig& config, const snn::SnnModel& model,
        const CompiledProgram& program);

    /// Run one inference over the input spike train.
    [[nodiscard]] SiaRunResult run(const snn::SpikeTrain& input);
    /// Early-exit form: the criterion is evaluated at its eligible
    /// steps and the run stops integrating once it fires. Because Sia
    /// executes layer-major (the readout only materializes at the last
    /// layer), an armed criterion runs the timestep range as segments
    /// bounded by the evaluation points, resuming membranes between
    /// segments exactly like a chunked streaming session — logits,
    /// spikes and the exit step are bit-identical to the functional
    /// engine's per-step evaluation; cycle stats reflect the segmented
    /// schedule (per-segment weight re-streaming is the hardware cost
    /// of a PS-side readout check).
    [[nodiscard]] SiaRunResult run(const snn::SpikeTrain& input,
                                   const snn::ExitCriterion& exit);

    /// Stateful-session form: resume the membrane-bank contents and the
    /// carried readout from `session` (a fresh start when it is
    /// uninitialized), run the window, and save the state back. The
    /// representation is shared with snn::FunctionalEngine, so chunked
    /// windows are bit-identical to one monolithic run on either
    /// engine. Cycle stats are per-window. Throws std::invalid_argument
    /// when an initialized session's geometry does not match the model.
    [[nodiscard]] SiaRunResult run(const snn::SpikeTrain& input,
                                   snn::SessionState& session);
    /// Session window with early exit: the criterion evaluates the
    /// window's readout delta, and the saved state reflects the exit
    /// point exactly (the carried SessionState is never corrupted).
    [[nodiscard]] SiaRunResult run(const snn::SpikeTrain& input,
                                   snn::SessionState& session,
                                   const snn::ExitCriterion& exit);

    /// Batched resident execution: weights and the compiled program stay
    /// resident while up to config().membrane_banks inferences share the
    /// accelerator per wave, each owning one membrane context; layers are
    /// time-multiplexed across the wave members. Larger batches run in
    /// ceil(N / membrane_banks) waves.
    ///
    /// Per-item results — spikes, logits, and cycle stats — are
    /// bit-identical to N independent sequential run() calls; what the
    /// resident schedule saves (per-wave weight streaming, per-wave PS
    /// layer invocation) is reported via last_batch_stats() instead of
    /// being folded into the per-item accounting.
    [[nodiscard]] std::vector<SiaRunResult> run_batch(
        const std::vector<snn::SpikeTrain>& inputs);
    /// Pointer form for schedulers slicing a larger batch without copies.
    [[nodiscard]] std::vector<SiaRunResult> run_batch(
        const std::vector<const snn::SpikeTrain*>& inputs);
    /// Session-aware form: sessions[i] (null = stateless) is resumed
    /// into inference i's membrane context at the start of each layer
    /// pass and saved back when the layer's timestep loop retires — the
    /// streaming counterpart of the resident schedule. A batch must not
    /// contain two windows of the same session (their membrane contexts
    /// would race layer-major); serialize windows across run_batch
    /// calls instead, as core::Server's session affinity does.
    [[nodiscard]] std::vector<SiaRunResult> run_batch(
        const std::vector<const snn::SpikeTrain*>& inputs,
        const std::vector<snn::SessionState*>& sessions);
    /// Ragged early-exit form: exits[i] (null or disabled = run item
    /// i's full train) retires item i from its wave the moment its
    /// criterion fires — the membrane-bank context is released and the
    /// freed slot back-fills from the pending queue at the next segment
    /// boundary, so the accelerator never idles a bank on a decided
    /// item. Per-item logits/spikes/steps are bit-identical to
    /// run(input, exit) run alone, for every batch composition (each
    /// item's segment boundaries depend only on its own criterion);
    /// SiaBatchStats reports retired-at-step / back-fill accounting.
    /// When every criterion is null or disabled this is exactly the
    /// legacy full-T wave schedule.
    [[nodiscard]] std::vector<SiaRunResult> run_batch(
        const std::vector<const snn::SpikeTrain*>& inputs,
        const std::vector<snn::SessionState*>& sessions,
        const std::vector<const snn::ExitCriterion*>& exits);

    /// Accounting of the most recent run_batch call.
    [[nodiscard]] const SiaBatchStats& last_batch_stats() const noexcept {
        return batch_stats_;
    }

    // ---- Sharded execution (driven by sim::SiaCluster) ----------------

    /// Open one sharded inference pass: restore single-inference membrane
    /// partitioning and bring the controller FSM to kInit.
    void begin_inference();
    /// Close the controller FSM of a sharded inference pass.
    void end_inference();

    /// Pipeline-stage form of run(): execute the contiguous layers
    /// [first, last) against the per-item `outs`/`res` shared by every
    /// stage of the pipeline — stage s-1 leaves its boundary output in
    /// `outs[first - 1]`, which is this stage's input. Per-layer results
    /// and stats land at their full-model indices, so after the last
    /// stage `res` is bit-identical to a single-Sia run() (including
    /// cycle stats; inter-shard transfer cost is the cluster's to
    /// account). Wraps the pass in begin_inference()/end_inference().
    void run_stage(std::size_t first, std::size_t last, const snn::SpikeTrain& input,
                   std::vector<snn::SpikeTrain>& outs, SiaRunResult& res,
                   snn::SessionState* session);

    /// Channel-parallel form of one layer pass: run layer `index`
    /// restricted to output channels (conv) or features (linear)
    /// [c0, c1), using `plan` — the shard's sliced layer plan — for
    /// tiling and transfer accounting. `out_train` is assigned the full
    /// layer geometry with only the slice's bits set, so the cluster's
    /// all-gather is a word-wise OR across shards; membrane state for
    /// the slice lives in this instance's banks (slice-relative
    /// addressing), and a shared session is read/written only at the
    /// slice's disjoint [c0 * plane, c1 * plane) range. A zero-width
    /// slice assigns an empty-output train and does nothing else.
    /// Callers bracket the per-item layer sequence with
    /// begin_inference()/end_inference().
    void run_layer_slice(std::size_t index, const LayerPlan& plan,
                         const snn::SpikeTrain& in_train,
                         const snn::SpikeTrain* skip_train, snn::SpikeTrain& out_train,
                         LayerCycleStats& stats,
                         std::vector<std::vector<std::int64_t>>& readout,
                         snn::SessionState* session, std::int64_t c0, std::int64_t c1);

    /// Size/validate a session against the model before its first layer
    /// pass touches it (shared with SiaCluster's admission path).
    void prepare_session(snn::SessionState& session) const;

    [[nodiscard]] const Controller& controller() const noexcept { return controller_; }
    [[nodiscard]] const MemoryUnit& memory() const noexcept { return memory_; }
    [[nodiscard]] const SiaConfig& config() const noexcept { return config_; }

private:
    void run_layer(std::size_t index, const snn::SpikeTrain& input,
                   std::vector<snn::SpikeTrain>& outs, SiaRunResult& res,
                   snn::SessionState* session);
    void run_wave(const snn::SpikeTrain* const* inputs,
                  snn::SessionState* const* sessions, SiaRunResult* results,
                  std::size_t count);
    /// The legacy full-T wave loop (no criterion armed). Accumulates the
    /// cycles the resident schedule saved over sequential into
    /// `saved_cycles`.
    void run_batch_full(const std::vector<const snn::SpikeTrain*>& inputs,
                        const std::vector<snn::SessionState*>& sessions,
                        std::vector<SiaRunResult>& results,
                        std::int64_t& saved_cycles);
    /// The ragged segmented schedule (at least one criterion armed).
    void run_batch_ragged(const std::vector<const snn::SpikeTrain*>& inputs,
                          const std::vector<snn::SessionState*>& sessions,
                          const std::vector<const snn::ExitCriterion*>& exits,
                          std::vector<SiaRunResult>& results,
                          std::int64_t& saved_cycles);

    /// Layer bodies, parameterized over the executing plan (the full
    /// program's or a shard's sliced one) and the output-channel /
    /// feature slice [c0, c1) this instance owns. Full-layer callers
    /// pass program_.layers[index] and the whole range.
    void run_conv_layer(std::size_t index, const LayerPlan& plan,
                        const snn::SpikeTrain& in_train,
                        const snn::SpikeTrain* skip_train, snn::SpikeTrain& out_train,
                        LayerCycleStats& stats,
                        std::vector<std::vector<std::int64_t>>& readout,
                        snn::SessionState* session, std::int64_t c0, std::int64_t c1);
    void run_linear_layer(std::size_t index, const LayerPlan& plan,
                          const snn::SpikeTrain& in_train, snn::SpikeTrain& out_train,
                          LayerCycleStats& stats,
                          std::vector<std::vector<std::int64_t>>& readout,
                          snn::SessionState* session, std::int64_t c0, std::int64_t c1);

    /// Per-layer transposed weight layouts, built lazily on first use and
    /// then shared by every inference this instance runs — the host-side
    /// analogue of the weights staying resident in BRAM.
    [[nodiscard]] const std::vector<std::int8_t>& main_wt(std::size_t index);
    [[nodiscard]] const std::vector<std::int8_t>& skip_wt(std::size_t index);

    SiaConfig config_;
    const snn::SnnModel& model_;
    const CompiledProgram& program_;
    std::vector<std::vector<std::int8_t>> main_wt_cache_;
    std::vector<std::vector<std::int8_t>> skip_wt_cache_;
    Controller controller_;
    MemoryUnit memory_;
    AxiDma dma_;
    AxiLiteMmio mmio_;
    SiaBatchStats batch_stats_;
};

}  // namespace sia::sim
