// Top-level cycle-accurate SIA simulator (Fig. 2 / Fig. 4 / Fig. 5).
//
// Executes a compiled SnnModel layer-major, exactly as the paper's
// implementation flow describes: a layer's spikes and kernels are
// streamed into the block RAMs, the PE array performs event-driven
// spiking convolution for every timestep (membrane potentials ping-pong
// between the U1/U2 banks), results pass through the aggregation core,
// and output spikes are written back — then the next layer runs.
//
// Numerics go through snn::compute (shared with the functional engine),
// so the simulated spikes/logits are bit-identical to the reference by
// construction; what this class adds is the cycle, transfer and
// occupancy accounting of the hardware.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/axi.hpp"
#include "sim/config.hpp"
#include "sim/controller.hpp"
#include "sim/memory.hpp"
#include "sim/program.hpp"
#include "snn/model.hpp"
#include "snn/spike.hpp"

namespace sia::sim {

/// Cycle breakdown for one layer, totalled over a whole inference.
struct LayerCycleStats {
    std::string label;
    std::int64_t compute = 0;    ///< PE-array event-driven accumulation
    std::int64_t aggregate = 0;  ///< BN + activation pipeline retirement
    std::int64_t dma = 0;        ///< bulk spike/weight/residual streaming
    std::int64_t mmio = 0;       ///< PS-mediated AXI4-lite word transfers
    std::int64_t overhead = 0;   ///< per-layer PS invocation overhead

    std::int64_t input_spike_events = 0;  ///< spikes processed (x tiles x passes)
    std::int64_t output_spikes = 0;
    std::int64_t event_additions = 0;     ///< actual weight accumulations
    std::uint64_t dense_ops = 0;          ///< dense CNN-equivalent ops (2/MAC)

    [[nodiscard]] std::int64_t total() const noexcept {
        return compute + aggregate + dma + mmio + overhead;
    }
};

struct SiaRunResult {
    std::vector<std::vector<std::int64_t>> logits_per_step;  ///< [T][classes]
    std::vector<std::int64_t> spike_counts;                  ///< per layer
    std::vector<std::int64_t> neuron_counts;
    std::vector<LayerCycleStats> layer_stats;
    std::int64_t timesteps = 0;

    [[nodiscard]] std::int64_t total_cycles() const noexcept;
    [[nodiscard]] std::int64_t predicted_class(std::int64_t t) const;
    [[nodiscard]] double total_ms(const SiaConfig& config) const noexcept {
        return config.cycles_to_ms(total_cycles());
    }
    /// Dense CNN-equivalent throughput over PL busy time — the GOPS
    /// convention of the paper's Table IV.
    [[nodiscard]] double effective_gops(const SiaConfig& config) const noexcept;
    /// Fraction of PE-array add slots actually used while computing.
    [[nodiscard]] double pe_utilization(const SiaConfig& config) const noexcept;
};

class Sia {
public:
    /// `model` and `program` must outlive the Sia instance.
    Sia(const SiaConfig& config, const snn::SnnModel& model,
        const CompiledProgram& program);

    /// Run one inference over the input spike train.
    [[nodiscard]] SiaRunResult run(const snn::SpikeTrain& input);

    [[nodiscard]] const Controller& controller() const noexcept { return controller_; }
    [[nodiscard]] const MemoryUnit& memory() const noexcept { return memory_; }
    [[nodiscard]] const SiaConfig& config() const noexcept { return config_; }

private:
    struct LayerContext;

    void run_conv_layer(std::size_t index, const snn::SpikeTrain& in_train,
                        const snn::SpikeTrain* skip_train, snn::SpikeTrain& out_train,
                        LayerCycleStats& stats,
                        std::vector<std::vector<std::int64_t>>& readout);
    void run_linear_layer(std::size_t index, const snn::SpikeTrain& in_train,
                          snn::SpikeTrain& out_train, LayerCycleStats& stats,
                          std::vector<std::vector<std::int64_t>>& readout);

    SiaConfig config_;
    const snn::SnnModel& model_;
    const CompiledProgram& program_;
    Controller controller_;
    MemoryUnit memory_;
    AxiDma dma_;
    AxiLiteMmio mmio_;
};

}  // namespace sia::sim
