// Memory unit model (§III-D): BRAM banks with byte-accurate capacity
// accounting and the ping-pong membrane-potential organisation of Fig. 3.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace sia::sim {

/// A single BRAM bank: capacity-checked byte store with access counters.
/// One read or write port access per cycle (the cycle cost is accounted
/// by the caller; the bank tracks volume for bandwidth/energy reports).
class BramBank {
public:
    BramBank(std::string name, std::int64_t capacity_bytes)
        : name_(std::move(name)), data_(static_cast<std::size_t>(capacity_bytes), 0) {}

    [[nodiscard]] std::int64_t capacity() const noexcept {
        return static_cast<std::int64_t>(data_.size());
    }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    void write8(std::int64_t addr, std::uint8_t v);
    [[nodiscard]] std::uint8_t read8(std::int64_t addr);
    void write16(std::int64_t addr, std::int16_t v);
    [[nodiscard]] std::int16_t read16(std::int64_t addr);

    [[nodiscard]] std::int64_t bytes_read() const noexcept { return bytes_read_; }
    [[nodiscard]] std::int64_t bytes_written() const noexcept { return bytes_written_; }
    void reset_counters() noexcept {
        bytes_read_ = 0;
        bytes_written_ = 0;
    }

private:
    void check(std::int64_t addr, std::int64_t len) const;

    std::string name_;
    std::vector<std::uint8_t> data_;
    std::int64_t bytes_read_ = 0;
    std::int64_t bytes_written_ = 0;
};

/// Ping-pong membrane store (Fig. 3): two half-size banks; at any
/// timestep one is read (previous potentials) and the other written
/// (updated potentials); roles swap every timestep. Reading from the
/// write bank or vice versa throws — the hazard the organisation exists
/// to prevent.
class PingPongMembrane {
public:
    explicit PingPongMembrane(std::int64_t total_bytes)
        : banks_{BramBank("U1-State", total_bytes / 2),
                 BramBank("U2-State", total_bytes / 2)} {}

    /// Capacity of one bank (must hold one layer tile's potentials).
    [[nodiscard]] std::int64_t bank_capacity() const noexcept {
        return banks_[0].capacity();
    }

    /// Swap read/write roles (called at every timestep boundary).
    void toggle() noexcept { write_is_u1_ = !write_is_u1_; }

    [[nodiscard]] bool write_bank_is_u1() const noexcept { return write_is_u1_; }

    void write16(std::int64_t addr, std::int16_t v) { write_bank().write16(addr, v); }
    [[nodiscard]] std::int16_t read16(std::int64_t addr) { return read_bank().read16(addr); }

    [[nodiscard]] BramBank& write_bank() noexcept { return banks_[write_is_u1_ ? 0 : 1]; }
    [[nodiscard]] BramBank& read_bank() noexcept { return banks_[write_is_u1_ ? 1 : 0]; }
    [[nodiscard]] const BramBank& write_bank() const noexcept {
        return banks_[write_is_u1_ ? 0 : 1];
    }
    [[nodiscard]] const BramBank& read_bank() const noexcept {
        return banks_[write_is_u1_ ? 1 : 0];
    }

private:
    BramBank banks_[2];
    bool write_is_u1_ = true;
};

/// The full §III-D memory unit.
struct MemoryUnit {
    explicit MemoryUnit(const struct SiaConfig& config);

    BramBank incoming_spikes;
    BramBank residual;
    BramBank weights;
    BramBank output_spikes;
    PingPongMembrane membrane;
};

}  // namespace sia::sim
