// Memory unit model (§III-D): BRAM banks with byte-accurate capacity
// accounting and the ping-pong membrane-potential organisation of Fig. 3.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace sia::sim {

/// A single BRAM bank: capacity-checked byte store with access counters.
/// One read or write port access per cycle (the cycle cost is accounted
/// by the caller; the bank tracks volume for bandwidth/energy reports).
class BramBank {
public:
    BramBank(std::string name, std::int64_t capacity_bytes)
        : name_(std::move(name)), data_(static_cast<std::size_t>(capacity_bytes), 0) {}

    [[nodiscard]] std::int64_t capacity() const noexcept {
        return static_cast<std::int64_t>(data_.size());
    }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    void write8(std::int64_t addr, std::uint8_t v);
    [[nodiscard]] std::uint8_t read8(std::int64_t addr);
    void write16(std::int64_t addr, std::int16_t v);
    [[nodiscard]] std::int16_t read16(std::int64_t addr);

    [[nodiscard]] std::int64_t bytes_read() const noexcept { return bytes_read_; }
    [[nodiscard]] std::int64_t bytes_written() const noexcept { return bytes_written_; }
    void reset_counters() noexcept {
        bytes_read_ = 0;
        bytes_written_ = 0;
    }

private:
    void check(std::int64_t addr, std::int64_t len) const;

    std::string name_;
    std::vector<std::uint8_t> data_;
    std::int64_t bytes_read_ = 0;
    std::int64_t bytes_written_ = 0;
};

/// Ping-pong membrane store (Fig. 3): two half-size banks; at any
/// timestep one is read (previous potentials) and the other written
/// (updated potentials); roles swap every timestep.
///
/// For batched (resident) execution the U1/U2 pair can additionally be
/// partitioned into equal per-inference *contexts*: each in-flight
/// inference owns one slice of both phase banks and its own ping-pong
/// phase, so interleaving inferences never aliases membrane state.
/// Single-inference callers use the default single-context partitioning
/// and see the original two-half-bank behaviour unchanged.
class PingPongMembrane {
public:
    explicit PingPongMembrane(std::int64_t total_bytes)
        : banks_{BramBank("U1-State", total_bytes / 2),
                 BramBank("U2-State", total_bytes / 2)} {
        partition(1);
    }

    /// Re-partition both phase banks into `contexts` equal per-inference
    /// slices. Resets every context's phase and selects context 0;
    /// contents are stale until rewritten (each layer run rewrites its
    /// initial potentials anyway). Throws if a slice cannot hold even
    /// one 16-bit potential.
    void partition(std::int64_t contexts);

    /// Select the context subsequent read/write/toggle calls address.
    void set_active(std::int64_t context);

    [[nodiscard]] std::int64_t contexts() const noexcept {
        return static_cast<std::int64_t>(phase_.size());
    }
    [[nodiscard]] std::int64_t active() const noexcept { return active_; }

    /// Capacity of one phase slice of the active partitioning (must hold
    /// one layer tile's potentials for the inference owning the slice).
    [[nodiscard]] std::int64_t bank_capacity() const noexcept { return slice_; }

    /// Swap the active context's read/write roles (every timestep).
    void toggle() noexcept { phase_[static_cast<std::size_t>(active_)] ^= 1U; }

    [[nodiscard]] bool write_bank_is_u1() const noexcept {
        return phase_[static_cast<std::size_t>(active_)] == 0;
    }

    void write16(std::int64_t addr, std::int16_t v) {
        check_slice(addr, 2);
        write_bank().write16(base() + addr, v);
    }
    [[nodiscard]] std::int16_t read16(std::int64_t addr) {
        check_slice(addr, 2);
        return read_bank().read16(base() + addr);
    }

    [[nodiscard]] BramBank& write_bank() noexcept { return banks_[write_bank_is_u1() ? 0 : 1]; }
    [[nodiscard]] BramBank& read_bank() noexcept { return banks_[write_bank_is_u1() ? 1 : 0]; }
    [[nodiscard]] const BramBank& write_bank() const noexcept {
        return banks_[write_bank_is_u1() ? 0 : 1];
    }
    [[nodiscard]] const BramBank& read_bank() const noexcept {
        return banks_[write_bank_is_u1() ? 1 : 0];
    }

private:
    void check_slice(std::int64_t addr, std::int64_t len) const;
    [[nodiscard]] std::int64_t base() const noexcept { return active_ * slice_; }

    BramBank banks_[2];
    std::vector<std::uint8_t> phase_;  ///< per context: 0 = write U1, 1 = write U2
    std::int64_t slice_ = 0;           ///< bytes per context per phase bank
    std::int64_t active_ = 0;
};

/// RAII re-partitioning of a PingPongMembrane: partitions into
/// `contexts` slices on construction and restores single-context
/// partitioning on destruction, so a mid-wave exception (batched or
/// sharded execution) can never leave a stale multi-context
/// partitioning behind for the next single-inference run().
class PartitionGuard {
public:
    PartitionGuard(PingPongMembrane& membrane, std::int64_t contexts)
        : membrane_(membrane) {
        membrane_.partition(contexts);
    }
    ~PartitionGuard() { membrane_.partition(1); }

    PartitionGuard(const PartitionGuard&) = delete;
    PartitionGuard& operator=(const PartitionGuard&) = delete;

private:
    PingPongMembrane& membrane_;
};

/// The full §III-D memory unit.
struct MemoryUnit {
    explicit MemoryUnit(const struct SiaConfig& config);

    BramBank incoming_spikes;
    BramBank residual;
    BramBank weights;
    BramBank output_spikes;
    PingPongMembrane membrane;
};

}  // namespace sia::sim
