// Hardware configuration of the Spiking Inference Accelerator (SIA).
//
// Defaults reproduce the paper's PYNQ-Z2 prototype (§III-IV): an 8x8
// array of 64 PEs at 100 MHz, the §III-D memory provisioning, AXI4-lite
// PS<->PL transport, and the per-layer processor-invocation overhead
// observed in Table I (see EXPERIMENTS.md "latency model calibration").
#pragma once

#include <cstdint>

namespace sia::sim {

struct SiaConfig {
    // Spiking core.
    std::int64_t pe_rows = 8;
    std::int64_t pe_cols = 8;
    double clock_mhz = 100.0;

    /// Ops per PE per cycle for throughput accounting: 3 multiplexer
    /// selects + 3 additions through the row accumulator — the
    /// convention behind the paper's 38.4 GOPS / 0.6 GOPS-per-PE.
    int ops_per_pe_cycle = 6;

    // Memory unit (§III-D), in bytes.
    std::int64_t incoming_spike_bytes = 128;        ///< input spike staging buffer
    std::int64_t residual_bytes = 128 * 1024;       ///< residual-layer partial sums
    std::int64_t membrane_bytes = 64 * 1024;        ///< ping-pong U1+U2 total
    std::int64_t weight_bytes = 8 * 1024;           ///< up to 64 kernels
    std::int64_t output_bytes = 56 * 1024;          ///< output spikes

    // PS <-> PL transport.
    /// DMA-style streaming throughput for bulk conv-layer transfers
    /// (spikes, kernels): bytes moved per PL clock cycle.
    double dma_bytes_per_cycle = 4.0;
    /// PS-mediated AXI4-lite single-word (4 B) transaction cost in PL
    /// cycles. Dominates the FC rows of Table I; calibrated so the
    /// FC 512x10 layer at T=8 lands at the paper's 58.9 ms.
    std::int64_t mmio_cycles_per_word = 564;
    /// Fixed per-layer processor invocation overhead (driver call,
    /// configuration writes) in PL cycles. Table I's conv rows are
    /// dominated by this ~0.88 ms term.
    std::int64_t ps_layer_overhead_cycles = 88000;

    // Aggregation core: 16 parallel batch-norm multiplier lanes (one
    // DSP48 each — the source of Table III's 16-of-17 DSPs) retire 16
    // neurons per cycle after the pipeline fills.
    std::int64_t aggregation_lanes = 16;
    std::int64_t aggregation_pipeline_depth = 4;

    /// Batched (resident) execution: number of per-inference membrane
    /// contexts the U1/U2 ping-pong memory is partitioned into when one
    /// Sia instance interleaves several inferences (Sia::run_batch).
    /// Each in-flight inference owns membrane_bytes / (2 * membrane_banks)
    /// bytes per phase; batches larger than this run in multiple waves.
    std::int64_t membrane_banks = 4;

    /// Memberwise equality over every field. Load-bearing: this is the
    /// cache key for core::BatchRunner's SiaBackend (compiled program +
    /// per-worker resident simulators), so a new field added here is
    /// automatically part of the key — any changed field reliably
    /// invalidates both caches (asserted by tests/test_backend.cpp).
    [[nodiscard]] bool operator==(const SiaConfig&) const = default;

    [[nodiscard]] std::int64_t pe_count() const noexcept { return pe_rows * pe_cols; }

    [[nodiscard]] double peak_gops() const noexcept {
        return static_cast<double>(pe_count()) * static_cast<double>(ops_per_pe_cycle) *
               clock_mhz * 1e6 / 1e9;
    }

    [[nodiscard]] double cycles_to_ms(std::int64_t cycles) const noexcept {
        return static_cast<double>(cycles) / (clock_mhz * 1e3);
    }

    /// Cycles for one event-driven kernel window on a PE: the paper's
    /// 3 cycles per kernel row (one 8-bit add per weight through the
    /// single adder, 3 weights selected by the 3 multiplexers) times the
    /// number of row segments, plus 1 cycle to emit the partial sum.
    /// k=3 -> 10 cycles, exactly §III-A.
    [[nodiscard]] static std::int64_t window_cycles(std::int64_t kernel) noexcept {
        const std::int64_t segments_per_row = (kernel + 2) / 3;
        return kernel * segments_per_row * 3 + 1;
    }
};

}  // namespace sia::sim
