// Control & configuration FSM (§III-C, Fig. 5).
//
// The controller sequences: initialise NPU -> load architectural details
// (per-layer configuration) -> read input block RAM -> PE computation ->
// batch-norm + activation -> write output, looping over layers and
// timesteps. Illegal transitions throw — the integration tests assert
// the Sia top level only drives legal sequences.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace sia::sim {

enum class CtrlState : std::uint8_t {
    kIdle,
    kInit,           ///< "Initialize NPU"
    kLoadConfig,     ///< "Load Architectural Details"
    kReadInput,      ///< "Read Input Data Block RAM"
    kPeCompute,      ///< "PE Computation and Storage"
    kAggregate,      ///< "Enable Activation and Batch Normalization"
    kWriteOutput,    ///< "Layer Wise Output"
    kDone,           ///< "All Layer Done / End" (may re-init for the next
                     ///< wave of a batched resident run)
};

[[nodiscard]] const char* to_string(CtrlState s) noexcept;

class Controller {
public:
    [[nodiscard]] CtrlState state() const noexcept { return state_; }

    /// Attempt a transition; throws std::logic_error if illegal.
    void transition(CtrlState next);

    /// Full state history since construction (for traces and tests).
    [[nodiscard]] const std::vector<CtrlState>& history() const noexcept { return history_; }

    /// Number of times each state was entered.
    [[nodiscard]] std::int64_t entries(CtrlState s) const noexcept;

    void reset() noexcept {
        state_ = CtrlState::kIdle;
        history_.clear();
    }

private:
    [[nodiscard]] static bool legal(CtrlState from, CtrlState to) noexcept;

    CtrlState state_ = CtrlState::kIdle;
    std::vector<CtrlState> history_;
};

}  // namespace sia::sim
