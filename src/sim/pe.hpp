// Processing element and PE-array models (§III-A).
//
// Each PE contains three 8-bit multiplexers (spike selects weight or
// zero) and one 8-bit adder that folds the three mux outputs into the
// running partial sum — one addition per cycle, so an active row segment
// of up to 3 weights costs 3 cycles, and a 3x3 kernel window costs
// 3 rows x 3 cycles + 1 emit cycle = 10 cycles.
//
// The Pe class is the single-element datapath model (used by unit tests
// and the micro benches); PeArray models the 8x8 lockstep array the Sia
// top level drives, where all 64 lanes share the input spike stream and
// compute 64 output channels in parallel.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/config.hpp"
#include "util/fixed_point.hpp"

namespace sia::sim {

/// Single processing element: event-driven weight accumulator.
class Pe {
public:
    /// Begin a new kernel window (clears the partial sum). Free.
    void begin_window() noexcept {
        partial_ = 0;
        emitted_ = false;
    }

    /// Process one row segment of up to 3 (spike, weight) pairs.
    /// Returns the cycles consumed: 3 when any spike is present in the
    /// segment (the fixed mux/adder schedule), 0 when the segment is
    /// skipped by the event-driven control.
    std::int64_t accumulate_segment(std::span<const std::uint8_t> spikes,
                                    std::span<const std::int8_t> weights) noexcept;

    /// Emit the accumulated partial sum (16-bit saturating handoff to the
    /// aggregation core). Costs 1 cycle.
    [[nodiscard]] std::int16_t emit() noexcept {
        emitted_ = true;
        return util::saturate16(partial_);
    }

    [[nodiscard]] std::int32_t raw_partial() const noexcept { return partial_; }
    [[nodiscard]] bool emitted() const noexcept { return emitted_; }

    /// Lifetime counters (for utilization reporting).
    [[nodiscard]] std::int64_t busy_cycles() const noexcept { return busy_cycles_; }
    [[nodiscard]] std::int64_t additions() const noexcept { return additions_; }

private:
    std::int32_t partial_ = 0;
    bool emitted_ = false;
    std::int64_t busy_cycles_ = 0;
    std::int64_t additions_ = 0;
};

/// The 8x8 spiking core. All lanes (output channels) observe the same
/// input spikes; cycle cost per window is therefore lane-independent.
/// Holds no cross-inference state (partial sums live for one window,
/// membranes live in the memory unit), which is what lets a batched
/// resident run (Sia::run_batch) interleave inferences over the same
/// array without any per-inference re-initialisation.
class PeArray {
public:
    explicit PeArray(const SiaConfig& config) : config_(config) {}

    /// Scatter one input spike's kernel contribution into the lanes'
    /// partial sums. `weights_per_lane[lane]` is that lane's kernel
    /// weight for the current (ky, kx) tap. Numeric effect is exact
    /// int32 accumulation; saturation happens at emit.
    void scatter_tap(std::span<const std::int8_t> weights_per_lane,
                     std::span<std::int32_t> partials) const noexcept;

    /// Cycles to process one event (input spike) against a k x k kernel:
    /// the full window schedule runs once per spike (§III-A).
    [[nodiscard]] std::int64_t event_cycles(std::int64_t kernel) const noexcept {
        return SiaConfig::window_cycles(kernel);
    }

    [[nodiscard]] std::int64_t lanes() const noexcept { return config_.pe_count(); }

private:
    SiaConfig config_;
};

}  // namespace sia::sim
