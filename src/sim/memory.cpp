#include "sim/memory.hpp"

#include "sim/config.hpp"

namespace sia::sim {

void BramBank::check(std::int64_t addr, std::int64_t len) const {
    if (addr < 0 || addr + len > capacity()) {
        throw std::out_of_range("BramBank " + name_ + ": access at " + std::to_string(addr) +
                                " len " + std::to_string(len) + " exceeds capacity " +
                                std::to_string(capacity()));
    }
}

void BramBank::write8(std::int64_t addr, std::uint8_t v) {
    check(addr, 1);
    data_[static_cast<std::size_t>(addr)] = v;
    ++bytes_written_;
}

std::uint8_t BramBank::read8(std::int64_t addr) {
    check(addr, 1);
    ++bytes_read_;
    return data_[static_cast<std::size_t>(addr)];
}

void BramBank::write16(std::int64_t addr, std::int16_t v) {
    check(addr, 2);
    data_[static_cast<std::size_t>(addr)] = static_cast<std::uint8_t>(v & 0xFF);
    data_[static_cast<std::size_t>(addr + 1)] =
        static_cast<std::uint8_t>((static_cast<std::uint16_t>(v) >> 8) & 0xFF);
    bytes_written_ += 2;
}

std::int16_t BramBank::read16(std::int64_t addr) {
    check(addr, 2);
    bytes_read_ += 2;
    const auto lo = static_cast<std::uint16_t>(data_[static_cast<std::size_t>(addr)]);
    const auto hi = static_cast<std::uint16_t>(data_[static_cast<std::size_t>(addr + 1)]);
    return static_cast<std::int16_t>(static_cast<std::uint16_t>(lo | (hi << 8)));
}

void PingPongMembrane::partition(std::int64_t contexts) {
    if (contexts < 1) {
        throw std::invalid_argument("PingPongMembrane: contexts must be >= 1");
    }
    const std::int64_t slice = banks_[0].capacity() / contexts;
    if (slice < 2) {
        throw std::invalid_argument(
            "PingPongMembrane: " + std::to_string(contexts) +
            " contexts leave slices under one 16-bit potential");
    }
    slice_ = slice;
    phase_.assign(static_cast<std::size_t>(contexts), 0);
    active_ = 0;
}

void PingPongMembrane::set_active(std::int64_t context) {
    if (context < 0 || context >= contexts()) {
        throw std::out_of_range("PingPongMembrane: context " + std::to_string(context) +
                                " of " + std::to_string(contexts()));
    }
    active_ = context;
}

void PingPongMembrane::check_slice(std::int64_t addr, std::int64_t len) const {
    if (addr < 0 || addr + len > slice_) {
        throw std::out_of_range("PingPongMembrane: access at " + std::to_string(addr) +
                                " len " + std::to_string(len) +
                                " exceeds context slice " + std::to_string(slice_));
    }
}

MemoryUnit::MemoryUnit(const SiaConfig& config)
    : incoming_spikes("incoming-spikes", config.incoming_spike_bytes),
      residual("residual", config.residual_bytes),
      weights("weights", config.weight_bytes),
      output_spikes("output-spikes", config.output_bytes),
      membrane(config.membrane_bytes) {}

}  // namespace sia::sim
