// Deterministic random number generation.
//
// Every stochastic component in the reproduction (weight init, synthetic
// dataset, augmentation, event streams) draws from a seeded Rng so that
// benches regenerate identical tables across runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <random>
#include <vector>

namespace sia::util {

/// Default global seed; benches and tests pass explicit seeds where they
/// need independent streams.
inline constexpr std::uint64_t kDefaultSeed = 0x51A2024ULL;

/// SplitMix64 finalizer: decorrelates consecutive indices under one base
/// seed into far-apart engine seeds. This is the per-item stream
/// derivation core::BatchRunner's determinism contract is built on
/// (results depend on (seed, item index) only, never on thread count or
/// batch position), so its exact constants are load-bearing: tests pin
/// them through this single definition.
[[nodiscard]] inline constexpr std::uint64_t mix_seed(std::uint64_t seed,
                                                      std::uint64_t index) noexcept {
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (index + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

/// Thin wrapper over a 64-bit Mersenne Twister with convenience
/// distributions. Copyable; copies continue the sequence independently.
class Rng {
public:
    explicit Rng(std::uint64_t seed = kDefaultSeed) : engine_(seed) {}

    /// Uniform real in [lo, hi).
    [[nodiscard]] float uniform(float lo = 0.0F, float hi = 1.0F) {
        return std::uniform_real_distribution<float>(lo, hi)(engine_);
    }

    /// Normal with the given mean and standard deviation.
    [[nodiscard]] float normal(float mean = 0.0F, float stddev = 1.0F) {
        return std::normal_distribution<float>(mean, stddev)(engine_);
    }

    /// Uniform integer in [lo, hi] inclusive.
    [[nodiscard]] std::int64_t integer(std::int64_t lo, std::int64_t hi) {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /// Bernoulli draw with probability p of true.
    [[nodiscard]] bool bernoulli(double p) {
        return std::bernoulli_distribution(p)(engine_);
    }

    /// Fisher-Yates permutation of [0, n).
    [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n) {
        std::vector<std::size_t> idx(n);
        for (std::size_t i = 0; i < n; ++i) idx[i] = i;
        for (std::size_t i = n; i > 1; --i) {
            const auto j = static_cast<std::size_t>(integer(0, static_cast<std::int64_t>(i) - 1));
            std::swap(idx[i - 1], idx[j]);
        }
        return idx;
    }

    /// Access to the raw engine for std distributions not wrapped here.
    [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

    /// Derive an independent child generator (for per-component streams).
    [[nodiscard]] Rng fork() { return Rng(engine_()); }

private:
    std::mt19937_64 engine_;
};

}  // namespace sia::util
