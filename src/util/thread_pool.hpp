// Fixed-size thread pool (no work stealing) for deterministic batch
// execution. Workers are spawned once and reused; work is handed out one
// item index at a time from an atomic cursor, so callers can key every
// side effect off the *item* index, never the worker index — the property
// BatchRunner relies on for its bit-exactness-vs-sequential guarantee.
// (Per-item handout means one atomic increment per item; fine for
// inference-sized items, wrong tool for micro-tasks.)
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sia::util {

class ThreadPool {
public:
    /// Spawns `threads` workers. 0 = std::thread::hardware_concurrency()
    /// (at least 1).
    explicit ThreadPool(std::size_t threads = 0);

    /// Joins all workers. Outstanding parallel_for calls must have
    /// returned (the pool is not usable concurrently from multiple
    /// callers).
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

    /// Runs fn(item, worker) for every item in [0, n), distributing items
    /// across workers via an atomic cursor, and blocks until all items
    /// complete. `worker` is in [0, size()) and identifies the executing
    /// worker — use it to index per-worker scratch state, but never let
    /// it influence results. If any invocation throws, the first captured
    /// exception is rethrown here after the batch drains.
    void parallel_for(std::size_t n,
                      const std::function<void(std::size_t item, std::size_t worker)>& fn);

private:
    struct Batch;

    void worker_loop(std::size_t worker_index);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    Batch* batch_ = nullptr;  // guarded by mutex_
    std::uint64_t epoch_ = 0;  // bumped per batch so workers see new work
    bool stop_ = false;
};

}  // namespace sia::util
