#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace sia::util {

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::header(std::vector<std::string> names) {
    header_ = std::move(names);
    return *this;
}

Table& Table::row(std::vector<std::string> cells) {
    cells.resize(header_.empty() ? cells.size() : header_.size());
    rows_.push_back(std::move(cells));
    return *this;
}

Table& Table::separator() {
    rows_.emplace_back();  // sentinel
    return *this;
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string Table::to_string() const {
    const std::size_t ncol = header_.size();
    std::vector<std::size_t> width(ncol, 0);
    for (std::size_t c = 0; c < ncol; ++c) width[c] = header_[c].size();
    for (const auto& r : rows_) {
        for (std::size_t c = 0; c < std::min(ncol, r.size()); ++c) {
            width[c] = std::max(width[c], r[c].size());
        }
    }

    std::ostringstream out;
    const auto hline = [&] {
        out << '+';
        for (std::size_t c = 0; c < ncol; ++c) {
            out << std::string(width[c] + 2, '-') << '+';
        }
        out << '\n';
    };
    const auto emit_row = [&](const std::vector<std::string>& r) {
        out << '|';
        for (std::size_t c = 0; c < ncol; ++c) {
            const std::string& s = c < r.size() ? r[c] : std::string{};
            out << ' ' << s << std::string(width[c] - s.size(), ' ') << " |";
        }
        out << '\n';
    };

    if (!title_.empty()) out << title_ << '\n';
    hline();
    emit_row(header_);
    hline();
    for (const auto& r : rows_) {
        if (r.empty()) {
            hline();
        } else {
            emit_row(r);
        }
    }
    hline();
    return out.str();
}

std::string cell(double v, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string cell(long long v) { return std::to_string(v); }

std::string cell(long v) { return std::to_string(v); }

std::string cell(int v) { return std::to_string(v); }

std::string cell(unsigned long v) { return std::to_string(v); }

std::string cell(unsigned int v) { return std::to_string(v); }

std::string cell_pct(double v, int precision) { return cell(v, precision) + "%"; }

}  // namespace sia::util
