// Fixed-point arithmetic used across the SIA reproduction.
//
// The paper's datapath (SOCC 2024, §III) uses:
//   - INT8 synaptic weights (scale q_w, learnable, per layer),
//   - 16-bit saturating partial sums produced by the PE row accumulation,
//   - 16-bit membrane potentials, thresholds and batch-norm coefficients.
//
// Every module (software training, functional SNN, cycle-accurate
// simulator) quantizes through the helpers here so that the three agree
// bit-exactly.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace sia::util {

/// Number of fractional bits used for membrane-domain quantities
/// (thresholds, membrane potentials). A layer threshold s_l maps to the
/// integer value 1 << kThetaFracBits, i.e. the membrane LSB is
/// s_l / 2^kThetaFracBits.
inline constexpr int kThetaFracBits = 8;

/// Fixed-point shift applied to the batch-norm gain G. The aggregation
/// core computes (psum * G_q) >> kBnGainShift in the membrane domain.
inline constexpr int kBnGainShift = 8;

/// Saturate a wide integer into the signed 8-bit range.
[[nodiscard]] constexpr std::int8_t saturate8(std::int32_t v) noexcept {
    return static_cast<std::int8_t>(std::clamp<std::int32_t>(v, -128, 127));
}

/// Saturate a wide integer into the signed 16-bit range.
[[nodiscard]] constexpr std::int16_t saturate16(std::int64_t v) noexcept {
    return static_cast<std::int16_t>(std::clamp<std::int64_t>(v, -32768, 32767));
}

/// Saturating 16-bit addition — the semantics of the PE accumulator and
/// the aggregation-core adders.
[[nodiscard]] constexpr std::int16_t sat_add16(std::int16_t a, std::int16_t b) noexcept {
    return saturate16(static_cast<std::int64_t>(a) + static_cast<std::int64_t>(b));
}

/// Saturating 16-bit subtraction (used by reset-by-subtraction).
[[nodiscard]] constexpr std::int16_t sat_sub16(std::int16_t a, std::int16_t b) noexcept {
    return saturate16(static_cast<std::int64_t>(a) - static_cast<std::int64_t>(b));
}

/// Saturating lane ops for the vectorized fire stage. The fused
/// aggregate+fire kernels (snn::compute::aggregate_fire_*) keep every
/// quantity in int32 lanes and clamp into the int16 membrane domain
/// between ops; these scalar definitions are the per-lane semantics.
/// They are exactly equivalent to the int64-based saturate16/sat_add16/
/// sat_sub16 forms for inputs already in the int16 domain (no int32
/// intermediate here can overflow: |a|,|b| <= 2^15 before adds, and the
/// gain product is bounded by 2^30), which is what makes the scalar and
/// vector fire paths bit-identical by construction.

/// Clamp an int32 lane into the signed 16-bit range.
[[nodiscard]] constexpr std::int32_t clamp16_lane(std::int32_t v) noexcept {
    return v < -32768 ? -32768 : (v > 32767 ? 32767 : v);
}

/// Lane form of fxp_mul_shift: (a * b) >> shift with round-to-nearest
/// and 16-bit saturation, a and b already in int16 range.
[[nodiscard]] constexpr std::int32_t fxp_mul_shift_lane(std::int32_t a, std::int32_t b,
                                                        int shift) noexcept {
    const std::int32_t prod = a * b;
    if (shift <= 0) return clamp16_lane(prod);
    const std::int32_t rounding = std::int32_t{1} << (shift - 1);
    return clamp16_lane((prod + rounding) >> shift);
}

/// Round a real value to the nearest integer, ties away from zero —
/// matches std::lround and the quantizers used during training.
[[nodiscard]] inline std::int32_t round_nearest(double v) noexcept {
    return static_cast<std::int32_t>(std::lround(v));
}

/// Quantize a real weight to INT8 with the given scale: w_q = round(w / scale),
/// saturating at ±127 (symmetric, no -128, as is conventional for weights).
[[nodiscard]] inline std::int8_t quantize_weight(float w, float scale) noexcept {
    if (scale <= 0.0F) return 0;
    const std::int32_t q = round_nearest(static_cast<double>(w) / scale);
    return static_cast<std::int8_t>(std::clamp(q, -127, 127));
}

/// Dequantize an INT8 weight back to a real value.
[[nodiscard]] constexpr float dequantize_weight(std::int8_t q, float scale) noexcept {
    return static_cast<float>(q) * scale;
}

/// Quantize a real value into a signed 16-bit fixed-point number with
/// `frac_bits` fractional bits, saturating.
[[nodiscard]] inline std::int16_t to_q16(double v, int frac_bits) noexcept {
    const double scaled = v * static_cast<double>(std::int64_t{1} << frac_bits);
    const auto r = static_cast<std::int64_t>(std::llround(scaled));
    return saturate16(r);
}

/// Convert a signed 16-bit fixed-point number back to a real value.
[[nodiscard]] constexpr double from_q16(std::int16_t v, int frac_bits) noexcept {
    return static_cast<double>(v) / static_cast<double>(std::int64_t{1} << frac_bits);
}

/// Fixed-point multiply used by the aggregation core's batch-norm unit:
/// (a * b) >> shift with rounding-to-nearest and 16-bit saturation.
/// `a` is the 16-bit partial sum, `b` the 16-bit gain in Q(16-shift).shift.
[[nodiscard]] constexpr std::int16_t fxp_mul_shift(std::int16_t a, std::int16_t b,
                                                   int shift) noexcept {
    const std::int64_t prod = static_cast<std::int64_t>(a) * static_cast<std::int64_t>(b);
    if (shift <= 0) return saturate16(prod);
    const std::int64_t rounding = std::int64_t{1} << (shift - 1);
    return saturate16((prod + rounding) >> shift);
}

/// Symmetric per-tensor weight-quantization scale covering [-max|w|, max|w|]
/// in 127 steps. Returns a strictly positive scale even for all-zero input.
[[nodiscard]] inline float weight_scale_for_absmax(float abs_max) noexcept {
    if (abs_max <= 0.0F) return 1.0F / 127.0F;
    return abs_max / 127.0F;
}

/// Maximum absolute quantization error, in real units, committed by an
/// INT8 quantizer with the given scale (half an LSB).
[[nodiscard]] constexpr float quant_error_bound(float scale) noexcept {
    return 0.5F * scale;
}

}  // namespace sia::util
