#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sia::util {

void RunningStat::add(double x) noexcept {
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStat::variance() const noexcept {
    return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStat::sample_variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
    if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
    if (bins == 0) throw std::invalid_argument("Histogram: need at least one bin");
}

void Histogram::add(double x) noexcept {
    const double t = (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size());
    auto idx = static_cast<std::int64_t>(std::floor(t));
    idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const noexcept { return bin_lo(i + 1); }

double Histogram::cdf(double x) const noexcept {
    if (total_ == 0) return 0.0;
    std::size_t acc = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (bin_hi(i) <= x) {
            acc += counts_[i];
        }
    }
    return static_cast<double>(acc) / static_cast<double>(total_);
}

StreamingHistogram::StreamingHistogram(double lo, double hi, int bins_per_decade) {
    if (!(lo > 0.0) || !(hi > lo)) {
        throw std::invalid_argument("StreamingHistogram: need 0 < lo < hi");
    }
    if (bins_per_decade <= 0) {
        throw std::invalid_argument("StreamingHistogram: bins_per_decade must be > 0");
    }
    log_lo_ = std::log10(lo);
    bins_per_decade_ = static_cast<double>(bins_per_decade);
    const double decades = std::log10(hi) - log_lo_;
    const auto buckets =
        static_cast<std::size_t>(std::ceil(decades * bins_per_decade_));
    counts_.assign(std::max<std::size_t>(buckets, 1), 0);
}

std::size_t StreamingHistogram::bucket_of(double x) const noexcept {
    if (!(x > 0.0)) return 0;
    const double t = (std::log10(x) - log_lo_) * bins_per_decade_;
    const auto idx = static_cast<std::int64_t>(std::floor(t));
    return static_cast<std::size_t>(std::clamp<std::int64_t>(
        idx, 0, static_cast<std::int64_t>(counts_.size()) - 1));
}

double StreamingHistogram::bucket_hi(std::size_t i) const noexcept {
    return std::pow(10.0, log_lo_ + static_cast<double>(i + 1) / bins_per_decade_);
}

void StreamingHistogram::add(double x) noexcept {
    ++counts_[bucket_of(x)];
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
}

void StreamingHistogram::merge(const StreamingHistogram& other) {
    if (counts_.size() != other.counts_.size() || log_lo_ != other.log_lo_ ||
        bins_per_decade_ != other.bins_per_decade_) {
        throw std::invalid_argument("StreamingHistogram::merge: geometry mismatch");
    }
    if (other.count_ == 0) return;
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

double StreamingHistogram::quantile(double q) const noexcept {
    if (count_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_))));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen >= rank) return bucket_hi(i);
    }
    return bucket_hi(counts_.size() - 1);
}

void StreamingHistogram::reset() noexcept {
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

void SloBurnCounter::merge(const SloBurnCounter& other) {
    if (threshold_ != other.threshold_) {
        throw std::invalid_argument("SloBurnCounter::merge: threshold mismatch");
    }
    total_ += other.total_;
    burned_ += other.burned_;
}

double mean_of(const std::vector<double>& xs) noexcept {
    if (xs.empty()) return 0.0;
    double s = 0.0;
    for (const double x : xs) s += x;
    return s / static_cast<double>(xs.size());
}

}  // namespace sia::util
