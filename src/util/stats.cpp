#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sia::util {

void RunningStat::add(double x) noexcept {
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStat::variance() const noexcept {
    return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStat::sample_variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
    if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
    if (bins == 0) throw std::invalid_argument("Histogram: need at least one bin");
}

void Histogram::add(double x) noexcept {
    const double t = (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size());
    auto idx = static_cast<std::int64_t>(std::floor(t));
    idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const noexcept { return bin_lo(i + 1); }

double Histogram::cdf(double x) const noexcept {
    if (total_ == 0) return 0.0;
    std::size_t acc = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (bin_hi(i) <= x) {
            acc += counts_[i];
        }
    }
    return static_cast<double>(acc) / static_cast<double>(total_);
}

double mean_of(const std::vector<double>& xs) noexcept {
    if (xs.empty()) return 0.0;
    double s = 0.0;
    for (const double x : xs) s += x;
    return s / static_cast<double>(xs.size());
}

}  // namespace sia::util
