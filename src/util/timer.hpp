// Wall-clock timer for reporting host-side runtimes in benches.
#pragma once

#include <chrono>

namespace sia::util {

/// Starts on construction; `seconds()`/`millis()` report elapsed time.
class WallTimer {
public:
    WallTimer() : start_(Clock::now()) {}

    void reset() { start_ = Clock::now(); }

    [[nodiscard]] double seconds() const {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    [[nodiscard]] double millis() const { return seconds() * 1e3; }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

}  // namespace sia::util
