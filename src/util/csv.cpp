#include "util/csv.hpp"

#include <stdexcept>

namespace sia::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path, std::ios::trunc) {
    if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0) out_ << ',';
        out_ << escape(cells[i]);
    }
    out_ << '\n';
}

void CsvWriter::close() {
    if (out_.is_open()) out_.close();
}

CsvWriter::~CsvWriter() { close(); }

std::string CsvWriter::escape(const std::string& s) {
    const bool needs_quote = s.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quote) return s;
    std::string q = "\"";
    for (const char c : s) {
        if (c == '"') q += "\"\"";
        else q += c;
    }
    q += '"';
    return q;
}

}  // namespace sia::util
