// ASCII table printer used by the bench harness to print paper tables
// (Table I-IV) in the same row/column layout as published, with a
// "paper" column next to the "measured" column where applicable.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace sia::util {

/// Accumulates rows of string cells and renders an aligned ASCII table.
/// All cells are strings; use the `cell` helpers to format numbers with
/// a fixed precision so tables are deterministic.
class Table {
public:
    explicit Table(std::string title = {});

    /// Set the column headers. Must be called before adding rows.
    Table& header(std::vector<std::string> names);

    /// Append one row; pads/truncates to the header width.
    Table& row(std::vector<std::string> cells);

    /// Insert a horizontal separator before the next row.
    Table& separator();

    [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

    /// Render to the stream with column alignment and a box border.
    void print(std::ostream& os) const;

    /// Render to a string (used by tests).
    [[nodiscard]] std::string to_string() const;

private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;  // empty vector == separator
};

/// Format a double with fixed precision.
[[nodiscard]] std::string cell(double v, int precision = 2);
/// Format an integer (overload set covers the common integer widths so
/// std::int64_t and literals resolve without casts).
[[nodiscard]] std::string cell(long long v);
[[nodiscard]] std::string cell(long v);
[[nodiscard]] std::string cell(int v);
[[nodiscard]] std::string cell(unsigned long v);
[[nodiscard]] std::string cell(unsigned int v);
/// Format a percentage such as "22.43%".
[[nodiscard]] std::string cell_pct(double v, int precision = 2);

}  // namespace sia::util
