#include "util/fault.hpp"

#include <stdexcept>
#include <utility>

namespace sia::util {

namespace {

/// Salt decorrelating fault decisions from encoding draws when a plan
/// reuses the serving seed.
constexpr std::uint64_t kFaultSalt = 0xFA17'B15EC7ULL;

/// Map a mixed 64-bit word onto [0, 1).
double to_unit(std::uint64_t word) noexcept {
    return static_cast<double>(word >> 11) * 0x1.0p-53;
}

}  // namespace

const char* to_string(FaultKind kind) noexcept {
    switch (kind) {
        case FaultKind::kNone: return "none";
        case FaultKind::kThrow: return "throw";
        case FaultKind::kTransient: return "transient";
        case FaultKind::kStall: return "stall";
        case FaultKind::kCorrupt: return "corrupt";
    }
    return "?";
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
    const double total = plan_.throw_probability + plan_.transient_probability +
                         plan_.corrupt_probability;
    if (plan_.throw_probability < 0.0 || plan_.transient_probability < 0.0 ||
        plan_.corrupt_probability < 0.0 || total > 1.0) {
        throw std::invalid_argument(
            "FaultPlan: probabilities must be >= 0 and sum to <= 1");
    }
    if (plan_.transient_attempts == 0) {
        throw std::invalid_argument("FaultPlan: transient_attempts must be >= 1");
    }
}

FaultKind FaultInjector::decide(std::uint64_t stream) const noexcept {
    for (const std::uint64_t s : plan_.fail_streams) {
        if (s == stream) return FaultKind::kThrow;
    }
    const double x = to_unit(mix_seed(plan_.seed ^ kFaultSalt, stream));
    double p = plan_.throw_probability;
    if (x < p) return FaultKind::kThrow;
    p += plan_.transient_probability;
    if (x < p) return FaultKind::kTransient;
    p += plan_.corrupt_probability;
    if (x < p) return FaultKind::kCorrupt;
    if (plan_.stall_every > 0 && stream % plan_.stall_every == 0) {
        return FaultKind::kStall;
    }
    return FaultKind::kNone;
}

FaultKind FaultInjector::inject(std::uint64_t stream, std::uint32_t attempt) noexcept {
    if (plan_.fail_first > 0 &&
        calls_.fetch_add(1, std::memory_order_relaxed) < plan_.fail_first) {
        injected_.fetch_add(1, std::memory_order_relaxed);
        return FaultKind::kThrow;
    }
    FaultKind kind = decide(stream);
    if (kind == FaultKind::kTransient && attempt >= plan_.transient_attempts) {
        kind = FaultKind::kNone;  // the fault cleared under retry
    }
    if (kind != FaultKind::kNone) {
        injected_.fetch_add(1, std::memory_order_relaxed);
    }
    return kind;
}

}  // namespace sia::util
