// Minimal CSV emitter. Benches write each figure's series to a CSV next
// to the human-readable printout so results can be re-plotted.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace sia::util {

/// Writes rows of cells to a CSV file. Cells containing commas, quotes
/// or newlines are quoted per RFC 4180.
class CsvWriter {
public:
    /// Opens (truncates) the file; throws std::runtime_error on failure.
    explicit CsvWriter(const std::string& path);

    /// Write one row.
    void row(const std::vector<std::string>& cells);

    /// Flush and close; called by the destructor as well.
    void close();

    ~CsvWriter();
    CsvWriter(const CsvWriter&) = delete;
    CsvWriter& operator=(const CsvWriter&) = delete;
    CsvWriter(CsvWriter&&) = default;
    CsvWriter& operator=(CsvWriter&&) = default;

private:
    static std::string escape(const std::string& s);
    std::ofstream out_;
};

}  // namespace sia::util
