// Deterministic fault injection for the serving stack's chaos tests.
//
// A FaultInjector turns a seeded FaultPlan into per-request fault
// decisions. Probability-driven decisions are a pure function of
// (plan.seed, rng_stream) through the same SplitMix64 finalizer the
// encoding streams use — which request is poisoned depends only on its
// admission-pinned stream, never on thread scheduling, wave formation,
// or how many times a wave is re-run during bisection. That is what
// lets a chaos test predict the exact faulted set up front and assert
// an exact completed/failed/retried ledger against it.
//
// Two stateful modes sit on top of the pure decisions:
//   * fail_first  — the first N inject() calls fail regardless of
//     stream (shared atomic countdown), then the backend is healthy
//     again: the shape that trips a circuit breaker and then lets its
//     half-open probes succeed.
//   * transient recovery — a kTransient decision succeeds once the
//     request's retry attempt reaches transient_attempts, modelling a
//     fault that clears under retry-with-backoff.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace sia::util {

/// What the injector does to one request.
enum class FaultKind : std::uint8_t {
    kNone = 0,
    kThrow,      ///< permanent failure: throw std::runtime_error
    kTransient,  ///< transient failure: throw core::TransientError; clears at attempt >= transient_attempts
    kStall,      ///< run normally after sleeping stall_us (slow-wave fault)
    kCorrupt,    ///< run normally, then deterministically corrupt the logits
};

[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

/// Seeded description of a fault storm. Probabilities partition the
/// unit interval in declaration order (throw, then transient, then
/// corrupt); their sum must be <= 1.
struct FaultPlan {
    /// Seed of the fault decision stream. Salted internally so a plan
    /// sharing the serving seed stays decorrelated from the encodings.
    std::uint64_t seed = kDefaultSeed;
    double throw_probability = 0.0;
    double transient_probability = 0.0;
    /// Attempts (including the first run) a kTransient fault survives
    /// before clearing; a retry with attempt >= this succeeds.
    std::uint32_t transient_attempts = 1;
    double corrupt_probability = 0.0;
    /// Every stall_every-th stream stalls (0 = never).
    std::uint64_t stall_every = 0;
    std::int64_t stall_us = 0;
    /// Fail-N-then-recover: the first fail_first inject() calls throw
    /// permanently, independent of stream. Note that wave bisection and
    /// retries each consume one call.
    std::uint64_t fail_first = 0;
    /// Explicit schedule: these streams always throw permanently.
    std::vector<std::uint64_t> fail_streams;
};

/// Thread-safe: decide() is pure; inject() only touches atomics.
class FaultInjector {
public:
    explicit FaultInjector(FaultPlan plan);

    /// The pure per-stream decision — what inject() would do for this
    /// stream on its first attempt, ignoring fail_first. Tests use this
    /// to predict the faulted set of a storm.
    [[nodiscard]] FaultKind decide(std::uint64_t stream) const noexcept;

    /// The stateful decision for one run of one request: consumes the
    /// fail_first countdown, then applies decide() with transient
    /// recovery at `attempt`.
    [[nodiscard]] FaultKind inject(std::uint64_t stream, std::uint32_t attempt) noexcept;

    /// Faults injected so far (every non-kNone inject() result).
    [[nodiscard]] std::uint64_t injected() const noexcept {
        return injected_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

private:
    FaultPlan plan_;
    std::atomic<std::uint64_t> calls_{0};     ///< fail_first countdown
    std::atomic<std::uint64_t> injected_{0};
};

}  // namespace sia::util
