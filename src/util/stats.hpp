// Streaming statistics helpers (Welford mean/variance, histograms,
// min/max tracking). Used for spike-rate instrumentation (Fig. 6 / Fig. 8),
// batch-norm running estimates, and bench reporting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sia::util {

/// Numerically stable single-pass mean/variance accumulator (Welford).
class RunningStat {
public:
    void add(double x) noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
    /// Population variance (divides by n). Matches batch-norm semantics.
    [[nodiscard]] double variance() const noexcept;
    /// Sample variance (divides by n-1).
    [[nodiscard]] double sample_variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
    [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }

    /// Merge another accumulator into this one (parallel-friendly).
    void merge(const RunningStat& other) noexcept;

    void reset() noexcept { *this = RunningStat{}; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); values outside are clamped into the
/// first/last bin. Used for membrane-potential and spike-count profiles.
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x) noexcept;
    [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
    [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
    [[nodiscard]] std::size_t total() const noexcept { return total_; }
    [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
    [[nodiscard]] double bin_hi(std::size_t i) const noexcept;
    /// Fraction of mass at or below x (empirical CDF evaluated on bins).
    [[nodiscard]] double cdf(double x) const noexcept;

private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

/// Mean of a vector; 0 for empty input.
[[nodiscard]] double mean_of(const std::vector<double>& xs) noexcept;

}  // namespace sia::util
