// Streaming statistics helpers (Welford mean/variance, histograms,
// min/max tracking). Used for spike-rate instrumentation (Fig. 6 / Fig. 8),
// batch-norm running estimates, and bench reporting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sia::util {

/// Numerically stable single-pass mean/variance accumulator (Welford).
class RunningStat {
public:
    void add(double x) noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
    /// Population variance (divides by n). Matches batch-norm semantics.
    [[nodiscard]] double variance() const noexcept;
    /// Sample variance (divides by n-1).
    [[nodiscard]] double sample_variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
    [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }

    /// Merge another accumulator into this one (parallel-friendly).
    void merge(const RunningStat& other) noexcept;

    void reset() noexcept { *this = RunningStat{}; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); values outside are clamped into the
/// first/last bin. Used for membrane-potential and spike-count profiles.
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x) noexcept;
    [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
    [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
    [[nodiscard]] std::size_t total() const noexcept { return total_; }
    [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
    [[nodiscard]] double bin_hi(std::size_t i) const noexcept;
    /// Fraction of mass at or below x (empirical CDF evaluated on bins).
    [[nodiscard]] double cdf(double x) const noexcept;

private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

/// Streaming quantile estimator over positive values, built for latency
/// tracking: geometrically spaced buckets (HdrHistogram-style) make
/// add() O(1) and lock-free-friendly, merge() a bucket-wise sum (so
/// per-worker histograms combine exactly), and quantile() accurate to
/// one bucket — with the default 64 buckets per decade that is a ~3.7%
/// relative error bound, far below the run-to-run noise of any latency
/// measurement. Values are unit-agnostic; core::Server records
/// microseconds. Inputs below `lo` (including non-positive values) clamp
/// into the first bucket, inputs at or above `hi` into the last.
class StreamingHistogram {
public:
    /// Buckets cover [lo, hi) with `bins_per_decade` buckets per power
    /// of ten. The defaults span 1 us .. 1000 s when fed microseconds.
    explicit StreamingHistogram(double lo = 1.0, double hi = 1e9,
                                int bins_per_decade = 64);

    void add(double x) noexcept;

    /// Bucket-wise sum; exact (the merged histogram equals one that saw
    /// both input streams). Throws std::invalid_argument when the bucket
    /// geometries differ.
    void merge(const StreamingHistogram& other);

    /// Smallest value v such that at least ceil(q * count) samples are
    /// <= v, reported as the upper edge of the containing bucket (so the
    /// estimate never understates the true quantile by more than one
    /// bucket width). q is clamped to [0, 1]; 0 when empty.
    [[nodiscard]] double quantile(double q) const noexcept;
    [[nodiscard]] double p50() const noexcept { return quantile(0.50); }
    [[nodiscard]] double p95() const noexcept { return quantile(0.95); }
    [[nodiscard]] double p99() const noexcept { return quantile(0.99); }

    [[nodiscard]] std::size_t count() const noexcept { return count_; }
    /// Exact (not bucket-resolution) extremes and mean of the added values.
    [[nodiscard]] double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
    [[nodiscard]] double max() const noexcept { return count_ > 0 ? max_ : 0.0; }
    [[nodiscard]] double mean() const noexcept {
        return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
    }

    /// Raw bucket occupancies — the state merge() sums. Exposed so the
    /// merge-exactness property (splitting a stream across histograms
    /// and merging equals one histogram that saw everything) can be
    /// asserted bucket-wise, not just through quantiles. Note the mean
    /// is *not* part of that exactness claim: merge() adds the partial
    /// sums, and float addition is order-sensitive.
    [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const noexcept {
        return counts_;
    }
    [[nodiscard]] bool same_geometry(const StreamingHistogram& other) const noexcept {
        return counts_.size() == other.counts_.size() && log_lo_ == other.log_lo_ &&
               bins_per_decade_ == other.bins_per_decade_;
    }

    void reset() noexcept;

private:
    [[nodiscard]] std::size_t bucket_of(double x) const noexcept;
    [[nodiscard]] double bucket_hi(std::size_t i) const noexcept;

    double log_lo_ = 0.0;          ///< log10(lo)
    double bins_per_decade_ = 64;  ///< bucket resolution
    std::vector<std::uint64_t> counts_;
    std::size_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// SLO-burn accounting: counts how many observed values exceeded a
/// fixed service-level threshold. The burn rate (violations / total) is
/// the fraction of an error budget a tenant is consuming; core::Server
/// keeps one per tenant next to its latency histogram. merge() is exact
/// (plain counter sums) so per-lane counters combine like histograms.
class SloBurnCounter {
public:
    SloBurnCounter() = default;
    explicit SloBurnCounter(double threshold) : threshold_(threshold) {}

    void add(double x) noexcept {
        ++total_;
        if (x > threshold_) ++burned_;
    }

    /// Counter-wise sum. Throws std::invalid_argument when the
    /// thresholds differ — burn counts against different SLOs are not
    /// comparable.
    void merge(const SloBurnCounter& other);

    [[nodiscard]] double threshold() const noexcept { return threshold_; }
    [[nodiscard]] std::size_t total() const noexcept { return total_; }
    [[nodiscard]] std::size_t burned() const noexcept { return burned_; }
    /// Fraction of observations over the threshold; 0 when empty.
    [[nodiscard]] double burn_rate() const noexcept {
        return total_ > 0 ? static_cast<double>(burned_) / static_cast<double>(total_)
                          : 0.0;
    }

    void reset() noexcept {
        total_ = 0;
        burned_ = 0;
    }

private:
    double threshold_ = 0.0;
    std::size_t total_ = 0;
    std::size_t burned_ = 0;
};

/// Mean of a vector; 0 for empty input.
[[nodiscard]] double mean_of(const std::vector<double>& xs) noexcept;

}  // namespace sia::util
