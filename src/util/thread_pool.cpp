#include "util/thread_pool.hpp"

#include <atomic>
#include <cstdint>

namespace sia::util {

struct ThreadPool::Batch {
    std::size_t n = 0;
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> cursor{0};
    std::size_t in_flight = 0;      // workers still inside this batch
    std::exception_ptr first_error;  // guarded by the pool mutex
};

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0) threads = 1;
    }
    workers_.reserve(threads);
    try {
        for (std::size_t i = 0; i < threads; ++i) {
            workers_.emplace_back([this, i] { worker_loop(i); });
        }
    } catch (...) {
        // Thread spawn failed (e.g. OS thread limit): shut down the
        // workers that did start so their joinable threads don't hit
        // std::terminate when workers_ is destroyed, then surface the
        // error to the caller.
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        wake_.notify_all();
        for (auto& w : workers_) w.join();
        throw;
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
    if (n == 0) return;

    Batch batch;
    batch.n = n;
    batch.fn = &fn;

    std::unique_lock<std::mutex> lock(mutex_);
    batch.in_flight = workers_.size();
    batch_ = &batch;
    ++epoch_;
    wake_.notify_all();
    done_.wait(lock, [&] { return batch.in_flight == 0; });
    batch_ = nullptr;

    if (batch.first_error) std::rethrow_exception(batch.first_error);
}

void ThreadPool::worker_loop(std::size_t worker_index) {
    std::uint64_t seen_epoch = 0;
    while (true) {
        Batch* batch = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
            if (stop_) return;
            seen_epoch = epoch_;
            batch = batch_;
        }

        std::exception_ptr error;
        while (true) {
            const std::size_t item = batch->cursor.fetch_add(1, std::memory_order_relaxed);
            if (item >= batch->n) break;
            try {
                (*batch->fn)(item, worker_index);
            } catch (...) {
                if (!error) error = std::current_exception();
                // Cancel unstarted items — their results would be thrown
                // away by the rethrow anyway. In-flight items still finish
                // so the batch quiesces before parallel_for returns.
                batch->cursor.store(batch->n, std::memory_order_relaxed);
            }
        }

        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (error) {
                if (!batch->first_error) batch->first_error = std::move(error);
                // Drop this worker's reference while still holding the
                // mutex: the caller may rethrow, inspect, and release
                // the exception the moment in_flight hits zero, and a
                // last-reference release from this thread after the
                // unlock would free the object concurrently with that
                // inspection.
                error = nullptr;
            }
            if (--batch->in_flight == 0) done_.notify_all();
        }
    }
}

}  // namespace sia::util
