#include "tensor/ops.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace sia::tensor {

namespace {

void check(bool cond, const char* msg) {
    if (!cond) throw std::invalid_argument(msg);
}

}  // namespace

void matmul(const Tensor& a, const Tensor& b, Tensor& out) {
    const std::int64_t m = a.dim(0);
    const std::int64_t k = a.dim(1);
    const std::int64_t n = b.dim(1);
    check(b.dim(0) == k, "matmul: inner dims mismatch");
    check(out.dim(0) == m && out.dim(1) == n, "matmul: out shape mismatch");
    out.fill(0.0F);
    const float* pa = a.raw();
    const float* pb = b.raw();
    float* pc = out.raw();
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t kk = 0; kk < k; ++kk) {
            const float av = pa[i * k + kk];
            if (av == 0.0F) continue;
            const float* brow = pb + kk * n;
            float* crow = pc + i * n;
            for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
    }
}

void matmul_tn(const Tensor& a_t, const Tensor& b, Tensor& out) {
    // a_t is [k, m]; computes out[m, n] = a_t^T * b.
    const std::int64_t k = a_t.dim(0);
    const std::int64_t m = a_t.dim(1);
    const std::int64_t n = b.dim(1);
    check(b.dim(0) == k, "matmul_tn: inner dims mismatch");
    check(out.dim(0) == m && out.dim(1) == n, "matmul_tn: out shape mismatch");
    out.fill(0.0F);
    const float* pa = a_t.raw();
    const float* pb = b.raw();
    float* pc = out.raw();
    for (std::int64_t kk = 0; kk < k; ++kk) {
        const float* arow = pa + kk * m;
        const float* brow = pb + kk * n;
        for (std::int64_t i = 0; i < m; ++i) {
            const float av = arow[i];
            if (av == 0.0F) continue;
            float* crow = pc + i * n;
            for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
    }
}

void matmul_nt(const Tensor& a, const Tensor& b_t, Tensor& out) {
    // b_t is [n, k]; computes out[m, n] = a * b_t^T.
    const std::int64_t m = a.dim(0);
    const std::int64_t k = a.dim(1);
    const std::int64_t n = b_t.dim(0);
    check(b_t.dim(1) == k, "matmul_nt: inner dims mismatch");
    check(out.dim(0) == m && out.dim(1) == n, "matmul_nt: out shape mismatch");
    const float* pa = a.raw();
    const float* pb = b_t.raw();
    float* pc = out.raw();
    for (std::int64_t i = 0; i < m; ++i) {
        const float* arow = pa + i * k;
        float* crow = pc + i * n;
        for (std::int64_t j = 0; j < n; ++j) {
            const float* brow = pb + j * k;
            double acc = 0.0;
            for (std::int64_t kk = 0; kk < k; ++kk) acc += double(arow[kk]) * double(brow[kk]);
            crow[j] = static_cast<float>(acc);
        }
    }
}

void im2col(const Tensor& input, std::int64_t sample, const ConvGeometry& g,
            std::int64_t in_h, std::int64_t in_w, Tensor& cols) {
    const std::int64_t oh = g.out_size(in_h);
    const std::int64_t ow = g.out_size(in_w);
    const std::int64_t ic = g.in_channels;
    check(cols.dim(0) == ic * g.kernel * g.kernel && cols.dim(1) == oh * ow,
          "im2col: cols shape mismatch");
    const float* in = input.raw() + sample * ic * in_h * in_w;
    float* pc = cols.raw();
    for (std::int64_t c = 0; c < ic; ++c) {
        const float* chan = in + c * in_h * in_w;
        for (std::int64_t kr = 0; kr < g.kernel; ++kr) {
            for (std::int64_t kc = 0; kc < g.kernel; ++kc) {
                float* dst = pc + ((c * g.kernel + kr) * g.kernel + kc) * oh * ow;
                for (std::int64_t y = 0; y < oh; ++y) {
                    const std::int64_t iy = y * g.stride + kr - g.padding;
                    if (iy < 0 || iy >= in_h) {
                        std::fill(dst + y * ow, dst + (y + 1) * ow, 0.0F);
                        continue;
                    }
                    for (std::int64_t x = 0; x < ow; ++x) {
                        const std::int64_t ix = x * g.stride + kc - g.padding;
                        dst[y * ow + x] =
                            (ix >= 0 && ix < in_w) ? chan[iy * in_w + ix] : 0.0F;
                    }
                }
            }
        }
    }
}

void col2im(const Tensor& cols, std::int64_t sample, const ConvGeometry& g,
            std::int64_t in_h, std::int64_t in_w, Tensor& grad_input) {
    const std::int64_t oh = g.out_size(in_h);
    const std::int64_t ow = g.out_size(in_w);
    const std::int64_t ic = g.in_channels;
    float* out = grad_input.raw() + sample * ic * in_h * in_w;
    const float* pc = cols.raw();
    for (std::int64_t c = 0; c < ic; ++c) {
        float* chan = out + c * in_h * in_w;
        for (std::int64_t kr = 0; kr < g.kernel; ++kr) {
            for (std::int64_t kc = 0; kc < g.kernel; ++kc) {
                const float* src = pc + ((c * g.kernel + kr) * g.kernel + kc) * oh * ow;
                for (std::int64_t y = 0; y < oh; ++y) {
                    const std::int64_t iy = y * g.stride + kr - g.padding;
                    if (iy < 0 || iy >= in_h) continue;
                    for (std::int64_t x = 0; x < ow; ++x) {
                        const std::int64_t ix = x * g.stride + kc - g.padding;
                        if (ix >= 0 && ix < in_w) chan[iy * in_w + ix] += src[y * ow + x];
                    }
                }
            }
        }
    }
}

void conv2d_forward(const Tensor& input, const Tensor& weight, const Tensor& bias,
                    const ConvGeometry& g, Tensor& out) {
    const std::int64_t n = input.dim(0);
    const std::int64_t in_h = input.dim(2);
    const std::int64_t in_w = input.dim(3);
    const std::int64_t oh = g.out_size(in_h);
    const std::int64_t ow = g.out_size(in_w);
    check(input.dim(1) == g.in_channels, "conv2d: input channels mismatch");
    check(weight.dim(0) == g.out_channels, "conv2d: weight OC mismatch");
    check(out.dim(0) == n && out.dim(1) == g.out_channels && out.dim(2) == oh &&
              out.dim(3) == ow,
          "conv2d: out shape mismatch");

    const std::int64_t patch = g.in_channels * g.kernel * g.kernel;
    Tensor cols(Shape{patch, oh * ow});
    const Tensor wmat = weight.reshaped(Shape{g.out_channels, patch});
    Tensor result(Shape{g.out_channels, oh * ow});
    const bool has_bias = bias.rank() == 1;

    for (std::int64_t s = 0; s < n; ++s) {
        im2col(input, s, g, in_h, in_w, cols);
        matmul(wmat, cols, result);
        float* dst = out.raw() + s * g.out_channels * oh * ow;
        const float* src = result.raw();
        if (has_bias) {
            for (std::int64_t c = 0; c < g.out_channels; ++c) {
                const float b = bias.flat(c);
                for (std::int64_t i = 0; i < oh * ow; ++i) {
                    dst[c * oh * ow + i] = src[c * oh * ow + i] + b;
                }
            }
        } else {
            std::copy(src, src + g.out_channels * oh * ow, dst);
        }
    }
}

void conv2d_backward(const Tensor& input, const Tensor& weight, const Tensor& grad_out,
                     const ConvGeometry& g, Tensor& grad_input, Tensor& grad_weight,
                     Tensor& grad_bias) {
    const std::int64_t n = input.dim(0);
    const std::int64_t in_h = input.dim(2);
    const std::int64_t in_w = input.dim(3);
    const std::int64_t oh = g.out_size(in_h);
    const std::int64_t ow = g.out_size(in_w);
    const std::int64_t patch = g.in_channels * g.kernel * g.kernel;

    grad_input.fill(0.0F);
    grad_weight.fill(0.0F);
    const bool has_bias = grad_bias.rank() == 1;
    if (has_bias) grad_bias.fill(0.0F);

    Tensor cols(Shape{patch, oh * ow});
    Tensor gcols(Shape{patch, oh * ow});
    const Tensor wmat = weight.reshaped(Shape{g.out_channels, patch});
    Tensor gw_acc(Shape{g.out_channels, patch});

    for (std::int64_t s = 0; s < n; ++s) {
        // grad wrt weights: gW += gOut_s[OC, OHW] * cols^T  -> use matmul_nt.
        im2col(input, s, g, in_h, in_w, cols);
        const Tensor gout_s(Shape{g.out_channels, oh * ow},
                            std::vector<float>(grad_out.raw() + s * g.out_channels * oh * ow,
                                               grad_out.raw() + (s + 1) * g.out_channels * oh * ow));
        matmul_nt(gout_s, cols, gw_acc);
        for (std::int64_t i = 0; i < g.out_channels * patch; ++i) {
            grad_weight.flat(i) += gw_acc.flat(i);
        }
        // grad wrt input: gCols = W^T[patch, OC] * gOut_s -> matmul_tn, then col2im.
        matmul_tn(wmat, gout_s, gcols);
        col2im(gcols, s, g, in_h, in_w, grad_input);
        if (has_bias) {
            for (std::int64_t c = 0; c < g.out_channels; ++c) {
                double acc = 0.0;
                const float* row = gout_s.raw() + c * oh * ow;
                for (std::int64_t i = 0; i < oh * ow; ++i) acc += row[i];
                grad_bias.flat(c) += static_cast<float>(acc);
            }
        }
    }
}

void avgpool2d_forward(const Tensor& input, std::int64_t kernel, Tensor& out) {
    const std::int64_t n = input.dim(0);
    const std::int64_t c = input.dim(1);
    const std::int64_t h = input.dim(2);
    const std::int64_t w = input.dim(3);
    const std::int64_t oh = h / kernel;
    const std::int64_t ow = w / kernel;
    check(out.dim(2) == oh && out.dim(3) == ow, "avgpool: out shape mismatch");
    const float inv = 1.0F / static_cast<float>(kernel * kernel);
    for (std::int64_t s = 0; s < n; ++s) {
        for (std::int64_t ch = 0; ch < c; ++ch) {
            for (std::int64_t y = 0; y < oh; ++y) {
                for (std::int64_t x = 0; x < ow; ++x) {
                    float acc = 0.0F;
                    for (std::int64_t ky = 0; ky < kernel; ++ky) {
                        for (std::int64_t kx = 0; kx < kernel; ++kx) {
                            acc += input.at(s, ch, y * kernel + ky, x * kernel + kx);
                        }
                    }
                    out.at(s, ch, y, x) = acc * inv;
                }
            }
        }
    }
}

void avgpool2d_backward(const Tensor& grad_out, std::int64_t kernel, Tensor& grad_input) {
    grad_input.fill(0.0F);
    const std::int64_t n = grad_out.dim(0);
    const std::int64_t c = grad_out.dim(1);
    const std::int64_t oh = grad_out.dim(2);
    const std::int64_t ow = grad_out.dim(3);
    const float inv = 1.0F / static_cast<float>(kernel * kernel);
    for (std::int64_t s = 0; s < n; ++s) {
        for (std::int64_t ch = 0; ch < c; ++ch) {
            for (std::int64_t y = 0; y < oh; ++y) {
                for (std::int64_t x = 0; x < ow; ++x) {
                    const float gv = grad_out.at(s, ch, y, x) * inv;
                    for (std::int64_t ky = 0; ky < kernel; ++ky) {
                        for (std::int64_t kx = 0; kx < kernel; ++kx) {
                            grad_input.at(s, ch, y * kernel + ky, x * kernel + kx) += gv;
                        }
                    }
                }
            }
        }
    }
}

void maxpool2d_forward(const Tensor& input, std::int64_t kernel, Tensor& out,
                       std::vector<std::int64_t>& argmax) {
    const std::int64_t n = input.dim(0);
    const std::int64_t c = input.dim(1);
    const std::int64_t h = input.dim(2);
    const std::int64_t w = input.dim(3);
    const std::int64_t oh = h / kernel;
    const std::int64_t ow = w / kernel;
    argmax.assign(static_cast<std::size_t>(n * c * oh * ow), 0);
    std::int64_t oidx = 0;
    for (std::int64_t s = 0; s < n; ++s) {
        for (std::int64_t ch = 0; ch < c; ++ch) {
            for (std::int64_t y = 0; y < oh; ++y) {
                for (std::int64_t x = 0; x < ow; ++x, ++oidx) {
                    float best = -std::numeric_limits<float>::infinity();
                    std::int64_t best_idx = 0;
                    for (std::int64_t ky = 0; ky < kernel; ++ky) {
                        for (std::int64_t kx = 0; kx < kernel; ++kx) {
                            const std::int64_t iy = y * kernel + ky;
                            const std::int64_t ix = x * kernel + kx;
                            const float v = input.at(s, ch, iy, ix);
                            if (v > best) {
                                best = v;
                                best_idx = ((s * c + ch) * h + iy) * w + ix;
                            }
                        }
                    }
                    out.at(s, ch, y, x) = best;
                    argmax[static_cast<std::size_t>(oidx)] = best_idx;
                }
            }
        }
    }
}

void maxpool2d_backward(const Tensor& grad_out, const std::vector<std::int64_t>& argmax,
                        Tensor& grad_input) {
    grad_input.fill(0.0F);
    for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
        grad_input.flat(argmax[static_cast<std::size_t>(i)]) += grad_out.flat(i);
    }
}

void linear_forward(const Tensor& input, const Tensor& weight, const Tensor& bias,
                    Tensor& out) {
    matmul_nt(input, weight, out);
    if (bias.rank() == 1) {
        const std::int64_t n = out.dim(0);
        const std::int64_t f = out.dim(1);
        for (std::int64_t i = 0; i < n; ++i) {
            for (std::int64_t j = 0; j < f; ++j) out.at(i, j) += bias.flat(j);
        }
    }
}

void linear_backward(const Tensor& input, const Tensor& weight, const Tensor& grad_out,
                     Tensor& grad_input, Tensor& grad_weight, Tensor& grad_bias) {
    // grad_input[N,D] = grad_out[N,F] * weight[F,D]
    matmul(grad_out, weight, grad_input);
    // grad_weight[F,D] = grad_out^T[F,N] * input[N,D]
    matmul_tn(grad_out, input, grad_weight);
    if (grad_bias.rank() == 1) {
        grad_bias.fill(0.0F);
        const std::int64_t n = grad_out.dim(0);
        const std::int64_t f = grad_out.dim(1);
        for (std::int64_t i = 0; i < n; ++i) {
            for (std::int64_t j = 0; j < f; ++j) grad_bias.flat(j) += grad_out.at(i, j);
        }
    }
}

}  // namespace sia::tensor
