// Dense row-major float tensor (NCHW). This is the numeric substrate for
// ANN training; the SNN/simulator paths use integer buffers of their own
// (see snn/ and sim/) quantized through util/fixed_point.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "tensor/shape.hpp"
#include "util/rng.hpp"

namespace sia::tensor {

/// Owning dense float tensor. Value semantics; copies are deep.
class Tensor {
public:
    Tensor() = default;

    /// Zero-initialised tensor of the given shape.
    explicit Tensor(Shape shape);

    /// Construct from shape + existing data (must match numel).
    Tensor(Shape shape, std::vector<float> data);

    [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
    [[nodiscard]] std::int64_t numel() const noexcept { return shape_.numel(); }
    [[nodiscard]] std::size_t rank() const noexcept { return shape_.rank(); }
    [[nodiscard]] std::int64_t dim(std::size_t i) const { return shape_.dim(i); }

    [[nodiscard]] std::span<float> data() noexcept { return data_; }
    [[nodiscard]] std::span<const float> data() const noexcept { return data_; }

    [[nodiscard]] float* raw() noexcept { return data_.data(); }
    [[nodiscard]] const float* raw() const noexcept { return data_.data(); }

    /// Flat element access with bounds checking in debug builds only.
    [[nodiscard]] float& flat(std::int64_t i) noexcept { return data_[static_cast<std::size_t>(i)]; }
    [[nodiscard]] float flat(std::int64_t i) const noexcept {
        return data_[static_cast<std::size_t>(i)];
    }

    /// 4-D accessor (N, C, H, W); requires rank 4.
    [[nodiscard]] float& at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w);
    [[nodiscard]] float at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const;

    /// 2-D accessor (rows, cols); requires rank 2.
    [[nodiscard]] float& at(std::int64_t r, std::int64_t c);
    [[nodiscard]] float at(std::int64_t r, std::int64_t c) const;

    /// Fill every element with `v`.
    void fill(float v) noexcept;

    /// In-place elementwise helpers.
    void add_(const Tensor& other);
    void scale_(float s) noexcept;

    /// Reinterpret as a new shape with the same element count.
    [[nodiscard]] Tensor reshaped(Shape new_shape) const;

    /// Gaussian init with the given stddev (He/Kaiming handled by caller).
    void randn_(util::Rng& rng, float stddev);
    /// Uniform init in [-bound, bound].
    void rand_uniform_(util::Rng& rng, float bound);

    /// Reductions.
    [[nodiscard]] float sum() const noexcept;
    [[nodiscard]] float abs_max() const noexcept;

    [[nodiscard]] bool same_shape(const Tensor& other) const noexcept {
        return shape_ == other.shape_;
    }

private:
    Shape shape_;
    std::vector<float> data_;
};

/// Returns a tensor of the given shape filled with zeros.
[[nodiscard]] Tensor zeros(Shape shape);
/// Returns a tensor filled with ones.
[[nodiscard]] Tensor ones(Shape shape);

}  // namespace sia::tensor
