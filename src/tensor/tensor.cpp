#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sia::tensor {

Tensor::Tensor(Shape shape)
    : shape_(shape), data_(static_cast<std::size_t>(shape.numel()), 0.0F) {}

Tensor::Tensor(Shape shape, std::vector<float> data) : shape_(shape), data_(std::move(data)) {
    if (static_cast<std::int64_t>(data_.size()) != shape_.numel()) {
        throw std::invalid_argument("Tensor: data size does not match shape " +
                                    shape_.to_string());
    }
}

float& Tensor::at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
    return data_[static_cast<std::size_t>(((n * dim(1) + c) * dim(2) + h) * dim(3) + w)];
}

float Tensor::at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const {
    return data_[static_cast<std::size_t>(((n * dim(1) + c) * dim(2) + h) * dim(3) + w)];
}

float& Tensor::at(std::int64_t r, std::int64_t c) {
    return data_[static_cast<std::size_t>(r * dim(1) + c)];
}

float Tensor::at(std::int64_t r, std::int64_t c) const {
    return data_[static_cast<std::size_t>(r * dim(1) + c)];
}

void Tensor::fill(float v) noexcept { std::fill(data_.begin(), data_.end(), v); }

void Tensor::add_(const Tensor& other) {
    if (!same_shape(other)) throw std::invalid_argument("Tensor::add_: shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::scale_(float s) noexcept {
    for (float& v : data_) v *= s;
}

Tensor Tensor::reshaped(Shape new_shape) const {
    if (new_shape.numel() != numel()) {
        throw std::invalid_argument("Tensor::reshaped: element count mismatch");
    }
    return Tensor(new_shape, data_);
}

void Tensor::randn_(util::Rng& rng, float stddev) {
    for (float& v : data_) v = rng.normal(0.0F, stddev);
}

void Tensor::rand_uniform_(util::Rng& rng, float bound) {
    for (float& v : data_) v = rng.uniform(-bound, bound);
}

float Tensor::sum() const noexcept {
    double s = 0.0;
    for (const float v : data_) s += v;
    return static_cast<float>(s);
}

float Tensor::abs_max() const noexcept {
    float m = 0.0F;
    for (const float v : data_) m = std::max(m, std::abs(v));
    return m;
}

Tensor zeros(Shape shape) { return Tensor(shape); }

Tensor ones(Shape shape) {
    Tensor t(shape);
    t.fill(1.0F);
    return t;
}

}  // namespace sia::tensor
