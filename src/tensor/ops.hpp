// Dense tensor kernels: matmul, im2col convolution (forward + backward),
// pooling, and the small elementwise pieces the trainer needs. All
// kernels are single-threaded and deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace sia::tensor {

/// Convolution geometry shared by forward/backward and by the SIA
/// compiler (the hardware executes the same geometry event-driven).
struct ConvGeometry {
    std::int64_t in_channels = 0;
    std::int64_t out_channels = 0;
    std::int64_t kernel = 3;   ///< square kernel (paper PE is sized for 3x3; others supported)
    std::int64_t stride = 1;
    std::int64_t padding = 1;

    [[nodiscard]] std::int64_t out_size(std::int64_t in_size) const noexcept {
        return (in_size + 2 * padding - kernel) / stride + 1;
    }
};

/// C[m,n] = A[m,k] * B[k,n].
void matmul(const Tensor& a, const Tensor& b, Tensor& out);
/// C[m,n] = A^T[k,m]^T * B ... i.e. C = A_t' * B where a_t is [k,m].
void matmul_tn(const Tensor& a_t, const Tensor& b, Tensor& out);
/// C[m,n] = A[m,k] * B_t[n,k]^T.
void matmul_nt(const Tensor& a, const Tensor& b_t, Tensor& out);

/// Unfold one sample (C,H,W view inside a batch tensor) into columns
/// [C*k*k, OH*OW] with zero padding.
void im2col(const Tensor& input, std::int64_t sample, const ConvGeometry& g,
            std::int64_t in_h, std::int64_t in_w, Tensor& cols);

/// Fold columns back into an input-shaped gradient (accumulates).
void col2im(const Tensor& cols, std::int64_t sample, const ConvGeometry& g,
            std::int64_t in_h, std::int64_t in_w, Tensor& grad_input);

/// out[N,OC,OH,OW] = conv(input[N,IC,H,W], weight[OC,IC,k,k]) + bias[OC].
/// `bias` may be empty (rank 0) to skip bias addition.
void conv2d_forward(const Tensor& input, const Tensor& weight, const Tensor& bias,
                    const ConvGeometry& g, Tensor& out);

/// Backward pass: fills grad_input (same shape as input), grad_weight,
/// grad_bias (pass empty tensors sized appropriately; they are overwritten).
void conv2d_backward(const Tensor& input, const Tensor& weight, const Tensor& grad_out,
                     const ConvGeometry& g, Tensor& grad_input, Tensor& grad_weight,
                     Tensor& grad_bias);

/// Average pooling with square kernel and stride == kernel (the only form
/// the models use). out[N,C,H/k,W/k].
void avgpool2d_forward(const Tensor& input, std::int64_t kernel, Tensor& out);
void avgpool2d_backward(const Tensor& grad_out, std::int64_t kernel, Tensor& grad_input);

/// Max pooling with square kernel and stride == kernel; `argmax` records
/// the flat input index chosen per output element for the backward pass.
void maxpool2d_forward(const Tensor& input, std::int64_t kernel, Tensor& out,
                       std::vector<std::int64_t>& argmax);
void maxpool2d_backward(const Tensor& grad_out, const std::vector<std::int64_t>& argmax,
                        Tensor& grad_input);

/// out[N,F] = input[N,D] * weight[F,D]^T + bias[F].
void linear_forward(const Tensor& input, const Tensor& weight, const Tensor& bias,
                    Tensor& out);
void linear_backward(const Tensor& input, const Tensor& weight, const Tensor& grad_out,
                     Tensor& grad_input, Tensor& grad_weight, Tensor& grad_bias);

}  // namespace sia::tensor
