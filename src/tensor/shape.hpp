// Tensor shape: a small fixed-capacity dimension list with row-major
// stride computation. NCHW layout throughout the project.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>

namespace sia::tensor {

/// Shape of a dense row-major tensor; at most 4 dimensions (N, C, H, W).
/// Rank-0 means "empty/unshaped".
class Shape {
public:
    static constexpr std::size_t kMaxRank = 4;

    Shape() = default;

    Shape(std::initializer_list<std::int64_t> dims) {
        if (dims.size() > kMaxRank) throw std::invalid_argument("Shape: rank > 4");
        for (const auto d : dims) {
            if (d <= 0) throw std::invalid_argument("Shape: dims must be positive");
            dims_[rank_++] = d;
        }
    }

    [[nodiscard]] std::size_t rank() const noexcept { return rank_; }

    [[nodiscard]] std::int64_t dim(std::size_t i) const {
        if (i >= rank_) throw std::out_of_range("Shape::dim");
        return dims_[i];
    }

    [[nodiscard]] std::int64_t operator[](std::size_t i) const { return dim(i); }

    /// Total element count (1 for rank-0).
    [[nodiscard]] std::int64_t numel() const noexcept {
        std::int64_t n = 1;
        for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
        return n;
    }

    [[nodiscard]] bool operator==(const Shape& other) const noexcept {
        if (rank_ != other.rank_) return false;
        for (std::size_t i = 0; i < rank_; ++i) {
            if (dims_[i] != other.dims_[i]) return false;
        }
        return true;
    }
    [[nodiscard]] bool operator!=(const Shape& other) const noexcept { return !(*this == other); }

    [[nodiscard]] std::string to_string() const {
        std::string s = "[";
        for (std::size_t i = 0; i < rank_; ++i) {
            if (i > 0) s += ", ";
            s += std::to_string(dims_[i]);
        }
        return s + "]";
    }

private:
    std::array<std::int64_t, kMaxRank> dims_{};
    std::size_t rank_ = 0;
};

}  // namespace sia::tensor
