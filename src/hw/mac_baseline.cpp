#include "hw/mac_baseline.hpp"

namespace sia::hw {

MacArrayEstimate estimate_mac_array(const snn::SnnModel& model,
                                    const MacArrayConfig& config) {
    MacArrayEstimate est;
    est.dsp = config.macs;
    // ops_per_timestep counts 2 ops per MAC; a dense CNN pass executes
    // the same MAC volume once.
    const auto macs_total = static_cast<double>(model.ops_per_timestep()) / 2.0;
    const double effective_macs_per_cycle =
        static_cast<double>(config.macs) * config.utilization;
    est.cycles = static_cast<std::int64_t>(macs_total / effective_macs_per_cycle + 0.5);
    est.latency_ms = static_cast<double>(est.cycles) / (config.clock_mhz * 1e3);
    est.peak_gops = 2.0 * static_cast<double>(config.macs) * config.clock_mhz * 1e6 / 1e9;
    est.gops_per_dsp = est.dsp > 0 ? est.peak_gops / static_cast<double>(est.dsp) : 0.0;
    return est;
}

}  // namespace sia::hw
