#include "hw/resources.hpp"

namespace sia::hw {

namespace {

constexpr double kBram36Bytes = 4608.0;  // 36 kbit

/// One processing element: three 8-bit 2:1 muxes (4 LUT each), one 8-bit
/// adder (8 LUT + carry), a 16-bit partial-sum register, segment control.
ResourceVector pe_cost() {
    ResourceVector r;
    r.lut = 3 * 4 + 8 + 47 + 36;  // muxes + adder + weight select/addressing + window control
    r.ff = 16 + 24 + 12;          // partial sum + weight registers + control state
    return r;
}

/// Aggregation core: 16 batch-norm multiplier lanes (one DSP48E1 each,
/// 16x16 -> 32), threshold comparators, reset-by-subtraction adders,
/// mode/threshold registers.
ResourceVector aggregation_cost() {
    ResourceVector r;
    r.lut = 16 * 60 + 220;  // per-lane add/compare/reset + shared control
    r.ff = 16 * 48 + 96;
    r.dsp = 16;
    return r;
}

/// Controller / configuration FSM (Fig. 5) plus address generators.
ResourceVector controller_cost() {
    ResourceVector r;
    r.lut = 980;
    r.ff = 620;
    r.dsp = 1;  // address/stride multiply
    return r;
}

/// AXI endpoints, smartconnect slice, clocking.
ResourceVector axi_cost() {
    ResourceVector r;
    r.lut = 1450;
    r.ff = 1830;
    r.lutram = 158;  // AXI FIFOs map to distributed RAM
    r.bufg = 1;
    return r;
}

}  // namespace

std::int64_t bram36_for_bytes(std::int64_t bytes) noexcept {
    if (bytes <= 0) return 0;
    return static_cast<std::int64_t>(
        (static_cast<double>(bytes) + kBram36Bytes - 1.0) / kBram36Bytes);
}

double ResourceReport::lut_pct() const noexcept {
    return 100.0 * static_cast<double>(total.lut) / static_cast<double>(capacity.lut);
}
double ResourceReport::ff_pct() const noexcept {
    return 100.0 * static_cast<double>(total.ff) / static_cast<double>(capacity.ff);
}
double ResourceReport::dsp_pct() const noexcept {
    return 100.0 * static_cast<double>(total.dsp) / static_cast<double>(capacity.dsp);
}
double ResourceReport::bram_pct() const noexcept {
    return 100.0 * static_cast<double>(total.bram36) / static_cast<double>(capacity.bram36);
}
double ResourceReport::lutram_pct() const noexcept {
    return 100.0 * static_cast<double>(total.lutram) /
           static_cast<double>(capacity.lutram);
}
double ResourceReport::bufg_pct() const noexcept {
    return 100.0 * static_cast<double>(total.bufg) / static_cast<double>(capacity.bufg);
}

ResourceReport estimate_resources(const sim::SiaConfig& config) {
    ResourceReport rep;

    ResourceVector pes = pe_cost();
    const std::int64_t n_pe = config.pe_count();
    pes.lut *= n_pe;
    pes.ff *= n_pe;
    rep.blocks.push_back({"spiking core (" + std::to_string(n_pe) + " PEs)", pes});

    rep.blocks.push_back({"aggregation core", aggregation_cost()});
    rep.blocks.push_back({"controller & config", controller_cost()});
    rep.blocks.push_back({"AXI interfaces", axi_cost()});

    // Memory unit (§III-D): BRAM36 counts for each bank plus the stream
    // double-buffers the implementation needs for spike trains.
    ResourceVector mem;
    mem.bram36 = bram36_for_bytes(config.incoming_spike_bytes) +
                 bram36_for_bytes(config.residual_bytes) +
                 bram36_for_bytes(config.membrane_bytes) +
                 bram36_for_bytes(config.weight_bytes) +
                 bram36_for_bytes(config.output_bytes);
    mem.lut = 540;  // bank address decode / write-enable fabric
    mem.ff = 380;
    rep.blocks.push_back({"memory unit (banks)", mem});

    ResourceVector buffers;
    buffers.bram36 = 35;  // spike-train / configuration stream double buffers
    rep.blocks.push_back({"stream double-buffers", buffers});

    // Interconnect and glue: calibrated residual against the published
    // Vivado 2019.1 report (Table III).
    ResourceVector glue;
    glue.lut = 1190;
    glue.ff = 1135;
    rep.blocks.push_back({"interconnect & glue (calibrated)", glue});

    for (const auto& b : rep.blocks) rep.total += b.res;
    return rep;
}

}  // namespace sia::hw
