#include "hw/power.hpp"

namespace sia::hw {

namespace {
/// Nominal PL dynamic power of the prototype under sustained inference —
/// the calibration point that closes the budget to the paper's 1.54 W:
/// 1.25 (PS) + 0.105 (static) + 0.118 (clock) + 0.067 (activity) = 1.54.
constexpr double kNominalActivityWatts = 0.067;
}  // namespace

PowerReport estimate_power(const sim::SiaRunResult& result,
                           const sim::SiaConfig& sia_config,
                           const PowerConfig& power_config) {
    PowerReport rep;
    rep.ps_watts = power_config.ps_watts;
    rep.pl_static_watts = power_config.pl_static_watts;
    rep.runtime_ms = result.total_ms(sia_config);

    double dynamic_joules = 0.0;
    std::int64_t bram_bytes = 0;
    std::int64_t axi_bytes = 0;
    std::int64_t aggregates = 0;
    for (const auto& s : result.layer_stats) {
        dynamic_joules +=
            static_cast<double>(s.event_additions) * power_config.energy_per_pe_add;
        aggregates += s.aggregate;
        // DMA cycles move dma_bytes_per_cycle bytes each.
        axi_bytes += static_cast<std::int64_t>(static_cast<double>(s.dma) *
                                               sia_config.dma_bytes_per_cycle);
        axi_bytes += (s.mmio / sia_config.mmio_cycles_per_word) * 4;
    }
    // Membrane read+write per aggregate retirement (2 bytes each way).
    bram_bytes += aggregates * 4;
    dynamic_joules += static_cast<double>(aggregates) * power_config.energy_per_aggregate;
    dynamic_joules += static_cast<double>(bram_bytes) * power_config.energy_per_bram_byte;
    dynamic_joules += static_cast<double>(axi_bytes) * power_config.energy_per_axi_byte;

    const double runtime_s = rep.runtime_ms / 1e3;
    const double activity_watts = runtime_s > 0 ? dynamic_joules / runtime_s : 0.0;
    rep.pl_dynamic_watts = power_config.pl_clock_watts + activity_watts;
    rep.total_watts = rep.ps_watts + rep.pl_static_watts + rep.pl_dynamic_watts;
    rep.energy_mj = rep.total_watts * runtime_s * 1e3;

    const double gops = result.effective_gops(sia_config);
    rep.gops_per_watt = rep.total_watts > 0 ? gops / rep.total_watts : 0.0;
    return rep;
}

double rated_board_watts(const PowerConfig& power_config) {
    return power_config.ps_watts + power_config.pl_static_watts +
           power_config.pl_clock_watts + kNominalActivityWatts;
}

}  // namespace sia::hw
