// Prior-art comparator specifications for Table IV.
//
// The paper's Table IV compares the SIA against five published FPGA CNN
// accelerators by their *reported* numbers. We encode those
// specifications verbatim (platform, PE count, clock, throughput, DSP,
// power where published) and recompute the derived columns (GOPS/PE,
// GOPS/W, GOPS/DSP) so the table regenerates from first principles.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/config.hpp"

namespace sia::hw {

struct AcceleratorSpec {
    std::string citation;   ///< e.g. "[18]"
    std::string platform;
    std::optional<std::int64_t> pes;
    double clock_mhz = 0.0;
    double gops = 0.0;
    std::optional<double> power_w;
    std::optional<std::int64_t> dsp;

    [[nodiscard]] std::optional<double> gops_per_pe() const {
        if (!pes || *pes == 0) return std::nullopt;
        return gops / static_cast<double>(*pes);
    }
    [[nodiscard]] std::optional<double> gops_per_watt() const {
        if (!power_w || *power_w == 0.0) return std::nullopt;
        return gops / *power_w;
    }
    [[nodiscard]] std::optional<double> gops_per_dsp() const {
        if (!dsp || *dsp == 0) return std::nullopt;
        return gops / static_cast<double>(*dsp);
    }
};

/// The five comparators of Table IV, specs as published.
[[nodiscard]] std::vector<AcceleratorSpec> prior_art_table();

/// This work's row, derived from the SIA configuration and the rated
/// board power (peak throughput convention, as in the paper).
[[nodiscard]] AcceleratorSpec this_work_spec(const sim::SiaConfig& config,
                                             double board_watts, std::int64_t dsp_used);

}  // namespace sia::hw
