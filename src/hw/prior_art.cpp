#include "hw/prior_art.hpp"

namespace sia::hw {

std::vector<AcceleratorSpec> prior_art_table() {
    std::vector<AcceleratorSpec> specs;
    // [18] Gilan et al., real-time object recognition, ZC706.
    specs.push_back({"[18]", "ZC706", 576, 200.0, 198.1, std::nullopt, 576});
    // [19] Qiu et al., embedded-FPGA VGG accelerator, ZC706 (9.63 W).
    specs.push_back({"[19]", "ZC706", 780, 150.0, 187.8, 187.8 / 14.22, 780});
    // [20] Chen & Ruan, channel-oriented PE array, VC707.
    specs.push_back({"[20]", "VC707", 64, 200.0, 12.5, std::nullopt, std::nullopt});
    // [21] Li et al., reconfigurable CNN accelerator, VC709.
    specs.push_back({"[21]", "VC709", 664, 200.0, 220.0, 220.0 / 22.9, 664});
    // [22] Guo et al., Angel-Eye, XC7Z020.
    specs.push_back({"[22]", "XC7Z020", 12, 200.0, 187.80, 187.80 / 19.50, 400});
    return specs;
}

AcceleratorSpec this_work_spec(const sim::SiaConfig& config, double board_watts,
                               std::int64_t dsp_used) {
    AcceleratorSpec spec;
    spec.citation = "This Work";
    spec.platform = "PYNQ-Z2";
    spec.pes = config.pe_count();
    spec.clock_mhz = config.clock_mhz;
    spec.gops = config.peak_gops();
    spec.power_w = board_watts;
    spec.dsp = dsp_used;
    return spec;
}

}  // namespace sia::hw
