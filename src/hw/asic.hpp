// TSMC 40 nm ASIC projection (§V, last paragraph): the paper projects
// the SIA to 192 GOPS at 500 MHz in 11 mm^2 consuming 2.17 W. This
// module reproduces that projection methodology: frequency scaling of
// throughput, gate/macro area roll-up, and dynamic+leakage power at the
// scaled node.
#pragma once

#include "sim/config.hpp"

namespace sia::hw {

struct AsicConfig {
    double clock_mhz = 500.0;

    // Area model (40 nm, post-synthesis + memory macros).
    double pe_area_mm2 = 0.021;          ///< one PE incl. local weight regs
    double aggregation_area_mm2 = 0.65;  ///< 16 MAC lanes + activation
    double control_area_mm2 = 0.42;
    double sram_area_mm2_per_kb = 0.027; ///< 6T SRAM macro density
    double interconnect_overhead = 0.18; ///< fraction added for routing/pads

    // Power model.
    double core_volts = 0.9;
    double dynamic_watts_per_gops = 0.0095;
    double leakage_watts = 0.35;
};

struct AsicProjection {
    double throughput_gops = 0.0;
    double area_mm2 = 0.0;
    double power_w = 0.0;
    double gops_per_watt = 0.0;
    double clock_mhz = 0.0;
};

/// Project the FPGA-validated design to the ASIC node.
[[nodiscard]] AsicProjection project_asic(const sim::SiaConfig& fpga,
                                          const AsicConfig& asic = {});

}  // namespace sia::hw
