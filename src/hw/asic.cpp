#include "hw/asic.hpp"

namespace sia::hw {

AsicProjection project_asic(const sim::SiaConfig& fpga, const AsicConfig& asic) {
    AsicProjection proj;
    proj.clock_mhz = asic.clock_mhz;
    // Throughput scales with clock (same PE array, same ops/cycle).
    proj.throughput_gops = fpga.peak_gops() * asic.clock_mhz / fpga.clock_mhz;

    const double mem_kb =
        static_cast<double>(fpga.incoming_spike_bytes + fpga.residual_bytes +
                            fpga.membrane_bytes + fpga.weight_bytes + fpga.output_bytes) /
        1024.0;
    const double core_mm2 = static_cast<double>(fpga.pe_count()) * asic.pe_area_mm2 +
                            asic.aggregation_area_mm2 + asic.control_area_mm2 +
                            mem_kb * asic.sram_area_mm2_per_kb;
    proj.area_mm2 = core_mm2 * (1.0 + asic.interconnect_overhead);

    proj.power_w =
        asic.leakage_watts + proj.throughput_gops * asic.dynamic_watts_per_gops;
    proj.gops_per_watt = proj.power_w > 0 ? proj.throughput_gops / proj.power_w : 0.0;
    return proj;
}

}  // namespace sia::hw
