// FPGA resource model (Table III).
//
// Block-level analytic estimates for the SIA on the PYNQ-Z2
// (XC7Z020-1CLG400C). Primitive costs use standard 7-series mappings
// (one 6-LUT per two 2:1-mux bits, one LUT + carry per adder bit, one
// DSP48E1 per 16x16 batch-norm multiplier lane, BRAM36 = 4.5 kB); the
// residual "interconnect & control glue" block is calibrated so the
// totals land on the paper's published utilisation, and every block row
// is reported so the calibration is visible rather than hidden.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hpp"

namespace sia::hw {

struct ResourceVector {
    std::int64_t lut = 0;
    std::int64_t ff = 0;
    std::int64_t dsp = 0;
    std::int64_t bram36 = 0;
    std::int64_t lutram = 0;
    std::int64_t bufg = 0;

    ResourceVector& operator+=(const ResourceVector& o) noexcept {
        lut += o.lut;
        ff += o.ff;
        dsp += o.dsp;
        bram36 += o.bram36;
        lutram += o.lutram;
        bufg += o.bufg;
        return *this;
    }
};

struct BlockUsage {
    std::string name;
    ResourceVector res;
};

/// Device capacity (PYNQ-Z2 / XC7Z020).
struct DeviceCapacity {
    std::int64_t lut = 53200;
    std::int64_t ff = 105400;
    std::int64_t dsp = 220;
    std::int64_t bram36 = 140;
    std::int64_t lutram = 17400;
    std::int64_t bufg = 32;
};

struct ResourceReport {
    std::vector<BlockUsage> blocks;
    ResourceVector total;
    DeviceCapacity capacity;

    [[nodiscard]] double lut_pct() const noexcept;
    [[nodiscard]] double ff_pct() const noexcept;
    [[nodiscard]] double dsp_pct() const noexcept;
    [[nodiscard]] double bram_pct() const noexcept;
    [[nodiscard]] double lutram_pct() const noexcept;
    [[nodiscard]] double bufg_pct() const noexcept;
};

/// Estimate resources for a SIA instance with the given configuration.
[[nodiscard]] ResourceReport estimate_resources(const sim::SiaConfig& config);

/// Number of BRAM36 primitives to hold `bytes` (4.5 kB each).
[[nodiscard]] std::int64_t bram36_for_bytes(std::int64_t bytes) noexcept;

}  // namespace sia::hw
