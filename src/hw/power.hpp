// Power and energy model.
//
// Total board power = PS (ZYNQ ARM subsystem) + PL static + PL dynamic,
// where PL dynamic is activity-based: energy per PE addition, per
// aggregation retirement (DSP multiply + compare), per BRAM byte and per
// AXI byte, integrated over a simulated run. The fixed terms are
// calibrated so the reference workload reproduces the paper's 1.54 W
// board figure; the activity terms use standard 28 nm FPGA energy
// coefficients so ablations (activity sweeps) respond realistically.
#pragma once

#include "sim/config.hpp"
#include "sim/sia.hpp"

namespace sia::hw {

struct PowerConfig {
    double ps_watts = 1.25;         ///< ZYNQ PS subsystem (ARM, DDR PHY)
    double pl_static_watts = 0.105; ///< PL leakage at 25C

    // Dynamic energy coefficients (joules per event).
    double energy_per_pe_add = 3.2e-12;       ///< 8-bit add + mux select
    double energy_per_aggregate = 9.5e-12;    ///< DSP multiply + compare + reset
    double energy_per_bram_byte = 1.8e-12;
    double energy_per_axi_byte = 12.0e-12;
    /// Clock tree + idle toggle of the PL at 100 MHz, in watts.
    double pl_clock_watts = 0.118;
};

struct PowerReport {
    double ps_watts = 0.0;
    double pl_static_watts = 0.0;
    double pl_dynamic_watts = 0.0;
    double total_watts = 0.0;
    double energy_mj = 0.0;        ///< energy for the simulated run
    double runtime_ms = 0.0;
    double gops_per_watt = 0.0;    ///< effective GOPS / total W
};

/// Estimate power for a completed simulation run.
[[nodiscard]] PowerReport estimate_power(const sim::SiaRunResult& result,
                                         const sim::SiaConfig& sia_config,
                                         const PowerConfig& power_config = {});

/// The board-level rated power of the prototype (paper: 1.54 W) — the
/// fixed terms plus nominal dynamic activity; used by Table III/IV.
[[nodiscard]] double rated_board_watts(const PowerConfig& power_config = {});

}  // namespace sia::hw
