// Conventional dense MAC-array baseline.
//
// The prior-art rows of Table IV are DSP-based dense CNN accelerators.
// Beyond quoting their published specs, this analytic model lets the
// ablation benches compare the SIA's mux+adder event-driven PEs against
// a dense MAC array *mechanistically*: same network, same clock, one
// DSP-backed MAC per PE, cycles = dense MACs / array size.
#pragma once

#include <cstdint>

#include "snn/model.hpp"

namespace sia::hw {

struct MacArrayConfig {
    std::int64_t macs = 64;       ///< parallel MAC units (each uses one DSP)
    double clock_mhz = 100.0;
    double utilization = 0.85;    ///< achievable fraction of peak (dataflow losses)
};

struct MacArrayEstimate {
    std::int64_t cycles = 0;      ///< per inference (T timesteps of dense compute
                                  ///  collapse to one dense pass for a CNN)
    double latency_ms = 0.0;
    double peak_gops = 0.0;
    double gops_per_dsp = 0.0;
    std::int64_t dsp = 0;
};

/// Estimate a dense CNN execution of the same topology (one pass, no
/// temporal dimension — the ANN equivalent of the SNN model).
[[nodiscard]] MacArrayEstimate estimate_mac_array(const snn::SnnModel& model,
                                                  const MacArrayConfig& config = {});

}  // namespace sia::hw
