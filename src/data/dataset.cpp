#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace sia::data {

void standardize(Dataset& reference, std::vector<Dataset*> others) {
    if (reference.size() == 0) return;
    const std::int64_t c = reference.images.dim(1);
    const std::int64_t hw = reference.images.dim(2) * reference.images.dim(3);
    const std::int64_t n = reference.size();

    std::vector<float> mean(static_cast<std::size_t>(c), 0.0F);
    std::vector<float> inv_std(static_cast<std::size_t>(c), 1.0F);
    for (std::int64_t ch = 0; ch < c; ++ch) {
        util::RunningStat stat;
        for (std::int64_t s = 0; s < n; ++s) {
            const float* p = reference.images.raw() + (s * c + ch) * hw;
            for (std::int64_t i = 0; i < hw; ++i) stat.add(p[i]);
        }
        mean[static_cast<std::size_t>(ch)] = static_cast<float>(stat.mean());
        const double sd = stat.stddev();
        inv_std[static_cast<std::size_t>(ch)] =
            sd > 1e-8 ? static_cast<float>(1.0 / sd) : 1.0F;
    }

    const auto apply = [&](Dataset& ds) {
        const std::int64_t m = ds.size();
        for (std::int64_t s = 0; s < m; ++s) {
            for (std::int64_t ch = 0; ch < c; ++ch) {
                float* p = ds.images.raw() + (s * c + ch) * hw;
                for (std::int64_t i = 0; i < hw; ++i) {
                    p[i] = (p[i] - mean[static_cast<std::size_t>(ch)]) *
                           inv_std[static_cast<std::size_t>(ch)];
                }
            }
        }
    };
    apply(reference);
    for (Dataset* ds : others) {
        if (ds != nullptr) apply(*ds);
    }
}

void normalize01(Dataset& reference, std::vector<Dataset*> others) {
    if (reference.size() == 0) return;
    const std::int64_t c = reference.images.dim(1);
    const std::int64_t hw = reference.images.dim(2) * reference.images.dim(3);
    const std::int64_t n = reference.size();

    std::vector<float> lo(static_cast<std::size_t>(c), 0.0F);
    std::vector<float> inv_range(static_cast<std::size_t>(c), 1.0F);
    for (std::int64_t ch = 0; ch < c; ++ch) {
        float mn = reference.images.at(0, ch, 0, 0);
        float mx = mn;
        for (std::int64_t s = 0; s < n; ++s) {
            const float* p = reference.images.raw() + (s * c + ch) * hw;
            for (std::int64_t i = 0; i < hw; ++i) {
                mn = std::min(mn, p[i]);
                mx = std::max(mx, p[i]);
            }
        }
        lo[static_cast<std::size_t>(ch)] = mn;
        inv_range[static_cast<std::size_t>(ch)] = mx > mn ? 1.0F / (mx - mn) : 1.0F;
    }

    const auto apply = [&](Dataset& ds) {
        const std::int64_t m = ds.size();
        for (std::int64_t s = 0; s < m; ++s) {
            for (std::int64_t ch = 0; ch < c; ++ch) {
                float* p = ds.images.raw() + (s * c + ch) * hw;
                for (std::int64_t i = 0; i < hw; ++i) {
                    p[i] = std::clamp((p[i] - lo[static_cast<std::size_t>(ch)]) *
                                          inv_range[static_cast<std::size_t>(ch)],
                                      0.0F, 1.0F);
                }
            }
        }
    };
    apply(reference);
    for (Dataset* ds : others) {
        if (ds != nullptr) apply(*ds);
    }
}

}  // namespace sia::data
