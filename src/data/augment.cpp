#include "data/augment.hpp"

namespace sia::data {

Dataset augment(const Dataset& input, const AugmentConfig& config) {
    const std::int64_t n = input.size();
    const std::int64_t c = input.images.dim(1);
    const std::int64_t h = input.images.dim(2);
    const std::int64_t w = input.images.dim(3);
    const std::int64_t total = n * (1 + config.copies);

    Dataset out;
    out.classes = input.classes;
    out.images = tensor::Tensor(tensor::Shape{total, c, h, w});
    out.labels.resize(static_cast<std::size_t>(total));

    // Originals first.
    std::copy(input.images.raw(), input.images.raw() + n * c * h * w, out.images.raw());
    std::copy(input.labels.begin(), input.labels.end(), out.labels.begin());

    util::Rng rng(config.seed);
    std::int64_t dst = n;
    for (std::int64_t copy = 0; copy < config.copies; ++copy) {
        for (std::int64_t s = 0; s < n; ++s, ++dst) {
            out.labels[static_cast<std::size_t>(dst)] = input.labels[static_cast<std::size_t>(s)];
            const auto dy = rng.integer(-config.pad, config.pad);
            const auto dx = rng.integer(-config.pad, config.pad);
            const bool flip = config.horizontal_flip && rng.bernoulli(0.5);
            for (std::int64_t ch = 0; ch < c; ++ch) {
                for (std::int64_t y = 0; y < h; ++y) {
                    for (std::int64_t x = 0; x < w; ++x) {
                        const std::int64_t sx0 = flip ? (w - 1 - x) : x;
                        const std::int64_t sy = y + dy;
                        const std::int64_t sx = sx0 + dx;
                        const float v = (sy >= 0 && sy < h && sx >= 0 && sx < w)
                                            ? input.images.at(s, ch, sy, sx)
                                            : 0.0F;
                        out.images.at(dst, ch, y, x) = v;
                    }
                }
            }
        }
    }
    return out;
}

}  // namespace sia::data
