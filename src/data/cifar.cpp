#include "data/cifar.hpp"

#include <cstdint>
#include <fstream>
#include <vector>

#include "util/log.hpp"

namespace sia::data {

namespace {

constexpr std::int64_t kRecordBytes = 1 + 3 * 32 * 32;

/// Append records from one CIFAR batch file; returns false on I/O error.
bool append_file(const std::string& path, std::vector<float>& pixels,
                 std::vector<std::int64_t>& labels, std::int64_t max_records) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::vector<unsigned char> record(static_cast<std::size_t>(kRecordBytes));
    std::int64_t taken = 0;
    while (in.read(reinterpret_cast<char*>(record.data()), kRecordBytes)) {
        labels.push_back(record[0]);
        for (std::size_t i = 1; i < record.size(); ++i) {
            pixels.push_back(static_cast<float>(record[i]) / 255.0F);
        }
        if (max_records > 0 && ++taken >= max_records) break;
    }
    return !labels.empty();
}

Dataset to_dataset(std::vector<float> pixels, std::vector<std::int64_t> labels) {
    Dataset ds;
    ds.classes = 10;
    const auto n = static_cast<std::int64_t>(labels.size());
    ds.images = tensor::Tensor(tensor::Shape{n, 3, 32, 32}, std::move(pixels));
    ds.labels = std::move(labels);
    return ds;
}

}  // namespace

std::optional<CifarSplits> load_cifar10(const std::string& dir, std::int64_t max_train,
                                        std::int64_t max_test) {
    std::vector<float> train_pixels;
    std::vector<std::int64_t> train_labels;
    for (int b = 1; b <= 5; ++b) {
        const std::string path = dir + "/data_batch_" + std::to_string(b) + ".bin";
        const std::int64_t remaining =
            max_train > 0 ? max_train - static_cast<std::int64_t>(train_labels.size()) : 0;
        if (max_train > 0 && remaining <= 0) break;
        if (!append_file(path, train_pixels, train_labels, remaining)) {
            if (b == 1) return std::nullopt;  // directory absent/corrupt
            break;
        }
    }
    if (train_labels.empty()) return std::nullopt;

    std::vector<float> test_pixels;
    std::vector<std::int64_t> test_labels;
    if (!append_file(dir + "/test_batch.bin", test_pixels, test_labels, max_test)) {
        return std::nullopt;
    }

    CifarSplits splits;
    splits.train = to_dataset(std::move(train_pixels), std::move(train_labels));
    splits.test = to_dataset(std::move(test_pixels), std::move(test_labels));
    normalize01(splits.train, {&splits.test});
    util::log_info("loaded CIFAR-10: ", splits.train.size(), " train / ",
                   splits.test.size(), " test from ", dir);
    return splits;
}

std::string default_cifar_dir() { return "data/cifar-10-batches-bin"; }

}  // namespace sia::data
