// Synthetic CIFAR-like dataset.
//
// Substitution for CIFAR-10 (not shippable in the offline environment):
// each of the 10 classes is defined by a deterministic low-frequency
// colour texture (a sum of class-specific 2-D sinusoids and Gaussian
// blobs). Samples apply a random spatial shift, per-sample contrast and
// brightness jitter, and additive Gaussian pixel noise, so the task
// requires learning translation-tolerant colour/texture features — easy
// enough that the reduced-width ResNet/VGG reach high accuracy in a few
// CPU epochs, hard enough that quantization and SNN conversion losses
// are visible (the property Figs. 7/9 measure).
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace sia::data {

struct SyntheticConfig {
    std::int64_t classes = 10;
    std::int64_t train_per_class = 200;
    std::int64_t test_per_class = 50;
    std::int64_t channels = 3;
    std::int64_t size = 32;       ///< square images
    float noise_stddev = 0.35F;   ///< additive pixel noise
    std::int64_t max_shift = 3;   ///< uniform shift in [-max_shift, max_shift]
    float jitter = 0.25F;         ///< contrast/brightness jitter amplitude
    std::uint64_t seed = util::kDefaultSeed;
};

struct TrainTest {
    Dataset train;
    Dataset test;
};

/// Generate train + test splits from the same class definitions (test
/// uses an independent noise stream).
[[nodiscard]] TrainTest make_synthetic(const SyntheticConfig& config);

}  // namespace sia::data
