#include "data/synthetic.hpp"

#include <cmath>
#include <numbers>
#include <vector>

namespace sia::data {

namespace {

/// Class-defining texture parameters, drawn once per class.
struct ClassProto {
    // Three sinusoid components per channel: amplitude, fx, fy, phase.
    struct Wave {
        float amp, fx, fy, phase;
    };
    std::vector<Wave> waves;  // channels * 3
    // Two Gaussian blobs: centre (normalised), sigma, per-channel gain.
    struct Blob {
        float cx, cy, sigma;
        float gain[3];
    };
    Blob blobs[2];
};

ClassProto make_proto(util::Rng& rng, std::int64_t channels) {
    ClassProto p;
    p.waves.reserve(static_cast<std::size_t>(channels) * 3);
    for (std::int64_t c = 0; c < channels; ++c) {
        for (int k = 0; k < 3; ++k) {
            ClassProto::Wave w;
            w.amp = rng.uniform(0.25F, 0.6F);
            w.fx = rng.uniform(0.5F, 3.0F);
            w.fy = rng.uniform(0.5F, 3.0F);
            w.phase = rng.uniform(0.0F, 2.0F * std::numbers::pi_v<float>);
            p.waves.push_back(w);
        }
    }
    for (auto& blob : p.blobs) {
        blob.cx = rng.uniform(0.2F, 0.8F);
        blob.cy = rng.uniform(0.2F, 0.8F);
        blob.sigma = rng.uniform(0.08F, 0.2F);
        for (float& g : blob.gain) g = rng.uniform(-0.8F, 0.8F);
    }
    return p;
}

/// Render the prototype at pixel (y, x) for channel c, with the sample's
/// sub-pattern shift applied.
float render(const ClassProto& p, std::int64_t c, float y, float x) {
    float v = 0.0F;
    for (int k = 0; k < 3; ++k) {
        const auto& w = p.waves[static_cast<std::size_t>(c * 3 + k)];
        v += w.amp * std::sin(2.0F * std::numbers::pi_v<float> * (w.fx * x + w.fy * y) +
                              w.phase);
    }
    for (const auto& blob : p.blobs) {
        const float dx = x - blob.cx;
        const float dy = y - blob.cy;
        v += blob.gain[c % 3] *
             std::exp(-(dx * dx + dy * dy) / (2.0F * blob.sigma * blob.sigma));
    }
    return v;
}

Dataset generate_split(const std::vector<ClassProto>& protos, const SyntheticConfig& cfg,
                       std::int64_t per_class, util::Rng& rng) {
    const std::int64_t n = cfg.classes * per_class;
    Dataset ds;
    ds.classes = cfg.classes;
    ds.images = tensor::Tensor(tensor::Shape{n, cfg.channels, cfg.size, cfg.size});
    ds.labels.resize(static_cast<std::size_t>(n));

    const auto sz = static_cast<float>(cfg.size);
    std::int64_t idx = 0;
    // Interleave classes so truncated prefixes (Dataset::take) stay balanced.
    for (std::int64_t i = 0; i < per_class; ++i) {
        for (std::int64_t cls = 0; cls < cfg.classes; ++cls, ++idx) {
            ds.labels[static_cast<std::size_t>(idx)] = cls;
            const auto& proto = protos[static_cast<std::size_t>(cls)];
            const auto shift_x = static_cast<float>(rng.integer(-cfg.max_shift, cfg.max_shift));
            const auto shift_y = static_cast<float>(rng.integer(-cfg.max_shift, cfg.max_shift));
            const float contrast = 1.0F + rng.uniform(-cfg.jitter, cfg.jitter);
            const float brightness = rng.uniform(-cfg.jitter, cfg.jitter);
            for (std::int64_t c = 0; c < cfg.channels; ++c) {
                for (std::int64_t y = 0; y < cfg.size; ++y) {
                    for (std::int64_t x = 0; x < cfg.size; ++x) {
                        const float yn = (static_cast<float>(y) + shift_y) / sz;
                        const float xn = (static_cast<float>(x) + shift_x) / sz;
                        const float clean = render(proto, c, yn, xn);
                        ds.images.at(idx, c, y, x) = contrast * clean + brightness +
                                                     rng.normal(0.0F, cfg.noise_stddev);
                    }
                }
            }
        }
    }
    return ds;
}

}  // namespace

TrainTest make_synthetic(const SyntheticConfig& config) {
    util::Rng proto_rng(config.seed);
    std::vector<ClassProto> protos;
    protos.reserve(static_cast<std::size_t>(config.classes));
    for (std::int64_t c = 0; c < config.classes; ++c) {
        protos.push_back(make_proto(proto_rng, config.channels));
    }

    util::Rng train_rng(config.seed ^ 0x7261696EULL);  // "rain"
    util::Rng test_rng(config.seed ^ 0x74657374ULL);   // "test"
    TrainTest tt;
    tt.train = generate_split(protos, config, config.train_per_class, train_rng);
    tt.test = generate_split(protos, config, config.test_per_class, test_rng);
    normalize01(tt.train, {&tt.test});
    return tt;
}

}  // namespace sia::data
