// In-memory labelled image dataset (NCHW float), shared by training,
// conversion calibration and the SNN/simulator evaluation paths.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/tensor.hpp"

namespace sia::data {

struct Dataset {
    tensor::Tensor images;              ///< [N, C, H, W]
    std::vector<std::int64_t> labels;   ///< size N, values in [0, classes)
    std::int64_t classes = 10;

    [[nodiscard]] std::int64_t size() const noexcept {
        return images.rank() == 4 ? images.dim(0) : 0;
    }

    /// Copy of sample `i` as a batch-of-one tensor.
    [[nodiscard]] tensor::Tensor sample(std::int64_t i) const {
        const std::int64_t plane = images.dim(1) * images.dim(2) * images.dim(3);
        std::vector<float> buf(images.raw() + i * plane, images.raw() + (i + 1) * plane);
        return tensor::Tensor(
            tensor::Shape{1, images.dim(1), images.dim(2), images.dim(3)}, std::move(buf));
    }

    /// First `n` samples as a new dataset (used to cap bench runtimes).
    [[nodiscard]] Dataset take(std::int64_t n) const {
        n = std::min<std::int64_t>(n, size());
        const std::int64_t plane = images.dim(1) * images.dim(2) * images.dim(3);
        std::vector<float> buf(images.raw(), images.raw() + n * plane);
        Dataset out;
        out.images = tensor::Tensor(
            tensor::Shape{n, images.dim(1), images.dim(2), images.dim(3)}, std::move(buf));
        out.labels.assign(labels.begin(), labels.begin() + n);
        out.classes = classes;
        return out;
    }
};

/// Per-channel standardisation: (x - mean_c) / std_c computed over the
/// dataset itself; applies the same statistics to `others` (test sets).
void standardize(Dataset& reference, std::vector<Dataset*> others);

/// Per-channel min-max normalisation into [0, 1] using the reference
/// dataset's statistics; `others` are mapped with the same affine and
/// clamped. This is the input convention of the spike encoder (pixels in
/// [0, 1] thermometer-code into at most T spikes), so every model that
/// will be SNN-converted trains on normalize01 data.
void normalize01(Dataset& reference, std::vector<Dataset*> others);

}  // namespace sia::data
