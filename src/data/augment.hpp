// Training-time augmentation: pad-and-crop plus horizontal flip, the
// standard CIFAR recipe. Applied as a dataset expansion pass so the
// trainer stays a pure SGD loop.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace sia::data {

struct AugmentConfig {
    std::int64_t pad = 4;         ///< zero padding before random crop
    bool horizontal_flip = true;
    std::int64_t copies = 1;      ///< augmented copies appended per sample
    std::uint64_t seed = util::kDefaultSeed;
};

/// Returns the original dataset plus `copies` augmented duplicates of
/// every sample (labels repeated accordingly).
[[nodiscard]] Dataset augment(const Dataset& input, const AugmentConfig& config);

}  // namespace sia::data
