// Synthetic DVS-style event streams.
//
// The paper motivates the SIA with event-driven inputs (the ZYNQ "can
// transfer event-driven data streams directly to the SIA", §IV). Real
// DVS recordings are not available offline, so this module synthesises
// address-event streams from moving-object scenes; the event-driven
// example application feeds them straight into the accelerator without
// frame conversion.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace sia::data {

/// One address event: pixel coordinates, timestep, polarity.
struct Event {
    std::int16_t x = 0;
    std::int16_t y = 0;
    std::int32_t t = 0;      ///< timestep index
    bool on = true;          ///< polarity (brightness increase)
};

struct EventSceneConfig {
    std::int64_t size = 32;        ///< sensor resolution (square)
    std::int64_t timesteps = 8;
    std::int64_t objects = 2;      ///< moving bright blobs
    float speed = 1.5F;            ///< pixels per timestep
    float event_rate = 0.9F;       ///< probability a crossing pixel fires
    float noise_rate = 0.002F;     ///< background noise events per pixel per step
    std::uint64_t seed = util::kDefaultSeed;
};

/// Generate a stream sorted by timestep.
[[nodiscard]] std::vector<Event> make_event_scene(const EventSceneConfig& config);

/// Rasterise events into spike frames [T, 2, H, W] (channel 0 = ON,
/// channel 1 = OFF), the input format of the SNN front-end. Events
/// outside the sensor bounds or the [0, timesteps) range are dropped;
/// `dropped` (when non-null) receives their count.
[[nodiscard]] tensor::Tensor events_to_frames(const std::vector<Event>& events,
                                              std::int64_t size, std::int64_t timesteps,
                                              std::int64_t* dropped);
/// As above, but out-of-range events are reported through util::log
/// (one warning per call) instead of a counter — dropping input
/// events is a data defect the caller should hear about, not silence.
[[nodiscard]] tensor::Tensor events_to_frames(const std::vector<Event>& events,
                                              std::int64_t size, std::int64_t timesteps);

/// Chunk a stream into consecutive event windows — the serving unit of
/// a streaming session. Window w holds frames [W', 2, H, W] covering
/// global timesteps [w*window_steps, min((w+1)*window_steps,
/// total_timesteps)), with event timestamps rebased to window-local
/// steps, so concatenating the windows along T reproduces
/// events_to_frames(events, size, total_timesteps) exactly (the
/// chunking half of the sessions' bit-identity contract). The tail
/// window is short when window_steps does not divide total_timesteps.
/// `dropped` (when non-null) receives the out-of-range event count.
/// Throws std::invalid_argument when window_steps < 1.
[[nodiscard]] std::vector<tensor::Tensor> events_to_windows(
    const std::vector<Event>& events, std::int64_t size,
    std::int64_t total_timesteps, std::int64_t window_steps,
    std::int64_t* dropped = nullptr);

}  // namespace sia::data
