// CIFAR-10 binary-format loader.
//
// The offline environment ships no dataset files; when a directory with
// the standard `data_batch_*.bin` / `test_batch.bin` files is present
// (e.g. data/cifar-10-batches-bin), benches use the real dataset instead
// of the synthetic substitute. Each record is 1 label byte + 3072 pixel
// bytes (R, G, B planes, row-major), per the CIFAR-10 distribution.
#pragma once

#include <optional>
#include <string>

#include "data/dataset.hpp"

namespace sia::data {

struct CifarSplits {
    Dataset train;
    Dataset test;
};

/// Load CIFAR-10 from `dir`; nullopt if the files are missing/corrupt.
/// `max_train`/`max_test` cap the number of records read (0 = all).
[[nodiscard]] std::optional<CifarSplits> load_cifar10(const std::string& dir,
                                                      std::int64_t max_train = 0,
                                                      std::int64_t max_test = 0);

/// Convenience: standard location checked by benches.
[[nodiscard]] std::string default_cifar_dir();

}  // namespace sia::data
