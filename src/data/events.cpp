#include "data/events.hpp"

#include <algorithm>
#include <cmath>

namespace sia::data {

std::vector<Event> make_event_scene(const EventSceneConfig& config) {
    util::Rng rng(config.seed);
    struct Obj {
        float x, y, vx, vy, radius;
    };
    std::vector<Obj> objs;
    const auto size_f = static_cast<float>(config.size);
    for (std::int64_t i = 0; i < config.objects; ++i) {
        const float angle = rng.uniform(0.0F, 6.2831853F);
        objs.push_back(Obj{rng.uniform(0.2F * size_f, 0.8F * size_f),
                           rng.uniform(0.2F * size_f, 0.8F * size_f),
                           config.speed * std::cos(angle), config.speed * std::sin(angle),
                           rng.uniform(1.5F, 3.0F)});
    }

    std::vector<Event> events;
    for (std::int32_t t = 0; t < config.timesteps; ++t) {
        for (auto& o : objs) {
            const float px = o.x;
            const float py = o.y;
            o.x += o.vx;
            o.y += o.vy;
            // Bounce off sensor edges.
            if (o.x < 0.0F || o.x >= size_f) {
                o.vx = -o.vx;
                o.x = std::clamp(o.x, 0.0F, size_f - 1.0F);
            }
            if (o.y < 0.0F || o.y >= size_f) {
                o.vy = -o.vy;
                o.y = std::clamp(o.y, 0.0F, size_f - 1.0F);
            }
            // Leading edge emits ON events, trailing edge OFF events.
            for (std::int64_t yy = 0; yy < config.size; ++yy) {
                for (std::int64_t xx = 0; xx < config.size; ++xx) {
                    const float fx = static_cast<float>(xx);
                    const float fy = static_cast<float>(yy);
                    const float d_new = std::hypot(fx - o.x, fy - o.y);
                    const float d_old = std::hypot(fx - px, fy - py);
                    const bool inside_new = d_new <= o.radius;
                    const bool inside_old = d_old <= o.radius;
                    if (inside_new == inside_old) continue;
                    if (!rng.bernoulli(config.event_rate)) continue;
                    events.push_back(Event{static_cast<std::int16_t>(xx),
                                           static_cast<std::int16_t>(yy), t, inside_new});
                }
            }
        }
        // Background noise.
        const auto pixels = config.size * config.size;
        const auto noise_events =
            static_cast<std::int64_t>(config.noise_rate * static_cast<float>(pixels));
        for (std::int64_t i = 0; i < noise_events; ++i) {
            events.push_back(Event{static_cast<std::int16_t>(rng.integer(0, config.size - 1)),
                                   static_cast<std::int16_t>(rng.integer(0, config.size - 1)),
                                   t, rng.bernoulli(0.5)});
        }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Event& a, const Event& b) { return a.t < b.t; });
    return events;
}

tensor::Tensor events_to_frames(const std::vector<Event>& events, std::int64_t size,
                                std::int64_t timesteps) {
    tensor::Tensor frames(tensor::Shape{timesteps, 2, size, size});
    for (const Event& e : events) {
        if (e.t < 0 || e.t >= timesteps) continue;
        if (e.x < 0 || e.x >= size || e.y < 0 || e.y >= size) continue;
        frames.at(e.t, e.on ? 0 : 1, e.y, e.x) = 1.0F;
    }
    return frames;
}

}  // namespace sia::data
