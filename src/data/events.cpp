#include "data/events.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/log.hpp"

namespace sia::data {

std::vector<Event> make_event_scene(const EventSceneConfig& config) {
    util::Rng rng(config.seed);
    struct Obj {
        float x, y, vx, vy, radius;
    };
    std::vector<Obj> objs;
    const auto size_f = static_cast<float>(config.size);
    for (std::int64_t i = 0; i < config.objects; ++i) {
        const float angle = rng.uniform(0.0F, 6.2831853F);
        objs.push_back(Obj{rng.uniform(0.2F * size_f, 0.8F * size_f),
                           rng.uniform(0.2F * size_f, 0.8F * size_f),
                           config.speed * std::cos(angle), config.speed * std::sin(angle),
                           rng.uniform(1.5F, 3.0F)});
    }

    std::vector<Event> events;
    for (std::int32_t t = 0; t < config.timesteps; ++t) {
        for (auto& o : objs) {
            const float px = o.x;
            const float py = o.y;
            o.x += o.vx;
            o.y += o.vy;
            // Bounce off sensor edges.
            if (o.x < 0.0F || o.x >= size_f) {
                o.vx = -o.vx;
                o.x = std::clamp(o.x, 0.0F, size_f - 1.0F);
            }
            if (o.y < 0.0F || o.y >= size_f) {
                o.vy = -o.vy;
                o.y = std::clamp(o.y, 0.0F, size_f - 1.0F);
            }
            // Leading edge emits ON events, trailing edge OFF events.
            for (std::int64_t yy = 0; yy < config.size; ++yy) {
                for (std::int64_t xx = 0; xx < config.size; ++xx) {
                    const float fx = static_cast<float>(xx);
                    const float fy = static_cast<float>(yy);
                    const float d_new = std::hypot(fx - o.x, fy - o.y);
                    const float d_old = std::hypot(fx - px, fy - py);
                    const bool inside_new = d_new <= o.radius;
                    const bool inside_old = d_old <= o.radius;
                    if (inside_new == inside_old) continue;
                    if (!rng.bernoulli(config.event_rate)) continue;
                    events.push_back(Event{static_cast<std::int16_t>(xx),
                                           static_cast<std::int16_t>(yy), t, inside_new});
                }
            }
        }
        // Background noise. Stochastic rounding of the fractional
        // remainder: small sensors with a sub-1 expected count would
        // otherwise truncate to zero events every step, silently
        // disabling the background noise entirely.
        const auto pixels = config.size * config.size;
        const float expected = config.noise_rate * static_cast<float>(pixels);
        auto noise_events = static_cast<std::int64_t>(expected);
        const double frac =
            static_cast<double>(expected) - static_cast<double>(noise_events);
        if (frac > 0.0 && rng.bernoulli(frac)) ++noise_events;
        for (std::int64_t i = 0; i < noise_events; ++i) {
            events.push_back(Event{static_cast<std::int16_t>(rng.integer(0, config.size - 1)),
                                   static_cast<std::int16_t>(rng.integer(0, config.size - 1)),
                                   t, rng.bernoulli(0.5)});
        }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Event& a, const Event& b) { return a.t < b.t; });
    return events;
}

tensor::Tensor events_to_frames(const std::vector<Event>& events, std::int64_t size,
                                std::int64_t timesteps, std::int64_t* dropped) {
    tensor::Tensor frames(tensor::Shape{timesteps, 2, size, size});
    std::int64_t out_of_range = 0;
    for (const Event& e : events) {
        if (e.t < 0 || e.t >= timesteps || e.x < 0 || e.x >= size || e.y < 0 ||
            e.y >= size) {
            ++out_of_range;
            continue;
        }
        frames.at(e.t, e.on ? 0 : 1, e.y, e.x) = 1.0F;
    }
    if (dropped != nullptr) *dropped = out_of_range;
    return frames;
}

tensor::Tensor events_to_frames(const std::vector<Event>& events, std::int64_t size,
                                std::int64_t timesteps) {
    std::int64_t out_of_range = 0;
    tensor::Tensor frames = events_to_frames(events, size, timesteps, &out_of_range);
    if (out_of_range > 0) {
        util::log_warn("events_to_frames: dropped ", out_of_range, " of ",
                       events.size(), " events outside ", size, "x", size, "x",
                       timesteps);
    }
    return frames;
}

std::vector<tensor::Tensor> events_to_windows(const std::vector<Event>& events,
                                              std::int64_t size,
                                              std::int64_t total_timesteps,
                                              std::int64_t window_steps,
                                              std::int64_t* dropped) {
    if (window_steps < 1) {
        throw std::invalid_argument("events_to_windows: window_steps must be >= 1");
    }
    const std::int64_t windows =
        total_timesteps > 0 ? (total_timesteps + window_steps - 1) / window_steps : 0;
    std::vector<tensor::Tensor> out;
    out.reserve(static_cast<std::size_t>(windows));
    for (std::int64_t w = 0; w < windows; ++w) {
        const std::int64_t steps =
            std::min(window_steps, total_timesteps - w * window_steps);
        out.emplace_back(tensor::Shape{steps, 2, size, size});
    }
    std::int64_t out_of_range = 0;
    for (const Event& e : events) {
        if (e.t < 0 || e.t >= total_timesteps || e.x < 0 || e.x >= size || e.y < 0 ||
            e.y >= size) {
            ++out_of_range;
            continue;
        }
        const std::int64_t w = e.t / window_steps;
        out[static_cast<std::size_t>(w)].at(e.t % window_steps, e.on ? 0 : 1, e.y,
                                            e.x) = 1.0F;
    }
    if (dropped != nullptr) *dropped = out_of_range;
    return out;
}

}  // namespace sia::data
