#include "core/backend.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/compiler.hpp"
#include "snn/encoding.hpp"
#include "util/timer.hpp"

namespace sia::core {

const char* to_string(ErrorCode code) noexcept {
    switch (code) {
        case ErrorCode::kOk: return "kOk";
        case ErrorCode::kInvalidRequest: return "kInvalidRequest";
        case ErrorCode::kBackendError: return "kBackendError";
        case ErrorCode::kDeadlineExceeded: return "kDeadlineExceeded";
        case ErrorCode::kCircuitOpen: return "kCircuitOpen";
        case ErrorCode::kShuttingDown: return "kShuttingDown";
        case ErrorCode::kQueueFull: return "kQueueFull";
        case ErrorCode::kUnknownModel: return "kUnknownModel";
    }
    return "?";
}

// ---------------------------------------------------------------- Request

Request Request::with(std::string model_name, std::string tenant_name,
                      Priority prio) && {
    model = std::move(model_name);
    tenant = std::move(tenant_name);
    priority = prio;
    return std::move(*this);
}

Request Request::with_session(std::string session_id, bool close) && {
    session = std::move(session_id);
    close_session = close;
    return std::move(*this);
}

Request Request::with_deadline(std::int64_t us) && {
    deadline_us = us;
    return std::move(*this);
}

Request Request::with_early_exit(snn::ExitCriterion criterion) && {
    early_exit = criterion;
    return std::move(*this);
}

void Request::own_views() {
    if (train_view != nullptr) {
        train = *train_view;
        train_view = nullptr;
    }
    if (image_view != nullptr) {
        image = *image_view;
        image_view = nullptr;
    }
}

Request Request::from_train(snn::SpikeTrain t) {
    Request r;
    r.encoding = Encoding::kPreEncoded;
    r.train = std::move(t);
    return r;
}

Request Request::view_train(const snn::SpikeTrain& t) {
    Request r;
    r.encoding = Encoding::kPreEncoded;
    r.train_view = &t;
    return r;
}

Request Request::thermometer(tensor::Tensor img, std::int64_t timesteps) {
    Request r;
    r.encoding = Encoding::kThermometer;
    r.image = std::move(img);
    r.timesteps = timesteps;
    return r;
}

Request Request::view_thermometer(const tensor::Tensor& img, std::int64_t timesteps) {
    Request r;
    r.encoding = Encoding::kThermometer;
    r.image_view = &img;
    r.timesteps = timesteps;
    return r;
}

Request Request::poisson(tensor::Tensor img, std::int64_t timesteps) {
    Request r;
    r.encoding = Encoding::kPoisson;
    r.image = std::move(img);
    r.timesteps = timesteps;
    return r;
}

Request Request::view_poisson(const tensor::Tensor& img, std::int64_t timesteps) {
    Request r;
    r.encoding = Encoding::kPoisson;
    r.image_view = &img;
    r.timesteps = timesteps;
    return r;
}

// --------------------------------------------------------------- Response

std::int64_t Response::predicted_class(std::int64_t t) const {
    return static_cast<std::int64_t>(
        snn::argmax_first(logits_per_step.at(static_cast<std::size_t>(t))));
}

std::int64_t Response::predicted() const {
    return static_cast<std::int64_t>(snn::argmax_first(logits));
}

std::int64_t Response::total_cycles() const noexcept {
    std::int64_t total = 0;
    for (const auto& s : layer_stats) total += s.total();
    return total;
}

Response Response::from(snn::RunResult r) {
    Response resp;
    resp.logits_per_step = std::move(r.logits_per_step);
    resp.logits = std::move(r.readout);
    resp.spike_counts = std::move(r.spike_counts);
    resp.neuron_counts = std::move(r.neuron_counts);
    resp.layer_dispatch = std::move(r.layer_dispatch);
    resp.timesteps = r.timesteps;
    resp.steps_used = r.timesteps;
    resp.steps_offered = r.steps_offered;
    resp.exit_reason = r.exit_reason;
    return resp;
}

Response Response::from(sim::SiaRunResult r) {
    Response resp;
    resp.logits_per_step = std::move(r.logits_per_step);
    resp.logits = std::move(r.readout);
    resp.spike_counts = std::move(r.spike_counts);
    resp.neuron_counts = std::move(r.neuron_counts);
    resp.layer_stats = std::move(r.layer_stats);
    resp.timesteps = r.timesteps;
    resp.steps_used = r.timesteps;
    resp.steps_offered = r.steps_offered;
    resp.exit_reason = r.exit_reason;
    return resp;
}

// ---------------------------------------------------------------- Backend

Backend::Backend(const snn::SnnModel& model) : model_(model) { model_.validate(); }

const snn::SpikeTrain& Backend::materialize(const Request& request, std::uint64_t seed,
                                            std::uint64_t stream,
                                            snn::SpikeTrain& scratch) {
    switch (request.encoding) {
        case Encoding::kPreEncoded:
            return request.pre_encoded();
        case Encoding::kThermometer:
            if (request.timesteps <= 0) {
                throw std::invalid_argument(
                    "core::Request: image encodings need timesteps > 0");
            }
            scratch = snn::encode_thermometer(request.raw_image(), request.timesteps);
            return scratch;
        case Encoding::kPoisson: {
            if (request.timesteps <= 0) {
                throw std::invalid_argument(
                    "core::Request: image encodings need timesteps > 0");
            }
            util::Rng rng(util::mix_seed(seed, stream));
            scratch = snn::encode_poisson(request.raw_image(), request.timesteps, rng);
            return scratch;
        }
    }
    throw std::invalid_argument("core::Request: unknown encoding");
}

// ------------------------------------------------------ FunctionalBackend

FunctionalBackend::FunctionalBackend(const snn::SnnModel& model,
                                     snn::EngineConfig config)
    : Backend(model), config_(config) {}

void FunctionalBackend::prepare(std::size_t workers) {
    if (engines_.size() < workers) engines_.resize(workers);
}

snn::FunctionalEngine& FunctionalBackend::engine(std::size_t worker) {
    auto& slot = engines_[worker];
    if (!slot) {
        const util::WallTimer timer;
        slot = std::make_unique<snn::FunctionalEngine>(model(), config_);
        add_setup_nanos(static_cast<std::int64_t>(timer.millis() * 1e6));
    }
    return *slot;
}

void FunctionalBackend::run_span(std::size_t worker,
                                 std::span<const Request> requests,
                                 std::span<Response> responses, std::size_t base,
                                 std::uint64_t seed) {
    snn::SpikeTrain scratch;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const std::uint64_t stream = requests[i].rng_stream.value_or(base + i);
        const snn::SpikeTrain& train =
            materialize(requests[i], seed, stream, scratch);
        const std::optional<snn::ExitCriterion>& exit = requests[i].early_exit;
        if (requests[i].session_state) {
            snn::SessionState& state = *requests[i].session_state;
            responses[i] = Response::from(
                exit ? engine(worker).run_window(train, state, *exit)
                     : engine(worker).run_window(train, state));
            responses[i].session_steps = state.steps;
        } else {
            responses[i] = Response::from(exit ? engine(worker).run(train, *exit)
                                               : engine(worker).run(train));
        }
        responses[i].session = requests[i].session;
        responses[i].window_seq = requests[i].window_seq;
    }
}

// ------------------------------------------------------------- SiaBackend

SiaBackend::SiaBackend(const snn::SnnModel& model, sim::SiaConfig config,
                       SimSchedule schedule)
    : Backend(model), config_(config), schedule_(schedule) {}

void SiaBackend::prepare(std::size_t workers) {
    if (sias_.size() < workers) sias_.resize(workers);
    if (!program_) {
        const util::WallTimer timer;
        program_ = SiaCompiler(config_).compile(model());
        add_setup_nanos(static_cast<std::int64_t>(timer.millis() * 1e6));
    }
}

std::size_t SiaBackend::preferred_span(std::size_t n,
                                       std::size_t workers) const noexcept {
    if (schedule_ != SimSchedule::kResident || n == 0 || workers == 0) return 1;
    return (n + workers - 1) / workers;
}

sim::Sia& SiaBackend::resident(std::size_t worker) {
    auto& slot = sias_[worker];
    if (!slot) {
        const util::WallTimer timer;
        slot = std::make_unique<sim::Sia>(config_, model(), *program_);
        add_setup_nanos(static_cast<std::int64_t>(timer.millis() * 1e6));
    }
    return *slot;
}

void SiaBackend::run_span(std::size_t worker, std::span<const Request> requests,
                          std::span<Response> responses, std::size_t base,
                          std::uint64_t seed) {
    if (schedule_ == SimSchedule::kPerItem) {
        snn::SpikeTrain scratch;
        for (std::size_t i = 0; i < requests.size(); ++i) {
            const std::uint64_t stream = requests[i].rng_stream.value_or(base + i);
            const snn::SpikeTrain& train =
                materialize(requests[i], seed, stream, scratch);
            // Sia carries per-inference memory/DMA state, so each request
            // gets a fresh instance; the compiled program is shared
            // read-only.
            const util::WallTimer timer;
            sim::Sia sia(config_, model(), *program_);
            add_setup_nanos(static_cast<std::int64_t>(timer.millis() * 1e6));
            const std::optional<snn::ExitCriterion>& exit = requests[i].early_exit;
            if (requests[i].session_state) {
                snn::SessionState& state = *requests[i].session_state;
                responses[i] = Response::from(exit ? sia.run(train, state, *exit)
                                                   : sia.run(train, state));
                responses[i].session_steps = state.steps;
            } else {
                responses[i] = Response::from(exit ? sia.run(train, *exit)
                                                   : sia.run(train));
            }
            responses[i].session = requests[i].session;
            responses[i].window_seq = requests[i].window_seq;
        }
        return;
    }

    // Resident schedule: the whole span goes through one Sia::run_batch
    // call, so weight/program residency amortizes across it. Encode
    // first (per-request streams keep this grouping-invariant), then
    // hand the slice over as pointers.
    std::vector<snn::SpikeTrain> scratch(requests.size());
    std::vector<const snn::SpikeTrain*> slice;
    slice.reserve(requests.size());
    std::vector<snn::SessionState*> sessions(requests.size(), nullptr);
    std::vector<const snn::ExitCriterion*> exits(requests.size(), nullptr);
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const std::uint64_t stream = requests[i].rng_stream.value_or(base + i);
        slice.push_back(&materialize(requests[i], seed, stream, scratch[i]));
        if (requests[i].session_state) sessions[i] = requests[i].session_state.get();
        if (requests[i].early_exit) exits[i] = &*requests[i].early_exit;
    }
    sim::Sia& sia = resident(worker);
    auto results = sia.run_batch(slice, sessions, exits);
    for (std::size_t i = 0; i < results.size(); ++i) {
        responses[i] = Response::from(std::move(results[i]));
        if (sessions[i] != nullptr) responses[i].session_steps = sessions[i]->steps;
        responses[i].session = requests[i].session;
        responses[i].window_seq = requests[i].window_seq;
    }
    const sim::SiaBatchStats& s = sia.last_batch_stats();
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    batch_stats_.batch += s.batch;
    batch_stats_.waves += s.waves;
    batch_stats_.banks = std::max(batch_stats_.banks, s.banks);
    batch_stats_.membrane_slice_bytes = s.membrane_slice_bytes;
    batch_stats_.membrane_resident = batch_stats_.membrane_resident && s.membrane_resident;
    batch_stats_.weight_bytes_streamed += s.weight_bytes_streamed;
    batch_stats_.weight_bytes_sequential += s.weight_bytes_sequential;
    batch_stats_.resident_cycles += s.resident_cycles;
    batch_stats_.sequential_cycles += s.sequential_cycles;
    batch_stats_.retired_early += s.retired_early;
    batch_stats_.backfills += s.backfills;
    batch_stats_.chunk_passes += s.chunk_passes;
    batch_stats_.steps_executed += s.steps_executed;
    batch_stats_.steps_offered += s.steps_offered;
    batch_stats_.retired_at.insert(batch_stats_.retired_at.end(),
                                   s.retired_at.begin(), s.retired_at.end());
}

sim::SiaBatchStats SiaBackend::take_sim_batch_stats() noexcept {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    return std::exchange(batch_stats_, {});
}

// ------------------------------------------------------ ShardedSiaBackend

ShardedSiaBackend::ShardedSiaBackend(const snn::SnnModel& model,
                                     sim::SiaConfig config,
                                     ShardOptions shard_options,
                                     sim::SiaClusterOptions cluster_options)
    : Backend(model), config_(config), shard_options_(shard_options),
      cluster_options_(cluster_options) {}

void ShardedSiaBackend::prepare(std::size_t workers) {
    (void)workers;  // the cluster drives its own pool
    if (!cluster_) {
        const util::WallTimer timer;
        cluster_ = std::make_unique<sim::SiaCluster>(
            config_, model(),
            SiaCompiler(config_).compile_sharded(model(), shard_options_),
            cluster_options_);
        add_setup_nanos(static_cast<std::int64_t>(timer.millis() * 1e6));
    }
}

std::size_t ShardedSiaBackend::preferred_span(
    std::size_t n, std::size_t workers) const noexcept {
    (void)workers;
    // The whole batch as one span: the cluster parallelizes internally
    // and must not be driven by two runner workers at once.
    return n > 0 ? n : 1;
}

void ShardedSiaBackend::run_span(std::size_t worker,
                                 std::span<const Request> requests,
                                 std::span<Response> responses, std::size_t base,
                                 std::uint64_t seed) {
    (void)worker;
    std::vector<snn::SpikeTrain> scratch(requests.size());
    std::vector<const snn::SpikeTrain*> slice;
    slice.reserve(requests.size());
    std::vector<snn::SessionState*> sessions(requests.size(), nullptr);
    std::vector<const snn::ExitCriterion*> exits(requests.size(), nullptr);
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const std::uint64_t stream = requests[i].rng_stream.value_or(base + i);
        slice.push_back(&materialize(requests[i], seed, stream, scratch[i]));
        if (requests[i].session_state) sessions[i] = requests[i].session_state.get();
        if (requests[i].early_exit) exits[i] = &*requests[i].early_exit;
    }
    auto results = cluster_->run_batch(slice, sessions, exits);
    for (std::size_t i = 0; i < results.size(); ++i) {
        responses[i] = Response::from(std::move(results[i]));
        if (sessions[i] != nullptr) responses[i].session_steps = sessions[i]->steps;
        responses[i].session = requests[i].session;
        responses[i].window_seq = requests[i].window_seq;
    }
    const sim::ShardStats& s = cluster_->last_stats();
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    shard_stats_.partition = s.partition;
    shard_stats_.shards = s.shards;
    shard_stats_.double_buffered = s.double_buffered;
    shard_stats_.batch += s.batch;
    shard_stats_.compute_cycles += s.compute_cycles;
    shard_stats_.transfer_bytes += s.transfer_bytes;
    shard_stats_.transfer_cycles += s.transfer_cycles;
    shard_stats_.transfer_stall_cycles += s.transfer_stall_cycles;
    shard_stats_.fill_cycles += s.fill_cycles;
    shard_stats_.drain_cycles += s.drain_cycles;
    shard_stats_.makespan_cycles += s.makespan_cycles;
    shard_stats_.item_cycles += s.item_cycles;
    shard_stats_.retired_early += s.retired_early;
    shard_stats_.steps_executed += s.steps_executed;
    shard_stats_.steps_offered += s.steps_offered;
}

sim::ShardStats ShardedSiaBackend::take_shard_stats() noexcept {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    return std::exchange(shard_stats_, {});
}

}  // namespace sia::core
