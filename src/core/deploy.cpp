#include "core/deploy.hpp"

#include <sstream>

namespace sia::core {

DeployReport Deployer::deploy(const snn::SnnModel& model,
                              const snn::SpikeTrain& input) const {
    DeployReport report;
    report.functional = snn::run_snn(model, input);

    const sim::CompiledProgram program = compiler_.compile(model);
    sim::Sia sia(config_, model, program);
    report.hardware = sia.run(input);

    std::ostringstream mismatch;
    if (report.functional.logits_per_step != report.hardware.logits_per_step) {
        mismatch << "per-timestep logits differ; ";
    }
    if (report.functional.spike_counts != report.hardware.spike_counts) {
        mismatch << "per-layer spike counts differ; ";
    }
    report.mismatch = mismatch.str();
    report.bit_exact = report.mismatch.empty();
    return report;
}

}  // namespace sia::core
