// Processor-side front end ("frame data conversion", §IV).
//
// The paper's ZYNQ processor converts frame data into spike streams for
// the PL. When ConvertOptions::host_front_layers > 0, the first conv
// layer(s) execute on the PS in quantized-ANN arithmetic and their
// L-level activations are thermometer-encoded into the spike train fed
// to the SIA. This removes the input-coding unevenness that otherwise
// delays deep-network convergence (see the coding ablation bench), at
// the cost of one small convolution on the processor.
#pragma once

#include <cstdint>

#include "nn/ir.hpp"
#include "snn/spike.hpp"
#include "tensor/tensor.hpp"

namespace sia::core {

class HybridFrontEnd {
public:
    /// The IR is stored by value (it is a cheap node list), but its
    /// module pointers reference the model — the MODEL must outlive the
    /// front end. `host_layers` = number of leading conv layers run on
    /// the PS; must match ConvertOptions::host_front_layers used for the
    /// conversion.
    HybridFrontEnd(nn::NetworkIR ir, int host_layers);

    /// Compute the PS-side activations for one image [1, C, H, W] and
    /// thermometer-encode them over `timesteps`.
    [[nodiscard]] snn::SpikeTrain encode(const tensor::Tensor& image,
                                         std::int64_t timesteps) const;

    [[nodiscard]] int host_layers() const noexcept { return host_layers_; }

private:
    nn::NetworkIR ir_;
    int host_layers_;
};

}  // namespace sia::core
