// ANN -> SNN conversion (Fig. 1, stage 3).
//
// Consumes the NetworkIR of a trained, activation-quantized model and
// produces the integer SnnModel the hardware executes:
//   * conv/FC weights quantized to INT8 with per-branch scale q_w;
//   * each quantized-ReLU site becomes an IF neuron layer whose 16-bit
//     threshold is the learnt step size s_l (theta_int = 2^8, i.e. the
//     membrane LSB is s_l / 256), initial potential s_l/2 (= 128);
//   * batch norm folds into the aggregation core's per-channel (G, H)
//     per Eq. (2): G = gamma * q_w * theta_in / (sqrt(var+eps) * u_lsb),
//     H = (beta - mu * gamma / sqrt(var+eps)) / u_lsb per timestep.
//     (The paper prints H = mu*G/q_w - beta; the sign convention here is
//     the algebraically consistent one — see EXPERIMENTS.md note.)
//   * residual adds become membrane-current injections: identity skips
//     inject theta_src per source spike; downsample skips convert as a
//     1x1 conv branch with their own (G, H);
//   * the trailing average pool folds into the FC readout weights
//     (weights / k^2 replicated over the pooled window), keeping every
//     hardware input strictly binary.
#pragma once

#include <cstdint>

#include "nn/ir.hpp"
#include "snn/model.hpp"

namespace sia::core {

struct ConvertOptions {
    int weight_bits = 8;
    float clip_pct = 1.0F;          ///< weight-scale quantile (1.0 = abs-max)
    snn::NeuronKind neuron = snn::NeuronKind::kIf;
    snn::ResetMode reset = snn::ResetMode::kSubtract;
    int leak_shift = 4;             ///< only used for LIF ablations
    /// Amplitude of network-input spikes (1.0 for thermometer-coded
    /// pixels in [0, 1]).
    float input_amplitude = 1.0F;
    /// Number of leading conv layers computed on the processor side
    /// ("frame data conversion", §IV): the converted model then starts
    /// at the first on-accelerator layer and its input spikes are the
    /// PS-computed activations encoded by core::HybridFrontEnd. 0 = the
    /// whole network runs on the SIA.
    int host_front_layers = 0;
};

class AnnToSnnConverter {
public:
    explicit AnnToSnnConverter(ConvertOptions options = {}) : options_(options) {}

    /// Convert; throws std::invalid_argument on unsupported topology or
    /// non-positive activation steps.
    [[nodiscard]] snn::SnnModel convert(const nn::NetworkIR& ir) const;

private:
    ConvertOptions options_;
};

/// Select the fixed-point shift for a branch gain: the largest shift in
/// [0, 14] such that round(max_gain * 2^shift) fits int16.
[[nodiscard]] int select_gain_shift(double max_gain) noexcept;

}  // namespace sia::core
