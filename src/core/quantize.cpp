#include "core/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sia::core {

QuantizedWeights quantize_weights(std::span<const float> weights, int bits,
                                  float clip_pct) {
    if (bits < 2 || bits > 8) throw std::invalid_argument("quantize_weights: bits in [2,8]");
    if (!(clip_pct > 0.0F && clip_pct <= 1.0F)) {
        throw std::invalid_argument("quantize_weights: clip_pct in (0,1]");
    }
    const std::int32_t qmax = (1 << (bits - 1)) - 1;

    float range = 0.0F;
    if (clip_pct >= 1.0F) {
        for (const float w : weights) range = std::max(range, std::abs(w));
    } else {
        std::vector<float> mags;
        mags.reserve(weights.size());
        for (const float w : weights) mags.push_back(std::abs(w));
        std::sort(mags.begin(), mags.end());
        const auto idx = static_cast<std::size_t>(
            clip_pct * static_cast<float>(mags.size() - 1) + 0.5F);
        range = mags.empty() ? 0.0F : mags[std::min(idx, mags.size() - 1)];
    }

    QuantizedWeights out;
    out.scale = range > 0.0F ? range / static_cast<float>(qmax)
                             : 1.0F / static_cast<float>(qmax);
    out.values.reserve(weights.size());
    double sse = 0.0;
    for (const float w : weights) {
        const auto q = static_cast<std::int32_t>(
            std::lround(static_cast<double>(w) / out.scale));
        const auto clamped = static_cast<std::int8_t>(std::clamp(q, -qmax, qmax));
        out.values.push_back(clamped);
        const float err =
            std::abs(w - static_cast<float>(clamped) * out.scale);
        out.max_abs_error = std::max(out.max_abs_error, err);
        sse += static_cast<double>(err) * err;
    }
    out.mse = weights.empty() ? 0.0F
                              : static_cast<float>(sse / static_cast<double>(weights.size()));
    return out;
}

std::vector<float> dequantize(const QuantizedWeights& q) {
    std::vector<float> out;
    out.reserve(q.values.size());
    for (const auto v : q.values) out.push_back(static_cast<float>(v) * q.scale);
    return out;
}

}  // namespace sia::core
