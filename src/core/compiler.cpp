#include "core/compiler.hpp"

#include <algorithm>
#include <stdexcept>

namespace sia::core {

namespace {
std::int64_t bits_to_bytes(std::int64_t bits) noexcept { return (bits + 7) / 8; }
}  // namespace

sim::CompiledProgram SiaCompiler::compile(const snn::SnnModel& model) const {
    model.validate();
    sim::CompiledProgram program;
    const std::int64_t lanes = config_.pe_count();
    /// Each PE owns one kernel slot in the weight memory.
    const std::int64_t slot_bytes = config_.weight_bytes / lanes;

    for (std::size_t li = 0; li < model.layers.size(); ++li) {
        const snn::SnnLayer& layer = model.layers[li];
        sim::LayerPlan plan;
        plan.layer = static_cast<int>(li);
        plan.membrane_bytes = layer.neurons() * 2;

        if (layer.op == snn::LayerOp::kConv) {
            const snn::Branch& b = layer.main;
            plan.oc_tiles = (b.out_channels + lanes - 1) / lanes;

            // Kernels larger than a PE slot stream in IC chunks.
            const std::int64_t kernel_bytes_per_ic = b.kernel * b.kernel;
            const std::int64_t chunk =
                std::max<std::int64_t>(1, slot_bytes / kernel_bytes_per_ic);
            plan.ic_chunk = std::min(chunk, b.in_channels);
            plan.ic_passes = (b.in_channels + plan.ic_chunk - 1) / plan.ic_chunk;

            plan.weight_stream_bytes =
                b.out_channels * b.in_channels * kernel_bytes_per_ic;
            plan.spike_in_bytes =
                bits_to_bytes(b.in_channels * layer.in_h * layer.in_w);
            plan.spike_out_bytes = bits_to_bytes(layer.neurons());
            if (layer.has_skip()) {
                // Residual partial sums / skip spikes staged from the PS
                // through the 128 kB residual memory (§III-D).
                const std::int64_t skip_bits =
                    layer.skip_is_identity
                        ? layer.neurons()
                        : layer.skip.in_channels * layer.in_h * layer.in_w;
                plan.residual_in_bytes = bits_to_bytes(skip_bits);
                if (plan.residual_in_bytes > config_.residual_bytes) {
                    throw std::invalid_argument(
                        "compile: residual traffic exceeds residual memory for layer " +
                        layer.label);
                }
            }
        } else {
            const snn::Branch& b = layer.main;
            plan.oc_tiles = (b.out_features + lanes - 1) / lanes;
            plan.ic_chunk = b.in_features;
            plan.ic_passes = 1;
            plan.weight_stream_bytes = b.stream_weight_bytes > 0
                                           ? b.stream_weight_bytes
                                           : b.in_features * b.out_features;
            plan.spike_in_bytes = bits_to_bytes(b.in_features);
            plan.spike_out_bytes = bits_to_bytes(layer.neurons());
            // FC kernels (one weight per input feature) never fit the
            // per-PE slots; they ride the PS word path (Fig. 4).
            plan.mmio = true;
        }

        const std::int64_t bank = config_.membrane_bytes / 2;
        if (plan.membrane_bytes > bank && layer.spiking) {
            // Spatial tiling: slice the layer so each slice's potentials
            // fit one ping-pong bank; input spikes re-stream per slice.
            plan.spatial_tiles = (plan.membrane_bytes + bank - 1) / bank;
        }

        const std::int64_t resident_weights =
            plan.oc_tiles * plan.ic_passes == 1 ? plan.weight_stream_bytes : 0;
        program.peak_weight_bytes =
            std::max(program.peak_weight_bytes,
                     resident_weights > 0 ? resident_weights
                                          : std::min(plan.weight_stream_bytes,
                                                     config_.weight_bytes));
        program.peak_membrane_bytes =
            std::max(program.peak_membrane_bytes,
                     std::min(plan.membrane_bytes, bank));

        program.layers.push_back(plan);
    }
    return program;
}

}  // namespace sia::core
