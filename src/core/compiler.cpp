#include "core/compiler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "sim/aggregation.hpp"
#include "sim/axi.hpp"

namespace sia::core {

namespace {

std::int64_t bits_to_bytes(std::int64_t bits) noexcept { return (bits + 7) / 8; }

/// Validation errors name the offending layer: index, kind, label.
[[noreturn]] void layer_error(std::size_t index, const snn::SnnLayer& layer,
                              const std::string& what) {
    const char* kind = layer.op == snn::LayerOp::kConv ? "conv" : "linear";
    throw std::invalid_argument("SiaCompiler::compile: layer " +
                                std::to_string(index) + " (" + kind + " '" +
                                layer.label + "'): " + what);
}

}  // namespace

sim::CompiledProgram SiaCompiler::compile(const snn::SnnModel& model) const {
    model.validate();
    sim::CompiledProgram program;
    const std::int64_t lanes = config_.pe_count();
    /// Each PE owns one kernel slot in the weight memory.
    const std::int64_t slot_bytes = config_.weight_bytes / lanes;

    for (std::size_t li = 0; li < model.layers.size(); ++li) {
        const snn::SnnLayer& layer = model.layers[li];
        sim::LayerPlan plan;
        plan.layer = static_cast<int>(li);
        plan.membrane_bytes = layer.neurons() * 2;

        if (layer.op == snn::LayerOp::kConv) {
            const snn::Branch& b = layer.main;
            plan.oc_tiles = (b.out_channels + lanes - 1) / lanes;

            // Kernels larger than a PE slot stream in IC chunks.
            const std::int64_t kernel_bytes_per_ic = b.kernel * b.kernel;
            const std::int64_t chunk =
                std::max<std::int64_t>(1, slot_bytes / kernel_bytes_per_ic);
            plan.ic_chunk = std::min(chunk, b.in_channels);
            plan.ic_passes = (b.in_channels + plan.ic_chunk - 1) / plan.ic_chunk;

            plan.weight_stream_bytes =
                b.out_channels * b.in_channels * kernel_bytes_per_ic;
            plan.spike_in_bytes =
                bits_to_bytes(b.in_channels * layer.in_h * layer.in_w);
            plan.spike_out_bytes = bits_to_bytes(layer.neurons());
            if (layer.has_skip()) {
                // Residual partial sums / skip spikes staged from the PS
                // through the 128 kB residual memory (§III-D).
                const std::int64_t skip_bits =
                    layer.skip_is_identity
                        ? layer.neurons()
                        : layer.skip.in_channels * layer.in_h * layer.in_w;
                plan.residual_in_bytes = bits_to_bytes(skip_bits);
                if (plan.residual_in_bytes > config_.residual_bytes) {
                    layer_error(li, layer,
                                "residual traffic exceeds residual memory (" +
                                    std::to_string(plan.residual_in_bytes) + " > " +
                                    std::to_string(config_.residual_bytes) +
                                    " bytes)");
                }
            }
        } else {
            const snn::Branch& b = layer.main;
            plan.oc_tiles = (b.out_features + lanes - 1) / lanes;
            plan.ic_chunk = b.in_features;
            plan.ic_passes = 1;
            plan.weight_stream_bytes = b.stream_weight_bytes > 0
                                           ? b.stream_weight_bytes
                                           : b.in_features * b.out_features;
            plan.spike_in_bytes = bits_to_bytes(b.in_features);
            plan.spike_out_bytes = bits_to_bytes(layer.neurons());
            // FC kernels (one weight per input feature) never fit the
            // per-PE slots; they ride the PS word path (Fig. 4).
            plan.mmio = true;
        }

        const std::int64_t bank = config_.membrane_bytes / 2;
        if (plan.membrane_bytes > bank && layer.spiking) {
            // Spatial tiling: slice the layer so each slice's potentials
            // fit one ping-pong bank; input spikes re-stream per slice.
            plan.spatial_tiles = (plan.membrane_bytes + bank - 1) / bank;
        }

        const std::int64_t resident_weights =
            plan.oc_tiles * plan.ic_passes == 1 ? plan.weight_stream_bytes : 0;
        program.peak_weight_bytes =
            std::max(program.peak_weight_bytes,
                     resident_weights > 0 ? resident_weights
                                          : std::min(plan.weight_stream_bytes,
                                                     config_.weight_bytes));
        program.peak_membrane_bytes =
            std::max(program.peak_membrane_bytes,
                     std::min(plan.membrane_bytes, bank));

        program.layers.push_back(plan);
    }
    return program;
}

namespace {

/// Static per-inference cycle estimate of one layer — the same terms
/// sim::Sia accounts, with spike counts replaced by the nominal
/// `density` (no runtime profile exists at compile time). Only relative
/// magnitudes matter: the pipeline planner balances stages on these.
std::int64_t estimate_layer_cycles(const snn::SnnLayer& layer,
                                   const sim::LayerPlan& plan,
                                   const sim::SiaConfig& config, double density,
                                   std::int64_t timesteps) {
    const std::int64_t lanes = config.pe_count();
    std::int64_t once = config.ps_layer_overhead_cycles;
    std::int64_t per_step = 0;
    if (layer.op == snn::LayerOp::kConv) {
        const snn::Branch& b = layer.main;
        const auto spikes = static_cast<std::int64_t>(
            static_cast<double>(b.in_channels * layer.in_h * layer.in_w) * density +
            0.5);
        once += sim::AxiDma::cycles_for(plan.weight_stream_bytes, config);
        per_step += sim::AxiDma::cycles_for(
            plan.spike_in_bytes * plan.oc_tiles * plan.spatial_tiles, config);
        per_step += spikes * sim::SiaConfig::window_cycles(b.kernel) * plan.oc_tiles;
        if (layer.has_skip()) {
            per_step += sim::AxiDma::cycles_for(plan.residual_in_bytes, config);
            if (!layer.skip_is_identity) {
                const auto skip_spikes = static_cast<std::int64_t>(
                    static_cast<double>(layer.skip.in_channels * layer.in_h *
                                        layer.in_w) *
                        density +
                    0.5);
                per_step += skip_spikes * sim::SiaConfig::window_cycles(1) *
                            plan.oc_tiles;
            }
        }
        per_step += sim::AggregationCore::retire_cycles(
            layer.neurons(), config.aggregation_lanes,
            plan.oc_tiles * config.aggregation_pipeline_depth);
        per_step += sim::AxiDma::cycles_for(plan.spike_out_bytes, config);
    } else {
        const snn::Branch& b = layer.main;
        const auto spikes = static_cast<std::int64_t>(
            static_cast<double>(b.in_features) * density + 0.5);
        const std::int64_t oc_tiles = (b.out_features + lanes - 1) / lanes;
        const auto words = [](std::int64_t bytes) { return (bytes + 3) / 4; };
        per_step += (words(plan.weight_stream_bytes) +
                     words(bits_to_bytes(b.in_features)) + words(b.out_features * 4)) *
                    config.mmio_cycles_per_word;
        per_step += spikes * sim::SiaConfig::window_cycles(1) * oc_tiles;
        per_step += sim::AggregationCore::retire_cycles(
            b.out_features, config.aggregation_lanes,
            oc_tiles * config.aggregation_pipeline_depth);
    }
    return once + per_step * timesteps;
}

/// Slice one layer's plan down to the output-channel/feature range
/// [c0, c1): sliced tiling, transfer volumes, and membrane residency;
/// input-side fields (spike_in, ic chunking, residual) stay full-model
/// because every shard consumes the full gathered input.
sim::LayerPlan slice_layer_plan(const snn::SnnLayer& layer, const sim::LayerPlan& full,
                                const sim::SiaConfig& config, std::int64_t c0,
                                std::int64_t c1) {
    sim::LayerPlan p = full;
    const std::int64_t span = c1 - c0;
    if (span <= 0) {
        p.oc_tiles = 0;
        p.weight_stream_bytes = 0;
        p.spike_out_bytes = 0;
        p.membrane_bytes = 0;
        p.spatial_tiles = 1;
        return p;
    }
    const std::int64_t lanes = config.pe_count();
    p.oc_tiles = (span + lanes - 1) / lanes;
    if (layer.op == snn::LayerOp::kConv) {
        const snn::Branch& b = layer.main;
        p.weight_stream_bytes = span * b.in_channels * b.kernel * b.kernel;
        p.spike_out_bytes = bits_to_bytes(span * layer.out_h * layer.out_w);
        p.membrane_bytes = span * layer.out_h * layer.out_w * 2;
    } else {
        const snn::Branch& b = layer.main;
        p.weight_stream_bytes = b.stream_weight_bytes > 0
                                    ? (full.weight_stream_bytes * span) /
                                          b.out_features
                                    : b.in_features * span;
        p.spike_out_bytes = bits_to_bytes(span);
        p.membrane_bytes = span * 2;
    }
    const std::int64_t bank = config.membrane_bytes / 2;
    p.spatial_tiles = layer.spiking && p.membrane_bytes > bank
                          ? (p.membrane_bytes + bank - 1) / bank
                          : 1;
    return p;
}

}  // namespace

sim::ShardPlan SiaCompiler::compile_sharded(const snn::SnnModel& model,
                                            const ShardOptions& options) const {
    if (options.shards < 1) {
        throw std::invalid_argument(
            "SiaCompiler::compile_sharded: shards must be >= 1");
    }
    sim::ShardPlan plan;
    plan.partition = options.partition;
    plan.shards = options.shards;
    plan.program = compile(model);
    const std::size_t L = model.layers.size();

    if (options.partition == ShardPartition::kPipeline) {
        // Cut legality: a boundary before layer l forwards exactly one
        // spike train — layer l-1's output — so every layer at or after
        // l must read nothing older (model input counts as index -1).
        std::vector<std::size_t> bounds;  // candidate stage starts: {0} ∪ cuts
        bounds.push_back(0);
        for (std::size_t l = 1; l < L; ++l) {
            bool ok = true;
            for (std::size_t k = l; k < L && ok; ++k) {
                const snn::SnnLayer& layer = model.layers[k];
                auto src = static_cast<std::int64_t>(layer.input);
                if (layer.has_skip()) {
                    src = std::min(src, static_cast<std::int64_t>(layer.skip_src));
                }
                ok = src >= static_cast<std::int64_t>(l) - 1;
            }
            if (ok) bounds.push_back(l);
        }
        bounds.push_back(L);

        std::vector<std::int64_t> prefix(L + 1, 0);
        for (std::size_t i = 0; i < L; ++i) {
            prefix[i + 1] =
                prefix[i] + estimate_layer_cycles(model.layers[i],
                                                  plan.program.layers[i], config_,
                                                  options.est_density,
                                                  options.est_timesteps);
        }

        // Balanced min-max DP over the legal boundaries: split the
        // model into exactly `stages` contiguous stages minimizing the
        // largest estimated stage cost.
        const std::size_t B = bounds.size();
        const auto stages = static_cast<std::size_t>(std::min<std::int64_t>(
            options.shards, static_cast<std::int64_t>(B) - 1));
        constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
        // best[p][j]: min over splits of bounds[0..j] into p stages of
        // the max stage cost; from[p][j] reconstructs the split.
        std::vector<std::vector<std::int64_t>> best(
            stages + 1, std::vector<std::int64_t>(B, kInf));
        std::vector<std::vector<std::size_t>> from(
            stages + 1, std::vector<std::size_t>(B, 0));
        best[0][0] = 0;
        for (std::size_t p = 1; p <= stages; ++p) {
            for (std::size_t j = p; j < B; ++j) {
                for (std::size_t i = p - 1; i < j; ++i) {
                    if (best[p - 1][i] == kInf) continue;
                    const std::int64_t stage_cost =
                        prefix[bounds[j]] - prefix[bounds[i]];
                    const std::int64_t cand = std::max(best[p - 1][i], stage_cost);
                    if (cand < best[p][j]) {
                        best[p][j] = cand;
                        from[p][j] = i;
                    }
                }
            }
        }
        std::vector<std::size_t> ends;  // bounds indices, last to first
        for (std::size_t p = stages, j = B - 1; p > 0; --p) {
            ends.push_back(j);
            j = from[p][j];
        }
        plan.stages.resize(stages);
        std::size_t begin_idx = 0;
        for (std::size_t s = 0; s < stages; ++s) {
            const std::size_t end_idx = ends[stages - 1 - s];
            sim::ShardStage& stage = plan.stages[s];
            stage.first = bounds[begin_idx];
            stage.last = bounds[end_idx];
            stage.est_cycles = prefix[stage.last] - prefix[stage.first];
            stage.boundary_bytes =
                stage.last < L ? plan.program.layers[stage.last - 1].spike_out_bytes
                               : 0;
            begin_idx = end_idx;
        }
    } else {
        // Channel-parallel: balanced contiguous output-channel/feature
        // slices per layer; surplus shards get zero-width slices.
        plan.slices.assign(static_cast<std::size_t>(options.shards),
                           std::vector<sim::ShardSlice>(L));
        for (std::size_t l = 0; l < L; ++l) {
            const snn::SnnLayer& layer = model.layers[l];
            const std::int64_t channels = layer.op == snn::LayerOp::kConv
                                              ? layer.out_channels
                                              : layer.main.out_features;
            const std::int64_t base = channels / options.shards;
            const std::int64_t rem = channels % options.shards;
            std::int64_t c = 0;
            for (std::int64_t k = 0; k < options.shards; ++k) {
                const std::int64_t span = base + (k < rem ? 1 : 0);
                sim::ShardSlice& slice =
                    plan.slices[static_cast<std::size_t>(k)][l];
                slice.c0 = c;
                slice.c1 = c + span;
                slice.plan = slice_layer_plan(layer, plan.program.layers[l], config_,
                                              slice.c0, slice.c1);
                c += span;
            }
        }
    }
    return plan;
}

}  // namespace sia::core
