// The three-stage co-optimisation pipeline of Fig. 1:
//   1. train the FP32 ANN (ReLU activations);
//   2. calibrate activation ranges, swap in L-level quantized ReLU with
//      learnable step sizes, finetune (weights + steps + quant scales);
//   3. convert to the integer SnnModel (IF thresholds = learnt steps,
//      INT8 weights, BN folded to aggregation-core G/H).
// Plus the evaluation drivers used by the accuracy/spike-rate figures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/convert.hpp"
#include "data/dataset.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"
#include "tensor/tensor.hpp"
#include "snn/model.hpp"
#include "snn/spike.hpp"

namespace sia::core {

struct PipelineConfig {
    nn::TrainConfig train;              ///< stage-1 schedule
    int levels = 2;                     ///< quantized-ReLU levels L (paper: L=2)
    std::size_t finetune_epochs = 2;    ///< stage-2 schedule
    float finetune_lr = 0.01F;
    std::int64_t calibration_samples = 256;
    ConvertOptions convert;
    bool verbose = false;
};

struct PipelineResult {
    double ann_accuracy = 0.0;   ///< FP32 baseline (Fig. 7/9 "ANN")
    double qann_accuracy = 0.0;  ///< quantized-ReLU finetuned ("ANN post fine tune")
    snn::SnnModel snn;
    std::vector<float> step_sizes;  ///< learnt s_l per spiking layer
};

class Pipeline {
public:
    explicit Pipeline(PipelineConfig config) : config_(config) {}

    /// Run all three stages. The model is trained in place.
    [[nodiscard]] PipelineResult run(nn::Model& model, const data::Dataset& train,
                                     const data::Dataset& test) const;

    /// Stages exposed individually (used by ablations).
    void train_ann(nn::Model& model, const data::Dataset& train) const;
    void quantize_and_finetune(nn::Model& model, const data::Dataset& train) const;
    [[nodiscard]] snn::SnnModel convert(nn::Model& model) const;

private:
    PipelineConfig config_;
};

/// Input encoder: image -> spike train of the given length. The default
/// is thermometer coding of raw pixels; pass a core::HybridFrontEnd
/// bound via lambda for PS-side front-layer execution.
using InputEncoder =
    std::function<snn::SpikeTrain(const tensor::Tensor&, std::int64_t)>;

/// Thermometer coding of raw pixels (the default InputEncoder).
[[nodiscard]] InputEncoder pixel_encoder();

/// SNN accuracy as a function of timesteps: runs each test sample once
/// for `timesteps` steps and scores the prefix prediction at every t.
/// Returns accuracy[t] for t = 1..timesteps (index 0 = 1 step).
[[nodiscard]] std::vector<double> evaluate_snn_over_time(
    const snn::SnnModel& model, const data::Dataset& test, std::int64_t timesteps,
    const InputEncoder& encoder = pixel_encoder());

/// Per-layer average spike rates (spikes / neuron / timestep) over a
/// dataset — the series of Fig. 6 / Fig. 8.
struct SpikeRateProfile {
    std::vector<std::string> labels;
    std::vector<double> rates;
    double overall = 0.0;
};
[[nodiscard]] SpikeRateProfile measure_spike_rates(
    const snn::SnnModel& model, const data::Dataset& data, std::int64_t timesteps,
    const InputEncoder& encoder = pixel_encoder());

}  // namespace sia::core
