#include "core/server.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <utility>
#include <vector>

namespace sia::core {

Server::Server(std::shared_ptr<Backend> backend, ServerOptions options)
    : backend_(std::move(backend)), options_(options),
      runner_(backend_, {.threads = options.threads, .seed = options.seed}) {
    if (options_.max_queue == 0) {
        throw std::invalid_argument("Server: max_queue must be >= 1");
    }
    if (options_.max_batch == 0) {
        throw std::invalid_argument("Server: max_batch must be >= 1");
    }
    dispatcher_ = std::thread([this] { drain_loop(); });
}

Server::~Server() { shutdown(); }

std::optional<std::future<Response>> Server::try_submit(Request request) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (options_.backpressure == BackpressurePolicy::kBlock) {
        space_cv_.wait(lock, [this] {
            return stopping_ || queue_.size() < options_.max_queue;
        });
    }
    if (stopping_ || queue_.size() >= options_.max_queue) {
        ++stats_.rejected;
        return std::nullopt;
    }
    // Pin the RNG stream to the admission sequence (unless the caller
    // pinned one already): batch formation is a timing artifact and must
    // never influence stochastic encodings.
    if (!request.rng_stream) request.rng_stream = next_stream_;
    ++next_stream_;
    ++stats_.submitted;
    Pending pending{std::move(request), std::promise<Response>{},
                    std::chrono::steady_clock::now()};
    std::future<Response> future = pending.promise.get_future();
    queue_.push_back(std::move(pending));
    lock.unlock();
    queue_cv_.notify_one();
    return future;
}

std::future<Response> Server::submit(Request request) {
    auto future = try_submit(std::move(request));
    if (!future) {
        throw std::runtime_error(stopping() ? "Server::submit: shutting down"
                                            : "Server::submit: queue full");
    }
    return std::move(*future);
}

void Server::shutdown() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    queue_cv_.notify_all();
    space_cv_.notify_all();
    std::call_once(join_once_, [this] {
        if (dispatcher_.joinable()) dispatcher_.join();
    });
}

bool Server::stopping() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stopping_;
}

std::size_t Server::queue_depth() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

ServerStats Server::stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void Server::drain_loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping, fully drained

        // Admission window: wait (relative to the *oldest* arrival, so a
        // request never waits longer than max_wait_us for batchmates)
        // until the batch fills, the window closes, or shutdown begins.
        const auto deadline =
            queue_.front().enqueued + std::chrono::microseconds(options_.max_wait_us);
        while (queue_.size() < options_.max_batch && !stopping_) {
            if (queue_cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
        }

        const std::size_t take = std::min(options_.max_batch, queue_.size());
        std::vector<Pending> batch;
        batch.reserve(take);
        for (std::size_t i = 0; i < take; ++i) {
            batch.push_back(std::move(queue_.front()));
            queue_.pop_front();
        }
        ++stats_.batches;
        lock.unlock();
        space_cv_.notify_all();

        std::vector<Request> requests;
        requests.reserve(take);
        for (auto& p : batch) requests.push_back(std::move(p.request));

        std::vector<Response> responses;
        std::exception_ptr failure;
        try {
            responses = runner_.run(requests);
        } catch (...) {
            failure = std::current_exception();
        }
        const auto now = std::chrono::steady_clock::now();

        lock.lock();
        for (const auto& p : batch) {
            if (failure) {
                ++stats_.failed;
            } else {
                ++stats_.completed;
                stats_.latency_us.add(
                    std::chrono::duration<double, std::micro>(now - p.enqueued)
                        .count());
            }
        }
        lock.unlock();

        // Resolve futures outside the lock: promise continuations
        // (futures waited on by submitters) must not observe a held
        // server mutex.
        for (std::size_t i = 0; i < batch.size(); ++i) {
            if (failure) {
                batch[i].promise.set_exception(failure);
            } else {
                batch[i].promise.set_value(std::move(responses[i]));
            }
        }
        lock.lock();
    }
}

}  // namespace sia::core
