#include "core/server.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <set>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/log.hpp"

namespace sia::core {

namespace {

using Clock = std::chrono::steady_clock;

/// Fair-queuing weight of a tenant: slots per round-robin cycle within
/// a priority lane. Unlisted tenants weigh 1; 0 is clamped to 1 (a
/// zero-weight tenant would starve outright, which fairness forbids).
std::uint32_t weight_of(const ServerOptions& options, const std::string& tenant) {
    const auto it = options.tenant_weights.find(tenant);
    return it == options.tenant_weights.end() ? 1U
                                              : std::max<std::uint32_t>(1, it->second);
}

/// One admitted request awaiting wave formation.
struct Queued {
    Request request;
    std::promise<Response> promise;
    Clock::time_point enqueued;
    /// Completion deadline (admission time + Request::deadline_us);
    /// time_point::max() when none. Session windows never carry one —
    /// skipping a window would desync the stream's carried state.
    Clock::time_point expiry = Clock::time_point::max();
};

/// Lifecycle record of one streaming session on a lane. `state` is
/// shared with every queued window of the session; the backend mutates
/// it in place, and the one-window-per-session-per-wave rule in
/// form_wave (plus the lane's single in-flight wave) is what makes
/// that race-free and admission-ordered.
struct SessionEntry {
    std::shared_ptr<snn::SessionState> state;
    std::string tenant;  ///< adopted by every later window (affinity)
    Priority priority = Priority::kNormal;
    std::uint64_t next_seq = 0;  ///< window sequence number to assign
    std::size_t pending = 0;     ///< windows queued or in flight
    bool close_after_pending = false;
    Clock::time_point last_activity;
};

/// Scheduling state of one priority lane: per-tenant FIFOs plus the
/// weighted round-robin rotation over tenants with queued work. The
/// rotation is ordered by activation (first enqueue), so selection is a
/// pure function of admission history — no timing, no hashing.
struct PriorityLaneState {
    std::map<std::string, std::deque<Queued>> per_tenant;
    std::vector<std::string> rotation;
    std::size_t cursor = 0;  ///< next tenant to serve in `rotation`
    std::size_t size = 0;    ///< total requests across per_tenant

    void deactivate(const std::string& tenant) {
        per_tenant.erase(tenant);
        const auto it = std::find(rotation.begin(), rotation.end(), tenant);
        const auto idx = static_cast<std::size_t>(it - rotation.begin());
        rotation.erase(it);
        if (rotation.empty()) {
            cursor = 0;
        } else {
            if (idx < cursor) --cursor;
            cursor %= rotation.size();
        }
    }
};

/// Outcome of executing one wave outside the lane lock.
struct WaveExecResult {
    std::vector<Response> responses;           ///< one per wave slot
    std::vector<std::uint8_t> primary_failed;  ///< ultimate primary outcome (breaker feed)
    std::size_t retried = 0;    ///< same-backend re-runs performed
    std::size_t failovers = 0;  ///< requests served by the fallback
    bool bisected = false;      ///< the wave threw and was quarantined
};

/// Executes one wave with failure isolation (docs/ARCHITECTURE.md §8).
///
/// A throwing wave is bisected: both halves re-run independently, so
/// only sub-spans containing a genuinely poisoned request keep failing
/// and healthy co-batched requests complete normally. At span size 1
/// the failure is classified — std::invalid_argument resolves as
/// kInvalidRequest (the request's own fault, never retried);
/// TransientError is retried with exponential backoff up to
/// FaultOptions::max_retries; anything else is a permanent backend
/// failure. A request whose primary runs are exhausted fails over to
/// the lane's fallback runner when one is registered, else resolves as
/// kBackendError.
///
/// Correctness of every re-run rests on two invariants: (a) the
/// request's rng_stream was pinned at admission, so a re-run encodes
/// bit-identically to the first attempt; (b) the pre-wave SessionState
/// of every session window is snapshotted up front and restored before
/// any re-run, so a failed attempt never leaks partial membrane
/// updates into the next one. A window that ultimately fails leaves
/// its session at the pre-wave snapshot — as if the window never ran —
/// and the stream continues from there.
class WaveExecutor {
public:
    WaveExecutor(BatchRunner& runner, BatchRunner* fallback,
                 const std::string& lane_name, const FaultOptions& fault,
                 std::vector<Request>& requests,
                 const std::vector<Clock::time_point>& expiry)
        : runner_(runner), fallback_(fallback), lane_(lane_name), fault_(fault),
          requests_(requests), expiry_(expiry) {
        result_.responses.resize(requests.size());
        result_.primary_failed.assign(requests.size(), 0);
        snapshots_.resize(requests.size());
        for (std::size_t i = 0; i < requests.size(); ++i) {
            if (requests[i].session_state) {
                snapshots_[i] =
                    std::make_unique<snn::SessionState>(*requests[i].session_state);
            }
        }
    }

    [[nodiscard]] WaveExecResult run() {
        solve(0, requests_.size());
        return std::move(result_);
    }

private:
    struct Classified {
        bool transient = false;
        bool invalid = false;
        std::string what;
    };

    [[nodiscard]] static Classified classify(const std::exception_ptr& failure) {
        Classified c;
        try {
            std::rethrow_exception(failure);
        } catch (const TransientError& e) {
            c.transient = true;
            c.what = e.what();
        } catch (const std::invalid_argument& e) {
            c.invalid = true;
            c.what = e.what();
        } catch (const std::exception& e) {
            c.what = e.what();
        } catch (...) {
            c.what = "unknown error";
        }
        return c;
    }

    void restore(std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            if (snapshots_[i]) *requests_[i].session_state = *snapshots_[i];
        }
    }

    /// Run [lo, hi) through `runner`, filling the response slots on
    /// success. Returns the failure instead of throwing.
    [[nodiscard]] std::exception_ptr try_run(BatchRunner& runner, std::size_t lo,
                                             std::size_t hi) {
        try {
            auto responses = runner.run(
                std::span<const Request>(requests_.data() + lo, hi - lo));
            for (std::size_t i = lo; i < hi; ++i) {
                result_.responses[i] = std::move(responses[i - lo]);
            }
            return nullptr;
        } catch (...) {
            return std::current_exception();
        }
    }

    /// Invariant: every session state in [lo, hi) is at its pre-wave
    /// snapshot on entry; a successful run advances it exactly once.
    void solve(std::size_t lo, std::size_t hi) {
        if (lo == hi) return;
        const std::exception_ptr failure = try_run(runner_, lo, hi);
        if (!failure) return;
        restore(lo, hi);
        if (hi - lo > 1) {
            result_.bisected = true;
            const std::size_t mid = lo + (hi - lo) / 2;
            solve(lo, mid);
            solve(mid, hi);
            return;
        }
        resolve_single(lo, failure);
    }

    void fail(std::size_t i, ErrorCode code, std::string what,
              std::uint32_t attempts) {
        Response r;
        r.session = requests_[i].session;
        r.window_seq = requests_[i].window_seq;
        r.error_code = code;
        r.error = std::move(what);
        r.retries = attempts;
        result_.responses[i] = std::move(r);
    }

    void resolve_single(std::size_t i, const std::exception_ptr& failure) {
        Classified c = classify(failure);
        util::log_warn("Server: lane '", lane_, "': request (stream ",
                       requests_[i].rng_stream.value_or(0), ") failed: ", c.what);
        if (c.invalid) {
            // The request itself is malformed: not the backend's fault,
            // so it is never retried or failed over and does not feed
            // the lane's breaker.
            fail(i, ErrorCode::kInvalidRequest, std::move(c.what), 0);
            return;
        }
        std::uint32_t attempts = 0;
        while (c.transient && attempts < fault_.max_retries) {
            if (Clock::now() >= expiry_[i]) {
                fail(i, ErrorCode::kDeadlineExceeded,
                     "deadline exceeded during retry; last error: " + c.what,
                     attempts);
                result_.primary_failed[i] = 1;
                return;
            }
            std::this_thread::sleep_for(
                std::chrono::microseconds(fault_.retry_backoff_us << attempts));
            ++attempts;
            ++result_.retried;
            requests_[i].attempt = attempts;
            const std::exception_ptr retry_failure = try_run(runner_, i, i + 1);
            if (!retry_failure) {
                result_.responses[i].retries = attempts;
                return;
            }
            restore(i, i + 1);
            c = classify(retry_failure);
            if (c.invalid) {
                fail(i, ErrorCode::kInvalidRequest, std::move(c.what), attempts);
                return;
            }
        }
        result_.primary_failed[i] = 1;
        if (fallback_ != nullptr) {
            requests_[i].attempt = 0;
            const std::exception_ptr fb_failure = try_run(*fallback_, i, i + 1);
            if (!fb_failure) {
                result_.responses[i].retries = attempts;
                result_.responses[i].failed_over = true;
                ++result_.failovers;
                return;
            }
            restore(i, i + 1);
            c.what += "; fallback: " + classify(fb_failure).what;
        }
        fail(i, ErrorCode::kBackendError, std::move(c.what), attempts);
    }

    BatchRunner& runner_;
    BatchRunner* fallback_;
    const std::string& lane_;
    const FaultOptions& fault_;
    std::vector<Request>& requests_;
    const std::vector<Clock::time_point>& expiry_;
    std::vector<std::unique_ptr<snn::SessionState>> snapshots_;
    WaveExecResult result_;
};

}  // namespace

const char* to_string(BreakerState state) noexcept {
    switch (state) {
        case BreakerState::kClosed: return "closed";
        case BreakerState::kOpen: return "open";
        case BreakerState::kHalfOpen: return "half-open";
    }
    return "?";
}

void TenantStats::merge(const TenantStats& other) {
    submitted += other.submitted;
    completed += other.completed;
    rejected += other.rejected;
    shed += other.shed;
    failed += other.failed;
    sessions_opened += other.sessions_opened;
    sessions_closed += other.sessions_closed;
    sessions_expired += other.sessions_expired;
    latency_us.merge(other.latency_us);
    // A default-constructed slot (e.g. a fresh map entry during
    // aggregation) adopts the incoming threshold before the exact
    // counter merge.
    if (slo.total() == 0 && slo.threshold() != other.slo.threshold()) {
        slo = util::SloBurnCounter(other.slo.threshold());
    }
    slo.merge(other.slo);
}

/// One registered model: its backend + runner, its admission queue
/// (priority lanes over per-tenant FIFOs), its dispatcher thread, and
/// the stats slice it owns. `mutex` guards every mutable field; the
/// dispatcher only drops it while a wave is in flight (in_flight > 0),
/// which is exactly the window reload_model waits out before swapping
/// backend/runner.
struct Server::ModelLane {
    std::string name;
    std::shared_ptr<Backend> backend;
    std::unique_ptr<BatchRunner> runner;
    /// Registered fallback (set_fallback): an open breaker routes whole
    /// waves here; a permanently-failing request retries here
    /// individually. Swapped only while in_flight == 0 (same quiesce
    /// protocol as reload), so the dispatcher's unlocked use is stable.
    std::shared_ptr<Backend> fallback;
    std::unique_ptr<BatchRunner> fallback_runner;

    mutable std::mutex mutex;
    std::condition_variable work_cv;   ///< wakes the dispatcher
    std::condition_variable space_cv;  ///< wakes blocked submitters
    std::condition_variable idle_cv;   ///< wakes reload waiting for quiesce

    std::array<PriorityLaneState, kPriorityLanes> prio;
    std::size_t queued = 0;     ///< across all priority lanes
    std::size_t in_flight = 0;  ///< requests of the wave being executed
    bool stopping = false;      ///< shutdown or unregister drain
    bool paused = false;        ///< reload quiesce: no new waves
    std::uint64_t next_stream = 0;  ///< admission sequence number

    // Circuit breaker (state machine in docs/ARCHITECTURE.md §8).
    BreakerState breaker = BreakerState::kClosed;
    Clock::time_point breaker_opened{};
    std::uint32_t probe_successes = 0;       ///< consecutive half-open probe wins
    std::size_t consecutive_failures = 0;    ///< consecutive primary request failures
    std::deque<bool> outcome_window;         ///< recent primary outcomes (true = failed)
    std::size_t window_failures = 0;         ///< failures inside outcome_window

    // Stats slice (merged by Server::stats()).
    std::size_t submitted = 0;
    std::size_t rejected = 0;
    std::size_t shed = 0;
    std::size_t completed = 0;
    std::size_t failed = 0;
    std::size_t batches = 0;
    std::size_t reloads = 0;
    std::size_t sessions_opened = 0;
    std::size_t sessions_closed = 0;
    std::size_t sessions_expired = 0;
    std::size_t retried = 0;
    std::size_t failed_over = 0;
    std::size_t deadline_expired = 0;
    std::size_t breaker_trips = 0;
    std::size_t probes = 0;
    std::size_t isolated_waves = 0;
    util::StreamingHistogram latency_us;
    std::map<std::string, TenantStats> tenants;

    /// Streaming sessions keyed by id; guarded by `mutex`.
    std::map<std::string, SessionEntry> sessions;

    std::thread dispatcher;
    std::once_flag join_once;

    TenantStats& tenant_slot(const std::string& tenant, double slo_us) {
        const auto [it, fresh] = tenants.try_emplace(tenant);
        if (fresh) it->second.slo = util::SloBurnCounter(slo_us);
        return it->second;
    }

    /// Remove `it` from the session table, accounting the retirement
    /// as an explicit close or an idle expiry. Caller holds `mutex`.
    void retire_session(std::map<std::string, SessionEntry>::iterator it,
                        bool expired, double slo_us) {
        TenantStats& slice = tenant_slot(it->second.tenant, slo_us);
        if (expired) {
            ++sessions_expired;
            ++slice.sessions_expired;
        } else {
            ++sessions_closed;
            ++slice.sessions_closed;
        }
        sessions.erase(it);
    }

    /// Lazily retire sessions idle past the configured horizon (no
    /// queued or in-flight window). Runs at admission and after each
    /// wave; caller holds `mutex`.
    void expire_idle(const ServerOptions& options, Clock::time_point now) {
        if (options.session_idle_ms <= 0) return;
        const auto horizon = std::chrono::milliseconds(options.session_idle_ms);
        for (auto it = sessions.begin(); it != sessions.end();) {
            const auto next = std::next(it);
            if (it->second.pending == 0 && now - it->second.last_activity > horizon) {
                retire_session(it, /*expired=*/true, options.slo_us);
            }
            it = next;
        }
    }

    void enqueue(Queued q) {
        auto& lane = prio[static_cast<std::size_t>(q.request.priority)];
        const auto [it, fresh] = lane.per_tenant.try_emplace(q.request.tenant);
        if (fresh) lane.rotation.push_back(q.request.tenant);
        it->second.push_back(std::move(q));
        ++lane.size;
        ++queued;
    }

    /// Form the next wave (up to max_batch) from the queues. The high
    /// lane preempts batch formation: a wave that contains
    /// high-priority work contains nothing else — a request's future
    /// resolves when its whole wave completes, so batching premium
    /// requests with lower-priority ones would make them wait on their
    /// own batchmates. When the high lane is empty, normal fills first
    /// and low tops the wave up. Within a lane, weighted round-robin
    /// over tenants (each tenant takes up to `weight` slots per
    /// visit); when the wave fills mid-quantum the cursor stays on
    /// that tenant, so the next wave resumes where this one was cut
    /// off.
    ///
    /// Streaming constraint: a wave carries at most ONE window per
    /// session — two in one wave would race the shared carried state
    /// and could retire out of order. A blocked session head also
    /// blocks the rest of its tenant's FIFO for this wave (windows of
    /// one session must run in admission order, and skipping past the
    /// head could overtake it). The first window of a session taken
    /// into an empty wave is never blocked, so formation always makes
    /// progress; a stall counter stops the rotation scan once every
    /// remaining tenant head is blocked.
    /// Deadline sweep (fault model): an expired request visited during
    /// formation is siphoned into `expired` instead of the wave — it
    /// never occupies a wave slot and never reaches a backend. Only
    /// stateless requests carry an expiry (see Queued::expiry).
    [[nodiscard]] std::vector<Queued> form_wave(const ServerOptions& options,
                                                Clock::time_point now,
                                                std::vector<Queued>& expired) {
        std::vector<Queued> wave;
        wave.reserve(std::min(options.max_batch, queued));
        std::set<std::string> wave_sessions;
        for (std::size_t p = 0; p < kPriorityLanes; ++p) {
            if (p == 1 && !wave.empty()) break;  // high preempts formation
            auto& lane = prio[p];
            std::size_t stalled = 0;  ///< consecutive tenants yielding nothing
            while (lane.size > 0 && wave.size() < options.max_batch &&
                   stalled < lane.rotation.size()) {
                const std::string tenant = lane.rotation[lane.cursor];
                auto& fifo = lane.per_tenant[tenant];
                const std::uint32_t quantum = weight_of(options, tenant);
                std::uint32_t took = 0;
                bool blocked = false;
                while (took < quantum && !fifo.empty() &&
                       wave.size() < options.max_batch) {
                    if (fifo.front().expiry <= now) {
                        expired.push_back(std::move(fifo.front()));
                        fifo.pop_front();
                        --lane.size;
                        --queued;
                        continue;
                    }
                    const Request& head = fifo.front().request;
                    if (!head.session.empty() &&
                        !wave_sessions.insert(head.session).second) {
                        blocked = true;
                        break;
                    }
                    wave.push_back(std::move(fifo.front()));
                    fifo.pop_front();
                    --lane.size;
                    --queued;
                    ++took;
                }
                if (fifo.empty()) {
                    lane.deactivate(tenant);
                    stalled = 0;
                } else if (blocked || took == quantum) {
                    lane.cursor = (lane.cursor + 1) % lane.rotation.size();
                    stalled = took == 0 ? stalled + 1 : 0;
                }
            }
        }
        return wave;
    }

    /// Under kReject with a full queue: make room for an incoming
    /// request by evicting a queued one of *strictly lower* priority —
    /// the low lane sheds first. The victim is the youngest *sheddable*
    /// request of the busiest sheddable tenant in the lowest-priority
    /// non-empty lane (deterministic given queue state; sheds from
    /// whoever is loading the queue hardest, and the youngest request
    /// loses the least invested waiting time). Session windows are
    /// never shed — dropping one mid-stream would desync the session's
    /// carried state — so a tenant queueing only session windows is
    /// passed over. nullopt when nothing sheddable outranks.
    [[nodiscard]] std::optional<Queued> try_evict(Priority incoming) {
        const auto sheddable = [](const Queued& q) {
            return q.request.session.empty();
        };
        for (std::size_t p = kPriorityLanes; p-- > 0;) {
            if (p <= static_cast<std::size_t>(incoming)) break;
            auto& lane = prio[p];
            if (lane.size == 0) continue;
            const std::string* busiest = nullptr;
            std::size_t longest = 0;
            for (const auto& [tenant, fifo] : lane.per_tenant) {
                if (std::any_of(fifo.begin(), fifo.end(), sheddable) &&
                    fifo.size() >= longest) {
                    longest = fifo.size();
                    busiest = &tenant;
                }
            }
            if (busiest == nullptr) continue;
            const std::string tenant = *busiest;
            auto& fifo = lane.per_tenant[tenant];
            for (auto it = fifo.rbegin(); it != fifo.rend(); ++it) {
                if (!sheddable(*it)) continue;
                Queued victim = std::move(*it);
                fifo.erase(std::next(it).base());
                --lane.size;
                --queued;
                if (fifo.empty()) lane.deactivate(tenant);
                return victim;
            }
        }
        return std::nullopt;
    }

    void merge_into(ServerStats& out) const {
        out.submitted += submitted;
        out.rejected += rejected;
        out.shed += shed;
        out.completed += completed;
        out.failed += failed;
        out.batches += batches;
        out.reloads += reloads;
        out.sessions_opened += sessions_opened;
        out.sessions_closed += sessions_closed;
        out.sessions_expired += sessions_expired;
        out.active_sessions += sessions.size();
        out.retried += retried;
        out.failed_over += failed_over;
        out.deadline_expired += deadline_expired;
        out.breaker_trips += breaker_trips;
        out.isolated_waves += isolated_waves;
        out.latency_us.merge(latency_us);
        for (const auto& [tenant, slice] : tenants) out.tenants[tenant].merge(slice);
    }
};

// ------------------------------------------------------------------ Server

Server::Server(ServerOptions options) : options_(std::move(options)) {
    if (options_.max_queue == 0) {
        throw std::invalid_argument("Server: max_queue must be >= 1");
    }
    if (options_.max_batch == 0) {
        throw std::invalid_argument("Server: max_batch must be >= 1");
    }
}

Server::Server(std::shared_ptr<Backend> backend, ServerOptions options)
    : Server(std::move(options)) {
    register_model(kDefaultModel, std::move(backend));
}

Server::~Server() { shutdown(); }

void Server::register_model(const std::string& name,
                            std::shared_ptr<Backend> backend) {
    if (name.empty()) {
        throw std::invalid_argument("Server::register_model: empty model name");
    }
    if (!backend) {
        throw std::invalid_argument("Server::register_model: null backend");
    }
    auto lane = std::make_shared<ModelLane>();
    lane->name = name;
    lane->backend = std::move(backend);
    lane->runner = std::make_unique<BatchRunner>(
        lane->backend,
        BatchOptions{.threads = options_.threads, .seed = options_.seed});

    const std::lock_guard<std::mutex> lock(registry_mutex_);
    if (stopping_) {
        throw std::runtime_error("Server::register_model: shutting down");
    }
    if (lanes_.count(name) != 0) {
        throw std::invalid_argument("Server::register_model: duplicate model '" +
                                    name + "'");
    }
    // Start the dispatcher while still holding the registry lock:
    // shutdown() also takes it first, so a lane is never visible in the
    // map with its dispatcher not yet joinable.
    lane->dispatcher = std::thread([this, lane] { lane_loop(*lane); });
    lanes_.emplace(name, std::move(lane));
}

void Server::reload_model(const std::string& name, std::shared_ptr<Backend> backend) {
    if (!backend) {
        throw std::invalid_argument("Server::reload_model: null backend");
    }
    std::shared_ptr<ModelLane> lane;
    {
        const std::lock_guard<std::mutex> lock(registry_mutex_);
        const auto it = lanes_.find(name);
        if (it == lanes_.end()) {
            throw std::invalid_argument("Server::reload_model: unknown model '" +
                                        name + "'");
        }
        lane = it->second;
    }
    // Build the replacement runner before quiescing so its pool spin-up
    // is off the pause window.
    auto runner = std::make_unique<BatchRunner>(
        backend, BatchOptions{.threads = options_.threads, .seed = options_.seed});
    {
        std::unique_lock<std::mutex> lock(lane->mutex);
        lane->paused = true;
        lane->idle_cv.wait(lock, [&] { return lane->in_flight == 0; });
        lane->backend = std::move(backend);
        lane->runner = std::move(runner);
        ++lane->reloads;
        lane->paused = false;
    }
    lane->work_cv.notify_all();
}

void Server::set_fallback(const std::string& name, std::shared_ptr<Backend> backend) {
    std::shared_ptr<ModelLane> lane;
    {
        const std::lock_guard<std::mutex> lock(registry_mutex_);
        const auto it = lanes_.find(name);
        if (it == lanes_.end()) {
            throw std::invalid_argument("Server::set_fallback: unknown model '" +
                                        name + "'");
        }
        lane = it->second;
    }
    std::unique_ptr<BatchRunner> runner;
    if (backend) {
        runner = std::make_unique<BatchRunner>(
            backend,
            BatchOptions{.threads = options_.threads, .seed = options_.seed});
    }
    // Same quiesce protocol as reload: the dispatcher uses the fallback
    // runner unlocked while a wave is in flight, so swap only at
    // in_flight == 0.
    {
        std::unique_lock<std::mutex> lock(lane->mutex);
        lane->paused = true;
        lane->idle_cv.wait(lock, [&] { return lane->in_flight == 0; });
        lane->fallback = std::move(backend);
        lane->fallback_runner = std::move(runner);
        lane->paused = false;
    }
    lane->work_cv.notify_all();
}

LaneStats Server::lane_stats(const std::string& model) const {
    const std::shared_ptr<ModelLane> lane = route(model);
    if (!lane) {
        throw std::invalid_argument("Server::lane_stats: unknown model '" + model +
                                    "'");
    }
    const std::lock_guard<std::mutex> lock(lane->mutex);
    LaneStats out;
    out.breaker = lane->breaker;
    out.has_fallback = lane->fallback_runner != nullptr;
    out.breaker_trips = lane->breaker_trips;
    out.probes = lane->probes;
    out.failovers = lane->failed_over;
    out.retries = lane->retried;
    out.isolated_waves = lane->isolated_waves;
    out.deadline_expired = lane->deadline_expired;
    return out;
}

void Server::unregister_model(const std::string& name) {
    std::shared_ptr<ModelLane> lane;
    {
        const std::lock_guard<std::mutex> lock(registry_mutex_);
        const auto it = lanes_.find(name);
        if (it == lanes_.end()) {
            throw std::invalid_argument("Server::unregister_model: unknown model '" +
                                        name + "'");
        }
        lane = it->second;
        lanes_.erase(it);
    }
    stop_lane(*lane);  // drains the lane's queue through its backend
    const std::lock_guard<std::mutex> registry_lock(registry_mutex_);
    const std::lock_guard<std::mutex> lane_lock(lane->mutex);
    // Open sessions die with the lane; account them as closed so the
    // retired slice never reports them active.
    while (!lane->sessions.empty()) {
        lane->retire_session(lane->sessions.begin(), /*expired=*/false,
                             options_.slo_us);
    }
    lane->merge_into(retired_);
}

std::vector<std::string> Server::model_names() const {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    std::vector<std::string> names;
    names.reserve(lanes_.size());
    for (const auto& [name, lane] : lanes_) names.push_back(name);
    return names;
}

std::shared_ptr<Server::ModelLane> Server::route(const std::string& model) const {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    if (!model.empty()) {
        const auto it = lanes_.find(model);
        return it != lanes_.end() ? it->second : nullptr;
    }
    if (lanes_.size() == 1) return lanes_.begin()->second;
    const auto it = lanes_.find(kDefaultModel);
    return it != lanes_.end() ? it->second : nullptr;
}

std::optional<std::future<Response>> Server::try_submit(Request request) {
    ErrorCode why = ErrorCode::kOk;
    return try_submit(std::move(request), why);
}

std::optional<std::future<Response>> Server::try_submit(Request request,
                                                        ErrorCode& why) {
    why = ErrorCode::kOk;
    // Borrowed views (view_train / view_thermometer / view_poisson)
    // reference caller memory that can die the moment submit returns;
    // dispatch is asynchronous, so self-contain the request before it
    // is queued.
    request.own_views();
    const std::shared_ptr<ModelLane> lane = route(request.model);
    if (!lane) {
        const std::lock_guard<std::mutex> lock(registry_mutex_);
        ++unroutable_;
        why = stopping_ ? ErrorCode::kShuttingDown : ErrorCode::kUnknownModel;
        return std::nullopt;
    }

    // Session windows never carry a deadline: skipping one would desync
    // the stream's carried state (same reason they are never shed).
    const auto now = Clock::now();
    const auto expiry = (request.deadline_us > 0 && request.session.empty())
                            ? now + std::chrono::microseconds(request.deadline_us)
                            : Clock::time_point::max();

    std::optional<Queued> victim;
    std::future<Response> future;
    {
        std::unique_lock<std::mutex> lock(lane->mutex);
        if (options_.backpressure == BackpressurePolicy::kBlock) {
            const auto space = [&] {
                return lane->stopping || lane->queued < options_.max_queue;
            };
            if (expiry == Clock::time_point::max()) {
                lane->space_cv.wait(lock, space);
            } else if (!lane->space_cv.wait_until(lock, expiry, space)) {
                // Deadline elapsed while blocked on a full queue:
                // resolve deterministically instead of waiting forever.
                ++lane->rejected;
                ++lane->deadline_expired;
                ++lane->tenant_slot(request.tenant, options_.slo_us).rejected;
                std::promise<Response> promise;
                Response response;
                response.error_code = ErrorCode::kDeadlineExceeded;
                response.error =
                    "Server: deadline exceeded while waiting for queue space";
                promise.set_value(std::move(response));
                return promise.get_future();
            }
        }
        if (lane->stopping) {
            // Admission raced shutdown (or an unregister drain): a
            // deterministic kShuttingDown rejection, never a
            // blocked-forever future.
            ++lane->rejected;
            ++lane->tenant_slot(request.tenant, options_.slo_us).rejected;
            why = ErrorCode::kShuttingDown;
            return std::nullopt;
        }
        lane->expire_idle(options_, Clock::now());
        // A window of a known session inherits the session's routing
        // (tenant + priority): affinity keeps every window in one
        // tenant FIFO of one priority lane, which is what serializes
        // them in admission order.
        if (!request.session.empty()) {
            const auto sit = lane->sessions.find(request.session);
            if (sit != lane->sessions.end()) {
                request.tenant = sit->second.tenant;
                request.priority = sit->second.priority;
            }
        }
        if (lane->queued >= options_.max_queue) {
            victim = lane->try_evict(request.priority);
            if (!victim) {
                ++lane->rejected;
                ++lane->tenant_slot(request.tenant, options_.slo_us).rejected;
                why = ErrorCode::kQueueFull;
                return std::nullopt;
            }
            ++lane->shed;
            ++lane->tenant_slot(victim->request.tenant, options_.slo_us).shed;
        }
        // Pin the RNG stream to the lane's admission sequence (unless
        // the caller pinned one already): wave formation, priorities,
        // and tenant interleaving are scheduling artifacts and must
        // never influence stochastic encodings.
        if (!request.rng_stream) request.rng_stream = lane->next_stream;
        ++lane->next_stream;
        ++lane->submitted;
        ++lane->tenant_slot(request.tenant, options_.slo_us).submitted;
        // Open or extend the streaming session now that admission is
        // certain: attach the shared carried state, stamp the window's
        // sequence number, and record the pending window.
        if (!request.session.empty()) {
            const auto [sit, fresh] = lane->sessions.try_emplace(request.session);
            SessionEntry& entry = sit->second;
            if (fresh) {
                entry.state = std::make_shared<snn::SessionState>();
                entry.tenant = request.tenant;
                entry.priority = request.priority;
                ++lane->sessions_opened;
                ++lane->tenant_slot(entry.tenant, options_.slo_us).sessions_opened;
            }
            request.window_seq = entry.next_seq++;
            request.session_state = entry.state;
            ++entry.pending;
            if (request.close_session) entry.close_after_pending = true;
            entry.last_activity = Clock::now();
        }
        Queued pending{std::move(request), std::promise<Response>{}, Clock::now(),
                       expiry};
        future = pending.promise.get_future();
        lane->enqueue(std::move(pending));
    }
    lane->work_cv.notify_one();
    // Resolve the shed victim outside the lane lock (its waiter may
    // immediately re-enter the server).
    if (victim) {
        victim->promise.set_exception(std::make_exception_ptr(std::runtime_error(
            "Server: request shed (displaced by a higher-priority request)")));
    }
    return future;
}

std::future<Response> Server::submit(Request request) {
    ErrorCode why = ErrorCode::kOk;
    auto future = try_submit(std::move(request), why);
    if (!future) {
        // Deterministic, code-tagged refusal: callers racing shutdown
        // can distinguish kShuttingDown from kQueueFull/kUnknownModel.
        throw std::runtime_error(std::string("Server::submit: rejected (") +
                                 to_string(why) + ")");
    }
    return std::move(*future);
}

bool Server::close_session(const std::string& session, const std::string& model) {
    const std::shared_ptr<ModelLane> lane = route(model);
    if (!lane) return false;
    const std::lock_guard<std::mutex> lock(lane->mutex);
    const auto it = lane->sessions.find(session);
    if (it == lane->sessions.end()) return false;
    if (it->second.pending > 0) {
        // Windows are queued or in flight: let them resolve (each sees
        // the state its predecessors left), then retire at the wave
        // boundary that drains the last one.
        it->second.close_after_pending = true;
    } else {
        lane->retire_session(it, /*expired=*/false, options_.slo_us);
    }
    return true;
}

std::size_t Server::session_count() const {
    std::vector<std::shared_ptr<ModelLane>> lanes;
    {
        const std::lock_guard<std::mutex> lock(registry_mutex_);
        for (const auto& [name, lane] : lanes_) lanes.push_back(lane);
    }
    std::size_t count = 0;
    for (const auto& lane : lanes) {
        const std::lock_guard<std::mutex> lock(lane->mutex);
        count += lane->sessions.size();
    }
    return count;
}

std::size_t Server::session_count(const std::string& model) const {
    const std::shared_ptr<ModelLane> lane = route(model);
    if (!lane) return 0;
    const std::lock_guard<std::mutex> lock(lane->mutex);
    return lane->sessions.size();
}

void Server::shutdown() {
    std::vector<std::shared_ptr<ModelLane>> lanes;
    {
        const std::lock_guard<std::mutex> lock(registry_mutex_);
        stopping_ = true;
        lanes.reserve(lanes_.size());
        for (const auto& [name, lane] : lanes_) lanes.push_back(lane);
    }
    for (const auto& lane : lanes) stop_lane(*lane);
}

void Server::stop_lane(ModelLane& lane) {
    {
        const std::lock_guard<std::mutex> lock(lane.mutex);
        lane.stopping = true;
    }
    lane.work_cv.notify_all();
    lane.space_cv.notify_all();
    std::call_once(lane.join_once, [&] {
        if (lane.dispatcher.joinable()) lane.dispatcher.join();
    });
}

bool Server::stopping() const {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    return stopping_;
}

std::size_t Server::queue_depth() const {
    std::vector<std::shared_ptr<ModelLane>> lanes;
    {
        const std::lock_guard<std::mutex> lock(registry_mutex_);
        for (const auto& [name, lane] : lanes_) lanes.push_back(lane);
    }
    std::size_t depth = 0;
    for (const auto& lane : lanes) {
        const std::lock_guard<std::mutex> lock(lane->mutex);
        depth += lane->queued;
    }
    return depth;
}

std::size_t Server::queue_depth(const std::string& model) const {
    const std::shared_ptr<ModelLane> lane = route(model);
    if (!lane) return 0;
    const std::lock_guard<std::mutex> lock(lane->mutex);
    return lane->queued;
}

ServerStats Server::stats() const {
    std::vector<std::shared_ptr<ModelLane>> lanes;
    ServerStats out;
    {
        const std::lock_guard<std::mutex> lock(registry_mutex_);
        for (const auto& [name, lane] : lanes_) lanes.push_back(lane);
        out = retired_;
        out.rejected += unroutable_;
    }
    for (const auto& lane : lanes) {
        const std::lock_guard<std::mutex> lock(lane->mutex);
        lane->merge_into(out);
    }
    return out;
}

Backend& Server::backend() {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    if (lanes_.size() != 1) {
        throw std::logic_error("Server::backend: not a single-model server");
    }
    return *lanes_.begin()->second->backend;
}

void Server::lane_loop(ModelLane& lane) {
    /// How a wave is routed by the lane's breaker state.
    enum class Route : std::uint8_t {
        kPrimary,   ///< closed: primary backend, failures feed the breaker
        kProbe,     ///< half-open: primary as a probe
        kFallback,  ///< open with a fallback: whole wave on the fallback
        kFailFast,  ///< open, no fallback: resolve kCircuitOpen, run nothing
    };
    const FaultOptions& fault = options_.fault;

    std::unique_lock<std::mutex> lock(lane.mutex);
    for (;;) {
        lane.work_cv.wait(lock, [&] {
            return !lane.paused && (lane.stopping || lane.queued > 0);
        });
        if (lane.queued == 0) return;  // stopping, fully drained

        // Continuous batching: the wave forms from whatever accumulated
        // while the previous wave executed — the in-flight wave is the
        // batching window. A lone request on an idle lane dispatches
        // immediately; under load, wave size adapts to the backlog.
        const auto formed_at = Clock::now();
        std::vector<Queued> expired;
        std::vector<Queued> wave = lane.form_wave(options_, formed_at, expired);
        for (const Queued& q : expired) {
            ++lane.failed;
            ++lane.deadline_expired;
            ++lane.tenant_slot(q.request.tenant, options_.slo_us).failed;
        }
        const auto resolve_expired = [&expired] {
            for (Queued& q : expired) {
                Response response;
                response.error_code = ErrorCode::kDeadlineExceeded;
                response.error = "Server: deadline exceeded before dispatch";
                q.promise.set_value(std::move(response));
            }
            expired.clear();
        };
        if (wave.empty()) {  // everything visited had expired
            lock.unlock();
            lane.space_cv.notify_all();
            resolve_expired();
            lock.lock();
            continue;
        }
        ++lane.batches;
        lane.in_flight = wave.size();

        // Breaker routing, decided under the lock. The cooldown
        // transition (open -> half-open) also happens here: the next
        // wave after the cooldown probes the primary.
        if (lane.breaker == BreakerState::kOpen &&
            formed_at - lane.breaker_opened >=
                std::chrono::milliseconds(fault.breaker_cooldown_ms)) {
            lane.breaker = BreakerState::kHalfOpen;
            lane.probe_successes = 0;
            util::log_info("Server: lane '", lane.name,
                           "': breaker half-open, probing primary");
        }
        Route route = Route::kPrimary;
        if (lane.breaker == BreakerState::kOpen) {
            route = lane.fallback_runner ? Route::kFallback : Route::kFailFast;
        } else if (lane.breaker == BreakerState::kHalfOpen) {
            route = Route::kProbe;
            ++lane.probes;
        }
        // Stable across the unlocked region: reload_model/set_fallback
        // only swap runners after waiting for in_flight == 0.
        BatchRunner& runner = *lane.runner;
        BatchRunner* fallback = lane.fallback_runner.get();
        lock.unlock();
        lane.space_cv.notify_all();
        resolve_expired();

        std::vector<Request> requests;
        requests.reserve(wave.size());
        for (auto& q : wave) requests.push_back(std::move(q.request));
        std::vector<Clock::time_point> expiries;
        expiries.reserve(wave.size());
        for (const auto& q : wave) expiries.push_back(q.expiry);

        WaveExecResult res;
        switch (route) {
            case Route::kPrimary:
            case Route::kProbe:
                res = WaveExecutor(runner, fallback, lane.name, fault, requests,
                                   expiries)
                          .run();
                break;
            case Route::kFallback: {
                // Open breaker: the whole wave degrades to the fallback
                // backend (same logits contract); nothing feeds the
                // primary's breaker stats while it cools down.
                res = WaveExecutor(*fallback, nullptr, lane.name, fault, requests,
                                   expiries)
                          .run();
                res.primary_failed.assign(requests.size(), 0);
                for (Response& r : res.responses) {
                    if (r.ok()) {
                        r.failed_over = true;
                        ++res.failovers;
                    }
                }
                break;
            }
            case Route::kFailFast: {
                res.responses.resize(requests.size());
                res.primary_failed.assign(requests.size(), 0);
                for (std::size_t i = 0; i < requests.size(); ++i) {
                    Response& r = res.responses[i];
                    r.session = requests[i].session;
                    r.window_seq = requests[i].window_seq;
                    r.error_code = ErrorCode::kCircuitOpen;
                    r.error = "Server: lane '" + lane.name +
                              "' circuit breaker open, no fallback registered";
                }
                break;
            }
        }
        const auto now = Clock::now();

        lock.lock();
        lane.in_flight = 0;
        for (std::size_t i = 0; i < wave.size(); ++i) {
            Response& r = res.responses[i];
            if (r.ok() && now >= wave[i].expiry) {
                // Completed, but past its deadline: the caller has
                // given up, so resolve with the deadline error instead
                // of delivering a late result.
                Response late;
                late.session = std::move(r.session);
                late.window_seq = r.window_seq;
                late.retries = r.retries;
                late.failed_over = r.failed_over;
                late.error_code = ErrorCode::kDeadlineExceeded;
                late.error = "Server: deadline exceeded before completion";
                r = std::move(late);
            }
            TenantStats& slice = lane.tenant_slot(requests[i].tenant, options_.slo_us);
            if (!r.ok()) {
                ++lane.failed;
                ++slice.failed;
                if (r.error_code == ErrorCode::kDeadlineExceeded) {
                    ++lane.deadline_expired;
                }
            } else {
                ++lane.completed;
                ++slice.completed;
                const double us =
                    std::chrono::duration<double, std::micro>(now - wave[i].enqueued)
                        .count();
                lane.latency_us.add(us);
                slice.latency_us.add(us);
                slice.slo.add(us);
            }
        }
        lane.retried += res.retried;
        lane.failed_over += res.failovers;
        if (res.bisected) ++lane.isolated_waves;

        // Breaker bookkeeping from the wave's primary outcomes.
        if (route == Route::kPrimary) {
            for (std::size_t i = 0; i < wave.size(); ++i) {
                const bool failed = res.primary_failed[i] != 0;
                lane.outcome_window.push_back(failed);
                if (failed) ++lane.window_failures;
                if (lane.outcome_window.size() > fault.breaker_window) {
                    if (lane.outcome_window.front()) --lane.window_failures;
                    lane.outcome_window.pop_front();
                }
                lane.consecutive_failures =
                    failed ? lane.consecutive_failures + 1 : 0;
            }
            const bool consecutive_trip =
                fault.breaker_failures > 0 &&
                lane.consecutive_failures >= fault.breaker_failures;
            const bool rate_trip =
                fault.breaker_window > 0 &&
                lane.outcome_window.size() >= fault.breaker_window &&
                static_cast<double>(lane.window_failures) >=
                    fault.breaker_failure_rate *
                        static_cast<double>(lane.outcome_window.size());
            if (consecutive_trip || rate_trip) {
                lane.breaker = BreakerState::kOpen;
                lane.breaker_opened = now;
                ++lane.breaker_trips;
                lane.consecutive_failures = 0;
                lane.outcome_window.clear();
                lane.window_failures = 0;
                util::log_warn("Server: lane '", lane.name,
                               "': circuit breaker tripped (",
                               lane.fallback_runner
                                   ? "failing over to fallback"
                                   : "no fallback registered, failing fast",
                               ")");
            }
        } else if (route == Route::kProbe) {
            const bool any_failed =
                std::any_of(res.primary_failed.begin(), res.primary_failed.end(),
                            [](std::uint8_t f) { return f != 0; });
            if (any_failed) {
                lane.breaker = BreakerState::kOpen;  // probe failed: re-open
                lane.breaker_opened = now;
            } else if (++lane.probe_successes >= fault.breaker_probes) {
                lane.breaker = BreakerState::kClosed;
                lane.consecutive_failures = 0;
                lane.outcome_window.clear();
                lane.window_failures = 0;
                util::log_info("Server: lane '", lane.name,
                               "': circuit breaker closed (primary recovered)");
            }
        }

        // Session bookkeeping for the retired wave: a resolved window
        // (completed OR failed — either way it will never run again)
        // stops pending on its session; deferred closes fire once the
        // last pending window is gone.
        for (const Request& request : requests) {
            if (request.session.empty()) continue;
            const auto sit = lane.sessions.find(request.session);
            if (sit == lane.sessions.end()) continue;
            SessionEntry& entry = sit->second;
            if (entry.pending > 0) --entry.pending;
            entry.last_activity = now;
            if (entry.pending == 0 && entry.close_after_pending) {
                lane.retire_session(sit, /*expired=*/false, options_.slo_us);
            }
        }
        lane.expire_idle(options_, now);
        lock.unlock();
        lane.idle_cv.notify_all();

        // Resolve futures outside the lock: promise continuations must
        // not observe a held lane mutex. Failures resolve with a value
        // carrying a structured error — never a dropped exception.
        for (std::size_t i = 0; i < wave.size(); ++i) {
            wave[i].promise.set_value(std::move(res.responses[i]));
        }
        lock.lock();
    }
}

}  // namespace sia::core
