#include "core/hybrid.hpp"

#include <stdexcept>
#include <utility>

#include "snn/encoding.hpp"

namespace sia::core {

HybridFrontEnd::HybridFrontEnd(nn::NetworkIR ir, int host_layers)
    : ir_(std::move(ir)), host_layers_(host_layers) {
    if (host_layers <= 0) {
        throw std::invalid_argument("HybridFrontEnd: host_layers must be positive");
    }
    int seen = 0;
    for (std::size_t ni = 1; ni < ir_.nodes.size() && seen < host_layers; ++ni) {
        const nn::IrNode& node = ir_.nodes[ni];
        if (node.op != nn::IrOp::kConv || node.skip_src >= 0 || node.act == nullptr) {
            throw std::invalid_argument(
                "HybridFrontEnd: host front must be a plain conv(+BN)+act chain");
        }
        ++seen;
    }
    if (seen < host_layers) {
        throw std::invalid_argument("HybridFrontEnd: fewer conv layers than host_layers");
    }
}

snn::SpikeTrain HybridFrontEnd::encode(const tensor::Tensor& image,
                                       std::int64_t timesteps) const {
    tensor::Tensor x = image;
    float step = 1.0F;
    int seen = 0;
    for (std::size_t ni = 1; ni < ir_.nodes.size() && seen < host_layers_; ++ni) {
        const nn::IrNode& node = ir_.nodes[ni];
        if (node.op != nn::IrOp::kConv) continue;
        // IR stores const module pointers (the converter never mutates);
        // inference-mode forward does not modify observable state, so the
        // const_cast below is safe and confined to this host-side path.
        auto* conv = const_cast<nn::Conv2d*>(node.conv);
        auto* bn = const_cast<nn::BatchNorm2d*>(node.bn);
        auto* act = const_cast<nn::Activation*>(node.act);
        x = conv->forward(x, /*training=*/false);
        if (bn != nullptr) x = bn->forward(x, /*training=*/false);
        x = act->forward(x, /*training=*/false);
        step = act->step();
        ++seen;
    }
    // Normalise activations ([0, step]) to [0, 1] for the encoder; the
    // converter already set the SNN input amplitude to `step`.
    if (step > 0.0F) x.scale_(1.0F / step);
    return snn::encode_thermometer(x, timesteps);
}

}  // namespace sia::core
