// core::Server: a long-running serving loop over one core::Backend —
// the step from "batch API" to "serves heavy traffic".
//
// Request lifecycle:
//
//   submit(Request)                      caller thread
//     -> bounded admission queue         (backpressure when full:
//                                         kBlock waits for space,
//                                         kReject hands back nullopt)
//     -> drain loop                      dedicated dispatcher thread
//          admission batching: take up to max_batch requests, waiting
//          at most max_wait_us after the oldest arrival to let a batch
//          fill before dispatching a partial one
//     -> BatchRunner::run(requests)      backend-generic fan-out over
//                                        the worker pool
//     -> std::future<Response> resolves  per-request latency recorded
//                                        (enqueue -> completion) in a
//                                        util::StreamingHistogram
//
// Determinism: each admitted request is pinned to an RNG stream equal to
// its admission sequence number, so for a fixed seed and arrival order
// the responses are bit-identical regardless of how batches happen to
// form, how many worker threads run, or which backend schedule executes
// — timing can shift latency, never results.
//
// Shutdown: shutdown() stops admissions, drains every queued request
// through the backend, resolves all futures, and joins the dispatcher.
// Submitters blocked on a full queue at shutdown time are refused
// (their submit returns rejection) rather than left hanging.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "core/backend.hpp"
#include "core/batch_runner.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace sia::core {

/// What submit() does when the admission queue is at max_queue.
enum class BackpressurePolicy : std::uint8_t {
    kBlock,   ///< wait for space (bounds memory, pushes latency upstream)
    kReject,  ///< fail fast (bounds latency, sheds load)
};

struct ServerOptions {
    /// Worker threads of the underlying BatchRunner; 0 = hardware
    /// concurrency.
    std::size_t threads = 0;
    /// Admission queue bound (>= 1). The queue holds requests not yet
    /// handed to the runner; in-flight batches are not counted.
    std::size_t max_queue = 256;
    /// Largest batch the drain loop forms (>= 1).
    std::size_t max_batch = 32;
    /// Admission window: after the oldest queued request arrived, how
    /// long the drain loop waits for the batch to fill before
    /// dispatching a partial one. 0 = dispatch immediately.
    std::int64_t max_wait_us = 500;
    BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
    /// Base seed for per-request RNG streams (stream = admission seq).
    std::uint64_t seed = util::kDefaultSeed;
};

/// Snapshot of the server's counters and latency distribution.
struct ServerStats {
    std::size_t submitted = 0;  ///< admitted into the queue
    std::size_t rejected = 0;   ///< refused (queue full under kReject, or stopping)
    std::size_t completed = 0;  ///< futures resolved with a Response
    std::size_t failed = 0;     ///< futures resolved with an exception
    std::size_t batches = 0;    ///< dispatches through the runner
    /// Per-request latency, admission to completion, in microseconds.
    util::StreamingHistogram latency_us;

    [[nodiscard]] double mean_batch_size() const noexcept {
        return batches > 0
                   ? static_cast<double>(completed + failed) /
                         static_cast<double>(batches)
                   : 0.0;
    }
};

class Server {
public:
    /// Starts the dispatcher thread immediately. The server shares
    /// ownership of the backend; `backend->model()` must outlive it.
    explicit Server(std::shared_ptr<Backend> backend, ServerOptions options = {});
    /// Destructor performs a graceful shutdown (drains the queue).
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Submit one request. Returns a future that resolves when the
    /// request's batch completes (or fails). Throws std::runtime_error
    /// when the request is refused — queue full under kReject, or the
    /// server is shutting down.
    [[nodiscard]] std::future<Response> submit(Request request);

    /// Non-throwing form: nullopt when refused.
    [[nodiscard]] std::optional<std::future<Response>> try_submit(Request request);

    /// Stop admissions, drain every queued request, resolve all
    /// futures, join the dispatcher. Idempotent; safe to call from
    /// multiple threads.
    void shutdown();

    [[nodiscard]] bool stopping() const;
    [[nodiscard]] std::size_t queue_depth() const;
    [[nodiscard]] ServerStats stats() const;
    [[nodiscard]] const ServerOptions& options() const noexcept { return options_; }
    [[nodiscard]] Backend& backend() noexcept { return *backend_; }

private:
    struct Pending {
        Request request;
        std::promise<Response> promise;
        std::chrono::steady_clock::time_point enqueued;
    };

    void drain_loop();

    std::shared_ptr<Backend> backend_;
    ServerOptions options_;
    BatchRunner runner_;

    mutable std::mutex mutex_;
    std::condition_variable queue_cv_;  ///< wakes the dispatcher
    std::condition_variable space_cv_;  ///< wakes blocked submitters
    std::deque<Pending> queue_;
    bool stopping_ = false;
    std::uint64_t next_stream_ = 0;  ///< admission sequence number
    ServerStats stats_;

    std::once_flag join_once_;
    std::thread dispatcher_;  // started last, joined via shutdown()
};

}  // namespace sia::core
