// core::Server: a multi-model, multi-tenant serving subsystem — several
// named core::Backends behind one admission surface, with per-tenant
// fairness, priority lanes, continuous batching, and hot model reload.
//
// Request lifecycle:
//
//   submit(Request)                     caller thread; routed by
//     |                                 Request::model to that model's
//     |                                 lane, RNG stream pinned to the
//     |                                 lane's admission sequence
//     v
//   per-model bounded queue             backpressure at max_queue:
//     |                                   kBlock  — submitter waits
//     |                                   kReject — refuse, after first
//     |                                     shedding a queued lower-
//     |                                     priority request if one
//     |                                     exists (low lane sheds first)
//     v
//   wave formation                      per-model dispatcher thread;
//     |                                 continuous batching: a wave is
//     |                                 formed the moment the runner is
//     |                                 free and work is queued — the
//     |                                 in-flight wave IS the batching
//     |                                 window, so an empty queue never
//     |                                 stalls a lone request. The high
//     |                                 lane preempts formation: a wave
//     |                                 with high work carries ONLY high
//     |                                 work (a request waits on its
//     |                                 whole wave, so high never rides
//     |                                 with slower batchmates); else
//     |                                 normal fills before low. Within
//     |                                 a lane, weighted round-robin
//     |                                 over tenants (weight = slots
//     |                                 per cycle).
//     v
//   BatchRunner::run(wave)              backend-generic fan-out over the
//     |                                 lane's worker pool
//     v
//   future<Response> resolves           per-request latency recorded
//                                       (admission -> completion) into
//                                       aggregate + per-tenant
//                                       StreamingHistograms and a
//                                       per-tenant SLO-burn counter
//
// Determinism: each admitted request is pinned to an RNG stream equal to
// its model lane's admission sequence number, so for a fixed seed and
// per-model arrival order the responses are bit-identical regardless of
// wave formation, tenant interleaving, priorities, thread count, or
// backend schedule — scheduling shifts *when* a request runs, never its
// result (responses are grouping-invariant by the Backend contract).
//
// Streaming sessions: a request with a non-empty session id is one
// window of a continuous event stream (the paper's DVS use case). All
// windows of a session route to the same lane in admission order and
// inherit the session's tenant + priority (affinity keeps them in one
// FIFO, which serializes them); admission attaches the session's
// persistent state (per-layer membranes + accumulated readout), wave
// formation never packs two windows of one session into the same wave,
// and eviction never sheds a session window (dropping one mid-stream
// would desync the carried state). Sessions retire explicitly
// (close_session() or Request::close_session) or by idle timeout
// (ServerOptions::session_idle_ms). N windows against one session are
// bit-identical to one monolithic run over the concatenated train.
//
// Temporal early exit: a request carrying Request::early_exit stops
// integrating timesteps once its accumulated readout satisfies the
// criterion (Response::steps_used < steps_offered, exit_reason set).
// Inside a wave the resident sim retires the item's membrane-bank
// context the moment it exits, narrowing the wave or back-filling the
// freed slot from the span's pending items; combined with continuous
// batching — the next wave forms the instant the runner frees — early
// exits translate directly into earlier wave completion and higher
// admission throughput. For session windows the criterion evaluates
// the window's readout delta (never the carried total), and the carried
// SessionState is exactly what a full-attention run of the executed
// steps would leave, so early exit never desyncs a stream. A malformed
// criterion resolves with ErrorCode::kInvalidRequest (never retried).
// Determinism is unchanged: a fixed criterion is a pure function of the
// item's own readout sequence, so results stay bit-identical across
// wave formation, thread count, batch composition, and backend.
//
// Hot reload: reload_model(name, backend) quiesces only that model's
// lane (waits for its in-flight wave), swaps the backend + runner, and
// resumes; queued requests for the model run on the new backend, and
// other models' queues are untouched. unregister_model drains the
// lane's queue through its backend, then removes it.
//
// Shutdown: shutdown() stops admissions on every lane, drains every
// queued request, resolves all futures, and joins the dispatchers.
// Submitters blocked on a full queue at shutdown time are refused
// rather than left hanging.
#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/batch_runner.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace sia::core {

/// What submit() does when the target model's queue is at max_queue.
enum class BackpressurePolicy : std::uint8_t {
    kBlock,   ///< wait for space (bounds memory, pushes latency upstream)
    kReject,  ///< fail fast (bounds latency, sheds load — low lane first)
};

/// Circuit-breaker state of a model lane (docs/ARCHITECTURE.md §8).
enum class BreakerState : std::uint8_t {
    kClosed,    ///< healthy: waves run on the primary backend
    kOpen,      ///< tripped: waves fail over to the fallback (or fail fast)
    kHalfOpen,  ///< cooling down: waves probe the primary
};

[[nodiscard]] const char* to_string(BreakerState state) noexcept;

/// Fault-tolerance knobs of the serving layer (retry policy + per-lane
/// circuit breaker). Defaults are production-ish; chaos tests tighten
/// them to make trips observable.
struct FaultOptions {
    /// Same-backend re-runs of a transiently-failing request before it
    /// is treated as a permanent failure (0 = never retry).
    std::uint32_t max_retries = 2;
    /// Backoff before the first retry, in microseconds; doubles per
    /// retry. Retries restore the request's pre-wave session state and
    /// re-use its admission-pinned rng_stream, so a retried request is
    /// bit-identical to its first attempt.
    std::int64_t retry_backoff_us = 200;
    /// Consecutive request failures on the primary backend that trip
    /// the lane's breaker.
    std::uint32_t breaker_failures = 5;
    /// Sliding window (in requests) for the failure-rate trip.
    std::size_t breaker_window = 64;
    /// Trip when the window is full and its failure fraction reaches
    /// this (> 1 disables the rate trip).
    double breaker_failure_rate = 0.5;
    /// Open -> half-open cooldown in milliseconds.
    std::int64_t breaker_cooldown_ms = 50;
    /// Consecutive successful probe waves that close a half-open breaker.
    std::uint32_t breaker_probes = 2;
};

struct ServerOptions {
    /// Worker threads of each model lane's BatchRunner; 0 = hardware
    /// concurrency.
    std::size_t threads = 0;
    /// Per-model admission queue bound (>= 1). The queue holds requests
    /// not yet handed to the runner; in-flight waves are not counted.
    std::size_t max_queue = 256;
    /// Largest wave a lane dispatches (>= 1).
    std::size_t max_batch = 32;
    BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
    /// Base seed for per-request RNG streams (stream = the model lane's
    /// admission sequence number).
    std::uint64_t seed = util::kDefaultSeed;
    /// Latency SLO threshold (same unit as the histograms: µs) feeding
    /// the per-tenant SLO-burn counters.
    double slo_us = 50'000.0;
    /// Fair-queuing weight per tenant: slots per round-robin cycle
    /// within a priority lane. Unlisted tenants weigh 1.
    std::map<std::string, std::uint32_t> tenant_weights;
    /// Idle-session expiry horizon in milliseconds: a streaming session
    /// with no queued or in-flight window for longer than this is
    /// retired (carried state freed) at the next admission or wave
    /// boundary. 0 = sessions never expire (close them explicitly).
    std::int64_t session_idle_ms = 60'000;
    /// Retry + circuit-breaker policy (see FaultOptions).
    FaultOptions fault;
};

/// Per-tenant slice of the server's counters.
struct TenantStats {
    std::size_t submitted = 0;  ///< admitted into a queue
    std::size_t completed = 0;
    std::size_t rejected = 0;  ///< refused at submit
    std::size_t shed = 0;      ///< admitted, then evicted for a higher-priority request
    std::size_t failed = 0;    ///< future resolved with a backend exception
    std::size_t sessions_opened = 0;   ///< streaming sessions created
    std::size_t sessions_closed = 0;   ///< retired by explicit close
    std::size_t sessions_expired = 0;  ///< retired by idle timeout
    util::StreamingHistogram latency_us;
    util::SloBurnCounter slo;

    void merge(const TenantStats& other);
};

/// Snapshot of the server's counters and latency distributions,
/// aggregated across every model lane.
struct ServerStats {
    std::size_t submitted = 0;
    std::size_t rejected = 0;  ///< refused (queue full under kReject, unknown model, or stopping)
    std::size_t shed = 0;      ///< evicted from a queue to admit higher priority
    std::size_t completed = 0;
    std::size_t failed = 0;
    std::size_t batches = 0;  ///< waves dispatched through the runners
    std::size_t reloads = 0;  ///< hot backend swaps performed
    std::size_t sessions_opened = 0;   ///< streaming sessions created
    std::size_t sessions_closed = 0;   ///< retired by explicit close
    std::size_t sessions_expired = 0;  ///< retired by idle timeout
    std::size_t active_sessions = 0;   ///< open sessions at snapshot time
    // --- fault-model counters (docs/ARCHITECTURE.md §8) ---
    std::size_t retried = 0;          ///< same-backend re-runs performed
    std::size_t failed_over = 0;      ///< requests served by a fallback backend
    std::size_t deadline_expired = 0; ///< futures resolved kDeadlineExceeded
    std::size_t breaker_trips = 0;    ///< closed -> open transitions
    std::size_t isolated_waves = 0;   ///< thrown waves quarantined by bisection
    /// Per-request latency, admission to completion, in microseconds.
    util::StreamingHistogram latency_us;
    /// Per-tenant breakdown (latency histogram + SLO burn per tenant).
    std::map<std::string, TenantStats> tenants;

    [[nodiscard]] double mean_batch_size() const noexcept {
        return batches > 0
                   ? static_cast<double>(completed + failed) /
                         static_cast<double>(batches)
                   : 0.0;
    }
};

/// Health snapshot of one model lane's fault machinery.
struct LaneStats {
    BreakerState breaker = BreakerState::kClosed;
    bool has_fallback = false;
    std::size_t breaker_trips = 0;    ///< closed -> open transitions
    std::size_t probes = 0;           ///< half-open probe waves dispatched
    std::size_t failovers = 0;        ///< requests served by the fallback
    std::size_t retries = 0;          ///< same-backend re-runs performed
    std::size_t isolated_waves = 0;   ///< thrown waves quarantined by bisection
    std::size_t deadline_expired = 0; ///< futures resolved kDeadlineExceeded
};

class Server {
public:
    /// Single-model convenience: registers `backend` under
    /// kDefaultModel and starts its lane. Requests with an empty model
    /// route to it.
    explicit Server(std::shared_ptr<Backend> backend, ServerOptions options = {});
    /// Empty server; add models with register_model().
    explicit Server(ServerOptions options = {});
    /// Destructor performs a graceful shutdown (drains every lane).
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    static constexpr const char* kDefaultModel = "default";

    /// Register a named model and start its lane (queue + dispatcher +
    /// runner). Throws if the name is taken or the server is stopping.
    void register_model(const std::string& name, std::shared_ptr<Backend> backend);
    /// Hot-swap the backend serving `name`: quiesce that lane's
    /// in-flight wave, swap backend + runner, resume. Queued requests
    /// run on the new backend; other models are unaffected. Throws on
    /// unknown model.
    void reload_model(const std::string& name, std::shared_ptr<Backend> backend);
    /// Register a fallback backend for `name`'s lane (graceful
    /// degradation: same logits contract, different cost). An open
    /// circuit breaker routes whole waves to it; a request whose
    /// primary run fails permanently (retries exhausted) is retried on
    /// it individually. Responses it serves are marked
    /// Response::failed_over. Pass nullptr to clear. Throws on unknown
    /// model.
    void set_fallback(const std::string& name, std::shared_ptr<Backend> backend);
    /// Stop admissions for `name`, drain its queued requests through
    /// its backend, join its dispatcher, and remove it. Other models'
    /// queues are untouched. Throws on unknown model.
    void unregister_model(const std::string& name);
    [[nodiscard]] std::vector<std::string> model_names() const;

    /// Submit one request, routed by request.model (empty = sole
    /// registered model / kDefaultModel). Returns a future that
    /// resolves when the request's wave completes, fails (the Response
    /// then carries a structured ErrorCode + message), or the request
    /// is shed. Throws std::runtime_error when refused — the message is
    /// deterministic and tagged with the ErrorCode name (kQueueFull,
    /// kUnknownModel, or kShuttingDown).
    [[nodiscard]] std::future<Response> submit(Request request);

    /// Non-throwing form: nullopt when refused.
    [[nodiscard]] std::optional<std::future<Response>> try_submit(Request request);

    /// Close a streaming session on `model`'s lane (empty = sole /
    /// default model): retires it immediately when no window of it is
    /// queued or in flight, otherwise after its last pending window
    /// resolves. Returns false when the session (or model) is unknown.
    /// A window submitted under the same id after the close completes
    /// opens a fresh session.
    bool close_session(const std::string& session, const std::string& model = {});
    /// Open streaming sessions across every lane / on one model's lane.
    [[nodiscard]] std::size_t session_count() const;
    [[nodiscard]] std::size_t session_count(const std::string& model) const;

    /// Stop admissions on every lane, drain every queued request,
    /// resolve all futures, join the dispatchers. Idempotent; safe to
    /// call from multiple threads.
    void shutdown();

    [[nodiscard]] bool stopping() const;
    /// Queued (not in-flight) requests across all lanes / in one lane.
    [[nodiscard]] std::size_t queue_depth() const;
    [[nodiscard]] std::size_t queue_depth(const std::string& model) const;
    /// Aggregated across lanes; exact histogram/counter merges.
    [[nodiscard]] ServerStats stats() const;
    /// Fault-machinery snapshot of one model's lane (empty = sole /
    /// default model). Throws std::invalid_argument on unknown model.
    [[nodiscard]] LaneStats lane_stats(const std::string& model = {}) const;
    [[nodiscard]] const ServerOptions& options() const noexcept { return options_; }
    /// Single-model convenience: the sole lane's backend. Throws
    /// std::logic_error unless exactly one model is registered.
    [[nodiscard]] Backend& backend();

private:
    struct ModelLane;  // full definition in server.cpp

    [[nodiscard]] std::shared_ptr<ModelLane> route(const std::string& model) const;
    /// try_submit with the refusal reason surfaced (kOk = admitted);
    /// submit() uses it to throw a deterministic, code-tagged message.
    [[nodiscard]] std::optional<std::future<Response>> try_submit(Request request,
                                                                  ErrorCode& why);
    void lane_loop(ModelLane& lane);
    static void stop_lane(ModelLane& lane);

    ServerOptions options_;

    /// Guards the lane map and the server-wide flags/counters. Lock
    /// order: registry_mutex_ before any lane mutex, never the reverse.
    mutable std::mutex registry_mutex_;
    std::map<std::string, std::shared_ptr<ModelLane>> lanes_;
    bool stopping_ = false;
    std::size_t unroutable_ = 0;  ///< rejects with no lane to account them to
    ServerStats retired_;  ///< stats carried over from unregistered lanes
};

}  // namespace sia::core
