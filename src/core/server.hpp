// core::Server: a multi-model, multi-tenant serving subsystem — several
// named core::Backends behind one admission surface, with per-tenant
// fairness, priority lanes, continuous batching, and hot model reload.
//
// Request lifecycle:
//
//   submit(Request)                     caller thread; routed by
//     |                                 Request::model to that model's
//     |                                 lane, RNG stream pinned to the
//     |                                 lane's admission sequence
//     v
//   per-model bounded queue             backpressure at max_queue:
//     |                                   kBlock  — submitter waits
//     |                                   kReject — refuse, after first
//     |                                     shedding a queued lower-
//     |                                     priority request if one
//     |                                     exists (low lane sheds first)
//     v
//   wave formation                      per-model dispatcher thread;
//     |                                 continuous batching: a wave is
//     |                                 formed the moment the runner is
//     |                                 free and work is queued — the
//     |                                 in-flight wave IS the batching
//     |                                 window, so an empty queue never
//     |                                 stalls a lone request. The high
//     |                                 lane preempts formation: a wave
//     |                                 with high work carries ONLY high
//     |                                 work (a request waits on its
//     |                                 whole wave, so high never rides
//     |                                 with slower batchmates); else
//     |                                 normal fills before low. Within
//     |                                 a lane, weighted round-robin
//     |                                 over tenants (weight = slots
//     |                                 per cycle).
//     v
//   BatchRunner::run(wave)              backend-generic fan-out over the
//     |                                 lane's worker pool
//     v
//   future<Response> resolves           per-request latency recorded
//                                       (admission -> completion) into
//                                       aggregate + per-tenant
//                                       StreamingHistograms and a
//                                       per-tenant SLO-burn counter
//
// Determinism: each admitted request is pinned to an RNG stream equal to
// its model lane's admission sequence number, so for a fixed seed and
// per-model arrival order the responses are bit-identical regardless of
// wave formation, tenant interleaving, priorities, thread count, or
// backend schedule — scheduling shifts *when* a request runs, never its
// result (responses are grouping-invariant by the Backend contract).
//
// Streaming sessions: a request with a non-empty session id is one
// window of a continuous event stream (the paper's DVS use case). All
// windows of a session route to the same lane in admission order and
// inherit the session's tenant + priority (affinity keeps them in one
// FIFO, which serializes them); admission attaches the session's
// persistent state (per-layer membranes + accumulated readout), wave
// formation never packs two windows of one session into the same wave,
// and eviction never sheds a session window (dropping one mid-stream
// would desync the carried state). Sessions retire explicitly
// (close_session() or Request::close_session) or by idle timeout
// (ServerOptions::session_idle_ms). N windows against one session are
// bit-identical to one monolithic run over the concatenated train.
//
// Hot reload: reload_model(name, backend) quiesces only that model's
// lane (waits for its in-flight wave), swaps the backend + runner, and
// resumes; queued requests for the model run on the new backend, and
// other models' queues are untouched. unregister_model drains the
// lane's queue through its backend, then removes it.
//
// Shutdown: shutdown() stops admissions on every lane, drains every
// queued request, resolves all futures, and joins the dispatchers.
// Submitters blocked on a full queue at shutdown time are refused
// rather than left hanging.
#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/batch_runner.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace sia::core {

/// What submit() does when the target model's queue is at max_queue.
enum class BackpressurePolicy : std::uint8_t {
    kBlock,   ///< wait for space (bounds memory, pushes latency upstream)
    kReject,  ///< fail fast (bounds latency, sheds load — low lane first)
};

struct ServerOptions {
    /// Worker threads of each model lane's BatchRunner; 0 = hardware
    /// concurrency.
    std::size_t threads = 0;
    /// Per-model admission queue bound (>= 1). The queue holds requests
    /// not yet handed to the runner; in-flight waves are not counted.
    std::size_t max_queue = 256;
    /// Largest wave a lane dispatches (>= 1).
    std::size_t max_batch = 32;
    BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
    /// Base seed for per-request RNG streams (stream = the model lane's
    /// admission sequence number).
    std::uint64_t seed = util::kDefaultSeed;
    /// Latency SLO threshold (same unit as the histograms: µs) feeding
    /// the per-tenant SLO-burn counters.
    double slo_us = 50'000.0;
    /// Fair-queuing weight per tenant: slots per round-robin cycle
    /// within a priority lane. Unlisted tenants weigh 1.
    std::map<std::string, std::uint32_t> tenant_weights;
    /// Idle-session expiry horizon in milliseconds: a streaming session
    /// with no queued or in-flight window for longer than this is
    /// retired (carried state freed) at the next admission or wave
    /// boundary. 0 = sessions never expire (close them explicitly).
    std::int64_t session_idle_ms = 60'000;
};

/// Per-tenant slice of the server's counters.
struct TenantStats {
    std::size_t submitted = 0;  ///< admitted into a queue
    std::size_t completed = 0;
    std::size_t rejected = 0;  ///< refused at submit
    std::size_t shed = 0;      ///< admitted, then evicted for a higher-priority request
    std::size_t failed = 0;    ///< future resolved with a backend exception
    std::size_t sessions_opened = 0;   ///< streaming sessions created
    std::size_t sessions_closed = 0;   ///< retired by explicit close
    std::size_t sessions_expired = 0;  ///< retired by idle timeout
    util::StreamingHistogram latency_us;
    util::SloBurnCounter slo;

    void merge(const TenantStats& other);
};

/// Snapshot of the server's counters and latency distributions,
/// aggregated across every model lane.
struct ServerStats {
    std::size_t submitted = 0;
    std::size_t rejected = 0;  ///< refused (queue full under kReject, unknown model, or stopping)
    std::size_t shed = 0;      ///< evicted from a queue to admit higher priority
    std::size_t completed = 0;
    std::size_t failed = 0;
    std::size_t batches = 0;  ///< waves dispatched through the runners
    std::size_t reloads = 0;  ///< hot backend swaps performed
    std::size_t sessions_opened = 0;   ///< streaming sessions created
    std::size_t sessions_closed = 0;   ///< retired by explicit close
    std::size_t sessions_expired = 0;  ///< retired by idle timeout
    std::size_t active_sessions = 0;   ///< open sessions at snapshot time
    /// Per-request latency, admission to completion, in microseconds.
    util::StreamingHistogram latency_us;
    /// Per-tenant breakdown (latency histogram + SLO burn per tenant).
    std::map<std::string, TenantStats> tenants;

    [[nodiscard]] double mean_batch_size() const noexcept {
        return batches > 0
                   ? static_cast<double>(completed + failed) /
                         static_cast<double>(batches)
                   : 0.0;
    }
};

class Server {
public:
    /// Single-model convenience: registers `backend` under
    /// kDefaultModel and starts its lane. Requests with an empty model
    /// route to it.
    explicit Server(std::shared_ptr<Backend> backend, ServerOptions options = {});
    /// Empty server; add models with register_model().
    explicit Server(ServerOptions options = {});
    /// Destructor performs a graceful shutdown (drains every lane).
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    static constexpr const char* kDefaultModel = "default";

    /// Register a named model and start its lane (queue + dispatcher +
    /// runner). Throws if the name is taken or the server is stopping.
    void register_model(const std::string& name, std::shared_ptr<Backend> backend);
    /// Hot-swap the backend serving `name`: quiesce that lane's
    /// in-flight wave, swap backend + runner, resume. Queued requests
    /// run on the new backend; other models are unaffected. Throws on
    /// unknown model.
    void reload_model(const std::string& name, std::shared_ptr<Backend> backend);
    /// Stop admissions for `name`, drain its queued requests through
    /// its backend, join its dispatcher, and remove it. Other models'
    /// queues are untouched. Throws on unknown model.
    void unregister_model(const std::string& name);
    [[nodiscard]] std::vector<std::string> model_names() const;

    /// Submit one request, routed by request.model (empty = sole
    /// registered model / kDefaultModel). Returns a future that
    /// resolves when the request's wave completes, fails, or the
    /// request is shed. Throws std::runtime_error when refused — queue
    /// full under kReject with nothing lower-priority to shed, unknown
    /// model, or the server/model is shutting down.
    [[nodiscard]] std::future<Response> submit(Request request);

    /// Non-throwing form: nullopt when refused.
    [[nodiscard]] std::optional<std::future<Response>> try_submit(Request request);

    /// Close a streaming session on `model`'s lane (empty = sole /
    /// default model): retires it immediately when no window of it is
    /// queued or in flight, otherwise after its last pending window
    /// resolves. Returns false when the session (or model) is unknown.
    /// A window submitted under the same id after the close completes
    /// opens a fresh session.
    bool close_session(const std::string& session, const std::string& model = {});
    /// Open streaming sessions across every lane / on one model's lane.
    [[nodiscard]] std::size_t session_count() const;
    [[nodiscard]] std::size_t session_count(const std::string& model) const;

    /// Stop admissions on every lane, drain every queued request,
    /// resolve all futures, join the dispatchers. Idempotent; safe to
    /// call from multiple threads.
    void shutdown();

    [[nodiscard]] bool stopping() const;
    /// Queued (not in-flight) requests across all lanes / in one lane.
    [[nodiscard]] std::size_t queue_depth() const;
    [[nodiscard]] std::size_t queue_depth(const std::string& model) const;
    /// Aggregated across lanes; exact histogram/counter merges.
    [[nodiscard]] ServerStats stats() const;
    [[nodiscard]] const ServerOptions& options() const noexcept { return options_; }
    /// Single-model convenience: the sole lane's backend. Throws
    /// std::logic_error unless exactly one model is registered.
    [[nodiscard]] Backend& backend();

private:
    struct ModelLane;  // full definition in server.cpp

    [[nodiscard]] std::shared_ptr<ModelLane> route(const std::string& model) const;
    void lane_loop(ModelLane& lane);
    static void stop_lane(ModelLane& lane);

    ServerOptions options_;

    /// Guards the lane map and the server-wide flags/counters. Lock
    /// order: registry_mutex_ before any lane mutex, never the reverse.
    mutable std::mutex registry_mutex_;
    std::map<std::string, std::shared_ptr<ModelLane>> lanes_;
    bool stopping_ = false;
    std::size_t unroutable_ = 0;  ///< rejects with no lane to account them to
    ServerStats retired_;  ///< stats carried over from unregistered lanes
};

}  // namespace sia::core
