#include "core/faulty_backend.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace sia::core {

namespace {

std::string fault_message(const char* kind, std::uint64_t stream,
                          std::uint32_t attempt) {
    return std::string("FaultyBackend: injected ") + kind + " fault (stream " +
           std::to_string(stream) + ", attempt " + std::to_string(attempt) + ")";
}

}  // namespace

FaultyBackend::FaultyBackend(std::shared_ptr<Backend> inner, util::FaultPlan plan)
    : Backend(inner->model()), inner_(std::move(inner)),
      injector_(std::move(plan)),
      name_(std::string("faulty+") + std::string(inner_->name())) {}

void FaultyBackend::prepare(std::size_t workers) {
    inner_->prepare(workers);
    add_setup_nanos(inner_->take_setup_nanos());
}

std::size_t FaultyBackend::preferred_span(std::size_t n,
                                          std::size_t workers) const noexcept {
    return inner_->preferred_span(n, workers);
}

sim::SiaBatchStats FaultyBackend::take_sim_batch_stats() noexcept {
    return inner_->take_sim_batch_stats();
}

void FaultyBackend::run_span(std::size_t worker, std::span<const Request> requests,
                             std::span<Response> responses, std::size_t base,
                             std::uint64_t seed) {
    // Decide every request's fault before running anything: a poisoned
    // request fails its whole span (the lowest-index one wins), which
    // is the shape the server's wave bisection isolates.
    std::vector<util::FaultKind> kinds(requests.size());
    bool stall = false;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const std::uint64_t stream = requests[i].rng_stream.value_or(base + i);
        kinds[i] = injector_.inject(stream, requests[i].attempt);
        if (kinds[i] == util::FaultKind::kStall) stall = true;
    }
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const std::uint64_t stream = requests[i].rng_stream.value_or(base + i);
        if (kinds[i] == util::FaultKind::kThrow) {
            throw std::runtime_error(
                fault_message("throw", stream, requests[i].attempt));
        }
        if (kinds[i] == util::FaultKind::kTransient) {
            throw TransientError(
                fault_message("transient", stream, requests[i].attempt));
        }
    }
    if (stall && injector_.plan().stall_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(injector_.plan().stall_us));
    }

    inner_->run_span(worker, requests, responses, base, seed);
    add_setup_nanos(inner_->take_setup_nanos());

    for (std::size_t i = 0; i < requests.size(); ++i) {
        if (kinds[i] != util::FaultKind::kCorrupt) continue;
        const std::uint64_t stream = requests[i].rng_stream.value_or(base + i);
        Response& r = responses[i];
        if (r.logits.empty()) continue;
        // Deterministic, stream-keyed corruption confined to this
        // request's final readout (never zero, so it always flips).
        // Both readout views are perturbed identically so history-off
        // responses corrupt the same way as history-on ones.
        const std::uint64_t mixed = util::mix_seed(injector_.plan().seed, stream);
        const std::size_t slot = mixed % r.logits.size();
        const auto bump = static_cast<std::int64_t>(mixed % 997) + 1;
        r.logits[slot] += bump;
        if (!r.logits_per_step.empty() &&
            slot < r.logits_per_step.back().size()) {
            r.logits_per_step.back()[slot] += bump;
        }
    }
}

}  // namespace sia::core
