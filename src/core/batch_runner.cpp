#include "core/batch_runner.hpp"

#include <algorithm>

#include "sim/sia.hpp"
#include "snn/encoding.hpp"
#include "util/timer.hpp"

namespace sia::core {

BatchRunner::BatchRunner(const snn::SnnModel& model, BatchOptions options)
    : model_(model), options_(options), pool_(options.threads),
      engines_(pool_.size()), resident_sias_(pool_.size()) {
    model_.validate();
}

snn::FunctionalEngine& BatchRunner::engine(std::size_t worker) {
    auto& slot = engines_[worker];
    if (!slot) {
        const util::WallTimer timer;
        slot = std::make_unique<snn::FunctionalEngine>(model_, options_.engine);
        setup_nanos_.fetch_add(static_cast<std::int64_t>(timer.millis() * 1e6),
                               std::memory_order_relaxed);
    }
    return *slot;
}

sim::Sia& BatchRunner::resident_sia(std::size_t worker, const sim::SiaConfig& config) {
    auto& slot = resident_sias_[worker];
    if (!slot) {
        const util::WallTimer timer;
        slot = std::make_unique<sim::Sia>(config, model_, *program_);
        setup_nanos_.fetch_add(static_cast<std::int64_t>(timer.millis() * 1e6),
                               std::memory_order_relaxed);
    }
    return *slot;
}

void BatchRunner::ensure_program(const sim::SiaConfig& config) {
    if (program_ && *program_config_ == config) return;
    const util::WallTimer timer;
    // Invalidate the resident simulators first: they hold references to
    // the program about to be replaced.
    for (auto& slot : resident_sias_) slot.reset();
    program_ = SiaCompiler(config).compile(model_);
    program_config_ = config;
    setup_nanos_.fetch_add(static_cast<std::int64_t>(timer.millis() * 1e6),
                           std::memory_order_relaxed);
}

BatchRunner::~BatchRunner() = default;

util::Rng BatchRunner::item_rng(std::size_t index) const {
    return util::Rng(util::mix_seed(options_.seed, index));
}

/// Shared batch protocol: allocate result slots, publish the batch shape
/// to stats up front (so a throwing batch is never misattributed to an
/// earlier one), time the fan-out, record wall/setup/run times on
/// success. `fan_out` is the number of scheduled work items (== `inputs`
/// except for sub-batched schedules); `per_item(item, worker)` returns
/// the item's result.
template <typename Result, typename PerItem>
std::vector<Result> BatchRunner::run_batch(std::size_t fan_out, std::size_t inputs,
                                           const PerItem& per_item) {
    std::vector<Result> results(fan_out);
    stats_ = BatchStats{};
    stats_.inputs = inputs;
    stats_.threads = pool_.size();
    // Setup already accumulated before the fan-out (program compilation)
    // is not inside any item timer and must not be subtracted from them.
    const std::int64_t outside_item_setup = setup_nanos_.load();
    std::atomic<std::int64_t> item_nanos{0};
    const util::WallTimer timer;
    pool_.parallel_for(fan_out, [&](std::size_t item, std::size_t worker) {
        const util::WallTimer item_timer;
        results[item] = per_item(item, worker);
        item_nanos.fetch_add(static_cast<std::int64_t>(item_timer.millis() * 1e6),
                             std::memory_order_relaxed);
    });
    stats_.wall_ms = timer.millis();
    const std::int64_t setup_total = setup_nanos_.exchange(0);
    stats_.setup_ms = static_cast<double>(setup_total) / 1e6;
    // Engine/Sia construction happens inside item calls; subtract that
    // share so run_ms is pure per-item execution.
    stats_.run_ms =
        std::max(0.0, static_cast<double>(item_nanos.load() -
                                          (setup_total - outside_item_setup)) /
                          1e6);
    return results;
}

std::vector<snn::RunResult> BatchRunner::run(
    const std::vector<snn::SpikeTrain>& inputs) {
    sim_batch_stats_ = {};
    setup_nanos_.store(0);
    return run_batch<snn::RunResult>(
        inputs.size(), inputs.size(), [&](std::size_t item, std::size_t worker) {
            return engine(worker).run(inputs[item]);
        });
}

std::vector<snn::RunResult> BatchRunner::run_images(
    const std::vector<tensor::Tensor>& images, std::int64_t timesteps) {
    sim_batch_stats_ = {};
    setup_nanos_.store(0);
    return run_batch<snn::RunResult>(
        images.size(), images.size(), [&](std::size_t item, std::size_t worker) {
            return engine(worker).run(snn::encode_thermometer(images[item], timesteps));
        });
}

std::vector<snn::RunResult> BatchRunner::run_images_poisson(
    const std::vector<tensor::Tensor>& images, std::int64_t timesteps) {
    sim_batch_stats_ = {};
    setup_nanos_.store(0);
    return run_batch<snn::RunResult>(
        images.size(), images.size(), [&](std::size_t item, std::size_t worker) {
            util::Rng rng = item_rng(item);
            return engine(worker).run(
                snn::encode_poisson(images[item], timesteps, rng));
        });
}

std::vector<sim::SiaRunResult> BatchRunner::run_sim(
    const sim::SiaConfig& config, const std::vector<snn::SpikeTrain>& inputs,
    SimSchedule schedule) {
    sim_batch_stats_ = {};
    setup_nanos_.store(0);
    ensure_program(config);

    if (schedule == SimSchedule::kPerItem) {
        return run_batch<sim::SiaRunResult>(
            inputs.size(), inputs.size(), [&](std::size_t item, std::size_t /*worker*/) {
                // Sia carries per-inference memory/DMA state, so each item
                // gets a fresh instance; the compiled program is shared
                // read-only.
                const util::WallTimer timer;
                sim::Sia sia(config, model_, *program_);
                setup_nanos_.fetch_add(
                    static_cast<std::int64_t>(timer.millis() * 1e6),
                    std::memory_order_relaxed);
                return sia.run(inputs[item]);
            });
    }

    // Resident schedule: contiguous sub-batches, one per pool worker, so
    // weight/program residency amortizes across ceil(n / threads) items
    // per Sia::run_batch call. Grouping never affects results — run_batch
    // items are bit-identical to sequential run() calls by construction —
    // so neither the chunk size nor the thread count is observable.
    const std::size_t n = inputs.size();
    const std::size_t chunk_size =
        n == 0 ? 1 : (n + pool_.size() - 1) / pool_.size();
    const std::size_t chunks = n == 0 ? 0 : (n + chunk_size - 1) / chunk_size;

    std::vector<sim::SiaBatchStats> chunk_stats(chunks);
    auto chunk_results = run_batch<std::vector<sim::SiaRunResult>>(
        chunks, n, [&](std::size_t chunk, std::size_t worker) {
            const std::size_t begin = chunk * chunk_size;
            const std::size_t end = std::min(n, begin + chunk_size);
            std::vector<const snn::SpikeTrain*> slice;
            slice.reserve(end - begin);
            for (std::size_t i = begin; i < end; ++i) slice.push_back(&inputs[i]);
            sim::Sia& sia = resident_sia(worker, config);
            auto results = sia.run_batch(slice);
            chunk_stats[chunk] = sia.last_batch_stats();
            return results;
        });

    std::vector<sim::SiaRunResult> results;
    results.reserve(n);
    for (auto& chunk : chunk_results) {
        for (auto& r : chunk) results.push_back(std::move(r));
    }
    for (const auto& s : chunk_stats) {
        sim_batch_stats_.batch += s.batch;
        sim_batch_stats_.waves += s.waves;
        sim_batch_stats_.banks = std::max(sim_batch_stats_.banks, s.banks);
        sim_batch_stats_.membrane_slice_bytes = s.membrane_slice_bytes;
        sim_batch_stats_.membrane_resident =
            sim_batch_stats_.membrane_resident && s.membrane_resident;
        sim_batch_stats_.weight_bytes_streamed += s.weight_bytes_streamed;
        sim_batch_stats_.weight_bytes_sequential += s.weight_bytes_sequential;
        sim_batch_stats_.resident_cycles += s.resident_cycles;
        sim_batch_stats_.sequential_cycles += s.sequential_cycles;
    }
    return results;
}

}  // namespace sia::core
