#include "core/batch_runner.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "util/timer.hpp"

namespace sia::core {

BatchRunner::BatchRunner(std::shared_ptr<Backend> backend, BatchOptions options)
    : model_(backend->model()), options_(options), pool_(options.threads),
      backend_(std::move(backend)) {}

BatchRunner::BatchRunner(const snn::SnnModel& model, BatchOptions options)
    : model_(model), options_(options), pool_(options.threads) {
    model_.validate();
}

BatchRunner::~BatchRunner() = default;

util::Rng BatchRunner::item_rng(std::size_t index) const {
    return util::Rng(util::mix_seed(options_.seed, index));
}

Backend& BatchRunner::functional_backend() {
    if (!backend_) {
        backend_ = std::make_shared<FunctionalBackend>(model_, options_.engine);
    }
    return *backend_;
}

std::vector<Response> BatchRunner::run(const std::vector<Request>& requests) {
    return run(functional_backend(), std::span<const Request>(requests));
}

std::vector<Response> BatchRunner::run(std::span<const Request> requests) {
    return run(functional_backend(), requests);
}

std::vector<Response> BatchRunner::run(Backend& backend,
                                       const std::vector<Request>& requests) {
    return run(backend, std::span<const Request>(requests));
}

/// Shared batch protocol: publish the batch shape to stats up front (so
/// a throwing batch is never misattributed to an earlier one), let the
/// backend do its one-time work, fan spans out over the pool, and
/// attribute wall/setup/run time — on success *and* on failure (the
/// stats of a throwing batch cover the work performed before the pool
/// drained, with completed = false).
std::vector<Response> BatchRunner::run(Backend& backend,
                                       std::span<const Request> requests) {
    sim_batch_stats_ = {};
    stats_ = BatchStats{};
    stats_.inputs = requests.size();
    stats_.threads = pool_.size();

    (void)backend.take_setup_nanos();  // drop residue from a failed batch
    backend.prepare(pool_.size());

    const std::size_t n = requests.size();
    const std::size_t span =
        std::max<std::size_t>(1, backend.preferred_span(n, pool_.size()));
    const std::size_t units = (n + span - 1) / span;
    std::vector<Response> responses(n);

    // Setup accumulated before the fan-out (program compilation) is not
    // inside any unit timer and must not be subtracted from them.
    const std::int64_t outside_unit_setup = backend.setup_nanos();
    std::atomic<std::int64_t> unit_nanos{0};
    const util::WallTimer timer;
    const auto finalize = [&](bool completed) {
        stats_.wall_ms = timer.millis();
        const std::int64_t setup_total = backend.take_setup_nanos();
        stats_.setup_ms = static_cast<double>(setup_total) / 1e6;
        // Engine/Sia construction happens inside unit calls; subtract
        // that share so run_ms is pure per-request execution.
        stats_.run_ms = std::max(
            0.0, static_cast<double>(unit_nanos.load() -
                                     (setup_total - outside_unit_setup)) /
                     1e6);
        stats_.completed = completed;
    };
    try {
        pool_.parallel_for(units, [&](std::size_t unit, std::size_t worker) {
            const std::size_t base = unit * span;
            const std::size_t count = std::min(span, n - base);
            const util::WallTimer unit_timer;
            backend.run_span(worker, {requests.data() + base, count},
                             {responses.data() + base, count}, base, options_.seed);
            unit_nanos.fetch_add(static_cast<std::int64_t>(unit_timer.millis() * 1e6),
                                 std::memory_order_relaxed);
        });
    } catch (...) {
        finalize(/*completed=*/false);
        sim_batch_stats_ = backend.take_sim_batch_stats();
        throw;
    }
    finalize(/*completed=*/true);
    sim_batch_stats_ = backend.take_sim_batch_stats();
    return responses;
}

}  // namespace sia::core
