#include "core/batch_runner.hpp"

#include "sim/sia.hpp"
#include "snn/encoding.hpp"
#include "util/timer.hpp"

namespace sia::core {

namespace {

/// SplitMix64 finalizer: decorrelates consecutive item indices into
/// far-apart mt19937_64 seeds.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t index) {
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (index + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

}  // namespace

BatchRunner::BatchRunner(const snn::SnnModel& model, BatchOptions options)
    : model_(model), options_(options), pool_(options.threads),
      engines_(pool_.size()) {
    model_.validate();
}

snn::FunctionalEngine& BatchRunner::engine(std::size_t worker) {
    auto& slot = engines_[worker];
    if (!slot) slot = std::make_unique<snn::FunctionalEngine>(model_);
    return *slot;
}

BatchRunner::~BatchRunner() = default;

util::Rng BatchRunner::item_rng(std::size_t index) const {
    return util::Rng(mix_seed(options_.seed, index));
}

namespace {

/// Shared batch protocol: allocate result slots, publish the batch shape
/// to stats up front (so a throwing batch is never misattributed to an
/// earlier one), time the fan-out, record wall_ms on success.
template <typename Result, typename PerItem>
std::vector<Result> run_batch(util::ThreadPool& pool, BatchStats& stats,
                              std::size_t n, const PerItem& per_item) {
    std::vector<Result> results(n);
    stats = BatchStats{n, pool.size(), 0.0};
    const util::WallTimer timer;
    pool.parallel_for(n, [&](std::size_t item, std::size_t worker) {
        results[item] = per_item(item, worker);
    });
    stats.wall_ms = timer.millis();
    return results;
}

}  // namespace

std::vector<snn::RunResult> BatchRunner::run(
    const std::vector<snn::SpikeTrain>& inputs) {
    return run_batch<snn::RunResult>(
        pool_, stats_, inputs.size(), [&](std::size_t item, std::size_t worker) {
            return engine(worker).run(inputs[item]);
        });
}

std::vector<snn::RunResult> BatchRunner::run_images(
    const std::vector<tensor::Tensor>& images, std::int64_t timesteps) {
    return run_batch<snn::RunResult>(
        pool_, stats_, images.size(), [&](std::size_t item, std::size_t worker) {
            return engine(worker).run(snn::encode_thermometer(images[item], timesteps));
        });
}

std::vector<snn::RunResult> BatchRunner::run_images_poisson(
    const std::vector<tensor::Tensor>& images, std::int64_t timesteps) {
    return run_batch<snn::RunResult>(
        pool_, stats_, images.size(), [&](std::size_t item, std::size_t worker) {
            util::Rng rng = item_rng(item);
            return engine(worker).run(
                snn::encode_poisson(images[item], timesteps, rng));
        });
}

std::vector<sim::SiaRunResult> BatchRunner::run_sim(
    const sim::SiaConfig& config, const std::vector<snn::SpikeTrain>& inputs) {
    if (!program_ || !(*program_config_ == config)) {
        program_ = SiaCompiler(config).compile(model_);
        program_config_ = config;
    }
    return run_batch<sim::SiaRunResult>(
        pool_, stats_, inputs.size(), [&](std::size_t item, std::size_t /*worker*/) {
            // Sia carries per-inference memory/DMA state, so each item gets
            // a fresh instance; the compiled program is shared read-only.
            sim::Sia sia(config, model_, *program_);
            return sia.run(inputs[item]);
        });
}

}  // namespace sia::core
