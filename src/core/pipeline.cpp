#include "core/pipeline.hpp"

#include <algorithm>

#include "snn/encoding.hpp"
#include "snn/engine.hpp"
#include "util/log.hpp"

namespace sia::core {

void Pipeline::train_ann(nn::Model& model, const data::Dataset& train) const {
    nn::Trainer trainer(model, config_.train);
    trainer.fit(train.images, train.labels);
}

void Pipeline::quantize_and_finetune(nn::Model& model, const data::Dataset& train) const {
    // Calibrate activation ranges on a training prefix.
    const data::Dataset calib = train.take(config_.calibration_samples);
    model.begin_activation_calibration();
    (void)nn::evaluate(model, calib.images, calib.labels);
    model.end_activation_calibration();

    model.enable_quantized_activations(config_.levels);

    nn::TrainConfig ft = config_.train;
    ft.epochs = config_.finetune_epochs;
    ft.sgd.lr = config_.finetune_lr;
    ft.verbose = config_.verbose;
    nn::Trainer trainer(model, ft);
    trainer.fit(train.images, train.labels);
}

snn::SnnModel Pipeline::convert(nn::Model& model) const {
    AnnToSnnConverter converter(config_.convert);
    return converter.convert(model.ir());
}

PipelineResult Pipeline::run(nn::Model& model, const data::Dataset& train,
                             const data::Dataset& test) const {
    PipelineResult result;

    train_ann(model, train);
    result.ann_accuracy = nn::evaluate(model, test.images, test.labels).accuracy;
    if (config_.verbose) {
        util::log_info("pipeline stage 1 (FP32 ANN): test accuracy ",
                       result.ann_accuracy);
    }

    quantize_and_finetune(model, train);
    result.qann_accuracy = nn::evaluate(model, test.images, test.labels).accuracy;
    if (config_.verbose) {
        util::log_info("pipeline stage 2 (quantized ReLU, L=", config_.levels,
                       "): test accuracy ", result.qann_accuracy);
    }

    result.snn = convert(model);
    for (const auto* act : model.activations()) result.step_sizes.push_back(act->step());
    return result;
}

InputEncoder pixel_encoder() {
    return [](const tensor::Tensor& image, std::int64_t timesteps) {
        return snn::encode_thermometer(image, timesteps);
    };
}

std::vector<double> evaluate_snn_over_time(const snn::SnnModel& model,
                                           const data::Dataset& test,
                                           std::int64_t timesteps,
                                           const InputEncoder& encoder) {
    snn::FunctionalEngine engine(model);
    std::vector<std::int64_t> correct(static_cast<std::size_t>(timesteps), 0);
    const std::int64_t n = test.size();
    for (std::int64_t i = 0; i < n; ++i) {
        const auto train_enc = encoder(test.sample(i), timesteps);
        const snn::RunResult res = engine.run(train_enc);
        for (std::int64_t t = 0; t < timesteps; ++t) {
            if (res.predicted_class(t) == test.labels[static_cast<std::size_t>(i)]) {
                ++correct[static_cast<std::size_t>(t)];
            }
        }
    }
    std::vector<double> acc(static_cast<std::size_t>(timesteps), 0.0);
    for (std::int64_t t = 0; t < timesteps; ++t) {
        acc[static_cast<std::size_t>(t)] =
            n > 0 ? static_cast<double>(correct[static_cast<std::size_t>(t)]) /
                        static_cast<double>(n)
                  : 0.0;
    }
    return acc;
}

SpikeRateProfile measure_spike_rates(const snn::SnnModel& model, const data::Dataset& data,
                                     std::int64_t timesteps,
                                     const InputEncoder& encoder) {
    snn::FunctionalEngine engine(model);
    SpikeRateProfile profile;
    std::vector<double> spike_sums(model.layers.size(), 0.0);
    const std::int64_t n = data.size();
    for (std::int64_t i = 0; i < n; ++i) {
        const auto enc = encoder(data.sample(i), timesteps);
        const snn::RunResult res = engine.run(enc);
        for (std::size_t l = 0; l < model.layers.size(); ++l) {
            spike_sums[l] += static_cast<double>(res.spike_counts[l]);
        }
    }
    double total_spikes = 0.0;
    double total_neuron_steps = 0.0;
    for (std::size_t l = 0; l < model.layers.size(); ++l) {
        const snn::SnnLayer& layer = model.layers[l];
        if (!layer.spiking) continue;
        const double denom = static_cast<double>(layer.neurons()) *
                             static_cast<double>(timesteps) * static_cast<double>(n);
        profile.labels.push_back(layer.label);
        profile.rates.push_back(denom > 0 ? spike_sums[l] / denom : 0.0);
        total_spikes += spike_sums[l];
        total_neuron_steps += denom;
    }
    profile.overall = total_neuron_steps > 0 ? total_spikes / total_neuron_steps : 0.0;
    return profile;
}

}  // namespace sia::core
