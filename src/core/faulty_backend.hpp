// FaultyBackend: a fault-injecting decorator over any core::Backend.
//
// Wraps an inner backend and consults a util::FaultInjector per request
// before (throw/transient/stall) and after (corrupt) delegating to the
// inner run_span. Decisions key off the request's rng_stream — the same
// admission-pinned index the encodings draw from — so which requests
// fault is independent of wave formation, bisection re-runs, and thread
// scheduling, and a chaos test can predict the faulted set exactly.
//
// Span semantics: a span containing a poisoned request throws for the
// lowest-index poisoned request before the inner backend runs anything.
// That models the wave-poisoning failure the server's bisection
// quarantines — any sub-span containing the poisoned request fails,
// every sub-span without it completes bit-identically to a fault-free
// run.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "core/backend.hpp"
#include "util/fault.hpp"

namespace sia::core {

class FaultyBackend final : public Backend {
public:
    FaultyBackend(std::shared_ptr<Backend> inner, util::FaultPlan plan);

    [[nodiscard]] std::string_view name() const noexcept override { return name_; }
    void prepare(std::size_t workers) override;
    [[nodiscard]] std::size_t preferred_span(
        std::size_t n, std::size_t workers) const noexcept override;
    void run_span(std::size_t worker, std::span<const Request> requests,
                  std::span<Response> responses, std::size_t base,
                  std::uint64_t seed) override;
    [[nodiscard]] sim::SiaBatchStats take_sim_batch_stats() noexcept override;

    [[nodiscard]] const util::FaultInjector& injector() const noexcept {
        return injector_;
    }
    [[nodiscard]] Backend& inner() noexcept { return *inner_; }

private:
    std::shared_ptr<Backend> inner_;
    util::FaultInjector injector_;
    std::string name_;
};

}  // namespace sia::core
