// Unified inference API: one request/response surface over both of the
// paper's engines — the functional SNN engine (snn::FunctionalEngine)
// and the cycle-accurate simulated accelerator (sim::Sia) — so anything
// layered above (core::BatchRunner, core::Server) is backend-agnostic.
//
// A Backend owns all per-worker execution state (engines, resident
// simulators, compiled programs) and exposes a span-oriented run
// protocol the runner fans out over a thread pool:
//
//   prepare(workers)        one-time per-batch work, caller's thread
//   run_span(worker, ...)   encode + run a contiguous request slice
//
// Determinism contract (inherited from BatchRunner, extended to
// backends): for a fixed backend, results are bit-identical to running
// the same requests sequentially through a fresh engine, for every
// thread count and span grouping. Stochastic encodings draw from
// per-request RNG streams derived from (seed, stream index) only —
// `stream index` defaults to the request's batch position and can be
// pinned via Request::rng_stream (core::Server pins it to the admission
// sequence number so batch formation, a timing artifact, can never
// influence results).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/compiler.hpp"
#include "sim/config.hpp"
#include "sim/program.hpp"
#include "sim/sia.hpp"
#include "sim/sia_cluster.hpp"
#include "snn/engine.hpp"
#include "snn/exit.hpp"
#include "snn/model.hpp"
#include "snn/session.hpp"
#include "snn/spike.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace sia::core {

/// Input spike encoding applied by the backend worker, per request.
enum class Encoding : std::uint8_t {
    kPreEncoded,   ///< request carries a ready snn::SpikeTrain
    kThermometer,  ///< thermometer-encode the raw image (deterministic)
    kPoisson,      ///< Poisson-rate-encode from the request's RNG stream
};

/// Scheduling lane of a request inside core::Server. Lower value = more
/// urgent: the high lane preempts wave formation (its requests fill a
/// forming wave before any normal/low request regardless of arrival
/// time), the low lane is shed first when a full queue must make room
/// under BackpressurePolicy::kReject. Priority never affects results —
/// only when a request runs.
enum class Priority : std::uint8_t {
    kHigh = 0,
    kNormal = 1,
    kLow = 2,
};
inline constexpr std::size_t kPriorityLanes = 3;

/// Structured failure code of a request's Response (the serving fault
/// model; see docs/ARCHITECTURE.md §8). A backend failure resolves the
/// request's future with a *value* carrying the code + message — never
/// a silently-dropped exception — so callers can distinguish "your
/// request is malformed" from "the backend is unhealthy" from "you ran
/// out of time".
enum class ErrorCode : std::uint8_t {
    kOk = 0,
    kInvalidRequest,    ///< malformed request (never retried or failed over)
    kBackendError,      ///< backend failure (after any retries/failover)
    kDeadlineExceeded,  ///< deadline_us elapsed before completion
    kCircuitOpen,       ///< lane breaker open and no fallback registered
    kShuttingDown,      ///< refused: server/lane draining
    kQueueFull,         ///< refused: queue at max_queue, nothing sheddable
    kUnknownModel,      ///< refused: no lane for Request::model
};

[[nodiscard]] const char* to_string(ErrorCode code) noexcept;

/// Failure a backend classifies as retriable: the serving layer re-runs
/// the request (bounded, exponential backoff) before treating it as a
/// permanent kBackendError. Any other exception type is permanent.
struct TransientError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

/// One inference request. Inputs may be owned (`from_*` factories — the
/// serving path, where the submitter hands the data off) or borrowed
/// (`view_*` factories — the zero-copy batch path; the caller keeps the
/// referenced train/image alive until the batch returns).
struct Request {
    Encoding encoding = Encoding::kPreEncoded;
    /// Timesteps to encode (image encodings only; pre-encoded trains
    /// carry their own length).
    std::int64_t timesteps = 0;

    snn::SpikeTrain train;  ///< owned pre-encoded input
    tensor::Tensor image;   ///< owned raw image
    const snn::SpikeTrain* train_view = nullptr;  ///< borrowed alternative to `train`
    const tensor::Tensor* image_view = nullptr;   ///< borrowed alternative to `image`

    /// RNG stream index for stochastic encodings. Defaults to the
    /// request's position in the submitted batch; pin it (as the server
    /// does, to the admission sequence) when the same request must
    /// encode identically regardless of how batches are formed.
    std::optional<std::uint64_t> rng_stream;

    // --- serving routing (core::Server; ignored by plain BatchRunner) ---
    /// Registered model to route to. Empty = the server's sole model
    /// (single-model servers), otherwise must name a registered model.
    std::string model;
    /// Tenant the request is accounted (fairness weight, per-tenant
    /// latency/SLO stats) under. Empty is a valid tenant.
    std::string tenant;
    Priority priority = Priority::kNormal;
    /// Completion deadline relative to submission, in microseconds
    /// (0 = none). The server enforces it at admission (a kBlock wait
    /// gives up at the deadline), wave formation (an expired request
    /// never occupies a wave slot), and completion/retry — the future
    /// then resolves with ErrorCode::kDeadlineExceeded. Ignored for
    /// session windows: skipping one would desync the stream's carried
    /// state, so session windows always run.
    std::int64_t deadline_us = 0;
    /// Retry attempt number of this run (0 = first). Managed by the
    /// serving layer; backends may key fault recovery off it.
    std::uint32_t attempt = 0;

    // --- streaming sessions (persistent membranes across windows) ---
    /// Logical streaming session this request is one window of. Empty =
    /// stateless one-shot inference. Non-empty: the serving path routes
    /// every window of the id to the same lane in admission order, and
    /// the backend resumes/saves the attached session_state around the
    /// run, so N chunked windows are bit-identical to one monolithic
    /// run.
    std::string session;
    /// Window sequence number within the session. Assigned by the
    /// server at admission; echoed in the response.
    std::uint64_t window_seq = 0;
    /// Retire the session once this window resolves (server-side).
    bool close_session = false;
    /// Carried state (membranes + readout) the backend resumes and
    /// saves back. The server attaches the lane's table entry at
    /// admission; callers driving BatchRunner directly attach their
    /// own — but must not submit two windows of one session into the
    /// same batch (they would race).
    std::shared_ptr<snn::SessionState> session_state;

    // --- temporal early exit (anytime inference) ---
    /// Optional per-request confidence criterion: the backend stops
    /// integrating timesteps once the accumulated readout satisfies it
    /// (Response::steps_used < steps_offered, exit_reason set). Absent
    /// or disabled = full train. For session windows the criterion
    /// evaluates the *window's* readout delta, so a carried readout
    /// lead from earlier windows never triggers an instant exit, and
    /// the carried SessionState stays exactly what a full-attention
    /// run of the executed steps would leave. A malformed criterion
    /// resolves the request with ErrorCode::kInvalidRequest.
    std::optional<snn::ExitCriterion> early_exit;

    /// Chainable routing tag for rvalue requests:
    ///   server.submit(Request::view_train(t).with("vgg", "tenant-a",
    ///                                             Priority::kHigh));
    [[nodiscard]] Request with(std::string model_name, std::string tenant_name = {},
                               Priority prio = Priority::kNormal) &&;
    /// Chainable session tag for rvalue requests:
    ///   server.submit(Request::from_train(w).with_session("cam-0"));
    [[nodiscard]] Request with_session(std::string session_id, bool close = false) &&;
    /// Chainable deadline for rvalue requests.
    [[nodiscard]] Request with_deadline(std::int64_t us) &&;
    /// Chainable early-exit criterion for rvalue requests:
    ///   server.submit(Request::view_train(t).with_early_exit(
    ///       {.margin = 40, .min_steps = 8}));
    [[nodiscard]] Request with_early_exit(snn::ExitCriterion criterion) &&;

    /// Deep-copy borrowed views (train_view/image_view) into owned
    /// storage and drop the pointers, leaving the request
    /// self-contained. The server calls this at admission: dispatch is
    /// asynchronous, so a borrowed buffer can die between submit()
    /// returning and a worker encoding the request.
    void own_views();

    [[nodiscard]] static Request from_train(snn::SpikeTrain t);
    [[nodiscard]] static Request view_train(const snn::SpikeTrain& t);
    [[nodiscard]] static Request thermometer(tensor::Tensor img, std::int64_t timesteps);
    [[nodiscard]] static Request view_thermometer(const tensor::Tensor& img,
                                                  std::int64_t timesteps);
    [[nodiscard]] static Request poisson(tensor::Tensor img, std::int64_t timesteps);
    [[nodiscard]] static Request view_poisson(const tensor::Tensor& img,
                                              std::int64_t timesteps);

    /// The pre-encoded train (borrowed or owned). Valid when
    /// encoding == kPreEncoded.
    [[nodiscard]] const snn::SpikeTrain& pre_encoded() const noexcept {
        return train_view != nullptr ? *train_view : train;
    }
    /// The raw image (borrowed or owned). Valid for image encodings.
    [[nodiscard]] const tensor::Tensor& raw_image() const noexcept {
        return image_view != nullptr ? *image_view : image;
    }
};

/// One inference response: the union of what the two engines report.
/// Core fields (logits, spike/neuron counts, timesteps) are filled by
/// every backend and are bit-identical across backends by the engines'
/// shared-numerics construction; the per-layer extras are
/// backend-specific and empty elsewhere.
struct Response {
    /// Per-step accumulated readout rows. Only filled when the backend's
    /// EngineConfig/record keeps history (serving configs turn it off);
    /// `logits` below is always present.
    std::vector<std::vector<std::int64_t>> logits_per_step;  ///< [T][classes]
    /// Final accumulated readout after the steps actually integrated —
    /// the row predictions are defined on, filled by every backend
    /// whether or not per-step history is recorded.
    std::vector<std::int64_t> logits;
    std::vector<std::int64_t> spike_counts;                  ///< per layer
    std::vector<std::int64_t> neuron_counts;                 ///< per layer
    /// Kernel-dispatch/density counters (FunctionalBackend only).
    std::vector<snn::LayerDispatchStats> layer_dispatch;
    /// Cycle-accurate per-layer stats (SiaBackend only).
    std::vector<sim::LayerCycleStats> layer_stats;
    std::int64_t timesteps = 0;

    // --- temporal early exit accounting ---
    /// Timesteps actually integrated (== timesteps; alias kept explicit
    /// for the serving stats surface).
    std::int64_t steps_used = 0;
    /// Timesteps the request offered (train length / Request::timesteps).
    std::int64_t steps_offered = 0;
    /// Why integration stopped (kNone = ran the full train).
    snn::ExitReason exit_reason = snn::ExitReason::kNone;

    // --- streaming session echo (empty / zero for stateless requests) ---
    std::string session;       ///< session id of the request
    std::uint64_t window_seq = 0;  ///< window index within the session
    /// Timesteps the session has integrated in total, this window
    /// included. logits_per_step.back() is the readout accumulated over
    /// all session_steps, not just this window's timesteps.
    std::int64_t session_steps = 0;

    // --- structured failure (serving fault model; see ErrorCode) ---
    ErrorCode error_code = ErrorCode::kOk;
    /// Human-readable failure detail; empty on success.
    std::string error;
    /// Same-backend re-runs the serving layer performed for this request.
    std::uint32_t retries = 0;
    /// True when the lane's registered fallback backend served this
    /// response (primary failed or its breaker was open).
    bool failed_over = false;

    [[nodiscard]] bool ok() const noexcept { return error_code == ErrorCode::kOk; }

    /// Prediction after timestep `t` (argmax of accumulated logits).
    [[nodiscard]] std::int64_t predicted_class(std::int64_t t) const;
    /// Prediction of the final readout (`logits`; argmax, first-index
    /// wins) — valid with or without per-step history.
    [[nodiscard]] std::int64_t predicted() const;
    /// True when the backend attached cycle stats (i.e. it simulates
    /// the accelerator rather than just the numerics).
    [[nodiscard]] bool has_cycle_stats() const noexcept { return !layer_stats.empty(); }
    [[nodiscard]] std::int64_t total_cycles() const noexcept;

    [[nodiscard]] static Response from(snn::RunResult r);
    [[nodiscard]] static Response from(sim::SiaRunResult r);
};

/// How a sim backend maps requests onto simulated accelerator instances.
enum class SimSchedule {
    /// One fresh sim::Sia per request (the pre-residency behaviour; kept
    /// as the amortization baseline the bench compares against).
    kPerItem,
    /// One resident sim::Sia per worker; whole request spans go through
    /// Sia::run_batch so BRAM weight residency and the compiled program
    /// amortize across the span. Bit-identical to kPerItem.
    kResident,
};

/// Backend-polymorphic execution surface. Implementations own per-worker
/// state indexed by the `worker` id the runner passes in; slot `w` is
/// only ever touched from pool worker `w`, which is what makes the
/// per-worker caches race-free without locks. A Backend must not be
/// driven by two concurrently-running batches (one BatchRunner/Server
/// at a time).
class Backend {
public:
    explicit Backend(const snn::SnnModel& model);
    virtual ~Backend() = default;

    Backend(const Backend&) = delete;
    Backend& operator=(const Backend&) = delete;

    [[nodiscard]] virtual std::string_view name() const noexcept = 0;

    /// One-time per-batch work on the caller's thread before the
    /// fan-out (program compilation, worker-slot sizing). `workers` is
    /// the number of distinct worker ids subsequent run_span calls may
    /// use. Heavy work must be self-reported via add_setup_nanos so the
    /// runner can attribute it to BatchStats::setup_ms.
    virtual void prepare(std::size_t workers) = 0;

    /// Preferred work-unit size for a batch of `n` requests over
    /// `workers` workers: 1 = fan out per request (the default);
    /// chunked backends (resident sim) return ceil(n / workers) so a
    /// whole contiguous sub-batch lands on one worker.
    [[nodiscard]] virtual std::size_t preferred_span(
        std::size_t n, std::size_t workers) const noexcept {
        (void)n;
        (void)workers;
        return 1;
    }

    /// Encode and run `requests` — a contiguous slice of a batch whose
    /// first element has batch index `base` — on worker `worker`,
    /// writing `responses[i]` for request i. Stochastic encodings for
    /// request i must draw from util::Rng(util::mix_seed(seed, s))
    /// where s = requests[i].rng_stream.value_or(base + i).
    virtual void run_span(std::size_t worker, std::span<const Request> requests,
                          std::span<Response> responses, std::size_t base,
                          std::uint64_t seed) = 0;

    /// Drain the residency accounting accumulated since the last call
    /// (sim backends; zero-valued elsewhere).
    [[nodiscard]] virtual sim::SiaBatchStats take_sim_batch_stats() noexcept {
        return {};
    }

    [[nodiscard]] const snn::SnnModel& model() const noexcept { return model_; }

    // --- setup-time protocol (BatchRunner's stats attribution) ---
    [[nodiscard]] std::int64_t setup_nanos() const noexcept {
        return setup_nanos_.load(std::memory_order_relaxed);
    }
    std::int64_t take_setup_nanos() noexcept { return setup_nanos_.exchange(0); }

protected:
    void add_setup_nanos(std::int64_t nanos) noexcept {
        setup_nanos_.fetch_add(nanos, std::memory_order_relaxed);
    }
    /// Resolve a request to the train to run: pass through pre-encoded
    /// inputs, or encode the raw image into `scratch` (Poisson draws
    /// from the stream derived from (seed, stream)). Throws
    /// std::invalid_argument on malformed requests (image encodings
    /// with timesteps <= 0).
    [[nodiscard]] static const snn::SpikeTrain& materialize(const Request& request,
                                                            std::uint64_t seed,
                                                            std::uint64_t stream,
                                                            snn::SpikeTrain& scratch);

private:
    const snn::SnnModel& model_;
    std::atomic<std::int64_t> setup_nanos_{0};
};

/// Functional (bit-accurate, cycle-agnostic) backend: one private
/// snn::FunctionalEngine per worker, built lazily on the worker's first
/// request and reused across batches. Honors EngineConfig's
/// density-adaptive kernel dispatch; responses carry the per-layer
/// dispatch counters.
class FunctionalBackend final : public Backend {
public:
    explicit FunctionalBackend(const snn::SnnModel& model,
                               snn::EngineConfig config = {});

    [[nodiscard]] std::string_view name() const noexcept override {
        return "functional";
    }
    void prepare(std::size_t workers) override;
    void run_span(std::size_t worker, std::span<const Request> requests,
                  std::span<Response> responses, std::size_t base,
                  std::uint64_t seed) override;

    [[nodiscard]] const snn::EngineConfig& engine_config() const noexcept {
        return config_;
    }

private:
    [[nodiscard]] snn::FunctionalEngine& engine(std::size_t worker);

    snn::EngineConfig config_;
    std::vector<std::unique_ptr<snn::FunctionalEngine>> engines_;
};

/// Cycle-accurate backend: the compiled program is cached inside the
/// backend (compiled once in prepare()), and with the default kResident
/// schedule each worker keeps a resident sim::Sia whose BRAM weights and
/// program survive across spans and batches. Responses carry per-layer
/// cycle stats; spikes/logits are bit-identical to FunctionalBackend by
/// the engines' shared-numerics construction.
class SiaBackend final : public Backend {
public:
    explicit SiaBackend(const snn::SnnModel& model, sim::SiaConfig config = {},
                        SimSchedule schedule = SimSchedule::kResident);

    [[nodiscard]] std::string_view name() const noexcept override { return "sia"; }
    void prepare(std::size_t workers) override;
    [[nodiscard]] std::size_t preferred_span(std::size_t n,
                                             std::size_t workers) const noexcept override;
    void run_span(std::size_t worker, std::span<const Request> requests,
                  std::span<Response> responses, std::size_t base,
                  std::uint64_t seed) override;
    [[nodiscard]] sim::SiaBatchStats take_sim_batch_stats() noexcept override;

    [[nodiscard]] const sim::SiaConfig& config() const noexcept { return config_; }
    [[nodiscard]] SimSchedule schedule() const noexcept { return schedule_; }
    /// Schedules are bit-identical, so this only trades residency
    /// amortization; it never invalidates the program or the resident
    /// instances.
    void set_schedule(SimSchedule schedule) noexcept { schedule_ = schedule; }

private:
    [[nodiscard]] sim::Sia& resident(std::size_t worker);

    sim::SiaConfig config_;
    SimSchedule schedule_;
    std::optional<sim::CompiledProgram> program_;
    /// One resident simulator slot per worker (kResident), filled
    /// lazily, reused across batches.
    std::vector<std::unique_ptr<sim::Sia>> sias_;
    /// Residency accounting accumulated across concurrent run_span
    /// calls (hence the lock; spans on different workers race on it).
    std::mutex stats_mutex_;
    sim::SiaBatchStats batch_stats_;
};

/// Sharded cycle-accurate backend: one sim::SiaCluster — N resident Sia
/// shards partitioned by SiaCompiler::compile_sharded — serves every
/// span. The cluster drives its own worker pool, so the backend claims
/// the whole batch as a single span (preferred_span = n) and runs it on
/// one runner worker. Logits/spikes/sessions are bit-identical to
/// SiaBackend by the sharding equivalence contract (sim/shard.hpp), so
/// a cluster lane composes with batching, sessions, retries, and
/// failover unchanged.
class ShardedSiaBackend final : public Backend {
public:
    ShardedSiaBackend(const snn::SnnModel& model, sim::SiaConfig config,
                      ShardOptions shard_options,
                      sim::SiaClusterOptions cluster_options = {});

    [[nodiscard]] std::string_view name() const noexcept override {
        return "sia-cluster";
    }
    void prepare(std::size_t workers) override;
    [[nodiscard]] std::size_t preferred_span(std::size_t n,
                                             std::size_t workers) const noexcept override;
    void run_span(std::size_t worker, std::span<const Request> requests,
                  std::span<Response> responses, std::size_t base,
                  std::uint64_t seed) override;

    /// Drain the cluster accounting accumulated since the last call.
    [[nodiscard]] sim::ShardStats take_shard_stats() noexcept;

    [[nodiscard]] const sim::SiaConfig& config() const noexcept { return config_; }
    [[nodiscard]] const ShardOptions& shard_options() const noexcept {
        return shard_options_;
    }
    /// The resident cluster (nullptr before the first prepare()).
    [[nodiscard]] const sim::SiaCluster* cluster() const noexcept {
        return cluster_.get();
    }

private:
    sim::SiaConfig config_;
    ShardOptions shard_options_;
    sim::SiaClusterOptions cluster_options_;
    std::unique_ptr<sim::SiaCluster> cluster_;
    std::mutex stats_mutex_;
    sim::ShardStats shard_stats_;
};

}  // namespace sia::core
