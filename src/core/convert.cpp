#include "core/convert.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/quantize.hpp"
#include "util/fixed_point.hpp"
#include "util/log.hpp"

namespace sia::core {

namespace {

constexpr float kThetaInt = static_cast<float>(1 << util::kThetaFracBits);  // 256

/// Per-IR-node bookkeeping during conversion.
struct SourceInfo {
    int snn_index = -1;     ///< producing SNN layer (-1 = network input)
    float amplitude = 1.0F; ///< real value carried by one output spike
    std::int64_t channels = 0;
    std::int64_t h = 0;
    std::int64_t w = 0;
};

struct BnFold {
    std::vector<double> g;  ///< gamma / sqrt(var + eps), per channel
    std::vector<double> h;  ///< beta - mu * g, per channel
};

BnFold fold_bn(const nn::BatchNorm2d* bn, std::int64_t channels) {
    BnFold fold;
    fold.g.assign(static_cast<std::size_t>(channels), 1.0);
    fold.h.assign(static_cast<std::size_t>(channels), 0.0);
    if (bn == nullptr) return fold;
    if (bn->channels() != channels) {
        throw std::invalid_argument("convert: BN channel mismatch");
    }
    for (std::int64_t c = 0; c < channels; ++c) {
        const double inv_std =
            1.0 / std::sqrt(static_cast<double>(bn->running_var()[static_cast<std::size_t>(c)]) +
                            static_cast<double>(bn->eps()));
        const double g = static_cast<double>(bn->gamma().value.flat(c)) * inv_std;
        fold.g[static_cast<std::size_t>(c)] = g;
        fold.h[static_cast<std::size_t>(c)] =
            static_cast<double>(bn->beta().value.flat(c)) -
            static_cast<double>(bn->running_mean()[static_cast<std::size_t>(c)]) * g;
    }
    return fold;
}

/// Fill a branch's per-channel aggregation coefficients.
void set_branch_coeffs(snn::Branch& branch, const BnFold& fold, float qw,
                       float input_amplitude, float step) {
    const std::int64_t oc = static_cast<std::int64_t>(fold.g.size());
    double max_gain = 0.0;
    std::vector<double> gains(static_cast<std::size_t>(oc), 0.0);
    for (std::int64_t c = 0; c < oc; ++c) {
        gains[static_cast<std::size_t>(c)] = fold.g[static_cast<std::size_t>(c)] *
                                             static_cast<double>(qw) *
                                             static_cast<double>(input_amplitude) *
                                             kThetaInt / static_cast<double>(step);
        max_gain = std::max(max_gain, std::abs(gains[static_cast<std::size_t>(c)]));
    }
    branch.gain_shift = select_gain_shift(max_gain);
    branch.gain.resize(static_cast<std::size_t>(oc));
    branch.bias.resize(static_cast<std::size_t>(oc));
    for (std::int64_t c = 0; c < oc; ++c) {
        branch.gain[static_cast<std::size_t>(c)] = util::saturate16(
            std::llround(gains[static_cast<std::size_t>(c)] *
                         static_cast<double>(std::int64_t{1} << branch.gain_shift)));
        branch.bias[static_cast<std::size_t>(c)] = util::saturate16(std::llround(
            fold.h[static_cast<std::size_t>(c)] * kThetaInt / static_cast<double>(step)));
    }
    branch.weight_scale = qw;
}

float activation_step(const nn::IrNode& node) {
    if (node.act == nullptr) {
        throw std::invalid_argument("convert: spiking node '" + node.label +
                                    "' has no activation");
    }
    const float s = node.act->step();
    if (!(s > 0.0F)) {
        throw std::invalid_argument("convert: non-positive activation step at '" +
                                    node.label + "' (run calibration + enable_quant)");
    }
    return s;
}

}  // namespace

int select_gain_shift(double max_gain) noexcept {
    // Largest shift in [0, 14] with round(max_gain * 2^shift) <= int16 max.
    for (int shift = 14; shift >= 0; --shift) {
        const double scaled = max_gain * static_cast<double>(std::int64_t{1} << shift);
        if (scaled <= 32767.0) return shift;
    }
    util::log_warn("convert: branch gain ", max_gain,
                   " overflows int16 even at shift 0; saturating");
    return 0;
}

snn::SnnModel AnnToSnnConverter::convert(const nn::NetworkIR& ir) const {
    if (ir.nodes.empty() || ir.nodes.front().op != nn::IrOp::kInput) {
        throw std::invalid_argument("convert: IR must start with an input node");
    }

    snn::SnnModel model;
    model.name = ir.model_name + "-snn";
    model.input_channels = ir.input_channels;
    model.input_h = ir.input_h;
    model.input_w = ir.input_w;

    std::vector<SourceInfo> info(ir.nodes.size());
    info[0] = SourceInfo{-1, options_.input_amplitude, ir.input_channels, ir.input_h,
                         ir.input_w};
    // AvgPool folding: pool node index -> (source node, kernel).
    std::vector<std::int64_t> pool_kernel(ir.nodes.size(), 0);
    std::vector<int> pool_source(ir.nodes.size(), -1);
    int conv_seen = 0;

    for (std::size_t ni = 1; ni < ir.nodes.size(); ++ni) {
        const nn::IrNode& node = ir.nodes[ni];
        switch (node.op) {
            case nn::IrOp::kInput:
                throw std::invalid_argument("convert: multiple input nodes");
            case nn::IrOp::kAvgPool: {
                if (pool_kernel[static_cast<std::size_t>(node.input)] != 0) {
                    throw std::invalid_argument("convert: pool after pool unsupported");
                }
                const auto& src = info[static_cast<std::size_t>(node.input)];
                pool_kernel[ni] = node.pool_kernel;
                pool_source[ni] = node.input;
                info[ni] = src;  // pass-through; folding happens at the consumer
                break;
            }
            case nn::IrOp::kConv: {
                if (conv_seen < options_.host_front_layers) {
                    // This layer runs on the processor; its quantized
                    // activations become the accelerator's spike input.
                    const float step = activation_step(node);
                    info[ni] = SourceInfo{-1, step, node.out_channels, node.out_h,
                                          node.out_w};
                    model.input_channels = node.out_channels;
                    model.input_h = node.out_h;
                    model.input_w = node.out_w;
                    ++conv_seen;
                    break;
                }
                ++conv_seen;
                const auto& src = info[static_cast<std::size_t>(node.input)];
                if (pool_kernel[static_cast<std::size_t>(node.input)] != 0) {
                    throw std::invalid_argument(
                        "convert: conv after pool unsupported (models pool only "
                        "before the classifier)");
                }
                const float step = activation_step(node);
                const auto& geom = node.conv->geometry();

                snn::SnnLayer layer;
                layer.op = snn::LayerOp::kConv;
                layer.label = node.label;
                layer.input = src.snn_index;
                layer.spiking = true;
                layer.neuron = options_.neuron;
                layer.reset = options_.reset;
                layer.leak_shift = options_.leak_shift;
                layer.step_size = step;
                layer.out_channels = node.out_channels;
                layer.out_h = node.out_h;
                layer.out_w = node.out_w;
                layer.in_h = src.h;
                layer.in_w = src.w;

                snn::Branch& main = layer.main;
                main.in_channels = geom.in_channels;
                main.out_channels = geom.out_channels;
                main.kernel = geom.kernel;
                main.stride = geom.stride;
                main.padding = geom.padding;
                const auto q = quantize_weights(node.conv->weight().value.data(),
                                                options_.weight_bits, options_.clip_pct);
                main.weights = q.values;
                set_branch_coeffs(main, fold_bn(node.bn, geom.out_channels), q.scale,
                                  src.amplitude, step);

                if (node.skip_src >= 0) {
                    const auto& skip_src = info[static_cast<std::size_t>(node.skip_src)];
                    layer.skip_src = skip_src.snn_index;
                    if (node.skip_conv == nullptr) {
                        layer.skip_is_identity = true;
                        layer.identity_skip.charge = util::saturate16(std::llround(
                            static_cast<double>(skip_src.amplitude) * kThetaInt /
                            static_cast<double>(step)));
                    } else {
                        layer.skip_is_identity = false;
                        const auto& sgeom = node.skip_conv->geometry();
                        snn::Branch& skip = layer.skip;
                        skip.in_channels = sgeom.in_channels;
                        skip.out_channels = sgeom.out_channels;
                        skip.kernel = sgeom.kernel;
                        skip.stride = sgeom.stride;
                        skip.padding = sgeom.padding;
                        const auto sq =
                            quantize_weights(node.skip_conv->weight().value.data(),
                                             options_.weight_bits, options_.clip_pct);
                        skip.weights = sq.values;
                        set_branch_coeffs(skip, fold_bn(node.skip_bn, sgeom.out_channels),
                                          sq.scale, skip_src.amplitude, step);
                    }
                }

                model.layers.push_back(std::move(layer));
                info[ni] = SourceInfo{static_cast<int>(model.layers.size()) - 1, step,
                                      node.out_channels, node.out_h, node.out_w};
                break;
            }
            case nn::IrOp::kLinear: {
                // Resolve through a folded average pool if present.
                int src_node = node.input;
                std::int64_t pool_k = 1;
                if (pool_kernel[static_cast<std::size_t>(src_node)] != 0) {
                    pool_k = pool_kernel[static_cast<std::size_t>(src_node)];
                    src_node = pool_source[static_cast<std::size_t>(src_node)];
                }
                const auto& src = info[static_cast<std::size_t>(src_node)];

                const std::int64_t full_features = src.channels * src.h * src.w;
                const std::int64_t out_features = node.fc->out_features();
                // Expand pooled weights to full resolution / k^2.
                std::vector<float> w_eff(
                    static_cast<std::size_t>(out_features * full_features), 0.0F);
                const std::int64_t ph = src.h / pool_k;
                const std::int64_t pw = src.w / pool_k;
                const float inv_area = 1.0F / static_cast<float>(pool_k * pool_k);
                const auto& w = node.fc->weight().value;
                if (node.fc->in_features() != src.channels * ph * pw) {
                    throw std::invalid_argument(
                        "convert: FC in_features does not match pooled source");
                }
                for (std::int64_t f = 0; f < out_features; ++f) {
                    for (std::int64_t c = 0; c < src.channels; ++c) {
                        for (std::int64_t y = 0; y < src.h; ++y) {
                            for (std::int64_t x = 0; x < src.w; ++x) {
                                const std::int64_t dp =
                                    (c * ph + y / pool_k) * pw + x / pool_k;
                                const std::int64_t d = (c * src.h + y) * src.w + x;
                                w_eff[static_cast<std::size_t>(f * full_features + d)] =
                                    w.at(f, dp) * inv_area;
                            }
                        }
                    }
                }

                const auto q = quantize_weights(w_eff, options_.weight_bits,
                                                options_.clip_pct);

                snn::SnnLayer layer;
                layer.op = snn::LayerOp::kLinear;
                layer.label = node.label;
                layer.input = src.snn_index;
                layer.out_channels = out_features;
                layer.out_h = 1;
                layer.out_w = 1;
                layer.neuron = options_.neuron;
                layer.reset = options_.reset;
                layer.leak_shift = options_.leak_shift;

                snn::Branch& main = layer.main;
                main.in_features = full_features;
                main.out_features = out_features;
                main.weights = q.values;
                main.weight_scale = q.scale;
                // The hardware streams the physical (pre-pool-unroll)
                // weight matrix; the unrolled copy exists only so engine
                // indexing stays binary-spike-addressed.
                main.stream_weight_bytes = out_features * node.fc->in_features();
                main.gain.resize(static_cast<std::size_t>(out_features));
                main.bias.resize(static_cast<std::size_t>(out_features));

                const auto& bias = node.fc->bias().value;
                if (node.act == nullptr) {
                    // Readout: logits accumulate in units of q_w * theta_in.
                    layer.spiking = false;
                    main.gain_shift = util::kBnGainShift;
                    const auto unit_gain = static_cast<std::int16_t>(
                        std::int16_t{1} << util::kBnGainShift);
                    const double denom = static_cast<double>(q.scale) *
                                         static_cast<double>(src.amplitude);
                    for (std::int64_t f = 0; f < out_features; ++f) {
                        main.gain[static_cast<std::size_t>(f)] = unit_gain;
                        main.bias[static_cast<std::size_t>(f)] = util::saturate16(
                            std::llround(static_cast<double>(bias.flat(f)) / denom));
                    }
                } else {
                    layer.spiking = true;
                    const float step = activation_step(node);
                    layer.step_size = step;
                    BnFold fold;
                    fold.g.assign(static_cast<std::size_t>(out_features), 1.0);
                    fold.h.resize(static_cast<std::size_t>(out_features));
                    for (std::int64_t f = 0; f < out_features; ++f) {
                        fold.h[static_cast<std::size_t>(f)] =
                            static_cast<double>(bias.flat(f));
                    }
                    set_branch_coeffs(main, fold, q.scale, src.amplitude, step);
                    // set_branch_coeffs sized gain/bias for fold.g entries.
                }

                model.layers.push_back(std::move(layer));
                info[ni] = SourceInfo{static_cast<int>(model.layers.size()) - 1,
                                      node.act != nullptr ? node.act->step() : 0.0F,
                                      out_features, 1, 1};
                break;
            }
        }
    }

    if (model.layers.empty()) throw std::invalid_argument("convert: empty model");
    model.classes = model.layers.back().out_channels;
    model.validate();
    return model;
}

}  // namespace sia::core
