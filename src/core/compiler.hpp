// SIA compiler: maps a converted SnnModel onto the accelerator's
// physical constraints (Fig. 2 "configuration"), producing the
// sim::CompiledProgram executed by the cycle-accurate simulator.
//
// Responsibilities:
//   * tile output channels over the 64-PE array (ceil(OC/64) passes);
//   * pack kernels into the 8 kB weight memory — each PE owns one
//     kernel slot of weight_bytes/64 bytes; kernels larger than a slot
//     split into input-channel chunks streamed in multiple passes;
//   * route FC layers over the PS-mediated AXI4-lite word path;
//   * compute per-timestep transfer volumes (spikes in/out, kernels,
//     residual partial sums) and membrane-memory residency, flagging
//     DDR spill when a layer's potentials exceed one ping-pong bank.
#pragma once

#include "sim/config.hpp"
#include "sim/program.hpp"
#include "snn/model.hpp"

namespace sia::core {

class SiaCompiler {
public:
    explicit SiaCompiler(sim::SiaConfig config = {}) : config_(config) {}

    /// Compile; throws std::invalid_argument if a layer cannot be
    /// scheduled at all (e.g. zero-size geometry).
    [[nodiscard]] sim::CompiledProgram compile(const snn::SnnModel& model) const;

    [[nodiscard]] const sim::SiaConfig& config() const noexcept { return config_; }

private:
    sim::SiaConfig config_;
};

}  // namespace sia::core
