// SIA compiler: maps a converted SnnModel onto the accelerator's
// physical constraints (Fig. 2 "configuration"), producing the
// sim::CompiledProgram executed by the cycle-accurate simulator.
//
// Responsibilities:
//   * tile output channels over the 64-PE array (ceil(OC/64) passes);
//   * pack kernels into the 8 kB weight memory — each PE owns one
//     kernel slot of weight_bytes/64 bytes; kernels larger than a slot
//     split into input-channel chunks streamed in multiple passes;
//   * route FC layers over the PS-mediated AXI4-lite word path;
//   * compute per-timestep transfer volumes (spikes in/out, kernels,
//     residual partial sums) and membrane-memory residency, flagging
//     DDR spill when a layer's potentials exceed one ping-pong bank.
#pragma once

#include <cstdint>

#include "sim/config.hpp"
#include "sim/program.hpp"
#include "sim/shard.hpp"
#include "snn/model.hpp"

namespace sia::core {

/// Serving-layer aliases for the sharding vocabulary (the plan types
/// live with the simulator that executes them).
using ShardPartition = sim::ShardPartition;
using ShardPlan = sim::ShardPlan;

/// Options for SiaCompiler::compile_sharded.
struct ShardOptions {
    ShardPartition partition = ShardPartition::kPipeline;
    /// Accelerators to partition across (>= 1). The planner may use
    /// fewer (ShardPlan::effective_shards) when the model cannot be cut
    /// that finely.
    std::int64_t shards = 2;
    /// Estimated spike density for the pipeline balance estimate — no
    /// runtime profile exists at compile time, so stage costs use this
    /// nominal event rate.
    double est_density = 0.05;
    /// Nominal timesteps for the balance estimate (the paper's T = 8).
    std::int64_t est_timesteps = 8;
};

class SiaCompiler {
public:
    explicit SiaCompiler(sim::SiaConfig config = {}) : config_(config) {}

    /// Compile; throws std::invalid_argument naming the offending layer
    /// (index + kind + label) if a layer cannot be scheduled at all.
    [[nodiscard]] sim::CompiledProgram compile(const snn::SnnModel& model) const;

    /// Partition `model` across options.shards accelerators. The
    /// returned plan embeds the full compile() program plus either the
    /// balanced stage cuts (kPipeline; only cuts where every downstream
    /// layer reads nothing older than the boundary layer are legal, so
    /// exactly one spike train crosses each boundary) or the per-layer
    /// contiguous channel slices with sliced LayerPlans (kChannel).
    /// Throws std::invalid_argument for shards < 1.
    [[nodiscard]] sim::ShardPlan compile_sharded(const snn::SnnModel& model,
                                                 const ShardOptions& options) const;

    [[nodiscard]] const sim::SiaConfig& config() const noexcept { return config_; }

private:
    sim::SiaConfig config_;
};

}  // namespace sia::core
