// BatchRunner: parallel batch inference over one compiled SnnModel.
//
// Serving-oriented counterpart to the single-input engines: the expensive
// per-model work (FunctionalEngine weight-layout transposition, SiaCompiler
// program generation, resident sim::Sia construction) is done once per
// runner and amortized across every input in the batch, while a fixed
// util::ThreadPool fans the per-input runs out over worker threads. The
// cycle-accurate path (run_sim) additionally schedules whole sub-batches
// onto per-worker *resident* accelerators (Sia::run_batch), so simulated
// BRAM weight residency amortizes too.
//
// Determinism contract: batched results are bit-identical to running the
// same inputs sequentially through a fresh engine, for every thread count.
// This holds because
//   * each input is an independent work item writing only its own result
//     slot, so the (nondeterministic) item->worker assignment is invisible;
//   * each worker owns a private FunctionalEngine whose run() fully resets
//     membranes, readout and spike counters between items;
//   * any stochastic path draws from per-item RNG streams (item_rng)
//     derived from the batch seed and the item index — never from a
//     shared or worker-keyed stream.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/compiler.hpp"
#include "sim/config.hpp"
#include "sim/program.hpp"
#include "sim/sia.hpp"
#include "snn/engine.hpp"
#include "snn/model.hpp"
#include "snn/spike.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace sia::core {

struct BatchOptions {
    /// Worker threads; 0 = hardware concurrency.
    std::size_t threads = 0;
    /// Base seed for the per-item RNG streams handed to stochastic
    /// encoding paths. Results depend on this seed but never on the
    /// thread count.
    std::uint64_t seed = util::kDefaultSeed;
    /// Execution knobs forwarded to every worker's FunctionalEngine
    /// (kernel dispatch mode, scatter density threshold). Dense and
    /// scatter paths are bit-identical, so this never affects results —
    /// only throughput.
    snn::EngineConfig engine = {};
};

/// How run_sim maps inputs onto simulated accelerator instances.
enum class SimSchedule {
    /// One fresh sim::Sia per input (the pre-residency behaviour; kept
    /// as the amortization baseline the bench compares against).
    kPerItem,
    /// One resident sim::Sia per worker; whole sub-batches go through
    /// Sia::run_batch so BRAM weight residency and the compiled program
    /// amortize across the sub-batch. Bit-identical to kPerItem.
    kResident,
};

/// Timing/throughput aggregates of one batch call.
struct BatchStats {
    std::size_t inputs = 0;
    std::size_t threads = 1;
    double wall_ms = 0.0;
    /// Engine/program construction time inside this call: functional
    /// engine builds, program compilation, and sim::Sia constructions.
    /// Summed across workers, so with many threads it can exceed its
    /// share of wall_ms; a warm runner reports ~0 here — the residency
    /// amortization made visible.
    double setup_ms = 0.0;
    /// Per-item execution time (encode + run), summed across workers and
    /// exclusive of setup_ms.
    double run_ms = 0.0;
    [[nodiscard]] double inputs_per_sec() const noexcept {
        return wall_ms > 0.0 ? 1e3 * static_cast<double>(inputs) / wall_ms : 0.0;
    }
};

class BatchRunner {
public:
    /// Keeps a reference to `model` (must outlive the runner) and spawns
    /// the pool. Validates the model; engines are built on first use.
    explicit BatchRunner(const snn::SnnModel& model, BatchOptions options = {});
    ~BatchRunner();

    BatchRunner(const BatchRunner&) = delete;
    BatchRunner& operator=(const BatchRunner&) = delete;

    /// Run the functional engine over every encoded input. Result order
    /// matches input order.
    [[nodiscard]] std::vector<snn::RunResult> run(
        const std::vector<snn::SpikeTrain>& inputs);

    /// Thermometer-encode each image on the worker, then run. Equivalent
    /// to encode_thermometer + run but keeps the encoded trains off the
    /// caller's heap.
    [[nodiscard]] std::vector<snn::RunResult> run_images(
        const std::vector<tensor::Tensor>& images, std::int64_t timesteps);

    /// Poisson-rate-encode each image from its item_rng stream, then run.
    /// Stochastic, but reproducible: results depend on the batch seed and
    /// item order only, never on the thread count.
    [[nodiscard]] std::vector<snn::RunResult> run_images_poisson(
        const std::vector<tensor::Tensor>& images, std::int64_t timesteps);

    /// Cycle-accurate batched run over one CompiledProgram (compiled
    /// lazily on first use and cached). With kResident (the default),
    /// contiguous sub-batches are scheduled onto per-worker resident
    /// sim::Sia instances via Sia::run_batch; with kPerItem every input
    /// gets a fresh instance. Both schedules produce bit-identical
    /// results — to each other, to sequential Sia::run calls, and (for
    /// spikes/logits) to run() by the engines' shared-numerics
    /// construction — for every thread count.
    [[nodiscard]] std::vector<sim::SiaRunResult> run_sim(
        const sim::SiaConfig& config, const std::vector<snn::SpikeTrain>& inputs,
        SimSchedule schedule = SimSchedule::kResident);

    /// Stats of the most recent run*/run_sim call. If that call threw,
    /// inputs/threads describe the failed batch and wall_ms is 0.
    [[nodiscard]] const BatchStats& last_stats() const noexcept { return stats_; }

    /// Residency accounting aggregated over every Sia::run_batch call of
    /// the most recent kResident run_sim (zero-valued after kPerItem or
    /// non-sim runs). `waves` sums across sub-batches.
    [[nodiscard]] const sim::SiaBatchStats& last_sim_batch_stats() const noexcept {
        return sim_batch_stats_;
    }

    [[nodiscard]] std::size_t threads() const noexcept { return pool_.size(); }
    [[nodiscard]] const snn::SnnModel& model() const noexcept { return model_; }

    /// The RNG stream item `index` draws from, regardless of which worker
    /// executes it (exposed so tests can assert stream independence).
    [[nodiscard]] util::Rng item_rng(std::size_t index) const;

private:
    /// The calling worker's private engine, constructed on its first item
    /// (so engine count scales with workers that actually execute work,
    /// not with pool size). Race-free: slot `worker` is only ever touched
    /// by pool worker `worker`.
    [[nodiscard]] snn::FunctionalEngine& engine(std::size_t worker);
    /// The calling worker's private resident simulator (same slot
    /// discipline as engine()). Requires program_ for `config` to be
    /// compiled already.
    [[nodiscard]] sim::Sia& resident_sia(std::size_t worker,
                                         const sim::SiaConfig& config);
    /// Compile (or reuse) the cached program for `config`; invalidates
    /// the resident simulators on recompilation.
    void ensure_program(const sim::SiaConfig& config);

    template <typename Result, typename PerItem>
    std::vector<Result> run_batch(std::size_t fan_out, std::size_t inputs,
                                  const PerItem& per_item);

    const snn::SnnModel& model_;
    BatchOptions options_;
    util::ThreadPool pool_;
    /// One private engine slot per worker, filled lazily, reused across
    /// batches.
    std::vector<std::unique_ptr<snn::FunctionalEngine>> engines_;
    /// One private resident sim::Sia slot per worker (kResident run_sim),
    /// filled lazily, reused across batches, rebuilt on config change.
    std::vector<std::unique_ptr<sim::Sia>> resident_sias_;
    /// Cached compiled program for run_sim (keyed by the config's
    /// identity; recompiled when a different config is passed).
    std::optional<sim::CompiledProgram> program_;
    std::optional<sim::SiaConfig> program_config_;
    BatchStats stats_;
    sim::SiaBatchStats sim_batch_stats_;
    /// Construction time accumulated by workers during the current batch
    /// (engine/Sia builds + program compile), drained into stats_.
    std::atomic<std::int64_t> setup_nanos_{0};
};

}  // namespace sia::core
