// BatchRunner: backend-generic parallel batch inference.
//
// The runner owns the fan-out protocol — a fixed util::ThreadPool, the
// work-unit chunking the backend asks for, and the timing/stats
// attribution — while a core::Backend owns all execution state (per-
// worker engines, resident simulators, compiled programs). One
// `run(requests)` entry point serves both of the paper's engines
// through the unified core::Request/core::Response types; core::Server
// layers a long-running admission-batched serving loop on top.
//
// Determinism contract: batched results are bit-identical to running the
// same requests sequentially through a fresh backend, for every thread
// count and span grouping. This holds because
//   * each request is an independent work item writing only its own
//     response slot, so the (nondeterministic) unit->worker assignment
//     is invisible;
//   * backends key per-worker state off the worker index only for
//     *placement*, never for results (each worker's engine fully resets
//     between items);
//   * any stochastic path draws from per-request RNG streams derived
//     from the batch seed and the request's stream index — never from a
//     shared or worker-keyed stream.
//
// The four bespoke pre-Request entry points (run(trains) / run_images /
// run_images_poisson / run_sim) were deprecated in the PR that
// introduced this API and are now removed; build Requests with the
// view_*/from_* factories and pick the backend at construction time
// (migration table in docs/ARCHITECTURE.md §6).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/backend.hpp"
#include "snn/engine.hpp"
#include "snn/model.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace sia::core {

struct BatchOptions {
    /// Worker threads; 0 = hardware concurrency.
    std::size_t threads = 0;
    /// Base seed for the per-request RNG streams handed to stochastic
    /// encoding paths. Results depend on this seed but never on the
    /// thread count.
    std::uint64_t seed = util::kDefaultSeed;
    /// Execution knobs for the internal FunctionalBackend built by the
    /// model-anchored constructor (kernel dispatch mode, scatter density
    /// threshold). Ignored when the runner is constructed over an
    /// explicit Backend — configure that backend directly instead.
    snn::EngineConfig engine = {};
};

/// Timing/throughput aggregates of one batch call.
struct BatchStats {
    std::size_t inputs = 0;
    std::size_t threads = 1;
    /// False when the batch threw: wall_ms/setup_ms/run_ms then cover
    /// the work actually performed up to the failure (the pool drains
    /// in-flight items before rethrowing), inputs/threads still
    /// describe the failed batch, and inputs_per_sec() reports 0 — a
    /// failed batch has no meaningful throughput.
    bool completed = false;
    double wall_ms = 0.0;
    /// Engine/program construction time inside this call: functional
    /// engine builds, program compilation, and sim::Sia constructions.
    /// Summed across workers, so with many threads it can exceed its
    /// share of wall_ms; a warm runner reports ~0 here — the residency
    /// amortization made visible.
    double setup_ms = 0.0;
    /// Per-request execution time (encode + run), summed across workers
    /// and exclusive of setup_ms.
    double run_ms = 0.0;
    [[nodiscard]] double inputs_per_sec() const noexcept {
        return completed && wall_ms > 0.0
                   ? 1e3 * static_cast<double>(inputs) / wall_ms
                   : 0.0;
    }
};

class BatchRunner {
public:
    /// Backend-generic form (the redesigned API): `run(requests)` fans
    /// out over `backend`, which owns every engine/simulator. The
    /// runner keeps the backend alive; one backend must not be shared
    /// by concurrently-running runners.
    BatchRunner(std::shared_ptr<Backend> backend, BatchOptions options = {});

    /// Model-anchored form: anchors the runner on `model` (must outlive
    /// the runner) and builds a FunctionalBackend internally on first
    /// use, configured from BatchOptions::engine.
    explicit BatchRunner(const snn::SnnModel& model, BatchOptions options = {});
    ~BatchRunner();

    BatchRunner(const BatchRunner&) = delete;
    BatchRunner& operator=(const BatchRunner&) = delete;

    /// The unified entry point: run every request through the runner's
    /// backend. Response order matches request order.
    [[nodiscard]] std::vector<Response> run(const std::vector<Request>& requests);

    /// Same, through an explicit backend (the runner contributes only
    /// the pool and stats protocol). Exposed so callers can multiplex
    /// several backends over one pool.
    [[nodiscard]] std::vector<Response> run(Backend& backend,
                                            const std::vector<Request>& requests);

    /// Span forms of the same entry points: run a contiguous slice
    /// without copying the requests. The serving layer's wave bisection
    /// uses these to re-run halves of a failed wave in place.
    [[nodiscard]] std::vector<Response> run(std::span<const Request> requests);
    [[nodiscard]] std::vector<Response> run(Backend& backend,
                                            std::span<const Request> requests);

    /// Stats of the most recent run call; see BatchStats::completed for
    /// the failed-batch semantics.
    [[nodiscard]] const BatchStats& last_stats() const noexcept { return stats_; }

    /// Residency accounting aggregated over every Sia::run_batch call of
    /// the most recent batch (zero-valued after per-item or functional
    /// runs). `waves` sums across sub-batches.
    [[nodiscard]] const sim::SiaBatchStats& last_sim_batch_stats() const noexcept {
        return sim_batch_stats_;
    }

    [[nodiscard]] std::size_t threads() const noexcept { return pool_.size(); }
    [[nodiscard]] const snn::SnnModel& model() const noexcept { return model_; }

    /// The RNG stream request `index` draws from by default, regardless
    /// of which worker executes it (exposed so tests can assert stream
    /// independence).
    [[nodiscard]] util::Rng item_rng(std::size_t index) const;

private:
    /// The internal FunctionalBackend (model-anchored construction),
    /// built on first use.
    [[nodiscard]] Backend& functional_backend();

    const snn::SnnModel& model_;
    BatchOptions options_;
    util::ThreadPool pool_;
    std::shared_ptr<Backend> backend_;     ///< primary (or lazy functional)
    BatchStats stats_;
    sim::SiaBatchStats sim_batch_stats_;
};

}  // namespace sia::core
