// Deployer: the hardware-software co-verification loop.
//
// Runs the same SnnModel through the functional reference engine and the
// cycle-accurate SIA simulator and checks that per-timestep logits and
// per-layer spike counts match bit-exactly. A converted model is only
// considered "deployed" when this check passes — the executable form of
// the paper's claim that software-trained models run on the hardware
// without accuracy loss beyond quantization.
#pragma once

#include <string>

#include "core/compiler.hpp"
#include "sim/sia.hpp"
#include "snn/engine.hpp"
#include "snn/model.hpp"

namespace sia::core {

struct DeployReport {
    bool bit_exact = false;
    std::string mismatch;           ///< empty when bit_exact
    snn::RunResult functional;
    sim::SiaRunResult hardware;
};

class Deployer {
public:
    explicit Deployer(sim::SiaConfig config = {}) : config_(config), compiler_(config) {}

    /// Compile, simulate, cross-check against the functional engine.
    [[nodiscard]] DeployReport deploy(const snn::SnnModel& model,
                                      const snn::SpikeTrain& input) const;

    [[nodiscard]] const sim::SiaConfig& config() const noexcept { return config_; }
    [[nodiscard]] const SiaCompiler& compiler() const noexcept { return compiler_; }

private:
    sim::SiaConfig config_;
    SiaCompiler compiler_;
};

}  // namespace sia::core
