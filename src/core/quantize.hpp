// Weight quantization (the "reduced precision" half of the paper's
// co-optimisation): symmetric per-tensor INT8 with a per-layer scale
// q_w. The scale is the learnable quantity of Fig. 1's stage 2; here it
// is fitted to the trained weights (abs-max / 127, optionally tightened
// by a percentile clip), and the quantization error metrics used by the
// precision-ablation bench are computed alongside.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sia::core {

struct QuantizedWeights {
    std::vector<std::int8_t> values;
    float scale = 1.0F;          ///< q_w
    float max_abs_error = 0.0F;  ///< real-unit worst-case rounding error
    float mse = 0.0F;            ///< mean squared quantization error
};

/// Quantize to signed `bits` (2..8) with symmetric range. `clip_pct`
/// in (0, 1]: scale covers that quantile of |w| (1.0 = abs-max).
[[nodiscard]] QuantizedWeights quantize_weights(std::span<const float> weights,
                                                int bits = 8, float clip_pct = 1.0F);

/// Dequantize for round-trip checks.
[[nodiscard]] std::vector<float> dequantize(const QuantizedWeights& q);

}  // namespace sia::core
