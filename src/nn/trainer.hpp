// Minibatch trainer: shuffled SGD with cosine learning-rate annealing,
// plus evaluation helpers. Operates on an in-memory dataset tensor
// (the reproduction's datasets are small enough to hold resident).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace sia::nn {

struct TrainConfig {
    std::size_t epochs = 10;
    std::int64_t batch_size = 32;
    SgdConfig sgd;
    float lr_min = 1e-4F;
    std::uint64_t seed = util::kDefaultSeed;
    bool verbose = false;
};

struct EvalResult {
    double accuracy = 0.0;  ///< top-1, in [0, 1]
    double loss = 0.0;
};

/// Copy rows `indices` of a dataset into a batch tensor + label vector.
struct Batch {
    tensor::Tensor images;
    std::vector<std::int64_t> labels;
};
[[nodiscard]] Batch gather_batch(const tensor::Tensor& images,
                                 const std::vector<std::int64_t>& labels,
                                 const std::vector<std::size_t>& order, std::size_t first,
                                 std::size_t count);

class Trainer {
public:
    Trainer(Model& model, TrainConfig config);

    /// Run `config.epochs` epochs over the given training set.
    void fit(const tensor::Tensor& images, const std::vector<std::int64_t>& labels);

    /// One epoch (exposed for finetuning loops); returns mean train loss.
    double run_epoch(const tensor::Tensor& images, const std::vector<std::int64_t>& labels);

    [[nodiscard]] std::size_t steps_taken() const noexcept { return step_; }

private:
    Model& model_;
    TrainConfig config_;
    Sgd optimizer_;
    util::Rng rng_;
    std::size_t step_ = 0;
    std::size_t total_steps_ = 0;
};

/// Batched evaluation (inference mode: running BN stats, no caching).
[[nodiscard]] EvalResult evaluate(Model& model, const tensor::Tensor& images,
                                  const std::vector<std::int64_t>& labels,
                                  std::int64_t batch_size = 64);

}  // namespace sia::nn
