// VGG-11 (CIFAR variant): 8 conv layers with BN + activation, stride-2
// convolutions in place of max pooling (the SIA hardware has no pooling
// unit — conv/FC + BN + spiking activation only; see DESIGN.md), a final
// 2x2 average pool and an FC 512x10 classifier head matching the paper's
// Table I.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/activation.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/model.hpp"
#include "nn/pool.hpp"

namespace sia::nn {

struct VggConfig {
    std::int64_t width = 64;  ///< first-stage channels; later stages 2w, 4w, 8w
    std::int64_t classes = 10;
    std::int64_t input_channels = 3;
    std::int64_t input_size = 32;
};

class Vgg11 final : public Model {
public:
    Vgg11(const VggConfig& config, util::Rng& rng);

    [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
    void backward(const tensor::Tensor& grad_logits) override;
    [[nodiscard]] std::vector<Param*> params() override;
    [[nodiscard]] std::vector<Activation*> activations() override;
    [[nodiscard]] NetworkIR ir() const override;
    [[nodiscard]] std::string name() const override { return "vgg11"; }

    [[nodiscard]] const VggConfig& config() const noexcept { return config_; }

private:
    struct ConvUnit {
        ConvUnit(tensor::ConvGeometry g, util::Rng& rng, const std::string& name)
            : conv(g, rng, name + ".conv"), bn(g.out_channels, name + ".bn"),
              act(name + ".act") {}
        Conv2d conv;
        BatchNorm2d bn;
        Activation act;
    };

    VggConfig config_;
    std::vector<std::unique_ptr<ConvUnit>> units_;  // 8 conv units
    AvgPool2d pool_;
    Linear fc_;
    tensor::Shape cached_pre_flatten_;
};

}  // namespace sia::nn
