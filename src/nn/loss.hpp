// Softmax cross-entropy loss with integrated backward.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace sia::nn {

struct LossResult {
    float loss = 0.0F;            ///< mean cross-entropy over the batch
    tensor::Tensor grad_logits;   ///< dL/dlogits, already divided by batch size
    std::int64_t correct = 0;     ///< top-1 correct predictions in the batch
};

/// Computes mean softmax cross-entropy of `logits` [N, K] against integer
/// `labels` (size N) and its gradient.
[[nodiscard]] LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                               const std::vector<std::int64_t>& labels);

/// Top-1 argmax predictions of a logits matrix [N, K].
[[nodiscard]] std::vector<std::int64_t> argmax_rows(const tensor::Tensor& logits);

}  // namespace sia::nn
