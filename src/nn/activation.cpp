#include "nn/activation.hpp"

#include <algorithm>
#include <cmath>

namespace sia::nn {

namespace {
/// Reservoir size for calibration samples; large enough for stable MSE
/// estimates, small enough to keep calibration cheap.
constexpr std::size_t kReservoirCap = 8192;
}  // namespace

Activation::Activation(std::string name) : name_(std::move(name)) {
    step_ = Param(tensor::Shape{1}, name_ + ".step");
    step_.decay = false;
    step_.value.flat(0) = 1.0F;
}

void Activation::enable_quant(int levels) {
    mode_ = ActMode::kQuantRelu;
    levels_ = levels;
    const float s = optimal_step(levels);
    if (s > 0.0F) step_.value.flat(0) = s;
    if (step_.value.flat(0) <= 0.0F) step_.value.flat(0) = 1.0F;
}

void Activation::disable_quant() {
    mode_ = ActMode::kRelu;
    levels_ = 0;
}

void Activation::begin_calibration() noexcept {
    calibrating_ = true;
    calib_max_ = 0.0F;
    calib_samples_.clear();
    calib_seen_ = 0;
}

void Activation::end_calibration() noexcept { calibrating_ = false; }

float Activation::optimal_step(int levels) const {
    if (calib_samples_.empty() || levels <= 0) return calib_max_;
    // Grid search over clip fractions of the observed max: for each
    // candidate s, MSE between ReLU(z) and the L-level quantizer output.
    const auto lf = static_cast<float>(levels);
    float best_s = calib_max_;
    double best_mse = -1.0;
    for (int pct = 5; pct <= 100; pct += 5) {
        const float s = calib_max_ * static_cast<float>(pct) / 100.0F;
        if (s <= 0.0F) continue;
        double mse = 0.0;
        for (const float z : calib_samples_) {
            const float u = std::floor(z * lf / s + 0.5F);
            const float q = (s / lf) * std::clamp(u, 0.0F, lf);
            const double e = static_cast<double>(q) - static_cast<double>(z);
            mse += e * e;
        }
        if (best_mse < 0.0 || mse < best_mse) {
            best_mse = mse;
            best_s = s;
        }
    }
    return best_s;
}

tensor::Tensor Activation::forward(const tensor::Tensor& z, bool training) {
    if (calibrating_) {
        const auto n = z.numel();
        for (std::int64_t i = 0; i < n; ++i) {
            const float v = z.flat(i);
            if (v <= 0.0F) continue;
            calib_max_ = std::max(calib_max_, v);
            ++calib_seen_;
            if (calib_samples_.size() < kReservoirCap) {
                calib_samples_.push_back(v);
            } else {
                // Deterministic reservoir: replace with decreasing density.
                const auto slot = static_cast<std::size_t>(
                    (static_cast<std::uint64_t>(calib_seen_) * 2654435761ULL) %
                    kReservoirCap);
                if (calib_seen_ % 7 == 0) calib_samples_[slot] = v;
            }
        }
    }
    if (training) cached_z_ = z;

    tensor::Tensor out(z.shape());
    const auto n = z.numel();
    if (mode_ == ActMode::kRelu) {
        for (std::int64_t i = 0; i < n; ++i) out.flat(i) = std::max(0.0F, z.flat(i));
        return out;
    }
    const float s = std::max(step_.value.flat(0), 1e-6F);
    const auto lf = static_cast<float>(levels_);
    for (std::int64_t i = 0; i < n; ++i) {
        const float u = std::floor(z.flat(i) * lf / s + 0.5F);
        out.flat(i) = (s / lf) * std::clamp(u, 0.0F, lf);
    }
    return out;
}

tensor::Tensor Activation::backward(const tensor::Tensor& grad_out) {
    tensor::Tensor grad_in(grad_out.shape());
    const auto n = grad_out.numel();
    if (mode_ == ActMode::kRelu) {
        for (std::int64_t i = 0; i < n; ++i) {
            grad_in.flat(i) = cached_z_.flat(i) > 0.0F ? grad_out.flat(i) : 0.0F;
        }
        return grad_in;
    }
    const float s = std::max(step_.value.flat(0), 1e-6F);
    double ds = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
        const float z = cached_z_.flat(i);
        if (z <= 0.0F) {
            grad_in.flat(i) = 0.0F;
        } else if (z >= s) {
            grad_in.flat(i) = 0.0F;
            ds += grad_out.flat(i);  // dh/ds = 1 in the saturated region
        } else {
            grad_in.flat(i) = grad_out.flat(i);
        }
    }
    step_.grad.flat(0) += static_cast<float>(ds);
    return grad_in;
}

}  // namespace sia::nn
