// Trainable parameter: value + gradient pair.
#pragma once

#include <string>
#include <utility>

#include "tensor/tensor.hpp"

namespace sia::nn {

/// A learnable tensor and its gradient accumulator. Modules own their
/// Params and expose raw pointers to the optimizer (which never outlives
/// the model in this codebase).
struct Param {
    Param() = default;
    explicit Param(tensor::Shape shape, std::string name = {})
        : value(shape), grad(shape), name(std::move(name)) {}

    void zero_grad() noexcept { grad.fill(0.0F); }

    tensor::Tensor value;
    tensor::Tensor grad;
    std::string name;
    /// Parameters with decay=false (BN affine, quantizer steps) are
    /// excluded from weight decay by the optimizer.
    bool decay = true;
};

}  // namespace sia::nn
