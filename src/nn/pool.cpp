#include "nn/pool.hpp"

namespace sia::nn {

tensor::Tensor AvgPool2d::forward(const tensor::Tensor& x, bool training) {
    if (training) cached_in_shape_ = x.shape();
    tensor::Tensor out(
        tensor::Shape{x.dim(0), x.dim(1), x.dim(2) / kernel_, x.dim(3) / kernel_});
    tensor::avgpool2d_forward(x, kernel_, out);
    return out;
}

tensor::Tensor AvgPool2d::backward(const tensor::Tensor& grad_out) {
    tensor::Tensor grad_in(cached_in_shape_);
    tensor::avgpool2d_backward(grad_out, kernel_, grad_in);
    return grad_in;
}

tensor::Tensor MaxPool2d::forward(const tensor::Tensor& x, bool training) {
    if (training) cached_in_shape_ = x.shape();
    tensor::Tensor out(
        tensor::Shape{x.dim(0), x.dim(1), x.dim(2) / kernel_, x.dim(3) / kernel_});
    tensor::maxpool2d_forward(x, kernel_, out, argmax_);
    return out;
}

tensor::Tensor MaxPool2d::backward(const tensor::Tensor& grad_out) {
    tensor::Tensor grad_in(cached_in_shape_);
    tensor::maxpool2d_backward(grad_out, argmax_, grad_in);
    return grad_in;
}

}  // namespace sia::nn
