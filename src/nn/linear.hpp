// Fully-connected layer (the classifier head of both models).
#pragma once

#include <string>

#include "nn/param.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace sia::nn {

class Linear {
public:
    Linear(std::int64_t in_features, std::int64_t out_features, util::Rng& rng,
           std::string name = "fc");

    [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& x, bool training);
    [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_out);

    [[nodiscard]] std::int64_t in_features() const noexcept { return in_features_; }
    [[nodiscard]] std::int64_t out_features() const noexcept { return out_features_; }
    [[nodiscard]] Param& weight() noexcept { return weight_; }
    [[nodiscard]] Param& bias() noexcept { return bias_; }
    [[nodiscard]] const Param& weight() const noexcept { return weight_; }
    [[nodiscard]] const Param& bias() const noexcept { return bias_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

private:
    std::int64_t in_features_;
    std::int64_t out_features_;
    Param weight_;  // [F, D]
    Param bias_;    // [F]
    std::string name_;
    tensor::Tensor cached_input_;
};

}  // namespace sia::nn
