#include "nn/vgg.hpp"

#include <algorithm>

namespace sia::nn {

Vgg11::Vgg11(const VggConfig& config, util::Rng& rng)
    : config_(config),
      pool_(std::max<std::int64_t>(1, config.input_size / 16)),
      fc_(config.width * 8, config.classes, rng, "fc") {
    const std::int64_t w = config.width;
    // {out_channels, stride}: stride-2 entries replace VGG-11's max pools.
    struct Spec {
        std::int64_t ch;
        std::int64_t stride;
    };
    const Spec specs[8] = {{w, 1},     {2 * w, 2}, {4 * w, 2}, {4 * w, 1},
                           {8 * w, 2}, {8 * w, 1}, {8 * w, 2}, {8 * w, 1}};
    std::int64_t in_ch = config.input_channels;
    for (int i = 0; i < 8; ++i) {
        const std::string name = "conv" + std::to_string(i + 1);
        units_.push_back(std::make_unique<ConvUnit>(
            tensor::ConvGeometry{in_ch, specs[i].ch, 3, specs[i].stride, 1}, rng, name));
        in_ch = specs[i].ch;
    }
}

tensor::Tensor Vgg11::forward(const tensor::Tensor& x, bool training) {
    tensor::Tensor h = x;
    for (auto& u : units_) {
        h = u->act.forward(u->bn.forward(u->conv.forward(h, training), training), training);
    }
    h = pool_.forward(h, training);
    cached_pre_flatten_ = h.shape();
    const tensor::Tensor flat =
        h.reshaped(tensor::Shape{h.dim(0), h.dim(1) * h.dim(2) * h.dim(3)});
    return fc_.forward(flat, training);
}

void Vgg11::backward(const tensor::Tensor& grad_logits) {
    tensor::Tensor g = fc_.backward(grad_logits);
    g = g.reshaped(cached_pre_flatten_);
    g = pool_.backward(g);
    for (auto it = units_.rbegin(); it != units_.rend(); ++it) {
        auto& u = **it;
        g = u.conv.backward(u.bn.backward(u.act.backward(g)));
    }
}

std::vector<Param*> Vgg11::params() {
    std::vector<Param*> out;
    for (auto& u : units_) {
        out.push_back(&u->conv.weight());
        out.push_back(&u->bn.gamma());
        out.push_back(&u->bn.beta());
        out.push_back(&u->act.step_param());
    }
    out.push_back(&fc_.weight());
    out.push_back(&fc_.bias());
    return out;
}

std::vector<Activation*> Vgg11::activations() {
    std::vector<Activation*> out;
    for (auto& u : units_) out.push_back(&u->act);
    return out;
}

NetworkIR Vgg11::ir() const {
    NetworkIR net;
    net.model_name = name();
    net.input_channels = config_.input_channels;
    net.input_h = config_.input_size;
    net.input_w = config_.input_size;

    IrNode input;
    input.op = IrOp::kInput;
    input.label = "input";
    input.out_channels = config_.input_channels;
    input.out_h = config_.input_size;
    input.out_w = config_.input_size;
    net.nodes.push_back(input);

    std::int64_t h = config_.input_size;
    int prev = 0;
    for (const auto& u : units_) {
        IrNode node;
        node.op = IrOp::kConv;
        node.label = u->conv.name();
        node.input = prev;
        node.conv = &u->conv;
        node.bn = &u->bn;
        node.act = &u->act;
        node.out_channels = u->conv.geometry().out_channels;
        h = u->conv.geometry().out_size(h);
        node.out_h = h;
        node.out_w = h;
        net.nodes.push_back(node);
        prev = static_cast<int>(net.nodes.size()) - 1;
    }

    IrNode pool;
    pool.op = IrOp::kAvgPool;
    pool.label = "avgpool";
    pool.input = prev;
    pool.pool_kernel = pool_.kernel();
    pool.out_channels = net.nodes.back().out_channels;
    pool.out_h = net.nodes.back().out_h / pool_.kernel();
    pool.out_w = net.nodes.back().out_w / pool_.kernel();
    net.nodes.push_back(pool);

    IrNode fc;
    fc.op = IrOp::kLinear;
    fc.label = "fc";
    fc.input = static_cast<int>(net.nodes.size()) - 1;
    fc.fc = &fc_;
    fc.act = nullptr;
    fc.out_channels = config_.classes;
    fc.out_h = 1;
    fc.out_w = 1;
    net.nodes.push_back(fc);
    return net;
}

}  // namespace sia::nn
