// Activation unit used at every spiking site of the models.
//
// Three modes, mirroring the paper's Fig. 1 pipeline:
//   kRelu      — plain ReLU (stage 1, FP32 ANN training);
//   kQuantRelu — L-level quantized ReLU with a learnable step size s
//                (stage 2): h(z) = (s/L) * clip(floor(z*L/s + 0.5), 0, L).
//                Gradients use the straight-through estimator:
//                dh/dz = 1{0 < z < s},  dh/ds = 1{z >= s}  (PACT-style).
// The learnt step s becomes the IF threshold of the converted SNN layer
// (stage 3), handled by core::AnnToSnnConverter.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/param.hpp"
#include "tensor/tensor.hpp"

namespace sia::nn {

enum class ActMode { kRelu, kQuantRelu };

class Activation {
public:
    explicit Activation(std::string name = "act");

    /// Switch to quantized mode with L levels. The step is initialised
    /// from the running max observed during calibration (see below), or
    /// kept if already set.
    void enable_quant(int levels);
    /// Back to plain ReLU (used by ablations).
    void disable_quant();

    [[nodiscard]] ActMode mode() const noexcept { return mode_; }
    [[nodiscard]] int levels() const noexcept { return levels_; }

    /// Learnable step size (threshold after conversion).
    [[nodiscard]] float step() const noexcept { return step_.value.flat(0); }
    void set_step(float s) noexcept { step_.value.flat(0) = s; }
    [[nodiscard]] Param& step_param() noexcept { return step_; }

    /// While calibrating, forward() records the maximum pre-activation
    /// seen plus a subsampled reservoir of positive pre-activations;
    /// enable_quant() then initialises the step to the value minimising
    /// the L-level quantization MSE over the reservoir (a max-calibrated
    /// step makes spike rates so low that converted SNNs need many
    /// timesteps — see DESIGN.md "step calibration").
    void begin_calibration() noexcept;
    void end_calibration() noexcept;
    [[nodiscard]] float calibrated_max() const noexcept { return calib_max_; }

    /// MSE-optimal step for `levels` given the calibration reservoir;
    /// falls back to the max when no samples were recorded.
    [[nodiscard]] float optimal_step(int levels) const;

    /// Forward; caches the pre-activation for backward when `training`.
    [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& z, bool training);

    /// Backward through the cached pre-activation; accumulates dL/ds.
    [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_out);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

private:
    std::string name_;
    ActMode mode_ = ActMode::kRelu;
    int levels_ = 0;
    Param step_;
    bool calibrating_ = false;
    float calib_max_ = 0.0F;
    std::vector<float> calib_samples_;  ///< reservoir of positive pre-activations
    std::int64_t calib_seen_ = 0;
    tensor::Tensor cached_z_;
};

}  // namespace sia::nn
