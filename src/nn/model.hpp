// Abstract model interface shared by ResNet-18 and VGG-11 so the trainer,
// quantization pipeline and converter are model-agnostic.
#pragma once

#include <string>
#include <vector>

#include "nn/activation.hpp"
#include "nn/ir.hpp"
#include "nn/param.hpp"
#include "tensor/tensor.hpp"

namespace sia::nn {

class Model {
public:
    virtual ~Model() = default;

    /// Forward pass; logits [N, classes]. `training` enables caching for
    /// backward and batch-stat updates in BN.
    [[nodiscard]] virtual tensor::Tensor forward(const tensor::Tensor& x, bool training) = 0;

    /// Backward from dL/dlogits; accumulates parameter gradients.
    virtual void backward(const tensor::Tensor& grad_logits) = 0;

    /// All trainable parameters (weights, BN affine, quantizer steps).
    [[nodiscard]] virtual std::vector<Param*> params() = 0;

    /// All activation units in forward order (spiking sites).
    [[nodiscard]] virtual std::vector<Activation*> activations() = 0;

    /// Topology description for conversion/compilation.
    [[nodiscard]] virtual NetworkIR ir() const = 0;

    [[nodiscard]] virtual std::string name() const = 0;

    /// Switch every activation to L-level quantized ReLU (pipeline stage 2).
    void enable_quantized_activations(int levels) {
        for (Activation* a : activations()) a->enable_quant(levels);
    }

    /// Record pre-activation maxima over the next forward passes to
    /// initialise quantizer steps.
    void begin_activation_calibration() {
        for (Activation* a : activations()) a->begin_calibration();
    }
    void end_activation_calibration() {
        for (Activation* a : activations()) a->end_calibration();
    }

protected:
    Model() = default;
    Model(const Model&) = default;
    Model& operator=(const Model&) = default;
};

}  // namespace sia::nn
