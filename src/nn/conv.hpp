// 2-D convolution module (no bias — all convolutions in the models are
// followed by batch norm, which subsumes the bias, exactly as in the
// paper's hardware where bias lives in the aggregation core's H term).
#pragma once

#include <string>

#include "nn/param.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace sia::nn {

class Conv2d {
public:
    Conv2d(tensor::ConvGeometry geometry, util::Rng& rng, std::string name = "conv");

    /// Forward; caches the input for backward when `training`.
    [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& x, bool training);

    /// Backward; accumulates weight gradients, returns grad wrt input.
    [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_out);

    [[nodiscard]] const tensor::ConvGeometry& geometry() const noexcept { return geometry_; }
    [[nodiscard]] Param& weight() noexcept { return weight_; }
    [[nodiscard]] const Param& weight() const noexcept { return weight_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

private:
    tensor::ConvGeometry geometry_;
    Param weight_;  // [OC, IC, k, k]
    std::string name_;
    tensor::Tensor cached_input_;
};

}  // namespace sia::nn
