// Network intermediate representation.
//
// Trained models emit a NetworkIR describing their topology at the
// granularity the SIA hardware sees: spiking convolution / FC nodes with
// their batch-norm, activation (IF threshold source), and residual
// routing. core::AnnToSnnConverter consumes this IR to produce the
// integer SnnModel, and core::SiaCompiler consumes the SnnModel to
// produce a hardware schedule.
//
// Pointers reference modules owned by the model; the IR is only valid
// while the model is alive (enforced by use: conversion happens
// immediately after training within one scope).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "nn/activation.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"

namespace sia::nn {

enum class IrOp {
    kInput,    ///< the image / spike-encoded input
    kConv,     ///< conv (+BN) (+optional residual add) (+IF activation)
    kAvgPool,  ///< average pool (folded into the following FC by the compiler)
    kLinear,   ///< fully connected (+optional IF activation; none = readout)
};

struct IrNode {
    IrOp op = IrOp::kInput;
    std::string label;

    /// Index of the node providing this node's input; -1 for kInput.
    int input = -1;

    // kConv fields.
    const Conv2d* conv = nullptr;
    const BatchNorm2d* bn = nullptr;

    // kLinear fields.
    const Linear* fc = nullptr;

    /// Activation at this node's output. nullptr means no spiking
    /// activation (the readout layer accumulates membrane potential).
    const Activation* act = nullptr;

    // Residual routing (kConv only): output of node `skip_src` is added
    // to this node's pre-activation. If skip_conv is null the skip is an
    // identity connection; otherwise it is a 1x1 conv (+BN) downsample.
    int skip_src = -1;
    const Conv2d* skip_conv = nullptr;
    const BatchNorm2d* skip_bn = nullptr;

    // kAvgPool field.
    std::int64_t pool_kernel = 0;

    // Spatial geometry of this node's *output* (filled by the model).
    std::int64_t out_channels = 0;
    std::int64_t out_h = 0;
    std::int64_t out_w = 0;
};

struct NetworkIR {
    std::vector<IrNode> nodes;
    std::int64_t input_channels = 0;
    std::int64_t input_h = 0;
    std::int64_t input_w = 0;
    std::string model_name;

    /// Number of spiking (activation-bearing) nodes — the layer count of
    /// Fig. 6 / Fig. 8.
    [[nodiscard]] std::size_t spiking_layer_count() const {
        std::size_t n = 0;
        for (const auto& node : nodes) {
            if (node.act != nullptr) ++n;
        }
        return n;
    }
};

}  // namespace sia::nn
