// SGD with momentum, weight decay and a cosine or step learning-rate
// schedule — the standard recipe for CIFAR-scale training, and what the
// paper's referenced conversion frameworks use.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/param.hpp"

namespace sia::nn {

struct SgdConfig {
    float lr = 0.05F;
    float momentum = 0.9F;
    float weight_decay = 5e-4F;
    bool nesterov = false;
};

class Sgd {
public:
    Sgd(std::vector<Param*> params, SgdConfig config);

    /// Apply one update using the accumulated gradients, then zero them.
    void step();

    void set_lr(float lr) noexcept { config_.lr = lr; }
    [[nodiscard]] float lr() const noexcept { return config_.lr; }

    void zero_grad();

private:
    std::vector<Param*> params_;
    std::vector<tensor::Tensor> velocity_;
    SgdConfig config_;
};

/// Cosine-annealed learning rate: lr(t) = lr_min + (lr0-lr_min)/2 *
/// (1 + cos(pi * t / t_max)).
[[nodiscard]] float cosine_lr(float lr0, float lr_min, std::size_t step, std::size_t total);

}  // namespace sia::nn
