#include "nn/optimizer.hpp"

#include <cmath>
#include <numbers>

namespace sia::nn {

Sgd::Sgd(std::vector<Param*> params, SgdConfig config)
    : params_(std::move(params)), config_(config) {
    velocity_.reserve(params_.size());
    for (const Param* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
    for (std::size_t i = 0; i < params_.size(); ++i) {
        Param& p = *params_[i];
        tensor::Tensor& v = velocity_[i];
        const float wd = p.decay ? config_.weight_decay : 0.0F;
        const auto n = p.value.numel();
        for (std::int64_t j = 0; j < n; ++j) {
            const float g = p.grad.flat(j) + wd * p.value.flat(j);
            v.flat(j) = config_.momentum * v.flat(j) + g;
            const float upd = config_.nesterov ? g + config_.momentum * v.flat(j) : v.flat(j);
            p.value.flat(j) -= config_.lr * upd;
        }
        p.zero_grad();
    }
}

void Sgd::zero_grad() {
    for (Param* p : params_) p->zero_grad();
}

float cosine_lr(float lr0, float lr_min, std::size_t step, std::size_t total) {
    if (total == 0) return lr0;
    const double t = static_cast<double>(step) / static_cast<double>(total);
    return static_cast<float>(
        lr_min + 0.5 * (lr0 - lr_min) * (1.0 + std::cos(std::numbers::pi * t)));
}

}  // namespace sia::nn
