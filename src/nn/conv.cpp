#include "nn/conv.hpp"

#include <cmath>

namespace sia::nn {

Conv2d::Conv2d(tensor::ConvGeometry geometry, util::Rng& rng, std::string name)
    : geometry_(geometry),
      weight_(tensor::Shape{geometry.out_channels, geometry.in_channels, geometry.kernel,
                            geometry.kernel},
              name + ".weight"),
      name_(std::move(name)) {
    // He initialisation for ReLU-family activations.
    const auto fan_in =
        static_cast<float>(geometry.in_channels * geometry.kernel * geometry.kernel);
    weight_.value.randn_(rng, std::sqrt(2.0F / fan_in));
}

tensor::Tensor Conv2d::forward(const tensor::Tensor& x, bool training) {
    if (training) cached_input_ = x;
    const auto oh = geometry_.out_size(x.dim(2));
    const auto ow = geometry_.out_size(x.dim(3));
    tensor::Tensor out(tensor::Shape{x.dim(0), geometry_.out_channels, oh, ow});
    tensor::conv2d_forward(x, weight_.value, tensor::Tensor{}, geometry_, out);
    return out;
}

tensor::Tensor Conv2d::backward(const tensor::Tensor& grad_out) {
    tensor::Tensor grad_in(cached_input_.shape());
    tensor::Tensor grad_w(weight_.value.shape());
    tensor::Tensor no_bias;
    tensor::conv2d_backward(cached_input_, weight_.value, grad_out, geometry_, grad_in,
                            grad_w, no_bias);
    weight_.grad.add_(grad_w);
    return grad_in;
}

}  // namespace sia::nn
