// CIFAR-style ResNet-18: 3x3 stem + 4 stages x 2 BasicBlocks + avgpool +
// FC, matching the paper's Table I layer inventory (5 convs @64/32x32,
// 4 @128/16x16, 4 @256/8x8, 4 @512/4x4, FC 512x10 at width 64).
//
// `width` scales every channel count (width=64 is the paper's network;
// benches default to a smaller width so single-core CPU training stays
// in minutes — see DESIGN.md substitutions).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nn/activation.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/model.hpp"
#include "nn/pool.hpp"

namespace sia::nn {

/// Two 3x3 convs with BN + activation, plus identity or 1x1-downsample
/// skip added before the second activation — the residual-add point that
/// the SIA hardware services from the 128 kB residual partial-sum memory.
class BasicBlock {
public:
    BasicBlock(std::int64_t in_ch, std::int64_t out_ch, std::int64_t stride, util::Rng& rng,
               const std::string& name);

    [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& x, bool training);
    [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_out);

    void collect_params(std::vector<Param*>& out);
    void collect_activations(std::vector<Activation*>& out);

    [[nodiscard]] bool has_downsample() const noexcept { return down_conv_ != nullptr; }

    // IR access.
    [[nodiscard]] const Conv2d& conv1() const noexcept { return conv1_; }
    [[nodiscard]] const Conv2d& conv2() const noexcept { return conv2_; }
    [[nodiscard]] const BatchNorm2d& bn1() const noexcept { return bn1_; }
    [[nodiscard]] const BatchNorm2d& bn2() const noexcept { return bn2_; }
    [[nodiscard]] const Activation& act1() const noexcept { return act1_; }
    [[nodiscard]] const Activation& act2() const noexcept { return act2_; }
    [[nodiscard]] const Conv2d* down_conv() const noexcept { return down_conv_.get(); }
    [[nodiscard]] const BatchNorm2d* down_bn() const noexcept { return down_bn_.get(); }

private:
    Conv2d conv1_;
    BatchNorm2d bn1_;
    Activation act1_;
    Conv2d conv2_;
    BatchNorm2d bn2_;
    Activation act2_;
    std::unique_ptr<Conv2d> down_conv_;
    std::unique_ptr<BatchNorm2d> down_bn_;
    tensor::Tensor cached_x_;  // needed when skip is identity
};

struct ResNetConfig {
    std::int64_t width = 64;       ///< stem channels; stages use w, 2w, 4w, 8w
    std::int64_t classes = 10;
    std::int64_t input_channels = 3;
    std::int64_t input_size = 32;  ///< square input
};

class ResNet18 final : public Model {
public:
    ResNet18(const ResNetConfig& config, util::Rng& rng);

    [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
    void backward(const tensor::Tensor& grad_logits) override;
    [[nodiscard]] std::vector<Param*> params() override;
    [[nodiscard]] std::vector<Activation*> activations() override;
    [[nodiscard]] NetworkIR ir() const override;
    [[nodiscard]] std::string name() const override { return "resnet18"; }

    [[nodiscard]] const ResNetConfig& config() const noexcept { return config_; }

private:
    ResNetConfig config_;
    Conv2d stem_conv_;
    BatchNorm2d stem_bn_;
    Activation stem_act_;
    std::vector<std::unique_ptr<BasicBlock>> blocks_;  // 8 blocks, 4 stages x 2
    AvgPool2d pool_;
    Linear fc_;
    tensor::Shape cached_pre_flatten_;
};

}  // namespace sia::nn
