#include "nn/trainer.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace sia::nn {

Batch gather_batch(const tensor::Tensor& images, const std::vector<std::int64_t>& labels,
                   const std::vector<std::size_t>& order, std::size_t first,
                   std::size_t count) {
    const std::int64_t c = images.dim(1);
    const std::int64_t h = images.dim(2);
    const std::int64_t w = images.dim(3);
    const std::int64_t plane = c * h * w;
    Batch batch{tensor::Tensor(tensor::Shape{static_cast<std::int64_t>(count), c, h, w}), {}};
    batch.labels.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t src = order[first + i];
        std::copy(images.raw() + static_cast<std::int64_t>(src) * plane,
                  images.raw() + static_cast<std::int64_t>(src + 1) * plane,
                  batch.images.raw() + static_cast<std::int64_t>(i) * plane);
        batch.labels.push_back(labels[src]);
    }
    return batch;
}

Trainer::Trainer(Model& model, TrainConfig config)
    : model_(model),
      config_(config),
      optimizer_(model.params(), config.sgd),
      rng_(config.seed) {}

void Trainer::fit(const tensor::Tensor& images, const std::vector<std::int64_t>& labels) {
    const auto n = static_cast<std::size_t>(images.dim(0));
    const auto batches_per_epoch =
        (n + static_cast<std::size_t>(config_.batch_size) - 1) /
        static_cast<std::size_t>(config_.batch_size);
    total_steps_ = config_.epochs * batches_per_epoch;
    for (std::size_t e = 0; e < config_.epochs; ++e) {
        const double loss = run_epoch(images, labels);
        if (config_.verbose) {
            util::log_info("epoch ", e + 1, "/", config_.epochs, " train_loss=", loss,
                           " lr=", optimizer_.lr());
        }
    }
}

double Trainer::run_epoch(const tensor::Tensor& images,
                          const std::vector<std::int64_t>& labels) {
    const auto n = static_cast<std::size_t>(images.dim(0));
    const auto order = rng_.permutation(n);
    double loss_sum = 0.0;
    std::size_t batches = 0;
    if (total_steps_ == 0) {
        // run_epoch called directly (finetuning): schedule over this epoch.
        total_steps_ = (n + static_cast<std::size_t>(config_.batch_size) - 1) /
                       static_cast<std::size_t>(config_.batch_size);
    }
    for (std::size_t first = 0; first < n; first += static_cast<std::size_t>(config_.batch_size)) {
        const std::size_t count =
            std::min(static_cast<std::size_t>(config_.batch_size), n - first);
        const Batch batch = gather_batch(images, labels, order, first, count);
        optimizer_.set_lr(cosine_lr(config_.sgd.lr, config_.lr_min, step_, total_steps_));
        const tensor::Tensor logits = model_.forward(batch.images, /*training=*/true);
        const LossResult loss = softmax_cross_entropy(logits, batch.labels);
        model_.backward(loss.grad_logits);
        optimizer_.step();
        loss_sum += loss.loss;
        ++batches;
        ++step_;
    }
    return batches > 0 ? loss_sum / static_cast<double>(batches) : 0.0;
}

EvalResult evaluate(Model& model, const tensor::Tensor& images,
                    const std::vector<std::int64_t>& labels, std::int64_t batch_size) {
    const auto n = static_cast<std::size_t>(images.dim(0));
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    double loss_sum = 0.0;
    std::int64_t correct = 0;
    std::size_t batches = 0;
    for (std::size_t first = 0; first < n; first += static_cast<std::size_t>(batch_size)) {
        const std::size_t count = std::min(static_cast<std::size_t>(batch_size), n - first);
        const Batch batch = gather_batch(images, labels, order, first, count);
        const tensor::Tensor logits = model.forward(batch.images, /*training=*/false);
        const LossResult loss = softmax_cross_entropy(logits, batch.labels);
        loss_sum += loss.loss;
        correct += loss.correct;
        ++batches;
    }
    EvalResult res;
    res.accuracy = n > 0 ? static_cast<double>(correct) / static_cast<double>(n) : 0.0;
    res.loss = batches > 0 ? loss_sum / static_cast<double>(batches) : 0.0;
    return res;
}

}  // namespace sia::nn
