#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sia::nn {

LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 const std::vector<std::int64_t>& labels) {
    const std::int64_t n = logits.dim(0);
    const std::int64_t k = logits.dim(1);
    if (static_cast<std::int64_t>(labels.size()) != n) {
        throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
    }
    LossResult res;
    res.grad_logits = tensor::Tensor(logits.shape());
    double total = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
        const float* row = logits.raw() + i * k;
        float mx = row[0];
        for (std::int64_t j = 1; j < k; ++j) mx = std::max(mx, row[j]);
        double denom = 0.0;
        for (std::int64_t j = 0; j < k; ++j) denom += std::exp(static_cast<double>(row[j] - mx));
        const auto label = labels[static_cast<std::size_t>(i)];
        const double logp =
            static_cast<double>(row[label] - mx) - std::log(denom);
        total -= logp;

        std::int64_t best = 0;
        for (std::int64_t j = 1; j < k; ++j) {
            if (row[j] > row[best]) best = j;
        }
        if (best == label) ++res.correct;

        float* g = res.grad_logits.raw() + i * k;
        for (std::int64_t j = 0; j < k; ++j) {
            const double p = std::exp(static_cast<double>(row[j] - mx)) / denom;
            g[j] = static_cast<float>((p - (j == label ? 1.0 : 0.0)) /
                                      static_cast<double>(n));
        }
    }
    res.loss = static_cast<float>(total / static_cast<double>(n));
    return res;
}

std::vector<std::int64_t> argmax_rows(const tensor::Tensor& logits) {
    const std::int64_t n = logits.dim(0);
    const std::int64_t k = logits.dim(1);
    std::vector<std::int64_t> out(static_cast<std::size_t>(n), 0);
    for (std::int64_t i = 0; i < n; ++i) {
        const float* row = logits.raw() + i * k;
        std::int64_t best = 0;
        for (std::int64_t j = 1; j < k; ++j) {
            if (row[j] > row[best]) best = j;
        }
        out[static_cast<std::size_t>(i)] = best;
    }
    return out;
}

}  // namespace sia::nn
