#include "nn/resnet.hpp"

namespace sia::nn {

namespace {
tensor::ConvGeometry conv3x3(std::int64_t in_ch, std::int64_t out_ch, std::int64_t stride) {
    return tensor::ConvGeometry{in_ch, out_ch, 3, stride, 1};
}
tensor::ConvGeometry conv1x1(std::int64_t in_ch, std::int64_t out_ch, std::int64_t stride) {
    return tensor::ConvGeometry{in_ch, out_ch, 1, stride, 0};
}
}  // namespace

BasicBlock::BasicBlock(std::int64_t in_ch, std::int64_t out_ch, std::int64_t stride,
                       util::Rng& rng, const std::string& name)
    : conv1_(conv3x3(in_ch, out_ch, stride), rng, name + ".conv1"),
      bn1_(out_ch, name + ".bn1"),
      act1_(name + ".act1"),
      conv2_(conv3x3(out_ch, out_ch, 1), rng, name + ".conv2"),
      bn2_(out_ch, name + ".bn2"),
      act2_(name + ".act2") {
    if (stride != 1 || in_ch != out_ch) {
        down_conv_ = std::make_unique<Conv2d>(conv1x1(in_ch, out_ch, stride), rng,
                                              name + ".down_conv");
        down_bn_ = std::make_unique<BatchNorm2d>(out_ch, name + ".down_bn");
    }
}

tensor::Tensor BasicBlock::forward(const tensor::Tensor& x, bool training) {
    if (training) cached_x_ = x;
    tensor::Tensor out = act1_.forward(
        bn1_.forward(conv1_.forward(x, training), training), training);
    tensor::Tensor z = bn2_.forward(conv2_.forward(out, training), training);
    if (down_conv_ != nullptr) {
        z.add_(down_bn_->forward(down_conv_->forward(x, training), training));
    } else {
        z.add_(x);
    }
    return act2_.forward(z, training);
}

tensor::Tensor BasicBlock::backward(const tensor::Tensor& grad_out) {
    tensor::Tensor g = act2_.backward(grad_out);  // dL/d(z2 + skip)
    // Main path.
    tensor::Tensor g_main = conv2_.backward(bn2_.backward(g));
    g_main = conv1_.backward(bn1_.backward(act1_.backward(g_main)));
    // Skip path.
    if (down_conv_ != nullptr) {
        tensor::Tensor g_skip = down_conv_->backward(down_bn_->backward(g));
        g_main.add_(g_skip);
    } else {
        g_main.add_(g);
    }
    return g_main;
}

void BasicBlock::collect_params(std::vector<Param*>& out) {
    out.push_back(&conv1_.weight());
    out.push_back(&bn1_.gamma());
    out.push_back(&bn1_.beta());
    out.push_back(&act1_.step_param());
    out.push_back(&conv2_.weight());
    out.push_back(&bn2_.gamma());
    out.push_back(&bn2_.beta());
    out.push_back(&act2_.step_param());
    if (down_conv_ != nullptr) {
        out.push_back(&down_conv_->weight());
        out.push_back(&down_bn_->gamma());
        out.push_back(&down_bn_->beta());
    }
}

void BasicBlock::collect_activations(std::vector<Activation*>& out) {
    out.push_back(&act1_);
    out.push_back(&act2_);
}

ResNet18::ResNet18(const ResNetConfig& config, util::Rng& rng)
    : config_(config),
      stem_conv_(conv3x3(config.input_channels, config.width, 1), rng, "stem.conv"),
      stem_bn_(config.width, "stem.bn"),
      stem_act_("stem.act"),
      pool_(config.input_size / 8),
      fc_(config.width * 8, config.classes, rng, "fc") {
    const std::int64_t w = config.width;
    struct StageSpec {
        std::int64_t channels;
        std::int64_t stride;
    };
    const StageSpec stages[4] = {{w, 1}, {2 * w, 2}, {4 * w, 2}, {8 * w, 2}};
    std::int64_t in_ch = w;
    for (int s = 0; s < 4; ++s) {
        for (int b = 0; b < 2; ++b) {
            const std::int64_t stride = (b == 0) ? stages[s].stride : 1;
            const std::string name =
                "layer" + std::to_string(s + 1) + "." + std::to_string(b);
            blocks_.push_back(std::make_unique<BasicBlock>(in_ch, stages[s].channels,
                                                           stride, rng, name));
            in_ch = stages[s].channels;
        }
    }
}

tensor::Tensor ResNet18::forward(const tensor::Tensor& x, bool training) {
    tensor::Tensor h = stem_act_.forward(
        stem_bn_.forward(stem_conv_.forward(x, training), training), training);
    for (auto& block : blocks_) h = block->forward(h, training);
    h = pool_.forward(h, training);
    cached_pre_flatten_ = h.shape();
    const tensor::Tensor flat =
        h.reshaped(tensor::Shape{h.dim(0), h.dim(1) * h.dim(2) * h.dim(3)});
    return fc_.forward(flat, training);
}

void ResNet18::backward(const tensor::Tensor& grad_logits) {
    tensor::Tensor g = fc_.backward(grad_logits);
    g = g.reshaped(cached_pre_flatten_);
    g = pool_.backward(g);
    for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) g = (*it)->backward(g);
    g = stem_conv_.backward(stem_bn_.backward(stem_act_.backward(g)));
}

std::vector<Param*> ResNet18::params() {
    std::vector<Param*> out;
    out.push_back(&stem_conv_.weight());
    out.push_back(&stem_bn_.gamma());
    out.push_back(&stem_bn_.beta());
    out.push_back(&stem_act_.step_param());
    for (auto& block : blocks_) block->collect_params(out);
    out.push_back(&fc_.weight());
    out.push_back(&fc_.bias());
    return out;
}

std::vector<Activation*> ResNet18::activations() {
    std::vector<Activation*> out;
    out.push_back(&stem_act_);
    for (auto& block : blocks_) block->collect_activations(out);
    return out;
}

NetworkIR ResNet18::ir() const {
    NetworkIR net;
    net.model_name = name();
    net.input_channels = config_.input_channels;
    net.input_h = config_.input_size;
    net.input_w = config_.input_size;

    IrNode input;
    input.op = IrOp::kInput;
    input.label = "input";
    input.out_channels = config_.input_channels;
    input.out_h = config_.input_size;
    input.out_w = config_.input_size;
    net.nodes.push_back(input);

    std::int64_t h = config_.input_size;
    auto add_conv = [&](const Conv2d& conv, const BatchNorm2d& bn, const Activation& act,
                        int in_node, int skip_src, const Conv2d* skip_conv,
                        const BatchNorm2d* skip_bn, const std::string& label) -> int {
        IrNode node;
        node.op = IrOp::kConv;
        node.label = label;
        node.input = in_node;
        node.conv = &conv;
        node.bn = &bn;
        node.act = &act;
        node.skip_src = skip_src;
        node.skip_conv = skip_conv;
        node.skip_bn = skip_bn;
        node.out_channels = conv.geometry().out_channels;
        h = conv.geometry().out_size(h);
        node.out_h = h;
        node.out_w = h;
        net.nodes.push_back(node);
        return static_cast<int>(net.nodes.size()) - 1;
    };

    int prev = add_conv(stem_conv_, stem_bn_, stem_act_, 0, -1, nullptr, nullptr, "stem");
    for (const auto& block : blocks_) {
        const int block_in = prev;
        prev = add_conv(block->conv1(), block->bn1(), block->act1(), block_in, -1, nullptr,
                        nullptr, block->conv1().name());
        prev = add_conv(block->conv2(), block->bn2(), block->act2(), prev, block_in,
                        block->down_conv(), block->down_bn(), block->conv2().name());
    }

    IrNode pool;
    pool.op = IrOp::kAvgPool;
    pool.label = "avgpool";
    pool.input = prev;
    pool.pool_kernel = pool_.kernel();
    pool.out_channels = net.nodes.back().out_channels;
    pool.out_h = net.nodes.back().out_h / pool_.kernel();
    pool.out_w = net.nodes.back().out_w / pool_.kernel();
    net.nodes.push_back(pool);

    IrNode fc;
    fc.op = IrOp::kLinear;
    fc.label = "fc";
    fc.input = static_cast<int>(net.nodes.size()) - 1;
    fc.fc = &fc_;
    fc.act = nullptr;  // readout layer: accumulate membrane, no spikes
    fc.out_channels = config_.classes;
    fc.out_h = 1;
    fc.out_w = 1;
    net.nodes.push_back(fc);
    return net;
}

}  // namespace sia::nn
