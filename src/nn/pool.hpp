// Pooling modules. The models use average pooling before the classifier;
// max pooling is provided for completeness and for the ANN-only VGG
// ablation (SNN-converted models use stride-2 convolutions instead —
// see DESIGN.md substitutions).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/ops.hpp"

namespace sia::nn {

class AvgPool2d {
public:
    explicit AvgPool2d(std::int64_t kernel) : kernel_(kernel) {}

    [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& x, bool training);
    [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_out);

    [[nodiscard]] std::int64_t kernel() const noexcept { return kernel_; }

private:
    std::int64_t kernel_;
    tensor::Shape cached_in_shape_;
};

class MaxPool2d {
public:
    explicit MaxPool2d(std::int64_t kernel) : kernel_(kernel) {}

    [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& x, bool training);
    [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_out);

    [[nodiscard]] std::int64_t kernel() const noexcept { return kernel_; }

private:
    std::int64_t kernel_;
    tensor::Shape cached_in_shape_;
    std::vector<std::int64_t> argmax_;
};

}  // namespace sia::nn
