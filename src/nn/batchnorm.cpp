#include "nn/batchnorm.hpp"

#include <cmath>

namespace sia::nn {

BatchNorm2d::BatchNorm2d(std::int64_t channels, std::string name, float momentum, float eps)
    : channels_(channels),
      name_(std::move(name)),
      momentum_(momentum),
      eps_(eps),
      gamma_(tensor::Shape{channels}, name_ + ".gamma"),
      beta_(tensor::Shape{channels}, name_ + ".beta"),
      running_mean_(static_cast<std::size_t>(channels), 0.0F),
      running_var_(static_cast<std::size_t>(channels), 1.0F) {
    gamma_.value.fill(1.0F);
    gamma_.decay = false;
    beta_.decay = false;
}

tensor::Tensor BatchNorm2d::forward(const tensor::Tensor& x, bool training) {
    const std::int64_t n = x.dim(0);
    const std::int64_t c = x.dim(1);
    const std::int64_t hw = x.dim(2) * x.dim(3);
    const auto count = static_cast<double>(n * hw);
    tensor::Tensor out(x.shape());

    if (training) {
        cached_xhat_ = tensor::Tensor(x.shape());
        cached_inv_std_.assign(static_cast<std::size_t>(c), 0.0F);
    }

    for (std::int64_t ch = 0; ch < c; ++ch) {
        double mean = 0.0;
        double var = 0.0;
        if (training) {
            for (std::int64_t s = 0; s < n; ++s) {
                const float* p = x.raw() + (s * c + ch) * hw;
                for (std::int64_t i = 0; i < hw; ++i) mean += p[i];
            }
            mean /= count;
            for (std::int64_t s = 0; s < n; ++s) {
                const float* p = x.raw() + (s * c + ch) * hw;
                for (std::int64_t i = 0; i < hw; ++i) {
                    const double d = p[i] - mean;
                    var += d * d;
                }
            }
            var /= count;
            auto& rm = running_mean_[static_cast<std::size_t>(ch)];
            auto& rv = running_var_[static_cast<std::size_t>(ch)];
            rm = (1.0F - momentum_) * rm + momentum_ * static_cast<float>(mean);
            rv = (1.0F - momentum_) * rv + momentum_ * static_cast<float>(var);
        } else {
            mean = running_mean_[static_cast<std::size_t>(ch)];
            var = running_var_[static_cast<std::size_t>(ch)];
        }

        const auto inv_std = static_cast<float>(1.0 / std::sqrt(var + eps_));
        const float g = gamma_.value.flat(ch);
        const float b = beta_.value.flat(ch);
        if (training) cached_inv_std_[static_cast<std::size_t>(ch)] = inv_std;

        for (std::int64_t s = 0; s < n; ++s) {
            const float* p = x.raw() + (s * c + ch) * hw;
            float* o = out.raw() + (s * c + ch) * hw;
            float* xh = training ? cached_xhat_.raw() + (s * c + ch) * hw : nullptr;
            for (std::int64_t i = 0; i < hw; ++i) {
                const float xhat = (p[i] - static_cast<float>(mean)) * inv_std;
                if (xh != nullptr) xh[i] = xhat;
                o[i] = g * xhat + b;
            }
        }
    }
    return out;
}

tensor::Tensor BatchNorm2d::backward(const tensor::Tensor& grad_out) {
    const std::int64_t n = grad_out.dim(0);
    const std::int64_t c = grad_out.dim(1);
    const std::int64_t hw = grad_out.dim(2) * grad_out.dim(3);
    const auto count = static_cast<double>(n * hw);
    tensor::Tensor grad_in(grad_out.shape());

    for (std::int64_t ch = 0; ch < c; ++ch) {
        double sum_dy = 0.0;
        double sum_dy_xhat = 0.0;
        for (std::int64_t s = 0; s < n; ++s) {
            const float* dy = grad_out.raw() + (s * c + ch) * hw;
            const float* xh = cached_xhat_.raw() + (s * c + ch) * hw;
            for (std::int64_t i = 0; i < hw; ++i) {
                sum_dy += dy[i];
                sum_dy_xhat += static_cast<double>(dy[i]) * xh[i];
            }
        }
        gamma_.grad.flat(ch) += static_cast<float>(sum_dy_xhat);
        beta_.grad.flat(ch) += static_cast<float>(sum_dy);

        const float g = gamma_.value.flat(ch);
        const float inv_std = cached_inv_std_[static_cast<std::size_t>(ch)];
        const auto mean_dy = static_cast<float>(sum_dy / count);
        const auto mean_dy_xhat = static_cast<float>(sum_dy_xhat / count);
        for (std::int64_t s = 0; s < n; ++s) {
            const float* dy = grad_out.raw() + (s * c + ch) * hw;
            const float* xh = cached_xhat_.raw() + (s * c + ch) * hw;
            float* dx = grad_in.raw() + (s * c + ch) * hw;
            for (std::int64_t i = 0; i < hw; ++i) {
                dx[i] = g * inv_std * (dy[i] - mean_dy - xh[i] * mean_dy_xhat);
            }
        }
    }
    return grad_in;
}

}  // namespace sia::nn
