// Batch normalisation over NCHW (per-channel). Training uses batch
// statistics and maintains running estimates; inference uses the running
// estimates — the converter folds them into the aggregation core's
// (G, H) coefficients per Eq. (2) of the paper.
#pragma once

#include <string>
#include <vector>

#include "nn/param.hpp"
#include "tensor/tensor.hpp"

namespace sia::nn {

class BatchNorm2d {
public:
    explicit BatchNorm2d(std::int64_t channels, std::string name = "bn",
                         float momentum = 0.1F, float eps = 1e-5F);

    [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& x, bool training);
    [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_out);

    [[nodiscard]] std::int64_t channels() const noexcept { return channels_; }
    [[nodiscard]] Param& gamma() noexcept { return gamma_; }
    [[nodiscard]] Param& beta() noexcept { return beta_; }
    [[nodiscard]] const Param& gamma() const noexcept { return gamma_; }
    [[nodiscard]] const Param& beta() const noexcept { return beta_; }
    [[nodiscard]] const std::vector<float>& running_mean() const noexcept { return running_mean_; }
    [[nodiscard]] const std::vector<float>& running_var() const noexcept { return running_var_; }
    [[nodiscard]] float eps() const noexcept { return eps_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

private:
    std::int64_t channels_;
    std::string name_;
    float momentum_;
    float eps_;
    Param gamma_;
    Param beta_;
    std::vector<float> running_mean_;
    std::vector<float> running_var_;

    // Cached values for backward.
    tensor::Tensor cached_xhat_;
    std::vector<float> cached_inv_std_;
};

}  // namespace sia::nn
