#include "nn/linear.hpp"

#include <cmath>

namespace sia::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, util::Rng& rng,
               std::string name)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(tensor::Shape{out_features, in_features}, name + ".weight"),
      bias_(tensor::Shape{out_features}, name + ".bias"),
      name_(std::move(name)) {
    weight_.value.randn_(rng, std::sqrt(2.0F / static_cast<float>(in_features)));
    bias_.decay = false;
}

tensor::Tensor Linear::forward(const tensor::Tensor& x, bool training) {
    if (training) cached_input_ = x;
    tensor::Tensor out(tensor::Shape{x.dim(0), out_features_});
    tensor::linear_forward(x, weight_.value, bias_.value, out);
    return out;
}

tensor::Tensor Linear::backward(const tensor::Tensor& grad_out) {
    tensor::Tensor grad_in(cached_input_.shape());
    tensor::Tensor grad_w(weight_.value.shape());
    tensor::Tensor grad_b(bias_.value.shape());
    tensor::linear_backward(cached_input_, weight_.value, grad_out, grad_in, grad_w, grad_b);
    weight_.grad.add_(grad_w);
    bias_.grad.add_(grad_b);
    return grad_in;
}

}  // namespace sia::nn
