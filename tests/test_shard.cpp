// Multi-accelerator sharded execution: the shard planner's cut
// legality and slice balancing, the cluster equivalence matrix (both
// partition strategies must be bit-identical to single-Sia execution
// across shard counts, models, and thread counts), hand-checked
// pipeline fill/drain/stall accounting, session-window chunking through
// a cluster, the serving backend, and the RAII partition guard.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/batch_runner.hpp"
#include "core/compiler.hpp"
#include "sim/axi.hpp"
#include "sim/memory.hpp"
#include "sim/sia.hpp"
#include "sim/sia_cluster.hpp"
#include "util/rng.hpp"

namespace sia {
namespace {

// ---- model zoo ----

snn::SnnModel conv_model(std::uint64_t seed, std::int64_t depth = 3) {
    util::Rng rng(seed);
    snn::SnnModel model;
    model.input_channels = 2;
    model.input_h = 6;
    model.input_w = 6;

    std::int64_t in_c = model.input_channels;
    for (std::int64_t d = 0; d < depth; ++d) {
        snn::SnnLayer layer;
        layer.op = snn::LayerOp::kConv;
        layer.label = "conv" + std::to_string(d);
        layer.input = static_cast<int>(d) - 1;
        auto& b = layer.main;
        b.in_channels = in_c;
        b.out_channels = 4;
        b.kernel = 3;
        b.stride = 1;
        b.padding = 1;
        b.weights.resize(static_cast<std::size_t>(in_c * 4 * 9));
        for (auto& w : b.weights) w = static_cast<std::int8_t>(rng.integer(-127, 127));
        b.gain.resize(4);
        b.bias.resize(4);
        for (auto& g : b.gain) g = static_cast<std::int16_t>(rng.integer(50, 2000));
        for (auto& h : b.bias) h = static_cast<std::int16_t>(rng.integer(-100, 100));
        layer.out_channels = 4;
        layer.out_h = 6;
        layer.out_w = 6;
        layer.in_h = 6;
        layer.in_w = 6;
        model.layers.push_back(std::move(layer));
        in_c = 4;
    }

    snn::SnnLayer fc;
    fc.op = snn::LayerOp::kLinear;
    fc.label = "fc";
    fc.input = static_cast<int>(depth) - 1;
    fc.spiking = false;
    fc.main.in_features = 4 * 6 * 6;
    fc.main.out_features = 4;
    fc.main.weights.resize(static_cast<std::size_t>(fc.main.in_features * 4));
    for (auto& w : fc.main.weights) w = static_cast<std::int8_t>(rng.integer(-64, 64));
    fc.main.gain.assign(4, 256);
    fc.main.bias.assign(4, 0);
    fc.out_channels = 4;
    model.layers.push_back(std::move(fc));
    model.classes = 4;
    model.validate();
    return model;
}

snn::SnnModel mlp_model(std::uint64_t seed) {
    util::Rng rng(seed);
    snn::SnnModel model;
    model.input_channels = 1;
    model.input_h = 4;
    model.input_w = 4;

    snn::SnnLayer hidden;
    hidden.op = snn::LayerOp::kLinear;
    hidden.label = "hidden";
    hidden.input = -1;
    hidden.spiking = true;
    hidden.main.in_features = 16;
    hidden.main.out_features = 12;
    hidden.main.weights.resize(16 * 12);
    for (auto& w : hidden.main.weights) {
        w = static_cast<std::int8_t>(rng.integer(-127, 127));
    }
    hidden.main.gain.resize(12);
    hidden.main.bias.resize(12);
    for (auto& g : hidden.main.gain) g = static_cast<std::int16_t>(rng.integer(100, 500));
    for (auto& h : hidden.main.bias) h = static_cast<std::int16_t>(rng.integer(-50, 50));
    hidden.out_channels = 12;
    model.layers.push_back(std::move(hidden));

    snn::SnnLayer readout;
    readout.op = snn::LayerOp::kLinear;
    readout.label = "readout";
    readout.input = 0;
    readout.spiking = false;
    readout.main.in_features = 12;
    readout.main.out_features = 4;
    readout.main.weights.resize(12 * 4);
    for (auto& w : readout.main.weights) {
        w = static_cast<std::int8_t>(rng.integer(-64, 64));
    }
    readout.main.gain.assign(4, 256);
    readout.main.bias.assign(4, 0);
    readout.out_channels = 4;
    model.layers.push_back(std::move(readout));
    model.classes = 4;
    model.validate();
    return model;
}

/// stem -> identity-skip residual -> conv-skip block reading the stem
/// (which blocks the cut before it) -> readout. Exercises both sliced
/// residual paths and gives the planner an illegal boundary.
snn::SnnModel skip_model(std::uint64_t seed) {
    util::Rng rng(seed);
    snn::SnnModel model;
    model.input_channels = 2;
    model.input_h = 6;
    model.input_w = 6;
    model.classes = 4;

    const auto conv_branch = [&](std::int64_t in_c, std::int64_t out_c,
                                 std::int64_t kernel, std::int64_t padding) {
        snn::Branch b;
        b.in_channels = in_c;
        b.out_channels = out_c;
        b.kernel = kernel;
        b.stride = 1;
        b.padding = padding;
        b.weights.resize(static_cast<std::size_t>(in_c * out_c * kernel * kernel));
        for (auto& w : b.weights) w = static_cast<std::int8_t>(rng.integer(-127, 127));
        b.gain.resize(static_cast<std::size_t>(out_c));
        b.bias.resize(static_cast<std::size_t>(out_c));
        for (auto& g : b.gain) g = static_cast<std::int16_t>(rng.integer(50, 2000));
        for (auto& h : b.bias) h = static_cast<std::int16_t>(rng.integer(-100, 100));
        return b;
    };
    const auto conv_layer = [&](const char* label, int input, std::int64_t in_c) {
        snn::SnnLayer layer;
        layer.op = snn::LayerOp::kConv;
        layer.label = label;
        layer.input = input;
        layer.main = conv_branch(in_c, 4, 3, 1);
        layer.out_channels = 4;
        layer.out_h = layer.out_w = 6;
        layer.in_h = layer.in_w = 6;
        return layer;
    };

    model.layers.push_back(conv_layer("stem", -1, 2));

    snn::SnnLayer res = conv_layer("res", 0, 4);
    res.skip_src = 0;
    res.skip_is_identity = true;
    res.identity_skip.charge = 120;
    model.layers.push_back(std::move(res));

    snn::SnnLayer down = conv_layer("down", 1, 4);
    down.skip_src = 0;  // reaches past layer 1: the cut before 2 is illegal
    down.skip_is_identity = false;
    down.skip = conv_branch(4, 4, 1, 0);
    model.layers.push_back(std::move(down));

    snn::SnnLayer fc;
    fc.op = snn::LayerOp::kLinear;
    fc.label = "fc";
    fc.input = 2;
    fc.spiking = false;
    fc.main.in_features = 4 * 6 * 6;
    fc.main.out_features = 4;
    fc.main.weights.resize(static_cast<std::size_t>(fc.main.in_features * 4));
    for (auto& w : fc.main.weights) w = static_cast<std::int8_t>(rng.integer(-64, 64));
    fc.main.gain.assign(4, 256);
    fc.main.bias.assign(4, 0);
    fc.out_channels = 4;
    model.layers.push_back(std::move(fc));
    model.validate();
    return model;
}

std::vector<snn::SpikeTrain> random_batch(const snn::SnnModel& model, std::size_t count,
                                          std::int64_t timesteps, std::uint64_t seed) {
    std::vector<snn::SpikeTrain> batch;
    batch.reserve(count);
    util::Rng rng(seed);
    for (std::size_t i = 0; i < count; ++i) {
        snn::SpikeTrain train(static_cast<std::size_t>(timesteps),
                              snn::SpikeMap(model.input_channels, model.input_h,
                                            model.input_w));
        for (auto& frame : train) {
            for (std::int64_t j = 0; j < frame.size(); ++j) {
                frame.set_flat(j, rng.bernoulli(0.3));
            }
        }
        batch.push_back(std::move(train));
    }
    return batch;
}

/// Output equivalence: what both partition strategies guarantee.
template <typename GotT>
void expect_same_outputs(const GotT& got, const sim::SiaRunResult& want) {
    EXPECT_EQ(got.logits_per_step, want.logits_per_step);
    EXPECT_EQ(got.spike_counts, want.spike_counts);
    EXPECT_EQ(got.neuron_counts, want.neuron_counts);
    EXPECT_EQ(got.timesteps, want.timesteps);
}

/// Full bit-identity including as-if-sequential cycle stats: what the
/// pipeline partitioning additionally guarantees per item.
void expect_same_sia_result(const sim::SiaRunResult& got, const sim::SiaRunResult& want) {
    expect_same_outputs(got, want);
    ASSERT_EQ(got.layer_stats.size(), want.layer_stats.size());
    for (std::size_t l = 0; l < got.layer_stats.size(); ++l) {
        SCOPED_TRACE("layer " + std::to_string(l));
        const auto& a = got.layer_stats[l];
        const auto& b = want.layer_stats[l];
        EXPECT_EQ(a.label, b.label);
        EXPECT_EQ(a.compute, b.compute);
        EXPECT_EQ(a.aggregate, b.aggregate);
        EXPECT_EQ(a.dma, b.dma);
        EXPECT_EQ(a.mmio, b.mmio);
        EXPECT_EQ(a.overhead, b.overhead);
        EXPECT_EQ(a.input_spike_events, b.input_spike_events);
        EXPECT_EQ(a.event_additions, b.event_additions);
        EXPECT_EQ(a.dense_ops, b.dense_ops);
    }
    EXPECT_EQ(got.total_cycles(), want.total_cycles());
}

struct NamedModel {
    const char* name;
    snn::SnnModel model;
};

// ---- the cluster equivalence matrix ----

TEST(ShardCluster, MatrixBothStrategiesMatchSingleSia) {
    const sim::SiaConfig config;
    const core::SiaCompiler compiler(config);
    const std::int64_t timesteps = 4;
    const std::size_t batch = 6;
    const std::array<std::int64_t, 4> shard_counts = {1, 2, 4, 8};
    const std::array<std::size_t, 2> thread_counts = {1, 8};
    const std::array<core::ShardPartition, 2> partitions = {
        core::ShardPartition::kPipeline, core::ShardPartition::kChannel};

    std::vector<NamedModel> models;
    models.push_back({"conv", conv_model(101)});
    models.push_back({"mlp", mlp_model(102)});
    models.push_back({"skip", skip_model(103)});

    for (const auto& [name, model] : models) {
        SCOPED_TRACE(name);
        const auto inputs = random_batch(model, batch, timesteps, 777);

        const auto program = compiler.compile(model);
        sim::Sia sequential(config, model, program);
        std::vector<sim::SiaRunResult> ref;
        std::int64_t ref_total = 0;
        for (const auto& train : inputs) {
            ref.push_back(sequential.run(train));
            ref_total += ref.back().total_cycles();
        }

        for (const auto partition : partitions) {
            for (const std::int64_t shards : shard_counts) {
                const auto plan = compiler.compile_sharded(
                    model, {.partition = partition, .shards = shards});
                EXPECT_LE(plan.effective_shards(), shards);
                for (const std::size_t threads : thread_counts) {
                    SCOPED_TRACE(std::string(sim::to_string(partition)) +
                                 " shards=" + std::to_string(shards) +
                                 " threads=" + std::to_string(threads));
                    sim::SiaCluster cluster(config, model, plan,
                                            {.threads = threads});
                    const auto results = cluster.run_batch(inputs);
                    ASSERT_EQ(results.size(), batch);
                    for (std::size_t i = 0; i < batch; ++i) {
                        SCOPED_TRACE("item=" + std::to_string(i));
                        if (partition == core::ShardPartition::kPipeline) {
                            expect_same_sia_result(results[i], ref[i]);
                        } else {
                            expect_same_outputs(results[i], ref[i]);
                        }
                    }
                    const sim::ShardStats& stats = cluster.last_stats();
                    EXPECT_EQ(stats.partition, partition);
                    EXPECT_EQ(stats.shards, plan.effective_shards());
                    EXPECT_EQ(stats.batch, batch);
                    EXPECT_GT(stats.makespan_cycles, 0);
                    EXPECT_GT(stats.compute_cycles, 0);
                    if (partition == core::ShardPartition::kPipeline) {
                        // Per-item stats are exact, so the serial
                        // baseline is too — and the makespan never
                        // exceeds running the batch serially.
                        EXPECT_EQ(stats.item_cycles, ref_total);
                        EXPECT_LE(stats.makespan_cycles, stats.item_cycles);
                        if (plan.effective_shards() == 1) {
                            EXPECT_EQ(stats.makespan_cycles, stats.item_cycles);
                            EXPECT_EQ(stats.transfer_cycles, 0);
                            EXPECT_EQ(stats.fill_cycles, 0);
                            EXPECT_EQ(stats.drain_cycles, 0);
                        }
                    } else if (plan.effective_shards() == 1) {
                        // One channel slice = the whole model: no gather.
                        EXPECT_EQ(stats.transfer_cycles, 0);
                        EXPECT_EQ(stats.makespan_cycles, ref_total);
                    }
                }
            }
        }
    }
}

TEST(ShardCluster, SingleRunFormsMatchBatch) {
    const sim::SiaConfig config;
    const auto model = conv_model(11);
    const auto inputs = random_batch(model, 1, 4, 19);
    const core::SiaCompiler compiler(config);
    const auto program = compiler.compile(model);
    sim::Sia single(config, model, program);
    const auto ref = single.run(inputs[0]);

    for (const auto partition :
         {core::ShardPartition::kPipeline, core::ShardPartition::kChannel}) {
        SCOPED_TRACE(sim::to_string(partition));
        sim::SiaCluster cluster(
            config, model,
            compiler.compile_sharded(model, {.partition = partition, .shards = 2}));
        expect_same_outputs(cluster.run(inputs[0]), ref);
    }
}

TEST(ShardCluster, EmptyBatchAndBadInputValidation) {
    const sim::SiaConfig config;
    const auto model = mlp_model(13);
    const core::SiaCompiler compiler(config);
    sim::SiaCluster cluster(
        config, model,
        compiler.compile_sharded(
            model, {.partition = core::ShardPartition::kPipeline, .shards = 2}));

    EXPECT_TRUE(cluster.run_batch(std::vector<snn::SpikeTrain>{}).empty());

    auto inputs = random_batch(model, 2, 4, 7);
    inputs.push_back(snn::SpikeTrain{});
    EXPECT_THROW((void)cluster.run_batch(inputs), std::invalid_argument);

    // The cluster recovers after the failed batch.
    const auto program = compiler.compile(model);
    sim::Sia single(config, model, program);
    expect_same_outputs(cluster.run(inputs[0]), single.run(inputs[0]));
}

// ---- hand-checked pipeline timeline ----

TEST(ShardPipeline, FillDrainAndStallAccountingHandChecked) {
    // Force a known 2-stage cut: conv0..conv5 | fc, run n identical
    // items, and check the whole timeline in closed form. With constant
    // per-item stage costs B0 > B1 + tx the downstream stage is always
    // input-starved: every transfer is exposed even double-buffered.
    // (Six conv layers: the FC's weight-streaming MMIO cost outweighs
    // a three-conv stage, which would flip the bottleneck downstream.)
    const sim::SiaConfig config;
    const auto model = conv_model(23, 6);
    const core::SiaCompiler compiler(config);
    const std::int64_t timesteps = 4;
    const std::size_t n = 3;
    const auto one = random_batch(model, 1, timesteps, 29);
    const std::vector<snn::SpikeTrain> inputs(n, one[0]);

    sim::ShardPlan plan;
    plan.partition = sim::ShardPartition::kPipeline;
    plan.shards = 2;
    plan.program = compiler.compile(model);
    plan.stages = {{0, 6, 0, plan.program.layers[5].spike_out_bytes},
                   {6, 7, 0, 0}};

    sim::Sia single(config, model, plan.program);
    const auto ref = single.run(one[0]);
    std::int64_t b0 = 0;
    for (std::size_t l = 0; l < 6; ++l) b0 += ref.layer_stats[l].total();
    const std::int64_t b1 = ref.layer_stats[6].total();
    const std::int64_t tx =
        timesteps * sim::AxiDma::cycles_for(plan.stages[0].boundary_bytes, config);
    ASSERT_GT(tx, 0);
    ASSERT_GT(b0, b1 + tx);  // precondition of the closed forms below

    sim::SiaCluster cluster(config, model, plan, {.threads = 2});
    const auto results = cluster.run_batch(inputs);
    for (const auto& r : results) expect_same_sia_result(r, ref);

    const auto count = static_cast<std::int64_t>(n);
    const sim::ShardStats& db = cluster.last_stats();
    EXPECT_TRUE(db.double_buffered);
    EXPECT_EQ(db.compute_cycles, count * (b0 + b1));
    EXPECT_EQ(db.item_cycles, count * (b0 + b1));
    EXPECT_EQ(db.transfer_cycles, count * tx);
    EXPECT_EQ(db.transfer_bytes,
              count * timesteps * plan.stages[0].boundary_bytes);
    EXPECT_EQ(db.transfer_stall_cycles, count * tx);
    EXPECT_EQ(db.fill_cycles, b0 + tx);
    EXPECT_EQ(db.drain_cycles, tx + b1);
    EXPECT_EQ(db.makespan_cycles, count * b0 + tx + b1);
    EXPECT_GT(db.speedup(), 1.0);

    // Without double-buffering the producing shard drives its own
    // transfers: stage 0 is occupied B0 + tx per item.
    sim::SiaCluster serial_tx(config, model, plan,
                              {.threads = 2, .double_buffer = false});
    const auto results2 = serial_tx.run_batch(inputs);
    for (const auto& r : results2) expect_same_sia_result(r, ref);
    const sim::ShardStats& nodb = serial_tx.last_stats();
    EXPECT_EQ(nodb.makespan_cycles, count * (b0 + tx) + b1);
    EXPECT_GT(nodb.makespan_cycles, db.makespan_cycles);
}

// ---- the shard planner ----

TEST(ShardPlanner, SkipConnectionsBlockIllegalCuts) {
    const core::SiaCompiler compiler{};
    const auto model = skip_model(31);
    // Layer 2 ("down") reads its residual from layer 0, so the only
    // legal boundaries are before layer 1 and before layer 3: asking for
    // 4 stages must clamp to the 3 legal ones.
    const auto plan = compiler.compile_sharded(
        model, {.partition = core::ShardPartition::kPipeline, .shards = 4});
    ASSERT_EQ(plan.effective_shards(), 3);
    EXPECT_EQ(plan.stages[0].first, 0U);
    EXPECT_EQ(plan.stages[0].last, 1U);
    EXPECT_EQ(plan.stages[1].first, 1U);
    EXPECT_EQ(plan.stages[1].last, 3U);
    EXPECT_EQ(plan.stages[2].first, 3U);
    EXPECT_EQ(plan.stages[2].last, 4U);
    EXPECT_EQ(plan.stages[0].boundary_bytes, plan.program.layers[0].spike_out_bytes);
    EXPECT_EQ(plan.stages[1].boundary_bytes, plan.program.layers[2].spike_out_bytes);
    EXPECT_EQ(plan.stages[2].boundary_bytes, 0);
    for (const auto& stage : plan.stages) EXPECT_GT(stage.est_cycles, 0);
}

TEST(ShardPlanner, PipelineClampsToLayerCount) {
    const core::SiaCompiler compiler{};
    const auto plan = compiler.compile_sharded(
        mlp_model(37),
        {.partition = core::ShardPartition::kPipeline, .shards = 8});
    EXPECT_EQ(plan.effective_shards(), 2);  // a 2-layer model has one cut
    EXPECT_EQ(plan.stages[0].last, plan.stages[1].first);
}

TEST(ShardPlanner, ChannelSlicesAreBalancedAndCoverEveryLayer) {
    const core::SiaCompiler compiler{};
    const auto model = mlp_model(41);
    const auto plan = compiler.compile_sharded(
        model, {.partition = core::ShardPartition::kChannel, .shards = 8});
    ASSERT_EQ(plan.slices.size(), 8U);
    for (std::size_t l = 0; l < model.layers.size(); ++l) {
        SCOPED_TRACE("layer " + std::to_string(l));
        const std::int64_t channels = l == 0 ? 12 : 4;
        std::int64_t covered = 0;
        std::int64_t widest = 0;
        std::int64_t narrowest = channels;
        for (std::size_t k = 0; k < plan.slices.size(); ++k) {
            const auto& slice = plan.slices[k][l];
            EXPECT_EQ(slice.c0, covered);  // contiguous, in shard order
            covered = slice.c1;
            const std::int64_t span = slice.c1 - slice.c0;
            widest = std::max(widest, span);
            narrowest = std::min(narrowest, span);
        }
        EXPECT_EQ(covered, channels);
        EXPECT_LE(widest - narrowest, 1);  // balanced to within one channel
    }
    // Sliced plans carry sliced transfer volumes.
    const auto& s0 = plan.slices[0][0];
    EXPECT_LT(s0.plan.weight_stream_bytes, plan.program.layers[0].weight_stream_bytes);
    EXPECT_EQ(plan.slices[7][1].c1 - plan.slices[7][1].c0, 0);  // surplus shard
}

TEST(ShardPlanner, RejectsNonPositiveShards) {
    const core::SiaCompiler compiler{};
    EXPECT_THROW((void)compiler.compile_sharded(mlp_model(43), {.shards = 0}),
                 std::invalid_argument);
}

// ---- streaming sessions through a cluster ----

TEST(ShardCluster, SessionWindowsMatchSingleSiaWindowByWindow) {
    const sim::SiaConfig config;
    const core::SiaCompiler compiler(config);
    std::vector<NamedModel> models;
    models.push_back({"conv", conv_model(47)});
    models.push_back({"mlp", mlp_model(53)});

    for (const auto& [name, model] : models) {
        SCOPED_TRACE(name);
        const auto windows = random_batch(model, 3, 4, 59);
        const auto program = compiler.compile(model);

        for (const auto partition :
             {core::ShardPartition::kPipeline, core::ShardPartition::kChannel}) {
            SCOPED_TRACE(sim::to_string(partition));
            sim::Sia single(config, model, program);
            snn::SessionState ref_session;
            sim::SiaCluster cluster(
                config, model,
                compiler.compile_sharded(model,
                                         {.partition = partition, .shards = 2}),
                {.threads = 8});
            snn::SessionState cluster_session;

            for (std::size_t w = 0; w < windows.size(); ++w) {
                SCOPED_TRACE("window=" + std::to_string(w));
                const auto want = single.run(windows[w], ref_session);
                const auto got = cluster.run(windows[w], cluster_session);
                if (partition == core::ShardPartition::kPipeline) {
                    expect_same_sia_result(got, want);
                } else {
                    expect_same_outputs(got, want);
                }
                // The carried state itself is bit-identical after every
                // window — N chunked windows equal one monolithic run.
                EXPECT_EQ(cluster_session.membranes, ref_session.membranes);
                EXPECT_EQ(cluster_session.readout, ref_session.readout);
                EXPECT_EQ(cluster_session.steps, ref_session.steps);
                EXPECT_EQ(cluster_session.windows, ref_session.windows);
            }
        }
    }
}

// ---- serving backend ----

TEST(ShardedBackend, MatchesSingleSiaThroughBatchRunner) {
    const sim::SiaConfig config;
    const auto model = conv_model(61);
    const auto inputs = random_batch(model, 8, 4, 67);
    const core::SiaCompiler compiler(config);
    const auto program = compiler.compile(model);
    sim::Sia single(config, model, program);
    std::vector<sim::SiaRunResult> ref;
    for (const auto& train : inputs) ref.push_back(single.run(train));

    std::vector<core::Request> requests;
    for (const auto& t : inputs) requests.push_back(core::Request::view_train(t));

    for (const auto partition :
         {core::ShardPartition::kPipeline, core::ShardPartition::kChannel}) {
        SCOPED_TRACE(sim::to_string(partition));
        auto backend = std::make_shared<core::ShardedSiaBackend>(
            model, config,
            core::ShardOptions{.partition = partition, .shards = 2});
        core::BatchRunner runner(backend, {.threads = 4});
        const auto responses = runner.run(requests);
        ASSERT_EQ(responses.size(), inputs.size());
        for (std::size_t i = 0; i < responses.size(); ++i) {
            SCOPED_TRACE("item=" + std::to_string(i));
            ASSERT_TRUE(responses[i].ok());
            expect_same_outputs(responses[i], ref[i]);
        }
        EXPECT_EQ(backend->name(), "sia-cluster");
        const auto stats = backend->take_shard_stats();
        EXPECT_EQ(stats.partition, partition);
        EXPECT_EQ(stats.batch, inputs.size());
        EXPECT_GT(stats.makespan_cycles, 0);
        EXPECT_EQ(backend->take_shard_stats().batch, 0U);  // drained
    }
}

// ---- the RAII partition guard ----

TEST(PartitionGuard, RestoresSingleContextOnScopeExitAndThrow) {
    sim::PingPongMembrane membrane(1024);
    EXPECT_EQ(membrane.contexts(), 1);
    {
        const sim::PartitionGuard guard(membrane, 4);
        EXPECT_EQ(membrane.contexts(), 4);
    }
    EXPECT_EQ(membrane.contexts(), 1);

    EXPECT_THROW(
        {
            const sim::PartitionGuard guard(membrane, 4);
            EXPECT_EQ(membrane.contexts(), 4);
            throw std::runtime_error("wave died");
        },
        std::runtime_error);
    EXPECT_EQ(membrane.contexts(), 1);
}

TEST(PartitionGuard, MidWaveThrowLeavesSiaRepartitioned) {
    // An output bank too small for the conv spike packing throws
    // std::out_of_range mid-wave — after run_batch partitioned the
    // membrane into `banks` contexts. The guard must restore the
    // single-context partitioning on the way out.
    const auto model = conv_model(71);
    sim::SiaConfig config;
    config.output_bytes = 4;  // conv layers pack 18 bytes
    const auto program = core::SiaCompiler(config).compile(model);
    sim::Sia sia(config, model, program);
    ASSERT_EQ(sia.memory().membrane.contexts(), 1);

    const auto inputs = random_batch(model, 3, 4, 73);
    EXPECT_THROW((void)sia.run_batch(inputs), std::out_of_range);
    EXPECT_EQ(sia.memory().membrane.contexts(), 1);
}

TEST(PartitionGuard, ThrowingBatchThenRunIsBitIdentical) {
    const auto model = conv_model(79);
    const sim::SiaConfig config;
    const auto program = core::SiaCompiler(config).compile(model);
    const auto inputs = random_batch(model, 2, 4, 83);

    sim::Sia fresh(config, model, program);
    const auto ref = fresh.run(inputs[0]);

    sim::Sia sia(config, model, program);
    auto bad = inputs;
    bad.push_back(snn::SpikeTrain{});
    EXPECT_THROW((void)sia.run_batch(bad), std::invalid_argument);
    expect_same_sia_result(sia.run(inputs[0]), ref);
}

// ---- compiler diagnostics ----

TEST(CompilerErrors, ValidationNamesTheOffendingLayer) {
    sim::SiaConfig config;
    config.residual_bytes = 4;  // the residual path stages 18 bytes
    const core::SiaCompiler compiler(config);
    const auto model = skip_model(89);
    try {
        (void)compiler.compile(model);
        FAIL() << "compile() should have rejected the residual traffic";
    } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("SiaCompiler::compile: layer 1 (conv 'res')"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("residual traffic exceeds residual memory"),
                  std::string::npos)
            << what;
    }
}

}  // namespace
}  // namespace sia
