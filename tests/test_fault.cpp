// Fault-tolerance tests (the `chaos` ctest tier): deterministic fault
// injection (util::FaultInjector + core::FaultyBackend), wave-level
// failure isolation via bisection, per-request deadlines at admission /
// formation / completion, bounded retry with pinned-rng determinism,
// and the per-lane circuit breaker with fallback failover — capped by
// the acceptance storm: under a seeded throw-on-run fault storm across
// both backends and mixed tenants, every non-faulted request completes
// bit-identically to a fault-free run and the completed/failed/retried
// ledger is exact.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/backend.hpp"
#include "core/batch_runner.hpp"
#include "core/faulty_backend.hpp"
#include "core/server.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace sia {
namespace {

using namespace std::chrono_literals;

// Injected faults log one warning per failed request; keep chaos-test
// stderr quiet. Runs at static init, before any server thread exists.
const bool g_quiet = [] {
    util::set_log_level(util::LogLevel::kError);
    return true;
}();

// ---- compact random model/stimulus helpers (mirrors test_server) ----

snn::SnnModel small_model(std::uint64_t seed) {
    util::Rng rng(seed);
    snn::SnnModel model;
    model.input_channels = 2;
    model.input_h = 6;
    model.input_w = 6;

    snn::SnnLayer layer;
    layer.op = snn::LayerOp::kConv;
    layer.label = "conv0";
    layer.input = -1;
    auto& b = layer.main;
    b.in_channels = 2;
    b.out_channels = 4;
    b.kernel = 3;
    b.stride = 1;
    b.padding = 1;
    b.weights.resize(static_cast<std::size_t>(2 * 4 * 9));
    for (auto& w : b.weights) w = static_cast<std::int8_t>(rng.integer(-127, 127));
    b.gain.resize(4);
    b.bias.resize(4);
    for (auto& g : b.gain) g = static_cast<std::int16_t>(rng.integer(50, 2000));
    for (auto& h : b.bias) h = static_cast<std::int16_t>(rng.integer(-100, 100));
    layer.out_channels = 4;
    layer.out_h = 6;
    layer.out_w = 6;
    layer.in_h = 6;
    layer.in_w = 6;
    model.layers.push_back(std::move(layer));

    snn::SnnLayer fc;
    fc.op = snn::LayerOp::kLinear;
    fc.label = "fc";
    fc.input = 0;
    fc.spiking = false;
    fc.main.in_features = 4 * 6 * 6;
    fc.main.out_features = 4;
    fc.main.weights.resize(static_cast<std::size_t>(fc.main.in_features * 4));
    for (auto& w : fc.main.weights) w = static_cast<std::int8_t>(rng.integer(-64, 64));
    fc.main.gain.assign(4, 256);
    fc.main.bias.assign(4, 0);
    fc.out_channels = 4;
    model.layers.push_back(std::move(fc));
    model.classes = 4;
    model.validate();
    return model;
}

snn::SpikeTrain random_train(const snn::SnnModel& model, std::int64_t timesteps,
                             std::uint64_t seed) {
    util::Rng rng(seed);
    snn::SpikeTrain train(static_cast<std::size_t>(timesteps),
                          snn::SpikeMap(model.input_channels, model.input_h,
                                        model.input_w));
    for (auto& frame : train) {
        for (std::int64_t j = 0; j < frame.size(); ++j) {
            frame.set_flat(j, rng.bernoulli(0.3));
        }
    }
    return train;
}

/// Waits (bounded) for a predicate that another thread flips.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds budget = 2000ms) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (!pred()) {
        if (std::chrono::steady_clock::now() > deadline) return false;
        std::this_thread::sleep_for(1ms);
    }
    return true;
}

/// Gating decorator: holds every run_span until open() so tests can
/// pack a known set of queued requests into one wave, then delegates to
/// the inner backend. Counts the requests that actually ran.
class Gate final : public core::Backend {
public:
    explicit Gate(std::shared_ptr<core::Backend> inner)
        : Backend(inner->model()), inner_(std::move(inner)) {}

    [[nodiscard]] std::string_view name() const noexcept override { return "gate"; }
    void prepare(std::size_t workers) override { inner_->prepare(workers); }
    [[nodiscard]] std::size_t preferred_span(
        std::size_t n, std::size_t workers) const noexcept override {
        return inner_->preferred_span(n, workers);
    }
    void run_span(std::size_t worker, std::span<const core::Request> requests,
                  std::span<core::Response> responses, std::size_t base,
                  std::uint64_t seed) override {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return open_; });
            ran_ += requests.size();
        }
        inner_->run_span(worker, requests, responses, base, seed);
    }

    void open() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            open_ = true;
        }
        cv_.notify_all();
    }
    [[nodiscard]] std::size_t ran() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return ran_;
    }

private:
    std::shared_ptr<core::Backend> inner_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool open_ = false;
    std::size_t ran_ = 0;
};

// ------------------------------------------------------- FaultInjector

TEST(FaultInjector, DecisionsArePureSeededFunctionsOfTheStream) {
    util::FaultPlan plan;
    plan.seed = 42;
    plan.throw_probability = 0.01;
    const util::FaultInjector a(plan);
    const util::FaultInjector b(plan);

    std::size_t faults = 0;
    for (std::uint64_t s = 0; s < 10'000; ++s) {
        ASSERT_EQ(a.decide(s), b.decide(s)) << "stream " << s;
        ASSERT_EQ(a.decide(s), a.decide(s)) << "stream " << s;  // idempotent
        if (a.decide(s) != util::FaultKind::kNone) ++faults;
    }
    // 1% of 10k streams; a generous binomial band around 100.
    EXPECT_GT(faults, 40U);
    EXPECT_LT(faults, 250U);

    // A different seed poisons a different set.
    plan.seed = 43;
    const util::FaultInjector c(plan);
    std::size_t moved = 0;
    for (std::uint64_t s = 0; s < 10'000; ++s) {
        if (a.decide(s) != c.decide(s)) ++moved;
    }
    EXPECT_GT(moved, 0U);
}

TEST(FaultInjector, ProbabilitiesPartitionInDeclarationOrder) {
    util::FaultPlan plan;
    plan.seed = 7;
    plan.throw_probability = 0.3;
    plan.transient_probability = 0.3;
    plan.corrupt_probability = 0.3;
    const util::FaultInjector inj(plan);
    std::size_t thrown = 0, transient = 0, corrupt = 0, none = 0;
    for (std::uint64_t s = 0; s < 4'000; ++s) {
        switch (inj.decide(s)) {
            case util::FaultKind::kThrow: ++thrown; break;
            case util::FaultKind::kTransient: ++transient; break;
            case util::FaultKind::kCorrupt: ++corrupt; break;
            default: ++none; break;
        }
    }
    EXPECT_GT(thrown, 900U);
    EXPECT_GT(transient, 900U);
    EXPECT_GT(corrupt, 900U);
    EXPECT_GT(none, 200U);
}

TEST(FaultInjector, FailFirstCountsDownThenRecovers) {
    util::FaultPlan plan;
    plan.fail_first = 3;
    util::FaultInjector inj(plan);
    EXPECT_EQ(inj.inject(0, 0), util::FaultKind::kThrow);
    EXPECT_EQ(inj.inject(1, 0), util::FaultKind::kThrow);
    EXPECT_EQ(inj.inject(2, 0), util::FaultKind::kThrow);
    EXPECT_EQ(inj.inject(3, 0), util::FaultKind::kNone);  // recovered
    EXPECT_EQ(inj.inject(0, 0), util::FaultKind::kNone);
    EXPECT_EQ(inj.injected(), 3U);
}

TEST(FaultInjector, TransientFaultsClearAtTheConfiguredAttempt) {
    util::FaultPlan plan;
    plan.transient_probability = 1.0;
    plan.transient_attempts = 2;
    util::FaultInjector inj(plan);
    EXPECT_EQ(inj.inject(5, 0), util::FaultKind::kTransient);
    EXPECT_EQ(inj.inject(5, 1), util::FaultKind::kTransient);
    EXPECT_EQ(inj.inject(5, 2), util::FaultKind::kNone);  // cleared
}

TEST(FaultInjector, ExplicitScheduleAndValidation) {
    util::FaultPlan plan;
    plan.fail_streams = {2, 9};
    util::FaultInjector inj(plan);
    EXPECT_EQ(inj.decide(2), util::FaultKind::kThrow);
    EXPECT_EQ(inj.decide(9), util::FaultKind::kThrow);
    EXPECT_EQ(inj.decide(3), util::FaultKind::kNone);

    util::FaultPlan bad;
    bad.throw_probability = 0.7;
    bad.transient_probability = 0.7;
    EXPECT_THROW(util::FaultInjector{bad}, std::invalid_argument);
    util::FaultPlan zero_attempts;
    zero_attempts.transient_attempts = 0;
    EXPECT_THROW(util::FaultInjector{zero_attempts}, std::invalid_argument);
}

// ------------------------------------------------------ FaultyBackend

TEST(FaultyBackend, ThrowsTypedErrorsAndCorruptsOnlyFaultedRequests) {
    const auto model = small_model(11);
    core::BatchRunner clean_runner(
        std::make_shared<core::FunctionalBackend>(model),
        core::BatchOptions{.threads = 2});

    std::vector<snn::SpikeTrain> trains;
    std::vector<core::Request> requests;
    for (std::uint64_t i = 0; i < 8; ++i) {
        trains.push_back(random_train(model, 5, 100 + i));
    }
    for (std::uint64_t i = 0; i < 8; ++i) {
        auto r = core::Request::view_train(trains[i]);
        r.rng_stream = i;
        requests.push_back(std::move(r));
    }
    const auto reference = clean_runner.run(requests);

    // Permanent and transient throws carry their type.
    util::FaultPlan throw_plan;
    throw_plan.fail_streams = {4};
    core::BatchRunner throw_runner(
        std::make_shared<core::FaultyBackend>(
            std::make_shared<core::FunctionalBackend>(model), throw_plan),
        core::BatchOptions{.threads = 2});
    EXPECT_THROW((void)throw_runner.run(requests), std::runtime_error);

    util::FaultPlan transient_plan;
    transient_plan.transient_probability = 1.0;
    core::FaultyBackend transient_backend(
        std::make_shared<core::FunctionalBackend>(model), transient_plan);
    std::vector<core::Response> scratch(1);
    transient_backend.prepare(1);
    EXPECT_THROW(
        transient_backend.run_span(0, {requests.data(), 1}, {scratch.data(), 1}, 0,
                                   util::kDefaultSeed),
        core::TransientError);

    // Corruption is deterministic and confined to the faulted streams.
    util::FaultPlan corrupt_plan;
    corrupt_plan.seed = 99;
    corrupt_plan.corrupt_probability = 0.4;
    const util::FaultInjector oracle(corrupt_plan);
    core::BatchRunner corrupt_runner(
        std::make_shared<core::FaultyBackend>(
            std::make_shared<core::FunctionalBackend>(model), corrupt_plan),
        core::BatchOptions{.threads = 2});
    const auto corrupted = corrupt_runner.run(requests);
    std::size_t corrupted_count = 0;
    for (std::uint64_t i = 0; i < 8; ++i) {
        if (oracle.decide(i) == util::FaultKind::kCorrupt) {
            ++corrupted_count;
            EXPECT_NE(corrupted[i].logits_per_step, reference[i].logits_per_step)
                << "stream " << i << " should be corrupted";
        } else {
            EXPECT_EQ(corrupted[i].logits_per_step, reference[i].logits_per_step)
                << "stream " << i << " should be untouched";
        }
    }
    EXPECT_GT(corrupted_count, 0U) << "plan corrupted nothing; pick a new seed";
}

// ------------------------------------------- wave isolation (server)

TEST(FaultServer, BisectionQuarantinesThePoisonedRequestOnly) {
    const auto model = small_model(21);
    util::FaultPlan plan;
    plan.fail_streams = {4};  // the 5th admitted request is poisoned
    auto gate = std::make_shared<Gate>(std::make_shared<core::FaultyBackend>(
        std::make_shared<core::FunctionalBackend>(model), plan));
    core::ServerOptions options;
    options.threads = 2;
    options.max_batch = 16;
    core::Server server(gate, options);

    std::vector<snn::SpikeTrain> trains;
    for (std::uint64_t i = 0; i < 9; ++i) {
        trains.push_back(random_train(model, 5, 300 + i));
    }
    // First submission is swallowed into its own wave (the gate holds
    // it); the remaining eight pack into one wave, bisected on release.
    std::vector<std::future<core::Response>> futures;
    futures.push_back(server.submit(core::Request::view_train(trains[0])));
    ASSERT_TRUE(eventually([&] { return server.queue_depth() == 0; }));
    for (std::uint64_t i = 1; i < 9; ++i) {
        futures.push_back(server.submit(core::Request::view_train(trains[i])));
    }
    ASSERT_TRUE(eventually([&] { return server.queue_depth() == 8; }));
    gate->open();

    core::BatchRunner reference(std::make_shared<core::FunctionalBackend>(model),
                                core::BatchOptions{.threads = 2});
    for (std::uint64_t i = 0; i < 9; ++i) {
        auto response = futures[i].get();
        std::vector<core::Request> one;
        one.push_back(core::Request::view_train(trains[i]));
        if (i == 4) {
            EXPECT_FALSE(response.ok());
            EXPECT_EQ(response.error_code, core::ErrorCode::kBackendError);
            EXPECT_NE(response.error.find("injected throw"), std::string::npos)
                << response.error;
        } else {
            ASSERT_TRUE(response.ok()) << response.error;
            EXPECT_EQ(response.logits_per_step, reference.run(one)[0].logits_per_step)
                << "healthy co-batched request " << i << " must be bit-identical";
        }
    }
    const auto stats = server.stats();
    EXPECT_EQ(stats.completed, 8U);
    EXPECT_EQ(stats.failed, 1U);
    EXPECT_GE(stats.isolated_waves, 1U);
    EXPECT_EQ(stats.failed_over, 0U);
    server.shutdown();
}

TEST(FaultServer, TransientFaultsRetryToBitIdenticalResults) {
    const auto model = small_model(23);
    util::FaultPlan plan;
    plan.transient_probability = 1.0;  // every first attempt fails
    plan.transient_attempts = 1;       // ...and every retry succeeds
    core::ServerOptions options;
    options.threads = 2;
    options.fault.max_retries = 2;
    options.fault.retry_backoff_us = 50;
    options.fault.breaker_failures = 100;  // don't trip in this test
    core::Server server(std::make_shared<core::FaultyBackend>(
                            std::make_shared<core::FunctionalBackend>(model), plan),
                        options);

    std::vector<snn::SpikeTrain> trains;
    for (std::uint64_t i = 0; i < 4; ++i) {
        trains.push_back(random_train(model, 5, 500 + i));
    }
    std::vector<std::future<core::Response>> futures;
    for (auto& train : trains) {
        futures.push_back(server.submit(core::Request::view_train(train)));
    }
    core::BatchRunner reference(std::make_shared<core::FunctionalBackend>(model),
                                core::BatchOptions{.threads = 2});
    for (std::uint64_t i = 0; i < 4; ++i) {
        auto response = futures[i].get();
        ASSERT_TRUE(response.ok()) << response.error;
        EXPECT_GE(response.retries, 1U);
        std::vector<core::Request> one;
        one.push_back(core::Request::view_train(trains[i]));
        EXPECT_EQ(response.logits_per_step, reference.run(one)[0].logits_per_step)
            << "a retried request must be bit-identical to its first attempt";
    }
    const auto stats = server.stats();
    EXPECT_EQ(stats.completed, 4U);
    EXPECT_EQ(stats.failed, 0U);
    EXPECT_GE(stats.retried, 4U);
    server.shutdown();
}

TEST(FaultServer, InvalidRequestsAreNeverRetried) {
    const auto model = small_model(25);
    core::ServerOptions options;
    options.threads = 1;
    core::Server server(std::make_shared<core::FunctionalBackend>(model), options);
    // Image encodings with timesteps <= 0 throw std::invalid_argument
    // inside the backend: the request's own fault, structured as such.
    tensor::Tensor img(
        tensor::Shape{1, model.input_channels, model.input_h, model.input_w});
    auto response = server.submit(core::Request::thermometer(img, 0)).get();
    EXPECT_FALSE(response.ok());
    EXPECT_EQ(response.error_code, core::ErrorCode::kInvalidRequest);
    EXPECT_FALSE(response.error.empty());
    EXPECT_EQ(response.retries, 0U);
    const auto stats = server.stats();
    EXPECT_EQ(stats.failed, 1U);
    EXPECT_EQ(stats.retried, 0U);
    server.shutdown();
}

// -------------------------------------------------------- deadlines

TEST(FaultDeadlines, BlockedAdmissionGivesUpAtTheDeadline) {
    const auto model = small_model(31);
    auto gate = std::make_shared<Gate>(std::make_shared<core::FunctionalBackend>(model));
    core::ServerOptions options;
    options.threads = 1;
    options.max_queue = 1;
    options.backpressure = core::BackpressurePolicy::kBlock;
    core::Server server(gate, options);

    const auto train = random_train(model, 4, 600);
    auto in_flight = server.submit(core::Request::view_train(train));
    ASSERT_TRUE(eventually([&] { return server.queue_depth() == 0; }));
    auto queued = server.submit(core::Request::view_train(train));  // fills the queue

    // The queue is full and the gate is shut: this submission can only
    // resolve by deadline.
    auto doomed =
        server.submit(core::Request::view_train(train).with_deadline(30'000));
    auto response = doomed.get();
    EXPECT_EQ(response.error_code, core::ErrorCode::kDeadlineExceeded);

    gate->open();
    EXPECT_TRUE(in_flight.get().ok());
    EXPECT_TRUE(queued.get().ok());
    const auto stats = server.stats();
    EXPECT_EQ(stats.deadline_expired, 1U);
    EXPECT_EQ(stats.rejected, 1U);  // the deadline expiry counts as a refusal
    server.shutdown();
}

TEST(FaultDeadlines, ExpiredRequestsNeverOccupyAWaveSlot) {
    const auto model = small_model(33);
    auto gate = std::make_shared<Gate>(std::make_shared<core::FunctionalBackend>(model));
    core::ServerOptions options;
    options.threads = 1;
    options.backpressure = core::BackpressurePolicy::kReject;
    core::Server server(gate, options);

    const auto train = random_train(model, 4, 610);
    auto in_flight = server.submit(core::Request::view_train(train));
    ASSERT_TRUE(eventually([&] { return server.queue_depth() == 0; }));
    std::vector<std::future<core::Response>> doomed;
    for (int i = 0; i < 3; ++i) {
        doomed.push_back(
            server.submit(core::Request::view_train(train).with_deadline(20'000)));
    }
    std::this_thread::sleep_for(50ms);  // all three expire behind the gate
    gate->open();
    for (auto& future : doomed) {
        EXPECT_EQ(future.get().error_code, core::ErrorCode::kDeadlineExceeded);
    }
    EXPECT_TRUE(in_flight.get().ok());
    EXPECT_EQ(gate->ran(), 1U) << "expired requests must never reach the backend";
    const auto stats = server.stats();
    EXPECT_EQ(stats.deadline_expired, 3U);
    EXPECT_EQ(stats.failed, 3U);
    EXPECT_EQ(stats.completed, 1U);
    server.shutdown();
}

TEST(FaultDeadlines, LateCompletionResolvesAsDeadlineExceeded) {
    const auto model = small_model(35);
    auto gate = std::make_shared<Gate>(std::make_shared<core::FunctionalBackend>(model));
    core::ServerOptions options;
    options.threads = 1;
    core::Server server(gate, options);

    const auto train = random_train(model, 4, 620);
    // Dispatched immediately (idle lane) but held past its deadline.
    auto late = server.submit(core::Request::view_train(train).with_deadline(20'000));
    std::this_thread::sleep_for(50ms);
    gate->open();
    EXPECT_EQ(late.get().error_code, core::ErrorCode::kDeadlineExceeded);
    const auto stats = server.stats();
    EXPECT_EQ(stats.deadline_expired, 1U);
    EXPECT_EQ(stats.failed, 1U);
    server.shutdown();
}

// -------------------------------------------- breaker and failover

TEST(FaultBreaker, TripsAfterConsecutiveFailuresThenFailsFast) {
    const auto model = small_model(41);
    util::FaultPlan plan;
    plan.fail_first = 1'000;  // the primary never recovers in this test
    core::ServerOptions options;
    options.threads = 1;
    options.max_batch = 1;  // one request per wave: countable outcomes
    options.fault.max_retries = 0;
    options.fault.breaker_failures = 3;
    options.fault.breaker_cooldown_ms = 60'000;  // stays open
    core::Server server(std::make_shared<core::FaultyBackend>(
                            std::make_shared<core::FunctionalBackend>(model), plan),
                        options);

    const auto train = random_train(model, 4, 700);
    for (int i = 0; i < 3; ++i) {
        const auto response = server.submit(core::Request::view_train(train)).get();
        EXPECT_EQ(response.error_code, core::ErrorCode::kBackendError);
    }
    auto lane = server.lane_stats();
    EXPECT_EQ(lane.breaker, core::BreakerState::kOpen);
    EXPECT_EQ(lane.breaker_trips, 1U);
    EXPECT_FALSE(lane.has_fallback);

    // Open breaker without a fallback: fail fast, no backend call.
    const auto fast = server.submit(core::Request::view_train(train)).get();
    EXPECT_EQ(fast.error_code, core::ErrorCode::kCircuitOpen);
    EXPECT_NE(fast.error.find("circuit breaker open"), std::string::npos);
    const auto stats = server.stats();
    EXPECT_EQ(stats.failed, 4U);
    EXPECT_EQ(stats.breaker_trips, 1U);
    server.shutdown();
}

TEST(FaultBreaker, SiaLaneFailsOverAndRecoversThroughHalfOpenProbes) {
    const auto model = small_model(43);
    // A Sia lane whose first four runs fail, then recovers — the
    // acceptance scenario: trip, degrade to the functional fallback,
    // recover via half-open probes.
    util::FaultPlan plan;
    plan.fail_first = 4;
    auto primary = std::make_shared<core::FaultyBackend>(
        std::make_shared<core::SiaBackend>(model), plan);
    core::ServerOptions options;
    options.threads = 1;
    options.max_batch = 1;
    options.fault.max_retries = 0;
    options.fault.breaker_failures = 2;
    options.fault.breaker_cooldown_ms = 30;
    options.fault.breaker_probes = 2;
    core::Server server(primary, options);
    server.set_fallback(core::Server::kDefaultModel,
                        std::make_shared<core::FunctionalBackend>(model));
    EXPECT_TRUE(server.lane_stats().has_fallback);

    const auto train = random_train(model, 4, 710);
    const auto submit_one = [&] {
        return server.submit(core::Request::view_train(train)).get();
    };

    // Two primary failures (fail_first 1-2), each individually failed
    // over: the callers see healthy degraded responses while the trip
    // accumulates.
    const auto r1 = submit_one();
    const auto r2 = submit_one();
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    EXPECT_TRUE(r1.failed_over);
    EXPECT_TRUE(r2.failed_over);
    EXPECT_FALSE(r1.has_cycle_stats()) << "fallback responses are functional";
    EXPECT_EQ(server.lane_stats().breaker, core::BreakerState::kOpen);
    EXPECT_EQ(server.lane_stats().breaker_trips, 1U);

    // Open breaker: the whole wave degrades without touching the
    // primary (fail_first is not consumed).
    const auto r3 = submit_one();
    ASSERT_TRUE(r3.ok());
    EXPECT_TRUE(r3.failed_over);

    // Two probes still hit the broken primary (fail_first 3-4) and
    // re-open; both are failed over so the callers never notice.
    std::this_thread::sleep_for(40ms);
    const auto r4 = submit_one();
    ASSERT_TRUE(r4.ok());
    EXPECT_TRUE(r4.failed_over);
    EXPECT_EQ(server.lane_stats().breaker, core::BreakerState::kOpen);
    std::this_thread::sleep_for(40ms);
    const auto r5 = submit_one();
    ASSERT_TRUE(r5.ok());
    EXPECT_TRUE(r5.failed_over);

    // The primary has recovered: two successful probes close the
    // breaker and the lane serves cycle-accurate responses again.
    std::this_thread::sleep_for(40ms);
    const auto r6 = submit_one();
    const auto r7 = submit_one();
    ASSERT_TRUE(r6.ok());
    ASSERT_TRUE(r7.ok());
    EXPECT_FALSE(r6.failed_over);
    EXPECT_FALSE(r7.failed_over);
    EXPECT_EQ(server.lane_stats().breaker, core::BreakerState::kClosed);
    const auto r8 = submit_one();
    ASSERT_TRUE(r8.ok());
    EXPECT_TRUE(r8.has_cycle_stats()) << "recovered lane is cycle-accurate again";

    // Degraded and recovered responses agree bit-for-bit (the engines'
    // shared-numerics contract survives failover).
    EXPECT_EQ(r1.logits_per_step, r8.logits_per_step);

    const auto lane = server.lane_stats();
    EXPECT_EQ(lane.breaker_trips, 1U);  // re-opens after probes are not fresh trips
    EXPECT_EQ(lane.probes, 4U);         // r4, r5, r6, r7
    EXPECT_EQ(lane.failovers, 5U);      // r1-r5
    const auto stats = server.stats();
    EXPECT_EQ(stats.completed, 8U);
    EXPECT_EQ(stats.failed, 0U);
    EXPECT_EQ(stats.failed_over, 5U);
    server.shutdown();
}

// ---------------------------------------------- the acceptance storm

TEST(FaultStorm, SeededStormKeepsNonFaultedRequestsBitIdenticalWithExactLedger) {
    const auto model = small_model(51);
    const std::size_t kFunctional = 160;
    const std::size_t kSia = 48;

    util::FaultPlan fn_plan;
    fn_plan.seed = 2024;
    fn_plan.throw_probability = 0.02;
    fn_plan.transient_probability = 0.02;
    util::FaultPlan sia_plan;
    sia_plan.seed = 4048;
    sia_plan.throw_probability = 0.03;

    core::ServerOptions options;
    options.threads = 2;
    options.max_batch = 8;
    options.backpressure = core::BackpressurePolicy::kBlock;
    options.fault.max_retries = 2;
    options.fault.retry_backoff_us = 50;
    options.fault.breaker_failures = 1'000;  // isolate, don't trip
    core::Server server(options);
    server.register_model("fn", std::make_shared<core::FaultyBackend>(
                                    std::make_shared<core::FunctionalBackend>(model),
                                    fn_plan));
    server.register_model("sia", std::make_shared<core::FaultyBackend>(
                                     std::make_shared<core::SiaBackend>(model),
                                     sia_plan));

    // Mixed tenants and priorities over pre-encoded trains. Submission
    // order pins each lane's rng streams 0..N-1, so the faulted set is
    // exactly the injector's pure per-stream decision.
    const std::array<const char*, 3> tenants = {"premium", "standard", "batch"};
    const std::array<core::Priority, 3> priorities = {
        core::Priority::kHigh, core::Priority::kNormal, core::Priority::kLow};
    std::vector<snn::SpikeTrain> fn_trains, sia_trains;
    for (std::size_t i = 0; i < kFunctional; ++i) {
        fn_trains.push_back(random_train(model, 5, 900 + i));
    }
    for (std::size_t i = 0; i < kSia; ++i) {
        sia_trains.push_back(random_train(model, 4, 5000 + i));
    }
    std::vector<std::future<core::Response>> fn_futures, sia_futures;
    for (std::size_t i = 0; i < kFunctional; ++i) {
        fn_futures.push_back(server.submit(
            core::Request::view_train(fn_trains[i])
                .with("fn", tenants[i % 3], priorities[i % 3])));
    }
    for (std::size_t i = 0; i < kSia; ++i) {
        sia_futures.push_back(server.submit(
            core::Request::view_train(sia_trains[i])
                .with("sia", tenants[i % 3], priorities[i % 3])));
    }

    // Fault-free twin: the functional engine is the reference for both
    // lanes (the backends are bit-identical by construction).
    core::BatchRunner reference(std::make_shared<core::FunctionalBackend>(model),
                                core::BatchOptions{.threads = 2});
    const util::FaultInjector fn_oracle(fn_plan);
    const util::FaultInjector sia_oracle(sia_plan);

    const auto check_lane = [&](std::vector<std::future<core::Response>>& futures,
                                const std::vector<snn::SpikeTrain>& trains,
                                const util::FaultInjector& oracle,
                                std::size_t& thrown, std::size_t& transients) {
        for (std::size_t i = 0; i < futures.size(); ++i) {
            auto response = futures[i].get();  // none silently dropped
            const auto kind = oracle.decide(i);
            if (kind == util::FaultKind::kThrow) {
                ++thrown;
                EXPECT_FALSE(response.ok()) << "stream " << i;
                EXPECT_EQ(response.error_code, core::ErrorCode::kBackendError);
                EXPECT_FALSE(response.error.empty());
            } else {
                if (kind == util::FaultKind::kTransient) ++transients;
                ASSERT_TRUE(response.ok())
                    << "stream " << i << ": " << response.error;
                std::vector<core::Request> one;
                one.push_back(core::Request::view_train(trains[i]));
                EXPECT_EQ(response.logits_per_step,
                          reference.run(one)[0].logits_per_step)
                    << "non-faulted stream " << i
                    << " must be bit-identical to the fault-free run";
            }
        }
    };
    std::size_t thrown = 0, transients = 0;
    check_lane(fn_futures, fn_trains, fn_oracle, thrown, transients);
    check_lane(sia_futures, sia_trains, sia_oracle, thrown, transients);
    ASSERT_GT(thrown, 0U) << "storm injected no permanent faults; re-seed";
    ASSERT_GT(transients, 0U) << "storm injected no transient faults; re-seed";

    // The exact ledger: every submitted request is accounted once.
    const auto stats = server.stats();
    EXPECT_EQ(stats.submitted, kFunctional + kSia);
    EXPECT_EQ(stats.completed, kFunctional + kSia - thrown);
    EXPECT_EQ(stats.failed, thrown);
    EXPECT_EQ(stats.retried, transients);  // each transient retries exactly once
    EXPECT_EQ(stats.failed_over, 0U);
    EXPECT_EQ(stats.deadline_expired, 0U);
    EXPECT_EQ(stats.breaker_trips, 0U);
    EXPECT_EQ(stats.shed, 0U);
    EXPECT_EQ(stats.rejected, 0U);
    server.shutdown();
}

}  // namespace
}  // namespace sia
