// core::Server tests: concurrent submitters against both backends,
// queue-full backpressure (reject and block), shutdown-drains-queue,
// admission batching, latency stats, and the determinism contract —
// same seed + same arrival order => identical responses, regardless of
// batch formation, thread count, or backend schedule.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/backend.hpp"
#include "core/server.hpp"
#include "snn/encoding.hpp"
#include "snn/engine.hpp"
#include "util/rng.hpp"

namespace sia {
namespace {

using namespace std::chrono_literals;

// ---- compact random model/stimulus helpers (mirrors test_batch_runner) ----

snn::SnnModel small_model(std::uint64_t seed) {
    util::Rng rng(seed);
    snn::SnnModel model;
    model.input_channels = 2;
    model.input_h = 6;
    model.input_w = 6;

    snn::SnnLayer layer;
    layer.op = snn::LayerOp::kConv;
    layer.label = "conv0";
    layer.input = -1;
    auto& b = layer.main;
    b.in_channels = 2;
    b.out_channels = 4;
    b.kernel = 3;
    b.stride = 1;
    b.padding = 1;
    b.weights.resize(static_cast<std::size_t>(2 * 4 * 9));
    for (auto& w : b.weights) w = static_cast<std::int8_t>(rng.integer(-127, 127));
    b.gain.resize(4);
    b.bias.resize(4);
    for (auto& g : b.gain) g = static_cast<std::int16_t>(rng.integer(50, 2000));
    for (auto& h : b.bias) h = static_cast<std::int16_t>(rng.integer(-100, 100));
    layer.out_channels = 4;
    layer.out_h = 6;
    layer.out_w = 6;
    layer.in_h = 6;
    layer.in_w = 6;
    model.layers.push_back(std::move(layer));

    snn::SnnLayer fc;
    fc.op = snn::LayerOp::kLinear;
    fc.label = "fc";
    fc.input = 0;
    fc.spiking = false;
    fc.main.in_features = 4 * 6 * 6;
    fc.main.out_features = 4;
    fc.main.weights.resize(static_cast<std::size_t>(fc.main.in_features * 4));
    for (auto& w : fc.main.weights) w = static_cast<std::int8_t>(rng.integer(-64, 64));
    fc.main.gain.assign(4, 256);
    fc.main.bias.assign(4, 0);
    fc.out_channels = 4;
    model.layers.push_back(std::move(fc));
    model.classes = 4;
    model.validate();
    return model;
}

snn::SpikeTrain random_train(const snn::SnnModel& model, std::int64_t timesteps,
                             std::uint64_t seed) {
    util::Rng rng(seed);
    snn::SpikeTrain train(static_cast<std::size_t>(timesteps),
                          snn::SpikeMap(model.input_channels, model.input_h,
                                        model.input_w));
    for (auto& frame : train) {
        for (std::int64_t j = 0; j < frame.size(); ++j) {
            frame.set_flat(j, rng.bernoulli(0.3));
        }
    }
    return train;
}

tensor::Tensor random_image(const snn::SnnModel& model, std::uint64_t seed) {
    util::Rng rng(seed);
    tensor::Tensor img(
        tensor::Shape{1, model.input_channels, model.input_h, model.input_w});
    for (std::int64_t j = 0; j < img.numel(); ++j) img.flat(j) = rng.uniform();
    return img;
}

/// Waits (bounded) for a predicate that another thread flips.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds budget = 2000ms) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (!pred()) {
        if (std::chrono::steady_clock::now() > deadline) return false;
        std::this_thread::sleep_for(1ms);
    }
    return true;
}

/// Test backend whose run_span blocks until release() — used to hold the
/// drain loop mid-batch so tests can fill the admission queue
/// deterministically. Responses echo the request's RNG stream so routing
/// (future <-> request) is verifiable.
class GatedBackend final : public core::Backend {
public:
    explicit GatedBackend(const snn::SnnModel& model) : Backend(model) {}

    [[nodiscard]] std::string_view name() const noexcept override { return "gated"; }
    void prepare(std::size_t) override {}
    void run_span(std::size_t /*worker*/, std::span<const core::Request> requests,
                  std::span<core::Response> responses, std::size_t base,
                  std::uint64_t /*seed*/) override {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            ++entered_;
            cv_.wait(lock, [this] { return open_; });
        }
        for (std::size_t i = 0; i < requests.size(); ++i) {
            core::Response r;
            r.logits_per_step = {{static_cast<std::int64_t>(
                requests[i].rng_stream.value_or(base + i))}};
            r.timesteps = 1;
            responses[i] = std::move(r);
        }
    }

    void release() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            open_ = true;
        }
        cv_.notify_all();
    }
    [[nodiscard]] int entered() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return entered_;
    }

private:
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool open_ = false;
    int entered_ = 0;
};

/// Delegating backend that holds every wave until release() — lets a
/// test pin a wave in flight on a REAL backend and queue requests
/// behind it deterministically (unlike GatedBackend, the inner backend
/// actually encodes and runs the requests once released).
class HoldWaves final : public core::Backend {
public:
    HoldWaves(const snn::SnnModel& model, std::shared_ptr<core::Backend> inner)
        : Backend(model), inner_(std::move(inner)) {}

    [[nodiscard]] std::string_view name() const noexcept override {
        return "hold-waves";
    }
    void prepare(std::size_t workers) override { inner_->prepare(workers); }
    void run_span(std::size_t worker, std::span<const core::Request> requests,
                  std::span<core::Response> responses, std::size_t base,
                  std::uint64_t seed) override {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            ++entered_;
            cv_.wait(lock, [this] { return open_; });
        }
        inner_->run_span(worker, requests, responses, base, seed);
    }

    void release() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            open_ = true;
        }
        cv_.notify_all();
    }
    [[nodiscard]] int entered() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return entered_;
    }

private:
    std::shared_ptr<core::Backend> inner_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool open_ = false;
    int entered_ = 0;
};

// ---- serving correctness under concurrency, per backend ----

TEST(Server, ConcurrentSubmittersFunctionalBackend) {
    const auto model = small_model(7);
    constexpr std::size_t kSubmitters = 4;
    constexpr std::size_t kPerSubmitter = 6;

    // Sequential references, one engine, per submitter x request.
    snn::FunctionalEngine engine(model);
    std::vector<std::vector<snn::SpikeTrain>> trains(kSubmitters);
    std::vector<std::vector<snn::RunResult>> reference(kSubmitters);
    for (std::size_t s = 0; s < kSubmitters; ++s) {
        for (std::size_t i = 0; i < kPerSubmitter; ++i) {
            trains[s].push_back(random_train(model, 4, 100 * s + i));
            reference[s].push_back(engine.run(trains[s][i]));
        }
    }

    core::Server server(std::make_shared<core::FunctionalBackend>(model),
                        {.threads = 2, .max_batch = 4});
    std::vector<std::thread> submitters;
    std::vector<std::vector<std::future<core::Response>>> futures(kSubmitters);
    for (std::size_t s = 0; s < kSubmitters; ++s) {
        submitters.emplace_back([&, s] {
            for (std::size_t i = 0; i < kPerSubmitter; ++i) {
                futures[s].push_back(
                    server.submit(core::Request::view_train(trains[s][i])));
            }
        });
    }
    for (auto& t : submitters) t.join();

    for (std::size_t s = 0; s < kSubmitters; ++s) {
        for (std::size_t i = 0; i < kPerSubmitter; ++i) {
            SCOPED_TRACE("submitter=" + std::to_string(s) + " item=" +
                         std::to_string(i));
            const auto response = futures[s][i].get();
            EXPECT_EQ(response.logits_per_step, reference[s][i].logits_per_step);
            EXPECT_EQ(response.spike_counts, reference[s][i].spike_counts);
        }
    }

    server.shutdown();
    const auto stats = server.stats();
    EXPECT_EQ(stats.submitted, kSubmitters * kPerSubmitter);
    EXPECT_EQ(stats.completed, kSubmitters * kPerSubmitter);
    EXPECT_EQ(stats.rejected, 0U);
    EXPECT_EQ(stats.failed, 0U);
    EXPECT_EQ(stats.latency_us.count(), kSubmitters * kPerSubmitter);
    EXPECT_GT(stats.latency_us.p50(), 0.0);
    EXPECT_LE(stats.latency_us.p50(), stats.latency_us.p99());
    EXPECT_GE(stats.batches, 1U);
}

TEST(Server, ConcurrentSubmittersSiaBackend) {
    const auto model = small_model(11);
    constexpr std::size_t kSubmitters = 2;
    constexpr std::size_t kPerSubmitter = 3;

    snn::FunctionalEngine engine(model);
    std::vector<std::vector<snn::SpikeTrain>> trains(kSubmitters);
    std::vector<std::vector<snn::RunResult>> reference(kSubmitters);
    for (std::size_t s = 0; s < kSubmitters; ++s) {
        for (std::size_t i = 0; i < kPerSubmitter; ++i) {
            trains[s].push_back(random_train(model, 3, 7 * s + i + 1));
            reference[s].push_back(engine.run(trains[s][i]));
        }
    }

    core::Server server(std::make_shared<core::SiaBackend>(model),
                        {.threads = 2, .max_batch = 3});
    std::vector<std::thread> submitters;
    std::vector<std::vector<std::future<core::Response>>> futures(kSubmitters);
    for (std::size_t s = 0; s < kSubmitters; ++s) {
        submitters.emplace_back([&, s] {
            for (std::size_t i = 0; i < kPerSubmitter; ++i) {
                futures[s].push_back(
                    server.submit(core::Request::view_train(trains[s][i])));
            }
        });
    }
    for (auto& t : submitters) t.join();

    for (std::size_t s = 0; s < kSubmitters; ++s) {
        for (std::size_t i = 0; i < kPerSubmitter; ++i) {
            SCOPED_TRACE("submitter=" + std::to_string(s) + " item=" +
                         std::to_string(i));
            const auto response = futures[s][i].get();
            // Shared numerics with the functional reference, plus the
            // cycle stats only the simulated accelerator produces.
            EXPECT_EQ(response.logits_per_step, reference[s][i].logits_per_step);
            EXPECT_EQ(response.spike_counts, reference[s][i].spike_counts);
            EXPECT_TRUE(response.has_cycle_stats());
            EXPECT_GT(response.total_cycles(), 0);
        }
    }
    server.shutdown();
    EXPECT_EQ(server.stats().completed, kSubmitters * kPerSubmitter);
}

// ---- backpressure ----

TEST(Server, RejectPolicyShedsLoadWhenQueueFull) {
    const auto model = small_model(7);
    auto backend = std::make_shared<GatedBackend>(model);
    core::Server server(backend, {.threads = 1,
                                  .max_queue = 2,
                                  .max_batch = 1,
                                  .backpressure = core::BackpressurePolicy::kReject});

    // First request is dequeued into the (gated) in-flight batch...
    auto f0 = server.submit(core::Request{});
    ASSERT_TRUE(eventually([&] { return backend->entered() >= 1; }));
    ASSERT_TRUE(eventually([&] { return server.queue_depth() == 0; }));

    // ...then the queue fills to max_queue...
    auto f1 = server.submit(core::Request{});
    auto f2 = server.submit(core::Request{});
    ASSERT_EQ(server.queue_depth(), 2U);

    // ...and the next submissions are shed, not blocked.
    EXPECT_FALSE(server.try_submit(core::Request{}).has_value());
    EXPECT_THROW((void)server.submit(core::Request{}), std::runtime_error);

    backend->release();
    EXPECT_EQ(f0.get().logits_per_step[0][0], 0);
    EXPECT_EQ(f1.get().logits_per_step[0][0], 1);
    EXPECT_EQ(f2.get().logits_per_step[0][0], 2);

    server.shutdown();
    const auto stats = server.stats();
    EXPECT_EQ(stats.submitted, 3U);
    EXPECT_EQ(stats.completed, 3U);
    EXPECT_EQ(stats.rejected, 2U);
}

TEST(Server, BlockPolicyWaitsForSpaceInsteadOfRejecting) {
    const auto model = small_model(7);
    auto backend = std::make_shared<GatedBackend>(model);
    core::Server server(backend, {.threads = 1,
                                  .max_queue = 1,
                                  .max_batch = 1,
                                  .backpressure = core::BackpressurePolicy::kBlock});

    auto f0 = server.submit(core::Request{});
    ASSERT_TRUE(eventually([&] { return server.queue_depth() == 0; }));
    auto f1 = server.submit(core::Request{});  // fills the queue

    // A third submission must block (not throw, not drop).
    std::atomic<bool> submitted{false};
    std::future<core::Response> f2;
    std::thread blocked([&] {
        f2 = server.submit(core::Request{});
        submitted.store(true);
    });
    std::this_thread::sleep_for(50ms);
    EXPECT_FALSE(submitted.load());  // still waiting for space

    backend->release();  // drain; space frees; the blocked submit proceeds
    ASSERT_TRUE(eventually([&] { return submitted.load(); }));
    blocked.join();

    EXPECT_EQ(f0.get().logits_per_step[0][0], 0);
    EXPECT_EQ(f1.get().logits_per_step[0][0], 1);
    EXPECT_EQ(f2.get().logits_per_step[0][0], 2);
    server.shutdown();
    EXPECT_EQ(server.stats().rejected, 0U);
    EXPECT_EQ(server.stats().completed, 3U);
}

// ---- shutdown ----

TEST(Server, ShutdownDrainsEveryQueuedRequest) {
    const auto model = small_model(7);
    auto backend = std::make_shared<GatedBackend>(model);
    core::Server server(backend, {.threads = 1,
                                  .max_queue = 16,
                                  .max_batch = 2});

    std::vector<std::future<core::Response>> futures;
    for (int i = 0; i < 7; ++i) futures.push_back(server.submit(core::Request{}));
    ASSERT_TRUE(eventually([&] { return backend->entered() >= 1; }));

    // Release the gate concurrently with shutdown: shutdown must block
    // until the whole queue has drained through the backend.
    std::thread releaser([&] {
        std::this_thread::sleep_for(20ms);
        backend->release();
    });
    server.shutdown();
    releaser.join();

    for (std::size_t i = 0; i < futures.size(); ++i) {
        ASSERT_EQ(futures[i].wait_for(0s), std::future_status::ready) << i;
        EXPECT_EQ(futures[i].get().logits_per_step[0][0],
                  static_cast<std::int64_t>(i));
    }
    const auto stats = server.stats();
    EXPECT_EQ(stats.completed, 7U);
    EXPECT_EQ(stats.failed, 0U);
    EXPECT_EQ(server.queue_depth(), 0U);
}

TEST(Server, SubmitAfterShutdownIsRefused) {
    const auto model = small_model(7);
    core::Server server(std::make_shared<core::FunctionalBackend>(model),
                        {.threads = 1});
    server.shutdown();
    EXPECT_TRUE(server.stopping());
    EXPECT_FALSE(server.try_submit(core::Request{}).has_value());
    EXPECT_THROW((void)server.submit(core::Request{}), std::runtime_error);
    EXPECT_EQ(server.stats().rejected, 2U);
    server.shutdown();  // idempotent
}

// ---- continuous batching ----

TEST(Server, ContinuousBatchingFormsWavesFromTheBacklog) {
    const auto model = small_model(7);
    auto backend = std::make_shared<GatedBackend>(model);
    core::Server server(backend, {.threads = 1,
                                  .max_queue = 16,
                                  .max_batch = 8});

    // While the gate holds the first dispatch, six more requests queue
    // up; the next batch must take all of them at once.
    auto f0 = server.submit(core::Request{});
    ASSERT_TRUE(eventually([&] { return backend->entered() >= 1; }));
    std::vector<std::future<core::Response>> rest;
    for (int i = 0; i < 6; ++i) rest.push_back(server.submit(core::Request{}));
    ASSERT_EQ(server.queue_depth(), 6U);

    backend->release();
    (void)f0.get();
    for (auto& f : rest) (void)f.get();
    server.shutdown();

    const auto stats = server.stats();
    EXPECT_EQ(stats.completed, 7U);
    EXPECT_EQ(stats.batches, 2U);  // {f0}, then the six queued together
    EXPECT_GT(stats.mean_batch_size(), 1.0);
}

// ---- determinism ----

TEST(Server, SameSeedSameArrivalOrderSameResponses) {
    const auto model = small_model(9);
    const std::int64_t timesteps = 5;
    std::vector<tensor::Tensor> images;
    for (int i = 0; i < 12; ++i) images.push_back(random_image(model, 50 + i));

    // Two servers with wildly different wave formation (thread counts,
    // batch caps, backends' dispatch) must produce bit-identical
    // responses for the same seed and arrival order, because RNG
    // streams are pinned to the admission sequence.
    const auto run_server = [&](core::ServerOptions opts) {
        opts.seed = 2024;
        core::Server server(std::make_shared<core::FunctionalBackend>(model), opts);
        std::vector<std::future<core::Response>> futures;
        for (const auto& img : images) {
            futures.push_back(
                server.submit(core::Request::view_poisson(img, timesteps)));
        }
        std::vector<core::Response> responses;
        for (auto& f : futures) responses.push_back(f.get());
        server.shutdown();
        return responses;
    };

    const auto a = run_server({.threads = 1, .max_batch = 1});
    const auto b = run_server({.threads = 4, .max_batch = 8});
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("item=" + std::to_string(i));
        EXPECT_EQ(a[i].logits_per_step, b[i].logits_per_step);
        EXPECT_EQ(a[i].spike_counts, b[i].spike_counts);
    }

    // And the server path equals the plain batch path with pinned
    // streams — the serving loop adds no hidden nondeterminism.
    core::BatchRunner runner(std::make_shared<core::FunctionalBackend>(model),
                             {.threads = 2, .seed = 2024});
    std::vector<core::Request> requests;
    for (const auto& img : images) {
        requests.push_back(core::Request::view_poisson(img, timesteps));
    }
    const auto direct = runner.run(requests);
    for (std::size_t i = 0; i < direct.size(); ++i) {
        EXPECT_EQ(a[i].logits_per_step, direct[i].logits_per_step);
    }
}

// ---- shutdown / race regressions (TSan tier) ----

// Submit while shutdown is mid-drain: the gate holds the dispatcher
// inside the first wave, so shutdown() is deterministically blocked in
// its drain when the late submit arrives — it must be refused, never
// enqueued into a dying lane or left hanging, and every request that
// was admitted before shutdown must still complete.
TEST(ServerRaces, SubmitDuringDrainIsRefused) {
    const auto model = small_model(7);
    auto backend = std::make_shared<GatedBackend>(model);
    core::Server server(backend, {.threads = 1, .max_queue = 16, .max_batch = 2});

    std::vector<std::future<core::Response>> futures;
    for (int i = 0; i < 5; ++i) futures.push_back(server.submit(core::Request{}));
    ASSERT_TRUE(eventually([&] { return backend->entered() >= 1; }));

    std::thread shutter([&] { server.shutdown(); });
    ASSERT_TRUE(eventually([&] { return server.stopping(); }));

    // The drain is provably still in progress (the gate is closed), so
    // this submit races with it — and must lose cleanly.
    EXPECT_FALSE(server.try_submit(core::Request{}).has_value());
    EXPECT_THROW((void)server.submit(core::Request{}), std::runtime_error);

    backend->release();
    shutter.join();
    for (std::size_t i = 0; i < futures.size(); ++i) {
        ASSERT_EQ(futures[i].wait_for(0s), std::future_status::ready) << i;
        EXPECT_EQ(futures[i].get().logits_per_step[0][0],
                  static_cast<std::int64_t>(i));
    }
    const auto stats = server.stats();
    EXPECT_EQ(stats.completed, 5U);
    EXPECT_EQ(stats.rejected, 2U);
}

// A submitter blocked on queue space (kBlock) when shutdown starts must
// neither hang nor be silently enqueued into the dying lane: it wakes
// and is refused with a rejection that names kShuttingDown, so callers
// can tell a shutdown race apart from an unknown model or a full queue.
TEST(ServerRaces, BlockedSubmitterRacingShutdownGetsTaggedRejection) {
    const auto model = small_model(7);
    auto backend = std::make_shared<GatedBackend>(model);
    core::Server server(backend, {.threads = 1,
                                  .max_queue = 1,
                                  .max_batch = 1,
                                  .backpressure = core::BackpressurePolicy::kBlock});

    auto in_flight = server.submit(core::Request{});
    ASSERT_TRUE(eventually([&] { return backend->entered() >= 1; }));
    auto queued = server.submit(core::Request{});  // fills the queue

    // This submitter blocks for space that will never come: the gate is
    // closed, so the only wake-up is shutdown itself.
    std::string rejection;
    std::thread blocked([&] {
        try {
            (void)server.submit(core::Request{});
            rejection = "(not rejected)";
        } catch (const std::runtime_error& error) {
            rejection = error.what();
        }
    });
    std::this_thread::sleep_for(30ms);  // let it reach the space wait

    std::thread shutter([&] { server.shutdown(); });
    ASSERT_TRUE(eventually([&] { return server.stopping(); }));
    blocked.join();  // must wake promptly — a hang fails the test budget
    EXPECT_NE(rejection.find("kShuttingDown"), std::string::npos) << rejection;

    // A post-shutdown submit carries the same tag.
    backend->release();
    shutter.join();
    try {
        (void)server.submit(core::Request{});
        FAIL() << "submit after shutdown must throw";
    } catch (const std::runtime_error& error) {
        EXPECT_NE(std::string(error.what()).find("kShuttingDown"),
                  std::string::npos)
            << error.what();
    }

    // The requests admitted before shutdown still completed.
    EXPECT_TRUE(in_flight.get().ok());
    EXPECT_TRUE(queued.get().ok());
    const auto stats = server.stats();
    EXPECT_EQ(stats.completed, 2U);
    EXPECT_EQ(stats.rejected, 2U);
}

// Reload racing shutdown and submitters: a barrier releases all three
// at once, and the invariants must hold for every legal interleaving —
// each submitted future resolves exactly once (value or clean refusal),
// the reload either applies or the server was already stopping, and the
// ledger balances (submitted == completed + failed, nothing lost).
TEST(ServerRaces, ReloadDuringDrainKeepsTheLedgerConsistent) {
    const auto model = small_model(13);
    for (int round = 0; round < 3; ++round) {
        core::Server server(std::make_shared<core::FunctionalBackend>(model),
                            {.threads = 2, .max_queue = 64, .max_batch = 4});
        // Seed the queue so the drain has real work.
        std::vector<std::future<core::Response>> warm;
        for (int i = 0; i < 6; ++i) {
            warm.push_back(server.submit(
                core::Request::from_train(random_train(model, 3, 40 + i))));
        }

        std::atomic<int> late_accepted{0};
        std::atomic<int> late_refused{0};
        std::vector<std::future<core::Response>> late(8);
        std::mutex late_mutex;

        // threads: 1 shutter + 1 reloader + 2 submitters.
        std::barrier barrier(4);
        std::thread shutter([&] {
            barrier.arrive_and_wait();
            server.shutdown();
        });
        std::thread reloader([&] {
            barrier.arrive_and_wait();
            try {
                server.reload_model(core::Server::kDefaultModel,
                                    std::make_shared<core::FunctionalBackend>(model));
            } catch (const std::exception&) {
                // acceptable only if the lane was already gone; with a
                // default-registered lane it never is.
                ADD_FAILURE() << "reload_model threw during drain";
            }
        });
        std::vector<std::thread> submitters;
        for (int s = 0; s < 2; ++s) {
            submitters.emplace_back([&, s] {
                barrier.arrive_and_wait();
                for (int i = 0; i < 4; ++i) {
                    auto f = server.try_submit(
                        core::Request::from_train(random_train(model, 3, 80 + i)));
                    if (f) {
                        const std::lock_guard<std::mutex> lock(late_mutex);
                        late[static_cast<std::size_t>(4 * s + i)] = std::move(*f);
                        late_accepted.fetch_add(1);
                    } else {
                        late_refused.fetch_add(1);
                    }
                }
            });
        }
        shutter.join();
        reloader.join();
        for (auto& t : submitters) t.join();

        for (auto& f : warm) EXPECT_NO_THROW((void)f.get());
        for (auto& f : late) {
            if (f.valid()) {
                EXPECT_NO_THROW((void)f.get());
            }
        }
        const auto stats = server.stats();
        EXPECT_EQ(stats.reloads, 1U);
        EXPECT_EQ(stats.submitted, 6U + static_cast<std::size_t>(late_accepted.load()));
        EXPECT_EQ(stats.completed + stats.failed, stats.submitted);
        EXPECT_EQ(stats.failed, 0U);
        EXPECT_EQ(stats.rejected, static_cast<std::size_t>(late_refused.load()));
        EXPECT_EQ(server.queue_depth(), 0U);
    }
}

// Two submitters racing on an already-full kReject queue, lined up on a
// barrier: both must be refused (same priority — nothing to shed), the
// queue must not over-admit, and the queued requests must be untouched.
TEST(ServerRaces, ConcurrentRejectsOnFullQueueShedNothing) {
    const auto model = small_model(7);
    auto backend = std::make_shared<GatedBackend>(model);
    core::Server server(backend, {.threads = 1,
                                  .max_queue = 2,
                                  .max_batch = 1,
                                  .backpressure = core::BackpressurePolicy::kReject});

    auto f0 = server.submit(core::Request{});  // held in flight by the gate
    ASSERT_TRUE(eventually([&] { return backend->entered() >= 1; }));
    auto f1 = server.submit(core::Request{});
    auto f2 = server.submit(core::Request{});
    ASSERT_EQ(server.queue_depth(), 2U);

    std::barrier barrier(2);
    std::atomic<int> refused{0};
    std::vector<std::thread> racers;
    for (int r = 0; r < 2; ++r) {
        racers.emplace_back([&] {
            barrier.arrive_and_wait();
            if (!server.try_submit(core::Request{}).has_value()) refused.fetch_add(1);
        });
    }
    for (auto& t : racers) t.join();
    EXPECT_EQ(refused.load(), 2);
    EXPECT_EQ(server.queue_depth(), 2U);

    backend->release();
    EXPECT_EQ(f0.get().logits_per_step[0][0], 0);
    EXPECT_EQ(f1.get().logits_per_step[0][0], 1);
    EXPECT_EQ(f2.get().logits_per_step[0][0], 2);
    server.shutdown();
    EXPECT_EQ(server.stats().shed, 0U);
    EXPECT_EQ(server.stats().rejected, 2U);
}

// ---- borrowed views must not dangle across async dispatch ----

// Regression: a view_* request references caller memory, but submit()
// returns before any worker encodes it. The server must deep-copy the
// view at admission; without that, mutating (or freeing) the buffer
// after submit() corrupts the inference. The gate holds a wave in
// flight so the view request is deterministically still queued when
// the buffer is clobbered.
TEST(Server, BorrowedImageViewCopiedAtAdmission) {
    const auto model = small_model(23);
    snn::FunctionalEngine engine(model);
    const tensor::Tensor original = random_image(model, 31);
    const auto reference = engine.run(snn::encode_thermometer(original, 4));

    auto gate = std::make_shared<HoldWaves>(
        model, std::make_shared<core::FunctionalBackend>(model));
    core::Server server(gate, {.threads = 1});
    auto blocker = server.submit(core::Request::from_train(random_train(model, 2, 1)));
    ASSERT_TRUE(eventually([&] { return gate->entered() >= 1; }));

    tensor::Tensor img = random_image(model, 31);  // same content as `original`
    auto future = server.submit(core::Request::view_thermometer(img, 4));
    // Clobber the borrowed buffer right after submit returns — the
    // wave that will encode it has not even formed yet.
    for (std::int64_t j = 0; j < img.numel(); ++j) img.flat(j) = 0.0F;

    gate->release();
    blocker.get();
    const auto response = future.get();
    EXPECT_EQ(response.logits_per_step, reference.logits_per_step);
    server.shutdown();
}

TEST(Server, BorrowedTrainViewCopiedAtAdmission) {
    const auto model = small_model(29);
    snn::FunctionalEngine engine(model);
    const auto reference = engine.run(random_train(model, 4, 77));

    auto gate = std::make_shared<HoldWaves>(
        model, std::make_shared<core::FunctionalBackend>(model));
    core::Server server(gate, {.threads = 1});
    auto blocker = server.submit(core::Request::from_train(random_train(model, 2, 1)));
    ASSERT_TRUE(eventually([&] { return gate->entered() >= 1; }));

    snn::SpikeTrain train = random_train(model, 4, 77);
    auto future = server.submit(core::Request::view_train(train));
    train = random_train(model, 4, 78);  // clobber while still queued

    gate->release();
    blocker.get();
    const auto response = future.get();
    EXPECT_EQ(response.logits_per_step, reference.logits_per_step);
    server.shutdown();
}

}  // namespace
}  // namespace sia
