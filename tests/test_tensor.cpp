// Tensor and shape tests.
#include <gtest/gtest.h>

#include "tensor/tensor.hpp"

namespace sia::tensor {
namespace {

TEST(Shape, BasicProperties) {
    const Shape s{2, 3, 4, 5};
    EXPECT_EQ(s.rank(), 4U);
    EXPECT_EQ(s.numel(), 120);
    EXPECT_EQ(s[2], 4);
    EXPECT_EQ(s.to_string(), "[2, 3, 4, 5]");
}

TEST(Shape, Equality) {
    EXPECT_EQ((Shape{2, 3}), (Shape{2, 3}));
    EXPECT_NE((Shape{2, 3}), (Shape{3, 2}));
    EXPECT_NE((Shape{2, 3}), (Shape{2, 3, 1}));
}

TEST(Shape, RejectsBadDims) {
    EXPECT_THROW((Shape{0, 1}), std::invalid_argument);
    EXPECT_THROW((Shape{-1}), std::invalid_argument);
    EXPECT_THROW((Shape{1, 1, 1, 1, 1}), std::invalid_argument);
}

TEST(Tensor, ZeroInitialised) {
    const Tensor t(Shape{2, 3});
    for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.flat(i), 0.0F);
}

TEST(Tensor, At4dIndexing) {
    Tensor t(Shape{2, 3, 4, 5});
    t.at(1, 2, 3, 4) = 42.0F;
    EXPECT_EQ(t.flat(t.numel() - 1), 42.0F);
    t.at(0, 0, 0, 0) = 7.0F;
    EXPECT_EQ(t.flat(0), 7.0F);
}

TEST(Tensor, At2dIndexing) {
    Tensor t(Shape{3, 4});
    t.at(2, 3) = 1.5F;
    EXPECT_EQ(t.flat(11), 1.5F);
}

TEST(Tensor, DataSizeMustMatch) {
    EXPECT_THROW(Tensor(Shape{2, 2}, std::vector<float>{1.0F}), std::invalid_argument);
}

TEST(Tensor, ReshapePreservesData) {
    Tensor t(Shape{2, 6});
    t.flat(7) = 3.0F;
    const Tensor r = t.reshaped(Shape{3, 4});
    EXPECT_EQ(r.flat(7), 3.0F);
    EXPECT_THROW(t.reshaped(Shape{5, 5}), std::invalid_argument);
}

TEST(Tensor, AddAndScale) {
    Tensor a = ones(Shape{4});
    const Tensor b = ones(Shape{4});
    a.add_(b);
    a.scale_(3.0F);
    for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(a.flat(i), 6.0F);
    Tensor c(Shape{3});
    EXPECT_THROW(a.add_(c), std::invalid_argument);
}

TEST(Tensor, Reductions) {
    Tensor t(Shape{3});
    t.flat(0) = -5.0F;
    t.flat(1) = 2.0F;
    t.flat(2) = 1.0F;
    EXPECT_FLOAT_EQ(t.sum(), -2.0F);
    EXPECT_FLOAT_EQ(t.abs_max(), 5.0F);
}

TEST(Tensor, RandnDeterministic) {
    util::Rng r1(5);
    util::Rng r2(5);
    Tensor a(Shape{32});
    Tensor b(Shape{32});
    a.randn_(r1, 1.0F);
    b.randn_(r2, 1.0F);
    for (std::int64_t i = 0; i < 32; ++i) EXPECT_EQ(a.flat(i), b.flat(i));
}

}  // namespace
}  // namespace sia::tensor
