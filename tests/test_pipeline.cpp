// End-to-end pipeline tests (Fig. 1 flow) on a small VGG + synthetic
// data. These are the slowest tests in the suite; geometry is kept small
// so the whole file runs in tens of seconds on one core.
#include <gtest/gtest.h>

#include "core/hybrid.hpp"
#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "nn/vgg.hpp"

namespace sia::core {
namespace {

class PipelineFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        data::SyntheticConfig dcfg;
        dcfg.classes = 4;
        dcfg.train_per_class = 40;
        dcfg.test_per_class = 10;
        dcfg.size = 16;
        dcfg.noise_stddev = 0.25F;
        data_ = new data::TrainTest(data::make_synthetic(dcfg));

        util::Rng rng(7);
        nn::VggConfig mcfg;
        mcfg.width = 4;
        mcfg.classes = 4;
        mcfg.input_size = 16;
        model_ = new nn::Vgg11(mcfg, rng);

        PipelineConfig pcfg;
        pcfg.train.epochs = 3;
        pcfg.train.batch_size = 16;
        pcfg.levels = 2;
        pcfg.finetune_epochs = 2;
        pcfg.convert.host_front_layers = 1;
        const Pipeline pipeline(pcfg);
        result_ = new PipelineResult(pipeline.run(*model_, data_->train, data_->test));
    }

    static void TearDownTestSuite() {
        delete result_;
        delete model_;
        delete data_;
        result_ = nullptr;
        model_ = nullptr;
        data_ = nullptr;
    }

    static data::TrainTest* data_;
    static nn::Vgg11* model_;
    static PipelineResult* result_;
};

data::TrainTest* PipelineFixture::data_ = nullptr;
nn::Vgg11* PipelineFixture::model_ = nullptr;
PipelineResult* PipelineFixture::result_ = nullptr;

TEST_F(PipelineFixture, AnnLearnsTask) {
    EXPECT_GT(result_->ann_accuracy, 0.7);  // chance = 0.25
}

TEST_F(PipelineFixture, QuantizedAnnWithinReasonOfAnn) {
    // L=2 activations are harsh on a 160-sample toy task; the paper-
    // scale benches hold a much tighter gap.
    EXPECT_GT(result_->qann_accuracy, result_->ann_accuracy - 0.25);
}

TEST_F(PipelineFixture, StepSizesRecordedAndPositive) {
    ASSERT_EQ(result_->step_sizes.size(), 8U);  // VGG-11: 8 conv activations
    for (const float s : result_->step_sizes) EXPECT_GT(s, 0.0F);
}

TEST_F(PipelineFixture, SnnModelStructure) {
    // host_front_layers=1: 7 on-accelerator convs + FC readout.
    EXPECT_EQ(result_->snn.layers.size(), 8U);
    EXPECT_FALSE(result_->snn.layers.back().spiking);
    EXPECT_NO_THROW(result_->snn.validate());
}

TEST_F(PipelineFixture, SnnAccuracyConvergesTowardAnn) {
    const HybridFrontEnd fe(model_->ir(), 1);
    const InputEncoder enc = [&](const tensor::Tensor& img, std::int64_t timesteps) {
        return fe.encode(img, timesteps);
    };
    const auto acc = evaluate_snn_over_time(result_->snn, data_->test, 16, enc);
    // Monotone-ish improvement: late accuracy beats early accuracy.
    EXPECT_GT(acc[15], acc[0]);
    // Within 10 points of the quantized ANN by T=16 on this toy task.
    EXPECT_GT(acc[15], result_->qann_accuracy - 0.10);
}

TEST_F(PipelineFixture, SpikeRatesInPlausibleBand) {
    const HybridFrontEnd fe(model_->ir(), 1);
    const InputEncoder enc = [&](const tensor::Tensor& img, std::int64_t timesteps) {
        return fe.encode(img, timesteps);
    };
    const auto profile =
        measure_spike_rates(result_->snn, data_->test.take(8), 8, enc);
    ASSERT_EQ(profile.rates.size(), 7U);  // spiking layers only
    for (const double r : profile.rates) {
        EXPECT_GE(r, 0.0);
        EXPECT_LE(r, 1.0);
    }
    // Paper reports ~0.12-0.16 average; anything in (0, 0.6) is sane here.
    EXPECT_GT(profile.overall, 0.0);
    EXPECT_LT(profile.overall, 0.6);
}

TEST_F(PipelineFixture, HybridEncoderBeatsPixelEncoderAtLowT) {
    const HybridFrontEnd fe(model_->ir(), 1);
    const InputEncoder enc = [&](const tensor::Tensor& img, std::int64_t timesteps) {
        return fe.encode(img, timesteps);
    };
    const auto hybrid_acc = evaluate_snn_over_time(result_->snn, data_->test, 8, enc);

    // Re-convert without the host front end for the pixel-coded variant.
    ConvertOptions opts;
    const auto full_model = AnnToSnnConverter(opts).convert(model_->ir());
    const auto pixel_acc = evaluate_snn_over_time(full_model, data_->test, 8);
    EXPECT_GE(hybrid_acc[7], pixel_acc[7] - 0.05);
}

TEST_F(PipelineFixture, HybridFrontEndValidation) {
    const auto ir = model_->ir();
    EXPECT_THROW(HybridFrontEnd(ir, 0), std::invalid_argument);
    EXPECT_THROW(HybridFrontEnd(ir, 100), std::invalid_argument);
    EXPECT_NO_THROW(HybridFrontEnd(ir, 2));
}

}  // namespace
}  // namespace sia::core
