// Hardware-model tests: FPGA resource roll-up vs Table III, power budget
// vs the 1.54 W board figure, ASIC projection vs the paper's 40 nm
// numbers, prior-art derived columns, MAC-array baseline.
#include <gtest/gtest.h>

#include "hw/asic.hpp"
#include "hw/mac_baseline.hpp"
#include "hw/power.hpp"
#include "hw/prior_art.hpp"
#include "hw/resources.hpp"

namespace sia::hw {
namespace {

TEST(Resources, TotalsMatchTableIII) {
    const sim::SiaConfig cfg;
    const ResourceReport rep = estimate_resources(cfg);
    EXPECT_EQ(rep.total.lut, 11932);
    EXPECT_EQ(rep.total.ff, 8157);
    EXPECT_EQ(rep.total.dsp, 17);
    EXPECT_EQ(rep.total.bram36, 95);
    EXPECT_EQ(rep.total.lutram, 158);
    EXPECT_EQ(rep.total.bufg, 1);
}

TEST(Resources, UtilisationPercentagesMatchTableIII) {
    const ResourceReport rep = estimate_resources(sim::SiaConfig{});
    EXPECT_NEAR(rep.lut_pct(), 22.43, 0.01);
    EXPECT_NEAR(rep.ff_pct(), 7.74, 0.05);   // paper prints 7.67 for both FF and DSP
    EXPECT_NEAR(rep.dsp_pct(), 7.73, 0.05);
    EXPECT_NEAR(rep.bram_pct(), 67.86, 0.01);
    EXPECT_NEAR(rep.lutram_pct(), 0.90, 0.01);
    EXPECT_NEAR(rep.bufg_pct(), 3.13, 0.01);
}

TEST(Resources, ScalesWithPeCount) {
    sim::SiaConfig big;
    big.pe_rows = 16;  // 128 PEs
    const auto rep_big = estimate_resources(big);
    const auto rep_small = estimate_resources(sim::SiaConfig{});
    EXPECT_GT(rep_big.total.lut, rep_small.total.lut);
}

TEST(Resources, Bram36Rounding) {
    EXPECT_EQ(bram36_for_bytes(0), 0);
    EXPECT_EQ(bram36_for_bytes(1), 1);
    EXPECT_EQ(bram36_for_bytes(4608), 1);
    EXPECT_EQ(bram36_for_bytes(4609), 2);
    EXPECT_EQ(bram36_for_bytes(128 * 1024), 29);
}

TEST(Power, RatedBoardPowerMatchesPaper) {
    EXPECT_NEAR(rated_board_watts(), 1.54, 0.005);
}

TEST(Power, PeakEfficiencyMatchesTableIV) {
    const sim::SiaConfig cfg;
    // 38.4 GOPS / 1.54 W = 24.93 GOPS/W.
    EXPECT_NEAR(cfg.peak_gops() / rated_board_watts(), 24.93, 0.05);
}

TEST(Asic, ProjectionMatchesSectionV) {
    const AsicProjection proj = project_asic(sim::SiaConfig{});
    EXPECT_NEAR(proj.throughput_gops, 192.0, 0.5);  // 38.4 x 5
    EXPECT_NEAR(proj.area_mm2, 11.0, 0.5);
    EXPECT_NEAR(proj.power_w, 2.17, 0.05);
    EXPECT_DOUBLE_EQ(proj.clock_mhz, 500.0);
}

TEST(PriorArt, TableRowsAndDerivedColumns) {
    const auto specs = prior_art_table();
    ASSERT_EQ(specs.size(), 5U);

    // [18]: 198.1 GOPS / 576 PEs = 0.343 GOPS/PE (paper column).
    EXPECT_NEAR(*specs[0].gops_per_pe(), 0.343, 0.001);
    EXPECT_NEAR(*specs[0].gops_per_dsp(), 0.34, 0.01);
    EXPECT_FALSE(specs[0].gops_per_watt().has_value());

    // [19]: 14.22 GOPS/W reconstructed.
    EXPECT_NEAR(*specs[1].gops_per_watt(), 14.22, 0.01);
    EXPECT_NEAR(*specs[1].gops_per_pe(), 0.241, 0.001);

    // [20]: no DSP/power published.
    EXPECT_FALSE(specs[2].dsp.has_value());
    EXPECT_NEAR(*specs[2].gops_per_pe(), 0.195, 0.001);

    // [21]: 220/664 PEs.
    EXPECT_NEAR(*specs[3].gops_per_pe(), 0.331, 0.001);
    EXPECT_NEAR(*specs[3].gops_per_dsp(), 0.33, 0.01);

    // [22]: 0.46 GOPS/DSP, 19.5 GOPS/W.
    EXPECT_NEAR(*specs[4].gops_per_dsp(), 0.46, 0.015);
    EXPECT_NEAR(*specs[4].gops_per_watt(), 19.50, 0.01);
}

TEST(PriorArt, ThisWorkRowMatchesPaper) {
    const auto spec = this_work_spec(sim::SiaConfig{}, rated_board_watts(), 17);
    EXPECT_NEAR(spec.gops, 38.4, 1e-9);
    EXPECT_NEAR(*spec.gops_per_pe(), 0.6, 1e-9);
    EXPECT_NEAR(*spec.gops_per_dsp(), 2.25, 0.02);
    EXPECT_NEAR(*spec.gops_per_watt(), 24.93, 0.05);
}

TEST(PriorArt, SiaBeatsAllOnPerPeAndPerDspEfficiency) {
    // The paper's headline: 2x PE efficiency, 4.5x DSP efficiency.
    const auto spec = this_work_spec(sim::SiaConfig{}, rated_board_watts(), 17);
    for (const auto& other : prior_art_table()) {
        // [22]'s "12 PEs" are coarse-grained engines, not MAC lanes; the
        // paper prints N/A for its PE efficiency and so do we.
        if (other.gops_per_pe() && other.citation != "[22]") {
            // Paper rounds "2x"; the exact best-competitor ratio is
            // 0.6 / 0.343 = 1.75.
            EXPECT_GE(*spec.gops_per_pe() / *other.gops_per_pe(), 1.74)
                << other.citation;
        }
        if (other.gops_per_dsp()) {
            EXPECT_GE(*spec.gops_per_dsp() / *other.gops_per_dsp(), 4.5)
                << other.citation;
        }
        if (other.gops_per_watt()) {
            EXPECT_GT(*spec.gops_per_watt(), *other.gops_per_watt()) << other.citation;
        }
    }
}

TEST(MacBaseline, DenseCyclesAndEfficiency) {
    // A model with known op count: use a small hand-built SnnModel.
    snn::SnnModel model;
    model.input_channels = 1;
    model.input_h = 8;
    model.input_w = 8;
    model.classes = 4;
    snn::SnnLayer conv;
    conv.op = snn::LayerOp::kConv;
    conv.input = -1;
    conv.main.in_channels = 1;
    conv.main.out_channels = 4;
    conv.main.kernel = 3;
    conv.main.stride = 1;
    conv.main.padding = 1;
    conv.main.weights.assign(36, 1);
    conv.main.gain.assign(4, 256);
    conv.main.bias.assign(4, 0);
    conv.out_channels = 4;
    conv.out_h = 8;
    conv.out_w = 8;
    conv.in_h = 8;
    conv.in_w = 8;
    model.layers.push_back(conv);

    MacArrayConfig cfg;
    cfg.macs = 64;
    cfg.utilization = 1.0;
    const auto est = estimate_mac_array(model, cfg);
    // MACs = 8*8*4*1*9 = 2304; 64 MACs/cycle -> 36 cycles.
    EXPECT_EQ(est.cycles, 36);
    EXPECT_EQ(est.dsp, 64);
    EXPECT_NEAR(est.peak_gops, 12.8, 1e-9);  // 2*64*100MHz
    EXPECT_NEAR(est.gops_per_dsp, 0.2, 1e-9);
}

TEST(MacBaseline, SiaGopsPerDspAdvantage) {
    // The SIA's 2.25 GOPS/DSP vs a dense MAC array's ~0.2: >10x, because
    // the SIA's PEs use no DSPs at all (only the aggregation core does).
    const sim::SiaConfig sia_cfg;
    const double sia_gops_per_dsp = sia_cfg.peak_gops() / 17.0;
    MacArrayConfig mac_cfg;
    snn::SnnModel empty;
    empty.input_channels = 1;
    empty.input_h = 1;
    empty.input_w = 1;
    empty.classes = 1;
    const auto est = estimate_mac_array(empty, mac_cfg);
    EXPECT_GT(sia_gops_per_dsp / est.gops_per_dsp, 10.0);
}

}  // namespace
}  // namespace sia::hw
