// Tests for stats, table, CSV and RNG utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace sia::util {
namespace {

TEST(RunningStat, MeanVarianceMinMax) {
    RunningStat s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_EQ(s.count(), 8U);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, MergeEqualsSequential) {
    RunningStat a;
    RunningStat b;
    RunningStat all;
    for (int i = 0; i < 50; ++i) {
        const double x = 0.37 * i - 3.0;
        (i % 2 == 0 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStat, EmptyIsZero) {
    const RunningStat s;
    EXPECT_EQ(s.count(), 0U);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(Histogram, BinsAndClamping) {
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.5);
    h.add(-100.0);  // clamps to first bin
    h.add(100.0);   // clamps to last bin
    EXPECT_EQ(h.bin_count(0), 2U);
    EXPECT_EQ(h.bin_count(9), 2U);
    EXPECT_EQ(h.total(), 4U);
}

TEST(Histogram, CdfMonotone) {
    Histogram h(0.0, 1.0, 4);
    for (int i = 0; i < 100; ++i) h.add(i / 100.0);
    EXPECT_LE(h.cdf(0.25), h.cdf(0.5));
    EXPECT_LE(h.cdf(0.5), h.cdf(1.0));
    EXPECT_NEAR(h.cdf(1.0), 1.0, 1e-12);
}

TEST(Histogram, RejectsBadRange) {
    EXPECT_THROW(Histogram(1.0, 0.0, 4), std::invalid_argument);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(StreamingHistogram, QuantilesWithinBucketResolution) {
    StreamingHistogram h;  // defaults: [1, 1e9), 64 bins/decade (~3.7%)
    for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
    EXPECT_EQ(h.count(), 1000U);
    // quantile() reports the upper bucket edge, so it never understates
    // the true quantile and overstates by at most one bucket (~3.7%).
    EXPECT_GE(h.p50(), 500.0);
    EXPECT_LE(h.p50(), 500.0 * 1.04);
    EXPECT_GE(h.p95(), 950.0);
    EXPECT_LE(h.p95(), 950.0 * 1.04);
    EXPECT_GE(h.p99(), 990.0);
    EXPECT_LE(h.p99(), 990.0 * 1.04);
    EXPECT_LE(h.p50(), h.p95());
    EXPECT_LE(h.p95(), h.p99());
    // Exact (non-bucketed) scalar summaries.
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 1000.0);
    EXPECT_DOUBLE_EQ(h.mean(), 500.5);
}

TEST(StreamingHistogram, EmptyAndReset) {
    StreamingHistogram h;
    EXPECT_EQ(h.count(), 0U);
    EXPECT_EQ(h.quantile(0.5), 0.0);
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.mean(), 0.0);
    h.add(42.0);
    EXPECT_EQ(h.count(), 1U);
    h.reset();
    EXPECT_EQ(h.count(), 0U);
    EXPECT_EQ(h.quantile(0.99), 0.0);
}

TEST(StreamingHistogram, ClampsOutOfRangeValues) {
    StreamingHistogram h(1.0, 1e3, 8);
    h.add(0.0);     // non-positive -> first bucket
    h.add(-5.0);    // non-positive -> first bucket
    h.add(1e9);     // beyond hi -> last bucket
    EXPECT_EQ(h.count(), 3U);
    // First bucket's upper edge is 10^(1/8); last bucket's is 1e3.
    EXPECT_LE(h.quantile(0.5), std::pow(10.0, 1.0 / 8.0) + 1e-12);
    EXPECT_NEAR(h.quantile(1.0), 1e3, 1e-9);
    EXPECT_DOUBLE_EQ(h.max(), 1e9);  // exact extremes are not clamped
}

TEST(StreamingHistogram, MergeEqualsCombinedStream) {
    StreamingHistogram a;
    StreamingHistogram b;
    StreamingHistogram all;
    Rng rng(7);
    for (int i = 0; i < 400; ++i) {
        const double x = std::exp(static_cast<double>(rng.uniform(0.0F, 12.0F)));
        ((i % 2 == 0) ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    for (const double q : {0.1, 0.5, 0.9, 0.95, 0.99}) {
        EXPECT_DOUBLE_EQ(a.quantile(q), all.quantile(q)) << "q=" << q;
    }
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
    // Mean sums in a different order (a's total + b's total), so allow
    // floating-point non-associativity.
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9 * all.mean());
}

TEST(StreamingHistogram, MergeRejectsMismatchedGeometry) {
    StreamingHistogram a(1.0, 1e6, 32);
    StreamingHistogram b(1.0, 1e6, 64);
    StreamingHistogram c(10.0, 1e6, 32);
    EXPECT_THROW(a.merge(b), std::invalid_argument);
    EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(StreamingHistogram, RejectsBadConstruction) {
    EXPECT_THROW(StreamingHistogram(0.0, 10.0), std::invalid_argument);
    EXPECT_THROW(StreamingHistogram(10.0, 10.0), std::invalid_argument);
    EXPECT_THROW(StreamingHistogram(1.0, 10.0, 0), std::invalid_argument);
}

TEST(Rng, Deterministic) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.integer(0, 1000), b.integer(0, 1000));
}

TEST(Rng, PermutationIsPermutation) {
    Rng rng(7);
    const auto p = rng.permutation(100);
    std::vector<bool> seen(100, false);
    for (const auto i : p) {
        ASSERT_LT(i, 100U);
        EXPECT_FALSE(seen[i]);
        seen[i] = true;
    }
}

TEST(Rng, UniformInRange) {
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const float v = rng.uniform(-2.0F, 3.0F);
        EXPECT_GE(v, -2.0F);
        EXPECT_LT(v, 3.0F);
    }
}

TEST(Table, RendersAlignedRows) {
    Table t("Demo");
    t.header({"a", "long-column"});
    t.row({"1", "2"});
    t.separator();
    t.row({"333", "4"});
    const std::string s = t.to_string();
    EXPECT_NE(s.find("Demo"), std::string::npos);
    EXPECT_NE(s.find("long-column"), std::string::npos);
    EXPECT_NE(s.find("333"), std::string::npos);
    EXPECT_EQ(t.rows(), 3U);  // incl. separator sentinel
}

TEST(Table, CellFormatting) {
    EXPECT_EQ(cell(3.14159, 2), "3.14");
    EXPECT_EQ(cell(static_cast<long long>(42)), "42");
    EXPECT_EQ(cell_pct(22.434, 2), "22.43%");
}

TEST(Csv, WritesAndEscapes) {
    const std::string path = "/tmp/sia_test_csv.csv";
    {
        CsvWriter csv(path);
        csv.row({"a", "b,c", "d\"e"});
        csv.row({"1", "2", "3"});
    }
    std::ifstream in(path);
    std::string line1;
    std::string line2;
    std::getline(in, line1);
    std::getline(in, line2);
    EXPECT_EQ(line1, "a,\"b,c\",\"d\"\"e\"");
    EXPECT_EQ(line2, "1,2,3");
    std::remove(path.c_str());
}

TEST(Csv, ThrowsOnBadPath) {
    EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), std::runtime_error);
}

// ---- StreamingHistogram merge properties (randomized) ----
//
// The merge-exactness claim — "the merged histogram equals one that saw
// both input streams" — is asserted on the state merge() actually sums:
// bucket occupancies, count, and the exact min/max, plus every quantile
// (a pure function of that state). The mean is deliberately excluded
// from exactness: merge() adds partial float sums, and float addition
// is order-sensitive; it gets an epsilon bound instead.

/// Latency-shaped random draws: a lognormal-ish body with a uniform
/// heavy tail and occasional out-of-range values to exercise clamping.
std::vector<double> random_latencies(Rng& rng, std::size_t n) {
    std::vector<double> xs;
    xs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double roll = rng.uniform();
        if (roll < 0.05) {
            xs.push_back(rng.uniform() * 2.0 - 1.0);  // below lo (clamps), incl. <= 0
        } else if (roll < 0.10) {
            xs.push_back(1e9 * (1.0 + rng.uniform()));  // at/above hi (clamps)
        } else {
            xs.push_back(std::exp(rng.uniform() * 14.0));  // ~[1, 1.2e6)
        }
    }
    return xs;
}

void expect_same_state(const StreamingHistogram& a, const StreamingHistogram& b) {
    ASSERT_TRUE(a.same_geometry(b));
    EXPECT_EQ(a.bucket_counts(), b.bucket_counts());
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
    for (const double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99,
                           0.999, 1.0}) {
        EXPECT_EQ(a.quantile(q), b.quantile(q)) << "q=" << q;
    }
    if (a.count() > 0) {
        EXPECT_NEAR(a.mean(), b.mean(), 1e-9 * std::abs(a.mean()) + 1e-12);
    }
}

TEST(StreamingHistogramProperty, RandomSplitsMergeExactly) {
    Rng rng(2024);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t n = 1 + static_cast<std::size_t>(rng.integer(0, 400));
        const auto xs = random_latencies(rng, n);

        // Split the stream at random into k shards, one histogram each.
        const std::size_t shards = 1 + static_cast<std::size_t>(rng.integer(0, 7));
        std::vector<StreamingHistogram> parts(shards);
        StreamingHistogram whole;
        for (const double x : xs) {
            parts[static_cast<std::size_t>(rng.integer(
                      0, static_cast<int>(shards) - 1))]
                .add(x);
            whole.add(x);
        }

        StreamingHistogram merged;
        for (const auto& part : parts) merged.merge(part);
        SCOPED_TRACE("trial=" + std::to_string(trial) + " n=" + std::to_string(n) +
                     " shards=" + std::to_string(shards));
        expect_same_state(merged, whole);
    }
}

TEST(StreamingHistogramProperty, MergeIsAssociativeAndCommutative) {
    Rng rng(7);
    StreamingHistogram a, b, c;
    for (const double x : random_latencies(rng, 120)) a.add(x);
    for (const double x : random_latencies(rng, 7)) b.add(x);
    for (const double x : random_latencies(rng, 55)) c.add(x);

    StreamingHistogram ab_c;  // (a + b) + c
    ab_c.merge(a);
    ab_c.merge(b);
    ab_c.merge(c);
    StreamingHistogram a_bc;  // a + (b + c)
    StreamingHistogram bc = b;
    bc.merge(c);
    a_bc.merge(a);
    a_bc.merge(bc);
    expect_same_state(ab_c, a_bc);

    StreamingHistogram cba;  // c + b + a
    cba.merge(c);
    cba.merge(b);
    cba.merge(a);
    expect_same_state(ab_c, cba);
}

TEST(StreamingHistogramProperty, MergeEdgeCases) {
    Rng rng(99);
    StreamingHistogram h;
    for (const double x : random_latencies(rng, 64)) h.add(x);
    const auto before = h.bucket_counts();

    // Merging an empty histogram is the identity, both ways.
    StreamingHistogram empty;
    h.merge(empty);
    EXPECT_EQ(h.bucket_counts(), before);
    StreamingHistogram onto_empty;
    onto_empty.merge(h);
    expect_same_state(onto_empty, h);

    // A single clamped sample keeps exact extremes, bucketed quantiles.
    StreamingHistogram one;
    one.add(-3.5);  // below lo: clamps into the first bucket
    EXPECT_EQ(one.count(), 1U);
    EXPECT_EQ(one.min(), -3.5);
    EXPECT_EQ(one.max(), -3.5);
    EXPECT_EQ(one.quantile(0.0), one.quantile(1.0));
    StreamingHistogram grown = one;
    grown.merge(h);
    EXPECT_EQ(grown.count(), h.count() + 1);
    EXPECT_EQ(grown.min(), -3.5);
    EXPECT_EQ(grown.max(), h.max());

    // Overflow clamping: everything at/above hi lands in the last
    // bucket and p100 reports that bucket's edge for both.
    StreamingHistogram top(1.0, 1e3, 8);
    top.add(1e3);
    top.add(1e12);
    EXPECT_EQ(top.count(), 2U);
    EXPECT_EQ(top.quantile(0.5), top.quantile(1.0));
    EXPECT_EQ(top.max(), 1e12);
}

// ---- SloBurnCounter ----

TEST(SloBurnCounter, CountsViolationsAboveThreshold) {
    SloBurnCounter slo(100.0);
    EXPECT_DOUBLE_EQ(slo.threshold(), 100.0);
    EXPECT_EQ(slo.total(), 0U);
    EXPECT_DOUBLE_EQ(slo.burn_rate(), 0.0);

    slo.add(50.0);
    slo.add(100.0);  // at the threshold: not a violation
    slo.add(100.5);
    slo.add(1e9);
    EXPECT_EQ(slo.total(), 4U);
    EXPECT_EQ(slo.burned(), 2U);
    EXPECT_DOUBLE_EQ(slo.burn_rate(), 0.5);

    slo.reset();
    EXPECT_EQ(slo.total(), 0U);
    EXPECT_EQ(slo.burned(), 0U);
    EXPECT_DOUBLE_EQ(slo.threshold(), 100.0);  // reset keeps the SLO
}

TEST(SloBurnCounter, MergeSumsCountersAndRejectsMismatchedThresholds) {
    Rng rng(17);
    SloBurnCounter a(250.0);
    SloBurnCounter b(250.0);
    SloBurnCounter whole(250.0);
    for (int i = 0; i < 200; ++i) {
        const double x = rng.uniform() * 500.0;
        (i % 3 == 0 ? a : b).add(x);
        whole.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.total(), whole.total());
    EXPECT_EQ(a.burned(), whole.burned());
    EXPECT_DOUBLE_EQ(a.burn_rate(), whole.burn_rate());

    SloBurnCounter other(99.0);
    EXPECT_THROW(a.merge(other), std::invalid_argument);
    EXPECT_EQ(a.total(), whole.total());  // failed merge left it untouched
}

}  // namespace
}  // namespace sia::util
