// Integration tests: the cycle-accurate Sia simulator against the
// functional reference (bit-exactness = the co-verification contract),
// cycle accounting properties, controller trace over a real run.
#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "core/convert.hpp"
#include "core/deploy.hpp"
#include "nn/resnet.hpp"
#include "nn/vgg.hpp"
#include "snn/encoding.hpp"
#include "snn/engine.hpp"

namespace sia {
namespace {

/// Train-free converted model: random weights + warmed BN + fixed steps
/// are enough for bit-exactness checks (no accuracy semantics needed).
template <typename ModelT, typename ConfigT>
snn::SnnModel make_converted(ConfigT cfg, std::uint64_t seed, ModelT** out_model,
                             std::vector<std::unique_ptr<ModelT>>& keep_alive) {
    util::Rng rng(seed);
    auto model = std::make_unique<ModelT>(cfg, rng);
    // Warm BN stats and calibrate activations with random data.
    tensor::Tensor x(tensor::Shape{4, cfg.input_channels, cfg.input_size, cfg.input_size});
    for (std::int64_t i = 0; i < x.numel(); ++i) x.flat(i) = rng.uniform(0.0F, 1.0F);
    for (int rep = 0; rep < 3; ++rep) (void)model->forward(x, true);
    model->begin_activation_calibration();
    (void)model->forward(x, false);
    model->end_activation_calibration();
    model->enable_quantized_activations(4);
    const auto snn = core::AnnToSnnConverter().convert(model->ir());
    *out_model = model.get();
    keep_alive.push_back(std::move(model));
    return snn;
}

snn::SpikeTrain random_input(std::int64_t channels, std::int64_t size,
                             std::int64_t timesteps, std::uint64_t seed) {
    util::Rng rng(seed);
    tensor::Tensor img(tensor::Shape{1, channels, size, size});
    for (std::int64_t i = 0; i < img.numel(); ++i) img.flat(i) = rng.uniform(0.0F, 1.0F);
    return snn::encode_thermometer(img, timesteps);
}

TEST(SiaIntegration, BitExactVsFunctionalVgg) {
    std::vector<std::unique_ptr<nn::Vgg11>> keep;
    nn::Vgg11* raw = nullptr;
    nn::VggConfig cfg;
    cfg.width = 4;
    const auto model = make_converted(cfg, 11, &raw, keep);
    const auto input = random_input(3, 32, 6, 12);

    const core::DeployReport report = core::Deployer().deploy(model, input);
    EXPECT_TRUE(report.bit_exact) << report.mismatch;
    EXPECT_EQ(report.functional.spike_counts, report.hardware.spike_counts);
    EXPECT_EQ(report.functional.logits_per_step, report.hardware.logits_per_step);
}

TEST(SiaIntegration, BitExactVsFunctionalResNet) {
    std::vector<std::unique_ptr<nn::ResNet18>> keep;
    nn::ResNet18* raw = nullptr;
    nn::ResNetConfig cfg;
    cfg.width = 4;
    const auto model = make_converted(cfg, 21, &raw, keep);
    const auto input = random_input(3, 32, 5, 22);
    const core::DeployReport report = core::Deployer().deploy(model, input);
    EXPECT_TRUE(report.bit_exact) << report.mismatch;
}

TEST(SiaIntegration, BitExactAcrossNeuronAndResetModes) {
    nn::VggConfig cfg;
    cfg.width = 4;
    cfg.input_size = 16;
    for (const auto neuron : {snn::NeuronKind::kIf, snn::NeuronKind::kLif}) {
        for (const auto reset : {snn::ResetMode::kSubtract, snn::ResetMode::kZero}) {
            util::Rng rng(31);
            auto ann = std::make_unique<nn::Vgg11>(cfg, rng);
            tensor::Tensor x(tensor::Shape{2, 3, 16, 16});
            for (std::int64_t i = 0; i < x.numel(); ++i) x.flat(i) = rng.uniform(0.0F, 1.0F);
            (void)ann->forward(x, true);
            ann->begin_activation_calibration();
            (void)ann->forward(x, false);
            ann->end_activation_calibration();
            ann->enable_quantized_activations(2);
            core::ConvertOptions opts;
            opts.neuron = neuron;
            opts.reset = reset;
            const auto model = core::AnnToSnnConverter(opts).convert(ann->ir());
            const auto input = random_input(3, 16, 4, 32);
            const auto report = core::Deployer().deploy(model, input);
            EXPECT_TRUE(report.bit_exact)
                << "neuron=" << static_cast<int>(neuron)
                << " reset=" << static_cast<int>(reset) << ": " << report.mismatch;
        }
    }
}

TEST(SiaIntegration, CycleAccountingBasics) {
    std::vector<std::unique_ptr<nn::Vgg11>> keep;
    nn::Vgg11* raw = nullptr;
    nn::VggConfig cfg;
    cfg.width = 4;
    const auto model = make_converted(cfg, 41, &raw, keep);
    const auto input = random_input(3, 32, 4, 42);

    const sim::SiaConfig sia_cfg;
    const auto program = core::SiaCompiler(sia_cfg).compile(model);
    sim::Sia sia(sia_cfg, model, program);
    const auto res = sia.run(input);

    EXPECT_EQ(res.layer_stats.size(), model.layers.size());
    for (const auto& s : res.layer_stats) {
        EXPECT_GE(s.compute, 0);
        EXPECT_GT(s.total(), 0);
        EXPECT_EQ(s.overhead, sia_cfg.ps_layer_overhead_cycles);
    }
    EXPECT_GT(res.total_cycles(), 0);
    EXPECT_GT(res.total_ms(sia_cfg), 0.0);
    // Utilization is a fraction.
    EXPECT_GE(res.pe_utilization(sia_cfg), 0.0);
    EXPECT_LE(res.pe_utilization(sia_cfg), 1.0);
    // The FC layer rides MMIO and dominates (Table I property).
    const auto& fc = res.layer_stats.back();
    EXPECT_GT(fc.mmio, 0);
}

TEST(SiaIntegration, EventDrivenComputeScalesWithActivity) {
    // Denser input spikes => more compute cycles, same overhead.
    std::vector<std::unique_ptr<nn::Vgg11>> keep;
    nn::Vgg11* raw = nullptr;
    nn::VggConfig cfg;
    cfg.width = 4;
    cfg.input_size = 16;
    const auto model = make_converted(cfg, 51, &raw, keep);

    const sim::SiaConfig sia_cfg;
    const auto program = core::SiaCompiler(sia_cfg).compile(model);

    tensor::Tensor dark(tensor::Shape{1, 3, 16, 16});
    dark.fill(0.05F);
    tensor::Tensor bright(tensor::Shape{1, 3, 16, 16});
    bright.fill(0.9F);
    sim::Sia sia1(sia_cfg, model, program);
    const auto res_dark = sia1.run(snn::encode_thermometer(dark, 4));
    sim::Sia sia2(sia_cfg, model, program);
    const auto res_bright = sia2.run(snn::encode_thermometer(bright, 4));

    EXPECT_LT(res_dark.layer_stats[0].compute, res_bright.layer_stats[0].compute);
    EXPECT_EQ(res_dark.layer_stats[0].overhead, res_bright.layer_stats[0].overhead);
}

TEST(SiaIntegration, ControllerTraceShape) {
    std::vector<std::unique_ptr<nn::Vgg11>> keep;
    nn::Vgg11* raw = nullptr;
    nn::VggConfig cfg;
    cfg.width = 4;
    cfg.input_size = 16;
    const auto model = make_converted(cfg, 61, &raw, keep);
    const auto input = random_input(3, 16, 3, 62);

    const sim::SiaConfig sia_cfg;
    const auto program = core::SiaCompiler(sia_cfg).compile(model);
    sim::Sia sia(sia_cfg, model, program);
    (void)sia.run(input);
    const auto& ctrl = sia.controller();
    // One Init, one Done, one LoadConfig per layer, T ReadInputs per layer.
    EXPECT_EQ(ctrl.entries(sim::CtrlState::kInit), 1);
    EXPECT_EQ(ctrl.entries(sim::CtrlState::kDone), 1);
    EXPECT_EQ(ctrl.entries(sim::CtrlState::kLoadConfig),
              static_cast<std::int64_t>(model.layers.size()));
    EXPECT_EQ(ctrl.entries(sim::CtrlState::kReadInput),
              static_cast<std::int64_t>(model.layers.size()) * 3);
}

TEST(SiaIntegration, ProgramModelMismatchThrows) {
    std::vector<std::unique_ptr<nn::Vgg11>> keep;
    nn::Vgg11* raw = nullptr;
    nn::VggConfig cfg;
    cfg.width = 4;
    cfg.input_size = 16;
    const auto model = make_converted(cfg, 71, &raw, keep);
    sim::CompiledProgram empty;
    const sim::SiaConfig sia_cfg;
    EXPECT_THROW(sim::Sia(sia_cfg, model, empty), std::invalid_argument);
}

}  // namespace
}  // namespace sia
