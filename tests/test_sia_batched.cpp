// Batched resident sim::Sia equivalence matrix: batched execution must
// be bit-identical — spikes, logits, and per-layer cycle stats — to
// independent sequential Sia::run calls and (for spikes/logits) to the
// snn::FunctionalEngine reference, across batch sizes, thread counts,
// and model shapes; plus wave/residency accounting and edge cases.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/batch_runner.hpp"
#include "core/compiler.hpp"
#include "sim/sia.hpp"
#include "snn/engine.hpp"
#include "util/rng.hpp"

namespace sia {
namespace {

// ---- model zoo: a small conv net and a small MLP ----

snn::SnnModel conv_model(std::uint64_t seed) {
    util::Rng rng(seed);
    snn::SnnModel model;
    model.input_channels = 2;
    model.input_h = 6;
    model.input_w = 6;

    std::int64_t in_c = model.input_channels;
    for (std::int64_t d = 0; d < 3; ++d) {
        snn::SnnLayer layer;
        layer.op = snn::LayerOp::kConv;
        layer.label = "conv" + std::to_string(d);
        layer.input = static_cast<int>(d) - 1;
        auto& b = layer.main;
        b.in_channels = in_c;
        b.out_channels = 4;
        b.kernel = 3;
        b.stride = 1;
        b.padding = 1;
        b.weights.resize(static_cast<std::size_t>(in_c * 4 * 9));
        for (auto& w : b.weights) w = static_cast<std::int8_t>(rng.integer(-127, 127));
        b.gain.resize(4);
        b.bias.resize(4);
        for (auto& g : b.gain) g = static_cast<std::int16_t>(rng.integer(50, 2000));
        for (auto& h : b.bias) h = static_cast<std::int16_t>(rng.integer(-100, 100));
        layer.out_channels = 4;
        layer.out_h = 6;
        layer.out_w = 6;
        layer.in_h = 6;
        layer.in_w = 6;
        model.layers.push_back(std::move(layer));
        in_c = 4;
    }

    snn::SnnLayer fc;
    fc.op = snn::LayerOp::kLinear;
    fc.label = "fc";
    fc.input = 2;
    fc.spiking = false;
    fc.main.in_features = 4 * 6 * 6;
    fc.main.out_features = 4;
    fc.main.weights.resize(static_cast<std::size_t>(fc.main.in_features * 4));
    for (auto& w : fc.main.weights) w = static_cast<std::int8_t>(rng.integer(-64, 64));
    fc.main.gain.assign(4, 256);
    fc.main.bias.assign(4, 0);
    fc.out_channels = 4;
    model.layers.push_back(std::move(fc));
    model.classes = 4;
    model.validate();
    return model;
}

snn::SnnModel mlp_model(std::uint64_t seed) {
    util::Rng rng(seed);
    snn::SnnModel model;
    model.input_channels = 1;
    model.input_h = 4;
    model.input_w = 4;

    snn::SnnLayer hidden;
    hidden.op = snn::LayerOp::kLinear;
    hidden.label = "hidden";
    hidden.input = -1;
    hidden.spiking = true;
    hidden.main.in_features = 16;
    hidden.main.out_features = 12;
    hidden.main.weights.resize(16 * 12);
    for (auto& w : hidden.main.weights) {
        w = static_cast<std::int8_t>(rng.integer(-127, 127));
    }
    hidden.main.gain.resize(12);
    hidden.main.bias.resize(12);
    for (auto& g : hidden.main.gain) g = static_cast<std::int16_t>(rng.integer(100, 500));
    for (auto& h : hidden.main.bias) h = static_cast<std::int16_t>(rng.integer(-50, 50));
    hidden.out_channels = 12;
    model.layers.push_back(std::move(hidden));

    snn::SnnLayer readout;
    readout.op = snn::LayerOp::kLinear;
    readout.label = "readout";
    readout.input = 0;
    readout.spiking = false;
    readout.main.in_features = 12;
    readout.main.out_features = 4;
    readout.main.weights.resize(12 * 4);
    for (auto& w : readout.main.weights) {
        w = static_cast<std::int8_t>(rng.integer(-64, 64));
    }
    readout.main.gain.assign(4, 256);
    readout.main.bias.assign(4, 0);
    readout.out_channels = 4;
    model.layers.push_back(std::move(readout));
    model.classes = 4;
    model.validate();
    return model;
}

std::vector<snn::SpikeTrain> random_batch(const snn::SnnModel& model, std::size_t count,
                                          std::int64_t timesteps, std::uint64_t seed) {
    std::vector<snn::SpikeTrain> batch;
    batch.reserve(count);
    util::Rng rng(seed);
    for (std::size_t i = 0; i < count; ++i) {
        snn::SpikeTrain train(static_cast<std::size_t>(timesteps),
                              snn::SpikeMap(model.input_channels, model.input_h,
                                            model.input_w));
        for (auto& frame : train) {
            for (std::int64_t j = 0; j < frame.size(); ++j) {
                frame.set_flat(j, rng.bernoulli(0.3));
            }
        }
        batch.push_back(std::move(train));
    }
    return batch;
}

/// Full bit-identity: outputs AND as-if-sequential cycle accounting.
void expect_same_sia_result(const sim::SiaRunResult& got, const sim::SiaRunResult& want) {
    EXPECT_EQ(got.logits_per_step, want.logits_per_step);
    EXPECT_EQ(got.spike_counts, want.spike_counts);
    EXPECT_EQ(got.neuron_counts, want.neuron_counts);
    EXPECT_EQ(got.timesteps, want.timesteps);
    ASSERT_EQ(got.layer_stats.size(), want.layer_stats.size());
    for (std::size_t l = 0; l < got.layer_stats.size(); ++l) {
        SCOPED_TRACE("layer " + std::to_string(l));
        const auto& a = got.layer_stats[l];
        const auto& b = want.layer_stats[l];
        EXPECT_EQ(a.label, b.label);
        EXPECT_EQ(a.compute, b.compute);
        EXPECT_EQ(a.aggregate, b.aggregate);
        EXPECT_EQ(a.dma, b.dma);
        EXPECT_EQ(a.mmio, b.mmio);
        EXPECT_EQ(a.overhead, b.overhead);
        EXPECT_EQ(a.input_spike_events, b.input_spike_events);
        EXPECT_EQ(a.event_additions, b.event_additions);
        EXPECT_EQ(a.dense_ops, b.dense_ops);
    }
    EXPECT_EQ(got.total_cycles(), want.total_cycles());
}

/// Same bit-identity check against a unified-API core::Response.
void expect_same_sia_result(const core::Response& got, const sim::SiaRunResult& want) {
    EXPECT_EQ(got.logits_per_step, want.logits_per_step);
    EXPECT_EQ(got.spike_counts, want.spike_counts);
    EXPECT_EQ(got.neuron_counts, want.neuron_counts);
    EXPECT_EQ(got.timesteps, want.timesteps);
    ASSERT_EQ(got.layer_stats.size(), want.layer_stats.size());
    for (std::size_t l = 0; l < got.layer_stats.size(); ++l) {
        SCOPED_TRACE("layer " + std::to_string(l));
        const auto& a = got.layer_stats[l];
        const auto& b = want.layer_stats[l];
        EXPECT_EQ(a.label, b.label);
        EXPECT_EQ(a.compute, b.compute);
        EXPECT_EQ(a.aggregate, b.aggregate);
        EXPECT_EQ(a.dma, b.dma);
        EXPECT_EQ(a.mmio, b.mmio);
        EXPECT_EQ(a.overhead, b.overhead);
        EXPECT_EQ(a.input_spike_events, b.input_spike_events);
        EXPECT_EQ(a.event_additions, b.event_additions);
        EXPECT_EQ(a.dense_ops, b.dense_ops);
    }
    EXPECT_EQ(got.total_cycles(), want.total_cycles());
}

std::vector<core::Request> view_requests(const std::vector<snn::SpikeTrain>& batch) {
    std::vector<core::Request> requests;
    requests.reserve(batch.size());
    for (const auto& t : batch) requests.push_back(core::Request::view_train(t));
    return requests;
}

struct NamedModel {
    const char* name;
    snn::SnnModel model;
};

// ---- the equivalence matrix ----

TEST(SiaBatched, MatrixBatchedEqualsSequentialEqualsFunctional) {
    const sim::SiaConfig config;
    const std::int64_t timesteps = 4;
    const std::array<std::size_t, 4> batch_sizes = {1, 2, 7, 32};
    const std::array<std::size_t, 3> thread_counts = {1, 2, 8};

    std::vector<NamedModel> models;
    models.push_back({"conv", conv_model(101)});
    models.push_back({"mlp", mlp_model(102)});

    for (const auto& [name, model] : models) {
        SCOPED_TRACE(name);
        const auto inputs = random_batch(model, 32, timesteps, 777);

        // Sequential references: one resident simulator run item by item,
        // and the functional engine.
        const auto program = core::SiaCompiler(config).compile(model);
        sim::Sia sequential(config, model, program);
        snn::FunctionalEngine functional(model);
        std::vector<sim::SiaRunResult> sim_ref;
        std::vector<snn::RunResult> fun_ref;
        for (const auto& train : inputs) {
            sim_ref.push_back(sequential.run(train));
            fun_ref.push_back(functional.run(train));
        }

        // Direct batched execution on one instance (single-threaded).
        for (const std::size_t bs : batch_sizes) {
            SCOPED_TRACE("direct batch=" + std::to_string(bs));
            const std::vector<snn::SpikeTrain> sub(inputs.begin(),
                                                   inputs.begin() +
                                                       static_cast<std::ptrdiff_t>(bs));
            sim::Sia resident(config, model, program);
            const auto batched = resident.run_batch(sub);
            ASSERT_EQ(batched.size(), bs);
            for (std::size_t i = 0; i < bs; ++i) {
                SCOPED_TRACE("item=" + std::to_string(i));
                expect_same_sia_result(batched[i], sim_ref[i]);
                EXPECT_EQ(batched[i].logits_per_step, fun_ref[i].logits_per_step);
                EXPECT_EQ(batched[i].spike_counts, fun_ref[i].spike_counts);
            }
            EXPECT_EQ(resident.last_batch_stats().waves,
                      (static_cast<std::int64_t>(bs) + config.membrane_banks - 1) /
                          config.membrane_banks);
        }

        // Threaded resident scheduling through BatchRunner + SiaBackend.
        for (const std::size_t threads : thread_counts) {
            core::BatchRunner runner(std::make_shared<core::SiaBackend>(model, config),
                                     {.threads = threads});
            for (const std::size_t bs : batch_sizes) {
                SCOPED_TRACE("threads=" + std::to_string(threads) + " batch=" +
                             std::to_string(bs));
                const std::vector<snn::SpikeTrain> sub(
                    inputs.begin(), inputs.begin() + static_cast<std::ptrdiff_t>(bs));
                const auto results = runner.run(view_requests(sub));
                ASSERT_EQ(results.size(), bs);
                for (std::size_t i = 0; i < bs; ++i) {
                    SCOPED_TRACE("item=" + std::to_string(i));
                    expect_same_sia_result(results[i], sim_ref[i]);
                    EXPECT_EQ(results[i].logits_per_step, fun_ref[i].logits_per_step);
                }
                EXPECT_EQ(runner.last_stats().inputs, bs);
            }
        }
    }
}

TEST(SiaBatched, PerItemAndResidentSchedulesAgree) {
    const auto model = conv_model(5);
    const auto inputs = random_batch(model, 9, 4, 55);
    const sim::SiaConfig config;
    const auto requests = view_requests(inputs);

    // One backend, schedule flipped between batches: bit-identical
    // results, residency accounting only under kResident.
    auto backend = std::make_shared<core::SiaBackend>(model, config);
    core::BatchRunner runner(backend, {.threads = 4});
    const auto resident = runner.run(requests);
    EXPECT_EQ(runner.last_sim_batch_stats().batch, inputs.size());
    backend->set_schedule(core::SimSchedule::kPerItem);
    const auto per_item = runner.run(requests);
    EXPECT_EQ(runner.last_sim_batch_stats().batch, 0U);  // per-item: no residency

    ASSERT_EQ(resident.size(), per_item.size());
    for (std::size_t i = 0; i < resident.size(); ++i) {
        SCOPED_TRACE("item=" + std::to_string(i));
        EXPECT_EQ(resident[i].logits_per_step, per_item[i].logits_per_step);
        EXPECT_EQ(resident[i].spike_counts, per_item[i].spike_counts);
        EXPECT_EQ(resident[i].total_cycles(), per_item[i].total_cycles());
    }
}

// ---- waves, banking, and residency accounting ----

TEST(SiaBatched, OversizedBatchRunsInWavesAndAmortizes) {
    const auto model = conv_model(7);
    const auto inputs = random_batch(model, 7, 4, 71);

    sim::SiaConfig config;
    config.membrane_banks = 2;  // batch of 7 -> 4 waves
    const auto program = core::SiaCompiler(config).compile(model);

    sim::Sia sequential(config, model, program);
    std::vector<sim::SiaRunResult> ref;
    for (const auto& train : inputs) ref.push_back(sequential.run(train));

    sim::Sia resident(config, model, program);
    const auto batched = resident.run_batch(inputs);
    ASSERT_EQ(batched.size(), inputs.size());
    for (std::size_t i = 0; i < batched.size(); ++i) {
        SCOPED_TRACE("item=" + std::to_string(i));
        expect_same_sia_result(batched[i], ref[i]);
    }

    const sim::SiaBatchStats& stats = resident.last_batch_stats();
    EXPECT_EQ(stats.batch, 7U);
    EXPECT_EQ(stats.banks, 2);
    EXPECT_EQ(stats.waves, 4);
    EXPECT_EQ(stats.membrane_slice_bytes, config.membrane_bytes / 2 / 2);
    EXPECT_TRUE(stats.membrane_resident);  // tiny model: 288 B/layer per context

    // Kernels streamed once per wave, not once per inference.
    EXPECT_EQ(stats.weight_bytes_sequential,
              7 * program.dma_weight_stream_bytes());
    EXPECT_EQ(stats.weight_bytes_streamed, 4 * program.dma_weight_stream_bytes());

    // Residency strictly cheaper than independent runs; sequential total
    // equals the sum of the (as-if-sequential) per-item results.
    std::int64_t item_total = 0;
    for (const auto& r : batched) item_total += r.total_cycles();
    EXPECT_EQ(stats.sequential_cycles, item_total);
    EXPECT_LT(stats.resident_cycles, stats.sequential_cycles);
    EXPECT_GT(stats.amortization(), 1.0);
}

TEST(SiaBatched, ReportsWhenMembranesOverflowTheContextSlice) {
    // A model that fits one full phase bank but not a 1/banks slice:
    // results stay bit-exact (overflow host-mirrors), but the stats must
    // say the wave was not genuinely membrane-resident.
    const auto model = conv_model(31);  // peak layer potentials: 288 bytes
    const auto inputs = random_batch(model, 4, 4, 33);

    sim::SiaConfig config;
    config.membrane_bytes = 1024;  // full bank 512 B >= 288, slice 128 B < 288
    config.membrane_banks = 4;
    const auto program = core::SiaCompiler(config).compile(model);
    ASSERT_EQ(program.layers[0].spatial_tiles, 1);  // sequential mode fits

    sim::Sia sequential(config, model, program);
    sim::Sia resident(config, model, program);
    const auto batched = resident.run_batch(inputs);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        SCOPED_TRACE("item=" + std::to_string(i));
        expect_same_sia_result(batched[i], sequential.run(inputs[i]));
    }
    EXPECT_EQ(resident.last_batch_stats().membrane_slice_bytes, 128);
    EXPECT_FALSE(resident.last_batch_stats().membrane_resident);
}

TEST(SiaBatched, BatchOfOneHasNothingToAmortize) {
    const auto model = mlp_model(9);
    const auto inputs = random_batch(model, 1, 5, 91);
    const sim::SiaConfig config;
    const auto program = core::SiaCompiler(config).compile(model);

    sim::Sia sia(config, model, program);
    const auto ref = sia.run(inputs[0]);
    const auto batched = sia.run_batch(inputs);
    ASSERT_EQ(batched.size(), 1U);
    expect_same_sia_result(batched[0], ref);

    const sim::SiaBatchStats& stats = sia.last_batch_stats();
    EXPECT_EQ(stats.waves, 1);
    EXPECT_EQ(stats.weight_bytes_streamed, stats.weight_bytes_sequential);
    EXPECT_EQ(stats.resident_cycles, stats.sequential_cycles);
}

TEST(SiaBatched, EmptyBatch) {
    const auto model = conv_model(3);
    const sim::SiaConfig config;
    const auto program = core::SiaCompiler(config).compile(model);

    sim::Sia sia(config, model, program);
    EXPECT_TRUE(sia.run_batch(std::vector<snn::SpikeTrain>{}).empty());
    EXPECT_EQ(sia.last_batch_stats().waves, 0);

    core::BatchRunner runner(std::make_shared<core::SiaBackend>(model, config),
                             {.threads = 2});
    EXPECT_TRUE(runner.run(std::vector<core::Request>{}).empty());
    EXPECT_EQ(runner.last_stats().inputs, 0U);
}

TEST(SiaBatched, EmptyTrainInBatchThrows) {
    const auto model = conv_model(3);
    const sim::SiaConfig config;
    const auto program = core::SiaCompiler(config).compile(model);
    sim::Sia sia(config, model, program);

    auto inputs = random_batch(model, 2, 4, 13);
    inputs.push_back(snn::SpikeTrain{});
    EXPECT_THROW((void)sia.run_batch(inputs), std::invalid_argument);

    // The instance recovers: single runs still work after the failed batch.
    const auto ok = random_batch(model, 1, 4, 14);
    EXPECT_NO_THROW((void)sia.run(ok[0]));
}

// ---- ragged retirement (temporal early exit) ----

/// Fires at the first evaluated step unless the readout is exactly tied.
snn::ExitCriterion eager_exit() {
    return {.margin = 1, .stable_checks = 0, .min_steps = 1, .hysteresis = 1,
            .check_interval = 1};
}

/// Enabled but unreachable: the item runs its full train.
snn::ExitCriterion unreachable_exit() {
    return {.margin = 1'000'000'000, .stable_checks = 0, .min_steps = 1,
            .hysteresis = 1, .check_interval = 1};
}

void expect_same_exit_result(const sim::SiaRunResult& got,
                             const sim::SiaRunResult& want) {
    expect_same_sia_result(got, want);
    EXPECT_EQ(got.readout, want.readout);
    EXPECT_EQ(got.steps_offered, want.steps_offered);
    EXPECT_EQ(got.exit_reason, want.exit_reason);
}

TEST(SiaBatched, RaggedRetirementMatchesSoloRunsAcrossCompositions) {
    const auto model = conv_model(41);
    const std::int64_t timesteps = 6;
    const auto inputs = random_batch(model, 32, timesteps, 411);
    const snn::ExitCriterion eager = eager_exit();
    const snn::ExitCriterion never = unreachable_exit();

    for (const std::int64_t banks : {std::int64_t{1}, std::int64_t{4}}) {
        sim::SiaConfig config;
        config.membrane_banks = banks;
        const auto program = core::SiaCompiler(config).compile(model);

        // Solo references: each item alone on a fresh instance with its
        // own criterion (alternating eager / full-train).
        std::vector<sim::SiaRunResult> ref;
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            sim::Sia solo(config, model, program);
            ref.push_back(solo.run(inputs[i], i % 2 == 0 ? eager : never));
        }

        for (const std::size_t bs : {std::size_t{2}, std::size_t{7}, std::size_t{32}}) {
            SCOPED_TRACE("banks=" + std::to_string(banks) + " batch=" +
                         std::to_string(bs));
            std::vector<const snn::SpikeTrain*> ptrs;
            std::vector<snn::SessionState*> sessions(bs, nullptr);
            std::vector<const snn::ExitCriterion*> exits;
            for (std::size_t i = 0; i < bs; ++i) {
                ptrs.push_back(&inputs[i]);
                exits.push_back(i % 2 == 0 ? &eager : &never);
            }
            sim::Sia resident(config, model, program);
            const auto batched = resident.run_batch(ptrs, sessions, exits);
            ASSERT_EQ(batched.size(), bs);
            std::int64_t executed = 0;
            std::int64_t retired = 0;
            for (std::size_t i = 0; i < bs; ++i) {
                SCOPED_TRACE("item=" + std::to_string(i));
                expect_same_exit_result(batched[i], ref[i]);
                executed += batched[i].timesteps;
                if (batched[i].exit_reason != snn::ExitReason::kNone &&
                    batched[i].timesteps < timesteps) {
                    ++retired;
                }
                ASSERT_LT(i, resident.last_batch_stats().retired_at.size());
                EXPECT_EQ(resident.last_batch_stats().retired_at[i],
                          batched[i].timesteps);
            }
            const sim::SiaBatchStats& stats = resident.last_batch_stats();
            EXPECT_EQ(stats.steps_executed, executed);
            EXPECT_EQ(stats.steps_offered,
                      static_cast<std::int64_t>(bs) * timesteps);
            EXPECT_EQ(stats.retired_early, retired);
        }
    }
}

TEST(SiaBatched, RaggedRetirementOnLastWaveSlot) {
    // Only the item in the wave's last bank slot retires early: its
    // context frees while slots 0..2 keep running — the schedule must
    // narrow without disturbing them.
    const auto model = conv_model(43);
    const std::int64_t timesteps = 6;
    const auto inputs = random_batch(model, 4, timesteps, 431);
    sim::SiaConfig config;
    config.membrane_banks = 4;
    const auto program = core::SiaCompiler(config).compile(model);
    const snn::ExitCriterion eager = eager_exit();
    const snn::ExitCriterion never = unreachable_exit();

    std::vector<sim::SiaRunResult> ref;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        sim::Sia solo(config, model, program);
        ref.push_back(solo.run(inputs[i], i == 3 ? eager : never));
    }
    ASSERT_NE(ref[3].exit_reason, snn::ExitReason::kNone);
    ASSERT_LT(ref[3].timesteps, timesteps);

    std::vector<const snn::SpikeTrain*> ptrs;
    for (const auto& t : inputs) ptrs.push_back(&t);
    const std::vector<snn::SessionState*> sessions(4, nullptr);
    const std::vector<const snn::ExitCriterion*> exits{&never, &never, &never,
                                                       &eager};
    sim::Sia resident(config, model, program);
    const auto batched = resident.run_batch(ptrs, sessions, exits);
    for (std::size_t i = 0; i < 4; ++i) {
        SCOPED_TRACE("item=" + std::to_string(i));
        expect_same_exit_result(batched[i], ref[i]);
    }
    EXPECT_EQ(resident.last_batch_stats().retired_early, 1);
}

TEST(SiaBatched, RaggedMidWaveThrowRestoresPartitioning) {
    // One item retires in the first segment round, then another item's
    // later frame has the wrong geometry: the segment builder throws
    // mid-schedule with retired items outstanding. The PartitionGuard
    // must still restore single-inference partitioning.
    const auto model = conv_model(47);
    auto inputs = random_batch(model, 3, 5, 471);
    // Item 2: poison a frame past the first evaluation boundary.
    inputs[2][3] = snn::SpikeMap(1, 2, 2);
    sim::SiaConfig config;
    config.membrane_banks = 2;
    const auto program = core::SiaCompiler(config).compile(model);
    const snn::ExitCriterion eager = eager_exit();
    // Evaluates at steps 1, 3, ...: the second segment spans [1, 3) and
    // never fires, so item 2's bad frame at index 3 is reached in the
    // third round — well after item 0 retired.
    const snn::ExitCriterion stepper{.margin = 1'000'000'000, .stable_checks = 0,
                                     .min_steps = 1, .hysteresis = 1,
                                     .check_interval = 2};

    std::vector<const snn::SpikeTrain*> ptrs;
    for (const auto& t : inputs) ptrs.push_back(&t);
    const std::vector<snn::SessionState*> sessions(3, nullptr);
    const std::vector<const snn::ExitCriterion*> exits{&eager, &stepper, &stepper};
    sim::Sia sia(config, model, program);
    EXPECT_THROW((void)sia.run_batch(ptrs, sessions, exits), std::invalid_argument);

    // The instance recovers: single and batched runs still work.
    const auto ok = random_batch(model, 2, 4, 472);
    EXPECT_NO_THROW((void)sia.run(ok[0]));
    EXPECT_NO_THROW((void)sia.run_batch(ok));
}

TEST(SiaBatched, RaggedBackfillOrderingIsDeterministic) {
    // More items than bank slots, early retirements: freed slots
    // back-fill from the pending queue. Two identical calls must agree
    // exactly, and every item must match its solo run.
    const auto model = conv_model(53);
    const auto inputs = random_batch(model, 5, 6, 531);
    sim::SiaConfig config;
    config.membrane_banks = 2;
    const auto program = core::SiaCompiler(config).compile(model);
    const snn::ExitCriterion eager = eager_exit();
    const snn::ExitCriterion never = unreachable_exit();
    const std::vector<const snn::ExitCriterion*> exits{&eager, &never, &eager,
                                                       &never, &eager};

    std::vector<const snn::SpikeTrain*> ptrs;
    for (const auto& t : inputs) ptrs.push_back(&t);
    const std::vector<snn::SessionState*> sessions(5, nullptr);

    sim::Sia first(config, model, program);
    const auto run1 = first.run_batch(ptrs, sessions, exits);
    const auto stats1 = first.last_batch_stats();
    sim::Sia second(config, model, program);
    const auto run2 = second.run_batch(ptrs, sessions, exits);
    const auto stats2 = second.last_batch_stats();

    ASSERT_EQ(run1.size(), run2.size());
    for (std::size_t i = 0; i < run1.size(); ++i) {
        SCOPED_TRACE("item=" + std::to_string(i));
        expect_same_exit_result(run1[i], run2[i]);
        sim::Sia solo(config, model, program);
        expect_same_exit_result(run1[i], solo.run(inputs[i], *exits[i]));
    }
    EXPECT_EQ(stats1.retired_at, stats2.retired_at);
    EXPECT_EQ(stats1.backfills, stats2.backfills);
    EXPECT_EQ(stats1.chunk_passes, stats2.chunk_passes);
    EXPECT_GT(stats1.backfills, 0);
    EXPECT_GT(stats1.retired_early, 0);
}

TEST(SiaBatched, DisabledCriteriaRunExactLegacySchedule) {
    // All-null / all-disabled criteria must produce the legacy wave
    // schedule bit-for-bit, including the residency accounting.
    const auto model = conv_model(59);
    const auto inputs = random_batch(model, 7, 4, 591);
    sim::SiaConfig config;
    config.membrane_banks = 2;
    const auto program = core::SiaCompiler(config).compile(model);

    std::vector<const snn::SpikeTrain*> ptrs;
    for (const auto& t : inputs) ptrs.push_back(&t);
    const std::vector<snn::SessionState*> sessions(7, nullptr);

    sim::Sia legacy(config, model, program);
    const auto want = legacy.run_batch(ptrs, sessions);
    const auto want_stats = legacy.last_batch_stats();

    const snn::ExitCriterion disabled{};  // margin 0, stable 0: not armed
    const std::vector<const snn::ExitCriterion*> exits(7, &disabled);
    sim::Sia via_exits(config, model, program);
    const auto got = via_exits.run_batch(ptrs, sessions, exits);
    const auto got_stats = via_exits.last_batch_stats();

    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        SCOPED_TRACE("item=" + std::to_string(i));
        expect_same_exit_result(got[i], want[i]);
        EXPECT_EQ(got[i].timesteps, 4);
        EXPECT_EQ(got[i].exit_reason, snn::ExitReason::kNone);
    }
    EXPECT_EQ(got_stats.waves, want_stats.waves);
    EXPECT_EQ(got_stats.chunk_passes, want_stats.waves);
    EXPECT_EQ(got_stats.weight_bytes_streamed, want_stats.weight_bytes_streamed);
    EXPECT_EQ(got_stats.weight_bytes_sequential, want_stats.weight_bytes_sequential);
    EXPECT_EQ(got_stats.resident_cycles, want_stats.resident_cycles);
    EXPECT_EQ(got_stats.sequential_cycles, want_stats.sequential_cycles);
    EXPECT_EQ(got_stats.retired_early, 0);
    EXPECT_EQ(got_stats.backfills, 0);
}

TEST(SiaBatched, SingleRunsInterleaveWithBatchedRuns) {
    // A resident instance can alternate run() and run_batch() freely;
    // neither mode leaks state into the other.
    const auto model = conv_model(21);
    const auto inputs = random_batch(model, 5, 4, 23);
    const sim::SiaConfig config;
    const auto program = core::SiaCompiler(config).compile(model);

    sim::Sia fresh(config, model, program);
    const auto ref0 = fresh.run(inputs[0]);

    sim::Sia sia(config, model, program);
    const auto batched = sia.run_batch(inputs);
    const auto single = sia.run(inputs[0]);
    expect_same_sia_result(single, ref0);
    const auto batched_again = sia.run_batch(inputs);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        SCOPED_TRACE("item=" + std::to_string(i));
        expect_same_sia_result(batched_again[i], batched[i]);
    }
}

}  // namespace
}  // namespace sia
