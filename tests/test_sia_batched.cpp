// Batched resident sim::Sia equivalence matrix: batched execution must
// be bit-identical — spikes, logits, and per-layer cycle stats — to
// independent sequential Sia::run calls and (for spikes/logits) to the
// snn::FunctionalEngine reference, across batch sizes, thread counts,
// and model shapes; plus wave/residency accounting and edge cases.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/batch_runner.hpp"
#include "core/compiler.hpp"
#include "sim/sia.hpp"
#include "snn/engine.hpp"
#include "util/rng.hpp"

namespace sia {
namespace {

// ---- model zoo: a small conv net and a small MLP ----

snn::SnnModel conv_model(std::uint64_t seed) {
    util::Rng rng(seed);
    snn::SnnModel model;
    model.input_channels = 2;
    model.input_h = 6;
    model.input_w = 6;

    std::int64_t in_c = model.input_channels;
    for (std::int64_t d = 0; d < 3; ++d) {
        snn::SnnLayer layer;
        layer.op = snn::LayerOp::kConv;
        layer.label = "conv" + std::to_string(d);
        layer.input = static_cast<int>(d) - 1;
        auto& b = layer.main;
        b.in_channels = in_c;
        b.out_channels = 4;
        b.kernel = 3;
        b.stride = 1;
        b.padding = 1;
        b.weights.resize(static_cast<std::size_t>(in_c * 4 * 9));
        for (auto& w : b.weights) w = static_cast<std::int8_t>(rng.integer(-127, 127));
        b.gain.resize(4);
        b.bias.resize(4);
        for (auto& g : b.gain) g = static_cast<std::int16_t>(rng.integer(50, 2000));
        for (auto& h : b.bias) h = static_cast<std::int16_t>(rng.integer(-100, 100));
        layer.out_channels = 4;
        layer.out_h = 6;
        layer.out_w = 6;
        layer.in_h = 6;
        layer.in_w = 6;
        model.layers.push_back(std::move(layer));
        in_c = 4;
    }

    snn::SnnLayer fc;
    fc.op = snn::LayerOp::kLinear;
    fc.label = "fc";
    fc.input = 2;
    fc.spiking = false;
    fc.main.in_features = 4 * 6 * 6;
    fc.main.out_features = 4;
    fc.main.weights.resize(static_cast<std::size_t>(fc.main.in_features * 4));
    for (auto& w : fc.main.weights) w = static_cast<std::int8_t>(rng.integer(-64, 64));
    fc.main.gain.assign(4, 256);
    fc.main.bias.assign(4, 0);
    fc.out_channels = 4;
    model.layers.push_back(std::move(fc));
    model.classes = 4;
    model.validate();
    return model;
}

snn::SnnModel mlp_model(std::uint64_t seed) {
    util::Rng rng(seed);
    snn::SnnModel model;
    model.input_channels = 1;
    model.input_h = 4;
    model.input_w = 4;

    snn::SnnLayer hidden;
    hidden.op = snn::LayerOp::kLinear;
    hidden.label = "hidden";
    hidden.input = -1;
    hidden.spiking = true;
    hidden.main.in_features = 16;
    hidden.main.out_features = 12;
    hidden.main.weights.resize(16 * 12);
    for (auto& w : hidden.main.weights) {
        w = static_cast<std::int8_t>(rng.integer(-127, 127));
    }
    hidden.main.gain.resize(12);
    hidden.main.bias.resize(12);
    for (auto& g : hidden.main.gain) g = static_cast<std::int16_t>(rng.integer(100, 500));
    for (auto& h : hidden.main.bias) h = static_cast<std::int16_t>(rng.integer(-50, 50));
    hidden.out_channels = 12;
    model.layers.push_back(std::move(hidden));

    snn::SnnLayer readout;
    readout.op = snn::LayerOp::kLinear;
    readout.label = "readout";
    readout.input = 0;
    readout.spiking = false;
    readout.main.in_features = 12;
    readout.main.out_features = 4;
    readout.main.weights.resize(12 * 4);
    for (auto& w : readout.main.weights) {
        w = static_cast<std::int8_t>(rng.integer(-64, 64));
    }
    readout.main.gain.assign(4, 256);
    readout.main.bias.assign(4, 0);
    readout.out_channels = 4;
    model.layers.push_back(std::move(readout));
    model.classes = 4;
    model.validate();
    return model;
}

std::vector<snn::SpikeTrain> random_batch(const snn::SnnModel& model, std::size_t count,
                                          std::int64_t timesteps, std::uint64_t seed) {
    std::vector<snn::SpikeTrain> batch;
    batch.reserve(count);
    util::Rng rng(seed);
    for (std::size_t i = 0; i < count; ++i) {
        snn::SpikeTrain train(static_cast<std::size_t>(timesteps),
                              snn::SpikeMap(model.input_channels, model.input_h,
                                            model.input_w));
        for (auto& frame : train) {
            for (std::int64_t j = 0; j < frame.size(); ++j) {
                frame.set_flat(j, rng.bernoulli(0.3));
            }
        }
        batch.push_back(std::move(train));
    }
    return batch;
}

/// Full bit-identity: outputs AND as-if-sequential cycle accounting.
void expect_same_sia_result(const sim::SiaRunResult& got, const sim::SiaRunResult& want) {
    EXPECT_EQ(got.logits_per_step, want.logits_per_step);
    EXPECT_EQ(got.spike_counts, want.spike_counts);
    EXPECT_EQ(got.neuron_counts, want.neuron_counts);
    EXPECT_EQ(got.timesteps, want.timesteps);
    ASSERT_EQ(got.layer_stats.size(), want.layer_stats.size());
    for (std::size_t l = 0; l < got.layer_stats.size(); ++l) {
        SCOPED_TRACE("layer " + std::to_string(l));
        const auto& a = got.layer_stats[l];
        const auto& b = want.layer_stats[l];
        EXPECT_EQ(a.label, b.label);
        EXPECT_EQ(a.compute, b.compute);
        EXPECT_EQ(a.aggregate, b.aggregate);
        EXPECT_EQ(a.dma, b.dma);
        EXPECT_EQ(a.mmio, b.mmio);
        EXPECT_EQ(a.overhead, b.overhead);
        EXPECT_EQ(a.input_spike_events, b.input_spike_events);
        EXPECT_EQ(a.event_additions, b.event_additions);
        EXPECT_EQ(a.dense_ops, b.dense_ops);
    }
    EXPECT_EQ(got.total_cycles(), want.total_cycles());
}

/// Same bit-identity check against a unified-API core::Response.
void expect_same_sia_result(const core::Response& got, const sim::SiaRunResult& want) {
    EXPECT_EQ(got.logits_per_step, want.logits_per_step);
    EXPECT_EQ(got.spike_counts, want.spike_counts);
    EXPECT_EQ(got.neuron_counts, want.neuron_counts);
    EXPECT_EQ(got.timesteps, want.timesteps);
    ASSERT_EQ(got.layer_stats.size(), want.layer_stats.size());
    for (std::size_t l = 0; l < got.layer_stats.size(); ++l) {
        SCOPED_TRACE("layer " + std::to_string(l));
        const auto& a = got.layer_stats[l];
        const auto& b = want.layer_stats[l];
        EXPECT_EQ(a.label, b.label);
        EXPECT_EQ(a.compute, b.compute);
        EXPECT_EQ(a.aggregate, b.aggregate);
        EXPECT_EQ(a.dma, b.dma);
        EXPECT_EQ(a.mmio, b.mmio);
        EXPECT_EQ(a.overhead, b.overhead);
        EXPECT_EQ(a.input_spike_events, b.input_spike_events);
        EXPECT_EQ(a.event_additions, b.event_additions);
        EXPECT_EQ(a.dense_ops, b.dense_ops);
    }
    EXPECT_EQ(got.total_cycles(), want.total_cycles());
}

std::vector<core::Request> view_requests(const std::vector<snn::SpikeTrain>& batch) {
    std::vector<core::Request> requests;
    requests.reserve(batch.size());
    for (const auto& t : batch) requests.push_back(core::Request::view_train(t));
    return requests;
}

struct NamedModel {
    const char* name;
    snn::SnnModel model;
};

// ---- the equivalence matrix ----

TEST(SiaBatched, MatrixBatchedEqualsSequentialEqualsFunctional) {
    const sim::SiaConfig config;
    const std::int64_t timesteps = 4;
    const std::array<std::size_t, 4> batch_sizes = {1, 2, 7, 32};
    const std::array<std::size_t, 3> thread_counts = {1, 2, 8};

    std::vector<NamedModel> models;
    models.push_back({"conv", conv_model(101)});
    models.push_back({"mlp", mlp_model(102)});

    for (const auto& [name, model] : models) {
        SCOPED_TRACE(name);
        const auto inputs = random_batch(model, 32, timesteps, 777);

        // Sequential references: one resident simulator run item by item,
        // and the functional engine.
        const auto program = core::SiaCompiler(config).compile(model);
        sim::Sia sequential(config, model, program);
        snn::FunctionalEngine functional(model);
        std::vector<sim::SiaRunResult> sim_ref;
        std::vector<snn::RunResult> fun_ref;
        for (const auto& train : inputs) {
            sim_ref.push_back(sequential.run(train));
            fun_ref.push_back(functional.run(train));
        }

        // Direct batched execution on one instance (single-threaded).
        for (const std::size_t bs : batch_sizes) {
            SCOPED_TRACE("direct batch=" + std::to_string(bs));
            const std::vector<snn::SpikeTrain> sub(inputs.begin(),
                                                   inputs.begin() +
                                                       static_cast<std::ptrdiff_t>(bs));
            sim::Sia resident(config, model, program);
            const auto batched = resident.run_batch(sub);
            ASSERT_EQ(batched.size(), bs);
            for (std::size_t i = 0; i < bs; ++i) {
                SCOPED_TRACE("item=" + std::to_string(i));
                expect_same_sia_result(batched[i], sim_ref[i]);
                EXPECT_EQ(batched[i].logits_per_step, fun_ref[i].logits_per_step);
                EXPECT_EQ(batched[i].spike_counts, fun_ref[i].spike_counts);
            }
            EXPECT_EQ(resident.last_batch_stats().waves,
                      (static_cast<std::int64_t>(bs) + config.membrane_banks - 1) /
                          config.membrane_banks);
        }

        // Threaded resident scheduling through BatchRunner + SiaBackend.
        for (const std::size_t threads : thread_counts) {
            core::BatchRunner runner(std::make_shared<core::SiaBackend>(model, config),
                                     {.threads = threads});
            for (const std::size_t bs : batch_sizes) {
                SCOPED_TRACE("threads=" + std::to_string(threads) + " batch=" +
                             std::to_string(bs));
                const std::vector<snn::SpikeTrain> sub(
                    inputs.begin(), inputs.begin() + static_cast<std::ptrdiff_t>(bs));
                const auto results = runner.run(view_requests(sub));
                ASSERT_EQ(results.size(), bs);
                for (std::size_t i = 0; i < bs; ++i) {
                    SCOPED_TRACE("item=" + std::to_string(i));
                    expect_same_sia_result(results[i], sim_ref[i]);
                    EXPECT_EQ(results[i].logits_per_step, fun_ref[i].logits_per_step);
                }
                EXPECT_EQ(runner.last_stats().inputs, bs);
            }
        }
    }
}

TEST(SiaBatched, PerItemAndResidentSchedulesAgree) {
    const auto model = conv_model(5);
    const auto inputs = random_batch(model, 9, 4, 55);
    const sim::SiaConfig config;
    const auto requests = view_requests(inputs);

    // One backend, schedule flipped between batches: bit-identical
    // results, residency accounting only under kResident.
    auto backend = std::make_shared<core::SiaBackend>(model, config);
    core::BatchRunner runner(backend, {.threads = 4});
    const auto resident = runner.run(requests);
    EXPECT_EQ(runner.last_sim_batch_stats().batch, inputs.size());
    backend->set_schedule(core::SimSchedule::kPerItem);
    const auto per_item = runner.run(requests);
    EXPECT_EQ(runner.last_sim_batch_stats().batch, 0U);  // per-item: no residency

    ASSERT_EQ(resident.size(), per_item.size());
    for (std::size_t i = 0; i < resident.size(); ++i) {
        SCOPED_TRACE("item=" + std::to_string(i));
        EXPECT_EQ(resident[i].logits_per_step, per_item[i].logits_per_step);
        EXPECT_EQ(resident[i].spike_counts, per_item[i].spike_counts);
        EXPECT_EQ(resident[i].total_cycles(), per_item[i].total_cycles());
    }
}

// ---- waves, banking, and residency accounting ----

TEST(SiaBatched, OversizedBatchRunsInWavesAndAmortizes) {
    const auto model = conv_model(7);
    const auto inputs = random_batch(model, 7, 4, 71);

    sim::SiaConfig config;
    config.membrane_banks = 2;  // batch of 7 -> 4 waves
    const auto program = core::SiaCompiler(config).compile(model);

    sim::Sia sequential(config, model, program);
    std::vector<sim::SiaRunResult> ref;
    for (const auto& train : inputs) ref.push_back(sequential.run(train));

    sim::Sia resident(config, model, program);
    const auto batched = resident.run_batch(inputs);
    ASSERT_EQ(batched.size(), inputs.size());
    for (std::size_t i = 0; i < batched.size(); ++i) {
        SCOPED_TRACE("item=" + std::to_string(i));
        expect_same_sia_result(batched[i], ref[i]);
    }

    const sim::SiaBatchStats& stats = resident.last_batch_stats();
    EXPECT_EQ(stats.batch, 7U);
    EXPECT_EQ(stats.banks, 2);
    EXPECT_EQ(stats.waves, 4);
    EXPECT_EQ(stats.membrane_slice_bytes, config.membrane_bytes / 2 / 2);
    EXPECT_TRUE(stats.membrane_resident);  // tiny model: 288 B/layer per context

    // Kernels streamed once per wave, not once per inference.
    EXPECT_EQ(stats.weight_bytes_sequential,
              7 * program.dma_weight_stream_bytes());
    EXPECT_EQ(stats.weight_bytes_streamed, 4 * program.dma_weight_stream_bytes());

    // Residency strictly cheaper than independent runs; sequential total
    // equals the sum of the (as-if-sequential) per-item results.
    std::int64_t item_total = 0;
    for (const auto& r : batched) item_total += r.total_cycles();
    EXPECT_EQ(stats.sequential_cycles, item_total);
    EXPECT_LT(stats.resident_cycles, stats.sequential_cycles);
    EXPECT_GT(stats.amortization(), 1.0);
}

TEST(SiaBatched, ReportsWhenMembranesOverflowTheContextSlice) {
    // A model that fits one full phase bank but not a 1/banks slice:
    // results stay bit-exact (overflow host-mirrors), but the stats must
    // say the wave was not genuinely membrane-resident.
    const auto model = conv_model(31);  // peak layer potentials: 288 bytes
    const auto inputs = random_batch(model, 4, 4, 33);

    sim::SiaConfig config;
    config.membrane_bytes = 1024;  // full bank 512 B >= 288, slice 128 B < 288
    config.membrane_banks = 4;
    const auto program = core::SiaCompiler(config).compile(model);
    ASSERT_EQ(program.layers[0].spatial_tiles, 1);  // sequential mode fits

    sim::Sia sequential(config, model, program);
    sim::Sia resident(config, model, program);
    const auto batched = resident.run_batch(inputs);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        SCOPED_TRACE("item=" + std::to_string(i));
        expect_same_sia_result(batched[i], sequential.run(inputs[i]));
    }
    EXPECT_EQ(resident.last_batch_stats().membrane_slice_bytes, 128);
    EXPECT_FALSE(resident.last_batch_stats().membrane_resident);
}

TEST(SiaBatched, BatchOfOneHasNothingToAmortize) {
    const auto model = mlp_model(9);
    const auto inputs = random_batch(model, 1, 5, 91);
    const sim::SiaConfig config;
    const auto program = core::SiaCompiler(config).compile(model);

    sim::Sia sia(config, model, program);
    const auto ref = sia.run(inputs[0]);
    const auto batched = sia.run_batch(inputs);
    ASSERT_EQ(batched.size(), 1U);
    expect_same_sia_result(batched[0], ref);

    const sim::SiaBatchStats& stats = sia.last_batch_stats();
    EXPECT_EQ(stats.waves, 1);
    EXPECT_EQ(stats.weight_bytes_streamed, stats.weight_bytes_sequential);
    EXPECT_EQ(stats.resident_cycles, stats.sequential_cycles);
}

TEST(SiaBatched, EmptyBatch) {
    const auto model = conv_model(3);
    const sim::SiaConfig config;
    const auto program = core::SiaCompiler(config).compile(model);

    sim::Sia sia(config, model, program);
    EXPECT_TRUE(sia.run_batch(std::vector<snn::SpikeTrain>{}).empty());
    EXPECT_EQ(sia.last_batch_stats().waves, 0);

    core::BatchRunner runner(std::make_shared<core::SiaBackend>(model, config),
                             {.threads = 2});
    EXPECT_TRUE(runner.run(std::vector<core::Request>{}).empty());
    EXPECT_EQ(runner.last_stats().inputs, 0U);
}

TEST(SiaBatched, EmptyTrainInBatchThrows) {
    const auto model = conv_model(3);
    const sim::SiaConfig config;
    const auto program = core::SiaCompiler(config).compile(model);
    sim::Sia sia(config, model, program);

    auto inputs = random_batch(model, 2, 4, 13);
    inputs.push_back(snn::SpikeTrain{});
    EXPECT_THROW((void)sia.run_batch(inputs), std::invalid_argument);

    // The instance recovers: single runs still work after the failed batch.
    const auto ok = random_batch(model, 1, 4, 14);
    EXPECT_NO_THROW((void)sia.run(ok[0]));
}

TEST(SiaBatched, SingleRunsInterleaveWithBatchedRuns) {
    // A resident instance can alternate run() and run_batch() freely;
    // neither mode leaks state into the other.
    const auto model = conv_model(21);
    const auto inputs = random_batch(model, 5, 4, 23);
    const sim::SiaConfig config;
    const auto program = core::SiaCompiler(config).compile(model);

    sim::Sia fresh(config, model, program);
    const auto ref0 = fresh.run(inputs[0]);

    sim::Sia sia(config, model, program);
    const auto batched = sia.run_batch(inputs);
    const auto single = sia.run(inputs[0]);
    expect_same_sia_result(single, ref0);
    const auto batched_again = sia.run_batch(inputs);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        SCOPED_TRACE("item=" + std::to_string(i));
        expect_same_sia_result(batched_again[i], batched[i]);
    }
}

}  // namespace
}  // namespace sia
