// Model-level tests: topology of ResNet-18 / VGG-11, IR emission,
// trainability on a separable toy problem, quantized-activation switch.
#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "nn/resnet.hpp"
#include "nn/trainer.hpp"
#include "nn/vgg.hpp"

namespace sia::nn {
namespace {

TEST(ResNet18, TopologyMatchesPaperTable1) {
    util::Rng rng(1);
    ResNetConfig cfg;
    cfg.width = 64;  // the paper's width
    ResNet18 model(cfg, rng);
    const NetworkIR ir = model.ir();

    // 17 spiking conv layers (Fig. 6 x-axis) + FC readout.
    EXPECT_EQ(ir.spiking_layer_count(), 17U);

    // Count conv nodes by (channels, spatial size) as in Table I.
    int conv64_32 = 0;
    int conv128_16 = 0;
    int conv256_8 = 0;
    int conv512_4 = 0;
    for (const auto& node : ir.nodes) {
        if (node.op != IrOp::kConv) continue;
        if (node.out_channels == 64 && node.out_h == 32) ++conv64_32;
        if (node.out_channels == 128 && node.out_h == 16) ++conv128_16;
        if (node.out_channels == 256 && node.out_h == 8) ++conv256_8;
        if (node.out_channels == 512 && node.out_h == 4) ++conv512_4;
    }
    EXPECT_EQ(conv64_32, 5);   // "Conv 5 (3x3,64) 32x32"
    EXPECT_EQ(conv128_16, 4);  // "Conv 4 (3x3,128) 16x16"
    EXPECT_EQ(conv256_8, 4);   // "Conv 4 (3x3,256) 8x8"
    EXPECT_EQ(conv512_4, 4);   // "Conv 4 (3x3,512) 4x4"

    // FC 512x10.
    const auto& fc = ir.nodes.back();
    ASSERT_EQ(fc.op, IrOp::kLinear);
    EXPECT_EQ(fc.fc->in_features(), 512);
    EXPECT_EQ(fc.fc->out_features(), 10);
    EXPECT_EQ(fc.act, nullptr);  // readout
}

TEST(ResNet18, ParameterCountScalesWithWidth) {
    util::Rng rng(1);
    ResNetConfig small;
    small.width = 4;
    ResNet18 model(small, rng);
    std::int64_t params = 0;
    for (const Param* p : model.params()) params += p->value.numel();
    EXPECT_GT(params, 1000);

    // The paper's full-width network has ~11M parameters.
    ResNetConfig full;
    full.width = 64;
    ResNet18 big(full, rng);
    std::int64_t big_params = 0;
    for (const Param* p : big.params()) big_params += p->value.numel();
    EXPECT_GT(big_params, 10'000'000);
    EXPECT_LT(big_params, 12'500'000);
}

TEST(ResNet18, ResidualIrRouting) {
    util::Rng rng(1);
    ResNetConfig cfg;
    cfg.width = 8;
    ResNet18 model(cfg, rng);
    const NetworkIR ir = model.ir();
    // Every second block conv must carry a skip; downsample blocks
    // (first of stages 2-4) have a 1x1 skip conv, others identity.
    int identity_skips = 0;
    int downsample_skips = 0;
    for (const auto& node : ir.nodes) {
        if (node.op != IrOp::kConv || node.skip_src < 0) continue;
        if (node.skip_conv == nullptr) {
            ++identity_skips;
        } else {
            ++downsample_skips;
            EXPECT_EQ(node.skip_conv->geometry().kernel, 1);
        }
    }
    EXPECT_EQ(identity_skips + downsample_skips, 8);  // 8 BasicBlocks
    EXPECT_EQ(downsample_skips, 3);                   // stages 2, 3, 4
}

TEST(Vgg11, TopologyAndIr) {
    util::Rng rng(1);
    VggConfig cfg;
    cfg.width = 64;
    Vgg11 model(cfg, rng);
    const NetworkIR ir = model.ir();
    EXPECT_EQ(ir.spiking_layer_count(), 8U);  // 8 conv activations

    // Spatial schedule: 32,16,8,8,4,4,2,2 (stride-2 replaces pools).
    std::vector<std::int64_t> sizes;
    for (const auto& node : ir.nodes) {
        if (node.op == IrOp::kConv) sizes.push_back(node.out_h);
    }
    const std::vector<std::int64_t> expect = {32, 16, 8, 8, 4, 4, 2, 2};
    EXPECT_EQ(sizes, expect);

    const auto& fc = ir.nodes.back();
    EXPECT_EQ(fc.fc->in_features(), 512);  // 512 channels pooled to 1x1
    EXPECT_EQ(fc.fc->out_features(), 10);
}

TEST(Models, ForwardShapes) {
    util::Rng rng(2);
    ResNetConfig rcfg;
    rcfg.width = 4;
    ResNet18 resnet(rcfg, rng);
    VggConfig vcfg;
    vcfg.width = 4;
    Vgg11 vgg(vcfg, rng);
    tensor::Tensor x(tensor::Shape{2, 3, 32, 32});
    EXPECT_EQ(resnet.forward(x, false).shape(), (tensor::Shape{2, 10}));
    EXPECT_EQ(vgg.forward(x, false).shape(), (tensor::Shape{2, 10}));
}

TEST(Models, QuantSwitchTogglesAllActivations) {
    util::Rng rng(3);
    VggConfig cfg;
    cfg.width = 4;
    Vgg11 model(cfg, rng);
    model.enable_quantized_activations(4);
    for (Activation* a : model.activations()) {
        EXPECT_EQ(a->mode(), ActMode::kQuantRelu);
        EXPECT_EQ(a->levels(), 4);
    }
}

class ModelTraining : public ::testing::TestWithParam<bool> {};

TEST_P(ModelTraining, LearnsSeparableToyTask) {
    // Tiny dataset, tiny model: training should beat chance comfortably.
    data::SyntheticConfig dcfg;
    dcfg.classes = 4;
    dcfg.train_per_class = 20;
    dcfg.test_per_class = 10;
    dcfg.size = 16;
    dcfg.noise_stddev = 0.15F;
    const auto tt = data::make_synthetic(dcfg);

    util::Rng rng(4);
    std::unique_ptr<Model> model;
    if (GetParam()) {
        ResNetConfig cfg;
        cfg.width = 4;
        cfg.classes = 4;
        cfg.input_size = 16;
        model = std::make_unique<ResNet18>(cfg, rng);
    } else {
        VggConfig cfg;
        cfg.width = 4;
        cfg.classes = 4;
        cfg.input_size = 16;
        model = std::make_unique<Vgg11>(cfg, rng);
    }
    TrainConfig tcfg;
    tcfg.epochs = 6;
    tcfg.batch_size = 16;
    Trainer trainer(*model, tcfg);
    trainer.fit(tt.train.images, tt.train.labels);
    const EvalResult res = evaluate(*model, tt.test.images, tt.test.labels);
    EXPECT_GT(res.accuracy, 0.5) << "chance is 0.25";
}

INSTANTIATE_TEST_SUITE_P(BothModels, ModelTraining, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                             return info.param ? "ResNet18" : "Vgg11";
                         });

}  // namespace
}  // namespace sia::nn
