// Hardware-block unit tests: PE datapath & cycle semantics, aggregation
// core, BRAM banks, ping-pong membrane organisation, AXI cost models,
// controller FSM legality.
#include <gtest/gtest.h>

#include <array>

#include "sim/aggregation.hpp"
#include "sim/axi.hpp"
#include "sim/config.hpp"
#include "sim/controller.hpp"
#include "sim/memory.hpp"
#include "sim/pe.hpp"

namespace sia::sim {
namespace {

TEST(PeDatapath, WindowCycleCounts) {
    // 3x3 -> 3 rows x 3 cycles + 1 = 10, exactly the paper's schedule.
    EXPECT_EQ(SiaConfig::window_cycles(3), 10);
    EXPECT_EQ(SiaConfig::window_cycles(1), 4);
    EXPECT_EQ(SiaConfig::window_cycles(5), 31);   // 5 rows x 2 segs x 3 + 1
    EXPECT_EQ(SiaConfig::window_cycles(7), 64);   // 7 x 3 x 3 + 1
    EXPECT_EQ(SiaConfig::window_cycles(11), 133); // 11 x 4 x 3 + 1
}

TEST(PeDatapath, EventDrivenSegmentSkip) {
    Pe pe;
    pe.begin_window();
    const std::array<std::uint8_t, 3> none = {0, 0, 0};
    const std::array<std::int8_t, 3> w = {10, -5, 3};
    EXPECT_EQ(pe.accumulate_segment(none, w), 0);  // silent row: free
    const std::array<std::uint8_t, 3> some = {1, 0, 1};
    EXPECT_EQ(pe.accumulate_segment(some, w), 3);  // active row: 3 cycles
    EXPECT_EQ(pe.raw_partial(), 13);               // 10 + 3, mux zeroes -5
    EXPECT_EQ(pe.emit(), 13);
    EXPECT_TRUE(pe.emitted());
    EXPECT_EQ(pe.busy_cycles(), 3);
    EXPECT_EQ(pe.additions(), 2);
}

TEST(PeDatapath, EmitSaturates16) {
    Pe pe;
    pe.begin_window();
    const std::array<std::uint8_t, 3> all = {1, 1, 1};
    const std::array<std::int8_t, 3> w = {127, 127, 127};
    for (int i = 0; i < 200; ++i) (void)pe.accumulate_segment(all, w);
    EXPECT_EQ(pe.emit(), 32767);
}

TEST(PeArray, ScatterTapAccumulatesLanes) {
    const SiaConfig cfg;
    PeArray array(cfg);
    EXPECT_EQ(array.lanes(), 64);
    std::vector<std::int8_t> w(64, 2);
    std::vector<std::int32_t> partials(64, 5);
    array.scatter_tap(w, partials);
    for (const auto p : partials) EXPECT_EQ(p, 7);
}

TEST(Aggregation, BatchNormAffine) {
    // (psum * G) >> 8 + H with saturation.
    EXPECT_EQ(AggregationCore::batch_norm(100, 256, 10, 8), 110);
    EXPECT_EQ(AggregationCore::batch_norm(100, -256, 0, 8), -100);
    EXPECT_EQ(AggregationCore::batch_norm(40000, 256, 0, 8), 32767);  // psum sat first
}

TEST(Aggregation, ActivationModesMatchPaper) {
    // IF mode (mode bit 0): no leak.
    auto r = AggregationCore::activate(200, 100, 256, false, 4, snn::ResetMode::kSubtract);
    EXPECT_TRUE(r.spike);
    EXPECT_EQ(r.new_potential, 44);
    // LIF mode (mode bit 1): leak 1/16 applied before integration.
    r = AggregationCore::activate(160, 0, 256, true, 4, snn::ResetMode::kSubtract);
    EXPECT_FALSE(r.spike);
    EXPECT_EQ(r.new_potential, 150);
    // Reset to zero.
    r = AggregationCore::activate(200, 200, 256, false, 4, snn::ResetMode::kZero);
    EXPECT_TRUE(r.spike);
    EXPECT_EQ(r.new_potential, 0);
}

TEST(Aggregation, RetireCyclesPipelined) {
    EXPECT_EQ(AggregationCore::retire_cycles(160, 16, 4), 14);  // 10 + fill
    EXPECT_EQ(AggregationCore::retire_cycles(100, 16, 4), 11);  // ceil + fill
    EXPECT_EQ(AggregationCore::retire_cycles(0, 16, 4), 0);
}

TEST(Bram, ReadWriteAndCounters) {
    BramBank bank("test", 64);
    bank.write16(10, -1234);
    EXPECT_EQ(bank.read16(10), -1234);
    bank.write8(0, 0xAB);
    EXPECT_EQ(bank.read8(0), 0xAB);
    EXPECT_EQ(bank.bytes_written(), 3);
    EXPECT_EQ(bank.bytes_read(), 3);
}

TEST(Bram, CapacityEnforced) {
    BramBank bank("small", 8);
    EXPECT_THROW(bank.write16(7, 1), std::out_of_range);
    EXPECT_THROW((void)bank.read8(8), std::out_of_range);
    EXPECT_THROW((void)bank.read8(-1), std::out_of_range);
    EXPECT_NO_THROW(bank.write16(6, 1));
}

TEST(PingPong, RolesSwapPerTimestep) {
    PingPongMembrane mem(128);
    EXPECT_EQ(mem.bank_capacity(), 64);
    EXPECT_TRUE(mem.write_bank_is_u1());
    mem.write16(0, 42);               // written to U1
    mem.toggle();                     // now U1 is the read bank
    EXPECT_FALSE(mem.write_bank_is_u1());
    EXPECT_EQ(mem.read16(0), 42);
    mem.write16(0, 77);               // goes to U2
    mem.toggle();
    EXPECT_EQ(mem.read16(0), 77);     // now reads U2
}

TEST(PingPong, BanksAreIndependent) {
    PingPongMembrane mem(64);
    mem.write16(4, 11);   // U1
    mem.toggle();
    mem.write16(4, 22);   // U2
    EXPECT_EQ(mem.read16(4), 11);  // read bank is U1
    mem.toggle();
    EXPECT_EQ(mem.read16(4), 22);  // read bank is U2
}

TEST(PingPong, PartitionedContextsAreIndependent) {
    // Batched-mode banking: each per-inference context owns a slice of
    // both phase banks and its own ping-pong phase.
    PingPongMembrane mem(128);
    mem.partition(4);
    EXPECT_EQ(mem.contexts(), 4);
    EXPECT_EQ(mem.bank_capacity(), 16);  // 64-byte phase bank / 4 contexts

    for (std::int64_t c = 0; c < 4; ++c) {
        mem.set_active(c);
        mem.write16(0, static_cast<std::int16_t>(100 + c));
    }
    // Toggling one context does not move the others' phases.
    mem.set_active(2);
    mem.toggle();
    EXPECT_FALSE(mem.write_bank_is_u1());
    mem.set_active(1);
    EXPECT_TRUE(mem.write_bank_is_u1());
    mem.set_active(2);
    EXPECT_EQ(mem.read16(0), 102);

    // Slice bounds are enforced per context, and invalid selections throw.
    EXPECT_THROW(mem.write16(15, 1), std::out_of_range);
    EXPECT_THROW(mem.set_active(4), std::out_of_range);
    EXPECT_THROW(mem.partition(0), std::invalid_argument);

    // Re-partitioning to one context restores the classic organisation.
    mem.partition(1);
    EXPECT_EQ(mem.bank_capacity(), 64);
    EXPECT_TRUE(mem.write_bank_is_u1());
    mem.write16(0, 42);
    mem.toggle();
    EXPECT_EQ(mem.read16(0), 42);
}

TEST(Controller, DoneMayReInitForNextWave) {
    Controller ctrl;
    ctrl.transition(CtrlState::kInit);
    ctrl.transition(CtrlState::kLoadConfig);
    ctrl.transition(CtrlState::kReadInput);
    ctrl.transition(CtrlState::kPeCompute);
    ctrl.transition(CtrlState::kAggregate);
    ctrl.transition(CtrlState::kWriteOutput);
    ctrl.transition(CtrlState::kDone);
    // Batched resident runs start the next wave without going idle.
    EXPECT_NO_THROW(ctrl.transition(CtrlState::kInit));
    EXPECT_EQ(ctrl.entries(CtrlState::kInit), 2);
}

TEST(MemoryUnit, PaperProvisioning) {
    const SiaConfig cfg;
    const MemoryUnit mem(cfg);
    EXPECT_EQ(mem.incoming_spikes.capacity(), 128);
    EXPECT_EQ(mem.residual.capacity(), 128 * 1024);
    EXPECT_EQ(mem.weights.capacity(), 8 * 1024);
    EXPECT_EQ(mem.output_spikes.capacity(), 56 * 1024);
    EXPECT_EQ(mem.membrane.bank_capacity(), 32 * 1024);  // 64 kB split in two
}

TEST(Axi, DmaCyclesProportionalToBytes) {
    const SiaConfig cfg;  // 4 bytes/cycle
    AxiDma dma(cfg);
    EXPECT_EQ(dma.transfer(400), 100);
    EXPECT_EQ(dma.transfer(402), 101);  // rounds up
    EXPECT_EQ(dma.bytes_moved(), 802);
}

TEST(Axi, MmioWordCost) {
    SiaConfig cfg;
    cfg.mmio_cycles_per_word = 100;
    AxiLiteMmio mmio(cfg);
    EXPECT_EQ(mmio.transfer(8), 200);   // 2 words
    EXPECT_EQ(mmio.transfer(9), 300);   // 3 words (partial rounds up)
    EXPECT_EQ(mmio.words(), 5);
}

TEST(Axi, DmaRoundingAtNonMultipleByteCounts) {
    const SiaConfig cfg;  // 4 bytes/cycle
    for (std::int64_t bytes = 1; bytes <= 4; ++bytes) {
        EXPECT_EQ(AxiDma::cycles_for(bytes, cfg), 1) << bytes;
    }
    EXPECT_EQ(AxiDma::cycles_for(5, cfg), 2);
    EXPECT_EQ(AxiDma::cycles_for(7, cfg), 2);
    EXPECT_EQ(AxiDma::cycles_for(8, cfg), 2);
    EXPECT_EQ(AxiDma::cycles_for(9, cfg), 3);
}

TEST(Axi, ZeroAndNegativeByteTransfersAreFree) {
    const SiaConfig cfg;
    EXPECT_EQ(AxiDma::cycles_for(0, cfg), 0);
    EXPECT_EQ(AxiDma::cycles_for(-8, cfg), 0);
    AxiDma dma(cfg);
    EXPECT_EQ(dma.transfer(0), 0);
    EXPECT_EQ(dma.cycles(), 0);
    AxiLiteMmio mmio(cfg);
    EXPECT_EQ(mmio.transfer(0), 0);
    EXPECT_EQ(mmio.words(), 0);
}

TEST(Axi, DmaBytesPerCycleEdgeValues) {
    // A huge link never rounds a nonzero transfer down to zero cycles...
    SiaConfig wide;
    wide.dma_bytes_per_cycle = 1e12;
    EXPECT_EQ(AxiDma::cycles_for(1, wide), 1);
    EXPECT_EQ(AxiDma::cycles_for(64 * 1024, wide), 1);
    // ...a narrow one charges bytes/rate rounded up...
    SiaConfig narrow;
    narrow.dma_bytes_per_cycle = 0.5;
    EXPECT_EQ(AxiDma::cycles_for(1, narrow), 2);
    EXPECT_EQ(AxiDma::cycles_for(3, narrow), 6);
    // ...and a fractional rate rounds per-transfer, not per-byte.
    SiaConfig frac;
    frac.dma_bytes_per_cycle = 3.0;
    EXPECT_EQ(AxiDma::cycles_for(3, frac), 1);
    EXPECT_EQ(AxiDma::cycles_for(4, frac), 2);
    EXPECT_EQ(AxiDma::cycles_for(9, frac), 3);
    EXPECT_EQ(AxiDma::cycles_for(10, frac), 4);
}

TEST(Axi, MmioWordRounding) {
    const SiaConfig cfg;  // 564 cycles/word (Fig. 4 measurement)
    AxiLiteMmio mmio(cfg);
    EXPECT_EQ(mmio.transfer(1), cfg.mmio_cycles_per_word);
    EXPECT_EQ(mmio.transfer(4), cfg.mmio_cycles_per_word);
    EXPECT_EQ(mmio.transfer(5), 2 * cfg.mmio_cycles_per_word);
    EXPECT_EQ(mmio.words(), 4);
    EXPECT_EQ(mmio.cycles(), 4 * cfg.mmio_cycles_per_word);
}

TEST(Controller, LegalLayerLoop) {
    Controller ctrl;
    ctrl.transition(CtrlState::kInit);
    ctrl.transition(CtrlState::kLoadConfig);
    for (int t = 0; t < 2; ++t) {
        ctrl.transition(CtrlState::kReadInput);
        ctrl.transition(CtrlState::kPeCompute);
        ctrl.transition(CtrlState::kPeCompute);  // multi-tile
        ctrl.transition(CtrlState::kAggregate);
        ctrl.transition(CtrlState::kWriteOutput);
    }
    ctrl.transition(CtrlState::kLoadConfig);  // next layer
    ctrl.transition(CtrlState::kReadInput);
    ctrl.transition(CtrlState::kPeCompute);
    ctrl.transition(CtrlState::kAggregate);
    ctrl.transition(CtrlState::kWriteOutput);
    ctrl.transition(CtrlState::kDone);
    EXPECT_EQ(ctrl.entries(CtrlState::kPeCompute), 5);
    EXPECT_EQ(ctrl.entries(CtrlState::kLoadConfig), 2);
}

TEST(Controller, IllegalTransitionsThrow) {
    Controller ctrl;
    EXPECT_THROW(ctrl.transition(CtrlState::kPeCompute), std::logic_error);
    ctrl.transition(CtrlState::kInit);
    EXPECT_THROW(ctrl.transition(CtrlState::kDone), std::logic_error);
    ctrl.transition(CtrlState::kLoadConfig);
    EXPECT_THROW(ctrl.transition(CtrlState::kAggregate), std::logic_error);
}

TEST(Config, PeakGopsMatchesPaper) {
    const SiaConfig cfg;
    // 64 PEs x 6 ops x 100 MHz = 38.4 GOPS (paper's headline).
    EXPECT_DOUBLE_EQ(cfg.peak_gops(), 38.4);
    EXPECT_EQ(cfg.pe_count(), 64);
    EXPECT_DOUBLE_EQ(cfg.cycles_to_ms(100000), 1.0);
}

}  // namespace
}  // namespace sia::sim
