// BatchRunner / ThreadPool tests: batched execution must be bit-identical
// to sequential single-engine runs for every thread count, edge-case
// batches must behave, and the pool must propagate worker exceptions.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/batch_runner.hpp"
#include "sim/sia.hpp"
#include "snn/encoding.hpp"
#include "snn/engine.hpp"
#include "util/thread_pool.hpp"

namespace sia {
namespace {

// ---- compact random model/stimulus helpers (mirrors test_properties) ----

snn::SnnModel small_model(std::uint64_t seed) {
    util::Rng rng(seed);
    snn::SnnModel model;
    model.input_channels = 2;
    model.input_h = 6;
    model.input_w = 6;

    std::int64_t in_c = model.input_channels;
    for (std::int64_t d = 0; d < 3; ++d) {
        snn::SnnLayer layer;
        layer.op = snn::LayerOp::kConv;
        layer.label = "conv" + std::to_string(d);
        layer.input = static_cast<int>(d) - 1;
        auto& b = layer.main;
        b.in_channels = in_c;
        b.out_channels = 4;
        b.kernel = 3;
        b.stride = 1;
        b.padding = 1;
        b.weights.resize(static_cast<std::size_t>(in_c * 4 * 9));
        for (auto& w : b.weights) w = static_cast<std::int8_t>(rng.integer(-127, 127));
        b.gain.resize(4);
        b.bias.resize(4);
        for (auto& g : b.gain) g = static_cast<std::int16_t>(rng.integer(50, 2000));
        for (auto& h : b.bias) h = static_cast<std::int16_t>(rng.integer(-100, 100));
        layer.out_channels = 4;
        layer.out_h = 6;
        layer.out_w = 6;
        layer.in_h = 6;
        layer.in_w = 6;
        model.layers.push_back(std::move(layer));
        in_c = 4;
    }

    snn::SnnLayer fc;
    fc.op = snn::LayerOp::kLinear;
    fc.label = "fc";
    fc.input = 2;
    fc.spiking = false;
    fc.main.in_features = 4 * 6 * 6;
    fc.main.out_features = 4;
    fc.main.weights.resize(static_cast<std::size_t>(fc.main.in_features * 4));
    for (auto& w : fc.main.weights) w = static_cast<std::int8_t>(rng.integer(-64, 64));
    fc.main.gain.assign(4, 256);
    fc.main.bias.assign(4, 0);
    fc.out_channels = 4;
    model.layers.push_back(std::move(fc));
    model.classes = 4;
    model.validate();
    return model;
}

std::vector<snn::SpikeTrain> random_batch(const snn::SnnModel& model, std::size_t count,
                                          std::int64_t timesteps, std::uint64_t seed) {
    std::vector<snn::SpikeTrain> batch;
    batch.reserve(count);
    util::Rng rng(seed);
    for (std::size_t i = 0; i < count; ++i) {
        snn::SpikeTrain train(static_cast<std::size_t>(timesteps),
                              snn::SpikeMap(model.input_channels, model.input_h,
                                            model.input_w));
        for (auto& frame : train) {
            for (std::int64_t j = 0; j < frame.size(); ++j) {
                frame.set_flat(j, rng.bernoulli(0.3));
            }
        }
        batch.push_back(std::move(train));
    }
    return batch;
}

std::vector<core::Request> view_requests(const std::vector<snn::SpikeTrain>& batch) {
    std::vector<core::Request> requests;
    requests.reserve(batch.size());
    for (const auto& t : batch) requests.push_back(core::Request::view_train(t));
    return requests;
}

void expect_same_result(const core::Response& a, const snn::RunResult& b) {
    EXPECT_EQ(a.logits_per_step, b.logits_per_step);
    EXPECT_EQ(a.spike_counts, b.spike_counts);
    EXPECT_EQ(a.neuron_counts, b.neuron_counts);
    EXPECT_EQ(a.timesteps, b.timesteps);
}

void expect_same_result(const core::Response& a, const core::Response& b) {
    EXPECT_EQ(a.logits_per_step, b.logits_per_step);
    EXPECT_EQ(a.spike_counts, b.spike_counts);
    EXPECT_EQ(a.neuron_counts, b.neuron_counts);
    EXPECT_EQ(a.timesteps, b.timesteps);
}

// ---- ThreadPool ----

TEST(ThreadPool, RunsEveryItemExactlyOnce) {
    util::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4U);
    std::vector<std::atomic<int>> hits(100);
    pool.parallel_for(100, [&](std::size_t item, std::size_t worker) {
        ASSERT_LT(worker, 4U);
        hits[item].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossBatches) {
    util::ThreadPool pool(2);
    std::atomic<int> total{0};
    for (int round = 0; round < 5; ++round) {
        pool.parallel_for(10, [&](std::size_t, std::size_t) { total.fetch_add(1); });
    }
    EXPECT_EQ(total.load(), 50);
}

TEST(ThreadPool, EmptyBatchReturnsImmediately) {
    util::ThreadPool pool(2);
    bool ran = false;
    pool.parallel_for(0, [&](std::size_t, std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, PropagatesWorkerException) {
    util::ThreadPool pool(3);
    EXPECT_THROW(
        pool.parallel_for(20,
                          [&](std::size_t item, std::size_t) {
                              if (item == 7) throw std::runtime_error("boom");
                          }),
        std::runtime_error);
    // Pool survives the failed batch.
    std::atomic<int> total{0};
    pool.parallel_for(4, [&](std::size_t, std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 4);
}

TEST(ThreadPool, ThrowMidBatchCancelsCleanlyAndRethrowsFirstException) {
    // Single worker makes the schedule deterministic: the throw at item 3
    // must cancel every unstarted item (no later lambda runs, so the
    // second would-be exception never materializes), and the rethrown
    // exception must be the first one captured.
    util::ThreadPool pool(1);
    std::vector<std::size_t> ran;
    try {
        pool.parallel_for(10, [&](std::size_t item, std::size_t) {
            ran.push_back(item);
            if (item == 3) throw std::runtime_error("first failure");
            if (item == 5) throw std::logic_error("second failure");
        });
        FAIL() << "parallel_for must rethrow";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "first failure");
    }
    EXPECT_EQ(ran, (std::vector<std::size_t>{0, 1, 2, 3}));

    // The pool stays reusable: full batches run to completion afterwards,
    // repeatedly.
    for (int round = 0; round < 3; ++round) {
        std::atomic<int> total{0};
        pool.parallel_for(8, [&](std::size_t, std::size_t) { total.fetch_add(1); });
        EXPECT_EQ(total.load(), 8) << "round " << round;
    }
}

TEST(ThreadPool, ThrowWithManyWorkersStillDrainsAndRecovers) {
    util::ThreadPool pool(4);
    for (int round = 0; round < 3; ++round) {
        std::atomic<int> started{0};
        // Every item throws: each worker's first item cancels the rest,
        // so at most one item per worker ever starts — a deterministic
        // bound on how far cancellation lets the batch run.
        EXPECT_THROW(pool.parallel_for(64,
                                       [&](std::size_t, std::size_t) {
                                           started.fetch_add(1);
                                           throw std::runtime_error("boom");
                                       }),
                     std::runtime_error);
        EXPECT_GE(started.load(), 1);
        EXPECT_LE(started.load(), 4);
        std::atomic<int> total{0};
        pool.parallel_for(16, [&](std::size_t, std::size_t) { total.fetch_add(1); });
        EXPECT_EQ(total.load(), 16) << "round " << round;
    }
}

// ---- BatchRunner ----

TEST(BatchRunner, BitExactAcrossThreadCounts) {
    const auto model = small_model(7);
    const auto batch = random_batch(model, 6, 5, 17);

    // Sequential reference: one engine, inputs one after another.
    snn::FunctionalEngine engine(model);
    std::vector<snn::RunResult> reference;
    reference.reserve(batch.size());
    for (const auto& train : batch) reference.push_back(engine.run(train));

    for (const std::size_t threads : {1UL, 2UL, 8UL}) {
        core::BatchRunner runner(model, {.threads = threads});
        EXPECT_EQ(runner.threads(), threads);
        const auto results = runner.run(view_requests(batch));
        ASSERT_EQ(results.size(), reference.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
            SCOPED_TRACE("threads=" + std::to_string(threads) + " item=" +
                         std::to_string(i));
            expect_same_result(results[i], reference[i]);
        }
        EXPECT_EQ(runner.last_stats().inputs, batch.size());
        EXPECT_EQ(runner.last_stats().threads, threads);
    }
}

TEST(BatchRunner, EmptyBatch) {
    const auto model = small_model(7);
    core::BatchRunner runner(model, {.threads = 2});
    EXPECT_TRUE(runner.run(std::vector<core::Request>{}).empty());
    EXPECT_EQ(runner.last_stats().inputs, 0U);
}

TEST(BatchRunner, OversizedBatchManyMoreItemsThanThreads) {
    const auto model = small_model(3);
    const auto batch = random_batch(model, 33, 3, 23);

    snn::FunctionalEngine engine(model);
    core::BatchRunner runner(model, {.threads = 4});
    const auto results = runner.run(view_requests(batch));
    ASSERT_EQ(results.size(), 33U);
    for (std::size_t i = 0; i < results.size(); ++i) {
        SCOPED_TRACE("item=" + std::to_string(i));
        expect_same_result(results[i], engine.run(batch[i]));
    }
}

TEST(BatchRunner, RunImagesMatchesManualEncode) {
    const auto model = small_model(5);
    const std::int64_t timesteps = 6;

    std::vector<tensor::Tensor> images;
    util::Rng rng(29);
    for (int i = 0; i < 5; ++i) {
        tensor::Tensor img(tensor::Shape{1, model.input_channels, model.input_h,
                                         model.input_w});
        for (std::int64_t j = 0; j < img.numel(); ++j) img.flat(j) = rng.uniform();
        images.push_back(std::move(img));
    }

    core::BatchRunner runner(model, {.threads = 3});
    std::vector<core::Request> requests;
    for (const auto& img : images) {
        requests.push_back(core::Request::view_thermometer(img, timesteps));
    }
    const auto results = runner.run(requests);

    snn::FunctionalEngine engine(model);
    ASSERT_EQ(results.size(), images.size());
    for (std::size_t i = 0; i < images.size(); ++i) {
        SCOPED_TRACE("item=" + std::to_string(i));
        const auto train = snn::encode_thermometer(images[i], timesteps);
        expect_same_result(results[i], engine.run(train));
    }
}

TEST(BatchRunner, SimBatchMatchesFunctionalLogits) {
    const auto model = small_model(11);
    const auto batch = random_batch(model, 3, 4, 31);
    const auto requests = view_requests(batch);

    core::BatchRunner functional_runner(model, {.threads = 2});
    const auto functional = functional_runner.run(requests);
    core::BatchRunner sim_runner(
        std::make_shared<core::SiaBackend>(model, sim::SiaConfig{}), {.threads = 2});
    const auto simulated = sim_runner.run(requests);

    ASSERT_EQ(simulated.size(), functional.size());
    for (std::size_t i = 0; i < simulated.size(); ++i) {
        SCOPED_TRACE("item=" + std::to_string(i));
        EXPECT_EQ(simulated[i].logits_per_step, functional[i].logits_per_step);
        EXPECT_EQ(simulated[i].spike_counts, functional[i].spike_counts);
    }
    // Cached program + resident instances: a second batch through the
    // same backend must also agree.
    const auto again = sim_runner.run(requests);
    ASSERT_EQ(again.size(), simulated.size());
    for (std::size_t i = 0; i < again.size(); ++i) {
        EXPECT_EQ(again[i].logits_per_step, simulated[i].logits_per_step);
    }
}

TEST(BatchRunner, StatsSeparateSetupFromRunTime) {
    const auto model = small_model(7);
    const auto batch = random_batch(model, 8, 5, 17);
    // One worker: engine/Sia construction then deterministically happens
    // in the first batch (with more workers a worker that received no
    // items builds its engine in a later batch).
    core::BatchRunner runner(model, {.threads = 1});

    // First batch pays engine construction; it must be attributed to
    // setup_ms, not folded into the per-item run time.
    const auto requests = view_requests(batch);
    (void)runner.run(requests);
    const auto cold = runner.last_stats();
    EXPECT_GT(cold.setup_ms, 0.0);
    EXPECT_GT(cold.run_ms, 0.0);

    // Warm runner: engines are cached, so a second batch reports zero
    // construction time — the amortization made visible.
    (void)runner.run(requests);
    const auto warm = runner.last_stats();
    EXPECT_EQ(warm.setup_ms, 0.0);
    EXPECT_GT(warm.run_ms, 0.0);

    // Same for the resident simulator path: the first batch through a
    // SiaBackend compiles the program and builds per-worker Sia
    // instances, the second reuses both.
    core::BatchRunner sim_runner(
        std::make_shared<core::SiaBackend>(model, sim::SiaConfig{}), {.threads = 1});
    (void)sim_runner.run(requests);
    EXPECT_GT(sim_runner.last_stats().setup_ms, 0.0);
    (void)sim_runner.run(requests);
    EXPECT_EQ(sim_runner.last_stats().setup_ms, 0.0);
}

TEST(BatchRunner, PoissonEncodingIsThreadCountInvariant) {
    const auto model = small_model(5);
    const std::int64_t timesteps = 6;

    std::vector<tensor::Tensor> images;
    util::Rng rng(43);
    for (int i = 0; i < 7; ++i) {
        tensor::Tensor img(tensor::Shape{1, model.input_channels, model.input_h,
                                         model.input_w});
        for (std::int64_t j = 0; j < img.numel(); ++j) img.flat(j) = rng.uniform();
        images.push_back(std::move(img));
    }

    std::vector<core::Request> requests;
    for (const auto& img : images) {
        requests.push_back(core::Request::view_poisson(img, timesteps));
    }
    core::BatchRunner one(model, {.threads = 1, .seed = 77});
    core::BatchRunner eight(model, {.threads = 8, .seed = 77});
    const auto a = one.run(requests);
    const auto b = eight.run(requests);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("item=" + std::to_string(i));
        expect_same_result(a[i], b[i]);
    }

    // A different batch seed changes the stochastic encoding.
    core::BatchRunner other(model, {.threads = 2, .seed = 78});
    const auto c = other.run(requests);
    bool any_diff = false;
    for (std::size_t i = 0; i < c.size(); ++i) {
        any_diff = any_diff || c[i].spike_counts != a[i].spike_counts;
    }
    EXPECT_TRUE(any_diff);
}

TEST(BatchRunner, ItemRngStreamsAreThreadCountInvariant) {
    const auto model = small_model(7);
    core::BatchRunner one(model, {.threads = 1, .seed = 99});
    core::BatchRunner eight(model, {.threads = 8, .seed = 99});
    for (std::size_t item = 0; item < 16; ++item) {
        auto a = one.item_rng(item);
        auto b = eight.item_rng(item);
        for (int draw = 0; draw < 8; ++draw) {
            EXPECT_EQ(a.engine()(), b.engine()());
        }
    }
    // Different items get decorrelated streams.
    auto r0 = one.item_rng(0);
    auto r1 = one.item_rng(1);
    EXPECT_NE(r0.engine()(), r1.engine()());
}

}  // namespace
}  // namespace sia
