// Multi-model, multi-tenant serving tests: model registry routing,
// weighted-round-robin tenant fairness, priority lanes (preemption and
// shed-lowest-first eviction), hot reload under load, per-lane
// unregister isolation, a concurrent stress matrix over
// {models x tenants x priorities} x {kBlock, kReject}, and the
// determinism contract across wildly different server configurations.
//
// Wave composition is tested deterministically: a gated backend holds
// the first wave in flight while the test fills the admission queue,
// so the next wave is a pure function of queue state — no timing.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/backend.hpp"
#include "core/server.hpp"
#include "snn/engine.hpp"
#include "util/rng.hpp"

namespace sia {
namespace {

using namespace std::chrono_literals;
using core::BackpressurePolicy;
using core::Priority;

// ---- compact random model/stimulus helpers (mirrors test_server) ----

snn::SnnModel small_model(std::uint64_t seed) {
    util::Rng rng(seed);
    snn::SnnModel model;
    model.input_channels = 2;
    model.input_h = 6;
    model.input_w = 6;

    snn::SnnLayer layer;
    layer.op = snn::LayerOp::kConv;
    layer.label = "conv0";
    layer.input = -1;
    auto& b = layer.main;
    b.in_channels = 2;
    b.out_channels = 4;
    b.kernel = 3;
    b.stride = 1;
    b.padding = 1;
    b.weights.resize(static_cast<std::size_t>(2 * 4 * 9));
    for (auto& w : b.weights) w = static_cast<std::int8_t>(rng.integer(-127, 127));
    b.gain.resize(4);
    b.bias.resize(4);
    for (auto& g : b.gain) g = static_cast<std::int16_t>(rng.integer(50, 2000));
    for (auto& h : b.bias) h = static_cast<std::int16_t>(rng.integer(-100, 100));
    layer.out_channels = 4;
    layer.out_h = 6;
    layer.out_w = 6;
    layer.in_h = 6;
    layer.in_w = 6;
    model.layers.push_back(std::move(layer));

    snn::SnnLayer fc;
    fc.op = snn::LayerOp::kLinear;
    fc.label = "fc";
    fc.input = 0;
    fc.spiking = false;
    fc.main.in_features = 4 * 6 * 6;
    fc.main.out_features = 4;
    fc.main.weights.resize(static_cast<std::size_t>(fc.main.in_features * 4));
    for (auto& w : fc.main.weights) w = static_cast<std::int8_t>(rng.integer(-64, 64));
    fc.main.gain.assign(4, 256);
    fc.main.bias.assign(4, 0);
    fc.out_channels = 4;
    model.layers.push_back(std::move(fc));
    model.classes = 4;
    model.validate();
    return model;
}

snn::SpikeTrain random_train(const snn::SnnModel& model, std::int64_t timesteps,
                             std::uint64_t seed) {
    util::Rng rng(seed);
    snn::SpikeTrain train(static_cast<std::size_t>(timesteps),
                          snn::SpikeMap(model.input_channels, model.input_h,
                                        model.input_w));
    for (auto& frame : train) {
        for (std::int64_t j = 0; j < frame.size(); ++j) {
            frame.set_flat(j, rng.bernoulli(0.3));
        }
    }
    return train;
}

tensor::Tensor random_image(const snn::SnnModel& model, std::uint64_t seed) {
    util::Rng rng(seed);
    tensor::Tensor img(
        tensor::Shape{1, model.input_channels, model.input_h, model.input_w});
    for (std::int64_t j = 0; j < img.numel(); ++j) img.flat(j) = rng.uniform();
    return img;
}

/// Waits (bounded) for a predicate that another thread flips.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds budget = 2000ms) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (!pred()) {
        if (std::chrono::steady_clock::now() > deadline) return false;
        std::this_thread::sleep_for(1ms);
    }
    return true;
}

/// One request as a wave saw it.
struct WaveEntry {
    std::string tenant;
    Priority priority = Priority::kNormal;
    std::uint64_t stream = 0;
};

/// Backend that records every wave it executes (tenant / priority /
/// pinned stream, in wave order) and blocks inside the first wave until
/// release(). While the gate is closed the dispatcher is pinned inside
/// BatchRunner::run, so the test can fill the admission queue and the
/// *next* wave's composition is a deterministic function of queue state.
class RecordingBackend final : public core::Backend {
public:
    explicit RecordingBackend(const snn::SnnModel& model) : Backend(model) {}

    [[nodiscard]] std::string_view name() const noexcept override {
        return "recording";
    }

    void prepare(std::size_t /*workers*/) override {
        // Called once per BatchRunner::run: opens a new wave record.
        const std::lock_guard<std::mutex> lock(mutex_);
        waves_.emplace_back();
    }

    void run_span(std::size_t /*worker*/, std::span<const core::Request> requests,
                  std::span<core::Response> responses, std::size_t base,
                  std::uint64_t /*seed*/) override {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            auto& wave = waves_.back();
            if (wave.size() < base + requests.size()) {
                wave.resize(base + requests.size());
            }
            for (std::size_t i = 0; i < requests.size(); ++i) {
                wave[base + i] = WaveEntry{requests[i].tenant, requests[i].priority,
                                           requests[i].rng_stream.value_or(0)};
            }
            ++entered_;
            cv_.wait(lock, [this] { return open_; });
        }
        for (std::size_t i = 0; i < requests.size(); ++i) {
            core::Response r;
            r.logits_per_step = {
                {static_cast<std::int64_t>(requests[i].rng_stream.value_or(0))}};
            r.timesteps = 1;
            responses[i] = std::move(r);
        }
    }

    void release() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            open_ = true;
        }
        cv_.notify_all();
    }
    [[nodiscard]] int entered() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return entered_;
    }
    [[nodiscard]] std::vector<std::vector<WaveEntry>> waves() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return waves_;
    }

private:
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool open_ = false;
    int entered_ = 0;
    std::vector<std::vector<WaveEntry>> waves_;
};

std::vector<std::uint64_t> streams_of(const std::vector<WaveEntry>& wave) {
    std::vector<std::uint64_t> streams;
    streams.reserve(wave.size());
    for (const auto& e : wave) streams.push_back(e.stream);
    return streams;
}

// ---- wave composition: weighted round-robin fairness ----

TEST(MultiTenantWaves, WeightedRoundRobinInterleavesTenantsBySlots) {
    const auto model = small_model(3);
    auto backend = std::make_shared<RecordingBackend>(model);
    core::Server server(
        std::static_pointer_cast<core::Backend>(backend),
        {.threads = 1,
         .max_queue = 16,
         .max_batch = 8,
         .tenant_weights = {{"alpha", 2}, {"beta", 1}, {"gamma", 1}}});
    const auto train = random_train(model, 2, 9);

    // Plug: occupies the runner so the backlog accumulates. Stream 0.
    auto plug = server.submit(core::Request::view_train(train));
    ASSERT_TRUE(eventually([&] { return backend->entered() >= 1; }));

    // Backlog, all normal priority. Streams 1..8 in submission order.
    std::vector<std::future<core::Response>> futures;
    for (int i = 0; i < 4; ++i) {
        futures.push_back(server.submit(
            core::Request::view_train(train).with("", "alpha")));
    }
    for (int i = 0; i < 2; ++i) {
        futures.push_back(server.submit(
            core::Request::view_train(train).with("", "beta")));
    }
    for (int i = 0; i < 2; ++i) {
        futures.push_back(server.submit(
            core::Request::view_train(train).with("", "gamma")));
    }
    ASSERT_EQ(server.queue_depth(), 8U);

    backend->release();
    plug.get();
    for (auto& f : futures) f.get();
    server.shutdown();

    // Rotation follows activation order [alpha, beta, gamma]; alpha's
    // weight buys it two slots per visit:
    //   alpha alpha beta gamma alpha alpha beta gamma
    const auto waves = backend->waves();
    ASSERT_EQ(waves.size(), 2U);
    EXPECT_EQ(streams_of(waves[1]),
              (std::vector<std::uint64_t>{1, 2, 5, 7, 3, 4, 6, 8}));
}

TEST(MultiTenantWaves, CursorResumesWhereTheWaveWasCutOff) {
    const auto model = small_model(4);
    auto backend = std::make_shared<RecordingBackend>(model);
    core::Server server(std::static_pointer_cast<core::Backend>(backend),
                        {.threads = 1,
                         .max_queue = 16,
                         .max_batch = 2,
                         .tenant_weights = {{"alpha", 3}}});
    const auto train = random_train(model, 2, 10);

    auto plug = server.submit(core::Request::view_train(train));
    ASSERT_TRUE(eventually([&] { return backend->entered() >= 1; }));

    // alpha: streams 1,2,3 — beta: streams 4,5.
    std::vector<std::future<core::Response>> futures;
    for (int i = 0; i < 3; ++i) {
        futures.push_back(server.submit(
            core::Request::view_train(train).with("", "alpha")));
    }
    for (int i = 0; i < 2; ++i) {
        futures.push_back(server.submit(
            core::Request::view_train(train).with("", "beta")));
    }

    backend->release();
    plug.get();
    for (auto& f : futures) f.get();
    server.shutdown();

    // max_batch = 2 cuts wave 2 inside alpha's 3-slot quantum, so the
    // cursor stays on alpha: wave 3 opens with alpha's remaining slot
    // (stream 3) before beta's oldest (stream 4) — not [4, 3].
    const auto waves = backend->waves();
    ASSERT_EQ(waves.size(), 4U);
    EXPECT_EQ(streams_of(waves[1]), (std::vector<std::uint64_t>{1, 2}));
    EXPECT_EQ(streams_of(waves[2]), (std::vector<std::uint64_t>{3, 4}));
    EXPECT_EQ(streams_of(waves[3]), (std::vector<std::uint64_t>{5}));
}

// ---- wave composition: priority lanes ----

TEST(MultiTenantWaves, HighLaneEmptiesBeforeNormalBeforeLow) {
    const auto model = small_model(5);
    auto backend = std::make_shared<RecordingBackend>(model);
    core::Server server(std::static_pointer_cast<core::Backend>(backend),
                        {.threads = 1, .max_queue = 16, .max_batch = 8});
    const auto train = random_train(model, 2, 11);

    auto plug = server.submit(core::Request::view_train(train));
    ASSERT_TRUE(eventually([&] { return backend->entered() >= 1; }));

    // Arrival order deliberately scrambles priorities: N(1) L(2) H(3)
    // N(4) H(5). The high lane preempts formation — its wave carries
    // nothing else, so a high request never waits on lower-priority
    // batchmates — then normal fills before low, FIFO within each
    // lane, regardless of arrival time.
    std::vector<std::future<core::Response>> futures;
    futures.push_back(server.submit(
        core::Request::view_train(train).with("", "", Priority::kNormal)));
    futures.push_back(server.submit(
        core::Request::view_train(train).with("", "", Priority::kLow)));
    futures.push_back(server.submit(
        core::Request::view_train(train).with("", "", Priority::kHigh)));
    futures.push_back(server.submit(
        core::Request::view_train(train).with("", "", Priority::kNormal)));
    futures.push_back(server.submit(
        core::Request::view_train(train).with("", "", Priority::kHigh)));

    backend->release();
    plug.get();
    for (auto& f : futures) f.get();
    server.shutdown();

    const auto waves = backend->waves();
    ASSERT_EQ(waves.size(), 3U);
    EXPECT_EQ(streams_of(waves[1]), (std::vector<std::uint64_t>{3, 5}));
    EXPECT_EQ(waves[1][0].priority, Priority::kHigh);
    EXPECT_EQ(waves[1][1].priority, Priority::kHigh);
    EXPECT_EQ(streams_of(waves[2]), (std::vector<std::uint64_t>{1, 4, 2}));
    EXPECT_EQ(waves[2][2].priority, Priority::kLow);
}

// ---- eviction: shed-lowest-first under kReject ----

TEST(MultiTenant, HighPriorityShedsYoungestOfBusiestLowTenant) {
    const auto model = small_model(6);
    auto backend = std::make_shared<RecordingBackend>(model);
    core::Server server(std::static_pointer_cast<core::Backend>(backend),
                        {.threads = 1,
                         .max_queue = 3,
                         .max_batch = 8,
                         .backpressure = BackpressurePolicy::kReject});
    const auto train = random_train(model, 2, 12);

    auto plug = server.submit(core::Request::view_train(train));
    ASSERT_TRUE(eventually([&] { return backend->entered() >= 1; }));

    // Fill the queue with low-priority work: loader x2 (streams 1, 2),
    // light x1 (stream 3).
    auto loader_old = server.submit(
        core::Request::view_train(train).with("", "loader", Priority::kLow));
    auto loader_young = server.submit(
        core::Request::view_train(train).with("", "loader", Priority::kLow));
    auto light = server.submit(
        core::Request::view_train(train).with("", "light", Priority::kLow));
    ASSERT_EQ(server.queue_depth(), 3U);

    // A low submit has nothing lower to shed: refused, queue untouched.
    EXPECT_FALSE(server.try_submit(
        core::Request::view_train(train).with("", "light", Priority::kLow)));
    EXPECT_EQ(server.queue_depth(), 3U);

    // A high submit evicts the *youngest* request of the *busiest*
    // low-lane tenant: loader's stream 2.
    auto vip = server.submit(
        core::Request::view_train(train).with("", "vip", Priority::kHigh));
    EXPECT_EQ(server.queue_depth(), 3U);
    EXPECT_THROW(loader_young.get(), std::runtime_error);

    backend->release();
    EXPECT_EQ(plug.get().logits_per_step[0][0], 0);
    EXPECT_EQ(loader_old.get().logits_per_step[0][0], 1);
    EXPECT_EQ(light.get().logits_per_step[0][0], 3);
    EXPECT_EQ(vip.get().logits_per_step[0][0], 4);
    server.shutdown();

    const auto stats = server.stats();
    EXPECT_EQ(stats.submitted, 5U);
    EXPECT_EQ(stats.shed, 1U);
    EXPECT_EQ(stats.rejected, 1U);
    EXPECT_EQ(stats.completed, 4U);
    EXPECT_EQ(stats.tenants.at("loader").shed, 1U);
    EXPECT_EQ(stats.tenants.at("loader").completed, 1U);
    EXPECT_EQ(stats.tenants.at("light").rejected, 1U);
    EXPECT_EQ(stats.tenants.at("vip").completed, 1U);

    // High preempts formation: vip rides alone, then the surviving low
    // lane drains in FIFO order (loader_old, light).
    const auto waves = backend->waves();
    ASSERT_EQ(waves.size(), 3U);
    EXPECT_EQ(streams_of(waves[1]), (std::vector<std::uint64_t>{4}));
    EXPECT_EQ(streams_of(waves[2]), (std::vector<std::uint64_t>{1, 3}));
}

TEST(MultiTenant, EvictionTieBreaksOnLexicographicallyLastTenant) {
    const auto model = small_model(7);
    auto backend = std::make_shared<RecordingBackend>(model);
    core::Server server(std::static_pointer_cast<core::Backend>(backend),
                        {.threads = 1,
                         .max_queue = 2,
                         .max_batch = 8,
                         .backpressure = BackpressurePolicy::kReject});
    const auto train = random_train(model, 2, 13);

    auto plug = server.submit(core::Request::view_train(train));
    ASSERT_TRUE(eventually([&] { return backend->entered() >= 1; }));

    auto a = server.submit(
        core::Request::view_train(train).with("", "aa", Priority::kLow));
    auto b = server.submit(
        core::Request::view_train(train).with("", "bb", Priority::kLow));

    // Equal FIFO lengths: the lexicographically last tenant sheds.
    auto vip = server.submit(
        core::Request::view_train(train).with("", "vip", Priority::kNormal));
    EXPECT_THROW(b.get(), std::runtime_error);

    backend->release();
    plug.get();
    a.get();
    vip.get();
    server.shutdown();
    EXPECT_EQ(server.stats().tenants.at("bb").shed, 1U);
}

// ---- registry: routing, registration, unregistration ----

TEST(MultiTenant, RoutesByModelNameAndRejectsUnknown) {
    const auto model = small_model(8);
    core::Server server({.threads = 1, .max_batch = 4});
    EXPECT_TRUE(server.model_names().empty());

    // No models yet: everything is unroutable.
    const auto train = random_train(model, 2, 14);
    EXPECT_FALSE(server.try_submit(core::Request::view_train(train)));

    server.register_model("vgg-a", std::make_shared<core::FunctionalBackend>(model));
    server.register_model("vgg-b", std::make_shared<core::FunctionalBackend>(model));
    EXPECT_EQ(server.model_names(),
              (std::vector<std::string>{"vgg-a", "vgg-b"}));
    EXPECT_THROW(
        server.register_model("vgg-a",
                              std::make_shared<core::FunctionalBackend>(model)),
        std::invalid_argument);
    EXPECT_THROW(static_cast<void>(server.backend()), std::logic_error);  // ambiguous

    // Named routes work; with two models and no "default", an empty
    // model is unroutable; so is a misspelled one.
    auto fa = server.submit(core::Request::view_train(train).with("vgg-a"));
    auto fb = server.submit(core::Request::view_train(train).with("vgg-b"));
    EXPECT_FALSE(server.try_submit(core::Request::view_train(train)));
    EXPECT_FALSE(
        server.try_submit(core::Request::view_train(train).with("vgg-c")));
    EXPECT_THROW(
        (void)server.submit(core::Request::view_train(train).with("vgg-c")),
        std::runtime_error);

    // Identical models + identical pinned streams => identical results.
    const auto ra = fa.get();
    const auto rb = fb.get();
    EXPECT_EQ(ra.logits_per_step, rb.logits_per_step);

    server.shutdown();
    const auto stats = server.stats();
    EXPECT_EQ(stats.submitted, 2U);
    EXPECT_EQ(stats.completed, 2U);
    EXPECT_EQ(stats.rejected, 4U);  // the unroutable attempts
}

TEST(MultiTenant, SoleModelServesEmptyModelName) {
    const auto model = small_model(9);
    core::Server server({.threads = 1});
    server.register_model("only", std::make_shared<core::FunctionalBackend>(model));
    const auto train = random_train(model, 2, 15);
    auto by_blank = server.submit(core::Request::view_train(train));
    auto by_name = server.submit(core::Request::view_train(train).with("only"));
    EXPECT_EQ(by_blank.get().logits_per_step[0], by_name.get().logits_per_step[0]);
    EXPECT_NO_THROW(static_cast<void>(server.backend()));
}

TEST(MultiTenant, UnregisterDrainsItsOwnLaneOnly) {
    const auto model = small_model(10);
    auto backend_a = std::make_shared<RecordingBackend>(model);
    auto backend_b = std::make_shared<RecordingBackend>(model);
    core::Server server({.threads = 1, .max_queue = 8, .max_batch = 4});
    server.register_model("a", std::static_pointer_cast<core::Backend>(backend_a));
    server.register_model("b", std::static_pointer_cast<core::Backend>(backend_b));
    const auto train = random_train(model, 2, 16);

    // Plug both lanes, then queue two more requests on each.
    auto plug_a = server.submit(core::Request::view_train(train).with("a"));
    auto plug_b = server.submit(core::Request::view_train(train).with("b"));
    ASSERT_TRUE(eventually([&] {
        return backend_a->entered() >= 1 && backend_b->entered() >= 1;
    }));
    std::vector<std::future<core::Response>> futures_a, futures_b;
    for (int i = 0; i < 2; ++i) {
        futures_a.push_back(server.submit(core::Request::view_train(train).with("a")));
        futures_b.push_back(server.submit(core::Request::view_train(train).with("b")));
    }
    ASSERT_EQ(server.queue_depth("a"), 2U);
    ASSERT_EQ(server.queue_depth("b"), 2U);

    // Unregister "a": drains a's queue through a's backend, returns.
    // b's queue must be untouched (its gate is still closed).
    backend_a->release();
    server.unregister_model("a");
    plug_a.get();
    for (auto& f : futures_a) f.get();
    EXPECT_EQ(server.model_names(), (std::vector<std::string>{"b"}));
    EXPECT_EQ(server.queue_depth("b"), 2U);
    EXPECT_FALSE(server.try_submit(core::Request::view_train(train).with("a")));
    EXPECT_THROW(server.unregister_model("a"), std::invalid_argument);

    // a's counters survive unregistration (retired slice).
    auto stats = server.stats();
    EXPECT_EQ(stats.completed, 3U);
    EXPECT_EQ(stats.submitted, 6U);

    backend_b->release();
    plug_b.get();
    for (auto& f : futures_b) f.get();
    server.shutdown();
    stats = server.stats();
    EXPECT_EQ(stats.completed, 6U);
    EXPECT_EQ(stats.submitted, 6U);
    EXPECT_EQ(server.queue_depth(), 0U);
}

// ---- hot reload ----

TEST(MultiTenant, ReloadUnderLoadKeepsResponsesBitIdentical) {
    const auto model = small_model(12);
    constexpr std::size_t kRequests = 16;

    // Sequential reference through one engine.
    snn::FunctionalEngine engine(model);
    std::vector<snn::SpikeTrain> trains;
    std::vector<snn::RunResult> reference;
    for (std::size_t i = 0; i < kRequests; ++i) {
        trains.push_back(random_train(model, 3, 40 + i));
        reference.push_back(engine.run(trains[i]));
    }

    core::Server server(std::make_shared<core::FunctionalBackend>(model),
                        {.threads = 1, .max_queue = 4, .max_batch = 2});
    std::atomic<bool> done{false};
    std::thread reloader([&] {
        // Hammer reloads while the stream is in flight, alternating the
        // backend kind: functional <-> cycle-accurate. Both engines are
        // bit-equivalent on logits, so a mid-stream swap must be
        // invisible in the responses.
        bool sia = true;
        while (!done.load()) {
            if (sia) {
                server.reload_model(core::Server::kDefaultModel,
                                    std::make_shared<core::SiaBackend>(model));
            } else {
                server.reload_model(core::Server::kDefaultModel,
                                    std::make_shared<core::FunctionalBackend>(model));
            }
            sia = !sia;
            std::this_thread::sleep_for(1ms);
        }
    });

    std::vector<std::future<core::Response>> futures;
    for (std::size_t i = 0; i < kRequests; ++i) {
        futures.push_back(server.submit(core::Request::view_train(trains[i])));
    }
    for (std::size_t i = 0; i < kRequests; ++i) {
        SCOPED_TRACE("request=" + std::to_string(i));
        const auto response = futures[i].get();
        EXPECT_EQ(response.logits_per_step, reference[i].logits_per_step);
        EXPECT_EQ(response.spike_counts, reference[i].spike_counts);
    }
    done.store(true);
    reloader.join();
    server.shutdown();

    const auto stats = server.stats();
    EXPECT_EQ(stats.completed, kRequests);
    EXPECT_EQ(stats.failed, 0U);
    EXPECT_GE(stats.reloads, 1U);
    EXPECT_THROW(server.reload_model("no-such-model",
                                     std::make_shared<core::FunctionalBackend>(model)),
                 std::invalid_argument);
}

// ---- determinism across server configurations ----

TEST(MultiTenant, DeterministicAcrossConfigsModelsAndPriorities) {
    const auto model = small_model(13);
    constexpr std::size_t kRequests = 12;
    constexpr std::int64_t kTimesteps = 4;

    // Poisson encoding consumes the per-request RNG stream, which is
    // pinned to the per-lane admission order — the strongest test of
    // the determinism contract under continuous batching.
    std::vector<tensor::Tensor> images;
    for (std::size_t i = 0; i < kRequests; ++i) {
        images.push_back(random_image(model, 60 + i));
    }
    const std::vector<std::string> tenants = {"t0", "t1", "t2"};
    constexpr std::array<Priority, 3> kPriorities = {
        Priority::kHigh, Priority::kNormal, Priority::kLow};

    const auto serve_all = [&](const core::ServerOptions& options) {
        core::Server server(options);
        server.register_model("a", std::make_shared<core::FunctionalBackend>(model));
        server.register_model("b", std::make_shared<core::FunctionalBackend>(model));
        std::vector<std::future<core::Response>> futures;
        for (std::size_t i = 0; i < kRequests; ++i) {
            futures.push_back(server.submit(
                core::Request::poisson(images[i], kTimesteps)
                    .with(i % 2 == 0 ? "a" : "b", tenants[i % 3],
                          kPriorities[i % 3])));
        }
        std::vector<core::Response> responses;
        for (auto& f : futures) responses.push_back(f.get());
        server.shutdown();
        return responses;
    };

    const auto baseline = serve_all({.threads = 1, .max_batch = 1});
    const auto batched = serve_all({.threads = 2,
                                    .max_queue = 4,
                                    .max_batch = 8,
                                    .tenant_weights = {{"t0", 3}, {"t2", 2}}});
    const auto rejecting = serve_all({.threads = 1,
                                      .max_queue = 64,
                                      .max_batch = 5,
                                      .backpressure = BackpressurePolicy::kReject});

    for (std::size_t i = 0; i < kRequests; ++i) {
        SCOPED_TRACE("request=" + std::to_string(i));
        ASSERT_FALSE(baseline[i].logits_per_step.empty());
        EXPECT_EQ(baseline[i].logits_per_step, batched[i].logits_per_step);
        EXPECT_EQ(baseline[i].logits_per_step, rejecting[i].logits_per_step);
        EXPECT_EQ(baseline[i].spike_counts, batched[i].spike_counts);
        EXPECT_EQ(baseline[i].spike_counts, rejecting[i].spike_counts);
    }
}

// ---- concurrent stress matrix ----

struct StressOutcome {
    std::size_t accepted = 0;
    std::size_t refused = 0;
    std::size_t completed = 0;
    std::size_t shed = 0;
};

StressOutcome run_stress(BackpressurePolicy policy) {
    const auto model = small_model(14);
    constexpr std::size_t kThreads = 6;
    constexpr std::size_t kPerThread = 8;
    constexpr std::array<Priority, 3> kPriorities = {
        Priority::kHigh, Priority::kNormal, Priority::kLow};

    core::Server server({.threads = 1,
                         .max_queue = 4,
                         .max_batch = 4,
                         .backpressure = policy,
                         .tenant_weights = {{"t0", 4}, {"t1", 2}, {"t2", 1}}});
    server.register_model("a", std::make_shared<core::FunctionalBackend>(model));
    server.register_model("b", std::make_shared<core::FunctionalBackend>(model));

    // Pre-built payloads so view_train storage outlives the futures.
    std::vector<std::vector<snn::SpikeTrain>> trains(kThreads);
    for (std::size_t s = 0; s < kThreads; ++s) {
        for (std::size_t i = 0; i < kPerThread; ++i) {
            trains[s].push_back(random_train(model, 3, 100 * s + i));
        }
    }

    // Submitter s: tenant s%3, model s%2, priority cycling per request.
    std::vector<StressOutcome> per_thread(kThreads);
    std::vector<std::thread> submitters;
    std::vector<std::vector<std::future<core::Response>>> futures(kThreads);
    for (std::size_t s = 0; s < kThreads; ++s) {
        submitters.emplace_back([&, s] {
            const std::string tenant = "t" + std::to_string(s % 3);
            const std::string model_name = s % 2 == 0 ? "a" : "b";
            for (std::size_t i = 0; i < kPerThread; ++i) {
                auto request = core::Request::view_train(trains[s][i])
                                   .with(model_name, tenant, kPriorities[i % 3]);
                auto future = server.try_submit(std::move(request));
                if (future) {
                    ++per_thread[s].accepted;
                    futures[s].push_back(std::move(*future));
                } else {
                    ++per_thread[s].refused;
                }
            }
        });
    }
    for (auto& t : submitters) t.join();

    StressOutcome total;
    for (std::size_t s = 0; s < kThreads; ++s) {
        total.accepted += per_thread[s].accepted;
        total.refused += per_thread[s].refused;
        for (auto& f : futures[s]) {
            try {
                const auto response = f.get();
                EXPECT_EQ(response.timesteps, 3);
                ++total.completed;
            } catch (const std::runtime_error&) {
                ++total.shed;  // displaced by a higher-priority request
            }
        }
    }
    server.shutdown();
    EXPECT_EQ(server.queue_depth(), 0U);

    // Ledger invariants: every attempt is accounted exactly once, the
    // per-tenant slices partition the aggregates, and the latency
    // histograms saw exactly the completed requests.
    const auto stats = server.stats();
    EXPECT_EQ(stats.submitted, total.accepted);
    EXPECT_EQ(stats.rejected, total.refused);
    EXPECT_EQ(stats.completed, total.completed);
    EXPECT_EQ(stats.shed, total.shed);
    EXPECT_EQ(stats.failed, 0U);
    EXPECT_EQ(stats.submitted, stats.completed + stats.shed);
    EXPECT_EQ(stats.latency_us.count(), stats.completed);
    EXPECT_GE(stats.batches, (total.completed + 3) / 4);

    std::size_t tenant_submitted = 0, tenant_completed = 0, tenant_rejected = 0,
                tenant_shed = 0, tenant_latency = 0, tenant_slo_total = 0;
    for (const auto& [tenant, slice] : stats.tenants) {
        tenant_submitted += slice.submitted;
        tenant_completed += slice.completed;
        tenant_rejected += slice.rejected;
        tenant_shed += slice.shed;
        tenant_latency += slice.latency_us.count();
        tenant_slo_total += slice.slo.total();
        EXPECT_EQ(slice.latency_us.count(), slice.completed);
        EXPECT_EQ(slice.slo.total(), slice.completed);
        EXPECT_DOUBLE_EQ(slice.slo.threshold(), server.options().slo_us);
    }
    EXPECT_EQ(tenant_submitted, stats.submitted);
    EXPECT_EQ(tenant_completed, stats.completed);
    EXPECT_EQ(tenant_rejected, stats.rejected);
    EXPECT_EQ(tenant_shed, stats.shed);
    EXPECT_EQ(tenant_latency, stats.latency_us.count());
    EXPECT_EQ(tenant_slo_total, stats.completed);
    return total;
}

TEST(MultiTenantStress, BlockingMatrixCompletesEverything) {
    const auto outcome = run_stress(BackpressurePolicy::kBlock);
    EXPECT_EQ(outcome.refused, 0U);
    EXPECT_EQ(outcome.shed, 0U);
    EXPECT_EQ(outcome.completed, 48U);
}

TEST(MultiTenantStress, RejectingMatrixKeepsTheLedgerExact) {
    const auto outcome = run_stress(BackpressurePolicy::kReject);
    // Under kReject every attempt either completed, was refused at the
    // door, or was shed for a higher-priority request — no request is
    // lost or double-counted (the ledger checks live in run_stress).
    EXPECT_EQ(outcome.accepted + outcome.refused, 48U);
    EXPECT_EQ(outcome.completed + outcome.shed, outcome.accepted);
    EXPECT_GE(outcome.completed, 1U);
}

TEST(MultiTenantStress, ReloadStormWhileStressedStaysConsistent) {
    const auto model = small_model(15);
    constexpr std::size_t kThreads = 3;
    constexpr std::size_t kPerThread = 6;

    core::Server server({.threads = 1, .max_queue = 8, .max_batch = 4});
    server.register_model("a", std::make_shared<core::FunctionalBackend>(model));
    server.register_model("b", std::make_shared<core::FunctionalBackend>(model));

    std::vector<std::vector<snn::SpikeTrain>> trains(kThreads);
    for (std::size_t s = 0; s < kThreads; ++s) {
        for (std::size_t i = 0; i < kPerThread; ++i) {
            trains[s].push_back(random_train(model, 3, 200 + 10 * s + i));
        }
    }

    std::atomic<bool> done{false};
    std::thread reloader([&] {
        // Reload "a" repeatedly; "b" is never quiesced.
        while (!done.load()) {
            server.reload_model("a", std::make_shared<core::FunctionalBackend>(model));
            std::this_thread::sleep_for(1ms);
        }
    });

    std::vector<std::thread> submitters;
    std::vector<std::vector<std::future<core::Response>>> futures(kThreads);
    for (std::size_t s = 0; s < kThreads; ++s) {
        submitters.emplace_back([&, s] {
            const std::string model_name = s % 2 == 0 ? "a" : "b";
            for (std::size_t i = 0; i < kPerThread; ++i) {
                futures[s].push_back(server.submit(
                    core::Request::view_train(trains[s][i])
                        // std::string lhs dodges GCC 12's -Wrestrict false
                        // positive on operator+(const char*, string&&).
                        .with(model_name, std::string("t") + std::to_string(s))));
            }
        });
    }
    for (auto& t : submitters) t.join();
    for (auto& per_thread : futures) {
        for (auto& f : per_thread) EXPECT_EQ(f.get().timesteps, 3);
    }
    done.store(true);
    reloader.join();
    server.shutdown();

    const auto stats = server.stats();
    EXPECT_EQ(stats.completed, kThreads * kPerThread);
    EXPECT_EQ(stats.failed, 0U);
    EXPECT_EQ(stats.shed, 0U);
    EXPECT_GE(stats.reloads, 1U);
}

}  // namespace
}  // namespace sia
