// Temporal early-exit equivalence matrix (docs/ARCHITECTURE.md §10):
//
//   * exit OFF  — requests without a criterion are bit-identical across
//     backends (functional / sia / sia-cluster), thread counts {1, 8},
//     and shard counts {1, 2, 4};
//   * exit ON   — a fixed criterion yields bit-identical results —
//     steps_used, exit reason, logits — across batch composition,
//     thread count, and backend, and non-exiting items are bit-identical
//     to the full-T run;
//   * the criterion is a pure function of the item's own readout
//     sequence (offline evaluation over recorded history reproduces the
//     live decision exactly);
//   * session windows exit on their window's readout delta and never
//     corrupt the carried SessionState;
//   * serving: Request::with_early_exit rides waves, continuous
//     batching, and sessions; malformed criteria resolve as
//     kInvalidRequest without harming batchmates.
#include <gtest/gtest.h>

#include <array>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/batch_runner.hpp"
#include "core/compiler.hpp"
#include "core/server.hpp"
#include "sim/sia.hpp"
#include "sim/sia_cluster.hpp"
#include "snn/engine.hpp"
#include "snn/exit.hpp"
#include "snn/session.hpp"
#include "util/rng.hpp"

namespace sia {
namespace {

// ---- model zoo (mirrors test_sia_batched.cpp) ----

snn::SnnModel conv_model(std::uint64_t seed) {
    util::Rng rng(seed);
    snn::SnnModel model;
    model.input_channels = 2;
    model.input_h = 6;
    model.input_w = 6;

    std::int64_t in_c = model.input_channels;
    for (std::int64_t d = 0; d < 3; ++d) {
        snn::SnnLayer layer;
        layer.op = snn::LayerOp::kConv;
        layer.label = "conv" + std::to_string(d);
        layer.input = static_cast<int>(d) - 1;
        auto& b = layer.main;
        b.in_channels = in_c;
        b.out_channels = 4;
        b.kernel = 3;
        b.stride = 1;
        b.padding = 1;
        b.weights.resize(static_cast<std::size_t>(in_c * 4 * 9));
        for (auto& w : b.weights) w = static_cast<std::int8_t>(rng.integer(-127, 127));
        b.gain.resize(4);
        b.bias.resize(4);
        for (auto& g : b.gain) g = static_cast<std::int16_t>(rng.integer(50, 2000));
        for (auto& h : b.bias) h = static_cast<std::int16_t>(rng.integer(-100, 100));
        layer.out_channels = 4;
        layer.out_h = 6;
        layer.out_w = 6;
        layer.in_h = 6;
        layer.in_w = 6;
        model.layers.push_back(std::move(layer));
        in_c = 4;
    }

    snn::SnnLayer fc;
    fc.op = snn::LayerOp::kLinear;
    fc.label = "fc";
    fc.input = 2;
    fc.spiking = false;
    fc.main.in_features = 4 * 6 * 6;
    fc.main.out_features = 4;
    fc.main.weights.resize(static_cast<std::size_t>(fc.main.in_features * 4));
    for (auto& w : fc.main.weights) w = static_cast<std::int8_t>(rng.integer(-64, 64));
    fc.main.gain.assign(4, 256);
    fc.main.bias.assign(4, 0);
    fc.out_channels = 4;
    model.layers.push_back(std::move(fc));
    model.classes = 4;
    model.validate();
    return model;
}

std::vector<snn::SpikeTrain> random_batch(const snn::SnnModel& model, std::size_t count,
                                          std::int64_t timesteps, std::uint64_t seed) {
    std::vector<snn::SpikeTrain> batch;
    batch.reserve(count);
    util::Rng rng(seed);
    for (std::size_t i = 0; i < count; ++i) {
        snn::SpikeTrain train(static_cast<std::size_t>(timesteps),
                              snn::SpikeMap(model.input_channels, model.input_h,
                                            model.input_w));
        for (auto& frame : train) {
            for (std::int64_t j = 0; j < frame.size(); ++j) {
                frame.set_flat(j, rng.bernoulli(0.3));
            }
        }
        batch.push_back(std::move(train));
    }
    return batch;
}

snn::ExitCriterion modest_exit() {
    return {.margin = 20, .stable_checks = 0, .min_steps = 2, .hysteresis = 1,
            .check_interval = 1};
}

snn::ExitCriterion unreachable_exit() {
    return {.margin = 1'000'000'000, .stable_checks = 0, .min_steps = 1,
            .hysteresis = 1, .check_interval = 1};
}

void expect_same_response(const core::Response& got, const core::Response& want) {
    EXPECT_EQ(got.logits, want.logits);
    EXPECT_EQ(got.spike_counts, want.spike_counts);
    EXPECT_EQ(got.timesteps, want.timesteps);
    EXPECT_EQ(got.steps_used, want.steps_used);
    EXPECT_EQ(got.steps_offered, want.steps_offered);
    EXPECT_EQ(got.exit_reason, want.exit_reason);
}

// ---- the criterion is a pure function of the readout sequence ----

TEST(EarlyExit, OfflineEvaluationReproducesTheLiveDecision) {
    const auto model = conv_model(11);
    const auto inputs = random_batch(model, 8, 10, 111);
    snn::FunctionalEngine engine(model);
    const snn::ExitCriterion crit = modest_exit();

    for (std::size_t i = 0; i < inputs.size(); ++i) {
        SCOPED_TRACE("item=" + std::to_string(i));
        const auto full = engine.run(inputs[i]);
        ASSERT_EQ(full.logits_per_step.size(), inputs[i].size());

        // Offline: replay the recorded history through an evaluator.
        snn::ExitEvaluator eval(crit, {});
        std::int64_t exit_step = full.timesteps;
        snn::ExitReason reason = snn::ExitReason::kNone;
        for (std::size_t t = 0; t < full.logits_per_step.size(); ++t) {
            reason = eval.observe(full.logits_per_step[t],
                                  static_cast<std::int64_t>(t) + 1);
            if (reason != snn::ExitReason::kNone) {
                exit_step = static_cast<std::int64_t>(t) + 1;
                break;
            }
        }

        // Live: the engine's in-loop decision must match, and the steps
        // that ran must be the full run's prefix bit-for-bit.
        const auto live = engine.run(inputs[i], crit);
        EXPECT_EQ(live.timesteps, exit_step);
        EXPECT_EQ(live.exit_reason, reason);
        EXPECT_EQ(live.steps_offered, static_cast<std::int64_t>(inputs[i].size()));
        ASSERT_EQ(live.logits_per_step.size(), static_cast<std::size_t>(exit_step));
        for (std::size_t t = 0; t < live.logits_per_step.size(); ++t) {
            EXPECT_EQ(live.logits_per_step[t], full.logits_per_step[t]);
        }
        EXPECT_EQ(live.readout,
                  full.logits_per_step[static_cast<std::size_t>(exit_step) - 1]);
    }
}

// ---- exit OFF: bit-identical across backends, threads, shards ----

TEST(EarlyExit, OffBitIdenticalAcrossBackendsThreadsAndShards) {
    const auto model = conv_model(13);
    const std::int64_t timesteps = 5;
    const auto inputs = random_batch(model, 12, timesteps, 131);

    snn::FunctionalEngine reference(model);
    std::vector<snn::RunResult> ref;
    for (const auto& t : inputs) ref.push_back(reference.run(t));

    std::vector<core::Request> requests;
    for (const auto& t : inputs) requests.push_back(core::Request::view_train(t));

    std::vector<std::shared_ptr<core::Backend>> backends;
    backends.push_back(std::make_shared<core::FunctionalBackend>(model));
    backends.push_back(std::make_shared<core::SiaBackend>(model, sim::SiaConfig{}));
    for (const std::int64_t shards : {std::int64_t{1}, std::int64_t{2},
                                      std::int64_t{4}}) {
        backends.push_back(std::make_shared<core::ShardedSiaBackend>(
            model, sim::SiaConfig{},
            core::ShardOptions{.partition = sim::ShardPartition::kPipeline,
                               .shards = shards}));
    }

    for (const auto& backend : backends) {
        for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
            SCOPED_TRACE(std::string(backend->name()) + " threads=" +
                         std::to_string(threads));
            core::BatchRunner runner(backend, {.threads = threads});
            const auto responses = runner.run(requests);
            ASSERT_EQ(responses.size(), inputs.size());
            for (std::size_t i = 0; i < responses.size(); ++i) {
                SCOPED_TRACE("item=" + std::to_string(i));
                EXPECT_EQ(responses[i].logits, ref[i].readout);
                EXPECT_EQ(responses[i].logits_per_step, ref[i].logits_per_step);
                EXPECT_EQ(responses[i].steps_used, timesteps);
                EXPECT_EQ(responses[i].steps_offered, timesteps);
                EXPECT_EQ(responses[i].exit_reason, snn::ExitReason::kNone);
            }
        }
    }
}

// ---- exit ON: bit-identical across composition, threads, backends ----

TEST(EarlyExit, OnBitIdenticalAcrossCompositionThreadsAndBackends) {
    const auto model = conv_model(17);
    const std::int64_t timesteps = 8;
    const auto inputs = random_batch(model, 12, timesteps, 171);
    const snn::ExitCriterion crit = modest_exit();

    // Reference: every item alone through the functional engine.
    snn::FunctionalEngine engine(model);
    std::vector<core::Response> ref;
    for (const auto& t : inputs) ref.push_back(core::Response::from(engine.run(t, crit)));
    bool any_exited = false;
    for (const auto& r : ref) any_exited |= r.steps_used < timesteps;
    ASSERT_TRUE(any_exited) << "criterion never fired; matrix is vacuous";

    std::vector<core::Request> requests;
    for (const auto& t : inputs) {
        requests.push_back(core::Request::view_train(t).with_early_exit(crit));
    }

    std::vector<std::shared_ptr<core::Backend>> backends;
    backends.push_back(std::make_shared<core::FunctionalBackend>(model));
    backends.push_back(std::make_shared<core::SiaBackend>(model, sim::SiaConfig{}));
    for (const auto partition : {sim::ShardPartition::kPipeline,
                                 sim::ShardPartition::kChannel}) {
        for (const std::int64_t shards : {std::int64_t{2}, std::int64_t{4}}) {
            backends.push_back(std::make_shared<core::ShardedSiaBackend>(
                model, sim::SiaConfig{},
                core::ShardOptions{.partition = partition, .shards = shards}));
        }
    }

    for (const auto& backend : backends) {
        for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
            // Batch composition: full batch, then split submissions.
            for (const std::size_t split : {std::size_t{12}, std::size_t{5}}) {
                SCOPED_TRACE(std::string(backend->name()) + " threads=" +
                             std::to_string(threads) + " split=" +
                             std::to_string(split));
                core::BatchRunner runner(backend, {.threads = threads});
                std::vector<core::Response> responses;
                for (std::size_t at = 0; at < requests.size(); at += split) {
                    const std::size_t hi = std::min(requests.size(), at + split);
                    const std::vector<core::Request> sub(
                        requests.begin() + static_cast<std::ptrdiff_t>(at),
                        requests.begin() + static_cast<std::ptrdiff_t>(hi));
                    auto part = runner.run(sub);
                    for (auto& r : part) responses.push_back(std::move(r));
                }
                ASSERT_EQ(responses.size(), ref.size());
                for (std::size_t i = 0; i < responses.size(); ++i) {
                    SCOPED_TRACE("item=" + std::to_string(i));
                    expect_same_response(responses[i], ref[i]);
                }
            }
        }
    }
}

TEST(EarlyExit, NonExitingItemsBitIdenticalToFullRun) {
    const auto model = conv_model(19);
    const std::int64_t timesteps = 6;
    const auto inputs = random_batch(model, 6, timesteps, 191);
    const snn::ExitCriterion never = unreachable_exit();

    snn::FunctionalEngine engine(model);
    const auto program = core::SiaCompiler(sim::SiaConfig{}).compile(model);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        SCOPED_TRACE("item=" + std::to_string(i));
        const auto full = engine.run(inputs[i]);
        const auto armed = engine.run(inputs[i], never);
        EXPECT_EQ(armed.timesteps, timesteps);
        EXPECT_EQ(armed.exit_reason, snn::ExitReason::kNone);
        EXPECT_EQ(armed.logits_per_step, full.logits_per_step);
        EXPECT_EQ(armed.readout, full.readout);
        EXPECT_EQ(armed.spike_counts, full.spike_counts);

        sim::Sia sia(sim::SiaConfig{}, model, program);
        const auto sim_full = sia.run(inputs[i]);
        const auto sim_armed = sia.run(inputs[i], never);
        EXPECT_EQ(sim_armed.timesteps, timesteps);
        EXPECT_EQ(sim_armed.exit_reason, snn::ExitReason::kNone);
        EXPECT_EQ(sim_armed.logits_per_step, sim_full.logits_per_step);
        EXPECT_EQ(sim_armed.readout, sim_full.readout);
        EXPECT_EQ(sim_armed.spike_counts, sim_full.spike_counts);
    }
}

// ---- history off: the serving default still answers everything ----

TEST(EarlyExit, HistoryOffKeepsFinalReadoutAndDecisions) {
    const auto model = conv_model(23);
    const auto inputs = random_batch(model, 4, 6, 231);
    const snn::ExitCriterion crit = modest_exit();

    snn::FunctionalEngine with_history(model);
    snn::EngineConfig lean_config;
    lean_config.record_readout_history = false;
    snn::FunctionalEngine lean(model, lean_config);

    for (std::size_t i = 0; i < inputs.size(); ++i) {
        SCOPED_TRACE("item=" + std::to_string(i));
        const auto want = with_history.run(inputs[i], crit);
        const auto got = lean.run(inputs[i], crit);
        EXPECT_TRUE(got.logits_per_step.empty());
        EXPECT_EQ(got.readout, want.readout);
        EXPECT_EQ(got.timesteps, want.timesteps);
        EXPECT_EQ(got.exit_reason, want.exit_reason);
        EXPECT_EQ(got.predicted(), want.predicted());
    }

    // Through the unified surface: Response::logits/predicted() stand in
    // for the missing history.
    core::BatchRunner runner(
        std::make_shared<core::FunctionalBackend>(model, lean_config),
        {.threads = 2});
    std::vector<core::Request> requests;
    for (const auto& t : inputs) {
        requests.push_back(core::Request::view_train(t).with_early_exit(crit));
    }
    const auto responses = runner.run(requests);
    for (std::size_t i = 0; i < responses.size(); ++i) {
        SCOPED_TRACE("item=" + std::to_string(i));
        EXPECT_TRUE(responses[i].logits_per_step.empty());
        const auto want = with_history.run(inputs[i], crit);
        EXPECT_EQ(responses[i].logits, want.readout);
        EXPECT_EQ(responses[i].predicted(), want.predicted());
        EXPECT_EQ(responses[i].steps_used, want.timesteps);
    }
}

// ---- sessions: window-delta semantics, carried state never corrupted ----

TEST(EarlyExit, SessionWindowExitsOnItsOwnDeltaNotTheCarriedLead) {
    const auto model = conv_model(29);
    const auto windows = random_batch(model, 3, 6, 291);
    const snn::ExitCriterion crit = modest_exit();

    // Reference: full-attention windows (no criterion), recording the
    // carried readout at each window boundary.
    snn::FunctionalEngine engine(model);
    snn::SessionState full_session;
    std::vector<std::vector<std::int64_t>> carried;  // readout at entry of window w
    carried.emplace_back(static_cast<std::size_t>(model.classes), 0);
    std::vector<snn::RunResult> full_windows;
    for (const auto& w : windows) {
        full_windows.push_back(engine.run_window(w, full_session));
        carried.push_back(full_session.readout);
    }

    // A later window inherits a readout lead from its predecessors. The
    // criterion must evaluate the window's OWN delta: replay window 1's
    // absolute rows against the carried baseline offline, then check the
    // live session run agrees.
    snn::ExitEvaluator eval(crit, carried[1]);
    std::int64_t expect_steps = full_windows[1].timesteps;
    snn::ExitReason expect_reason = snn::ExitReason::kNone;
    for (std::size_t t = 0; t < full_windows[1].logits_per_step.size(); ++t) {
        expect_reason = eval.observe(full_windows[1].logits_per_step[t],
                                     static_cast<std::int64_t>(t) + 1);
        if (expect_reason != snn::ExitReason::kNone) {
            expect_steps = static_cast<std::int64_t>(t) + 1;
            break;
        }
    }

    snn::SessionState session;
    const auto w0 = engine.run_window(windows[0], session);
    ASSERT_EQ(session.readout, carried[1]);
    const auto w1 = engine.run_window(windows[1], session, crit);
    EXPECT_EQ(w1.timesteps, expect_steps);
    EXPECT_EQ(w1.exit_reason, expect_reason);

    // The carried state reflects the exit point exactly: window 2 after
    // the early-exited window is bit-identical to a full-attention run
    // over (window0 + window1-prefix + window2) on a fresh engine.
    const auto w2 = engine.run_window(windows[2], session);
    snn::SpikeTrain concat = windows[0];
    concat.insert(concat.end(), windows[1].begin(),
                  windows[1].begin() + expect_steps);
    concat.insert(concat.end(), windows[2].begin(), windows[2].end());
    snn::FunctionalEngine fresh(model);
    const auto mono = fresh.run(concat);
    EXPECT_EQ(session.readout, mono.readout);
    EXPECT_EQ(w2.readout, mono.readout);

    // And the sim engine walks the identical session path.
    const auto program = core::SiaCompiler(sim::SiaConfig{}).compile(model);
    sim::Sia sia(sim::SiaConfig{}, model, program);
    snn::SessionState sim_session;
    (void)sia.run(windows[0], sim_session);
    const auto sim_w1 = sia.run(windows[1], sim_session, crit);
    EXPECT_EQ(sim_w1.timesteps, expect_steps);
    EXPECT_EQ(sim_w1.exit_reason, expect_reason);
    EXPECT_EQ(sim_w1.readout, w1.readout);
    const auto sim_w2 = sia.run(windows[2], sim_session);
    EXPECT_EQ(sim_session.readout, mono.readout);
    EXPECT_EQ(sim_w2.readout, mono.readout);
}

// ---- serving: criteria ride waves, bad criteria fail alone ----

TEST(EarlyExit, ServerRunsEarlyExitRequestsAndReportsSteps) {
    const auto model = conv_model(31);
    const std::int64_t timesteps = 8;
    const auto inputs = random_batch(model, 10, timesteps, 311);
    const snn::ExitCriterion crit = modest_exit();

    // Reference decisions from the functional engine.
    snn::FunctionalEngine engine(model);
    std::vector<core::Response> ref;
    for (const auto& t : inputs) ref.push_back(core::Response::from(engine.run(t, crit)));

    core::ServerOptions options;
    options.threads = 4;
    options.max_batch = 4;
    core::Server server(std::make_shared<core::SiaBackend>(model, sim::SiaConfig{}),
                        options);
    std::vector<std::future<core::Response>> futures;
    for (const auto& t : inputs) {
        futures.push_back(server.submit(
            core::Request::from_train(t).with_early_exit(crit)));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
        SCOPED_TRACE("item=" + std::to_string(i));
        const auto response = futures[i].get();
        ASSERT_TRUE(response.ok()) << response.error;
        expect_same_response(response, ref[i]);
    }
}

TEST(EarlyExit, MalformedCriterionFailsAloneAsInvalidRequest) {
    const auto model = conv_model(37);
    const auto inputs = random_batch(model, 6, 5, 371);

    core::ServerOptions options;
    options.threads = 2;
    options.max_batch = 6;
    core::Server server(std::make_shared<core::SiaBackend>(model, sim::SiaConfig{}),
                        options);

    snn::ExitCriterion bad = modest_exit();
    bad.min_steps = 0;  // validate() rejects
    std::vector<std::future<core::Response>> futures;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        auto request = core::Request::from_train(inputs[i]);
        if (i == 2) request = std::move(request).with_early_exit(bad);
        futures.push_back(server.submit(std::move(request)));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
        SCOPED_TRACE("item=" + std::to_string(i));
        const auto response = futures[i].get();
        if (i == 2) {
            EXPECT_EQ(response.error_code, core::ErrorCode::kInvalidRequest);
            EXPECT_EQ(response.retries, 0U);
        } else {
            EXPECT_TRUE(response.ok()) << response.error;
            EXPECT_EQ(response.steps_used, 5);
        }
    }
}

TEST(EarlyExit, ServerSessionWindowsWithEarlyExitStayCoherent) {
    const auto model = conv_model(41);
    const auto windows = random_batch(model, 3, 6, 411);
    const snn::ExitCriterion crit = modest_exit();

    // Reference: the engine session path (already proven equivalent to
    // the monolithic run above).
    snn::FunctionalEngine engine(model);
    snn::SessionState ref_session;
    std::vector<snn::RunResult> ref;
    ref.push_back(engine.run_window(windows[0], ref_session));
    ref.push_back(engine.run_window(windows[1], ref_session, crit));
    ref.push_back(engine.run_window(windows[2], ref_session));

    core::ServerOptions options;
    options.threads = 2;
    core::Server server(std::make_shared<core::SiaBackend>(model, sim::SiaConfig{}),
                        options);
    std::vector<std::future<core::Response>> futures;
    futures.push_back(server.submit(
        core::Request::from_train(windows[0]).with_session("dvs-0")));
    futures.push_back(server.submit(core::Request::from_train(windows[1])
                                        .with_session("dvs-0")
                                        .with_early_exit(crit)));
    futures.push_back(server.submit(
        core::Request::from_train(windows[2]).with_session("dvs-0", true)));
    for (std::size_t w = 0; w < futures.size(); ++w) {
        SCOPED_TRACE("window=" + std::to_string(w));
        const auto response = futures[w].get();
        ASSERT_TRUE(response.ok()) << response.error;
        EXPECT_EQ(response.logits, ref[w].readout);
        EXPECT_EQ(response.steps_used, ref[w].timesteps);
        EXPECT_EQ(response.exit_reason, ref[w].exit_reason);
        EXPECT_EQ(response.window_seq, w);
    }
}

// ---- the cluster's stats see the retirement ----

TEST(EarlyExit, ClusterReportsRetirementAcrossShards) {
    const auto model = conv_model(43);
    const std::int64_t timesteps = 8;
    const auto inputs = random_batch(model, 6, timesteps, 431);
    const snn::ExitCriterion crit = modest_exit();

    const auto program = core::SiaCompiler(sim::SiaConfig{}).compile(model);
    sim::Sia solo(sim::SiaConfig{}, model, program);
    std::vector<sim::SiaRunResult> ref;
    for (const auto& t : inputs) ref.push_back(solo.run(t, crit));

    for (const auto partition : {sim::ShardPartition::kPipeline,
                                 sim::ShardPartition::kChannel}) {
        SCOPED_TRACE(to_string(partition));
        sim::SiaCluster cluster(
            sim::SiaConfig{}, model,
            core::SiaCompiler(sim::SiaConfig{})
                .compile_sharded(model, {.partition = partition, .shards = 2}));
        std::vector<const snn::SpikeTrain*> ptrs;
        for (const auto& t : inputs) ptrs.push_back(&t);
        const std::vector<snn::SessionState*> sessions(inputs.size(), nullptr);
        const std::vector<const snn::ExitCriterion*> exits(inputs.size(), &crit);
        const auto results = cluster.run_batch(ptrs, sessions, exits);
        std::int64_t executed = 0;
        std::int64_t retired = 0;
        for (std::size_t i = 0; i < results.size(); ++i) {
            SCOPED_TRACE("item=" + std::to_string(i));
            EXPECT_EQ(results[i].logits_per_step, ref[i].logits_per_step);
            EXPECT_EQ(results[i].readout, ref[i].readout);
            EXPECT_EQ(results[i].timesteps, ref[i].timesteps);
            EXPECT_EQ(results[i].exit_reason, ref[i].exit_reason);
            executed += results[i].timesteps;
            if (results[i].timesteps < timesteps) ++retired;
        }
        const sim::ShardStats& stats = cluster.last_stats();
        EXPECT_EQ(stats.steps_executed, executed);
        EXPECT_EQ(stats.steps_offered,
                  static_cast<std::int64_t>(inputs.size()) * timesteps);
        EXPECT_EQ(stats.retired_early, retired);
        EXPECT_GT(stats.makespan_cycles, 0);
    }
}

}  // namespace
}  // namespace sia
