// core::Backend API tests: the equivalence matrix proving the batched
// Request path is bit-identical to sequential single-engine references
// (per thread count, per backend, per schedule), backend caching,
// failed-batch stats semantics, and the Request/Response surface itself
// (mixed encodings, stream pinning, owned vs borrowed inputs,
// backend-specific response extras).
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/backend.hpp"
#include "core/batch_runner.hpp"
#include "core/compiler.hpp"
#include "sim/sia.hpp"
#include "snn/encoding.hpp"
#include "snn/engine.hpp"
#include "util/rng.hpp"

namespace sia {
namespace {

// ---- compact random model/stimulus helpers (mirrors test_batch_runner) ----

snn::SnnModel small_model(std::uint64_t seed) {
    util::Rng rng(seed);
    snn::SnnModel model;
    model.input_channels = 2;
    model.input_h = 6;
    model.input_w = 6;

    std::int64_t in_c = model.input_channels;
    for (std::int64_t d = 0; d < 2; ++d) {
        snn::SnnLayer layer;
        layer.op = snn::LayerOp::kConv;
        layer.label = "conv" + std::to_string(d);
        layer.input = static_cast<int>(d) - 1;
        auto& b = layer.main;
        b.in_channels = in_c;
        b.out_channels = 4;
        b.kernel = 3;
        b.stride = 1;
        b.padding = 1;
        b.weights.resize(static_cast<std::size_t>(in_c * 4 * 9));
        for (auto& w : b.weights) w = static_cast<std::int8_t>(rng.integer(-127, 127));
        b.gain.resize(4);
        b.bias.resize(4);
        for (auto& g : b.gain) g = static_cast<std::int16_t>(rng.integer(50, 2000));
        for (auto& h : b.bias) h = static_cast<std::int16_t>(rng.integer(-100, 100));
        layer.out_channels = 4;
        layer.out_h = 6;
        layer.out_w = 6;
        layer.in_h = 6;
        layer.in_w = 6;
        model.layers.push_back(std::move(layer));
        in_c = 4;
    }

    snn::SnnLayer fc;
    fc.op = snn::LayerOp::kLinear;
    fc.label = "fc";
    fc.input = 1;
    fc.spiking = false;
    fc.main.in_features = 4 * 6 * 6;
    fc.main.out_features = 4;
    fc.main.weights.resize(static_cast<std::size_t>(fc.main.in_features * 4));
    for (auto& w : fc.main.weights) w = static_cast<std::int8_t>(rng.integer(-64, 64));
    fc.main.gain.assign(4, 256);
    fc.main.bias.assign(4, 0);
    fc.out_channels = 4;
    model.layers.push_back(std::move(fc));
    model.classes = 4;
    model.validate();
    return model;
}

std::vector<snn::SpikeTrain> random_batch(const snn::SnnModel& model, std::size_t count,
                                          std::int64_t timesteps, std::uint64_t seed) {
    std::vector<snn::SpikeTrain> batch;
    batch.reserve(count);
    util::Rng rng(seed);
    for (std::size_t i = 0; i < count; ++i) {
        snn::SpikeTrain train(static_cast<std::size_t>(timesteps),
                              snn::SpikeMap(model.input_channels, model.input_h,
                                            model.input_w));
        for (auto& frame : train) {
            for (std::int64_t j = 0; j < frame.size(); ++j) {
                frame.set_flat(j, rng.bernoulli(0.3));
            }
        }
        batch.push_back(std::move(train));
    }
    return batch;
}

std::vector<tensor::Tensor> random_images(const snn::SnnModel& model, std::size_t count,
                                          std::uint64_t seed) {
    std::vector<tensor::Tensor> images;
    util::Rng rng(seed);
    for (std::size_t i = 0; i < count; ++i) {
        tensor::Tensor img(tensor::Shape{1, model.input_channels, model.input_h,
                                         model.input_w});
        for (std::int64_t j = 0; j < img.numel(); ++j) img.flat(j) = rng.uniform();
        images.push_back(std::move(img));
    }
    return images;
}

void expect_same_core(const core::Response& r, const snn::RunResult& ref) {
    EXPECT_EQ(r.logits_per_step, ref.logits_per_step);
    EXPECT_EQ(r.spike_counts, ref.spike_counts);
    EXPECT_EQ(r.neuron_counts, ref.neuron_counts);
    EXPECT_EQ(r.timesteps, ref.timesteps);
}

// ---- the equivalence matrix: batched Request path vs sequential refs ----

TEST(BackendEquivalence, FunctionalMatchesSequentialEngine) {
    const auto model = small_model(7);
    const auto batch = random_batch(model, 6, 5, 17);
    std::vector<core::Request> requests;
    for (const auto& t : batch) requests.push_back(core::Request::view_train(t));

    snn::FunctionalEngine engine(model);
    std::vector<snn::RunResult> reference;
    for (const auto& t : batch) reference.push_back(engine.run(t));

    for (const std::size_t threads : {1UL, 2UL, 8UL}) {
        core::BatchRunner unified(std::make_shared<core::FunctionalBackend>(model),
                                  {.threads = threads});
        const auto responses = unified.run(requests);

        ASSERT_EQ(responses.size(), reference.size());
        for (std::size_t i = 0; i < responses.size(); ++i) {
            SCOPED_TRACE("threads=" + std::to_string(threads) + " item=" +
                         std::to_string(i));
            expect_same_core(responses[i], reference[i]);
        }
    }
}

TEST(BackendEquivalence, ThermometerRequestsMatchManualEncode) {
    const auto model = small_model(5);
    const auto images = random_images(model, 5, 29);
    const std::int64_t timesteps = 6;
    std::vector<core::Request> requests;
    for (const auto& img : images) {
        requests.push_back(core::Request::view_thermometer(img, timesteps));
    }

    snn::FunctionalEngine engine(model);
    std::vector<snn::RunResult> reference;
    for (const auto& img : images) {
        reference.push_back(engine.run(snn::encode_thermometer(img, timesteps)));
    }

    for (const std::size_t threads : {1UL, 2UL, 8UL}) {
        core::BatchRunner unified(std::make_shared<core::FunctionalBackend>(model),
                                  {.threads = threads});
        const auto responses = unified.run(requests);
        ASSERT_EQ(responses.size(), reference.size());
        for (std::size_t i = 0; i < responses.size(); ++i) {
            SCOPED_TRACE("threads=" + std::to_string(threads) + " item=" +
                         std::to_string(i));
            expect_same_core(responses[i], reference[i]);
        }
    }
}

TEST(BackendEquivalence, PoissonRequestsDrawPerItemStreams) {
    const auto model = small_model(5);
    const auto images = random_images(model, 7, 43);
    const std::int64_t timesteps = 6;
    const std::uint64_t seed = 77;
    std::vector<core::Request> requests;
    for (const auto& img : images) {
        requests.push_back(core::Request::view_poisson(img, timesteps));
    }

    // Reference: item i encodes from stream i of the batch seed,
    // independent of any batching/thread placement.
    snn::FunctionalEngine engine(model);
    std::vector<snn::RunResult> reference;
    for (std::size_t i = 0; i < images.size(); ++i) {
        util::Rng rng(util::mix_seed(seed, i));
        reference.push_back(engine.run(snn::encode_poisson(images[i], timesteps, rng)));
    }

    for (const std::size_t threads : {1UL, 2UL, 8UL}) {
        core::BatchRunner unified(std::make_shared<core::FunctionalBackend>(model),
                                  {.threads = threads, .seed = seed});
        const auto responses = unified.run(requests);
        ASSERT_EQ(responses.size(), reference.size());
        for (std::size_t i = 0; i < responses.size(); ++i) {
            SCOPED_TRACE("threads=" + std::to_string(threads) + " item=" +
                         std::to_string(i));
            expect_same_core(responses[i], reference[i]);
        }
    }
}

TEST(BackendEquivalence, SiaBackendMatchesSequentialSia) {
    const auto model = small_model(11);
    const auto batch = random_batch(model, 5, 4, 31);
    std::vector<core::Request> requests;
    for (const auto& t : batch) requests.push_back(core::Request::view_train(t));

    const sim::SiaConfig config;
    const auto program = core::SiaCompiler(config).compile(model);
    std::vector<sim::SiaRunResult> reference;
    for (const auto& t : batch) {
        sim::Sia sia(config, model, program);
        reference.push_back(sia.run(t));
    }

    for (const auto schedule :
         {core::SimSchedule::kResident, core::SimSchedule::kPerItem}) {
        for (const std::size_t threads : {1UL, 2UL, 8UL}) {
            SCOPED_TRACE(std::string("schedule=") +
                         (schedule == core::SimSchedule::kResident ? "resident"
                                                                   : "per-item") +
                         " threads=" + std::to_string(threads));
            core::BatchRunner unified(
                std::make_shared<core::SiaBackend>(model, config, schedule),
                {.threads = threads});
            const auto responses = unified.run(requests);

            ASSERT_EQ(responses.size(), reference.size());
            for (std::size_t i = 0; i < responses.size(); ++i) {
                SCOPED_TRACE("item=" + std::to_string(i));
                EXPECT_EQ(responses[i].logits_per_step, reference[i].logits_per_step);
                EXPECT_EQ(responses[i].spike_counts, reference[i].spike_counts);
                EXPECT_EQ(responses[i].neuron_counts, reference[i].neuron_counts);
                EXPECT_EQ(responses[i].timesteps, reference[i].timesteps);
                // Cycle stats must survive the unified Response intact.
                ASSERT_EQ(responses[i].layer_stats.size(),
                          reference[i].layer_stats.size());
                EXPECT_EQ(responses[i].total_cycles(), reference[i].total_cycles());
            }
        }
    }
}

// ---- the Request/Response surface ----

TEST(BackendApi, ResponseCarriesBackendSpecificExtras) {
    const auto model = small_model(7);
    const auto batch = random_batch(model, 2, 4, 17);
    const std::vector<core::Request> requests = {core::Request::view_train(batch[0]),
                                                 core::Request::view_train(batch[1])};

    core::BatchRunner functional(std::make_shared<core::FunctionalBackend>(model),
                                 {.threads = 2});
    const auto f = functional.run(requests);
    ASSERT_EQ(f.size(), 2U);
    EXPECT_FALSE(f[0].layer_dispatch.empty());
    EXPECT_FALSE(f[0].has_cycle_stats());

    core::BatchRunner sim_runner(std::make_shared<core::SiaBackend>(model),
                                 {.threads = 2});
    const auto s = sim_runner.run(requests);
    ASSERT_EQ(s.size(), 2U);
    EXPECT_TRUE(s[0].layer_dispatch.empty());
    EXPECT_TRUE(s[0].has_cycle_stats());
    EXPECT_GT(s[0].total_cycles(), 0);

    // Shared numerics: both backends agree on logits and spikes.
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(f[i].logits_per_step, s[i].logits_per_step);
        EXPECT_EQ(f[i].spike_counts, s[i].spike_counts);
        EXPECT_EQ(f[i].predicted_class(f[i].timesteps - 1),
                  s[i].predicted_class(s[i].timesteps - 1));
    }
}

TEST(BackendApi, MixedEncodingsInOneBatch) {
    const auto model = small_model(9);
    const auto batch = random_batch(model, 1, 6, 19);
    const auto images = random_images(model, 2, 23);
    const std::int64_t timesteps = 6;
    const std::uint64_t seed = 91;

    std::vector<core::Request> requests;
    requests.push_back(core::Request::view_train(batch[0]));
    requests.push_back(core::Request::view_thermometer(images[0], timesteps));
    requests.push_back(core::Request::view_poisson(images[1], timesteps));

    core::BatchRunner runner(std::make_shared<core::FunctionalBackend>(model),
                             {.threads = 2, .seed = seed});
    const auto responses = runner.run(requests);
    ASSERT_EQ(responses.size(), 3U);

    snn::FunctionalEngine engine(model);
    expect_same_core(responses[0], engine.run(batch[0]));
    expect_same_core(responses[1],
                     engine.run(snn::encode_thermometer(images[0], timesteps)));
    util::Rng rng(util::mix_seed(seed, 2));  // stream = batch position 2
    expect_same_core(responses[2],
                     engine.run(snn::encode_poisson(images[1], timesteps, rng)));
}

TEST(BackendApi, RngStreamPinningDecouplesResultsFromBatchPosition) {
    const auto model = small_model(9);
    const auto images = random_images(model, 3, 37);
    const std::int64_t timesteps = 5;
    core::BatchRunner runner(std::make_shared<core::FunctionalBackend>(model),
                             {.threads = 2, .seed = 5});

    // Reference: image 2 encoded at batch position 2 (default stream).
    std::vector<core::Request> plain;
    for (const auto& img : images) {
        plain.push_back(core::Request::view_poisson(img, timesteps));
    }
    const auto reference = runner.run(plain);

    // Pin image 2's stream to 2, then submit it alone: identical result.
    auto pinned = core::Request::view_poisson(images[2], timesteps);
    pinned.rng_stream = 2;
    const auto alone = runner.run({std::move(pinned)});
    ASSERT_EQ(alone.size(), 1U);
    EXPECT_EQ(alone[0].logits_per_step, reference[2].logits_per_step);
    EXPECT_EQ(alone[0].spike_counts, reference[2].spike_counts);
}

TEST(BackendApi, OwnedAndBorrowedInputsAreEquivalent) {
    const auto model = small_model(13);
    const auto batch = random_batch(model, 2, 4, 41);
    core::BatchRunner runner(std::make_shared<core::FunctionalBackend>(model),
                             {.threads = 2});

    std::vector<core::Request> borrowed;
    for (const auto& t : batch) borrowed.push_back(core::Request::view_train(t));
    std::vector<core::Request> owned;
    for (const auto& t : batch) owned.push_back(core::Request::from_train(t));

    const auto a = runner.run(borrowed);
    const auto b = runner.run(owned);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].logits_per_step, b[i].logits_per_step);
        EXPECT_EQ(a[i].spike_counts, b[i].spike_counts);
    }
}

TEST(BackendApi, MalformedImageRequestThrows) {
    const auto model = small_model(7);
    const auto images = random_images(model, 1, 3);
    core::BatchRunner runner(std::make_shared<core::FunctionalBackend>(model),
                             {.threads = 1});
    EXPECT_THROW(
        (void)runner.run({core::Request::view_thermometer(images[0], 0)}),
        std::invalid_argument);
    EXPECT_FALSE(runner.last_stats().completed);
}

// ---- SiaConfig equality & cache invalidation ----

TEST(SiaConfigKey, EqualityCoversEveryObservableField) {
    const sim::SiaConfig base;
    EXPECT_TRUE(base == sim::SiaConfig{});

    sim::SiaConfig pe = base;
    pe.pe_rows = 16;
    EXPECT_FALSE(base == pe);

    sim::SiaConfig mmio = base;
    mmio.mmio_cycles_per_word *= 2;
    EXPECT_FALSE(base == mmio);

    sim::SiaConfig banks = base;
    banks.membrane_banks = 8;
    EXPECT_FALSE(base == banks);

    sim::SiaConfig clock = base;
    clock.clock_mhz = 200.0;
    EXPECT_FALSE(base == clock);
}

TEST(SiaConfigKey, BackendConfigReachesProgramAndResidentSias) {
    const auto model = small_model(11);
    const auto batch = random_batch(model, 3, 4, 31);
    std::vector<core::Request> requests;
    for (const auto& t : batch) requests.push_back(core::Request::view_train(t));

    const sim::SiaConfig config_a;
    sim::SiaConfig config_b;
    config_b.mmio_cycles_per_word *= 4;  // slower PS<->PL word transfers

    // One worker: resident-Sia construction then deterministically lands
    // in the first batch (with more workers, a worker that received no
    // units builds its simulator in a later batch).
    core::BatchRunner runner_a(std::make_shared<core::SiaBackend>(model, config_a),
                               {.threads = 1});
    const auto first_a = runner_a.run(requests);
    EXPECT_GT(runner_a.last_stats().setup_ms, 0.0);  // compiled + built Sias

    (void)runner_a.run(requests);
    EXPECT_EQ(runner_a.last_stats().setup_ms, 0.0);  // warm: program + Sias cached

    // A backend built over a different config must actually reach the
    // simulators: identical numerics, different cycle accounting.
    core::BatchRunner runner_b(std::make_shared<core::SiaBackend>(model, config_b),
                               {.threads = 1});
    const auto first_b = runner_b.run(requests);
    EXPECT_GT(runner_b.last_stats().setup_ms, 0.0);  // compiled for B
    for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(first_b[i].logits_per_step, first_a[i].logits_per_step);
        EXPECT_GT(first_b[i].total_cycles(), first_a[i].total_cycles());
    }

    // Reruns through the warm A backend stay identical, cycles included.
    const auto second_a = runner_a.run(requests);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(second_a[i].total_cycles(), first_a[i].total_cycles());
    }
}

// ---- BatchStats failure semantics (via a custom backend: the API is
// open precisely so tests and exotic engines can implement it) ----

class FlakyBackend final : public core::Backend {
public:
    explicit FlakyBackend(const snn::SnnModel& model) : Backend(model) {}

    [[nodiscard]] std::string_view name() const noexcept override { return "flaky"; }
    void prepare(std::size_t) override {}
    void run_span(std::size_t /*worker*/, std::span<const core::Request> requests,
                  std::span<core::Response> responses, std::size_t base,
                  std::uint64_t /*seed*/) override {
        for (std::size_t i = 0; i < requests.size(); ++i) {
            if (fail_at >= 0 && base + i == static_cast<std::size_t>(fail_at)) {
                throw std::runtime_error("injected failure");
            }
            core::Response r;
            r.logits_per_step = {{static_cast<std::int64_t>(base + i)}};
            r.timesteps = 1;
            responses[i] = std::move(r);
        }
    }

    int fail_at = -1;
};

TEST(BatchStatsSemantics, FailedBatchIsMarkedAndConsistent) {
    const auto model = small_model(7);
    auto backend = std::make_shared<FlakyBackend>(model);
    core::BatchRunner runner(backend, {.threads = 2});

    std::vector<core::Request> requests(8);

    backend->fail_at = 3;
    EXPECT_THROW((void)runner.run(requests), std::runtime_error);
    const auto failed = runner.last_stats();
    EXPECT_FALSE(failed.completed);
    EXPECT_EQ(failed.inputs, 8U);
    EXPECT_EQ(failed.threads, 2U);
    EXPECT_GE(failed.wall_ms, 0.0);
    EXPECT_GE(failed.run_ms, 0.0);
    EXPECT_EQ(failed.inputs_per_sec(), 0.0);  // no throughput for a failed batch

    // The next successful batch starts from a clean slate: stats are not
    // polluted by the failed batch's residue.
    backend->fail_at = -1;
    const auto responses = runner.run(requests);
    ASSERT_EQ(responses.size(), 8U);
    for (std::size_t i = 0; i < responses.size(); ++i) {
        EXPECT_EQ(responses[i].logits_per_step[0][0], static_cast<std::int64_t>(i));
    }
    const auto ok = runner.last_stats();
    EXPECT_TRUE(ok.completed);
    EXPECT_EQ(ok.setup_ms, 0.0);
    EXPECT_GT(ok.inputs_per_sec(), 0.0);
}

}  // namespace
}  // namespace sia
