// Core pipeline tests: weight quantization, gain-shift selection,
// ANN->SNN conversion correctness on hand-built IR, compiler plans.
#include <gtest/gtest.h>

#include <cmath>

#include "core/compiler.hpp"
#include "core/convert.hpp"
#include "core/quantize.hpp"
#include "nn/activation.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "snn/encoding.hpp"
#include "snn/engine.hpp"

namespace sia::core {
namespace {

TEST(Quantize, RoundTripErrorBounded) {
    util::Rng rng(1);
    std::vector<float> w(256);
    for (auto& v : w) v = rng.normal(0.0F, 0.1F);
    const auto q = quantize_weights(w, 8);
    const auto back = dequantize(q);
    for (std::size_t i = 0; i < w.size(); ++i) {
        EXPECT_LE(std::abs(back[i] - w[i]), q.scale * 0.5F + 1e-7F);
    }
    EXPECT_LE(q.max_abs_error, q.scale * 0.5F + 1e-7F);
}

TEST(Quantize, FewerBitsLargerError) {
    util::Rng rng(2);
    std::vector<float> w(512);
    for (auto& v : w) v = rng.normal(0.0F, 0.1F);
    const auto q8 = quantize_weights(w, 8);
    const auto q4 = quantize_weights(w, 4);
    EXPECT_LT(q8.mse, q4.mse);
}

TEST(Quantize, ClipPercentileTightensScale) {
    std::vector<float> w(100, 0.01F);
    w[0] = 10.0F;  // outlier
    const auto full = quantize_weights(w, 8, 1.0F);
    const auto clipped = quantize_weights(w, 8, 0.95F);
    EXPECT_LT(clipped.scale, full.scale);
}

TEST(Quantize, RejectsBadArgs) {
    const std::vector<float> w = {1.0F};
    EXPECT_THROW(quantize_weights(w, 1), std::invalid_argument);
    EXPECT_THROW(quantize_weights(w, 9), std::invalid_argument);
    EXPECT_THROW(quantize_weights(w, 8, 0.0F), std::invalid_argument);
}

TEST(GainShift, PicksMaximalPrecision) {
    EXPECT_EQ(select_gain_shift(1.0), 14);       // 16384 fits
    EXPECT_EQ(select_gain_shift(2.1), 13);
    EXPECT_EQ(select_gain_shift(1000.0), 5);     // 32000 fits
    EXPECT_EQ(select_gain_shift(1e9), 0);        // saturates, warned
}

/// Hand-built single-conv IR for conversion tests.
struct ProbeNet {
    ProbeNet()
        : rng(3),
          conv({1, 2, 3, 1, 1}, rng, "c"),
          bn(2, "b"),
          act("a") {
        // Give BN non-trivial folded coefficients.
        bn.gamma().value.flat(0) = 1.5F;
        bn.gamma().value.flat(1) = 0.5F;
        bn.beta().value.flat(0) = 0.2F;
        bn.beta().value.flat(1) = -0.1F;
        // Warm running stats.
        tensor::Tensor x(tensor::Shape{4, 1, 6, 6});
        for (std::int64_t i = 0; i < x.numel(); ++i) x.flat(i) = rng.uniform(0.0F, 1.0F);
        for (int rep = 0; rep < 10; ++rep) (void)bn.forward(conv.forward(x, true), true);
        act.set_step(1.0F);
        act.enable_quant(4);
        act.set_step(1.0F);
    }

    nn::NetworkIR ir() {
        nn::NetworkIR net;
        net.model_name = "probe";
        net.input_channels = 1;
        net.input_h = 6;
        net.input_w = 6;
        nn::IrNode in;
        in.op = nn::IrOp::kInput;
        in.out_channels = 1;
        in.out_h = 6;
        in.out_w = 6;
        net.nodes.push_back(in);
        nn::IrNode c;
        c.op = nn::IrOp::kConv;
        c.label = "conv";
        c.input = 0;
        c.conv = &conv;
        c.bn = &bn;
        c.act = &act;
        c.out_channels = 2;
        c.out_h = 6;
        c.out_w = 6;
        net.nodes.push_back(c);
        return net;
    }

    util::Rng rng;
    nn::Conv2d conv;
    nn::BatchNorm2d bn;
    nn::Activation act;
};

TEST(Convert, ThresholdAndInitialPotential) {
    ProbeNet probe;
    const auto model = AnnToSnnConverter().convert(probe.ir());
    ASSERT_EQ(model.layers.size(), 1U);
    EXPECT_EQ(model.layers[0].threshold, 256);
    EXPECT_EQ(model.layers[0].initial_potential, 128);
    EXPECT_FLOAT_EQ(model.layers[0].step_size, 1.0F);
    EXPECT_EQ(model.layers[0].neuron, snn::NeuronKind::kIf);
    EXPECT_EQ(model.layers[0].reset, snn::ResetMode::kSubtract);
}

TEST(Convert, GainEncodesFoldedBn) {
    ProbeNet probe;
    const auto model = AnnToSnnConverter().convert(probe.ir());
    const auto& branch = model.layers[0].main;
    // Reconstruct G_real for channel 0 and compare against the encoded
    // fixed-point gain.
    const double g0 = 1.5 / std::sqrt(probe.bn.running_var()[0] + probe.bn.eps());
    const double expected =
        g0 * branch.weight_scale * 1.0 * 256.0 / 1.0;  // theta_in=1, s=1
    const double encoded = static_cast<double>(branch.gain[0]) /
                           static_cast<double>(1 << branch.gain_shift);
    EXPECT_NEAR(encoded, expected, std::abs(expected) * 0.01 + 1e-3);
}

TEST(Convert, BiasEncodesFoldedBeta) {
    ProbeNet probe;
    const auto model = AnnToSnnConverter().convert(probe.ir());
    const auto& branch = model.layers[0].main;
    const double g1 = 0.5 / std::sqrt(probe.bn.running_var()[1] + probe.bn.eps());
    const double h1 = -0.1 - probe.bn.running_mean()[1] * g1;
    EXPECT_NEAR(branch.bias[1], std::lround(h1 * 256.0), 1.0);
}

TEST(Convert, RequiresPositiveStep) {
    ProbeNet probe;
    probe.act.set_step(0.0F);
    EXPECT_THROW(AnnToSnnConverter().convert(probe.ir()), std::invalid_argument);
}

TEST(Convert, NeuronOptionsPropagate) {
    ProbeNet probe;
    ConvertOptions opts;
    opts.neuron = snn::NeuronKind::kLif;
    opts.reset = snn::ResetMode::kZero;
    opts.leak_shift = 3;
    const auto model = AnnToSnnConverter(opts).convert(probe.ir());
    EXPECT_EQ(model.layers[0].neuron, snn::NeuronKind::kLif);
    EXPECT_EQ(model.layers[0].reset, snn::ResetMode::kZero);
    EXPECT_EQ(model.layers[0].leak_shift, 3);
}

TEST(Convert, SingleLayerRateApproximatesQann) {
    // The structural equivalence check: SNN rate*s tracks the clipped
    // pre-activation within the coding tolerance at large T.
    ProbeNet probe;
    const auto model = AnnToSnnConverter().convert(probe.ir());
    tensor::Tensor x(tensor::Shape{1, 1, 6, 6});
    for (std::int64_t i = 0; i < x.numel(); ++i) x.flat(i) = probe.rng.uniform(0.0F, 1.0F);
    const tensor::Tensor z = probe.bn.forward(probe.conv.forward(x, false), false);

    const std::int64_t timesteps = 64;
    const auto train = snn::encode_thermometer(x, timesteps);
    snn::FunctionalEngine engine(model);
    std::vector<int> counts(static_cast<std::size_t>(z.numel()), 0);
    engine.reset();
    for (const auto& frame : train) {
        engine.step(frame);
        const auto& s = engine.layer_spikes(0);
        for (std::int64_t i = 0; i < s.size(); ++i) {
            if (s.get_flat(i)) ++counts[static_cast<std::size_t>(i)];
        }
    }
    double mae = 0.0;
    for (std::int64_t i = 0; i < z.numel(); ++i) {
        const double clip = std::clamp(z.flat(i), 0.0F, 1.0F);
        const double snn_val =
            static_cast<double>(counts[static_cast<std::size_t>(i)]) / timesteps;
        mae += std::abs(snn_val - clip);
    }
    mae /= static_cast<double>(z.numel());
    EXPECT_LT(mae, 0.06);  // coding + unevenness tolerance at T=64
}

// ---- Compiler ----

snn::SnnModel conv_model(std::int64_t in_c, std::int64_t out_c, std::int64_t hw,
                         std::int64_t k = 3) {
    snn::SnnModel model;
    model.input_channels = in_c;
    model.input_h = hw;
    model.input_w = hw;
    model.classes = out_c;
    snn::SnnLayer layer;
    layer.op = snn::LayerOp::kConv;
    layer.label = "c";
    layer.input = -1;
    layer.main.in_channels = in_c;
    layer.main.out_channels = out_c;
    layer.main.kernel = k;
    layer.main.stride = 1;
    layer.main.padding = k / 2;
    layer.main.weights.assign(static_cast<std::size_t>(out_c * in_c * k * k), 1);
    layer.main.gain.assign(static_cast<std::size_t>(out_c), 256);
    layer.main.bias.assign(static_cast<std::size_t>(out_c), 0);
    layer.out_channels = out_c;
    layer.out_h = hw;
    layer.out_w = hw;
    layer.in_h = hw;
    layer.in_w = hw;
    model.layers.push_back(layer);
    return model;
}

TEST(Compiler, SmallLayerSingleTile) {
    const auto model = conv_model(3, 16, 8);
    const auto program = SiaCompiler().compile(model);
    ASSERT_EQ(program.layers.size(), 1U);
    EXPECT_EQ(program.layers[0].oc_tiles, 1);
    EXPECT_EQ(program.layers[0].ic_passes, 1);
    EXPECT_FALSE(program.layers[0].mmio);
    EXPECT_FALSE(program.layers[0].membrane_spill);
    EXPECT_TRUE(program.fits_on_chip);
}

TEST(Compiler, TilesWideLayers) {
    const auto model = conv_model(3, 200, 8);
    const auto program = SiaCompiler().compile(model);
    EXPECT_EQ(program.layers[0].oc_tiles, 4);  // ceil(200/64)
}

TEST(Compiler, ChunksDeepKernels) {
    // 8 kB / 64 PEs = 128 B per kernel slot; a 3x3 kernel over 512 input
    // channels needs 4608 B -> 36 passes of 14 channels.
    const auto model = conv_model(512, 64, 4);
    const auto program = SiaCompiler().compile(model);
    EXPECT_EQ(program.layers[0].ic_chunk, 14);
    EXPECT_EQ(program.layers[0].ic_passes, (512 + 13) / 14);
}

TEST(Compiler, SpatialTilesLargeMembranes) {
    // 64 channels x 32x32 = 65536 neurons x 2 B = 128 kB -> 4 slices of
    // the 32 kB ping-pong bank; no DDR spill.
    const auto model = conv_model(3, 64, 32);
    const auto program = SiaCompiler().compile(model);
    EXPECT_EQ(program.layers[0].spatial_tiles, 4);
    EXPECT_FALSE(program.layers[0].membrane_spill);
    EXPECT_TRUE(program.fits_on_chip);
}

TEST(Compiler, NoTilingWhenMembranesFit) {
    const auto model = conv_model(3, 16, 8);  // 1024 neurons = 2 kB
    const auto program = SiaCompiler().compile(model);
    EXPECT_EQ(program.layers[0].spatial_tiles, 1);
}

TEST(Compiler, LinearGoesMmio) {
    snn::SnnModel model;
    model.input_channels = 1;
    model.input_h = 4;
    model.input_w = 4;
    model.classes = 10;
    snn::SnnLayer fc;
    fc.op = snn::LayerOp::kLinear;
    fc.label = "fc";
    fc.input = -1;
    fc.spiking = false;
    fc.main.in_features = 16;
    fc.main.out_features = 10;
    fc.main.weights.assign(160, 1);
    fc.main.gain.assign(10, 256);
    fc.main.bias.assign(10, 0);
    fc.out_channels = 10;
    model.layers.push_back(fc);
    const auto program = SiaCompiler().compile(model);
    EXPECT_TRUE(program.layers[0].mmio);
}

}  // namespace
}  // namespace sia::core
