// Unit tests for the fixed-point primitives every engine shares.
#include <gtest/gtest.h>

#include "util/fixed_point.hpp"

namespace sia::util {
namespace {

TEST(Saturate, Saturate8Bounds) {
    EXPECT_EQ(saturate8(127), 127);
    EXPECT_EQ(saturate8(128), 127);
    EXPECT_EQ(saturate8(-128), -128);
    EXPECT_EQ(saturate8(-129), -128);
    EXPECT_EQ(saturate8(0), 0);
}

TEST(Saturate, Saturate16Bounds) {
    EXPECT_EQ(saturate16(32767), 32767);
    EXPECT_EQ(saturate16(32768), 32767);
    EXPECT_EQ(saturate16(-32768), -32768);
    EXPECT_EQ(saturate16(-32769), -32768);
    EXPECT_EQ(saturate16(1234), 1234);
}

TEST(SatArith, AddSaturates) {
    EXPECT_EQ(sat_add16(32000, 1000), 32767);
    EXPECT_EQ(sat_add16(-32000, -1000), -32768);
    EXPECT_EQ(sat_add16(100, 200), 300);
}

TEST(SatArith, SubSaturates) {
    EXPECT_EQ(sat_sub16(-32000, 1000), -32768);
    EXPECT_EQ(sat_sub16(32000, -1000), 32767);
    EXPECT_EQ(sat_sub16(500, 200), 300);
}

TEST(WeightQuant, RoundTripWithinHalfLsb) {
    const float scale = 0.02F;
    for (float w = -2.0F; w <= 2.0F; w += 0.013F) {
        const auto q = quantize_weight(w, scale);
        const float back = dequantize_weight(q, scale);
        if (std::abs(w) <= 127 * scale) {
            EXPECT_LE(std::abs(back - w), quant_error_bound(scale) + 1e-6F)
                << "w=" << w;
        }
    }
}

TEST(WeightQuant, SymmetricNo128) {
    EXPECT_EQ(quantize_weight(-100.0F, 0.01F), -127);
    EXPECT_EQ(quantize_weight(100.0F, 0.01F), 127);
}

TEST(WeightQuant, ZeroScaleSafe) { EXPECT_EQ(quantize_weight(1.0F, 0.0F), 0); }

TEST(Q16, RoundTrip) {
    const double v = 1.2345;
    const auto q = to_q16(v, 8);
    EXPECT_NEAR(from_q16(q, 8), v, 1.0 / 256.0);
}

TEST(Q16, SaturatesLargeValues) {
    EXPECT_EQ(to_q16(1e9, 8), 32767);
    EXPECT_EQ(to_q16(-1e9, 8), -32768);
}

TEST(FxpMulShift, MatchesReference) {
    // (a * b) >> s with round-to-nearest.
    EXPECT_EQ(fxp_mul_shift(100, 256, 8), 100);
    EXPECT_EQ(fxp_mul_shift(100, 384, 8), 150);
    EXPECT_EQ(fxp_mul_shift(-100, 256, 8), -100);
    // Rounding: 3*3>>2 = 9/4 = 2.25 -> 2; 3*5>>2 = 15/4 = 3.75 -> 4.
    EXPECT_EQ(fxp_mul_shift(3, 3, 2), 2);
    EXPECT_EQ(fxp_mul_shift(3, 5, 2), 4);
}

TEST(FxpMulShift, ShiftZeroIsPlainSaturatingProduct) {
    EXPECT_EQ(fxp_mul_shift(200, 200, 0), 32767);  // 40000 saturates
    EXPECT_EQ(fxp_mul_shift(10, 20, 0), 200);
}

TEST(FxpMulShift, SaturatesProduct) {
    EXPECT_EQ(fxp_mul_shift(32767, 32767, 8), 32767);
    EXPECT_EQ(fxp_mul_shift(-32768, 32767, 8), -32768);
}

TEST(WeightScale, AbsMaxMapsTo127) {
    const float s = weight_scale_for_absmax(1.27F);
    EXPECT_FLOAT_EQ(s, 0.01F);
    EXPECT_GT(weight_scale_for_absmax(0.0F), 0.0F);
}

}  // namespace
}  // namespace sia::util
