// Streaming-session tests: chunked event windows against a persistent
// session reproduce the monolithic run bit-exactly — at the engine
// level (FunctionalEngine::run_window, Sia::run with a SessionState)
// and through core::Server sessions, across window sizes, thread
// counts, and both backends — plus the session lifecycle (affinity and
// window ordering, idle expiry, explicit close, deferred close,
// shutdown with open sessions).
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/backend.hpp"
#include "core/compiler.hpp"
#include "core/faulty_backend.hpp"
#include "core/server.hpp"
#include "util/fault.hpp"
#include "sim/sia.hpp"
#include "snn/engine.hpp"
#include "snn/session.hpp"
#include "util/rng.hpp"

namespace sia {
namespace {

using namespace std::chrono_literals;

// ---- compact random model/stimulus helpers (mirrors test_server) ----

snn::SnnModel small_model(std::uint64_t seed) {
    util::Rng rng(seed);
    snn::SnnModel model;
    model.input_channels = 2;
    model.input_h = 6;
    model.input_w = 6;

    snn::SnnLayer layer;
    layer.op = snn::LayerOp::kConv;
    layer.label = "conv0";
    layer.input = -1;
    auto& b = layer.main;
    b.in_channels = 2;
    b.out_channels = 4;
    b.kernel = 3;
    b.stride = 1;
    b.padding = 1;
    b.weights.resize(static_cast<std::size_t>(2 * 4 * 9));
    for (auto& w : b.weights) w = static_cast<std::int8_t>(rng.integer(-127, 127));
    b.gain.resize(4);
    b.bias.resize(4);
    for (auto& g : b.gain) g = static_cast<std::int16_t>(rng.integer(50, 2000));
    for (auto& h : b.bias) h = static_cast<std::int16_t>(rng.integer(-100, 100));
    layer.out_channels = 4;
    layer.out_h = 6;
    layer.out_w = 6;
    layer.in_h = 6;
    layer.in_w = 6;
    model.layers.push_back(std::move(layer));

    snn::SnnLayer fc;
    fc.op = snn::LayerOp::kLinear;
    fc.label = "fc";
    fc.input = 0;
    fc.spiking = false;
    fc.main.in_features = 4 * 6 * 6;
    fc.main.out_features = 4;
    fc.main.weights.resize(static_cast<std::size_t>(fc.main.in_features * 4));
    for (auto& w : fc.main.weights) w = static_cast<std::int8_t>(rng.integer(-64, 64));
    fc.main.gain.assign(4, 256);
    fc.main.bias.assign(4, 0);
    fc.out_channels = 4;
    model.layers.push_back(std::move(fc));
    model.classes = 4;
    model.validate();
    return model;
}

snn::SpikeTrain random_train(const snn::SnnModel& model, std::int64_t timesteps,
                             std::uint64_t seed) {
    util::Rng rng(seed);
    snn::SpikeTrain train(static_cast<std::size_t>(timesteps),
                          snn::SpikeMap(model.input_channels, model.input_h,
                                        model.input_w));
    for (auto& frame : train) {
        for (std::int64_t j = 0; j < frame.size(); ++j) {
            frame.set_flat(j, rng.bernoulli(0.3));
        }
    }
    return train;
}

/// Split a train into consecutive windows of up to `window` steps.
std::vector<snn::SpikeTrain> chunk(const snn::SpikeTrain& train,
                                   std::size_t window) {
    std::vector<snn::SpikeTrain> out;
    for (std::size_t start = 0; start < train.size(); start += window) {
        const std::size_t end = std::min(train.size(), start + window);
        out.emplace_back(train.begin() + static_cast<std::ptrdiff_t>(start),
                         train.begin() + static_cast<std::ptrdiff_t>(end));
    }
    return out;
}

/// Waits (bounded) for a predicate that another thread flips.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds budget = 2000ms) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (!pred()) {
        if (std::chrono::steady_clock::now() > deadline) return false;
        std::this_thread::sleep_for(1ms);
    }
    return true;
}

// ---- engine-level chunking identity ----

TEST(StreamSession, FunctionalChunkedWindowsMatchMonolithic) {
    const auto model = small_model(3);
    const auto train = random_train(model, 8, 42);
    snn::FunctionalEngine engine(model);
    const auto mono = engine.run(train);
    for (const std::size_t w : {1U, 2U, 4U, 8U}) {
        SCOPED_TRACE("window=" + std::to_string(w));
        snn::SessionState session;
        std::vector<std::vector<std::int64_t>> logits;
        for (const auto& win : chunk(train, w)) {
            const auto res = engine.run_window(win, session);
            logits.insert(logits.end(), res.logits_per_step.begin(),
                          res.logits_per_step.end());
        }
        EXPECT_EQ(logits, mono.logits_per_step);
        EXPECT_EQ(session.steps, 8);
        EXPECT_EQ(session.windows, 8U / w);
    }
}

TEST(StreamSession, SiaChunkedWindowsMatchMonolithic) {
    const auto model = small_model(5);
    const auto train = random_train(model, 8, 9);
    const sim::SiaConfig config;
    const auto program = core::SiaCompiler(config).compile(model);
    sim::Sia sia(config, model, program);
    const auto mono = sia.run(train);
    for (const std::size_t w : {1U, 2U, 4U}) {
        SCOPED_TRACE("window=" + std::to_string(w));
        snn::SessionState session;
        std::vector<std::vector<std::int64_t>> logits;
        for (const auto& win : chunk(train, w)) {
            const auto res = sia.run(win, session);
            logits.insert(logits.end(), res.logits_per_step.begin(),
                          res.logits_per_step.end());
        }
        EXPECT_EQ(logits, mono.logits_per_step);
    }
}

TEST(StreamSession, SessionsMigrateBetweenEngines) {
    // The carried representation is engine-agnostic: alternate windows
    // between the functional engine and the simulator mid-stream and
    // the readout still matches the monolithic reference bit-exactly.
    const auto model = small_model(7);
    const auto train = random_train(model, 8, 17);
    snn::FunctionalEngine engine(model);
    const auto mono = engine.run(train);
    const sim::SiaConfig config;
    const auto program = core::SiaCompiler(config).compile(model);
    sim::Sia sia(config, model, program);

    snn::SessionState session;
    std::vector<std::vector<std::int64_t>> logits;
    bool use_sia = false;
    for (const auto& win : chunk(train, 2)) {
        std::vector<std::vector<std::int64_t>> step_logits;
        if (use_sia) {
            step_logits = sia.run(win, session).logits_per_step;
        } else {
            step_logits = engine.run_window(win, session).logits_per_step;
        }
        logits.insert(logits.end(), step_logits.begin(), step_logits.end());
        use_sia = !use_sia;
    }
    EXPECT_EQ(logits, mono.logits_per_step);
}

TEST(StreamSession, RestoreRejectsMismatchedGeometry) {
    const auto model = small_model(11);
    snn::FunctionalEngine engine(model);
    snn::SessionState session;
    session.initialized = true;
    session.membranes = {{1, 2, 3}};  // wrong layer count / sizes
    session.readout = {0, 0, 0, 0};
    EXPECT_THROW(engine.restore_session(session), std::invalid_argument);
}

// ---- server-level chunking identity (the tentpole property) ----

void expect_server_chunk_identity(std::shared_ptr<core::Backend> backend,
                                  const snn::SnnModel& model,
                                  std::size_t threads) {
    const auto train = random_train(model, 8, 21);
    snn::FunctionalEngine engine(model);
    const auto mono = engine.run(train);

    core::Server server(std::move(backend), {.threads = threads, .max_batch = 4});
    for (const std::size_t w : {1U, 2U, 4U, 8U}) {
        SCOPED_TRACE("window=" + std::to_string(w));
        const std::string id = "stream-" + std::to_string(w);
        // Submit every window up front (none awaited) so wave
        // formation actually has to serialize them.
        std::vector<std::future<core::Response>> futures;
        for (auto& win : chunk(train, w)) {
            futures.push_back(server.submit(
                core::Request::from_train(std::move(win)).with_session(id)));
        }
        std::vector<std::vector<std::int64_t>> logits;
        for (std::size_t i = 0; i < futures.size(); ++i) {
            auto response = futures[i].get();
            EXPECT_EQ(response.session, id);
            EXPECT_EQ(response.window_seq, i);
            logits.insert(logits.end(), response.logits_per_step.begin(),
                          response.logits_per_step.end());
        }
        EXPECT_EQ(logits, mono.logits_per_step);
        EXPECT_TRUE(server.close_session(id));
    }
    server.shutdown();
    const auto stats = server.stats();
    EXPECT_EQ(stats.sessions_opened, 4U);
    EXPECT_EQ(stats.sessions_closed, 4U);
    EXPECT_EQ(stats.sessions_expired, 0U);
    EXPECT_EQ(stats.active_sessions, 0U);
    EXPECT_EQ(stats.failed, 0U);
}

TEST(StreamSession, ServerChunkedFunctionalSingleThread) {
    const auto model = small_model(13);
    expect_server_chunk_identity(std::make_shared<core::FunctionalBackend>(model),
                                 model, 1);
}

TEST(StreamSession, ServerChunkedFunctionalFourThreads) {
    const auto model = small_model(13);
    expect_server_chunk_identity(std::make_shared<core::FunctionalBackend>(model),
                                 model, 4);
}

TEST(StreamSession, ServerChunkedSiaSingleThread) {
    const auto model = small_model(19);
    expect_server_chunk_identity(std::make_shared<core::SiaBackend>(model), model, 1);
}

TEST(StreamSession, ServerChunkedSiaFourThreads) {
    const auto model = small_model(19);
    expect_server_chunk_identity(std::make_shared<core::SiaBackend>(model), model, 4);
}

TEST(StreamSession, BackendsAgreeOnChunkedStreams) {
    const auto model = small_model(23);
    const auto train = random_train(model, 6, 5);
    std::vector<std::vector<std::vector<std::int64_t>>> per_backend;
    for (const bool use_sia : {false, true}) {
        std::shared_ptr<core::Backend> backend;
        if (use_sia) {
            backend = std::make_shared<core::SiaBackend>(model);
        } else {
            backend = std::make_shared<core::FunctionalBackend>(model);
        }
        core::Server server(std::move(backend), {.threads = 2});
        std::vector<std::future<core::Response>> futures;
        for (auto& win : chunk(train, 2)) {
            futures.push_back(server.submit(
                core::Request::from_train(std::move(win)).with_session("x")));
        }
        std::vector<std::vector<std::int64_t>> logits;
        for (auto& f : futures) {
            auto response = f.get();
            logits.insert(logits.end(), response.logits_per_step.begin(),
                          response.logits_per_step.end());
        }
        per_backend.push_back(std::move(logits));
        server.shutdown();
    }
    EXPECT_EQ(per_backend[0], per_backend[1]);
}

// ---- session lifecycle ----

TEST(StreamSession, IdleSessionExpiresAndRestarts) {
    const auto model = small_model(29);
    core::Server server(std::make_shared<core::FunctionalBackend>(model),
                        {.threads = 1, .session_idle_ms = 50});
    const auto train = random_train(model, 2, 3);

    const auto r0 =
        server.submit(core::Request::from_train(train).with_session("cam")).get();
    EXPECT_EQ(r0.window_seq, 0U);
    EXPECT_EQ(r0.session_steps, 2);
    EXPECT_TRUE(eventually([&] { return server.session_count() == 1; }));

    std::this_thread::sleep_for(120ms);
    // Expiry is lazy: the next admission sweeps the idle session and
    // opens a fresh one under the same id (window_seq restarts at 0
    // and the carried readout starts over).
    const auto r1 =
        server.submit(core::Request::from_train(train).with_session("cam")).get();
    EXPECT_EQ(r1.window_seq, 0U);
    EXPECT_EQ(r1.session_steps, 2);
    EXPECT_EQ(r1.logits_per_step, r0.logits_per_step);

    server.shutdown();
    const auto stats = server.stats();
    EXPECT_EQ(stats.sessions_opened, 2U);
    EXPECT_EQ(stats.sessions_expired, 1U);
}

TEST(StreamSession, CloseWithPendingWindowsDefers) {
    const auto model = small_model(31);
    core::Server server(std::make_shared<core::FunctionalBackend>(model),
                        {.threads = 1});
    const auto train = random_train(model, 2, 3);
    std::vector<std::future<core::Response>> futures;
    for (int i = 0; i < 4; ++i) {
        futures.push_back(
            server.submit(core::Request::from_train(train).with_session("s")));
    }
    EXPECT_TRUE(server.close_session("s"));
    EXPECT_FALSE(server.close_session("unknown"));
    for (auto& f : futures) static_cast<void>(f.get());
    EXPECT_TRUE(eventually([&] { return server.session_count() == 0; }));
    server.shutdown();
    const auto stats = server.stats();
    EXPECT_EQ(stats.sessions_opened, 1U);
    EXPECT_EQ(stats.sessions_closed, 1U);
    EXPECT_EQ(stats.completed, 4U);
}

TEST(StreamSession, CloseFlagOnFinalWindowRetires) {
    const auto model = small_model(37);
    core::Server server(std::make_shared<core::FunctionalBackend>(model),
                        {.threads = 1});
    const auto train = random_train(model, 2, 3);
    auto f0 = server.submit(core::Request::from_train(train).with_session("s"));
    auto f1 = server.submit(
        core::Request::from_train(train).with_session("s", /*close=*/true));
    EXPECT_EQ(f0.get().window_seq, 0U);
    const auto last = f1.get();
    EXPECT_EQ(last.window_seq, 1U);
    EXPECT_EQ(last.session_steps, 4);
    EXPECT_TRUE(eventually([&] { return server.session_count() == 0; }));
    server.shutdown();
    EXPECT_EQ(server.stats().sessions_closed, 1U);
}

TEST(StreamSession, ShutdownWithOpenSessionsDrains) {
    const auto model = small_model(41);
    const auto train_a = random_train(model, 6, 50);
    const auto train_b = random_train(model, 6, 51);
    snn::FunctionalEngine engine(model);
    const auto mono_a = engine.run(train_a);
    const auto mono_b = engine.run(train_b);

    core::Server server(std::make_shared<core::FunctionalBackend>(model),
                        {.threads = 2, .max_batch = 2});
    std::vector<std::future<core::Response>> fa;
    std::vector<std::future<core::Response>> fb;
    for (std::size_t i = 0; i < 3; ++i) {
        fa.push_back(server.submit(
            core::Request::from_train(chunk(train_a, 2)[i]).with_session("a")));
        fb.push_back(server.submit(
            core::Request::from_train(chunk(train_b, 2)[i]).with_session("b")));
    }
    // Shut down with every window still potentially queued: the drain
    // must resolve each one against its session in admission order.
    server.shutdown();
    std::vector<std::vector<std::int64_t>> logits_a;
    std::vector<std::vector<std::int64_t>> logits_b;
    for (std::size_t i = 0; i < 3; ++i) {
        auto ra = fa[i].get();
        auto rb = fb[i].get();
        logits_a.insert(logits_a.end(), ra.logits_per_step.begin(),
                        ra.logits_per_step.end());
        logits_b.insert(logits_b.end(), rb.logits_per_step.begin(),
                        rb.logits_per_step.end());
    }
    EXPECT_EQ(logits_a, mono_a.logits_per_step);
    EXPECT_EQ(logits_b, mono_b.logits_per_step);
    EXPECT_EQ(server.stats().completed, 6U);
    EXPECT_EQ(server.stats().failed, 0U);
}

TEST(StreamSession, SessionWindowsAreNeverShed) {
    // Fill the queue with low-priority session windows, then push a
    // high-priority request under kReject: the high request must be
    // refused rather than a session window evicted (shedding one would
    // desync the stream's carried state).
    const auto model = small_model(43);
    core::Server server(std::make_shared<core::FunctionalBackend>(model),
                        {.threads = 1,
                         .max_queue = 2,
                         .max_batch = 1,
                         .backpressure = core::BackpressurePolicy::kReject});
    const auto train = random_train(model, 64, 3);
    std::vector<std::future<core::Response>> futures;
    // First submission may dispatch immediately; keep submitting until
    // the queue is full of session windows.
    std::size_t admitted = 0;
    while (admitted < 6) {
        auto f = server.try_submit(core::Request::from_train(train)
                                       .with("", "t-low", core::Priority::kLow)
                                       .with_session("s"));
        if (f) {
            futures.push_back(std::move(*f));
            ++admitted;
        } else {
            break;  // queue full of session windows
        }
    }
    const auto high = server.try_submit(core::Request::from_train(train).with(
        "", "t-high", core::Priority::kHigh));
    if (high.has_value()) {
        // The queue was not full when the high request arrived (drain
        // raced ahead) — nothing to assert about eviction.
        SUCCEED();
    } else {
        EXPECT_EQ(server.stats().shed, 0U);
    }
    server.shutdown();
    for (auto& f : futures) static_cast<void>(f.get());
    EXPECT_EQ(server.stats().shed, 0U);
}

// ---- fault tolerance (chaos x streaming) ----

// A window that fails mid-stream must leave the stream continuing from
// its pre-window state: the failed window's spikes are never applied
// (the dispatcher restores the session snapshot before any re-run), the
// caller gets a structured error, and later windows keep flowing — the
// session is degraded, never wedged.
TEST(StreamSession, FaultedWindowLeavesStreamContinuingFromPriorState) {
    const auto model = small_model(47);
    const auto train = random_train(model, 6, 60);
    auto windows = chunk(train, 2);
    ASSERT_EQ(windows.size(), 3U);

    // Lane rng streams are pinned to admission order, so the second
    // submitted window (stream 1) is deterministically poisoned.
    util::FaultPlan plan;
    plan.fail_streams = {1};
    core::Server server(
        std::make_shared<core::FaultyBackend>(
            std::make_shared<core::FunctionalBackend>(model), plan),
        {.threads = 1});
    std::vector<std::future<core::Response>> futures;
    for (auto& win : windows) {
        futures.push_back(server.submit(
            core::Request::from_train(std::move(win)).with_session("cam")));
    }
    auto r0 = futures[0].get();
    auto r1 = futures[1].get();
    auto r2 = futures[2].get();
    ASSERT_TRUE(r0.ok()) << r0.error;
    EXPECT_FALSE(r1.ok());
    EXPECT_EQ(r1.error_code, core::ErrorCode::kBackendError);
    EXPECT_EQ(r1.session, "cam");
    EXPECT_EQ(r1.window_seq, 1U);
    ASSERT_TRUE(r2.ok()) << r2.error;
    EXPECT_EQ(r2.window_seq, 2U);
    EXPECT_EQ(r2.session_steps, 4) << "the faulted window's steps never landed";

    // Reference: a fault-free stream that simply skips the faulted
    // window. Window 2 must match bit-for-bit — proof the failed run
    // left the membranes exactly as window 0 did.
    core::Server clean(std::make_shared<core::FunctionalBackend>(model),
                       {.threads = 1});
    auto ref_windows = chunk(train, 2);
    const auto c0 = clean
                        .submit(core::Request::from_train(std::move(ref_windows[0]))
                                    .with_session("cam"))
                        .get();
    const auto c2 = clean
                        .submit(core::Request::from_train(std::move(ref_windows[2]))
                                    .with_session("cam"))
                        .get();
    EXPECT_EQ(r0.logits_per_step, c0.logits_per_step);
    EXPECT_EQ(r2.logits_per_step, c2.logits_per_step);
    clean.shutdown();

    // The session is still live and closable; nothing leaked.
    EXPECT_TRUE(server.close_session("cam"));
    EXPECT_TRUE(eventually([&] { return server.session_count() == 0; }));
    server.shutdown();
    const auto stats = server.stats();
    EXPECT_EQ(stats.completed, 2U);
    EXPECT_EQ(stats.failed, 1U);
    EXPECT_EQ(stats.sessions_closed, 1U);
}

// Deferred close and idle expiry must survive mid-stream faults: a
// faulted window still releases its pending slot (close fires once the
// backlog drains) and a session whose last window failed still ages
// out. A wedged pending count would hang both paths.
TEST(StreamSession, FaultsDoNotWedgeDeferredCloseOrIdleExpiry) {
    const auto model = small_model(53);
    const auto train = random_train(model, 2, 61);

    // Deferred close with a poisoned window in the backlog. Streams
    // follow admission order: stream 1 is the second "s" window below,
    // stream 5 the lone "u" window.
    util::FaultPlan plan;
    plan.fail_streams = {1, 5};
    core::Server server(
        std::make_shared<core::FaultyBackend>(
            std::make_shared<core::FunctionalBackend>(model), plan),
        {.threads = 1, .session_idle_ms = 50});
    std::vector<std::future<core::Response>> futures;
    for (int i = 0; i < 4; ++i) {
        futures.push_back(
            server.submit(core::Request::from_train(train).with_session("s")));
    }
    EXPECT_TRUE(server.close_session("s"));  // defers behind 4 windows
    std::size_t failed = 0;
    for (auto& f : futures) {
        if (!f.get().ok()) ++failed;  // every future resolves, none dropped
    }
    EXPECT_EQ(failed, 1U);
    EXPECT_TRUE(eventually([&] { return server.session_count() == 0; }));

    // Idle expiry of a healthy session and of one whose only window
    // faulted: both must age out the same way.
    auto healthy = server.submit(core::Request::from_train(train)
                                     .with_session("t"));  // stream 4
    EXPECT_TRUE(healthy.get().ok());
    auto faulted = server.submit(core::Request::from_train(train)
                                     .with_session("u"));  // stream 5
    EXPECT_FALSE(faulted.get().ok());
    std::this_thread::sleep_for(120ms);
    // Lazy sweep: the next admission retires both idle sessions.
    EXPECT_TRUE(server.submit(core::Request::view_train(train)).get().ok());
    EXPECT_TRUE(eventually([&] { return server.session_count() == 0; }));
    server.shutdown();
    const auto stats = server.stats();
    EXPECT_EQ(stats.sessions_closed, 1U);
    EXPECT_EQ(stats.sessions_expired, 2U);
}

}  // namespace
}  // namespace sia
